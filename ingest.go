package accturbo

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"accturbo/internal/core"
	"accturbo/internal/packet"
	"accturbo/internal/ring"
	"accturbo/internal/telemetry"
)

// The ingest stage is the bounded hand-off between capture threads and
// the data plane, rebuilt on lock-free SPSC rings (internal/ring): one
// type-specialized lanes × shards ring matrix per producer arm, where
// every ring has exactly one producer (a lane) and one consumer (that
// shard's drain goroutine). Packets demux to their flow-hash shard at
// offer time, so a shard's consumer feeds its clusterer directly with
// ObserveShardPackets / ObserveShardFrames — no grouping pass, no
// shared queue, and (unlike the old channel + worker pool) no lock
// anywhere on the hot path.
//
// Two producer APIs share the matrix:
//
//   - Offer (legacy, any goroutine): round-robins over lanes under a
//     per-lane mutex. The mutex only serializes co-producers on one
//     lane — consumers never touch it — and each item is published
//     individually, so Offer keeps its "accepted means it will be
//     classified" contract.
//   - Lane/OfferFrame (wire speed, one goroutine per lane): claims a
//     lane exclusively, decodes each frame's features while its header
//     is cache-hot, and pushes the compact records with batched
//     publish — the path the -replay pipeline and any packet-capture
//     loop use.
//
// When a ring is full the offer sheds (counted, never blocking), so
// overload degrades visibly exactly as before.
type ingestStage struct {
	d *Defense
	// Each producer arm gets its own type-specialized [lane][shard] ring
	// matrix: legacy Offer queues 8-byte packet pointers, the wire path
	// queues compact feature records. No union item, no per-item arm
	// branch on the consumer, and each arm's slots are exactly its size.
	pktRings   [][]*ring.SPSC[*Packet]
	frameRings [][]*ring.SPSC[core.FrameFeatures]
	lanes      []ingestLaneState
	wake       []chan struct{} // per-shard consumer doorbells
	wg         sync.WaitGroup

	capacity int // sum of ring capacities, reported by Health
	feats    FeatureSet
	shed     telemetry.Counter
	rejected telemetry.Counter

	// closed fails new offers before the rings are torn down. An atomic
	// instead of the old RWMutex: Offer's hot path pays one load, not a
	// reader lock shared with every other capture goroutine.
	closed atomic.Bool
	next   atomic.Uint64 // legacy Offer's round-robin lane cursor
}

// ingestLaneState is the per-lane producer bookkeeping. mu serializes
// legacy co-producers on the lane; wired marks the lane claimed by an
// exclusive wire-speed producer (a one-way transition made under mu, so
// legacy offers never race a wire producer on the same ring).
type ingestLaneState struct {
	mu    sync.Mutex
	wired bool
	_     [40]byte // keep neighbouring lanes off one cache line
}

// ingestBatch is the per-consumer drain granularity. It bounds consumer
// buffer footprint and keeps a shard's counting scratch cache-resident.
const ingestBatch = 256

// laneFlushEvery is the wire path's auto-publish threshold: OfferFrame
// publishes a lane's pending pushes to a shard once this many stack up,
// amortizing the cross-core store without letting frames linger.
const laneFlushEvery = 64

// EnableIngest starts the bounded ingest stage on a real-time pipeline:
// `lanes` producer lanes feed one drain goroutine per data-plane shard
// through single-producer/single-consumer rings, with the given total
// buffer capacity split evenly across each producer arm's lane×shard
// matrix (each ring rounds up to a power of two and the packet and
// frame arms are separate matrices, so the effective total — reported
// by Health — may exceed the request). After this, feed packets with Offer
// or claim a lane for raw frames with Lane. Close drains the stage
// before stopping the control loop. It errors in deterministic mode
// (whose single-threaded Process needs no queue) and when called twice.
//
// The second parameter was the drain-pool size when ingest was a shared
// channel; consumers are now fixed at one per shard, and the value
// instead sets the producer lane count (more lanes, less co-producer
// serialization on Offer).
func (d *Defense) EnableIngest(capacity, lanes int) error {
	if d.clock == nil {
		return fmt.Errorf("accturbo: EnableIngest requires the real-time pipeline")
	}
	if capacity <= 0 || lanes <= 0 {
		return fmt.Errorf("accturbo: EnableIngest(%d, %d): capacity and lanes must be positive", capacity, lanes)
	}
	shards := d.dp.NumShards()
	perRing := capacity / (lanes * shards)
	if perRing < 2 {
		perRing = 2
	}
	in := &ingestStage{
		d:          d,
		pktRings:   make([][]*ring.SPSC[*Packet], lanes),
		frameRings: make([][]*ring.SPSC[core.FrameFeatures], lanes),
		lanes:      make([]ingestLaneState, lanes),
		wake:       make([]chan struct{}, shards),
		feats:      d.dp.Config().Clustering.Features,
	}
	for l := 0; l < lanes; l++ {
		in.pktRings[l] = make([]*ring.SPSC[*Packet], shards)
		in.frameRings[l] = make([]*ring.SPSC[core.FrameFeatures], shards)
		for s := 0; s < shards; s++ {
			pr := ring.New[*Packet](perRing)
			fr := ring.New[core.FrameFeatures](perRing)
			in.pktRings[l][s], in.frameRings[l][s] = pr, fr
			in.capacity += pr.Cap() + fr.Cap()
		}
	}
	for s := range in.wake {
		in.wake[s] = make(chan struct{}, 1)
	}
	if !d.ingest.CompareAndSwap(nil, in) {
		return fmt.Errorf("accturbo: ingest already enabled")
	}
	for s := 0; s < shards; s++ {
		in.wg.Add(1)
		go in.drainShard(s)
	}
	return nil
}

// Offer hands a packet to the bounded ingest stage without blocking:
// it returns false — and counts the packet as shed — when the packet's
// shard ring is full (backpressure) or the stage is already closed.
// Safe from any goroutine. Callers that must not lose packets should
// treat false as "slow down", not "retry immediately".
func (d *Defense) Offer(p *Packet) bool {
	in := d.ingest.Load()
	if in == nil {
		panic("accturbo: Offer before EnableIngest")
	}
	if in.closed.Load() {
		in.shed.Inc()
		return false
	}
	si := d.dp.ShardOf(p)
	lanes := uint64(len(in.lanes))
	start := in.next.Add(1)
	for i := uint64(0); i < lanes; i++ {
		l := int((start + i) % lanes)
		lane := &in.lanes[l]
		lane.mu.Lock()
		if lane.wired {
			lane.mu.Unlock()
			continue
		}
		ok := in.pktRings[l][si].TryPush(p)
		lane.mu.Unlock()
		if ok {
			in.signal(si)
			return true
		}
		// This lane's ring for the shard is full; another lane may have
		// room (its ring is a distinct buffer).
	}
	in.shed.Inc()
	return false
}

// OfferResult reports the fate of one frame handed to a wire-speed
// lane.
type OfferResult uint8

const (
	// OfferAccepted: the frame is queued and will be classified (after
	// the lane's next flush, for batched pushes).
	OfferAccepted OfferResult = iota
	// OfferFull: the frame's shard ring had no room; the frame was shed
	// under backpressure and counted in IngestShed.
	OfferFull
	// OfferRejected: the bytes are not a classifiable IPv4 frame
	// (truncated or malformed); counted separately from shed.
	OfferRejected
	// OfferClosed: the stage is closed; counted as shed.
	OfferClosed
)

// IngestLane is an exclusively claimed producer lane for the wire-speed
// frame path. All methods must be called from one goroutine; distinct
// lanes are fully independent. Before the Defense is closed the owner
// must stop offering and call Flush, so every accepted frame is
// published to its consumer.
type IngestLane struct {
	in      *ingestStage
	rings   []*ring.SPSC[core.FrameFeatures]
	pending []int32 // unpublished pushes per shard ring
	dirty   []int32 // shards touched since the last Flush, in first-push order
	isDirty []bool  // membership flags for dirty
}

// Lane claims producer lane l (0 <= l < the lane count given to
// EnableIngest) for exclusive wire-speed use. From then on legacy Offer
// skips that lane; claiming every lane leaves Offer nowhere to queue,
// so mixed deployments should reserve at least one unclaimed lane.
// Claiming the same lane twice returns the same ring set — the caller
// owns the "one producer goroutine" contract.
func (d *Defense) Lane(l int) *IngestLane {
	in := d.ingest.Load()
	if in == nil {
		panic("accturbo: Lane before EnableIngest")
	}
	if l < 0 || l >= len(in.lanes) {
		panic(fmt.Sprintf("accturbo: Lane(%d) out of range [0,%d)", l, len(in.lanes)))
	}
	lane := &in.lanes[l]
	lane.mu.Lock()
	lane.wired = true
	lane.mu.Unlock()
	return &IngestLane{
		in:      in,
		rings:   in.frameRings[l],
		pending: make([]int32, len(in.frameRings[l])),
		dirty:   make([]int32, 0, len(in.frameRings[l])),
		isDirty: make([]bool, len(in.frameRings[l])),
	}
}

// OfferFrame validates one raw IPv4 frame, decodes its clustering
// features in place (the fused packet.FrameView path — the header bytes
// are only read during this call, never retained), and queues them on
// the flow's shard ring. Pushes publish in batches of laneFlushEvery
// per shard; call Flush to publish a tail immediately. Not safe for
// concurrent use — one goroutine per lane.
func (l *IngestLane) OfferFrame(frame []byte) OfferResult {
	v, err := packet.ParseFrame(frame)
	if err != nil {
		l.in.rejected.Inc()
		return OfferRejected
	}
	if l.in.closed.Load() {
		l.in.shed.Inc()
		return OfferClosed
	}
	si := l.in.d.dp.ShardOfFrame(&v)
	var ff core.FrameFeatures
	ff.Size = uint32(v.Length())
	v.Features(l.in.feats, ff.Vals[:len(l.in.feats)])
	if !l.rings[si].Push(ff) {
		l.in.shed.Inc()
		return OfferFull
	}
	if !l.isDirty[si] {
		l.isDirty[si] = true
		l.dirty = append(l.dirty, int32(si))
	}
	l.pending[si]++
	if l.pending[si] >= laneFlushEvery {
		l.rings[si].Publish()
		l.pending[si] = 0
		l.in.signal(si)
	}
	return OfferAccepted
}

// Flush publishes every pending push on the lane and wakes the affected
// consumers. Call it when the capture loop goes idle and before Close.
func (l *IngestLane) Flush() {
	for _, si := range l.dirty {
		l.rings[si].Publish()
		if l.pending[si] > 0 {
			l.in.signal(int(si))
		}
		l.pending[si] = 0
		l.isDirty[si] = false
	}
	l.dirty = l.dirty[:0]
}

// signal rings shard si's consumer doorbell without blocking; a full
// doorbell means a wake-up is already pending.
func (in *ingestStage) signal(si int) {
	select {
	case in.wake[si] <- struct{}{}:
	default:
	}
}

// drainShard is shard si's consumer: it sweeps every lane's packet and
// frame rings for the shard and feeds the shard's clusterer through the
// per-shard batch entry points — each arm pops straight into its typed
// batch buffer, no partition pass. It parks on the shard doorbell when
// all rings are empty (with a timer backstop for publishes that raced
// the park) and exits once every ring is closed and drained.
func (in *ingestStage) drainShard(si int) {
	defer in.wg.Done()
	pkts := make([]*Packet, ingestBatch)
	frames := make([]core.FrameFeatures, ingestBatch)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		// Read closure before sweeping: a positive closed check followed
		// by an empty sweep proves no published item can remain (rings
		// close only after their final publish).
		allClosed := true
		swept := 0
		for l := range in.pktRings {
			pr, fr := in.pktRings[l][si], in.frameRings[l][si]
			if !pr.Closed() || !fr.Closed() {
				allClosed = false
			}
			for {
				n := pr.PopBatch(pkts)
				if n == 0 {
					break
				}
				swept += n
				in.d.dp.ObserveShardPackets(si, pkts[:n], nil)
			}
			for {
				n := fr.PopBatch(frames)
				if n == 0 {
					break
				}
				swept += n
				in.d.dp.ObserveShardFrames(si, frames[:n], nil)
			}
		}
		if swept > 0 {
			continue
		}
		if allClosed {
			return
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(time.Millisecond)
		select {
		case <-in.wake[si]:
		case <-timer.C:
		}
	}
}

// depth reports the number of queued, unconsumed items across the ring
// matrix (a point-in-time estimate, like the channel length it
// replaces).
func (in *ingestStage) depth() int {
	n := 0
	for l := range in.pktRings {
		for s := range in.pktRings[l] {
			n += in.pktRings[l][s].Len() + in.frameRings[l][s].Len()
		}
	}
	return n
}

// close tears the stage down: fail new offers, publish any pending
// pushes (each lane's mutex fences in-flight legacy offers; wire lanes
// must already have stopped per the IngestLane contract), close every
// ring, and wait for the consumers to drain. Idempotent.
func (in *ingestStage) close() {
	if in.closed.Swap(true) {
		return
	}
	for l := range in.lanes {
		lane := &in.lanes[l]
		lane.mu.Lock()
		for s := range in.pktRings[l] {
			in.pktRings[l][s].Publish()
			in.pktRings[l][s].Close()
			in.frameRings[l][s].Publish() // rescue a wire lane's un-Flushed tail
			in.frameRings[l][s].Close()
		}
		lane.mu.Unlock()
	}
	for si := range in.wake {
		in.signal(si)
	}
	in.wg.Wait()
}

// IngestShed returns the number of packets and frames the ingest stage
// shed under backpressure or closure. Zero until EnableIngest.
func (d *Defense) IngestShed() uint64 {
	if in := d.ingest.Load(); in != nil {
		return in.shed.Value()
	}
	return 0
}

// IngestRejected returns the number of malformed frames OfferFrame
// refused to queue. Zero until EnableIngest.
func (d *Defense) IngestRejected() uint64 {
	if in := d.ingest.Load(); in != nil {
		return in.rejected.Value()
	}
	return 0
}
