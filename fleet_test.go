package accturbo

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

func fleetCfg() FleetConfig {
	cfg := HardwareConfig()
	cfg.Clustering.SliceInit = true
	cfg.PollInterval = FromDuration(2 * time.Millisecond)
	cfg.DeployDelay = FromDuration(500 * time.Microsecond)
	cfg.ReseedInterval = 0
	return FleetConfig{Nodes: 3, Node: cfg}
}

// TestFleetConverges: with traffic flowing on every node, the fleet
// deploys a global ranking and each node's health reports RankSource
// "fleet" with the degraded bit clear.
func TestFleetConverges(t *testing.T) {
	f := NewFleet(fleetCfg())
	defer f.Close()
	if f.Nodes() != 3 {
		t.Fatalf("fleet has %d nodes, want 3", f.Nodes())
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		for n := 0; n < f.Nodes(); n++ {
			for i := 0; i < 50; i++ {
				f.Node(n).Process(0, benignPacket(n*1000+i))
			}
		}
		allFleet := true
		for n := 0; n < f.Nodes(); n++ {
			h := f.Node(n).Health()
			if h.Control.RankSource != "fleet" || h.Degraded {
				allFleet = false
			}
		}
		if allFleet {
			break
		}
		if time.Now().After(deadline) {
			for n := 0; n < f.Nodes(); n++ {
				t.Logf("node %d: health=%+v stats=%+v", n, f.Node(n).Health().Control, f.NodeStats(n))
			}
			t.Fatalf("fleet did not converge within 10s: coordinator %+v", f.CoordinatorStats())
		}
		time.Sleep(time.Millisecond)
	}

	cs := f.CoordinatorStats()
	if cs.Nodes != 3 || cs.Epoch == 0 {
		t.Fatalf("coordinator stats %+v, want 3 nodes and a nonzero epoch", cs)
	}
	if dec := f.LastGlobalDecision(); dec == nil {
		t.Fatal("no global decision after convergence")
	}
	if len(f.MergedClusters()) == 0 {
		t.Fatal("empty merged view after traffic on every node")
	}
}

// TestFleetPartitionDegrades: cutting the coordinator link flips every
// node to the sticky local fallback ("fleet-fallback:local", degraded
// bit set) — never to undefended FIFO — and healing recovers "fleet".
func TestFleetPartitionDegrades(t *testing.T) {
	cfg := fleetCfg()
	cfg.StaleAfter = FromDuration(6 * time.Millisecond)
	f := NewFleet(cfg)
	defer f.Close()

	waitFor := func(source string, degraded bool, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			for n := 0; n < f.Nodes(); n++ {
				for i := 0; i < 20; i++ {
					f.Node(n).Process(0, benignPacket(n*1000+i))
				}
			}
			ok := true
			for n := 0; n < f.Nodes(); n++ {
				h := f.Node(n).Health()
				if h.Control.RankSource != source || h.Degraded != degraded {
					ok = false
				}
			}
			if ok {
				return
			}
			if time.Now().After(deadline) {
				for n := 0; n < f.Nodes(); n++ {
					t.Logf("node %d: %+v", n, f.Node(n).Health().Control)
				}
				t.Fatalf("%s: not reached within 10s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}

	waitFor("fleet", false, "initial convergence")
	f.SetLink(false)
	waitFor("fleet-fallback:local", true, "partition fallback")
	// Degraded nodes still rank: the fallback is single-node ACC-Turbo.
	for n := 0; n < f.Nodes(); n++ {
		if st := f.NodeStats(n); st.LocalPolls == 0 {
			t.Fatalf("node %d: no local fallback polls while partitioned: %+v", n, st)
		}
	}
	f.SetLink(true)
	waitFor("fleet", false, "recovery after heal")
	for n := 0; n < f.Nodes(); n++ {
		if st := f.NodeStats(n); st.FallbackEngagements == 0 {
			t.Fatalf("node %d: partition left no fallback engagement: %+v", n, st)
		}
	}
}

// TestFleetCloseWhilePublishing is the close-while-fleet-publish race
// gate, mirroring TestIngestCloseWhileOffering: producers hammer every
// node (forcing polls, hence snapshot publishes on the shared
// transport) while Close tears the fleet down. Any interleaving must
// resolve to a clean shutdown — no panic, no send on a closed channel,
// no deadlock — which -race plus the ErrClosed accounting verifies.
func TestFleetCloseWhilePublishing(t *testing.T) {
	for iter := 0; iter < 6; iter++ {
		f := NewFleet(fleetCfg())
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for n := 0; n < f.Nodes(); n++ {
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				d := f.Node(n)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					d.Process(0, benignPacket(n*10000+i))
					if i%8 == 0 {
						// Force a control-loop step: poll, rank, publish
						// to the coordinator — the racing send.
						d.Poll()
					}
					if i%64 == 0 {
						runtime.Gosched()
					}
				}
			}(n)
		}
		time.Sleep(time.Duration(iter) * 500 * time.Microsecond)
		f.Close()
		close(stop)
		wg.Wait()
		f.Close() // idempotent
	}
}
