package accturbo

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its experiment (Quick mode, so
// a full -bench=. pass stays tractable) and reports the headline
// metrics as custom benchmark outputs alongside the usual ns/op.
//
//	go test -bench=Fig6 -benchtime=1x .
//
// regenerates Fig. 6 and prints, e.g.:
//
//	BenchmarkFig6-8  1  1.3e9 ns/op  0.02 benign-drops-%  91 fifo-reduction-%
//
// Absolute timing is irrelevant; the custom metrics carry the result.
// For the paper-fidelity numbers (recorded in EXPERIMENTS.md), run
// cmd/experiments without -quick.

import (
	"fmt"
	"testing"

	"accturbo/internal/experiments"
)

// benchOpts use Quick mode: full fidelity is cmd/experiments' job.
var benchOpts = experiments.Options{Quick: true, Seed: 1}

// runExperiment executes the experiment once per benchmark iteration
// and returns the last result.
func runExperiment(b *testing.B, id string) *experiments.Result {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = e.Run(benchOpts)
	}
	return res
}

// series fetches a named series from the result.
func series(b *testing.B, r *experiments.Result, name string) experiments.Series {
	b.Helper()
	for _, s := range r.Series {
		if s.Name == name {
			return s
		}
	}
	b.Fatalf("series %q missing from %s", name, r.ID)
	return experiments.Series{}
}

func meanTail(ys []float64, from, to int) float64 {
	if to > len(ys) {
		to = len(ys)
	}
	if from >= to {
		return 0
	}
	var sum float64
	for i := from; i < to; i++ {
		sum += ys[i]
	}
	return sum / float64(to-from)
}

// BenchmarkFig2 regenerates the original ACC experiment (Fig. 2):
// attack share under FIFO vs ACC vs ACC-Turbo during the plateau.
func BenchmarkFig2(b *testing.B) {
	r := runExperiment(b, "fig2")
	b.ReportMetric(meanTail(series(b, r, "FIFO/Agg5").Y, 20, 25), "fifo-attack-share")
	b.ReportMetric(meanTail(series(b, r, "ACC/Agg5").Y, 20, 25), "acc-attack-share")
	b.ReportMetric(meanTail(series(b, r, "ACC-Turbo/Agg5").Y, 20, 25), "turbo-attack-share")
}

// BenchmarkFig3 regenerates the pulse-wave experiment (Fig. 3):
// benign drop percentages per defense.
func BenchmarkFig3(b *testing.B) {
	r := runExperiment(b, "fig3")
	b.ReportMetric(series(b, r, "Fig3b/FIFO").Y[0], "fifo-benign-drops-%")
	b.ReportMetric(series(b, r, "Fig3b/ACC-Turbo").Y[0], "turbo-benign-drops-%")
	acc := series(b, r, "Fig3b/ACC benign drops vs K")
	best := acc.Y[0]
	for _, v := range acc.Y {
		if v < best {
			best = v
		}
	}
	b.ReportMetric(best, "acc-best-benign-drops-%")
}

// BenchmarkFig6 regenerates the hardware pulse-wave mitigation
// (Fig. 6): benign throughput during pulses, FIFO vs ACC-Turbo.
func BenchmarkFig6(b *testing.B) {
	r := runExperiment(b, "fig6")
	b.ReportMetric(meanTail(series(b, r, "FIFO/Output Benign").Y, 11, 19), "fifo-benign-mbps")
	b.ReportMetric(meanTail(series(b, r, "ACC-Turbo/Output Benign").Y, 11, 19), "turbo-benign-mbps")
}

// BenchmarkFig7 regenerates the reaction-time comparison (Fig. 7):
// benign throughput in the first attack second.
func BenchmarkFig7(b *testing.B) {
	r := runExperiment(b, "fig7")
	b.ReportMetric(series(b, r, "FIFO/Benign").Y[20], "fifo-first-second-mbps")
	b.ReportMetric(series(b, r, "ACC-Turbo/Benign").Y[20], "turbo-first-second-mbps")
	b.ReportMetric(series(b, r, "Jaqen/Benign").Y[20], "jaqen-first-second-mbps")
}

// BenchmarkFig8 regenerates the threshold-sensitivity sweep (Fig. 8):
// the spread of Jaqen's benign drops across thresholds vs ACC-Turbo's
// fixed (threshold-free) damage.
func BenchmarkFig8(b *testing.B) {
	r := runExperiment(b, "fig8")
	j := series(b, r, "Fig8a/Jaqen")
	lo, hi := j.Y[0], j.Y[0]
	for _, v := range j.Y {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	b.ReportMetric(hi-lo, "jaqen-threshold-spread-%")
	b.ReportMetric(series(b, r, "Fig8a/ACC-Turbo").Y[0], "turbo-benign-drops-%")
}

// BenchmarkFig9 regenerates the clustering-quality split (Fig. 9):
// average purity per vector class.
func BenchmarkFig9(b *testing.B) {
	r := runExperiment(b, "fig9")
	p := series(b, r, "Fig9a/Purity by vector")
	var refl, expl float64
	for i, v := range p.Y {
		if i < 7 {
			refl += v / 7
		} else {
			expl += v / 2
		}
	}
	b.ReportMetric(refl, "reflection-purity-%")
	b.ReportMetric(expl, "exploitation-purity-%")
}

// BenchmarkFig10 regenerates the strategy comparison (Fig. 10): purity
// of the deployable configuration and the strongest baseline at the
// largest cluster count.
func BenchmarkFig10(b *testing.B) {
	r := runExperiment(b, "fig10")
	manh := series(b, r, "Purity/Manh. Fast")
	anime := series(b, r, "Purity/Anime Exh.")
	km := series(b, r, "Purity/Off. KMeans")
	last := len(manh.Y) - 1
	b.ReportMetric(manh.Y[last], "manh-fast-purity-%")
	b.ReportMetric(anime.Y[last], "anime-exh-purity-%")
	b.ReportMetric(km.Y[last], "kmeans-purity-%")
}

// BenchmarkFig11 regenerates the scheduling evaluation (Fig. 11):
// benign drops at the largest swept bottleneck.
func BenchmarkFig11(b *testing.B) {
	r := runExperiment(b, "fig11")
	b.ReportMetric(series(b, r, "Fig11b/FIFO").Y[0], "fifo-benign-drops-%")
	b.ReportMetric(series(b, r, "Fig11b/Manh. Fast Th.").Y[0], "turbo-benign-drops-%")
	b.ReportMetric(series(b, r, "Fig11b/PIFO Ideal").Y[0], "ideal-benign-drops-%")
}

// BenchmarkTable3 regenerates the mitigation-efficiency table: benign
// drops for the spoofed-attack column (the one Jaqen cannot match).
func BenchmarkTable3(b *testing.B) {
	r := runExperiment(b, "table3")
	b.ReportMetric(series(b, r, "FIFO").Y[3], "fifo-spoofed-drops-%")
	b.ReportMetric(series(b, r, "Jaqen+ (5-tuple)").Y[3], "jaqen-spoofed-drops-%")
	b.ReportMetric(series(b, r, "ACC-Turbo").Y[3], "turbo-spoofed-drops-%")
}

// BenchmarkTable4 regenerates (and re-verifies) the ACC parameter
// table.
func BenchmarkTable4(b *testing.B) {
	r := runExperiment(b, "table4")
	b.ReportMetric(series(b, r, "K (s)").Y[0], "K-seconds")
	b.ReportMetric(series(b, r, "max sessions").Y[0], "sessions")
}

// BenchmarkDefenseProcess measures the standalone pipeline's per-packet
// cost — the number that would gate a software deployment of the
// public API. The flattened clusterer fast path keeps this path
// allocation free; internal/cluster's BenchmarkObserve isolates the
// clustering step across every distance/search configuration.
func BenchmarkDefenseProcess(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Clustering.SliceInit = true
	d := NewDefense(cfg)
	pkts := make([]*Packet, 256)
	for i := range pkts {
		pkts[i] = benignPacket(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Process(0, pkts[i%len(pkts)])
	}
}

// BenchmarkDefenseProcessExhaustive is the same pipeline under
// exhaustive search, where the incremental merge-cost cache (instead
// of an O(|C|^2) rescan per packet) carries the load.
func BenchmarkDefenseProcessExhaustive(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Clustering.Search = SearchExhaustive
	d := NewDefense(cfg)
	pkts := make([]*Packet, 256)
	for i := range pkts {
		pkts[i] = benignPacket(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Process(0, pkts[i%len(pkts)])
	}
}

// BenchmarkObserveBatch measures the amortized per-packet cost of the
// batched ingest path (256-packet batches): one queue-map load, one
// shard-lock round and one telemetry flush per batch instead of per
// packet. Reported per packet for direct comparison with
// BenchmarkDefenseProcess; the steady-state path is allocation-free
// (gated by TestObserveBatchZeroAlloc in internal/core).
func BenchmarkObserveBatch(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Clustering.SliceInit = true
			cfg.Shards = shards
			var d *Defense
			if shards > 1 {
				d = NewRealTimeDefense(cfg)
				defer d.Close()
			} else {
				d = NewDefense(cfg)
			}
			const batch = 256
			pkts := make([]*Packet, batch)
			for i := range pkts {
				pkts[i] = benignPacket(i)
			}
			queues := make([]int, batch)
			d.ObserveBatch(0, pkts, queues) // warm clusterers and scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				d.ObserveBatch(0, pkts, queues)
			}
		})
	}
}

// BenchmarkEndToEndSim is the whole-simulator benchmark behind the
// EXPERIMENTS.md perf table: one full fig8-quick run per iteration —
// event engine, traffic generation, packet pooling, queueing, clustering
// and the control loop all on the clock. The allocs/op column is the
// headline: the per-packet path allocates nothing, so the total stays
// flat as simulated traffic grows.
func BenchmarkEndToEndSim(b *testing.B) {
	e, err := experiments.ByID("fig8")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run(benchOpts)
	}
}

// BenchmarkDefenseSharded measures aggregate Observe throughput of the
// concurrent pipeline at 1/2/4/8 shards, fed via RunParallel from
// GOMAXPROCS goroutines. All shard counts run the same locked
// concurrent mode, so the sweep isolates what sharding buys: per-shard
// locks stop contending once flows spread across pipelines. On a
// multi-core runner 4 shards should clear ~2x the 1-shard rate; on a
// single core the sweep degenerates to lock overhead only.
func BenchmarkDefenseSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Clustering.SliceInit = true
			cfg.Shards = shards
			d := NewRealTimeDefense(cfg)
			defer d.Close()
			pkts := make([]*Packet, 1024)
			for i := range pkts {
				pkts[i] = benignPacket(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					d.Process(0, pkts[i%len(pkts)])
					i++
				}
			})
		})
	}
}

// BenchmarkAdversarial regenerates the §9 extension: mitigation
// degradation under evasion.
func BenchmarkAdversarial(b *testing.B) {
	r := runExperiment(b, "adversarial")
	ev := series(b, r, "Evasion/benign drops")
	b.ReportMetric(ev.Y[0], "plain-flood-benign-drops-%")
	b.ReportMetric(ev.Y[len(ev.Y)-1], "full-random-benign-drops-%")
}

// BenchmarkAblations regenerates the design-knob ablations: the
// controller-period lever.
func BenchmarkAblations(b *testing.B) {
	r := runExperiment(b, "ablations")
	poll := series(b, r, "Poll period (s) vs benign drops")
	b.ReportMetric(poll.Y[0], "fast-controller-benign-drops-%")
	b.ReportMetric(poll.Y[len(poll.Y)-1], "slow-controller-benign-drops-%")
	b.ReportMetric(series(b, r, "Reordered delivered packets (%)").Y[0], "reordered-%")
}

// BenchmarkPushback regenerates the original-ACC pushback extension.
func BenchmarkPushback(b *testing.B) {
	r := runExperiment(b, "pushback")
	b.ReportMetric(series(b, r, "Local ACC/benign drops").Y[0], "local-benign-drops-%")
	b.ReportMetric(series(b, r, "Pushback ACC/benign drops").Y[0], "pushback-benign-drops-%")
}

// BenchmarkTCP regenerates the closed-loop AIMD extension.
func BenchmarkTCP(b *testing.B) {
	r := runExperiment(b, "tcp")
	b.ReportMetric(series(b, r, "FIFO/total goodput (Mbps)").Y[0], "fifo-goodput-mbps")
	b.ReportMetric(series(b, r, "ACC-Turbo/total goodput (Mbps)").Y[0], "turbo-goodput-mbps")
}
