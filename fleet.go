package accturbo

import (
	"fmt"
	"sync"

	"accturbo/internal/core"
	"accturbo/internal/fleet"
)

// Fleet-facing re-exports, so fleet operators need no internal imports.
type (
	// FleetCoordinatorStats is the coordinator's counter snapshot.
	FleetCoordinatorStats = fleet.Stats
	// FleetNodeStats is one node's fleet counter snapshot.
	FleetNodeStats = fleet.NodeStats
)

// FleetConfig parameterizes NewFleet.
type FleetConfig struct {
	// Nodes is the number of vantage points (>= 1). Every node runs its
	// own full Defense pipeline; only the ranking is global.
	Nodes int
	// Node is the per-node pipeline configuration. Structural settings
	// (features, MaxClusters, NumQueues, SliceInit) must be identical
	// across the fleet — slot identity is what makes the coordinator's
	// slot-wise merge meaningful — so one Config covers all nodes.
	// Node.Ranker must be nil (the fleet installs its own).
	Node Config
	// StaleAfter is the partition-detection bound: a node that has not
	// seen a fleet deployment for this long falls back to ranking its
	// own snapshot locally (never to undefended FIFO). Zero defaults to
	// 3x Node.PollInterval.
	StaleAfter VirtualTime
	// TransportDepth bounds the in-process transport queue (<= 0
	// defaults to 256). Overflow drops frames the way a congested
	// control network would; the staleness bound absorbs the loss.
	TransportDepth int
}

// Fleet runs N Defense pipelines as one distributed ACC-Turbo
// deployment: every node publishes its per-window cluster snapshot to
// an in-process coordinator, which merges them slot-wise and broadcasts
// one global cluster→queue mapping back. An aggregate whose sources are
// spread across nodes — the case single-node clustering systematically
// misranks — is demoted by its fleet-wide rate on every node.
//
// Each node is a full real-time Defense: feed node i's traffic through
// Fleet.Node(i).Process / Offer / ObserveBatch from any goroutine, and
// inspect it with the usual Health/Metrics/Clusters accessors. A node's
// Health reports RankSource "fleet" while the coordinator is reachable
// and "fleet-fallback:local" (with the Degraded bit set) while
// partitioned.
type Fleet struct {
	tr      *fleet.ChanTransport
	coord   *fleet.Coordinator
	nodes   []*Defense
	rankers []*fleet.Node

	closeOnce sync.Once
}

// NewFleet builds and starts a fleet. It panics on an invalid
// configuration; NewFleetE is the error-returning variant.
func NewFleet(cfg FleetConfig) *Fleet {
	f, err := NewFleetE(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// NewFleetE is NewFleet returning configuration errors instead of
// panicking.
func NewFleetE(cfg FleetConfig) (*Fleet, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("accturbo: fleet needs at least 1 node, got %d", cfg.Nodes)
	}
	if cfg.Node.Ranker != nil {
		return nil, fmt.Errorf("accturbo: FleetConfig.Node.Ranker must be nil; the fleet installs its own ranker per node")
	}
	if err := cfg.Node.Validate(); err != nil {
		return nil, err
	}
	// Mirror the pipeline's own defaulting (core applies it inside the
	// constructors): the coordinator and rankers must size their slots
	// and queues exactly like the nodes they serve.
	if cfg.Node.NumQueues == 0 {
		cfg.Node.NumQueues = cfg.Node.Clustering.MaxClusters
	}
	staleAfter := cfg.StaleAfter
	if staleAfter <= 0 {
		staleAfter = 3 * cfg.Node.PollInterval
	}

	tr := fleet.NewChanTransport(cfg.TransportDepth)
	f := &Fleet{tr: tr}
	coord, err := fleet.NewCoordinator(tr, fleet.CoordinatorConfig{
		Slots:     cfg.Node.Clustering.MaxClusters,
		NumQueues: cfg.Node.NumQueues,
		Ranking:   cfg.Node.Ranking,
		Distance:  cfg.Node.Clustering.Distance,
	})
	if err != nil {
		tr.Close()
		return nil, err
	}
	f.coord = coord

	for i := 0; i < cfg.Nodes; i++ {
		// Replicates NewRealTimeDefenseE, with the ranker seam pointed
		// at the fleet: the clock must exist before the ranker (the
		// ranker stamps deployment arrivals with it) and the ranker
		// before the control plane.
		clock := core.NewWallClock()
		ranker, err := fleet.NewNode(uint32(i+1), tr, clock.Now, fleet.NodeConfig{
			Slots:      cfg.Node.Clustering.MaxClusters,
			NumQueues:  cfg.Node.NumQueues,
			StaleAfter: staleAfter,
		})
		if err != nil {
			clock.Close()
			f.Close()
			return nil, err
		}
		nodeCfg := cfg.Node
		nodeCfg.Ranker = ranker
		d := &Defense{
			cfg:   nodeCfg,
			clock: clock,
			dp:    core.NewDataplane(nodeCfg, true),
		}
		cp, err := core.NewControlPlaneE(d.dp, clock, nodeCfg)
		if err != nil {
			clock.Close()
			f.Close()
			return nil, err
		}
		d.cp = cp
		d.describe()
		f.nodes = append(f.nodes, d)
		f.rankers = append(f.rankers, ranker)
	}
	// Start the control loops only after every node is wired: the first
	// polls already publish snapshots, and a partially built fleet would
	// bake an asymmetric merge into the first epochs.
	for _, d := range f.nodes {
		d.cp.Start()
	}
	return f, nil
}

// Nodes returns the number of vantage points.
func (f *Fleet) Nodes() int { return len(f.nodes) }

// Node returns vantage point i's Defense pipeline. Do not Close it
// directly; Fleet.Close owns the shutdown ordering.
func (f *Fleet) Node(i int) *Defense { return f.nodes[i] }

// NodeStats returns vantage point i's fleet counters (publishes,
// fleet vs fallback polls, rejected deploys).
func (f *Fleet) NodeStats(i int) FleetNodeStats { return f.rankers[i].Stats() }

// CoordinatorStats returns the coordinator's counters.
func (f *Fleet) CoordinatorStats() FleetCoordinatorStats { return f.coord.Stats() }

// MergedClusters returns the fleet-wide slot-merged cluster snapshot —
// the coordinator's interpretability view across all vantage points.
func (f *Fleet) MergedClusters() []ClusterInfo { return f.coord.MergedView() }

// LastGlobalDecision returns the most recently broadcast global
// decision (nil before the first node reports).
func (f *Fleet) LastGlobalDecision() *Decision { return f.coord.LastDecision() }

// SetLink raises (true) or partitions (false) the coordinator link for
// the whole fleet: while down, snapshots and deployments are dropped
// and every node degrades to local ranking once its StaleAfter bound
// expires. Safe from any goroutine.
func (f *Fleet) SetLink(up bool) { f.tr.SetUp(up) }

// Close stops the fleet: every node's control plane first — after
// which no ranker can publish — and the shared transport last, so a
// poll racing Close still finds a live transport (or gets a counted
// ErrClosed, never a panic). Idempotent.
func (f *Fleet) Close() {
	f.closeOnce.Do(func() {
		for _, d := range f.nodes {
			d.Close()
		}
		f.tr.Close()
	})
}
