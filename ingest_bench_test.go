package accturbo

import (
	"bytes"
	"io"
	"runtime"
	"testing"

	"accturbo/internal/eventsim"
	"accturbo/internal/pcap"
)

// Ingest-path benchmarks: the numbers behind the README Mpps headline
// and the BENCH_ingest.json baseline the CI trend gate protects. All
// three report amortized ns per packet through the SPSC ring pipeline —
// producer work, hand-off, and the per-shard classifying consumer all
// included (they share the CPU, exactly as a deployment's offered load
// would see it).

// benchDefense builds a real-time pipeline with the bounded ingest
// stage enabled, mirroring cmd/accturbo-defend's replay setup.
func benchDefense(b *testing.B, shards, capacity, lanes int) *Defense {
	b.Helper()
	d := NewRealTimeDefense(realtimeCfg(shards))
	if err := d.EnableIngest(capacity, lanes); err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkIngestOffer is the legacy producer API: decoded packets
// through the per-lane ring under the lane mutex.
func BenchmarkIngestOffer(b *testing.B) {
	d := benchDefense(b, 1, 1<<13, 1)
	defer d.Close()
	pkts := make([]*Packet, 1024)
	for i := range pkts {
		pkts[i] = benignPacket(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for !d.Offer(pkts[i%len(pkts)]) {
			runtime.Gosched()
		}
	}
}

// BenchmarkIngestOfferFrame is the wire-speed producer API: raw IPv4
// frames through the fused feature decode and an exclusive lane with
// batched publish.
func BenchmarkIngestOfferFrame(b *testing.B) {
	d := benchDefense(b, 1, 1<<13, 1)
	defer d.Close()
	lane := d.Lane(0)
	frames := frameCorpus(b, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
	offer:
		for {
			switch lane.OfferFrame(frames[i%len(frames)]) {
			case OfferAccepted:
				break offer
			case OfferFull:
				lane.Flush()
				runtime.Gosched()
			default:
				b.Fatal("frame rejected or stage closed")
			}
		}
	}
	b.StopTimer()
	lane.Flush()
}

// BenchmarkReplayFrames is the full -replay pipeline on an in-memory
// capture: MappedReader iteration, fused decode, ring hand-off, and
// classification, looped over the image exactly like
// `accturbo-defend -replay`.
func BenchmarkReplayFrames(b *testing.B) {
	var buf bytes.Buffer
	w, err := pcap.NewNanoWriter(&buf)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		if err := w.Write(eventsim.Time(i)*eventsim.Microsecond, benignPacket(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	m, err := pcap.NewMappedReader(buf.Bytes())
	if err != nil {
		b.Fatal(err)
	}
	d := benchDefense(b, 1, 1<<13, 1)
	defer d.Close()
	lane := d.Lane(0)
	b.ReportAllocs()
	b.ResetTimer()
	frames := 0
	for frames < b.N {
		m.Reset()
		for frames < b.N {
			_, frame, err := m.NextFrame()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		offer:
			for {
				switch lane.OfferFrame(frame) {
				case OfferAccepted:
					frames++
					break offer
				case OfferFull:
					lane.Flush()
					runtime.Gosched()
				default:
					b.Fatal("frame rejected or stage closed")
				}
			}
		}
	}
	b.StopTimer()
	lane.Flush()
}
