//go:build unix && !linux

package pcap

// Non-Linux unix has no MAP_POPULATE; pages fault in lazily.
const mmapPopulate = 0
