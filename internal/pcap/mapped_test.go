package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
	"testing"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
)

// captureBytes serializes fixture packets with the chosen writer.
func captureBytes(t *testing.T, nanos bool, pkts []timedPkt) []byte {
	t.Helper()
	var buf bytes.Buffer
	mk := NewWriter
	if nanos {
		mk = NewNanoWriter
	}
	w, err := mk(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range pkts {
		if err := w.Write(tp.At, tp.Pkt); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestNanoRoundTrip: the nanosecond magic preserves the simulator's
// full clock resolution through a write/read cycle — including
// sub-microsecond offsets the classic magic truncates.
func TestNanoRoundTrip(t *testing.T) {
	pkts := fixturePackets(50)
	for i := range pkts {
		pkts[i].At += eventsim.Time(i * 7) // non-zero nanosecond remainders
	}
	data := captureBytes(t, true, pkts)
	if got := binary.LittleEndian.Uint32(data[0:4]); got != magicNanos {
		t.Fatalf("magic %#x, want %#x", got, magicNanos)
	}
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		at, p, err := r.Next()
		if err == io.EOF {
			if i != len(pkts) {
				t.Fatalf("read %d packets, wrote %d", i, len(pkts))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if at != pkts[i].At {
			t.Fatalf("packet %d at %v, want %v (nanos must be lossless)", i, at, pkts[i].At)
		}
		if p.SrcIP != pkts[i].Pkt.SrcIP || p.Length != pkts[i].Pkt.Length {
			t.Fatalf("packet %d differs", i)
		}
	}
}

// TestMicrosTruncation pins the classic magic's documented behaviour:
// sub-microsecond detail is dropped, not rounded up or corrupted.
func TestMicrosTruncation(t *testing.T) {
	at := 3*eventsim.Second + 123*eventsim.Microsecond + 456*eventsim.Nanosecond
	pkts := []timedPkt{{At: at, Pkt: fixturePackets(1)[0].Pkt}}
	r, err := NewReader(bytes.NewReader(captureBytes(t, false, pkts)))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if want := 3*eventsim.Second + 123*eventsim.Microsecond; got != want {
		t.Fatalf("timestamp %v, want %v", got, want)
	}
}

// TestMappedReaderMatchesReader: the zero-copy mapped iteration must
// yield exactly the streaming reader's records — same timestamps, same
// frame bytes — for both magics.
func TestMappedReaderMatchesReader(t *testing.T) {
	for _, nanos := range []bool{false, true} {
		pkts := fixturePackets(200)
		data := captureBytes(t, nanos, pkts)
		stream, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		mapped, err := NewMappedReader(data)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; ; i++ {
			wantAt, wantPkt, werr := stream.Next()
			gotAt, frame, gerr := mapped.NextFrame()
			if (werr == io.EOF) != (gerr == io.EOF) {
				t.Fatalf("nanos=%v record %d: stream err %v, mapped err %v", nanos, i, werr, gerr)
			}
			if werr == io.EOF {
				break
			}
			if werr != nil || gerr != nil {
				t.Fatalf("nanos=%v record %d: stream err %v, mapped err %v", nanos, i, werr, gerr)
			}
			if gotAt != wantAt {
				t.Fatalf("nanos=%v record %d: mapped at %v, stream at %v", nanos, i, gotAt, wantAt)
			}
			p, err := packet.Unmarshal(frame)
			if err != nil {
				t.Fatalf("nanos=%v record %d: mapped frame does not parse: %v", nanos, i, err)
			}
			if p.SrcIP != wantPkt.SrcIP || p.Length != wantPkt.Length || p.SrcPort != wantPkt.SrcPort {
				t.Fatalf("nanos=%v record %d: frame differs from streamed packet", nanos, i)
			}
		}
	}
}

// TestMappedReaderReset: Reset rewinds to the first record and yields
// the identical sequence, the contract -replay-loops depends on.
func TestMappedReaderReset(t *testing.T) {
	data := captureBytes(t, true, fixturePackets(10))
	m, err := NewMappedReader(data)
	if err != nil {
		t.Fatal(err)
	}
	var first [][]byte
	for {
		_, frame, err := m.NextFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		first = append(first, frame)
	}
	m.Reset()
	for i := 0; ; i++ {
		_, frame, err := m.NextFrame()
		if err == io.EOF {
			if i != len(first) {
				t.Fatalf("second pass yielded %d frames, first %d", i, len(first))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(frame, first[i]) {
			t.Fatalf("frame %d differs across Reset", i)
		}
	}
}

// TestMappedReaderBigEndian: a hand-built big-endian nanosecond capture
// reads correctly through the mapped path.
func TestMappedReaderBigEndian(t *testing.T) {
	p := &packet.Packet{
		SrcIP: packet.V4(1, 2, 3, 4), DstIP: packet.V4(5, 6, 7, 8),
		Length: 20, TTL: 9, Protocol: packet.ProtoICMP,
	}
	wire, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:4], magicNanos)
	binary.BigEndian.PutUint32(hdr[20:24], 101)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.BigEndian.PutUint32(rec[0:4], 7)
	binary.BigEndian.PutUint32(rec[4:8], 500000001)
	binary.BigEndian.PutUint32(rec[8:12], uint32(len(wire)))
	binary.BigEndian.PutUint32(rec[12:16], uint32(len(wire)))
	buf.Write(rec)
	buf.Write(wire)

	m, err := NewMappedReader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	at, frame, err := m.NextFrame()
	if err != nil {
		t.Fatal(err)
	}
	if want := 7*eventsim.Second + 500*eventsim.Millisecond + eventsim.Nanosecond; at != want {
		t.Fatalf("timestamp %v, want %v", at, want)
	}
	if !bytes.Equal(frame, wire) {
		t.Fatal("frame bytes differ")
	}
	if _, _, err := m.NextFrame(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

// TestMappedReaderTruncation: a capture cut mid-record errors instead
// of silently ending, for both the header and the body cut.
func TestMappedReaderTruncation(t *testing.T) {
	data := captureBytes(t, false, fixturePackets(2))
	for _, cut := range []int{len(data) - 5, len(data) - 30} {
		m, err := NewMappedReader(data[:cut])
		if err != nil {
			t.Fatal(err)
		}
		sawErr := false
		for {
			_, _, err := m.NextFrame()
			if err == io.EOF {
				break
			}
			if err != nil {
				sawErr = true
				break
			}
		}
		if !sawErr {
			t.Fatalf("cut at %d: truncated capture iterated to clean EOF", cut)
		}
	}
	if _, err := NewMappedReader([]byte{1, 2, 3}); err == nil {
		t.Fatal("header-less image accepted")
	}
	if _, err := NewMappedReader(bytes.Repeat([]byte{0xaa}, 24)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestOpenMapped: the file-backed constructor (mmap on unix, read-all
// elsewhere) yields the same frames as the in-memory image, and Close
// releases it.
func TestOpenMapped(t *testing.T) {
	pkts := fixturePackets(64)
	data := captureBytes(t, true, pkts)
	path := filepath.Join(t.TempDir(), "trace.pcap")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		at, frame, err := m.NextFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if at != pkts[n].At {
			t.Fatalf("frame %d at %v, want %v", n, at, pkts[n].At)
		}
		if _, err := packet.ParseFrame(frame); err != nil {
			t.Fatalf("frame %d does not parse: %v", n, err)
		}
		n++
	}
	if n != len(pkts) {
		t.Fatalf("mapped %d frames, wrote %d", n, len(pkts))
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := OpenMapped(filepath.Join(t.TempDir(), "missing.pcap")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestMappedReaderZeroAlloc: iterating a mapped capture allocates
// nothing per frame.
func TestMappedReaderZeroAlloc(t *testing.T) {
	data := captureBytes(t, true, fixturePackets(128))
	m, err := NewMappedReader(data)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		m.Reset()
		for {
			_, _, err := m.NextFrame()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("mapped iteration allocates %v per pass, want 0", allocs)
	}
}

// The compile-time contract the replay pipeline relies on.
var _ FrameSource = (*MappedReader)(nil)
