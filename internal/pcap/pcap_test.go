package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
)

// timedPkt pairs a packet with a timestamp for test fixtures (the
// traffic package cannot be imported here: it depends on pcap).
type timedPkt struct {
	At  eventsim.Time
	Pkt *packet.Packet
}

// fixturePackets builds n deterministic UDP packets spaced 1 ms apart.
func fixturePackets(n int) []timedPkt {
	out := make([]timedPkt, n)
	for i := range out {
		out[i] = timedPkt{
			At: eventsim.Time(i) * eventsim.Millisecond,
			Pkt: &packet.Packet{
				SrcIP: packet.V4(10, 1, 2, byte(i)), DstIP: packet.V4(10, 4, 5, 6),
				Protocol: packet.ProtoUDP, SrcPort: 123, DstPort: 456,
				TTL: 61, Length: uint16(300 + i%100),
			},
		}
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	pkts := fixturePackets(100)

	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range pkts {
		if err := w.Write(tp.At, tp.Pkt); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		at, p, err := r.Next()
		if err == io.EOF {
			if i != len(pkts) {
				t.Fatalf("read %d packets, wrote %d", i, len(pkts))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		want := pkts[i]
		// Timestamps round to microseconds.
		if at/eventsim.Microsecond != want.At/eventsim.Microsecond {
			t.Fatalf("packet %d at %v, want %v", i, at, want.At)
		}
		if p.SrcIP != want.Pkt.SrcIP || p.DstIP != want.Pkt.DstIP ||
			p.SrcPort != want.Pkt.SrcPort || p.DstPort != want.Pkt.DstPort ||
			p.Length != want.Pkt.Length || p.TTL != want.Pkt.TTL {
			t.Fatalf("packet %d differs: %+v vs %+v", i, p, want.Pkt)
		}
	}
}

func TestGlobalHeaderFormat(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf); err != nil {
		t.Fatal(err)
	}
	hdr := buf.Bytes()
	if len(hdr) != 24 {
		t.Fatalf("header length %d", len(hdr))
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != 0xa1b2c3d4 {
		t.Fatal("bad magic")
	}
	if binary.LittleEndian.Uint32(hdr[20:24]) != 101 {
		t.Fatal("linktype must be RAW (101)")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a pcap file at all....."))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReaderBigEndian(t *testing.T) {
	// Build a big-endian capture by hand with one 20-byte IPv4 packet.
	p := &packet.Packet{
		SrcIP: packet.V4(1, 2, 3, 4), DstIP: packet.V4(5, 6, 7, 8),
		Length: 20, TTL: 9, Protocol: packet.ProtoICMP,
	}
	wire, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:4], 0xa1b2c3d4)
	binary.BigEndian.PutUint32(hdr[20:24], 101)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.BigEndian.PutUint32(rec[0:4], 7)
	binary.BigEndian.PutUint32(rec[4:8], 500000)
	binary.BigEndian.PutUint32(rec[8:12], uint32(len(wire)))
	binary.BigEndian.PutUint32(rec[12:16], uint32(len(wire)))
	buf.Write(rec)
	buf.Write(wire)

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	at, q, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if at != 7*eventsim.Second+500*eventsim.Millisecond {
		t.Fatalf("timestamp %v", at)
	}
	if q.SrcIP != p.SrcIP || q.TTL != 9 {
		t.Fatalf("packet %+v", q)
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	p := &packet.Packet{
		SrcIP: packet.V4(1, 2, 3, 4), DstIP: packet.V4(5, 6, 7, 8),
		Length: 100, TTL: 9, Protocol: packet.ProtoUDP,
	}
	w.Write(0, p)
	w.Flush()
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-10]))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Next(); err == nil {
		t.Fatal("truncated record accepted")
	}
}

// Property: random packets round-trip with fields intact.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		n := 1 + r.Intn(20)
		var orig []*packet.Packet
		for i := 0; i < n; i++ {
			p := &packet.Packet{
				SrcIP:    packet.V4(byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))),
				DstIP:    packet.V4(byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))),
				Protocol: packet.ProtoUDP,
				SrcPort:  uint16(r.Intn(65536)),
				DstPort:  uint16(r.Intn(65536)),
				TTL:      uint8(r.Intn(256)),
				Length:   uint16(28 + r.Intn(1400)),
			}
			orig = append(orig, p)
			if err := w.Write(eventsim.Time(i)*eventsim.Millisecond, p); err != nil {
				return false
			}
		}
		w.Flush()
		rd, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for i := 0; ; i++ {
			_, p, err := rd.Next()
			if err == io.EOF {
				return i == n
			}
			if err != nil {
				return false
			}
			o := orig[i]
			if p.SrcIP != o.SrcIP || p.DstIP != o.DstIP || p.SrcPort != o.SrcPort ||
				p.DstPort != o.DstPort || p.TTL != o.TTL || p.Length != o.Length {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWrite(b *testing.B) {
	p := &packet.Packet{
		SrcIP: packet.V4(1, 2, 3, 4), DstIP: packet.V4(5, 6, 7, 8),
		Length: 500, TTL: 64, Protocol: packet.ProtoUDP, SrcPort: 1, DstPort: 2,
	}
	w, _ := NewWriter(io.Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.Write(eventsim.Time(i), p); err != nil {
			b.Fatal(err)
		}
	}
}
