package pcap

import (
	"bytes"
	"io"
	"testing"

	"accturbo/internal/packet"
)

// FuzzReader checks the pcap reader never panics on arbitrary input
// and terminates (EOF or error) on every stream.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	p := &packet.Packet{
		SrcIP: packet.V4(1, 2, 3, 4), DstIP: packet.V4(5, 6, 7, 8),
		Length: 100, TTL: 9, Protocol: packet.ProtoUDP,
	}
	w.Write(0, p)
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 10_000; i++ {
			if _, _, err := r.Next(); err != nil {
				if err != io.EOF {
					return
				}
				return
			}
		}
	})
}
