package pcap

import (
	"fmt"
	"os"
)

// openReadAll is the portable MappedReader constructor: the whole
// capture image is read into memory in one pass.
func openReadAll(path string) (*MappedReader, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("pcap: reading capture: %w", err)
	}
	return NewMappedReader(data)
}
