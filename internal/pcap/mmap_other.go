//go:build !unix

package pcap

// OpenMapped returns a MappedReader over the capture file. On platforms
// without mmap the whole image is read into memory — same zero-copy
// iteration, one up-front copy.
func OpenMapped(path string) (*MappedReader, error) {
	return openReadAll(path)
}
