//go:build unix

package pcap

import (
	"fmt"
	"os"
	"syscall"
)

// OpenMapped memory-maps a capture file read-only and returns a
// MappedReader over it: the replay path touches each frame's bytes
// exactly once, straight out of the page cache, with no read syscalls
// or copies. Close unmaps. An empty file cannot be mapped and is
// rejected like any header-less image.
func OpenMapped(path string) (*MappedReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pcap: opening capture: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("pcap: stat capture: %w", err)
	}
	size := st.Size()
	if size < 24 {
		return nil, fmt.Errorf("pcap: capture image of %d bytes has no global header", size)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("pcap: capture of %d bytes exceeds the address space", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED|mmapPopulate)
	if err != nil {
		// Filesystems without mmap support (or exotic files) fall back
		// to reading the image into memory.
		return openReadAll(path)
	}
	m, err := NewMappedReader(data)
	if err != nil {
		syscall.Munmap(data)
		return nil, err
	}
	m.munmap = func() error { return syscall.Munmap(data) }
	return m, nil
}
