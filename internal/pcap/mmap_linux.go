//go:build linux

package pcap

import "syscall"

// mmapPopulate prefaults the whole capture into the page table at map
// time, so replay loops never take minor faults inside the timed
// iteration. Linux-only; elsewhere the pages fault in lazily.
const mmapPopulate = syscall.MAP_POPULATE
