// Package pcap reads and writes libpcap capture files (the classic
// 24-byte-global-header format, LINKTYPE_RAW) using only the standard
// library. The trace tooling uses it to export synthetic workloads and
// replay them, so generated traces are inspectable with tcpdump or
// Wireshark.
//
// Virtual simulation timestamps map to the seconds/sub-seconds fields
// directly: a packet at eventsim.Time t is stored with ts = t since the
// epoch. Both timestamp resolutions of the classic format are
// supported: microseconds (magic 0xa1b2c3d4, the Writer default, which
// truncates the simulator's nanosecond clock) and nanoseconds (magic
// 0xa1b23c4d, NewNanoWriter, lossless).
//
// For replay there is a second, zero-copy read path: MappedReader
// iterates raw frame bytes directly out of an in-memory capture image
// — memory-mapped from a file by OpenMapped on unix — without copying
// or decoding packets (see pcap.FrameSource).
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
)

const (
	magicMicros = 0xa1b2c3d4
	magicNanos  = 0xa1b23c4d
	// linktypeRaw means packets start directly at the IP header.
	linktypeRaw = 101
	snaplen     = 65535
)

// Errors returned by the reader.
var (
	ErrBadMagic = errors.New("pcap: bad magic number")
)

// Writer streams packets into a pcap file.
type Writer struct {
	w     *bufio.Writer
	buf   []byte
	nanos bool
}

// NewWriter writes the global header of a microsecond-resolution
// capture (the classic magic, readable by everything) and returns a
// Writer. Sub-microsecond timestamp detail is truncated.
func NewWriter(w io.Writer) (*Writer, error) { return newWriter(w, false) }

// NewNanoWriter is NewWriter with the nanosecond magic (0xa1b23c4d):
// the simulator's nanosecond clock round-trips losslessly.
func NewNanoWriter(w io.Writer) (*Writer, error) { return newWriter(w, true) }

func newWriter(w io.Writer, nanos bool) (*Writer, error) {
	bw := bufio.NewWriter(w)
	hdr := make([]byte, 24)
	magic := uint32(magicMicros)
	if nanos {
		magic = magicNanos
	}
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // version major
	binary.LittleEndian.PutUint16(hdr[6:8], 4) // version minor
	binary.LittleEndian.PutUint32(hdr[16:20], snaplen)
	binary.LittleEndian.PutUint32(hdr[20:24], linktypeRaw)
	if _, err := bw.Write(hdr); err != nil {
		return nil, fmt.Errorf("pcap: writing global header: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return nil, fmt.Errorf("pcap: flushing global header: %w", err)
	}
	return &Writer{w: bw, nanos: nanos}, nil
}

// subsec converts a timestamp's sub-second part to the capture's
// resolution unit.
func subsec(at eventsim.Time, nanos bool) uint32 {
	rem := at % eventsim.Second
	if nanos {
		return uint32(rem / eventsim.Nanosecond)
	}
	return uint32(rem / eventsim.Microsecond)
}

// Write appends one packet with the given virtual timestamp.
func (w *Writer) Write(at eventsim.Time, p *packet.Packet) error {
	n := p.WireLen()
	if cap(w.buf) < n+16 {
		w.buf = make([]byte, n+16)
	}
	b := w.buf[:n+16]
	binary.LittleEndian.PutUint32(b[0:4], uint32(at/eventsim.Second))
	binary.LittleEndian.PutUint32(b[4:8], subsec(at, w.nanos))
	binary.LittleEndian.PutUint32(b[8:12], uint32(n))
	binary.LittleEndian.PutUint32(b[12:16], uint32(n))
	if err := p.MarshalTo(b[16:]); err != nil {
		return fmt.Errorf("pcap: marshaling packet: %w", err)
	}
	if _, err := w.w.Write(b); err != nil {
		return fmt.Errorf("pcap: writing record: %w", err)
	}
	return nil
}

// Flush writes buffered records through to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// parseMagic classifies a capture's magic number into its byte order
// and timestamp resolution.
func parseMagic(b []byte) (swapped, nanos bool, err error) {
	switch binary.LittleEndian.Uint32(b) {
	case magicMicros:
		return false, false, nil
	case magicNanos:
		return false, true, nil
	}
	switch binary.BigEndian.Uint32(b) {
	case magicMicros:
		return true, false, nil
	case magicNanos:
		return true, true, nil
	}
	return false, false, ErrBadMagic
}

// tsOf converts a record's seconds/sub-seconds pair to virtual time at
// the capture's resolution.
func tsOf(sec, sub uint32, nanos bool) eventsim.Time {
	unit := eventsim.Microsecond
	if nanos {
		unit = eventsim.Nanosecond
	}
	return eventsim.Time(sec)*eventsim.Second + eventsim.Time(sub)*unit
}

// Reader streams packets out of a pcap file.
type Reader struct {
	r       *bufio.Reader
	swapped bool
	nanos   bool
	buf     []byte
}

// NewReader parses the global header. Both byte orders and both
// timestamp resolutions (microsecond 0xa1b2c3d4 and nanosecond
// 0xa1b23c4d magic) of raw-IP captures are accepted.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("pcap: reading global header: %w", err)
	}
	swapped, nanos, err := parseMagic(hdr[0:4])
	if err != nil {
		return nil, err
	}
	return &Reader{r: br, swapped: swapped, nanos: nanos}, nil
}

func (r *Reader) u32(b []byte) uint32 {
	if r.swapped {
		return binary.BigEndian.Uint32(b)
	}
	return binary.LittleEndian.Uint32(b)
}

// Next returns the next packet and its timestamp, or io.EOF at the end
// of the capture.
func (r *Reader) Next() (eventsim.Time, *packet.Packet, error) {
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(r.r, hdr); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("pcap: reading record header: %w", err)
	}
	sec := r.u32(hdr[0:4])
	sub := r.u32(hdr[4:8])
	caplen := r.u32(hdr[8:12])
	if caplen > snaplen {
		return 0, nil, fmt.Errorf("pcap: capture length %d exceeds snaplen", caplen)
	}
	if cap(r.buf) < int(caplen) {
		r.buf = make([]byte, caplen)
	}
	b := r.buf[:caplen]
	if _, err := io.ReadFull(r.r, b); err != nil {
		return 0, nil, fmt.Errorf("pcap: reading record body: %w", err)
	}
	p, err := packet.Unmarshal(b)
	if err != nil {
		return 0, nil, err
	}
	return tsOf(sec, sub, r.nanos), p, nil
}

// FrameSource yields raw capture frames in order: NextFrame returns the
// next record's timestamp and its frame bytes, or io.EOF at the end.
// The returned slice may alias source-owned memory — valid until the
// source is closed, not across Reset — so consumers that queue frames
// must keep the source open until they drain.
type FrameSource interface {
	NextFrame() (eventsim.Time, []byte, error)
}

// MappedReader iterates a capture held entirely in memory, handing out
// frame byte slices that alias the image — no per-packet copy, no
// decode. Pair it with packet.ParseFrame/DecodeFeatures for the
// wire-speed replay path, and with OpenMapped to map a capture file.
// Reset rewinds to the first record, so a hot loop can replay the same
// image repeatedly. Not safe for concurrent use.
type MappedReader struct {
	data    []byte
	off     int
	swapped bool
	nanos   bool
	munmap  func() error
	pf      byte // software-prefetch sink; see NextFrame
}

// NewMappedReader parses the global header of an in-memory capture
// image. The image must outlive every frame slice handed out.
func NewMappedReader(data []byte) (*MappedReader, error) {
	if len(data) < 24 {
		return nil, fmt.Errorf("pcap: capture image of %d bytes has no global header", len(data))
	}
	swapped, nanos, err := parseMagic(data[0:4])
	if err != nil {
		return nil, err
	}
	return &MappedReader{data: data, off: 24, swapped: swapped, nanos: nanos}, nil
}

func (m *MappedReader) u32(b []byte) uint32 {
	if m.swapped {
		return binary.BigEndian.Uint32(b)
	}
	return binary.LittleEndian.Uint32(b)
}

// NextFrame returns the next record's timestamp and frame bytes (a view
// into the mapped image), or io.EOF after the last record. A truncated
// trailing record is an error, not a silent EOF.
func (m *MappedReader) NextFrame() (eventsim.Time, []byte, error) {
	if m.off == len(m.data) {
		return 0, nil, io.EOF
	}
	if len(m.data)-m.off < 16 {
		return 0, nil, fmt.Errorf("pcap: truncated record header at offset %d", m.off)
	}
	hdr := m.data[m.off : m.off+16]
	sec := m.u32(hdr[0:4])
	sub := m.u32(hdr[4:8])
	caplen := int(m.u32(hdr[8:12]))
	if caplen > snaplen {
		return 0, nil, fmt.Errorf("pcap: capture length %d exceeds snaplen", caplen)
	}
	body := m.off + 16
	if len(m.data)-body < caplen {
		return 0, nil, fmt.Errorf("pcap: truncated record body at offset %d", body)
	}
	m.off = body + caplen
	// Variable-length records defeat the hardware stride prefetcher, so
	// on big captures record headers miss to DRAM. Touch the image at
	// two staggered points a few KB ahead — the out-of-order loads warm
	// those lines well before the iterator reaches them, overlapping the
	// misses with decode work (measured ~35% replay speedup on a 380 MB
	// capture). The sink store keeps the loads alive.
	if ahead := m.off + 4096; ahead < len(m.data) {
		m.pf += m.data[ahead] + m.data[ahead-2048]
	}
	return tsOf(sec, sub, m.nanos), m.data[body : body+caplen : body+caplen], nil
}

// Reset rewinds the reader to the first record.
func (m *MappedReader) Reset() { m.off = 24 }

// Close releases the underlying mapping (when the image came from
// OpenMapped) and invalidates every frame slice handed out. A no-op
// for byte-slice images.
func (m *MappedReader) Close() error {
	m.data, m.off = nil, 0
	if m.munmap != nil {
		f := m.munmap
		m.munmap = nil
		return f()
	}
	return nil
}
