// Package pcap reads and writes libpcap capture files (the classic
// 24-byte-global-header format, LINKTYPE_RAW) using only the standard
// library. The trace tooling uses it to export synthetic workloads and
// replay them, so generated traces are inspectable with tcpdump or
// Wireshark.
//
// Virtual simulation timestamps map to the seconds/microseconds fields
// directly: a packet at eventsim.Time t is stored with ts = t since the
// epoch.
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
)

const (
	magicMicros = 0xa1b2c3d4
	// linktypeRaw means packets start directly at the IP header.
	linktypeRaw = 101
	snaplen     = 65535
)

// Errors returned by the reader.
var (
	ErrBadMagic = errors.New("pcap: bad magic number")
)

// Writer streams packets into a pcap file.
type Writer struct {
	w   *bufio.Writer
	buf []byte
}

// NewWriter writes the global header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicros)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // version major
	binary.LittleEndian.PutUint16(hdr[6:8], 4) // version minor
	binary.LittleEndian.PutUint32(hdr[16:20], snaplen)
	binary.LittleEndian.PutUint32(hdr[20:24], linktypeRaw)
	if _, err := bw.Write(hdr); err != nil {
		return nil, fmt.Errorf("pcap: writing global header: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return nil, fmt.Errorf("pcap: flushing global header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one packet with the given virtual timestamp.
func (w *Writer) Write(at eventsim.Time, p *packet.Packet) error {
	n := p.WireLen()
	if cap(w.buf) < n+16 {
		w.buf = make([]byte, n+16)
	}
	b := w.buf[:n+16]
	sec := uint32(at / eventsim.Second)
	usec := uint32((at % eventsim.Second) / eventsim.Microsecond)
	binary.LittleEndian.PutUint32(b[0:4], sec)
	binary.LittleEndian.PutUint32(b[4:8], usec)
	binary.LittleEndian.PutUint32(b[8:12], uint32(n))
	binary.LittleEndian.PutUint32(b[12:16], uint32(n))
	if err := p.MarshalTo(b[16:]); err != nil {
		return fmt.Errorf("pcap: marshaling packet: %w", err)
	}
	if _, err := w.w.Write(b); err != nil {
		return fmt.Errorf("pcap: writing record: %w", err)
	}
	return nil
}

// Flush writes buffered records through to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader streams packets out of a pcap file.
type Reader struct {
	r       *bufio.Reader
	swapped bool
	buf     []byte
}

// NewReader parses the global header. Both byte orders are accepted;
// only microsecond-resolution raw-IP captures are supported (which is
// what Writer produces).
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("pcap: reading global header: %w", err)
	}
	var swapped bool
	switch binary.LittleEndian.Uint32(hdr[0:4]) {
	case magicMicros:
		swapped = false
	default:
		if binary.BigEndian.Uint32(hdr[0:4]) == magicMicros {
			swapped = true
		} else {
			return nil, ErrBadMagic
		}
	}
	return &Reader{r: br, swapped: swapped}, nil
}

func (r *Reader) u32(b []byte) uint32 {
	if r.swapped {
		return binary.BigEndian.Uint32(b)
	}
	return binary.LittleEndian.Uint32(b)
}

// Next returns the next packet and its timestamp, or io.EOF at the end
// of the capture.
func (r *Reader) Next() (eventsim.Time, *packet.Packet, error) {
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(r.r, hdr); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("pcap: reading record header: %w", err)
	}
	sec := r.u32(hdr[0:4])
	usec := r.u32(hdr[4:8])
	caplen := r.u32(hdr[8:12])
	if caplen > snaplen {
		return 0, nil, fmt.Errorf("pcap: capture length %d exceeds snaplen", caplen)
	}
	if cap(r.buf) < int(caplen) {
		r.buf = make([]byte, caplen)
	}
	b := r.buf[:caplen]
	if _, err := io.ReadFull(r.r, b); err != nil {
		return 0, nil, fmt.Errorf("pcap: reading record body: %w", err)
	}
	p, err := packet.Unmarshal(b)
	if err != nil {
		return 0, nil, err
	}
	at := eventsim.Time(sec)*eventsim.Second + eventsim.Time(usec)*eventsim.Microsecond
	return at, p, nil
}
