package victim

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// feedWindow pushes a deterministic window of traffic: each entry of
// heavy gets its byte volume in 1 KiB observations, plus background
// noise over a wide key range.
func feedWindow(d *Detector, r *rand.Rand, heavy map[uint64]uint64, noiseBytes uint64) {
	type obs struct{ k, b uint64 }
	var all []obs
	for k, total := range heavy {
		for got := uint64(0); got < total; got += 1024 {
			all = append(all, obs{k, 1024})
		}
	}
	for got := uint64(0); got < noiseBytes; got += 512 {
		all = append(all, obs{0x10000 + r.Uint64()%5000, 512})
	}
	r.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	for _, o := range all {
		d.Observe(o.k, o.b)
	}
}

func TestDetectorListsDominantDestination(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	// Destination 7 takes ~60% of the window; noise takes the rest.
	feedWindow(d, r, map[uint64]uint64{7: 600_000}, 400_000)
	vs := d.Advance()
	if len(vs) != 1 || vs[0].Key != 7 {
		t.Fatalf("victims = %+v, want exactly dst 7", vs)
	}
	if vs[0].Share < 0.5 {
		t.Fatalf("share = %v, want ≥ 0.5", vs[0].Share)
	}
	if vs[0].Windows != 1 {
		t.Fatalf("windows = %d, want 1", vs[0].Windows)
	}
}

func TestDetectorHysteresis(t *testing.T) {
	cfg := DefaultConfig() // activate 0.20, release 0.10
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))

	// Window 1: dst 9 at 30% — activates.
	feedWindow(d, r, map[uint64]uint64{9: 300_000}, 700_000)
	if vs := d.Advance(); len(vs) != 1 || vs[0].Key != 9 {
		t.Fatalf("window 1: victims = %+v, want dst 9", vs)
	}
	// Window 2: dst 9 sags to ~14% — inside the hysteresis band, stays
	// listed (a fresh destination at 14% would NOT activate).
	feedWindow(d, r, map[uint64]uint64{9: 140_000}, 860_000)
	vs := d.Advance()
	if len(vs) != 1 || vs[0].Key != 9 {
		t.Fatalf("window 2: victims = %+v, want dst 9 held by hysteresis", vs)
	}
	if vs[0].Windows != 2 {
		t.Fatalf("window 2: streak = %d, want 2", vs[0].Windows)
	}
	// A different destination at the same 14% share does not activate.
	feedWindow(d, r, map[uint64]uint64{9: 140_000, 11: 140_000}, 720_000)
	vs = d.Advance()
	if len(vs) != 1 || vs[0].Key != 9 {
		t.Fatalf("window 3: victims = %+v, want only the held dst 9", vs)
	}
	// Window 4: dst 9 collapses below release — delisted, streak gone.
	feedWindow(d, r, map[uint64]uint64{9: 50_000}, 950_000)
	if vs := d.Advance(); len(vs) != 0 {
		t.Fatalf("window 4: victims = %+v, want none", vs)
	}
	// Re-activation starts a fresh streak.
	feedWindow(d, r, map[uint64]uint64{9: 300_000}, 700_000)
	if vs := d.Advance(); len(vs) != 1 || vs[0].Windows != 1 {
		t.Fatalf("window 5: victims = %+v, want dst 9 with streak 1", vs)
	}
}

func TestDetectorIdleWindowKeepsState(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	feedWindow(d, r, map[uint64]uint64{5: 500_000}, 500_000)
	d.Advance()
	// An (almost) empty window must not delist the victim.
	d.Observe(123, 64)
	vs := d.Advance()
	if len(vs) != 1 || vs[0].Key != 5 {
		t.Fatalf("idle window cleared victims: %+v", vs)
	}
}

func TestDetectorDeterminism(t *testing.T) {
	run := func() []Victim {
		d, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(4))
		var last []Victim
		for w := 0; w < 5; w++ {
			heavy := map[uint64]uint64{
				uint64(100 + w%3): 400_000,
				uint64(200):       250_000,
			}
			feedWindow(d, r, heavy, 350_000)
			last = d.Advance()
		}
		return last
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("victim %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDetectorSnapshotRoundTrip(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	feedWindow(d, r, map[uint64]uint64{42: 500_000, 43: 300_000}, 200_000)
	d.Advance()
	feedWindow(d, r, map[uint64]uint64{42: 400_000}, 300_000) // open window

	var buf bytes.Buffer
	if err := d.Marshal(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	clone, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := clone.Unmarshal(bytes.NewReader(blob)); err != nil {
		t.Fatal(err)
	}

	// Save → restore → save must be byte-identical.
	var buf2 bytes.Buffer
	if err := clone.Marshal(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, buf2.Bytes()) {
		t.Fatal("save → restore → save not byte-identical")
	}

	// And behavior continues identically (open window, RNG, hysteresis).
	for _, det := range []*Detector{d, clone} {
		rr := rand.New(rand.NewSource(6))
		feedWindow(det, rr, map[uint64]uint64{42: 100_000}, 100_000)
	}
	a, b := d.Advance(), clone.Advance()
	if len(a) != len(b) {
		t.Fatalf("post-restore windows diverged: %+v vs %+v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("post-restore victim %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDetectorSnapshotRejectsCorruption(t *testing.T) {
	d, _ := New(DefaultConfig())
	r := rand.New(rand.NewSource(7))
	feedWindow(d, r, map[uint64]uint64{1: 100_000}, 50_000)
	d.Advance()
	var buf bytes.Buffer
	if err := d.Marshal(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	flip := append([]byte(nil), blob...)
	flip[len(flip)/2] ^= 0x40
	if err := d.Unmarshal(bytes.NewReader(flip)); err == nil {
		t.Fatal("corrupted payload accepted")
	}
	if err := d.Unmarshal(bytes.NewReader(blob[:len(blob)-3])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}

	small, _ := New(Config{TopK: 2, SketchRows: 4, SketchCols: 4096,
		ActivateShare: 0.2, ReleaseShare: 0.1, Seed: 1})
	if err := small.Unmarshal(bytes.NewReader(blob)); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func TestDetectorConcurrentObserve(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				d.Observe(uint64(g), 1000)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = d.Advance(); _ = d.Victims() }()
	wg.Wait()
	<-done
	d.Advance()
	var total uint64
	for _, v := range d.Victims() {
		total += v.Bytes
	}
	if got := d.PendingBytes(); got != 0 {
		t.Fatalf("pending bytes after Advance = %d", got)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{TopK: 0, SketchRows: 4, SketchCols: 64, ActivateShare: 0.2, ReleaseShare: 0.1},
		{TopK: 4, SketchRows: 0, SketchCols: 64, ActivateShare: 0.2, ReleaseShare: 0.1},
		{TopK: 4, SketchRows: 4, SketchCols: 64, ActivateShare: 1.5, ReleaseShare: 0.1},
		{TopK: 4, SketchRows: 4, SketchCols: 64, ActivateShare: 0.2, ReleaseShare: 0.3},
		{TopK: 4, SketchRows: 4, SketchCols: 64, ActivateShare: 0.2, ReleaseShare: 0},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Fatalf("config %d accepted: %+v", i, c)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}
