// Package victim identifies the destination aggregates a volumetric
// attack is converging on — the victim-identification front-end of
// ROADMAP item 3 (after Ding et al., "In-Network Volumetric DDoS
// Victim Identification Using Programmable Commodity Switches").
//
// A Detector watches one egress link: every admitted packet's
// destination key and byte size feed a heavy-keeper top-k
// (sketch.TopK), and at each window boundary the ranked heavy
// destinations are compared against hysteresis thresholds — a
// destination becomes a victim when its share of window bytes crosses
// ActivateShare and stays listed until it falls below ReleaseShare, so
// a pulse-wave attacker oscillating around a single threshold cannot
// make the victim list flap. The ranked list is the seam a multi-tenant
// mitigation manager plugs into: per-victim scrubbing, per-victim
// ACC-Turbo instances, or upstream signaling.
//
// Determinism: given the same Observe/Advance sequence and Config.Seed,
// two detectors produce byte-identical victim lists (the heavy-keeper's
// decay coin flips are seeded) — the property the CI determinism gate
// checks.
package victim

import (
	"fmt"
	"sort"
	"sync"

	"accturbo/internal/sketch"
)

// Config sizes a Detector.
type Config struct {
	// TopK is how many candidate destinations the heavy-keeper tracks;
	// the victim list is at most this long.
	TopK int
	// SketchRows, SketchCols size the backing turbo count-min
	// (conservative update, power-of-two columns).
	SketchRows, SketchCols int
	// ActivateShare is the fraction of a window's bytes a destination
	// must reach to become a victim.
	ActivateShare float64
	// ReleaseShare is the fraction below which a listed victim is
	// delisted. Must be ≤ ActivateShare; the gap is the hysteresis band.
	ReleaseShare float64
	// MinBytes is a floor under which a window is considered idle and
	// victim states are left untouched (prevents a quiet window from
	// delisting everything because shares are computed over noise).
	MinBytes uint64
	// Seed drives the heavy-keeper's decay randomness.
	Seed uint64
}

// DefaultConfig tracks 8 victims over a 4×4096 conservative sketch
// with a 20%-in / 10%-out hysteresis band.
func DefaultConfig() Config {
	return Config{
		TopK:          8,
		SketchRows:    4,
		SketchCols:    4096,
		ActivateShare: 0.20,
		ReleaseShare:  0.10,
		MinBytes:      4096,
		Seed:          1,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.TopK < 1 {
		return fmt.Errorf("victim: TopK %d < 1", c.TopK)
	}
	if c.SketchRows < 1 || c.SketchCols < 1 {
		return fmt.Errorf("victim: sketch geometry %dx%d", c.SketchRows, c.SketchCols)
	}
	if c.ActivateShare <= 0 || c.ActivateShare > 1 {
		return fmt.Errorf("victim: ActivateShare %v outside (0,1]", c.ActivateShare)
	}
	if c.ReleaseShare <= 0 || c.ReleaseShare > c.ActivateShare {
		return fmt.Errorf("victim: ReleaseShare %v outside (0,ActivateShare=%v]", c.ReleaseShare, c.ActivateShare)
	}
	return nil
}

// Victim is one listed destination aggregate.
type Victim struct {
	// Key is the destination aggregate key as fed to Observe.
	Key uint64 `json:"key"`
	// Bytes is the victim's volume in the last closed window.
	Bytes uint64 `json:"bytes"`
	// Share is Bytes over the window's total.
	Share float64 `json:"share"`
	// Windows is how many consecutive closed windows the destination
	// has been listed.
	Windows int `json:"windows"`
}

// Detector ranks heavy destination aggregates per window. Safe for
// concurrent use.
type Detector struct {
	mu  sync.Mutex
	cfg Config
	tk  *sketch.TopK

	windowBytes uint64
	windows     uint64 // closed windows

	// listed is the hysteresis state: key -> consecutive windows listed.
	listed map[uint64]int
	// current is the ranked victim list as of the last Advance.
	current []Victim

	scratch []sketch.Element
}

// New builds a detector; the configuration is validated first.
func New(cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector{
		cfg:     cfg,
		tk:      sketch.NewTopK(cfg.TopK, cfg.SketchRows, cfg.SketchCols, cfg.Seed),
		listed:  make(map[uint64]int, cfg.TopK),
		scratch: make([]sketch.Element, 0, cfg.TopK),
	}, nil
}

// Config returns the detector's configuration.
func (d *Detector) Config() Config { return d.cfg }

// Observe feeds one admitted packet's destination key and byte size
// into the current window.
func (d *Detector) Observe(dstKey uint64, bytes uint64) {
	d.mu.Lock()
	d.tk.Offer(dstKey, bytes)
	d.windowBytes += bytes
	d.mu.Unlock()
}

// Advance closes the current window: heavy destinations are ranked,
// hysteresis state moves, and the tracker resets for the next window.
// Returns the new victim list (shared with Victims; do not mutate).
func (d *Detector) Advance() []Victim {
	d.mu.Lock()
	defer d.mu.Unlock()

	total := d.windowBytes
	d.windows++
	if total < d.cfg.MinBytes {
		// Idle window: keep states, just reset volume tracking so the
		// next window starts clean.
		d.tk.Reset()
		d.windowBytes = 0
		return d.current
	}

	d.scratch = d.tk.AppendTop(d.scratch[:0])
	next := make([]Victim, 0, len(d.scratch))
	seen := make(map[uint64]bool, len(d.scratch))
	for _, e := range d.scratch {
		share := float64(e.Count) / float64(total)
		streak, wasListed := d.listed[e.Key]
		keep := share >= d.cfg.ActivateShare ||
			(wasListed && share >= d.cfg.ReleaseShare)
		if !keep {
			continue
		}
		seen[e.Key] = true
		d.listed[e.Key] = streak + 1
		next = append(next, Victim{
			Key:     e.Key,
			Bytes:   e.Count,
			Share:   share,
			Windows: streak + 1,
		})
	}
	for k := range d.listed {
		if !seen[k] {
			delete(d.listed, k)
		}
	}
	// AppendTop already ranks by count desc/key asc; victims inherit
	// that order. Sort defensively anyway so the contract doesn't
	// depend on TopK internals.
	sort.SliceStable(next, func(i, j int) bool {
		if next[i].Bytes != next[j].Bytes {
			return next[i].Bytes > next[j].Bytes
		}
		return next[i].Key < next[j].Key
	})
	d.current = next
	d.tk.Reset()
	d.windowBytes = 0
	return d.current
}

// Victims returns the ranked list from the last closed window (shared
// slice; do not mutate).
func (d *Detector) Victims() []Victim {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.current
}

// Windows returns how many windows have been closed.
func (d *Detector) Windows() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.windows
}

// PendingBytes returns the bytes observed in the still-open window.
func (d *Detector) PendingBytes() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.windowBytes
}
