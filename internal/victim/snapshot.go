package victim

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"accturbo/internal/sketch"
)

// Snapshot container, mirroring the ACCSNAP1 framing so victim state
// rides the same save/restore discipline as the defense core:
//
//	"ACCVICT1" | version u16 | payloadLen u64 | payload | crc32 u32
//
// All integers little-endian. The payload holds the geometry
// fingerprint, window counters, the heavy-keeper (sketch words via
// Words/SetWords, heap entries, decay RNG), and the hysteresis state,
// so save → restore → save is byte-identical.
const (
	snapMagic   = "ACCVICT1"
	snapVersion = 1
)

// Marshal serializes the detector's full state into w.
func (d *Detector) Marshal(w io.Writer) error {
	d.mu.Lock()
	var e enc
	e.u32(uint32(d.cfg.TopK))
	e.u32(uint32(d.tk.Sketch().Rows()))
	e.u32(uint32(d.tk.Sketch().Cols()))

	e.u64(d.windows)
	e.u64(d.windowBytes)

	words := d.tk.Sketch().Words()
	e.u32(uint32(len(words)))
	for _, wd := range words {
		e.u64(wd)
	}
	e.u64(d.tk.Sketch().Updates)

	entries := d.tk.Entries()
	e.u32(uint32(len(entries)))
	for _, en := range entries {
		e.u64(en.Key)
		e.u64(en.Count)
	}
	e.u64(d.tk.RNG())

	keys := make([]uint64, 0, len(d.listed))
	for k := range d.listed {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	e.u32(uint32(len(keys)))
	for _, k := range keys {
		e.u64(k)
		e.u32(uint32(d.listed[k]))
	}

	e.u32(uint32(len(d.current)))
	for _, v := range d.current {
		e.u64(v.Key)
		e.u64(v.Bytes)
		e.f64(v.Share)
		e.u32(uint32(v.Windows))
	}
	d.mu.Unlock()

	var hdr [18]byte
	copy(hdr[:8], snapMagic)
	binary.LittleEndian.PutUint16(hdr[8:10], snapVersion)
	binary.LittleEndian.PutUint64(hdr[10:18], uint64(len(e.b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(e.b); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(e.b))
	_, err := w.Write(crc[:])
	return err
}

// Unmarshal restores a Marshal snapshot into the detector. The
// detector's geometry must match the snapshot's; its previous state is
// replaced wholesale on success and untouched on error.
func (d *Detector) Unmarshal(r io.Reader) error {
	var hdr [18]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("victim: snapshot header: %w", err)
	}
	if string(hdr[:8]) != snapMagic {
		return fmt.Errorf("victim: bad snapshot magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint16(hdr[8:10]); v != snapVersion {
		return fmt.Errorf("victim: snapshot version %d, want %d", v, snapVersion)
	}
	n := binary.LittleEndian.Uint64(hdr[10:18])
	if n > 1<<30 {
		return fmt.Errorf("victim: implausible snapshot payload %d bytes", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return fmt.Errorf("victim: snapshot payload: %w", err)
	}
	var crcb [4]byte
	if _, err := io.ReadFull(r, crcb[:]); err != nil {
		return fmt.Errorf("victim: snapshot crc: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(crcb[:]); got != want {
		return fmt.Errorf("victim: snapshot crc mismatch (got %08x want %08x)", got, want)
	}

	dd := dec{b: payload}
	k := int(dd.u32())
	rows := int(dd.u32())
	cols := int(dd.u32())

	d.mu.Lock()
	defer d.mu.Unlock()
	if k != d.cfg.TopK || rows != d.tk.Sketch().Rows() || cols != d.tk.Sketch().Cols() {
		return fmt.Errorf("victim: snapshot geometry k=%d %dx%d, detector has k=%d %dx%d",
			k, rows, cols, d.cfg.TopK, d.tk.Sketch().Rows(), d.tk.Sketch().Cols())
	}

	windows := dd.u64()
	windowBytes := dd.u64()

	words := make([]uint64, dd.u32())
	for i := range words {
		words[i] = dd.u64()
	}
	updates := dd.u64()

	entries := make([]sketch.Element, dd.u32())
	for i := range entries {
		entries[i].Key = dd.u64()
		entries[i].Count = dd.u64()
	}
	rng := dd.u64()

	listed := make(map[uint64]int, d.cfg.TopK)
	for i, m := 0, int(dd.u32()); i < m; i++ {
		key := dd.u64()
		listed[key] = int(dd.u32())
	}

	current := make([]Victim, dd.u32())
	for i := range current {
		current[i].Key = dd.u64()
		current[i].Bytes = dd.u64()
		current[i].Share = dd.f64()
		current[i].Windows = int(dd.u32())
	}

	if dd.err || dd.off != len(dd.b) {
		return fmt.Errorf("victim: truncated or trailing snapshot payload")
	}
	d.windows = windows
	d.windowBytes = windowBytes
	if err := d.tk.Sketch().SetWords(words, updates); err != nil {
		return err
	}
	d.tk.Restore(entries, rng)
	d.listed = listed
	d.current = current
	return nil
}

type enc struct{ b []byte }

func (e *enc) u32(v uint32) {
	e.b = binary.LittleEndian.AppendUint32(e.b, v)
}
func (e *enc) u64(v uint64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, v)
}
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }

type dec struct {
	b   []byte
	off int
	err bool
}

func (d *dec) u32() uint32 {
	if d.off+4 > len(d.b) {
		d.err = true
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.off+8 > len(d.b) {
		d.err = true
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }
