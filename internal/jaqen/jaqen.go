// Package jaqen re-implements the Jaqen DDoS defense (Liu et al.,
// USENIX Security 2021) at the fidelity the paper's comparison (§7.2)
// requires: sketch-based signature detection, threshold activation
// across two consecutive windows, drop-based mitigation, and the
// switch-reprogramming downtime that dominates its reaction time when a
// mitigation module is not yet loaded.
//
//	Detection:  count-min sketch over a configured key (5-tuple for
//	            Jaqen-dagger, source IP for Jaqen-double-dagger).
//	Reaction:   the controller polls the sketch every Window; a key
//	            counted above Threshold in two consecutive windows is
//	            an attack.
//	Mitigation: a drop rule on the offending key — installed after
//	            RuleInstallDelay when the defense module is already in
//	            the switch, or after ReprogramTime of total downtime
//	            when the switch must be reprogrammed first.
package jaqen

import (
	"fmt"

	"accturbo/internal/core"
	"accturbo/internal/eventsim"
	"accturbo/internal/netsim"
	"accturbo/internal/packet"
	"accturbo/internal/queue"
	"accturbo/internal/sketch"
	"accturbo/internal/telemetry"
)

// Key selects the sketch signature.
type Key uint8

// Signature keys. The paper's Table 3 configures Jaqen-dagger with the
// 5-tuple and Jaqen-double-dagger with the source IP.
const (
	FiveTuple Key = iota
	SrcIP
)

// String names the key.
func (k Key) String() string {
	if k == SrcIP {
		return "srcip"
	}
	return "5tuple"
}

// Config parameterizes a Jaqen instance.
type Config struct {
	// Key is the sketch signature.
	Key Key
	// Threshold is the per-window packet count above which a key is
	// suspected (Fig. 8a sweeps this).
	Threshold uint64
	// Window is the controller's polling period.
	Window eventsim.Time
	// ResetPeriod is the sketch/Bloom inter-reset time (Fig. 8b). Zero
	// resets every window.
	ResetPeriod eventsim.Time
	// ConsecutiveWindows is how many successive windows must flag a
	// key before mitigation (the paper observes Jaqen requires two).
	ConsecutiveWindows int
	// DefenseDeployed: when true the mitigation module is already in
	// the switch and only RuleInstallDelay applies; when false, the
	// first detection triggers a switch reprogram with ReprogramTime
	// of full downtime.
	DefenseDeployed bool
	// RateLimitBits, when positive, polices detected keys to this rate
	// instead of dropping them outright (Table 2 lists both
	// mitigations; drop is Jaqen's default in the paper's
	// experiments).
	RateLimitBits float64
	// RuleInstallDelay is the controller-to-data-plane latency.
	RuleInstallDelay eventsim.Time
	// ReprogramTime is the measured program-swap downtime (11.5 s on
	// the paper's testbed).
	ReprogramTime eventsim.Time
	// SketchRows and SketchCols size the count-min sketch.
	SketchRows, SketchCols int
	// TurboSketch selects the wire-speed count-min (one hash per key,
	// cache-line-blocked layout) over the seed-compatible FNV sketch.
	// Estimates differ from the compatible sketch (still ≥ truth), so
	// goldens covering a turbo run are regenerated, never reused. Like
	// the geometry, it is structural: flipping it mid-run would
	// invalidate the sketch contents, so it is not a Runtime knob.
	TurboSketch bool
	// ConservativeUpdate (turbo only) raises just the counters at the
	// key's current minimum, tightening the overestimate that makes
	// Jaqen flag innocent keys sharing counters with heavy ones. See
	// the sketchacc experiment for the measured effect.
	ConservativeUpdate bool
}

// DefaultConfig mirrors the paper's measurement setup: 5-tuple key,
// controller polling at 5 s (which with the two-consecutive-windows
// rule yields the ~10 s best-case reaction of Fig. 7d), defense
// deployed, 50 ms rule install.
func DefaultConfig() Config {
	return Config{
		Key:                FiveTuple,
		Threshold:          1_000_000,
		Window:             5 * eventsim.Second,
		ConsecutiveWindows: 2,
		DefenseDeployed:    true,
		RuleInstallDelay:   50 * eventsim.Millisecond,
		ReprogramTime:      11_500 * eventsim.Millisecond,
		SketchRows:         4,
		SketchCols:         65536,
		TurboSketch:        true,
		ConservativeUpdate: true,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Threshold == 0 {
		return fmt.Errorf("jaqen: zero threshold")
	}
	if c.Window <= 0 {
		return fmt.Errorf("jaqen: window %v must be positive", c.Window)
	}
	if c.ConsecutiveWindows < 1 {
		return fmt.Errorf("jaqen: ConsecutiveWindows %d < 1", c.ConsecutiveWindows)
	}
	if c.SketchRows < 1 || c.SketchCols < 1 {
		return fmt.Errorf("jaqen: sketch geometry %dx%d", c.SketchRows, c.SketchCols)
	}
	if c.ConservativeUpdate && !c.TurboSketch {
		return fmt.Errorf("jaqen: ConservativeUpdate requires TurboSketch")
	}
	return nil
}

// Runtime is the hot-reloadable half of Config: the mitigation knobs
// an operator tunes while the defense runs. The structural half —
// signature key, sketch geometry, window cadence — stays fixed because
// changing it would invalidate the sketch contents and the scheduled
// controller loop.
type Runtime struct {
	// Threshold is the per-window suspicion bound (see Config).
	Threshold uint64
	// ConsecutiveWindows gates mitigation (see Config).
	ConsecutiveWindows int
	// RateLimitBits selects policing over dropping when positive (see
	// Config).
	RateLimitBits float64
}

// Runtime extracts the hot-reloadable fields from a Config.
func (c Config) Runtime() Runtime {
	return Runtime{
		Threshold:          c.Threshold,
		ConsecutiveWindows: c.ConsecutiveWindows,
		RateLimitBits:      c.RateLimitBits,
	}
}

// Validate checks the runtime knobs, mirroring Config.Validate's
// subset.
func (r *Runtime) Validate() error {
	if r.Threshold == 0 {
		return fmt.Errorf("jaqen: zero threshold")
	}
	if r.ConsecutiveWindows < 1 {
		return fmt.Errorf("jaqen: ConsecutiveWindows %d < 1", r.ConsecutiveWindows)
	}
	if r.RateLimitBits < 0 {
		return fmt.Errorf("jaqen: RateLimitBits %v < 0", r.RateLimitBits)
	}
	return nil
}

// RuntimePatch is a partial Runtime: nil fields keep their current
// value.
type RuntimePatch struct {
	Threshold          *uint64  `json:"threshold,omitempty"`
	ConsecutiveWindows *int     `json:"consecutive_windows,omitempty"`
	RateLimitBits      *float64 `json:"rate_limit_bits,omitempty"`
}

// Apply returns base with the patch's non-nil fields replaced.
func (p RuntimePatch) Apply(base Runtime) Runtime {
	if p.Threshold != nil {
		base.Threshold = *p.Threshold
	}
	if p.ConsecutiveWindows != nil {
		base.ConsecutiveWindows = *p.ConsecutiveWindows
	}
	if p.RateLimitBits != nil {
		base.RateLimitBits = *p.RateLimitBits
	}
	return base
}

// Jaqen is one instance attached to a port.
type Jaqen struct {
	cfg Config
	eng *eventsim.Engine

	// rt holds the live mitigation knobs behind the same hot-swap
	// helper the ACC-Turbo control plane uses: the per-packet path pays
	// one atomic load, Reconfigure publishes a validated replacement.
	rt core.Hot[Runtime]

	// Exactly one of cm/turbo is non-nil, per Config.TurboSketch. Two
	// typed fields rather than an interface keep the per-packet Add a
	// predictable branch instead of a dynamic dispatch.
	cm    *sketch.CountMin
	turbo *sketch.TurboCountMin
	// candidates are keys whose estimate crossed the threshold in the
	// current window (the heavy-flowkey store of the real system).
	candidates map[uint64]int // key -> consecutive windows flagged
	rules      map[uint64]*rule
	flagged    map[uint64]bool // flagged during the current window

	reprogramming  bool
	reprogramDone  eventsim.Time
	reprogrammedAt eventsim.Time

	// FirstMitigation is when the first drop rule became active (-1
	// before any).
	FirstMitigation eventsim.Time

	// Mitigation accounting on the shared telemetry substrate: how many
	// packets the defense admitted versus dropped, split by cause (an
	// installed rule, a policer rule's rate limit, or the total blackout
	// while the switch reprograms).
	admitted       telemetry.Counter
	ruleDrops      telemetry.Counter
	policerDrops   telemetry.Counter
	downtimeDrops  telemetry.Counter
	rulesInstalled telemetry.Counter
}

// Attach wires Jaqen into the port's ingress pipeline and schedules its
// controller loop. It panics on an invalid configuration; AttachE is
// the error-returning variant for runtime paths.
func Attach(eng *eventsim.Engine, port *netsim.Port, cfg Config) *Jaqen {
	j, err := AttachE(eng, port, cfg)
	if err != nil {
		panic(err)
	}
	return j
}

// AttachE is Attach returning configuration errors instead of
// panicking. Nothing is wired to the port or engine when it errors.
func AttachE(eng *eventsim.Engine, port *netsim.Port, cfg Config) (*Jaqen, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	j := &Jaqen{
		cfg:             cfg,
		eng:             eng,
		candidates:      map[uint64]int{},
		rules:           map[uint64]*rule{},
		flagged:         map[uint64]bool{},
		FirstMitigation: -1,
	}
	if cfg.TurboSketch {
		j.turbo = sketch.NewTurboCountMin(cfg.SketchRows, cfg.SketchCols, cfg.ConservativeUpdate)
	} else {
		j.cm = sketch.NewCountMin(cfg.SketchRows, cfg.SketchCols)
	}
	rt := cfg.Runtime()
	j.rt.Store(&rt)
	port.AddIngress(func(now eventsim.Time, p *packet.Packet) bool {
		return j.admit(now, p)
	})
	eng.Every(cfg.Window, func(now eventsim.Time) { j.poll(now) })
	reset := cfg.ResetPeriod
	if reset <= 0 {
		reset = cfg.Window
	}
	eng.Every(reset, func(now eventsim.Time) {
		if j.turbo != nil {
			j.turbo.Reset()
		} else {
			j.cm.Reset()
		}
	})
	return j, nil
}

// key extracts the configured signature from a packet.
func (j *Jaqen) key(p *packet.Packet) uint64 {
	switch j.cfg.Key {
	case SrcIP:
		return uint64(p.Value(packet.FSrcIP))
	default:
		h := uint64(p.Value(packet.FSrcIP))<<32 | uint64(p.Value(packet.FDstIP))
		h = sketch.HashBytes(1, []byte{
			byte(h >> 56), byte(h >> 48), byte(h >> 40), byte(h >> 32),
			byte(h >> 24), byte(h >> 16), byte(h >> 8), byte(h),
			byte(p.SrcPort >> 8), byte(p.SrcPort),
			byte(p.DstPort >> 8), byte(p.DstPort),
			byte(p.Protocol),
		})
		return h
	}
}

// admit implements the data-plane path: update the sketch, mark
// heavy keys, and enforce drop rules (and reprogram downtime).
func (j *Jaqen) admit(now eventsim.Time, p *packet.Packet) bool {
	if j.reprogramming {
		if now < j.reprogramDone {
			j.downtimeDrops.Inc()
			return false // total downtime during program swap
		}
		j.reprogramming = false
	}
	k := j.key(p)
	if rl, ok := j.rules[k]; ok {
		if rl.bucket == nil {
			j.ruleDrops.Inc()
			return false // drop rule
		}
		if !rl.bucket.Allow(now, p.Size()) {
			j.policerDrops.Inc()
			return false
		}
		j.admitted.Inc()
		return true
	}
	var est uint64
	if j.turbo != nil {
		est = j.turbo.Add(k, 1)
	} else {
		est = j.cm.Add(k, 1)
	}
	if est > j.rt.Load().Threshold {
		j.flagged[k] = true
	}
	j.admitted.Inc()
	return true
}

// poll is the controller loop: promote keys flagged in enough
// consecutive windows to drop rules.
func (j *Jaqen) poll(now eventsim.Time) {
	consecutive := j.rt.Load().ConsecutiveWindows
	for k := range j.flagged {
		j.candidates[k]++
		if _, installed := j.rules[k]; j.candidates[k] >= consecutive && !installed {
			j.mitigate(now, k)
		}
	}
	// Keys not flagged this window lose their streak.
	for k := range j.candidates {
		if !j.flagged[k] {
			delete(j.candidates, k)
		}
	}
	clear(j.flagged)
}

// rule is one installed mitigation: a drop (nil bucket) or a policer.
type rule struct {
	bucket *queue.TokenBucket
}

// mitigate deploys a drop or rate-limit rule for key k, modeling
// deployment latency.
func (j *Jaqen) mitigate(now eventsim.Time, k uint64) {
	rl := &rule{}
	if rate := j.rt.Load().RateLimitBits; rate > 0 {
		rl.bucket = queue.NewTokenBucket(rate, 6000)
	}
	j.rules[k] = rl // reserve so we don't double-deploy
	activate := func(at eventsim.Time) {
		if j.FirstMitigation < 0 {
			j.FirstMitigation = at
		}
		j.rulesInstalled.Inc()
	}
	if j.cfg.DefenseDeployed {
		j.eng.After(j.cfg.RuleInstallDelay, func(t eventsim.Time) { activate(t) })
		return
	}
	// Reprogram path: the switch drops everything for ReprogramTime,
	// after which the rule is active.
	if !j.reprogramming && j.reprogrammedAt == 0 {
		j.reprogramming = true
		j.reprogramDone = now + j.cfg.ReprogramTime
		j.reprogrammedAt = now
	}
	j.eng.After(j.cfg.ReprogramTime, func(t eventsim.Time) { activate(t) })
}

// Reconfigure applies a mitigation-knob patch: validated, then
// published atomically. The next packet sees the new threshold, the
// next window the new streak requirement; rules already installed keep
// their mitigation (a policer's bucket is not resized retroactively).
// It returns the new configuration generation.
func (j *Jaqen) Reconfigure(patch RuntimePatch) (uint64, error) {
	next := patch.Apply(*j.rt.Load())
	if err := next.Validate(); err != nil {
		return j.rt.Generation(), err
	}
	return j.rt.Store(&next), nil
}

// Runtime returns the live mitigation knobs.
func (j *Jaqen) Runtime() Runtime { return *j.rt.Load() }

// Rules returns the number of active drop rules.
func (j *Jaqen) Rules() int { return len(j.rules) }

// RulesInstalled counts drop rules that became active (post-delay).
func (j *Jaqen) RulesInstalled() uint64 { return j.rulesInstalled.Value() }

// Admitted counts packets the defense let through.
func (j *Jaqen) Admitted() uint64 { return j.admitted.Value() }

// RuleDrops counts packets dropped by an installed drop rule.
func (j *Jaqen) RuleDrops() uint64 { return j.ruleDrops.Value() }

// PolicerDrops counts packets denied by a rate-limit rule's bucket.
func (j *Jaqen) PolicerDrops() uint64 { return j.policerDrops.Value() }

// DowntimeDrops counts packets lost to reprogramming blackout.
func (j *Jaqen) DowntimeDrops() uint64 { return j.downtimeDrops.Value() }

// Describe registers the mitigation accounting on a telemetry registry
// under the given name prefix.
func (j *Jaqen) Describe(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"_admitted_pkts", &j.admitted)
	reg.Counter(prefix+"_rule_dropped_pkts", &j.ruleDrops)
	reg.Counter(prefix+"_policer_dropped_pkts", &j.policerDrops)
	reg.Counter(prefix+"_downtime_dropped_pkts", &j.downtimeDrops)
	reg.Counter(prefix+"_rules_installed", &j.rulesInstalled)
}
