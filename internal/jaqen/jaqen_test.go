package jaqen

import (
	"testing"

	"accturbo/internal/eventsim"
	"accturbo/internal/netsim"
	"accturbo/internal/packet"
	"accturbo/internal/queue"
	"accturbo/internal/traffic"
)

func attackSpec() traffic.FlowSpec {
	return traffic.FlowSpec{
		SrcIP: packet.V4Addr{9, 9, 9, 9}, DstIP: packet.V4Addr{10, 0, 5, 1},
		Protocol: packet.ProtoUDP, SrcPort: 123, DstPort: 80, TTL: 64, Size: 500,
		Label: packet.Malicious, Vector: "UDP", FlowID: 5,
	}
}

func benignSpec(i byte) traffic.FlowSpec {
	return traffic.FlowSpec{
		SrcIP: packet.V4Addr{1, 2, 3, i}, DstIP: packet.V4Addr{10, 0, 1, i},
		Protocol: packet.ProtoUDP, SrcPort: 5000, DstPort: 443, TTL: 64, Size: 500,
		Label: packet.Benign, FlowID: uint32(i),
	}
}

// run replays a scenario through a Jaqen-protected port.
func run(cfg Config, src traffic.Source, until eventsim.Time) (*netsim.Recorder, *Jaqen) {
	eng := eventsim.New()
	rec := netsim.NewRecorder(eventsim.Second)
	port := netsim.NewPort(eng, queue.NewFIFO(125_000), 10e6, rec)
	j := Attach(eng, port, cfg)
	netsim.Replay(eng, src, port)
	eng.RunUntil(until)
	return rec, j
}

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.ConsecutiveWindows != 2 {
		t.Error("paper observes two consecutive windows")
	}
	if cfg.ReprogramTime != 11_500*eventsim.Millisecond {
		t.Errorf("reprogram time = %v, want 11.5s", cfg.ReprogramTime)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(c *Config){
		func(c *Config) { c.Threshold = 0 },
		func(c *Config) { c.Window = 0 },
		func(c *Config) { c.ConsecutiveWindows = 0 },
		func(c *Config) { c.SketchRows = 0 },
	}
	for i, m := range bad {
		cfg := DefaultConfig()
		m(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d should fail", i)
		}
	}
}

func TestKeyString(t *testing.T) {
	if FiveTuple.String() != "5tuple" || SrcIP.String() != "srcip" {
		t.Fatal("key names wrong")
	}
}

func TestDetectsSingleFlowFlood(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threshold = 1000
	cfg.Window = eventsim.Second

	// 40 Mbps attack = 10k pps at 500 B; threshold 1000/window.
	src := traffic.Merge(
		traffic.NewCBR(0, 20*eventsim.Second, 4e6, benignSpec(1).Factory(1)),
		traffic.NewCBR(2*eventsim.Second, 20*eventsim.Second, 40e6, attackSpec().Factory(2)),
	)
	rec, j := run(cfg, src, 25*eventsim.Second)
	if j.FirstMitigation < 0 {
		t.Fatal("attack never mitigated")
	}
	// Two consecutive windows after attack start (2 s): mitigation at
	// ~4 s, certainly within 6 s.
	if j.FirstMitigation < 3*eventsim.Second || j.FirstMitigation > 7*eventsim.Second {
		t.Fatalf("mitigation at %v, want ~4s", j.FirstMitigation)
	}
	if j.Rules() == 0 {
		t.Fatal("no rules installed")
	}
	// The attack shares one 5-tuple, so benign traffic survives.
	if rec.BenignDropPercent() > 10 {
		t.Fatalf("benign drops %v%% despite matching signature", rec.BenignDropPercent())
	}
	if rec.MaliciousDropPercent() < 50 {
		t.Fatalf("attack only dropped %v%%", rec.MaliciousDropPercent())
	}
}

func TestFiveTupleSketchMissesSpoofedSources(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threshold = 1000
	cfg.Window = eventsim.Second

	spoofed := attackSpec()
	spoofed.SrcHostBits = 32
	spoofed.RandomSrcPort = true
	src := traffic.Merge(
		traffic.NewCBR(0, 10*eventsim.Second, 4e6, benignSpec(1).Factory(1)),
		traffic.NewCBR(eventsim.Second, 10*eventsim.Second, 40e6, spoofed.Factory(2)),
	)
	rec, j := run(cfg, src, 12*eventsim.Second)
	// Every packet has a unique 5-tuple: no key crosses the threshold.
	if j.FirstMitigation >= 0 {
		t.Fatalf("spoofed flood should evade the 5-tuple signature, mitigated at %v", j.FirstMitigation)
	}
	// And benign traffic suffers (FIFO-like behaviour).
	if rec.BenignDropPercent() < 30 {
		t.Fatalf("benign drops %v%%, expected heavy loss without mitigation", rec.BenignDropPercent())
	}
}

func TestSrcIPSketchCatchesCarpetBombing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Key = SrcIP
	cfg.Threshold = 1000
	cfg.Window = eventsim.Second

	carpet := attackSpec()
	carpet.DstHostBits = 8 // spreads destinations, source stays fixed
	src := traffic.Merge(
		traffic.NewCBR(0, 15*eventsim.Second, 4e6, benignSpec(1).Factory(1)),
		traffic.NewCBR(eventsim.Second, 15*eventsim.Second, 40e6, carpet.Factory(2)),
	)
	_, j := run(cfg, src, 18*eventsim.Second)
	if j.FirstMitigation < 0 {
		t.Fatal("srcIP signature should catch carpet bombing")
	}
}

func TestTwoConsecutiveWindowsRequired(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threshold = 1000
	cfg.Window = eventsim.Second

	// A one-window burst must not trigger mitigation.
	burst := traffic.NewCBR(eventsim.Second+eventsim.Second/10, eventsim.Second+9*eventsim.Second/10, 40e6, attackSpec().Factory(1))
	_, j := run(cfg, burst, 10*eventsim.Second)
	if j.FirstMitigation >= 0 {
		t.Fatalf("single-window burst mitigated at %v", j.FirstMitigation)
	}
}

func TestReprogramPathCausesDowntime(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threshold = 1000
	cfg.Window = eventsim.Second
	cfg.DefenseDeployed = false
	cfg.ReprogramTime = 5 * eventsim.Second

	src := traffic.Merge(
		traffic.NewCBR(0, 30*eventsim.Second, 4e6, benignSpec(1).Factory(1)),
		traffic.NewCBR(2*eventsim.Second, 30*eventsim.Second, 40e6, attackSpec().Factory(2)),
	)
	rec, j := run(cfg, src, 32*eventsim.Second)
	if j.FirstMitigation < 0 {
		t.Fatal("never mitigated")
	}
	// Mitigation cannot be active before detection (~4 s) + reprogram (5 s).
	if j.FirstMitigation < 8*eventsim.Second {
		t.Fatalf("mitigation at %v, before reprogramming could finish", j.FirstMitigation)
	}
	// During the swap, even benign traffic blackholes: find at least
	// one bin with zero benign delivery after detection.
	benign := rec.DeliveredBits(packet.Benign)
	sawDowntime := false
	for i := 4; i < 10 && i < len(benign); i++ {
		if benign[i] == 0 {
			sawDowntime = true
		}
	}
	if !sawDowntime {
		t.Fatal("no downtime observed during reprogramming")
	}
}

func TestLowThresholdDropsBenignTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threshold = 10 // absurdly low: benign flows cross it too
	cfg.Window = eventsim.Second

	src := traffic.Merge(
		traffic.NewCBR(0, 10*eventsim.Second, 4e6, benignSpec(1).Factory(1)),
		traffic.NewCBR(0, 10*eventsim.Second, 4e6, benignSpec(2).Factory(2)),
	)
	rec, j := run(cfg, src, 12*eventsim.Second)
	if j.Rules() == 0 {
		t.Fatal("low threshold should flag benign flows")
	}
	if rec.BenignDropPercent() < 20 {
		t.Fatalf("benign drops %v%%, expected heavy false-positive damage", rec.BenignDropPercent())
	}
}

func TestSketchResetPeriodWeakensDetection(t *testing.T) {
	// With a threshold reachable only by accumulating several seconds
	// of counts, a fast reset keeps estimates below it.
	mk := func(reset eventsim.Time) eventsim.Time {
		cfg := DefaultConfig()
		cfg.Threshold = 30_000 // 10k pps attack: needs >3 s of accumulation
		cfg.Window = eventsim.Second
		cfg.ResetPeriod = reset
		src := traffic.Merge(
			traffic.NewCBR(0, 30*eventsim.Second, 4e6, benignSpec(1).Factory(1)),
			traffic.NewCBR(0, 30*eventsim.Second, 40e6, attackSpec().Factory(2)),
		)
		_, j := run(cfg, src, 32*eventsim.Second)
		return j.FirstMitigation
	}
	fast := mk(eventsim.Second)
	slow := mk(10 * eventsim.Second)
	if fast >= 0 {
		t.Fatalf("fast reset should prevent reaching the high threshold, mitigated at %v", fast)
	}
	if slow < 0 {
		t.Fatal("slow reset should eventually accumulate past the threshold")
	}
}

func BenchmarkAdmit(b *testing.B) {
	eng := eventsim.New()
	port := netsim.NewPort(eng, queue.NewFIFO(125_000), 10e6, nil)
	j := Attach(eng, port, DefaultConfig())
	p := &packet.Packet{
		SrcIP: packet.V4(1, 2, 3, 4), DstIP: packet.V4(5, 6, 7, 8),
		SrcPort: 100, DstPort: 200, Length: 500, Protocol: packet.ProtoUDP,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.admit(eventsim.Time(i), p)
	}
}

func TestRateLimitMitigation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threshold = 1000
	cfg.Window = eventsim.Second
	cfg.RateLimitBits = 2e6 // police instead of dropping

	src := traffic.Merge(
		traffic.NewCBR(0, 15*eventsim.Second, 4e6, benignSpec(1).Factory(1)),
		traffic.NewCBR(eventsim.Second, 15*eventsim.Second, 40e6, attackSpec().Factory(2)),
	)
	rec, j := run(cfg, src, 16*eventsim.Second)
	if j.FirstMitigation < 0 {
		t.Fatal("never mitigated")
	}
	// The attack is not blackholed: some of it survives at ~the limit.
	if rec.MaliciousDropPercent() > 98 {
		t.Fatalf("rate-limit mode dropped %.1f%% of the attack (looks like a drop rule)",
			rec.MaliciousDropPercent())
	}
	// But most of the flood is still shed and benign survives.
	if rec.MaliciousDropPercent() < 70 {
		t.Fatalf("attack only dropped %.1f%%", rec.MaliciousDropPercent())
	}
	if rec.BenignDropPercent() > 10 {
		t.Fatalf("benign drops %.1f%%", rec.BenignDropPercent())
	}
}

// TestReconfigureThresholdLive lowers the detection threshold while the
// controller runs: a flood that evades the original threshold must be
// caught by the very next window under the patched one, without
// touching the sketch or the scheduled loops.
func TestReconfigureThresholdLive(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threshold = 1_000_000 // far above the flood's per-window count
	cfg.Window = eventsim.Second

	eng := eventsim.New()
	rec := netsim.NewRecorder(eventsim.Second)
	port := netsim.NewPort(eng, queue.NewFIFO(125_000), 10e6, rec)
	j := Attach(eng, port, cfg)
	netsim.Replay(eng, traffic.NewCBR(0, 10*eventsim.Second, 40e6, attackSpec().Factory(2)), port)

	if gen := j.rt.Generation(); gen != 1 {
		t.Fatalf("initial generation = %d, want 1", gen)
	}

	// Three windows under the blind threshold: nothing flagged.
	eng.RunUntil(3500 * eventsim.Millisecond)
	if j.Rules() != 0 {
		t.Fatalf("rules under high threshold = %d, want 0", j.Rules())
	}

	low := uint64(1000)
	one := 1
	gen, err := j.Reconfigure(RuntimePatch{Threshold: &low, ConsecutiveWindows: &one})
	if err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	if gen != 2 {
		t.Fatalf("generation = %d, want 2", gen)
	}
	if got := j.Runtime(); got.Threshold != low || got.ConsecutiveWindows != 1 {
		t.Fatalf("live runtime = %+v", got)
	}

	// One more window catches the flood: flagged mid-window, promoted
	// at the next poll with the single-window streak.
	eng.RunUntil(6 * eventsim.Second)
	if j.Rules() != 1 {
		t.Fatalf("rules after lowering threshold = %d, want 1", j.Rules())
	}
	if j.FirstMitigation < 3500*eventsim.Millisecond {
		t.Fatalf("mitigation at %v predates the reconfigure", j.FirstMitigation)
	}
}

// TestReconfigureRejectsInvalid checks a bad patch leaves the live
// knobs and the generation untouched.
func TestReconfigureRejectsInvalid(t *testing.T) {
	eng := eventsim.New()
	port := netsim.NewPort(eng, queue.NewFIFO(125_000), 10e6, netsim.NewRecorder(eventsim.Second))
	j := Attach(eng, port, DefaultConfig())
	before := j.Runtime()
	zero := uint64(0)
	gen, err := j.Reconfigure(RuntimePatch{Threshold: &zero})
	if err == nil {
		t.Fatal("accepted a zero threshold")
	}
	if gen != 1 || j.Runtime() != before {
		t.Fatalf("failed reconfigure changed state: gen=%d runtime=%+v", gen, j.Runtime())
	}
}
