package sketch

import (
	"math/rand"
	"testing"
)

// Benchmarks run at the Jaqen default geometry (4 rows × 65536 cols)
// over a pre-generated uniform key stream, so the ns/op numbers are
// directly comparable across the reference ([][]uint64 + per-row FNV),
// flat (contiguous + per-row FNV), and turbo (blocked + one mix per
// key) layouts. BENCH_sketch.json pins them under the CI trend gate;
// TestSketchHotPathsAllocFree pins the zero-alloc claims.

const benchRows, benchCols = 4, 65536

func benchKeys(n int) []uint64 {
	r := rand.New(rand.NewSource(1))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	return keys
}

func BenchmarkCountMinAdd(b *testing.B) {
	keys := benchKeys(1 << 16)
	b.Run("reference", func(b *testing.B) {
		cm := NewReferenceCountMin(benchRows, benchCols)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cm.Add(keys[i&(1<<16-1)], 1)
		}
	})
	b.Run("flat", func(b *testing.B) {
		cm := NewCountMin(benchRows, benchCols)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cm.Add(keys[i&(1<<16-1)], 1)
		}
	})
	b.Run("turbo", func(b *testing.B) {
		tc := NewTurboCountMin(benchRows, benchCols, false)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tc.Add(keys[i&(1<<16-1)], 1)
		}
	})
	b.Run("turbo-cu", func(b *testing.B) {
		tc := NewTurboCountMin(benchRows, benchCols, true)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tc.Add(keys[i&(1<<16-1)], 1)
		}
	})
}

func BenchmarkCountMinAddBatch(b *testing.B) {
	keys := benchKeys(1 << 16)
	tc := NewTurboCountMin(benchRows, benchCols, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(keys) {
		n := b.N - i
		if n > len(keys) {
			n = len(keys)
		}
		tc.AddBatch(keys[:n], 1, nil)
	}
}

func BenchmarkCountMinEstimateBatch(b *testing.B) {
	keys := benchKeys(1 << 16)
	out := make([]uint64, len(keys))
	tc := NewTurboCountMin(benchRows, benchCols, false)
	tc.AddBatch(keys, 1, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(keys) {
		n := b.N - i
		if n > len(keys) {
			n = len(keys)
		}
		tc.EstimateBatch(keys[:n], out[:n])
	}
}

func BenchmarkTopKOffer(b *testing.B) {
	keys := benchKeys(1 << 16)
	tk := NewTopK(16, benchRows, 4096, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tk.Offer(keys[i&(1<<16-1)], 64)
	}
}

// TestSketchHotPathsAllocFree gates the zero-alloc claims directly
// (the bench-trend gate checks allocs/op too; this fails faster and
// without -bench).
func TestSketchHotPathsAllocFree(t *testing.T) {
	keys := benchKeys(1 << 10)
	ests := make([]uint64, len(keys))

	cm := NewCountMin(benchRows, 4096)
	if a := testing.AllocsPerRun(100, func() { cm.Add(keys[0], 1); cm.Estimate(keys[1]) }); a != 0 {
		t.Fatalf("CountMin Add/Estimate: %.1f allocs/op", a)
	}
	tc := NewTurboCountMin(benchRows, 4096, true)
	if a := testing.AllocsPerRun(100, func() { tc.Add(keys[0], 1); tc.Estimate(keys[1]) }); a != 0 {
		t.Fatalf("TurboCountMin Add/Estimate: %.1f allocs/op", a)
	}
	if a := testing.AllocsPerRun(20, func() {
		tc.AddBatch(keys, 1, ests)
		tc.EstimateBatch(keys, ests)
	}); a != 0 {
		t.Fatalf("TurboCountMin AddBatch/EstimateBatch: %.1f allocs/op", a)
	}
	tk := NewTopK(16, benchRows, 4096, 1)
	for i, k := range keys {
		tk.Offer(k, uint64(i%100)+1) // reach steady state (heap full)
	}
	if a := testing.AllocsPerRun(100, func() { tk.Offer(keys[3], 7); tk.Offer(^keys[5], 9) }); a != 0 {
		t.Fatalf("TopK Offer: %.1f allocs/op", a)
	}
}
