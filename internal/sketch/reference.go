package sketch

import "math"

// ReferenceCountMin is the seed-era count-min: a [][]uint64 counter
// matrix updated with the same seeded FNV-1a row hashes and `%` column
// indexing as CountMin. It is retained verbatim (plus the saturation
// guard) as the behavioral oracle: differential tests pin CountMin
// bit-identical to it and bound TurboCountMin against it, and the
// benchmark suite measures the flattened and turbo layouts against its
// pointer-chasing one. Not for production paths.
type ReferenceCountMin struct {
	rows, cols int
	counts     [][]uint64
	// Updates counts Add calls since the last Reset.
	Updates uint64
}

// NewReferenceCountMin builds a reference sketch with the given
// geometry.
func NewReferenceCountMin(rows, cols int) *ReferenceCountMin {
	if rows <= 0 || cols <= 0 {
		panic("sketch: invalid reference count-min geometry")
	}
	cm := &ReferenceCountMin{rows: rows, cols: cols, counts: make([][]uint64, rows)}
	for i := range cm.counts {
		cm.counts[i] = make([]uint64, cols)
	}
	return cm
}

// Add increments key's count by delta and returns the new estimate.
func (cm *ReferenceCountMin) Add(key uint64, delta uint64) uint64 {
	cm.Updates++
	est := uint64(math.MaxUint64)
	for r := 0; r < cm.rows; r++ {
		c := hash64(uint64(r)+1, key) % uint64(cm.cols)
		v := cm.counts[r][c] + delta
		if v < cm.counts[r][c] {
			v = math.MaxUint64
		}
		cm.counts[r][c] = v
		if v < est {
			est = v
		}
	}
	return est
}

// Estimate returns the (over-)estimated count of key.
func (cm *ReferenceCountMin) Estimate(key uint64) uint64 {
	est := uint64(math.MaxUint64)
	for r := 0; r < cm.rows; r++ {
		c := hash64(uint64(r)+1, key) % uint64(cm.cols)
		if cm.counts[r][c] < est {
			est = cm.counts[r][c]
		}
	}
	return est
}

// Reset zeroes all counters.
func (cm *ReferenceCountMin) Reset() {
	for r := range cm.counts {
		clear(cm.counts[r])
	}
	cm.Updates = 0
}
