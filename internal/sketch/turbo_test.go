package sketch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// zipfStream returns a deterministic skewed key stream: a few heavy
// keys and a long tail, the regime Jaqen's sketch actually sees.
func zipfStream(seed int64, n int) []uint64 {
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, 1.2, 1.0, 1<<20)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = z.Uint64()
	}
	return keys
}

// TestTurboCountMinNeverUnderestimates is the count-min safety
// property: for every key of the stream, the turbo estimate must be ≥
// the true count, in both vanilla and conservative-update modes, at
// several geometries including a multi-block depth.
func TestTurboCountMinNeverUnderestimates(t *testing.T) {
	for _, conservative := range []bool{false, true} {
		for _, g := range []struct{ rows, cols int }{
			{1, 8}, {4, 1024}, {4, 65536}, {12, 512},
		} {
			tc := NewTurboCountMin(g.rows, g.cols, conservative)
			truth := map[uint64]uint64{}
			for _, k := range zipfStream(int64(g.rows*1000+g.cols), 30_000) {
				tc.Add(k, 1)
				truth[k]++
			}
			for k, want := range truth {
				if got := tc.Estimate(k); got < want {
					t.Fatalf("%dx%d cu=%v: estimate %d < truth %d for key %x",
						g.rows, g.cols, conservative, got, want, k)
				}
			}
		}
	}
}

// TestConservativeUpdateNeverExceedsVanilla checks the invariant that
// makes conservative update safe to enable: on the same stream the CU
// estimate of every key is ≤ the vanilla estimate (pointwise tighter,
// never looser), while both stay ≥ truth.
func TestConservativeUpdateNeverExceedsVanilla(t *testing.T) {
	vanilla := NewTurboCountMin(4, 4096, false)
	cu := NewTurboCountMin(4, 4096, true)
	truth := map[uint64]uint64{}
	for _, k := range zipfStream(99, 50_000) {
		vanilla.Add(k, 1)
		cu.Add(k, 1)
		truth[k]++
	}
	tightened := 0
	for k, want := range truth {
		v, c := vanilla.Estimate(k), cu.Estimate(k)
		if c > v {
			t.Fatalf("CU estimate %d exceeds vanilla %d for key %x", c, v, k)
		}
		if c < want {
			t.Fatalf("CU estimate %d below truth %d for key %x", c, want, k)
		}
		if c < v {
			tightened++
		}
	}
	// On a 50k-update Zipf stream into 4x4096 there are plenty of
	// collisions; CU must actually tighten some of them, otherwise the
	// mode is wired wrong (e.g. silently ignored).
	if tightened == 0 {
		t.Fatal("conservative update tightened no estimates on a colliding stream")
	}
}

// Property variant over arbitrary streams: est ≥ truth and CU ≤
// vanilla must hold for every seed, not just the fixtures above.
func TestQuickTurboInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vanilla := NewTurboCountMin(3, 64, false)
		cu := NewTurboCountMin(3, 64, true)
		truth := map[uint64]uint64{}
		for i := 0; i < 500; i++ {
			k := r.Uint64() % 200 // force collisions in the tiny sketch
			d := uint64(r.Intn(5) + 1)
			vanilla.Add(k, d)
			cu.Add(k, d)
			truth[k] += d
		}
		for k, want := range truth {
			v, c := vanilla.Estimate(k), cu.Estimate(k)
			if v < want || c < want || c > v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTurboBatchMatchesSequential pins AddBatch/EstimateBatch to the
// scalar path: same final counters, same returned estimates, on the
// same stream — the batch paths are a scheduling change, not a
// semantic one.
func TestTurboBatchMatchesSequential(t *testing.T) {
	for _, conservative := range []bool{false, true} {
		keys := zipfStream(7, 10_000)
		scalar := NewTurboCountMin(4, 4096, conservative)
		batch := NewTurboCountMin(4, 4096, conservative)

		wantEsts := make([]uint64, len(keys))
		for i, k := range keys {
			wantEsts[i] = scalar.Add(k, 3)
		}
		gotEsts := make([]uint64, len(keys))
		batch.AddBatch(keys, 3, gotEsts)

		for i := range keys {
			if gotEsts[i] != wantEsts[i] {
				t.Fatalf("cu=%v: AddBatch est[%d]=%d, sequential Add gave %d",
					conservative, i, gotEsts[i], wantEsts[i])
			}
		}
		if scalar.Updates != batch.Updates {
			t.Fatalf("Updates diverged: %d vs %d", scalar.Updates, batch.Updates)
		}

		probe := zipfStream(8, 2_000)
		wantQ := make([]uint64, len(probe))
		for i, k := range probe {
			wantQ[i] = scalar.Estimate(k)
		}
		gotQ := make([]uint64, len(probe))
		batch.EstimateBatch(probe, gotQ)
		for i := range probe {
			if gotQ[i] != wantQ[i] {
				t.Fatalf("cu=%v: EstimateBatch[%d]=%d, Estimate gave %d",
					conservative, i, gotQ[i], wantQ[i])
			}
		}
	}
}

// TestTurboCountMinSaturates mirrors the CountMin overflow regression
// for both turbo modes.
func TestTurboCountMinSaturates(t *testing.T) {
	for _, conservative := range []bool{false, true} {
		tc := NewTurboCountMin(2, 8, conservative)
		tc.Add(42, math.MaxUint64-5)
		if got := tc.Add(42, 10); got != math.MaxUint64 {
			t.Fatalf("cu=%v: Add past MaxUint64 returned %d", conservative, got)
		}
		if got := tc.Estimate(42); got != math.MaxUint64 {
			t.Fatalf("cu=%v: Estimate after saturation = %d", conservative, got)
		}
	}
}

// TestTurboCountMinWordsRoundTrip checks the turbo snapshot mirror.
func TestTurboCountMinWordsRoundTrip(t *testing.T) {
	tc := NewTurboCountMin(4, 1024, true)
	for _, k := range zipfStream(3, 5_000) {
		tc.Add(k, 2)
	}
	restored := NewTurboCountMin(4, 1024, true)
	if err := restored.SetWords(tc.Words(), tc.Updates); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 100; k++ {
		if restored.Estimate(k) != tc.Estimate(k) {
			t.Fatalf("estimate for key %d diverged after restore", k)
		}
	}
	wrong := NewTurboCountMin(4, 2048, true)
	if err := wrong.SetWords(tc.Words(), tc.Updates); err == nil {
		t.Fatal("SetWords accepted a geometry mismatch")
	}
}

// TestTurboGeometryRounding pins the power-of-two/minimum behavior the
// layout depends on.
func TestTurboGeometryRounding(t *testing.T) {
	for _, c := range []struct{ in, want int }{
		{1, 8}, {8, 8}, {9, 16}, {4096, 4096}, {65000, 65536},
	} {
		if got := NewTurboCountMin(4, c.in, false).Cols(); got != c.want {
			t.Fatalf("cols %d rounded to %d, want %d", c.in, got, c.want)
		}
	}
	// 12 rows -> 2 blocks of cols counters each.
	tc := NewTurboCountMin(12, 1024, false)
	if got, want := tc.FootprintBytes(), 2*1024*8; got != want {
		t.Fatalf("FootprintBytes = %d, want %d", got, want)
	}
}

// TestLaneDistribution guards the subtle failure mode of the blocked
// layout: if the per-row lanes were derived from overlapping hash
// bits, all rows of a block would collapse onto the same counter and
// the sketch would silently behave as depth 1. Distinct keys must
// spread a block's 8 rows over multiple lanes.
func TestLaneDistribution(t *testing.T) {
	tc := NewTurboCountMin(8, 8, false) // single line: index = lane per row
	distinct := 0
	for key := uint64(0); key < 64; key++ {
		h1, h2 := hashPair(key)
		_ = h2
		lanes := map[int]bool{}
		for r := 0; r < 8; r++ {
			lanes[tc.index(r, h1)] = true
		}
		if len(lanes) > 1 {
			distinct++
		}
	}
	if distinct < 60 {
		t.Fatalf("only %d/64 keys spread across lanes; lane bits are not independent", distinct)
	}
}

// TestCountMinForErrorBound is the epsilon/delta accuracy contract:
// with cols = ceil(e/eps) and rows = ceil(ln 1/delta), the additive
// error over a stream of total weight N should exceed eps*N only with
// probability ~delta. We check that the large majority of keys sit
// within the bound — far more than the 1-delta guarantee — for both
// the compatible and turbo sizings.
func TestCountMinForErrorBound(t *testing.T) {
	const (
		epsilon = 0.005
		delta   = 0.01
		n       = 40_000
	)
	keys := zipfStream(21, n)

	check := func(name string, est func(uint64) uint64) {
		truth := map[uint64]uint64{}
		for _, k := range keys {
			truth[k]++
		}
		bound := uint64(math.Ceil(epsilon * float64(n)))
		bad := 0
		for k, want := range truth {
			got := est(k)
			if got < want {
				t.Fatalf("%s: underestimate %d < %d", name, got, want)
			}
			if got-want > bound {
				bad++
			}
		}
		// Allow 5x the nominal failure probability as test slack.
		if limit := int(5*delta*float64(len(truth))) + 1; bad > limit {
			t.Fatalf("%s: %d/%d keys exceed the eps*N=%d error bound (limit %d)",
				name, bad, len(truth), bound, limit)
		}
	}

	cm := NewCountMinForError(epsilon, delta)
	for _, k := range keys {
		cm.Add(k, 1)
	}
	check("CountMin", cm.Estimate)

	tc := NewTurboCountMinForError(epsilon, delta, false)
	for _, k := range keys {
		tc.Add(k, 1)
	}
	check("TurboCountMin", tc.Estimate)
}

// TestTurboDepthCap: ln(1/delta) sizing must clamp to the 64-row stack
// bound instead of panicking for absurd delta.
func TestTurboDepthCap(t *testing.T) {
	tc := NewTurboCountMinForError(0.01, 1e-30, false)
	if tc.Rows() != maxTurboRows {
		t.Fatalf("rows = %d, want clamp at %d", tc.Rows(), maxTurboRows)
	}
}
