package sketch

import (
	"math/rand"
	"testing"
)

// TestTopKFindsHeavyKeys feeds a stream with known heavy hitters and a
// long tail; the tracker must surface every heavy key, ranked by
// weight.
func TestTopKFindsHeavyKeys(t *testing.T) {
	tk := NewTopK(8, 4, 4096, 1)
	r := rand.New(rand.NewSource(5))
	// Heavy keys 1..5 with clearly separated weights, plus 20k noise keys.
	heavy := map[uint64]uint64{1: 50_000, 2: 40_000, 3: 30_000, 4: 20_000, 5: 10_000}
	type obs struct{ k, w uint64 }
	var stream []obs
	for k, total := range heavy {
		for got := uint64(0); got < total; got += 500 {
			stream = append(stream, obs{k, 500})
		}
	}
	for i := 0; i < 20_000; i++ {
		stream = append(stream, obs{1000 + r.Uint64()%50_000, uint64(r.Intn(200) + 1)})
	}
	r.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
	for _, o := range stream {
		tk.Offer(o.k, o.w)
	}

	top := tk.Top()
	rank := map[uint64]int{}
	for i, e := range top {
		rank[e.Key] = i
	}
	for k := uint64(1); k <= 5; k++ {
		i, ok := rank[k]
		if !ok {
			t.Fatalf("heavy key %d missing from top-%d: %v", k, tk.K(), top)
		}
		// Weights are separated 10k apart; order must match.
		if i != int(k)-1 {
			t.Fatalf("heavy key %d ranked %d, want %d: %v", k, i, k-1, top)
		}
		if est := top[i].Count; est < heavy[k] {
			t.Fatalf("tracked count %d below true weight %d for key %d", est, heavy[k], k)
		}
	}
}

// TestTopKDeterminism: identical offer sequences into identically
// seeded trackers must produce identical rankings — the property the
// victim detector's CI determinism gate rests on.
func TestTopKDeterminism(t *testing.T) {
	run := func() []Element {
		tk := NewTopK(16, 4, 1024, 42)
		r := rand.New(rand.NewSource(9))
		for i := 0; i < 50_000; i++ {
			tk.Offer(r.Uint64()%10_000, uint64(r.Intn(1500)+1))
		}
		return tk.Top()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestTopKPersistentChallengerGetsIn: a sustained new key must
// displace a stale incumbent — the est ≥ truth guarantee means its
// estimate eventually exceeds any finite incumbent count.
func TestTopKPersistentChallengerGetsIn(t *testing.T) {
	tk := NewTopK(2, 4, 1024, 7)
	for i := 0; i < 200; i++ {
		tk.Offer(100, 1)
		tk.Offer(200, 1)
	}
	for i := 0; i < 2_000; i++ {
		tk.Offer(300, 1)
	}
	found := false
	for _, e := range tk.Top() {
		if e.Key == 300 {
			found = true
		}
	}
	if !found {
		t.Fatalf("sustained key 300 never displaced a stale incumbent: %+v", tk.Top())
	}
}

// TestTopKDecayEvictsStaleKeys exercises the exponential-decay path:
// low-count incumbents pounded by a stream of one-shot challengers
// (none of which can beat them on estimate alone) must decay and
// eventually be displaced. Decay probability at count ~30 is
// 1.08^-30 ≈ 10%, so a few hundred losing challengers suffice.
func TestTopKDecayEvictsStaleKeys(t *testing.T) {
	tk := NewTopK(2, 4, 1024, 7)
	for i := 0; i < 30; i++ {
		tk.Offer(100, 1)
		tk.Offer(200, 1)
	}
	before := tk.Entries()
	for i := uint64(0); i < 5_000; i++ {
		tk.Offer(1_000+i, 1) // distinct one-shot challengers
	}
	if tk.Decayed == 0 {
		t.Fatal("no decay events across 5000 losing challenges at ~10% decay probability")
	}
	after := tk.Top()
	displaced := false
	for _, e := range after {
		if e.Key != 100 && e.Key != 200 {
			displaced = true
		}
	}
	if !displaced {
		t.Fatalf("stale incumbents %+v survived 5000 challengers undecayed: %+v (decayed=%d)",
			before, after, tk.Decayed)
	}
}

// TestTopKHeapInvariant checks pos-map/heap consistency under churn.
func TestTopKHeapInvariant(t *testing.T) {
	tk := NewTopK(32, 4, 512, 3)
	r := rand.New(rand.NewSource(77))
	for i := 0; i < 100_000; i++ {
		tk.Offer(r.Uint64()%500, uint64(r.Intn(100)+1))
	}
	if len(tk.entries) != len(tk.pos) {
		t.Fatalf("heap has %d entries, pos map has %d", len(tk.entries), len(tk.pos))
	}
	for i, e := range tk.entries {
		if tk.pos[e.key] != i {
			t.Fatalf("pos[%x] = %d, entry lives at %d", e.key, tk.pos[e.key], i)
		}
		if l := 2*i + 1; l < len(tk.entries) && tk.entries[l].count < e.count {
			t.Fatalf("min-heap violated at %d", i)
		}
		if rr := 2*i + 2; rr < len(tk.entries) && tk.entries[rr].count < e.count {
			t.Fatalf("min-heap violated at %d", i)
		}
	}
}

// TestTopKRestoreRoundTrip: Entries/RNG → Restore must reproduce the
// tracker exactly, including subsequent behavior.
func TestTopKRestoreRoundTrip(t *testing.T) {
	tk := NewTopK(8, 4, 512, 11)
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 30_000; i++ {
		tk.Offer(r.Uint64()%2_000, uint64(r.Intn(50)+1))
	}

	clone := NewTopK(8, 4, 512, 0)
	if err := clone.Sketch().SetWords(tk.Sketch().Words(), tk.Sketch().Updates); err != nil {
		t.Fatal(err)
	}
	clone.Restore(tk.Entries(), tk.RNG())

	// Same state now...
	a, b := tk.Top(), clone.Top()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d diverged after restore: %+v vs %+v", i, a[i], b[i])
		}
	}
	// ...and same behavior going forward (RNG state included).
	for i := 0; i < 10_000; i++ {
		k, w := r.Uint64()%2_000, uint64(r.Intn(50)+1)
		tk.Offer(k, w)
		clone.Offer(k, w)
	}
	a, b = tk.Top(), clone.Top()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d diverged after post-restore offers: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestTopKAppendTopReusesBuffer: the polling path must not allocate
// once the destination has capacity.
func TestTopKAppendTopReusesBuffer(t *testing.T) {
	tk := NewTopK(8, 4, 512, 1)
	for k := uint64(0); k < 20; k++ {
		tk.Offer(k, (k+1)*10)
	}
	buf := make([]Element, 0, 8)
	allocs := testing.AllocsPerRun(100, func() {
		buf = tk.AppendTop(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("AppendTop allocated %.1f/op with a pre-sized buffer", allocs)
	}
	want := tk.Top()
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("AppendTop[%d] = %+v, Top gave %+v", i, buf[i], want[i])
		}
	}
}

// TestTopKResetClears: a reset tracker starts a fresh window but keeps
// its RNG stream (windows are deterministic as a sequence).
func TestTopKResetClears(t *testing.T) {
	tk := NewTopK(4, 4, 512, 1)
	for k := uint64(0); k < 10; k++ {
		tk.Offer(k, 100)
	}
	rngBefore := tk.RNG()
	tk.Reset()
	if tk.Len() != 0 || len(tk.pos) != 0 || tk.Decayed != 0 {
		t.Fatal("Reset left tracker state behind")
	}
	if tk.Sketch().Estimate(3) != 0 {
		t.Fatal("Reset left sketch counters behind")
	}
	if tk.RNG() != rngBefore {
		t.Fatal("Reset rewound the decay RNG")
	}
}
