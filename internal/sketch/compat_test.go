package sketch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestCountMinMatchesReference pins the flattened layout bit-identical
// to the seed-era [][]uint64 implementation: same hashes, same column
// indexing, same estimates after every single update, across several
// geometries (including non-power-of-two columns, where any masking
// shortcut would diverge immediately).
func TestCountMinMatchesReference(t *testing.T) {
	for _, g := range []struct{ rows, cols int }{
		{1, 7}, {3, 100}, {4, 4096}, {4, 65536}, {5, 1021},
	} {
		flat := NewCountMin(g.rows, g.cols)
		ref := NewReferenceCountMin(g.rows, g.cols)
		r := rand.New(rand.NewSource(int64(g.rows*100000 + g.cols)))
		for i := 0; i < 20_000; i++ {
			k := r.Uint64() >> uint(r.Intn(60)) // mix dense and sparse keys
			d := uint64(r.Intn(9) + 1)
			if got, want := flat.Add(k, d), ref.Add(k, d); got != want {
				t.Fatalf("%dx%d update %d: flat Add=%d reference Add=%d", g.rows, g.cols, i, got, want)
			}
		}
		for i := 0; i < 5_000; i++ {
			k := r.Uint64() >> uint(r.Intn(60))
			if got, want := flat.Estimate(k), ref.Estimate(k); got != want {
				t.Fatalf("%dx%d: flat Estimate=%d reference Estimate=%d for key %x", g.rows, g.cols, got, want, k)
			}
		}
		if flat.Updates != ref.Updates {
			t.Fatalf("Updates diverged: %d vs %d", flat.Updates, ref.Updates)
		}
	}
}

// Property variant of the same pin, over arbitrary key/delta streams.
func TestQuickCountMinMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		flat := NewCountMin(3, 129)
		ref := NewReferenceCountMin(3, 129)
		for i := 0; i < 300; i++ {
			k := r.Uint64()
			d := uint64(r.Intn(7) + 1)
			if flat.Add(k, d) != ref.Add(k, d) {
				return false
			}
		}
		for i := 0; i < 100; i++ {
			k := r.Uint64()
			if flat.Estimate(k) != ref.Estimate(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestCountMinSaturatesInsteadOfWrapping is the overflow regression: a
// counter pushed past MaxUint64 must pin there, not wrap to a small
// value that would silently become the row minimum and poison every
// estimate sharing the counter.
func TestCountMinSaturatesInsteadOfWrapping(t *testing.T) {
	cm := NewCountMin(2, 8)
	cm.Add(42, math.MaxUint64-5)
	if got := cm.Add(42, 10); got != math.MaxUint64 {
		t.Fatalf("Add past MaxUint64 returned %d, want saturation at MaxUint64", got)
	}
	if got := cm.Estimate(42); got != math.MaxUint64 {
		t.Fatalf("Estimate after saturation = %d, want MaxUint64", got)
	}
	// A saturated counter must stay an overestimate for everything else
	// in the column: further adds keep it pinned.
	if got := cm.Add(42, math.MaxUint64); got != math.MaxUint64 {
		t.Fatalf("saturated counter moved to %d", got)
	}
	// The reference oracle saturates identically.
	ref := NewReferenceCountMin(2, 8)
	ref.Add(42, math.MaxUint64-5)
	if got := ref.Add(42, 10); got != math.MaxUint64 {
		t.Fatalf("reference wrapped to %d", got)
	}
}

// TestCountMinWordsRoundTrip checks the snapshot mirror of Bloom's
// Words/SetWords: counters and the update count survive a round trip,
// and geometry mismatches are rejected instead of mis-hashing.
func TestCountMinWordsRoundTrip(t *testing.T) {
	cm := NewCountMin(3, 64)
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		cm.Add(r.Uint64()%50, uint64(r.Intn(4)+1))
	}
	words, updates := cm.Words(), cm.Updates

	restored := NewCountMin(3, 64)
	if err := restored.SetWords(words, updates); err != nil {
		t.Fatal(err)
	}
	if restored.Updates != updates {
		t.Fatalf("Updates = %d, want %d", restored.Updates, updates)
	}
	for k := uint64(0); k < 50; k++ {
		if restored.Estimate(k) != cm.Estimate(k) {
			t.Fatalf("estimate for key %d diverged after restore", k)
		}
	}

	// Mutating the returned copy must not alias live counters.
	words[0] = math.MaxUint64
	if cm.counts[0] == math.MaxUint64 && cm.counts[0] != cm.Words()[0] {
		t.Fatal("Words aliases live counters")
	}

	wrong := NewCountMin(3, 65)
	if err := wrong.SetWords(words, updates); err == nil {
		t.Fatal("SetWords accepted a geometry mismatch")
	}
}
