package sketch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCountMinNeverUnderestimates(t *testing.T) {
	cm := NewCountMin(4, 512)
	truth := map[uint64]uint64{}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 10_000; i++ {
		k := uint64(r.Intn(2000))
		truth[k]++
		cm.Add(k, 1)
	}
	for k, want := range truth {
		if got := cm.Estimate(k); got < want {
			t.Fatalf("key %d: estimate %d < truth %d", k, got, want)
		}
	}
	if cm.Updates != 10_000 {
		t.Fatalf("Updates = %d", cm.Updates)
	}
}

func TestCountMinHeavyHitterAccuracy(t *testing.T) {
	cm := NewCountMinForError(0.001, 0.01)
	r := rand.New(rand.NewSource(7))
	// One heavy key among uniform noise.
	const heavy = uint64(0xdeadbeef)
	for i := 0; i < 50_000; i++ {
		cm.Add(uint64(r.Intn(100_000))+1_000_000, 1)
	}
	for i := 0; i < 5_000; i++ {
		cm.Add(heavy, 1)
	}
	got := cm.Estimate(heavy)
	// epsilon=0.001 over 55k updates allows +55 error.
	if got < 5000 || got > 5000+100 {
		t.Fatalf("heavy hitter estimate %d, want ~5000", got)
	}
}

func TestCountMinAddReturnsEstimate(t *testing.T) {
	cm := NewCountMin(3, 1024)
	var last uint64
	for i := 0; i < 10; i++ {
		last = cm.Add(99, 1)
	}
	if last != cm.Estimate(99) {
		t.Fatalf("Add returned %d, Estimate %d", last, cm.Estimate(99))
	}
	if last < 10 {
		t.Fatalf("estimate %d below truth 10", last)
	}
}

func TestCountMinReset(t *testing.T) {
	cm := NewCountMin(2, 64)
	cm.Add(1, 5)
	cm.Reset()
	if cm.Estimate(1) != 0 || cm.Updates != 0 {
		t.Fatal("reset did not clear sketch")
	}
}

func TestCountMinGeometryValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewCountMin(0, 10) },
		func() { NewCountMin(10, 0) },
		func() { NewCountMinForError(0, 0.1) },
		func() { NewCountMinForError(0.1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	b := NewBloomForRate(1000, 0.01)
	for i := uint64(0); i < 1000; i++ {
		b.Insert(i * 2654435761)
	}
	for i := uint64(0); i < 1000; i++ {
		if !b.Contains(i * 2654435761) {
			t.Fatalf("false negative for element %d", i)
		}
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	b := NewBloomForRate(1000, 0.01)
	r := rand.New(rand.NewSource(3))
	inserted := map[uint64]bool{}
	for len(inserted) < 1000 {
		k := r.Uint64()
		inserted[k] = true
		b.Insert(k)
	}
	fp := 0
	const probes = 20_000
	for i := 0; i < probes; i++ {
		k := r.Uint64()
		if inserted[k] {
			continue
		}
		if b.Contains(k) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 { // 3x slack over the 1% design point
		t.Fatalf("false positive rate %v too high", rate)
	}
}

func TestBloomResetAndFillRatio(t *testing.T) {
	b := NewBloom(1024, 3)
	if b.FillRatio() != 0 {
		t.Fatal("fresh filter not empty")
	}
	b.Insert(123)
	if b.FillRatio() == 0 {
		t.Fatal("fill ratio did not increase")
	}
	if b.Inserted != 1 {
		t.Fatalf("Inserted = %d", b.Inserted)
	}
	b.Reset()
	if b.Contains(123) || b.FillRatio() != 0 {
		t.Fatal("reset did not clear filter")
	}
}

func TestBloomGeometryValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewBloom(0, 3) },
		func() { NewBloom(64, 0) },
		func() { NewBloomForRate(0, 0.01) },
		func() { NewBloomForRate(10, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHashBytesDiffers(t *testing.T) {
	a := HashBytes(1, []byte("hello"))
	b := HashBytes(1, []byte("hellp"))
	c := HashBytes(2, []byte("hello"))
	if a == b || a == c {
		t.Fatalf("hash collisions in trivial cases: %x %x %x", a, b, c)
	}
}

// Property: estimates are monotone in updates and always >= truth.
func TestQuickCountMinOverestimate(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cm := NewCountMin(3, 128)
		truth := map[uint64]uint64{}
		for i := 0; i < 500; i++ {
			k := uint64(r.Intn(200))
			d := uint64(r.Intn(5) + 1)
			truth[k] += d
			cm.Add(k, d)
		}
		for k, want := range truth {
			if cm.Estimate(k) < want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Bloom filters never produce false negatives.
func TestQuickBloomNoFalseNegatives(t *testing.T) {
	f := func(keys []uint64) bool {
		if len(keys) == 0 {
			return true
		}
		b := NewBloomForRate(len(keys), 0.05)
		for _, k := range keys {
			b.Insert(k)
		}
		for _, k := range keys {
			if !b.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBloomInsertContains(b *testing.B) {
	bl := NewBloom(1<<16, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bl.Insert(uint64(i))
		bl.Contains(uint64(i))
	}
}
