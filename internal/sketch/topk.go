package sketch

import "math"

// TopK tracks the k heaviest keys of a weighted stream — the
// heavy-keeper design: a turbo count-min estimates every key's weight,
// a min-heap of candidate keys holds the current top k, and an
// incumbent that keeps losing to new challengers decays exponentially
// until it is evicted. The victim-identification front-end uses one
// per egress link to rank heavy destination aggregates.
//
// Determinism: eviction decay is probabilistic in the heavy-keeper
// paper; here the coin flips come from an internal splitmix64 stream
// seeded at construction, so the same offer sequence always yields the
// same ranking — which is what lets the victim experiment run under
// the CI determinism gate.
type TopK struct {
	k       int
	cm      *TurboCountMin
	entries []tkEntry      // min-heap on count; entries[0] is the weakest incumbent
	pos     map[uint64]int // key -> heap index
	rng     uint64         // splitmix64 state for decay coin flips
	// decayThresh[c] is the probability (as a 2^64-scaled threshold) of
	// decaying an incumbent with count c when a challenger loses to it:
	// decayBase^-c, the heavy-keeper exponential decay.
	decayThresh []uint64
	// Decayed counts eviction-decay events, an observability aid.
	Decayed uint64
}

type tkEntry struct {
	key   uint64
	count uint64
}

// Element is one ranked entry of a TopK snapshot.
type Element struct {
	Key   uint64
	Count uint64
}

// decayBase is the heavy-keeper b parameter: incumbents survive
// challengers with probability 1 - b^-count, so established heavy
// keys are nearly immortal while noise decays away in a few offers.
const decayBase = 1.08

// decayTableSize caps the precomputed threshold table; beyond it
// b^-count underflows any useful probability (1.08^-256 ≈ 3e-9).
const decayTableSize = 256

// NewTopK builds a tracker for the k heaviest keys backed by a
// rows × cols turbo count-min (conservative update — overestimates
// would otherwise promote phantom candidates). seed drives the decay
// coin flips.
func NewTopK(k, rows, cols int, seed uint64) *TopK {
	if k <= 0 {
		panic("sketch: TopK needs k > 0")
	}
	t := &TopK{
		k:           k,
		cm:          NewTurboCountMin(rows, cols, true),
		entries:     make([]tkEntry, 0, k),
		pos:         make(map[uint64]int, k),
		rng:         seed,
		decayThresh: make([]uint64, decayTableSize),
	}
	for c := 0; c < decayTableSize; c++ {
		p := math.Pow(decayBase, -float64(c))
		t.decayThresh[c] = uint64(p * float64(math.MaxUint64))
	}
	return t
}

// nextRand advances the splitmix64 stream.
func (t *TopK) nextRand() uint64 {
	t.rng += 0x9e3779b97f4a7c15
	return mix64(t.rng)
}

// Offer feeds one (key, weight) observation. Allocation free at steady
// state: heap slots and map cells are reused across evictions.
func (t *TopK) Offer(key uint64, weight uint64) {
	if i, ok := t.pos[key]; ok {
		// Tracked keys count exactly: the sketch is only consulted for
		// challengers, so incumbents are immune to its overestimate.
		t.cm.Add(key, weight)
		e := &t.entries[i]
		c := e.count + weight
		if c < e.count {
			c = math.MaxUint64
		}
		e.count = c
		t.siftDown(i)
		return
	}
	est := t.cm.Add(key, weight)
	if len(t.entries) < t.k {
		t.entries = append(t.entries, tkEntry{key: key, count: est})
		t.pos[key] = len(t.entries) - 1
		t.siftUp(len(t.entries) - 1)
		return
	}
	min := &t.entries[0]
	if est > min.count {
		// Admit at min(est, evicted+weight), not raw est: a challenger
		// whose counters all collide with a true heavy key can carry an
		// estimate tens of times its real weight, and entering at that
		// value would freeze a phantom above genuine heavy keys. Capping
		// at the evicted count plus this offer keeps admission monotone
		// (the entrant outranks what it displaced) without importing the
		// sketch's collision error into the ranking.
		c := min.count + weight
		if c < min.count {
			c = math.MaxUint64
		}
		if est < c {
			c = est
		}
		delete(t.pos, min.key)
		min.key, min.count = key, c
		t.pos[key] = 0
		t.siftDown(0)
		return
	}
	// Challenger lost: decay the weakest incumbent with probability
	// decayBase^-count. A decayed-to-zero incumbent is replaced by the
	// challenger at its sketch estimate.
	c := min.count
	if c >= decayTableSize {
		c = decayTableSize - 1
	}
	if t.nextRand() < t.decayThresh[c] {
		t.Decayed++
		if min.count <= weight {
			delete(t.pos, min.key)
			min.key, min.count = key, est
			t.pos[key] = 0
			t.siftDown(0)
			return
		}
		min.count -= weight
		// Count decreased at the root of a min-heap: still the minimum.
	}
}

// Estimate returns the tracked count for an incumbent, or the sketch
// estimate otherwise.
func (t *TopK) Estimate(key uint64) uint64 {
	if i, ok := t.pos[key]; ok {
		return t.entries[i].count
	}
	return t.cm.Estimate(key)
}

// Top returns the tracked keys ranked heaviest first (count desc, key
// asc for ties — the tie-break keeps output deterministic). The slice
// is a copy owned by the caller.
func (t *TopK) Top() []Element {
	out := make([]Element, len(t.entries))
	for i, e := range t.entries {
		out[i] = Element{Key: e.key, Count: e.count}
	}
	sortElements(out)
	return out
}

// AppendTop appends the ranked elements to dst and returns it, the
// allocation-free variant of Top for per-window polling.
func (t *TopK) AppendTop(dst []Element) []Element {
	n := len(dst)
	for _, e := range t.entries {
		dst = append(dst, Element{Key: e.key, Count: e.count})
	}
	sortElements(dst[n:])
	return dst
}

// sortElements orders count desc, key asc — an insertion sort because
// k is small and sort.Slice's reflection would allocate on the
// zero-alloc polling path.
func sortElements(es []Element) {
	for i := 1; i < len(es); i++ {
		e := es[i]
		j := i - 1
		for j >= 0 && (es[j].Count < e.Count || (es[j].Count == e.Count && es[j].Key > e.Key)) {
			es[j+1] = es[j]
			j--
		}
		es[j+1] = e
	}
}

// Len returns the number of tracked keys (≤ k).
func (t *TopK) Len() int { return len(t.entries) }

// K returns the tracker's capacity.
func (t *TopK) K() int { return t.k }

// Sketch exposes the backing turbo count-min (for serialization).
func (t *TopK) Sketch() *TurboCountMin { return t.cm }

// Reset clears the tracker and its sketch for the next window. The
// decay RNG deliberately keeps its state: windows stay deterministic
// as a sequence, not individually identical.
func (t *TopK) Reset() {
	t.cm.Reset()
	t.entries = t.entries[:0]
	clear(t.pos)
	t.Decayed = 0
}

// Entries returns the raw (unranked) heap entries; Restore rebuilds a
// tracker from them. Both exist for the victim detector's snapshot.
func (t *TopK) Entries() []Element {
	out := make([]Element, len(t.entries))
	for i, e := range t.entries {
		out[i] = Element{Key: e.key, Count: e.count}
	}
	return out
}

// Restore replaces the tracked set and RNG state (heap order is
// rebuilt, so Entries → Restore round-trips through any order).
func (t *TopK) Restore(entries []Element, rng uint64) {
	t.entries = t.entries[:0]
	clear(t.pos)
	for _, e := range entries {
		if len(t.entries) == t.k {
			break
		}
		t.entries = append(t.entries, tkEntry{key: e.Key, count: e.Count})
	}
	for i := len(t.entries)/2 - 1; i >= 0; i-- {
		t.siftDown(i)
	}
	for i, e := range t.entries {
		t.pos[e.key] = i
	}
	t.rng = rng
}

// RNG exposes the decay stream state (for serialization).
func (t *TopK) RNG() uint64 { return t.rng }

// siftUp restores the min-heap upward from i, keeping pos in sync.
func (t *TopK) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if t.entries[p].count <= t.entries[i].count {
			return
		}
		t.swap(p, i)
		i = p
	}
}

// siftDown restores the min-heap downward from i, keeping pos in sync.
func (t *TopK) siftDown(i int) {
	n := len(t.entries)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && t.entries[l].count < t.entries[small].count {
			small = l
		}
		if r < n && t.entries[r].count < t.entries[small].count {
			small = r
		}
		if small == i {
			return
		}
		t.swap(i, small)
		i = small
	}
}

func (t *TopK) swap(i, j int) {
	t.entries[i], t.entries[j] = t.entries[j], t.entries[i]
	t.pos[t.entries[i].key] = i
	t.pos[t.entries[j].key] = j
}
