// Package sketch provides the probabilistic data structures used by the
// reproduced systems: count-min sketches (Jaqen's heavy-hitter detector
// and the victim-identification front-end), a Bloom filter (ACC-Turbo's
// nominal-feature admission lists), and a heavy-keeper top-k (victim
// ranking).
//
// Two families coexist, with different compatibility contracts:
//
//   - CountMin and Bloom hash with seeded FNV-1a and index with `%`,
//     exactly as the seed implementation did. Their per-key bit and
//     counter placement is pinned by golden experiment hashes and by the
//     ACCSNAP1 snapshot format (cluster nominal sets serialize Bloom
//     words verbatim), so only the memory *layout* and dispatch may
//     change — never the index math. CountMin's counters live on one
//     contiguous row-major []uint64 (no per-row slice headers, no
//     pointer chase) but each estimate is bit-identical to the seed's
//     [][]uint64 matrix, which survives as ReferenceCountMin for
//     differential tests.
//
//   - TurboCountMin and TopK (turbo.go, topk.go) are the wire-speed
//     variants: one 64-bit mix per key, Kirsch–Mitzenmacher row
//     derivation, power-of-two masking and a cache-line-blocked layout.
//     They are differentially tested against the reference rather than
//     golden-pinned, and callers opt in explicitly (jaqen.Config
//     .TurboSketch).
package sketch

import (
	"fmt"
	"math"
	"math/bits"
)

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hash64 computes a seeded FNV-1a hash of an 8-byte value.
func hash64(seed uint64, v uint64) uint64 {
	h := uint64(fnvOffset64) ^ (seed * fnvPrime64)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// HashBytes computes a seeded FNV-1a hash over arbitrary bytes.
func HashBytes(seed uint64, b []byte) uint64 {
	h := uint64(fnvOffset64) ^ (seed * fnvPrime64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// CountMin is a count-min sketch over 64-bit keys: a rows × cols matrix
// of counters where each update increments one counter per row and each
// query returns the row minimum, an overestimate of the true count.
//
// The counter matrix is stored row-major on one contiguous slice; row r
// starts at offset r*cols. Estimates are bit-identical to the seed-era
// [][]uint64 layout (see ReferenceCountMin), the layout change only
// removes the per-row slice-header load and pointer chase from the
// per-packet path.
type CountMin struct {
	rows, cols int
	counts     []uint64 // row-major, len rows*cols
	// Updates counts Add calls since the last Reset.
	Updates uint64
}

// NewCountMin builds a sketch with the given geometry.
func NewCountMin(rows, cols int) *CountMin {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("sketch: invalid count-min geometry %dx%d", rows, cols))
	}
	return &CountMin{rows: rows, cols: cols, counts: make([]uint64, rows*cols)}
}

// NewCountMinForError sizes a sketch for additive error epsilon (as a
// fraction of the stream count) with failure probability delta, per
// Cormode–Muthukrishnan: cols = ceil(e/epsilon), rows = ceil(ln 1/delta).
func NewCountMinForError(epsilon, delta float64) *CountMin {
	rows, cols := geometryForError(epsilon, delta)
	return NewCountMin(rows, cols)
}

// geometryForError is the Cormode–Muthukrishnan sizing shared by the
// compatible and turbo constructors.
func geometryForError(epsilon, delta float64) (rows, cols int) {
	if epsilon <= 0 || epsilon >= 1 || delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("sketch: invalid epsilon=%v delta=%v", epsilon, delta))
	}
	cols = int(math.Ceil(math.E / epsilon))
	rows = int(math.Ceil(math.Log(1 / delta)))
	return rows, cols
}

// Add increments key's count by delta and returns the new estimate.
// Counters saturate at MaxUint64 instead of wrapping: a wrapped counter
// would silently become the row minimum and poison every estimate of
// every key sharing it.
func (cm *CountMin) Add(key uint64, delta uint64) uint64 {
	cm.Updates++
	est := uint64(math.MaxUint64)
	counts := cm.counts
	cols := uint64(cm.cols)
	base := 0
	for r := 0; r < cm.rows; r++ {
		c := hash64(uint64(r)+1, key) % cols
		i := base + int(c)
		v := counts[i] + delta
		if v < counts[i] {
			v = math.MaxUint64 // saturate, never wrap
		}
		counts[i] = v
		if v < est {
			est = v
		}
		base += cm.cols
	}
	return est
}

// Estimate returns the (over-)estimated count of key.
func (cm *CountMin) Estimate(key uint64) uint64 {
	est := uint64(math.MaxUint64)
	counts := cm.counts
	cols := uint64(cm.cols)
	base := 0
	for r := 0; r < cm.rows; r++ {
		c := hash64(uint64(r)+1, key) % cols
		if v := counts[base+int(c)]; v < est {
			est = v
		}
		base += cm.cols
	}
	return est
}

// Reset zeroes all counters, modeling Jaqen's periodic sketch reset.
func (cm *CountMin) Reset() {
	clear(cm.counts)
	cm.Updates = 0
}

// Words returns a copy of the counter matrix (row-major), for
// serialization — the count-min mirror of Bloom.Words, so sketch state
// rides the same snapshot container instead of being rebuilt on
// restore.
func (cm *CountMin) Words() []uint64 {
	out := make([]uint64, len(cm.counts))
	copy(out, cm.counts)
	return out
}

// SetWords overwrites the counter matrix from a serialized copy. The
// word count must match the sketch's geometry: a sketch restored into a
// differently-sized one would silently mis-hash every query.
func (cm *CountMin) SetWords(words []uint64, updates uint64) error {
	if len(words) != len(cm.counts) {
		return fmt.Errorf("sketch: count-min has %d words, snapshot has %d", len(cm.counts), len(words))
	}
	copy(cm.counts, words)
	cm.Updates = updates
	return nil
}

// Bloom is a fixed-size Bloom filter over 64-bit keys.
type Bloom struct {
	bits   []uint64
	nbits  uint64
	hashes int
	// Inserted counts Insert calls since the last Reset.
	Inserted uint64
}

// NewBloom builds a filter with nbits bits and k hash functions.
func NewBloom(nbits uint64, k int) *Bloom {
	if nbits == 0 || k <= 0 {
		panic(fmt.Sprintf("sketch: invalid bloom geometry bits=%d k=%d", nbits, k))
	}
	return &Bloom{
		bits:   make([]uint64, (nbits+63)/64),
		nbits:  nbits,
		hashes: k,
	}
}

// NewBloomForRate sizes a filter for n expected elements at target
// false-positive rate fp.
func NewBloomForRate(n int, fp float64) *Bloom {
	if n <= 0 || fp <= 0 || fp >= 1 {
		panic(fmt.Sprintf("sketch: invalid bloom sizing n=%d fp=%v", n, fp))
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(fp) / (math.Ln2 * math.Ln2)))
	if m == 0 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return NewBloom(m, k)
}

// Insert adds key to the filter.
func (b *Bloom) Insert(key uint64) {
	b.Inserted++
	bits := b.bits
	for i := 0; i < b.hashes; i++ {
		pos := hash64(uint64(i)+1, key) % b.nbits
		bits[pos/64] |= 1 << (pos % 64)
	}
}

// Contains reports whether key may have been inserted (false positives
// possible, false negatives impossible).
func (b *Bloom) Contains(key uint64) bool {
	bits := b.bits
	for i := 0; i < b.hashes; i++ {
		pos := hash64(uint64(i)+1, key) % b.nbits
		if bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Reset clears the filter.
func (b *Bloom) Reset() {
	clear(b.bits)
	b.Inserted = 0
}

// Words returns a copy of the filter's bit array, for serialization.
func (b *Bloom) Words() []uint64 {
	out := make([]uint64, len(b.bits))
	copy(out, b.bits)
	return out
}

// SetWords overwrites the filter's bit array from a serialized copy.
// The word count must match the filter's geometry: a filter restored
// into a differently-sized one would silently mis-hash every query.
func (b *Bloom) SetWords(words []uint64, inserted uint64) error {
	if len(words) != len(b.bits) {
		return fmt.Errorf("sketch: bloom has %d words, snapshot has %d", len(b.bits), len(words))
	}
	copy(b.bits, words)
	b.Inserted = inserted
	return nil
}

// FillRatio returns the fraction of set bits, a saturation diagnostic.
func (b *Bloom) FillRatio() float64 {
	set := 0
	for _, w := range b.bits {
		set += bits.OnesCount64(w)
	}
	return float64(set) / float64(b.nbits)
}
