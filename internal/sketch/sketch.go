// Package sketch provides the probabilistic data structures used by the
// reproduced systems: a count-min sketch (Jaqen's heavy-hitter
// detector) and a Bloom filter (ACC-Turbo's nominal-feature admission
// lists and Jaqen's per-window key tracking).
//
// Hashing uses FNV-1a with per-row seeds, which is fast, allocation
// free, and deterministic across runs.
package sketch

import (
	"fmt"
	"math"
)

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hash64 computes a seeded FNV-1a hash of an 8-byte value.
func hash64(seed uint64, v uint64) uint64 {
	h := uint64(fnvOffset64) ^ (seed * fnvPrime64)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// HashBytes computes a seeded FNV-1a hash over arbitrary bytes.
func HashBytes(seed uint64, b []byte) uint64 {
	h := uint64(fnvOffset64) ^ (seed * fnvPrime64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// CountMin is a count-min sketch over 64-bit keys: a rows × cols matrix
// of counters where each update increments one counter per row and each
// query returns the row minimum, an overestimate of the true count.
type CountMin struct {
	rows, cols int
	counts     [][]uint64
	// Updates counts Add calls since the last Reset.
	Updates uint64
}

// NewCountMin builds a sketch with the given geometry.
func NewCountMin(rows, cols int) *CountMin {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("sketch: invalid count-min geometry %dx%d", rows, cols))
	}
	cm := &CountMin{rows: rows, cols: cols, counts: make([][]uint64, rows)}
	for i := range cm.counts {
		cm.counts[i] = make([]uint64, cols)
	}
	return cm
}

// NewCountMinForError sizes a sketch for additive error epsilon (as a
// fraction of the stream count) with failure probability delta, per
// Cormode–Muthukrishnan: cols = ceil(e/epsilon), rows = ceil(ln 1/delta).
func NewCountMinForError(epsilon, delta float64) *CountMin {
	if epsilon <= 0 || epsilon >= 1 || delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("sketch: invalid epsilon=%v delta=%v", epsilon, delta))
	}
	cols := int(math.Ceil(math.E / epsilon))
	rows := int(math.Ceil(math.Log(1 / delta)))
	return NewCountMin(rows, cols)
}

// Add increments key's count by delta and returns the new estimate.
func (cm *CountMin) Add(key uint64, delta uint64) uint64 {
	cm.Updates++
	est := uint64(math.MaxUint64)
	for r := 0; r < cm.rows; r++ {
		c := hash64(uint64(r)+1, key) % uint64(cm.cols)
		cm.counts[r][c] += delta
		if cm.counts[r][c] < est {
			est = cm.counts[r][c]
		}
	}
	return est
}

// Estimate returns the (over-)estimated count of key.
func (cm *CountMin) Estimate(key uint64) uint64 {
	est := uint64(math.MaxUint64)
	for r := 0; r < cm.rows; r++ {
		c := hash64(uint64(r)+1, key) % uint64(cm.cols)
		if cm.counts[r][c] < est {
			est = cm.counts[r][c]
		}
	}
	return est
}

// Reset zeroes all counters, modeling Jaqen's periodic sketch reset.
func (cm *CountMin) Reset() {
	for r := range cm.counts {
		row := cm.counts[r]
		for i := range row {
			row[i] = 0
		}
	}
	cm.Updates = 0
}

// Bloom is a fixed-size Bloom filter over 64-bit keys.
type Bloom struct {
	bits   []uint64
	nbits  uint64
	hashes int
	// Inserted counts Insert calls since the last Reset.
	Inserted uint64
}

// NewBloom builds a filter with nbits bits and k hash functions.
func NewBloom(nbits uint64, k int) *Bloom {
	if nbits == 0 || k <= 0 {
		panic(fmt.Sprintf("sketch: invalid bloom geometry bits=%d k=%d", nbits, k))
	}
	return &Bloom{
		bits:   make([]uint64, (nbits+63)/64),
		nbits:  nbits,
		hashes: k,
	}
}

// NewBloomForRate sizes a filter for n expected elements at target
// false-positive rate fp.
func NewBloomForRate(n int, fp float64) *Bloom {
	if n <= 0 || fp <= 0 || fp >= 1 {
		panic(fmt.Sprintf("sketch: invalid bloom sizing n=%d fp=%v", n, fp))
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(fp) / (math.Ln2 * math.Ln2)))
	if m == 0 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return NewBloom(m, k)
}

// Insert adds key to the filter.
func (b *Bloom) Insert(key uint64) {
	b.Inserted++
	for i := 0; i < b.hashes; i++ {
		pos := hash64(uint64(i)+1, key) % b.nbits
		b.bits[pos/64] |= 1 << (pos % 64)
	}
}

// Contains reports whether key may have been inserted (false positives
// possible, false negatives impossible).
func (b *Bloom) Contains(key uint64) bool {
	for i := 0; i < b.hashes; i++ {
		pos := hash64(uint64(i)+1, key) % b.nbits
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Reset clears the filter.
func (b *Bloom) Reset() {
	for i := range b.bits {
		b.bits[i] = 0
	}
	b.Inserted = 0
}

// Words returns a copy of the filter's bit array, for serialization.
func (b *Bloom) Words() []uint64 {
	out := make([]uint64, len(b.bits))
	copy(out, b.bits)
	return out
}

// SetWords overwrites the filter's bit array from a serialized copy.
// The word count must match the filter's geometry: a filter restored
// into a differently-sized one would silently mis-hash every query.
func (b *Bloom) SetWords(words []uint64, inserted uint64) error {
	if len(words) != len(b.bits) {
		return fmt.Errorf("sketch: bloom has %d words, snapshot has %d", len(b.bits), len(words))
	}
	copy(b.bits, words)
	b.Inserted = inserted
	return nil
}

// FillRatio returns the fraction of set bits, a saturation diagnostic.
func (b *Bloom) FillRatio() float64 {
	set := 0
	for _, w := range b.bits {
		for ; w != 0; w &= w - 1 {
			set++
		}
	}
	return float64(set) / float64(b.nbits)
}
