package sketch

import (
	"fmt"
	"math"
)

// TurboCountMin is the wire-speed count-min variant. It trades the
// golden-pinned FNV/modulo placement of CountMin for:
//
//   - One 64-bit mix (splitmix64 finalizer) per key instead of one
//     8-iteration FNV loop per row, with the per-row hashes derived
//     Kirsch–Mitzenmacher style as h1 + r*h2.
//   - Power-of-two columns indexed with a mask instead of `%`.
//   - A cache-line-blocked layout: rows are grouped 8 to a block, each
//     block derives ONE line index per key, and the ≤8 rows of the
//     block land in distinct lanes of that 64-byte line (lane bits come
//     from the hash's upper bits, disjoint from the line bits). An
//     update therefore touches ceil(rows/8) cache lines instead of
//     rows — one line at the Jaqen default geometry.
//   - Optional conservative update: only counters at the key's current
//     minimum are raised, which provably keeps estimates ≥ truth while
//     never exceeding the vanilla estimate (differentially tested).
//   - AddBatch/EstimateBatch, which hash a chunk ahead of the update
//     loop and software-prefetch each key's first line, overlapping
//     the DRAM misses with the neighbours' hash work.
//
// Estimates are NOT comparable bit-for-bit with CountMin; callers opt
// in (jaqen.Config.TurboSketch) and goldens that cover them are
// regenerated, never silently reinterpreted. The blocked layout trades
// some independence for locality: two keys collide on a whole block
// only if they share its line (probability 8/cols) AND their per-row
// lanes land on occupied counters (~(1/2)^rows for a full block-depth
// collision, since a depth-r key occupies up to r of the line's 8
// lanes). That is far likelier than classic count-min's (1/cols)^rows,
// so turbo sketches buy back accuracy with width (cols is cheap — the
// whole line is touched anyway) and with conservative update; the
// est ≥ truth guarantee is unaffected. TopK additionally caps heap
// admission so a full-block collision cannot freeze a phantom into the
// ranking.
type TurboCountMin struct {
	rows, cols   int  // cols is a power of two, ≥ 8
	conservative bool // conservative update (increment-min-only)
	lineMask     uint64
	counts       []uint64 // ceil(rows/8) blocks × cols counters
	// Updates counts Add/AddBatch-ed keys since the last Reset.
	Updates uint64
	// pf keeps the batch loops' prefetch loads alive (see AddBatch).
	pf uint64
}

// maxTurboRows bounds the depth so per-key index scratch fits a fixed
// stack array. ln(1/delta) sizing hits 64 rows at delta = 1e-28; no
// real configuration comes close.
const maxTurboRows = 64

// NewTurboCountMin builds a turbo sketch with ~rows × cols geometry:
// cols is rounded up to a power of two (minimum 8, one cache line) and
// rows is capped at 64. conservative selects conservative update.
func NewTurboCountMin(rows, cols int, conservative bool) *TurboCountMin {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("sketch: invalid turbo count-min geometry %dx%d", rows, cols))
	}
	if rows > maxTurboRows {
		panic(fmt.Sprintf("sketch: turbo count-min depth %d exceeds %d", rows, maxTurboRows))
	}
	w := 8
	for w < cols {
		w <<= 1
	}
	blocks := (rows + 7) / 8
	return &TurboCountMin{
		rows:         rows,
		cols:         w,
		conservative: conservative,
		lineMask:     uint64(w/8 - 1),
		counts:       make([]uint64, blocks*w),
	}
}

// NewTurboCountMinForError sizes a turbo sketch for additive error
// epsilon with failure probability delta (Cormode–Muthukrishnan); the
// power-of-two round-up only widens the sketch, so the bound still
// holds.
func NewTurboCountMinForError(epsilon, delta float64, conservative bool) *TurboCountMin {
	rows, cols := geometryForError(epsilon, delta)
	if rows > maxTurboRows {
		rows = maxTurboRows
	}
	return NewTurboCountMin(rows, cols, conservative)
}

// Rows and Cols report the effective geometry (cols after power-of-two
// round-up).
func (t *TurboCountMin) Rows() int { return t.rows }
func (t *TurboCountMin) Cols() int { return t.cols }

// Conservative reports whether conservative update is enabled.
func (t *TurboCountMin) Conservative() bool { return t.conservative }

// mix64 is the splitmix64 finalizer: one multiply-xorshift cascade
// giving 64 well-mixed bits from a 64-bit key.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashPair derives the Kirsch–Mitzenmacher base hashes for a key: h2
// is forced odd so successive h1 + g*h2 values cycle through all
// residues.
func hashPair(key uint64) (h1, h2 uint64) {
	h1 = mix64(key)
	h2 = mix64(h1) | 1
	return h1, h2
}

// index returns the flat counter index for row r given the row's block
// hash hg: the low bits pick the block's cache line, three disjoint
// high bits pick the row's lane within it. The hot paths inline this
// math per block (see line); index itself serves tests and non-hot
// callers as the layout's definition.
func (t *TurboCountMin) index(r int, hg uint64) int {
	block := r >> 3
	line := hg & t.lineMask
	lane := (hg >> (40 + 3*uint(r&7))) & 7
	return block*t.cols + int(line*8+lane)
}

// line returns block b's cache line for block hash hg as an 8-counter
// array view. The fixed-size array conversion is what lets the hot
// loops index lanes (always masked &7) with no bounds check.
func (t *TurboCountMin) line(counts []uint64, base int, hg uint64) *[8]uint64 {
	i := base + int(hg&t.lineMask)*8
	return (*[8]uint64)(counts[i : i+8])
}

// blockHash returns block b's hash. Block 0 uses h1 alone — the common
// rows ≤ 8 case never pays for the second mix (see Add).
func blockHash(h1, h2 uint64, b int) uint64 {
	return h1 + uint64(b)*h2
}

// Add increments key's count by delta and returns the new estimate.
// Counters saturate at MaxUint64, matching CountMin. With conservative
// update only counters at the key's current minimum move, so the
// estimate grows to exactly min+delta instead of inflating every row.
func (t *TurboCountMin) Add(key uint64, delta uint64) uint64 {
	t.Updates++
	h1 := mix64(key)
	var h2 uint64
	if t.rows > 8 {
		h2 = mix64(h1) | 1 // only multi-block sketches need the KM step
	}
	if t.conservative {
		return t.addCU(h1, h2, delta)
	}
	return t.addVanilla(h1, h2, delta)
}

// addVanilla is the single-pass non-conservative update: per block,
// one line load, then saturating adds on the block's lanes.
func (t *TurboCountMin) addVanilla(h1, h2, delta uint64) uint64 {
	counts := t.counts
	out := uint64(math.MaxUint64)
	rows, base, b := t.rows, 0, 0
	for rows > 0 {
		hg := blockHash(h1, h2, b)
		tail := t.line(counts, base, hg)
		n := rows
		if n > 8 {
			n = 8
		}
		shift := uint(40)
		for r := 0; r < n; r++ {
			p := &tail[(hg>>shift)&7]
			shift += 3
			v := *p + delta
			if v < *p {
				v = math.MaxUint64 // saturate, never wrap
			}
			*p = v
			if v < out {
				out = v
			}
		}
		rows -= n
		base += t.cols
		b++
	}
	return out
}

// addCU is the conservative update: pass 1 finds the key's minimum
// across all rows, pass 2 raises only counters below min+delta. Both
// passes touch the same lines, so the second is cache-resident. The
// raise is written load-select-store (not a conditional store) so the
// compiler emits a branchless conditional move — whether a counter
// moves is data-dependent and would mispredict half the time.
func (t *TurboCountMin) addCU(h1, h2, delta uint64) uint64 {
	counts := t.counts
	if t.rows <= 8 {
		// Single block: one line, one hash — find the min and raise in
		// place without recomputing either.
		hg := h1
		tail := t.line(counts, 0, hg)
		est := uint64(math.MaxUint64)
		shift := uint(40)
		for r := 0; r < t.rows; r++ {
			if v := tail[(hg>>shift)&7]; v < est {
				est = v
			}
			shift += 3
		}
		target := est + delta
		if target < est {
			target = math.MaxUint64 // saturate, never wrap
		}
		shift = 40
		for r := 0; r < t.rows; r++ {
			p := &tail[(hg>>shift)&7]
			shift += 3
			v := *p
			if v < target {
				v = target
			}
			*p = v
		}
		return target
	}
	est := t.estimateHashed(h1, h2)
	target := est + delta
	if target < est {
		target = math.MaxUint64 // saturate, never wrap
	}
	rows, base, b := t.rows, 0, 0
	for rows > 0 {
		hg := blockHash(h1, h2, b)
		tail := t.line(counts, base, hg)
		n := rows
		if n > 8 {
			n = 8
		}
		shift := uint(40)
		for r := 0; r < n; r++ {
			p := &tail[(hg>>shift)&7]
			shift += 3
			v := *p
			if v < target {
				v = target
			}
			*p = v
		}
		rows -= n
		base += t.cols
		b++
	}
	return target
}

// estimateHashed is the min-of-rows query after hashing.
func (t *TurboCountMin) estimateHashed(h1, h2 uint64) uint64 {
	counts := t.counts
	est := uint64(math.MaxUint64)
	rows, base, b := t.rows, 0, 0
	for rows > 0 {
		hg := blockHash(h1, h2, b)
		tail := t.line(counts, base, hg)
		n := rows
		if n > 8 {
			n = 8
		}
		shift := uint(40)
		for r := 0; r < n; r++ {
			if v := tail[(hg>>shift)&7]; v < est {
				est = v
			}
			shift += 3
		}
		rows -= n
		base += t.cols
		b++
	}
	return est
}

// Estimate returns the (over-)estimated count of key.
func (t *TurboCountMin) Estimate(key uint64) uint64 {
	h1 := mix64(key)
	var h2 uint64
	if t.rows > 8 {
		h2 = mix64(h1) | 1
	}
	return t.estimateHashed(h1, h2)
}

// batchChunk is the staging width of the batch paths: big enough that
// a chunk's line touches overlap plenty of hash work, small enough
// that the scratch arrays live on the stack and the touched lines
// (64 × 64 B = 4 KiB) stay L1-resident until the update pass.
const batchChunk = 64

// hashChunk hashes keys[off:off+n] into h1s (and h2s when the sketch
// is deeper than one block) while touching each key's first cache line
// — the software-prefetch idiom: the line loads issue behind the
// neighbours' hash work and are warm (L1 for a 64-key chunk) by the
// time the update pass needs them. Returns the prefetch sink.
func (t *TurboCountMin) hashChunk(keys []uint64, off, n int, h1s, h2s *[batchChunk]uint64) uint64 {
	counts := t.counts
	sink := uint64(0)
	multi := t.rows > 8
	for i := 0; i < n; i++ {
		h1 := mix64(keys[off+i])
		h1s[i] = h1
		if multi {
			h2s[i] = mix64(h1) | 1
		}
		sink += counts[(h1&t.lineMask)*8]
	}
	return sink
}

// AddBatch adds delta for every key, the amortized alternative to
// calling Add in a loop: each chunk of 64 keys is hashed up front with
// every key's first cache line touched ahead of its update (see
// hashChunk), and the update loop runs with the per-call overhead of
// Add (hash, mode branch, Updates store) hoisted out. When ests is
// non-nil it must be at least len(keys) long; entry i receives key i's
// new estimate. Allocation free.
func (t *TurboCountMin) AddBatch(keys []uint64, delta uint64, ests []uint64) {
	t.Updates += uint64(len(keys))
	var h1s, h2s [batchChunk]uint64
	counts := t.counts
	sink := uint64(0)
	conservative := t.conservative
	for off := 0; off < len(keys); off += batchChunk {
		n := len(keys) - off
		if n > batchChunk {
			n = batchChunk
		}
		sink += t.hashChunk(keys, off, n, &h1s, &h2s)
		for i := 0; i < n; i++ {
			var est uint64
			if conservative {
				est = t.addCU(h1s[i], h2s[i], delta)
			} else if t.rows <= 8 {
				// Inlined single-block vanilla update, the Jaqen-default
				// fast path.
				hg := h1s[i]
				tail := t.line(counts, 0, hg)
				est = math.MaxUint64
				shift := uint(40)
				for r := 0; r < t.rows; r++ {
					p := &tail[(hg>>shift)&7]
					shift += 3
					v := *p + delta
					if v < *p {
						v = math.MaxUint64
					}
					*p = v
					if v < est {
						est = v
					}
				}
			} else {
				est = t.addVanilla(h1s[i], h2s[i], delta)
			}
			if ests != nil {
				ests[off+i] = est
			}
		}
	}
	t.pf += sink // keep the prefetch loads alive
}

// EstimateBatch fills out[i] with the estimate of keys[i], staging
// hashes and prefetching lines the same way AddBatch does. out must be
// at least len(keys) long. Allocation free.
func (t *TurboCountMin) EstimateBatch(keys []uint64, out []uint64) {
	var h1s, h2s [batchChunk]uint64
	counts := t.counts
	sink := uint64(0)
	for off := 0; off < len(keys); off += batchChunk {
		n := len(keys) - off
		if n > batchChunk {
			n = batchChunk
		}
		sink += t.hashChunk(keys, off, n, &h1s, &h2s)
		for i := 0; i < n; i++ {
			if t.rows <= 8 {
				hg := h1s[i]
				tail := t.line(counts, 0, hg)
				est := uint64(math.MaxUint64)
				shift := uint(40)
				for r := 0; r < t.rows; r++ {
					if v := tail[(hg>>shift)&7]; v < est {
						est = v
					}
					shift += 3
				}
				out[off+i] = est
			} else {
				out[off+i] = t.estimateHashed(h1s[i], h2s[i])
			}
		}
	}
	t.pf += sink
}

// Reset zeroes all counters.
func (t *TurboCountMin) Reset() {
	clear(t.counts)
	t.Updates = 0
}

// Words returns a copy of the counter array (block-major), for
// serialization.
func (t *TurboCountMin) Words() []uint64 {
	out := make([]uint64, len(t.counts))
	copy(out, t.counts)
	return out
}

// SetWords overwrites the counter array from a serialized copy; the
// word count must match the sketch's geometry.
func (t *TurboCountMin) SetWords(words []uint64, updates uint64) error {
	if len(words) != len(t.counts) {
		return fmt.Errorf("sketch: turbo count-min has %d words, snapshot has %d", len(t.counts), len(words))
	}
	copy(t.counts, words)
	t.Updates = updates
	return nil
}

// FootprintBytes reports the counter memory, a sizing diagnostic: the
// blocked layout holds ceil(rows/8)*cols counters, not rows*cols.
func (t *TurboCountMin) FootprintBytes() int { return len(t.counts) * 8 }
