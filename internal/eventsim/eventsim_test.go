package eventsim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if Second != 1e9 {
		t.Fatalf("Second = %d", Second)
	}
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", got)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v", got)
	}
	if got := FromDuration(3 * time.Millisecond); got != 3*Millisecond {
		t.Errorf("FromDuration = %v", got)
	}
	if (1500 * Millisecond).Duration() != 1500*time.Millisecond {
		t.Errorf("Duration conversion wrong")
	}
	if (1 * Second).String() != "1.000000s" {
		t.Errorf("String = %q", (1 * Second).String())
	}
}

func TestEventsFireInOrder(t *testing.T) {
	e := New()
	var got []Time
	e.At(30, func(now Time) { got = append(got, now) })
	e.At(10, func(now Time) { got = append(got, now) })
	e.At(20, func(now Time) { got = append(got, now) })
	e.Run()
	want := []Time{10, 20, 30}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("fired at %v, want %v", got, want)
	}
	if e.Now() != 30 {
		t.Errorf("Now = %v after run", e.Now())
	}
	if e.Processed != 3 {
		t.Errorf("Processed = %d", e.Processed)
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func(Time) { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of order: %v", got)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	e := New()
	var got []Time
	e.After(10, func(now Time) {
		got = append(got, now)
		e.After(5, func(now Time) { got = append(got, now) })
	})
	e.Run()
	if len(got) != 2 || got[0] != 10 || got[1] != 15 {
		t.Fatalf("got %v", got)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	fired := 0
	e.At(10, func(Time) { fired++ })
	e.At(20, func(Time) { fired++ })
	e.At(30, func(Time) { fired++ })
	e.RunUntil(20)
	if fired != 2 {
		t.Fatalf("fired %d events, want 2", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %v, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	e.RunUntil(25) // no events in window; clock still advances
	if e.Now() != 25 || fired != 2 {
		t.Fatalf("Now = %v fired = %d", e.Now(), fired)
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	h := e.At(10, func(Time) { fired = true })
	e.Cancel(h)
	e.Cancel(h) // double-cancel is a no-op
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Cancel after firing is a no-op.
	h2 := e.At(20, func(Time) {})
	e.Run()
	e.Cancel(h2)
}

func TestEvery(t *testing.T) {
	e := New()
	var at []Time
	stop := e.Every(10, func(now Time) {
		at = append(at, now)
		if len(at) == 3 {
			// stop from inside the callback
		}
	})
	e.RunUntil(35)
	stop()
	e.RunUntil(100)
	if len(at) != 3 || at[0] != 10 || at[1] != 20 || at[2] != 30 {
		t.Fatalf("ticks at %v", at)
	}
}

func TestEveryStopInsideCallback(t *testing.T) {
	e := New()
	n := 0
	var stop func()
	stop = e.Every(10, func(now Time) {
		n++
		if n == 2 {
			stop()
		}
	})
	e.Run()
	if n != 2 {
		t.Fatalf("ticked %d times, want 2", n)
	}
}

func TestStep(t *testing.T) {
	e := New()
	e.At(5, func(Time) {})
	e.At(7, func(Time) {})
	if !e.Step() || e.Now() != 5 {
		t.Fatalf("first step: now=%v", e.Now())
	}
	if !e.Step() || e.Now() != 7 {
		t.Fatalf("second step: now=%v", e.Now())
	}
	if e.Step() {
		t.Fatal("step on empty queue returned true")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(10, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.At(5, func(Time) {})
}

func TestNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.After(-1, func(Time) {})
}

func TestNilCallbackPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.At(1, nil)
}

func TestBadIntervalPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Every(0, func(Time) {})
}

// Property: for any batch of random timestamps, events fire in
// non-decreasing time order and the engine visits all of them.
func TestQuickOrdering(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw)%100 + 1
		e := New()
		times := make([]Time, n)
		var fired []Time
		for i := range times {
			times[i] = Time(r.Int63n(1_000_000))
			tt := times[i]
			e.At(tt, func(now Time) { fired = append(fired, now) })
		}
		e.Run()
		if len(fired) != n {
			return false
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		for i := range fired {
			if fired[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset leaves exactly the others firing.
func TestQuickCancelSubset(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := New()
		n := r.Intn(50) + 2
		fired := make([]bool, n)
		handles := make([]Handle, n)
		for i := 0; i < n; i++ {
			i := i
			handles[i] = e.At(Time(r.Int63n(1000)), func(Time) { fired[i] = true })
		}
		cancelled := make([]bool, n)
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				cancelled[i] = true
				e.Cancel(handles[i])
			}
		}
		e.Run()
		for i := 0; i < n; i++ {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		for j := 0; j < 1000; j++ {
			e.At(Time(j%97), func(Time) {})
		}
		e.Run()
	}
}
