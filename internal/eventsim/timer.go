package eventsim

// Timer is a re-armable one-shot timer delivering a typed value — the
// typed veneer over ScheduleArg for components that reschedule
// themselves forever (port transmitters, pacing sources, retransmit
// timers). Construction allocates once; every Arm/fire cycle after
// that is allocation-free, because the engine always receives the same
// package-level trampoline and the same *Timer argument.
//
// A Timer is single-owner and engine-affine like the engine itself: do
// not share one across goroutines.
type Timer[T any] struct {
	eng *Engine
	fn  func(now Time, v T)
	v   T
	h   Handle
	// tramp is timerFire[T] bound once: materializing a generic
	// function value allocates its dictionary closure, so Arm must not
	// do it per call.
	tramp ArgFunc
}

// NewTimer builds a timer that calls fn(now, v) when it fires. The
// value is fixed at construction; use the receiver pattern (v = the
// component being timed) rather than re-creating timers.
func NewTimer[T any](eng *Engine, fn func(now Time, v T), v T) *Timer[T] {
	if eng == nil {
		panic("eventsim: nil engine")
	}
	if fn == nil {
		panic("eventsim: nil timer callback")
	}
	t := &Timer[T]{eng: eng, fn: fn, v: v}
	t.tramp = timerFire[T]
	return t
}

// timerFire is the shared trampoline: the scheduled arg is the Timer
// itself, so firing needs no per-arm closure.
func timerFire[T any](now Time, arg any) {
	t := arg.(*Timer[T])
	t.h = Handle{}
	t.fn(now, t.v)
}

// Arm schedules the timer for absolute time at, replacing any pending
// occurrence.
func (t *Timer[T]) Arm(at Time) {
	t.Stop()
	t.h = t.eng.ScheduleArg(at, t.tramp, t)
}

// ArmAfter schedules the timer delay nanoseconds from now, replacing
// any pending occurrence.
func (t *Timer[T]) ArmAfter(delay Time) {
	t.Stop()
	t.h = t.eng.AfterArg(delay, t.tramp, t)
}

// Stop cancels the pending occurrence, if any.
func (t *Timer[T]) Stop() {
	if t.h.gen != 0 {
		t.eng.Cancel(t.h)
		t.h = Handle{}
	}
}

// Armed reports whether an occurrence is pending.
func (t *Timer[T]) Armed() bool { return t.h.gen != 0 }
