// Package eventsim provides a deterministic discrete-event simulation
// engine: a virtual nanosecond clock and a priority queue of scheduled
// callbacks.
//
// The engine is single-threaded. Events scheduled for the same instant
// fire in scheduling order (a monotonically increasing sequence number
// breaks ties), which makes every simulation exactly reproducible.
//
// The queue is built for the per-packet hot path of the network
// simulator: events live in a value-typed 4-ary min-heap (no per-event
// box, no container/heap interface calls), event state is kept in a
// slot arena recycled through a free list, and Handles are
// generation-stamped (slot, gen) pairs so cancelling a stale handle
// after its slot was reused is always a safe no-op. Scheduling through
// ScheduleArg/AfterArg with a package-level function and a pointer
// argument is allocation-free in steady state; the closure-taking
// At/After remain for cold paths.
package eventsim

import (
	"fmt"
	"math"
	"time"
)

// Time is a virtual time in nanoseconds since the start of the
// simulation.
type Time int64

// MaxTime is the largest representable virtual time.
const MaxTime = Time(math.MaxInt64)

// Common time unit helpers.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts the virtual time to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// FromDuration converts a time.Duration into a virtual Time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// FromSeconds converts seconds into a virtual Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// String formats the time in seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// ArgFunc is a scheduled callback receiving the argument it was
// scheduled with. Using a package-level ArgFunc plus a pointer-typed
// argument schedules without allocating a closure.
type ArgFunc func(now Time, arg any)

// heapEnt is one entry of the event queue: the firing key plus the
// index of the slot holding the callback. Entries are moved by value
// during sifts; the slot arena never moves.
type heapEnt struct {
	at   Time
	seq  uint64
	slot int32
}

// eslot holds one scheduled event's callback state. Slots are recycled
// through the engine's free list; gen distinguishes incarnations so a
// stale Handle can never touch a successor event.
type eslot struct {
	gen     uint32
	heapIdx int32 // index into Engine.heap; -1 when not queued
	fn      func(now Time)
	argFn   ArgFunc
	arg     any
}

// Handle refers to a scheduled event and allows cancellation. The zero
// Handle refers to no event; cancelling it is a no-op. Handles are
// generation-stamped: once the event fires or is cancelled, the handle
// goes stale and stays inert even after the engine reuses its slot.
type Handle struct {
	slot int32
	gen  uint32
}

// Engine is a discrete-event simulator instance.
type Engine struct {
	now   Time
	seq   uint64
	heap  []heapEnt
	slots []eslot
	free  []int32
	// Processed counts events executed since construction.
	Processed uint64
}

// New returns an engine with the clock at zero and no pending events.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return len(e.heap) }

func lessEnt(a, b heapEnt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// siftUp restores the heap property upward from index i, moving the
// displaced entry as a hole to halve the writes of swap-based sifting.
func (e *Engine) siftUp(i int) {
	ent := e.heap[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !lessEnt(ent, e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		e.slots[e.heap[i].slot].heapIdx = int32(i)
		i = p
	}
	e.heap[i] = ent
	e.slots[ent.slot].heapIdx = int32(i)
}

// siftDown restores the heap property downward from index i.
func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	ent := e.heap[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if lessEnt(e.heap[j], e.heap[best]) {
				best = j
			}
		}
		if !lessEnt(e.heap[best], ent) {
			break
		}
		e.heap[i] = e.heap[best]
		e.slots[e.heap[i].slot].heapIdx = int32(i)
		i = best
	}
	e.heap[i] = ent
	e.slots[ent.slot].heapIdx = int32(i)
}

// heapRemove deletes the entry at heap index i.
func (e *Engine) heapRemove(i int) {
	n := len(e.heap) - 1
	if i != n {
		e.heap[i] = e.heap[n]
		e.slots[e.heap[i].slot].heapIdx = int32(i)
	}
	e.heap = e.heap[:n]
	if i < n {
		e.siftDown(i)
		e.siftUp(i)
	}
}

// popRoot removes and returns the earliest entry.
func (e *Engine) popRoot() heapEnt {
	root := e.heap[0]
	n := len(e.heap) - 1
	if n > 0 {
		e.heap[0] = e.heap[n]
		e.slots[e.heap[0].slot].heapIdx = 0
	}
	e.heap = e.heap[:n]
	if n > 1 {
		e.siftDown(0)
	}
	return root
}

// allocSlot returns a free slot index, growing the arena when the free
// list is empty.
func (e *Engine) allocSlot() int32 {
	if n := len(e.free); n > 0 {
		si := e.free[n-1]
		e.free = e.free[:n-1]
		return si
	}
	e.slots = append(e.slots, eslot{gen: 1, heapIdx: -1})
	return int32(len(e.slots) - 1)
}

// releaseSlot retires a fired or cancelled event's slot: the generation
// advances (skipping 0, which marks the zero Handle), callback state is
// cleared so the arena retains nothing, and the slot rejoins the free
// list.
func (e *Engine) releaseSlot(si int32) {
	s := &e.slots[si]
	s.gen++
	if s.gen == 0 {
		s.gen = 1
	}
	s.heapIdx = -1
	s.fn = nil
	s.argFn = nil
	s.arg = nil
	e.free = append(e.free, si)
}

// schedule inserts an event. Exactly one of fn/argFn is non-nil.
func (e *Engine) schedule(at Time, fn func(now Time), argFn ArgFunc, arg any) Handle {
	if at < e.now {
		panic(fmt.Sprintf("eventsim: scheduling at %v before now %v", at, e.now))
	}
	si := e.allocSlot()
	s := &e.slots[si]
	s.fn = fn
	s.argFn = argFn
	s.arg = arg
	gen := s.gen
	e.heap = append(e.heap, heapEnt{at: at, seq: e.seq, slot: si})
	e.seq++
	e.siftUp(len(e.heap) - 1)
	return Handle{slot: si, gen: gen}
}

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past (before Now) panics: it would silently corrupt causality.
func (e *Engine) At(at Time, fn func(now Time)) Handle {
	if fn == nil {
		panic("eventsim: nil event callback")
	}
	return e.schedule(at, fn, nil, nil)
}

// After schedules fn to run delay nanoseconds from now.
func (e *Engine) After(delay Time, fn func(now Time)) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// ScheduleArg schedules fn(at, arg) at absolute virtual time at. With a
// package-level fn and a pointer-shaped arg the call is allocation-free
// — the per-packet alternative to the closure-capturing At.
func (e *Engine) ScheduleArg(at Time, fn ArgFunc, arg any) Handle {
	if fn == nil {
		panic("eventsim: nil event callback")
	}
	return e.schedule(at, nil, fn, arg)
}

// AfterArg schedules fn(now, arg) delay nanoseconds from now. See
// ScheduleArg.
func (e *Engine) AfterArg(delay Time, fn ArgFunc, arg any) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", delay))
	}
	return e.ScheduleArg(e.now+delay, fn, arg)
}

// Cancel removes a scheduled event. Cancelling an already-fired,
// already-cancelled, or zero handle is a no-op — the generation stamp
// keeps a stale handle from ever touching the slot's next occupant.
func (e *Engine) Cancel(h Handle) {
	if h.gen == 0 || int(h.slot) >= len(e.slots) {
		return
	}
	s := &e.slots[h.slot]
	if s.gen != h.gen || s.heapIdx < 0 {
		return
	}
	e.heapRemove(int(s.heapIdx))
	e.releaseSlot(h.slot)
}

// ticker carries the state of an Every loop so each tick reschedules
// through AfterArg without a fresh closure.
type ticker struct {
	e        *Engine
	interval Time
	fn       func(now Time)
	stopped  bool
}

func tickerFire(now Time, arg any) {
	t := arg.(*ticker)
	if t.stopped {
		return
	}
	t.fn(now)
	if !t.stopped {
		t.e.AfterArg(t.interval, tickerFire, t)
	}
}

// Every schedules fn at now+interval, now+2*interval, ... until the
// engine stops or the returned stop function is called. fn runs before
// the next occurrence is scheduled, so it may consult Pending() freely.
func (e *Engine) Every(interval Time, fn func(now Time)) (stop func()) {
	if interval <= 0 {
		panic(fmt.Sprintf("eventsim: non-positive interval %v", interval))
	}
	if fn == nil {
		panic("eventsim: nil event callback")
	}
	t := &ticker{e: e, interval: interval, fn: fn}
	e.AfterArg(interval, tickerFire, t)
	return func() { t.stopped = true }
}

// Run executes events in timestamp order until the queue drains.
func (e *Engine) Run() {
	e.RunUntil(MaxTime)
}

// fire pops slot state for ent, retires the slot, and runs the
// callback. The slot is released before the callback runs so the
// callback may freely schedule (and likely reuse the slot).
func (e *Engine) fire(ent heapEnt) {
	s := &e.slots[ent.slot]
	fn, argFn, arg := s.fn, s.argFn, s.arg
	e.releaseSlot(ent.slot)
	e.now = ent.at
	e.Processed++
	if argFn != nil {
		argFn(ent.at, arg)
	} else {
		fn(ent.at)
	}
}

// RunUntil executes events with timestamps <= deadline, then advances
// the clock to deadline (if any events remain they stay queued).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.heap) > 0 && e.heap[0].at <= deadline {
		e.fire(e.popRoot())
	}
	if deadline != MaxTime && deadline > e.now {
		e.now = deadline
	}
}

// Step executes the single earliest pending event and reports whether
// one existed.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	e.fire(e.popRoot())
	return true
}
