// Package eventsim provides a deterministic discrete-event simulation
// engine: a virtual nanosecond clock and a priority queue of scheduled
// callbacks.
//
// The engine is single-threaded. Events scheduled for the same instant
// fire in scheduling order (a monotonically increasing sequence number
// breaks ties), which makes every simulation exactly reproducible.
package eventsim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a virtual time in nanoseconds since the start of the
// simulation.
type Time int64

// MaxTime is the largest representable virtual time.
const MaxTime = Time(math.MaxInt64)

// Common time unit helpers.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts the virtual time to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// FromDuration converts a time.Duration into a virtual Time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// FromSeconds converts seconds into a virtual Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// String formats the time in seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Event is a scheduled callback.
type event struct {
	at    Time
	seq   uint64
	fn    func(now Time)
	index int // heap index; -1 when removed
}

// Handle refers to a scheduled event and allows cancellation.
type Handle struct{ ev *event }

// Cancelled reports whether the handle's event was cancelled or already
// fired.
func (h Handle) done() bool { return h.ev == nil || h.ev.index < 0 }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator instance.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	// Processed counts events executed since construction.
	Processed uint64
}

// New returns an engine with the clock at zero and no pending events.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past (before Now) panics: it would silently corrupt causality.
func (e *Engine) At(at Time, fn func(now Time)) Handle {
	if at < e.now {
		panic(fmt.Sprintf("eventsim: scheduling at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("eventsim: nil event callback")
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return Handle{ev: ev}
}

// After schedules fn to run delay nanoseconds from now.
func (e *Engine) After(delay Time, fn func(now Time)) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(h Handle) {
	if h.done() {
		return
	}
	heap.Remove(&e.events, h.ev.index)
}

// Every schedules fn at now+interval, now+2*interval, ... until the
// engine stops or the returned stop function is called. fn runs before
// the next occurrence is scheduled, so it may consult Pending() freely.
func (e *Engine) Every(interval Time, fn func(now Time)) (stop func()) {
	if interval <= 0 {
		panic(fmt.Sprintf("eventsim: non-positive interval %v", interval))
	}
	stopped := false
	var tick func(now Time)
	tick = func(now Time) {
		if stopped {
			return
		}
		fn(now)
		if !stopped {
			e.After(interval, tick)
		}
	}
	e.After(interval, tick)
	return func() { stopped = true }
}

// Run executes events in timestamp order until the queue drains.
func (e *Engine) Run() {
	e.RunUntil(MaxTime)
}

// RunUntil executes events with timestamps <= deadline, then advances
// the clock to deadline (if any events remain they stay queued).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		e.Processed++
		ev.fn(ev.at)
	}
	if deadline != MaxTime && deadline > e.now {
		e.now = deadline
	}
}

// Step executes the single earliest pending event and reports whether
// one existed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.Processed++
	ev.fn(ev.at)
	return true
}
