package eventsim

import (
	"math/rand"
	"testing"
)

// TestStaleHandleAfterSlotReuse is the generation-stamp regression
// test: cancelling a handle whose event already fired, after the slot
// was reused by a new event, must not touch the new event.
func TestStaleHandleAfterSlotReuse(t *testing.T) {
	e := New()
	stale := e.At(10, func(Time) {})
	e.Run() // fires the event; its slot joins the free list

	// The next schedule reuses the slot (LIFO free list) with a bumped
	// generation.
	fired := false
	fresh := e.At(20, func(Time) { fired = true })
	if fresh.slot != stale.slot {
		t.Fatalf("expected slot reuse: stale slot %d, fresh slot %d", stale.slot, fresh.slot)
	}
	if fresh.gen == stale.gen {
		t.Fatalf("generation did not advance on reuse: %d", fresh.gen)
	}

	e.Cancel(stale) // must be a no-op against the reused slot
	e.Run()
	if !fired {
		t.Fatal("cancelling a stale handle killed the slot's new event")
	}
}

// TestStaleHandleAfterCancelReuse is the same scenario with the first
// incarnation cancelled rather than fired.
func TestStaleHandleAfterCancelReuse(t *testing.T) {
	e := New()
	stale := e.At(10, func(Time) { t.Fatal("cancelled event fired") })
	e.Cancel(stale)

	fired := false
	fresh := e.At(10, func(Time) { fired = true })
	if fresh.slot != stale.slot {
		t.Fatalf("expected slot reuse: stale slot %d, fresh slot %d", stale.slot, fresh.slot)
	}
	e.Cancel(stale) // stale again: no-op
	e.Run()
	if !fired {
		t.Fatal("stale cancel killed the reused slot's event")
	}
}

// TestZeroHandleCancel: the zero Handle must never match a live slot,
// including slot 0 in its first generation.
func TestZeroHandleCancel(t *testing.T) {
	e := New()
	fired := false
	e.At(5, func(Time) { fired = true })
	e.Cancel(Handle{})
	e.Run()
	if !fired {
		t.Fatal("zero handle cancelled slot 0's live event")
	}
}

// TestCancelRunStress interleaves scheduling, cancellation (including
// repeated and stale cancels), and partial runs, checking that exactly
// the non-cancelled events fire, each exactly once, in timestamp order.
// Run under -race it also guards the engine against accidental internal
// sharing.
func TestCancelRunStress(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	e := New()
	fired := map[int]int{}
	var handles []Handle
	var cancelled []bool
	var deadlines []Time

	next := 0
	scheduleOne := func() {
		id := next
		next++
		at := e.Now() + Time(r.Int63n(1000))
		h := e.At(at, func(Time) { fired[id]++ })
		handles = append(handles, h)
		cancelled = append(cancelled, false)
		deadlines = append(deadlines, at)
	}

	for round := 0; round < 200; round++ {
		for i := 0; i < 20; i++ {
			scheduleOne()
		}
		// Cancel a random subset, some twice, some already-fired.
		for i := 0; i < 15; i++ {
			j := r.Intn(len(handles))
			e.Cancel(handles[j])
			if deadlines[j] > e.Now() {
				cancelled[j] = true
			}
			// cancelled[j] stays false if the event already fired; the
			// cancel must then be a no-op.
		}
		e.RunUntil(e.Now() + Time(r.Int63n(500)))
	}
	e.Run()

	for id := 0; id < next; id++ {
		got := fired[id]
		want := 1
		if cancelled[id] {
			want = 0
		}
		if got != want {
			t.Fatalf("event %d fired %d times, want %d (cancelled=%v)", id, got, want, cancelled[id])
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events still pending after Run", e.Pending())
	}
}

// TestScheduleArgOrdering: ScheduleArg events interleave with At events
// in strict (at, seq) order.
func TestScheduleArgOrdering(t *testing.T) {
	e := New()
	var got []int
	e.ScheduleArg(10, func(_ Time, arg any) { got = append(got, arg.(int)) }, 1)
	e.At(10, func(Time) { got = append(got, 2) })
	e.AfterArg(10, func(_ Time, arg any) { got = append(got, arg.(int)) }, 3)
	e.At(5, func(Time) { got = append(got, 0) })
	e.Run()
	want := []int{0, 1, 2, 3}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

// TestTimerRearm: a Timer re-arms without allocating and replaces its
// pending occurrence.
func TestTimerRearm(t *testing.T) {
	e := New()
	var fires []Time
	tm := NewTimer(e, func(now Time, v *Engine) {
		if v != e {
			t.Fatal("timer delivered wrong value")
		}
		fires = append(fires, now)
	}, e)
	tm.Arm(10)
	tm.Arm(20) // replaces the pending occurrence
	if !tm.Armed() {
		t.Fatal("timer not armed")
	}
	e.Run()
	if len(fires) != 1 || fires[0] != 20 {
		t.Fatalf("fires = %v, want [20]", fires)
	}
	if tm.Armed() {
		t.Fatal("timer still armed after firing")
	}
	tm.ArmAfter(5)
	tm.Stop()
	e.Run()
	if len(fires) != 1 {
		t.Fatalf("stopped timer fired: %v", fires)
	}
}

// TestScheduleArgZeroAlloc is the regression gate on the scheduler fast
// path: scheduling with a package-level ArgFunc and a pointer argument,
// then firing, must not allocate in steady state. A regression here
// fails tests, not just benchmarks.
func TestScheduleArgZeroAlloc(t *testing.T) {
	e := New()
	// Warm the arenas so amortized growth is excluded.
	for i := 0; i < 64; i++ {
		e.ScheduleArg(e.Now(), nopArg, e)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.ScheduleArg(e.Now(), nopArg, e)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("ScheduleArg+Step allocates %v per op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		h := e.ScheduleArg(e.Now()+100, nopArg, e)
		e.Cancel(h)
	})
	if allocs != 0 {
		t.Fatalf("ScheduleArg+Cancel allocates %v per op, want 0", allocs)
	}
}

func nopArg(Time, any) {}

// TestTimerZeroAlloc: the typed timer's arm/fire cycle is
// allocation-free after construction.
func TestTimerZeroAlloc(t *testing.T) {
	e := New()
	tm := NewTimer(e, func(Time, *Engine) {}, e)
	tm.ArmAfter(1)
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		tm.ArmAfter(1)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("Timer arm/fire allocates %v per op, want 0", allocs)
	}
}

func BenchmarkEngineSchedule(b *testing.B) {
	e := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleArg(e.Now(), nopArg, e)
		e.Step()
	}
}

// BenchmarkEngineScheduleDepth measures scheduling into a populated
// queue (heap sifts at realistic depth).
func BenchmarkEngineScheduleDepth(b *testing.B) {
	e := New()
	for i := 0; i < 4096; i++ {
		e.ScheduleArg(Time(i)*1000, nopArg, e)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleArg(e.Now()+Time(i%4096), nopArg, e)
		e.Step()
	}
}

func BenchmarkEngineScheduleClosure(b *testing.B) {
	e := New()
	fn := func(Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now(), fn)
		e.Step()
	}
}
