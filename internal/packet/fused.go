package packet

import "encoding/binary"

// Fused decode: the wire-speed ingest fast path. Unmarshal materializes
// a full Packet (netip.Addr boxing, one heap allocation per packet)
// and Extract then re-reads the struct field by field; at line rate
// that is two passes and an allocation the clusterer never needed.
// ParseFrame + FrameView.Features read the clustering features straight
// out of the raw IPv4+TCP/UDP frame bytes in one pass, with no Packet,
// no netip.Addr, and no allocation.
//
// The framing rules are intentionally bit-identical to Unmarshal:
// ParseFrame accepts exactly the frames Unmarshal accepts (same
// truncation, version, and length checks, same "ports read only when
// the transport header fits inside the IP total length" rule), and
// FrameView.Feature returns exactly what Packet.Value would return for
// the unmarshaled packet. The equivalence is enforced by unit tests and
// a differential fuzzer (fuzz_test.go); Unmarshal+Extract remain as the
// readable reference implementation.

// FrameView is a validated, zero-copy view of one IPv4 frame. It holds
// a reference into the caller's buffer; the buffer must stay unchanged
// (and alive) for as long as the view's accessors are used — e.g. a
// frame yielded by an mmap'd capture stays valid until the mapping is
// closed. The zero FrameView is not valid; obtain views from ParseFrame.
type FrameView struct {
	b     []byte // at least ipv4HeaderLen bytes, version 4
	total uint16 // IP total length, validated <= len(b)
	// sport/dport are pre-read because the transport offset (IHL) is
	// only known after validation; zero when the protocol carries no
	// modeled transport header or the header is truncated, matching
	// Unmarshal's zero-valued Packet fields.
	sport, dport uint16
}

// ParseFrame validates the IPv4 framing of b and returns a zero-copy
// view. It rejects exactly the inputs Unmarshal rejects, returning the
// same sentinel error categories (ErrTooShort, ErrBadVersion,
// ErrBadLength) — unwrapped, so the path allocates nothing on either
// outcome.
func ParseFrame(b []byte) (FrameView, error) {
	if len(b) < ipv4HeaderLen {
		return FrameView{}, ErrTooShort
	}
	if b[0]>>4 != 4 {
		return FrameView{}, ErrBadVersion
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < ipv4HeaderLen || len(b) < ihl {
		return FrameView{}, ErrBadLength
	}
	total := int(binary.BigEndian.Uint16(b[2:4]))
	if total > len(b) || total < ihl {
		return FrameView{}, ErrBadLength
	}
	v := FrameView{b: b, total: uint16(total)}
	switch Proto(b[9]) {
	case ProtoTCP:
		if total-ihl >= tcpHeaderLen {
			v.sport = binary.BigEndian.Uint16(b[ihl:])
			v.dport = binary.BigEndian.Uint16(b[ihl+2:])
		}
	case ProtoUDP:
		if total-ihl >= udpHeaderLen {
			v.sport = binary.BigEndian.Uint16(b[ihl:])
			v.dport = binary.BigEndian.Uint16(b[ihl+2:])
		}
	}
	return v, nil
}

// Length returns the IP total length (Packet.Length).
func (v *FrameView) Length() uint16 { return v.total }

// Protocol returns the IP protocol number.
func (v *FrameView) Protocol() Proto { return Proto(v.b[9]) }

// SrcPort returns the transport source port (zero when absent).
func (v *FrameView) SrcPort() uint16 { return v.sport }

// DstPort returns the transport destination port (zero when absent).
func (v *FrameView) DstPort() uint16 { return v.dport }

// Bytes returns the underlying frame slice the view was parsed from.
func (v *FrameView) Bytes() []byte { return v.b }

// FlowHash returns the RSS-style flow hash over the frame's 5-tuple,
// identical to FlowHash of the unmarshaled packet. The data plane uses
// it to demux frames to shards so packets of one flow always meet the
// same clusterer.
func (v *FrameView) FlowHash() uint32 {
	h := uint32(fnvOffset32)
	for _, c := range v.b[12:20] { // src then dst address bytes
		h = (h ^ uint32(c)) * fnvPrime32
	}
	h = (h ^ uint32(v.b[9])) * fnvPrime32
	h = (h ^ uint32(v.sport&0xff)) * fnvPrime32
	h = (h ^ uint32(v.sport>>8)) * fnvPrime32
	h = (h ^ uint32(v.dport&0xff)) * fnvPrime32
	h = (h ^ uint32(v.dport>>8)) * fnvPrime32
	return h
}

// FNV-1a parameters shared by FrameView.FlowHash and FlowHash.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// FlowHash is FNV-1a over (src IP, dst IP, proto, sport, dport) of a
// decoded packet — the struct-side twin of FrameView.FlowHash, kept in
// this package so the two can never drift apart.
func FlowHash(p *Packet) uint32 {
	h := uint32(fnvOffset32)
	src, dst := p.SrcIP.As4(), p.DstIP.As4()
	for _, c := range src {
		h = (h ^ uint32(c)) * fnvPrime32
	}
	for _, c := range dst {
		h = (h ^ uint32(c)) * fnvPrime32
	}
	h = (h ^ uint32(p.Protocol)) * fnvPrime32
	h = (h ^ uint32(p.SrcPort&0xff)) * fnvPrime32
	h = (h ^ uint32(p.SrcPort>>8)) * fnvPrime32
	h = (h ^ uint32(p.DstPort&0xff)) * fnvPrime32
	h = (h ^ uint32(p.DstPort>>8)) * fnvPrime32
	return h
}

// Feature extracts one feature value straight from the frame bytes,
// bit-identical to Packet.Value on the unmarshaled packet.
func (v *FrameView) Feature(f Feature) uint32 {
	b := v.b
	switch f {
	case FSrcIP:
		return uint32(b[12])<<24 | uint32(b[13])<<16 | uint32(b[14])<<8 | uint32(b[15])
	case FDstIP:
		return uint32(b[16])<<24 | uint32(b[17])<<16 | uint32(b[18])<<8 | uint32(b[19])
	case FSrcIPByte0, FSrcIPByte1, FSrcIPByte2, FSrcIPByte3:
		return uint32(b[12+f-FSrcIPByte0])
	case FDstIPByte0, FDstIPByte1, FDstIPByte2, FDstIPByte3:
		return uint32(b[16+f-FDstIPByte0])
	case FSrcPort:
		return uint32(v.sport)
	case FDstPort:
		return uint32(v.dport)
	case FTTL:
		return uint32(b[8])
	case FLength:
		return uint32(v.total)
	case FID:
		return uint32(binary.BigEndian.Uint16(b[4:6]))
	case FFragOffset:
		return uint32(binary.BigEndian.Uint16(b[6:8]) & 0x1fff)
	case FProtocol:
		return uint32(b[9])
	default:
		return 0
	}
}

// Features fills dst with the view's feature values in set order,
// mirroring FeatureSet.Extract: dst is reused when it has capacity, so
// the zero-alloc fast path passes a buffer of at least len(fs) values.
func (v *FrameView) Features(fs FeatureSet, dst []uint32) []uint32 {
	if cap(dst) < len(fs) {
		dst = make([]uint32, len(fs))
	}
	dst = dst[:len(fs)]
	for i, f := range fs {
		dst[i] = v.Feature(f)
	}
	return dst
}

// DecodeFeatures is the one-call fused fast path: validate buf, extract
// fs's feature values into dst (reused when it has capacity), and
// return the filled slice. It is bit-equivalent to Unmarshal followed
// by FeatureSet.Extract — same accepted inputs, same rejections, same
// values — with zero allocations on the accept path.
func DecodeFeatures(buf []byte, fs FeatureSet, dst []uint32) ([]uint32, error) {
	v, err := ParseFrame(buf)
	if err != nil {
		return nil, err
	}
	return v.Features(fs, dst), nil
}
