package packet

import "fmt"

// Feature identifies a packet-header field usable as a clustering
// dimension (§4.1 of the paper). Features are either ordinal (value
// proximity implies similarity: addresses, lengths, TTLs) or nominal
// (proximity is meaningless: ports, protocol numbers).
type Feature uint8

// Features supported by the extractor. The *Byte features expose one
// octet of an address, matching the paper's simulation configuration
// ("each byte of the ip.src and ip.dst") and the hardware configuration
// ("the last two bytes of the IP destination address").
const (
	FSrcIP Feature = iota // full source address as uint32, ordinal
	FDstIP                // full destination address as uint32, ordinal
	FSrcIPByte0
	FSrcIPByte1
	FSrcIPByte2
	FSrcIPByte3
	FDstIPByte0
	FDstIPByte1
	FDstIPByte2
	FDstIPByte3
	FSrcPort // nominal
	FDstPort // nominal
	FTTL
	FLength
	FID
	FFragOffset
	FProtocol // nominal
	numFeatures
)

// NumFeatures is the count of distinct Feature values.
const NumFeatures = int(numFeatures)

var featureNames = [...]string{
	FSrcIP:      "ip.src",
	FDstIP:      "ip.dst",
	FSrcIPByte0: "ip.src[0]",
	FSrcIPByte1: "ip.src[1]",
	FSrcIPByte2: "ip.src[2]",
	FSrcIPByte3: "ip.src[3]",
	FDstIPByte0: "ip.dst[0]",
	FDstIPByte1: "ip.dst[1]",
	FDstIPByte2: "ip.dst[2]",
	FDstIPByte3: "ip.dst[3]",
	FSrcPort:    "sport",
	FDstPort:    "dport",
	FTTL:        "ip.ttl",
	FLength:     "ip.len",
	FID:         "ip.id",
	FFragOffset: "ip.f_offset",
	FProtocol:   "ip.proto",
}

// String returns the paper's name for the feature (e.g. "ip.ttl").
func (f Feature) String() string {
	if int(f) < len(featureNames) {
		return featureNames[f]
	}
	return fmt.Sprintf("feature(%d)", uint8(f))
}

// Nominal reports whether the feature is nominal: value proximity does
// not imply packet similarity. Ports and the protocol number are
// nominal; everything else modeled here is ordinal (§4.1).
func (f Feature) Nominal() bool {
	switch f {
	case FSrcPort, FDstPort, FProtocol:
		return true
	default:
		return false
	}
}

// Bits returns the width of the feature's value space in bits, used to
// size distance normalizations and Anime cost computations.
func (f Feature) Bits() int {
	switch f {
	case FSrcIP, FDstIP:
		return 32
	case FSrcPort, FDstPort, FLength, FID:
		return 16
	case FFragOffset:
		return 13
	default:
		return 8
	}
}

// MaxValue returns the largest value the feature can take.
func (f Feature) MaxValue() uint32 {
	return uint32(1)<<f.Bits() - 1
}

// Value extracts the feature's value from the packet.
func (p *Packet) Value(f Feature) uint32 {
	switch f {
	case FSrcIP:
		a := p.SrcIP.As4()
		return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
	case FDstIP:
		a := p.DstIP.As4()
		return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
	case FSrcIPByte0, FSrcIPByte1, FSrcIPByte2, FSrcIPByte3:
		a := p.SrcIP.As4()
		return uint32(a[f-FSrcIPByte0])
	case FDstIPByte0, FDstIPByte1, FDstIPByte2, FDstIPByte3:
		a := p.DstIP.As4()
		return uint32(a[f-FDstIPByte0])
	case FSrcPort:
		return uint32(p.SrcPort)
	case FDstPort:
		return uint32(p.DstPort)
	case FTTL:
		return uint32(p.TTL)
	case FLength:
		return uint32(p.Length)
	case FID:
		return uint32(p.ID)
	case FFragOffset:
		return uint32(p.FragOffset)
	case FProtocol:
		return uint32(p.Protocol)
	default:
		return 0
	}
}

// FeatureSet is an ordered list of clustering dimensions.
type FeatureSet []Feature

// Extract fills dst with the packet's feature values in set order and
// returns it. dst is reused when it has capacity for len(fs) values;
// a nil or short dst is replaced by a fresh allocation, so callers on
// the zero-alloc fast path should pass a buffer of at least len(fs)
// capacity.
func (fs FeatureSet) Extract(p *Packet, dst []uint32) []uint32 {
	if cap(dst) < len(fs) {
		dst = make([]uint32, len(fs))
	}
	dst = dst[:len(fs)]
	for i, f := range fs {
		dst[i] = p.Value(f)
	}
	return dst
}

// DefaultSimulationFeatures is the paper's §8 default: each byte of the
// source and destination addresses, both ports, TTL, and total length.
func DefaultSimulationFeatures() FeatureSet {
	return FeatureSet{
		FSrcIPByte0, FSrcIPByte1, FSrcIPByte2, FSrcIPByte3,
		FDstIPByte0, FDstIPByte1, FDstIPByte2, FDstIPByte3,
		FSrcPort, FDstPort, FTTL, FLength,
	}
}

// HardwareFeatures is the paper's §7.1 Tofino configuration: the last
// two bytes of the destination address plus both ports.
func HardwareFeatures() FeatureSet {
	return FeatureSet{FDstIPByte2, FDstIPByte3, FSrcPort, FDstPort}
}

// DstIPFeatures is the §7.2 configuration: the four bytes of the
// destination address.
func DstIPFeatures() FeatureSet {
	return FeatureSet{FDstIPByte0, FDstIPByte1, FDstIPByte2, FDstIPByte3}
}
