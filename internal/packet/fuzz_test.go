package packet

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzUnmarshal checks that arbitrary bytes never panic the parser and
// that anything parsed re-marshals without error.
func FuzzUnmarshal(f *testing.F) {
	p := &Packet{
		SrcIP: V4(10, 0, 1, 2), DstIP: V4(192, 168, 3, 4),
		Length: 64, TTL: 64, Protocol: ProtoUDP, SrcPort: 123, DstPort: 456,
	}
	wire, _ := p.Marshal()
	f.Add(wire)
	f.Add([]byte{})
	f.Add([]byte{0x45})
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := Unmarshal(data)
		if err != nil {
			return
		}
		if _, err := q.Marshal(); err != nil {
			t.Fatalf("parsed packet failed to marshal: %v (%+v)", err, q)
		}
	})
}

// FuzzDecodeFeatures is the differential fuzzer gating the fused fast
// path: on every input — valid frames, truncated headers, non-TCP/UDP
// protocols, garbage — DecodeFeatures must agree with Unmarshal+Extract
// bit for bit, or reject exactly when the reference rejects (same
// sentinel category). The flow hash and the remaining FrameView
// accessors ride along under the same oracle.
func FuzzDecodeFeatures(f *testing.F) {
	seed := &Packet{
		SrcIP: V4(10, 0, 1, 2), DstIP: V4(192, 168, 3, 4),
		Length: 64, TTL: 64, Protocol: ProtoTCP, SrcPort: 443, DstPort: 51515,
	}
	wire, _ := seed.Marshal()
	f.Add(wire)
	f.Add([]byte{})
	f.Add([]byte{0x45})
	f.Add(bytes.Repeat([]byte{0x45}, 21)) // bogus total length
	icmp := make([]byte, 20)
	icmp[0] = 0x45
	icmp[2], icmp[3] = 0, 20
	icmp[9] = byte(ProtoICMP)
	f.Add(icmp)
	sets := featureSetsUnderTest()
	f.Fuzz(func(t *testing.T, data []byte) {
		p, refErr := Unmarshal(data)
		v, fusedErr := ParseFrame(data)
		if (refErr == nil) != (fusedErr == nil) {
			t.Fatalf("acceptance diverged: reference %v, fused %v (input %x)", refErr, fusedErr, data)
		}
		if refErr != nil {
			for _, sentinel := range []error{ErrTooShort, ErrBadVersion, ErrBadLength} {
				if errors.Is(refErr, sentinel) != errors.Is(fusedErr, sentinel) {
					t.Fatalf("rejection category diverged on %v: reference %v, fused %v", sentinel, refErr, fusedErr)
				}
			}
			return
		}
		if v.Length() != p.Length || v.Protocol() != p.Protocol ||
			v.SrcPort() != p.SrcPort || v.DstPort() != p.DstPort {
			t.Fatalf("accessors diverged: view (%d,%v,%d,%d) vs packet (%d,%v,%d,%d)",
				v.Length(), v.Protocol(), v.SrcPort(), v.DstPort(),
				p.Length, p.Protocol, p.SrcPort, p.DstPort)
		}
		if v.FlowHash() != FlowHash(p) {
			t.Fatalf("flow hash diverged: %#x vs %#x", v.FlowHash(), FlowHash(p))
		}
		var dst [NumFeatures]uint32
		for _, fs := range sets {
			want := fs.Extract(p, nil)
			got, err := DecodeFeatures(data, fs, dst[:])
			if err != nil {
				t.Fatalf("fused rejected after ParseFrame accepted: %v", err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("feature %v diverged: fused %d, reference %d", fs[i], got[i], want[i])
				}
			}
		}
	})
}
