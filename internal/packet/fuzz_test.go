package packet

import "testing"

// FuzzUnmarshal checks that arbitrary bytes never panic the parser and
// that anything parsed re-marshals without error.
func FuzzUnmarshal(f *testing.F) {
	p := &Packet{
		SrcIP: V4(10, 0, 1, 2), DstIP: V4(192, 168, 3, 4),
		Length: 64, TTL: 64, Protocol: ProtoUDP, SrcPort: 123, DstPort: 456,
	}
	wire, _ := p.Marshal()
	f.Add(wire)
	f.Add([]byte{})
	f.Add([]byte{0x45})
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := Unmarshal(data)
		if err != nil {
			return
		}
		if _, err := q.Marshal(); err != nil {
			t.Fatalf("parsed packet failed to marshal: %v (%+v)", err, q)
		}
	})
}
