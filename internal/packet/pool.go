package packet

// Pool is a free-list recycler for Packets, so steady-state simulation
// re-stamps a bounded working set of packets instead of allocating one
// per simulated packet and GC-ing it after delivery.
//
// Ownership protocol (enforced by the simulator wiring, documented in
// DESIGN.md): a packet is born at a generator via Get, owned by
// whichever component holds it (queue, in-flight transmission), and
// released back via Put exactly once at its terminal event — delivery
// at a sink port or any drop (policer, early, tail, push-out). A
// template or retained packet must never be Put. Put panics on double
// release instead of silently corrupting the free list.
//
// A Pool is single-goroutine, like the event engine whose simulations
// it serves; concurrent pipelines use one pool per ingest goroutine
// (or per shard) rather than a shared locked pool.
type Pool struct {
	free []*Packet

	gets   uint64
	reuses uint64
	puts   uint64
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a packet for stamping: recycled when the free list has
// one, freshly allocated otherwise. The caller must overwrite every
// field (generators assign a full Packet literal), so Get does not
// clear the packet.
func (pl *Pool) Get() *Packet {
	pl.gets++
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		p.pooled = false
		pl.reuses++
		return p
	}
	return &Packet{}
}

// Put releases a packet back to the pool. Releasing the same packet
// twice without an intervening Get panics: a double release means two
// components think they own the packet, and recycling it twice would
// alias two "different" packets in flight.
func (pl *Pool) Put(p *Packet) {
	if p == nil {
		panic("packet: Put(nil)")
	}
	if p.pooled {
		panic("packet: double release — Put on a packet already in the pool")
	}
	p.pooled = true
	pl.puts++
	pl.free = append(pl.free, p)
}

// Free returns the current free-list length (the resident recycled
// set).
func (pl *Pool) Free() int { return len(pl.free) }

// Stats reports pool traffic since construction: total Get calls, how
// many were served by recycling, and total Put calls. gets-reuses is
// the number of packets the pool ever allocated — in steady state it
// stops growing, which is the whole point.
func (pl *Pool) Stats() (gets, reuses, puts uint64) {
	return pl.gets, pl.reuses, pl.puts
}
