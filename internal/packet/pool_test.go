package packet

import (
	"strings"
	"testing"
)

// TestPoolReusePointerIdentity: a released packet is the next one
// handed out (LIFO free list), by pointer identity.
func TestPoolReusePointerIdentity(t *testing.T) {
	pl := NewPool()
	p := pl.Get()
	p.Length = 1500
	pl.Put(p)
	q := pl.Get()
	if q != p {
		t.Fatal("pool did not recycle the released packet (pointer identity)")
	}
	if q.pooled {
		t.Fatal("recycled packet still marked pooled")
	}
	gets, reuses, puts := pl.Stats()
	if gets != 2 || reuses != 1 || puts != 1 {
		t.Fatalf("stats = (%d, %d, %d), want (2, 1, 1)", gets, reuses, puts)
	}
}

// TestPoolDoubleReleasePanics: Put on an already-pooled packet must
// panic with a message naming the bug, not corrupt the free list.
func TestPoolDoubleReleasePanics(t *testing.T) {
	pl := NewPool()
	p := pl.Get()
	pl.Put(p)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double release did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "double release") {
			t.Fatalf("panic message %v does not mention double release", r)
		}
		if pl.Free() != 1 {
			t.Fatalf("free list corrupted by double release: len %d, want 1", pl.Free())
		}
	}()
	pl.Put(p)
}

// TestPoolPutNilPanics guards the nil case separately so the error is
// attributable.
func TestPoolPutNilPanics(t *testing.T) {
	pl := NewPool()
	defer func() {
		if recover() == nil {
			t.Fatal("Put(nil) did not panic")
		}
	}()
	pl.Put(nil)
}

// TestPoolSteadyState: a get/put loop over a working set never grows
// the pool past the high-water mark and never allocates after warmup.
func TestPoolSteadyState(t *testing.T) {
	pl := NewPool()
	var live []*Packet
	for i := 0; i < 8; i++ {
		live = append(live, pl.Get())
	}
	for _, p := range live {
		pl.Put(p)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		p := pl.Get()
		pl.Put(p)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Put allocates %v per op, want 0", allocs)
	}
	gets, reuses, _ := pl.Stats()
	if gets-reuses != 8 {
		t.Fatalf("pool allocated %d packets total, want 8", gets-reuses)
	}
}

// TestCloneClearsPooled: a Clone of any packet is a free-standing
// packet, even if (erroneously) cloned while pool-resident.
func TestCloneClearsPooled(t *testing.T) {
	pl := NewPool()
	p := pl.Get()
	pl.Put(p)
	c := p.Clone()
	if c.pooled {
		t.Fatal("Clone inherited the pooled flag")
	}
}
