package packet

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func samplePacket() *Packet {
	return &Packet{
		SrcIP:      V4(10, 0, 1, 2),
		DstIP:      V4(192, 168, 3, 4),
		Length:     512,
		ID:         0xbeef,
		FragOffset: 0,
		TTL:        64,
		Protocol:   ProtoUDP,
		SrcPort:    123,
		DstPort:    4444,
		Label:      Malicious,
		Vector:     "NTP",
		FlowID:     7,
	}
}

func TestProtoString(t *testing.T) {
	cases := map[Proto]string{
		ProtoICMP: "ICMP",
		ProtoTCP:  "TCP",
		ProtoUDP:  "UDP",
		Proto(99): "proto(99)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Proto(%d).String() = %q, want %q", uint8(p), got, want)
		}
	}
}

func TestLabelString(t *testing.T) {
	if Benign.String() != "benign" || Malicious.String() != "malicious" {
		t.Errorf("label strings wrong: %q %q", Benign, Malicious)
	}
}

func TestFlowRoundTrip(t *testing.T) {
	p := samplePacket()
	f := p.Flow()
	if f.Protocol != ProtoUDP {
		t.Errorf("flow protocol = %v", f.Protocol)
	}
	if f.Src.Addr != p.SrcIP || f.Src.Port != p.SrcPort {
		t.Errorf("flow src = %v", f.Src)
	}
	if f.Dst.Addr != p.DstIP || f.Dst.Port != p.DstPort {
		t.Errorf("flow dst = %v", f.Dst)
	}
	r := f.Reverse()
	if r.Src != f.Dst || r.Dst != f.Src {
		t.Errorf("reverse flow wrong: %v", r)
	}
	if r.Reverse() != f {
		t.Errorf("double reverse is not identity")
	}
}

func TestFlowAsMapKey(t *testing.T) {
	m := map[Flow]int{}
	p := samplePacket()
	m[p.Flow()]++
	q := p.Clone()
	m[q.Flow()]++
	if m[p.Flow()] != 2 {
		t.Errorf("identical packets should share a flow key, got %v", m)
	}
}

func TestClone(t *testing.T) {
	p := samplePacket()
	q := p.Clone()
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("clone differs: %+v vs %+v", p, q)
	}
	q.TTL = 1
	if p.TTL == 1 {
		t.Fatalf("clone aliases original")
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	for _, proto := range []Proto{ProtoTCP, ProtoUDP, ProtoICMP} {
		p := samplePacket()
		p.Protocol = proto
		if proto == ProtoICMP {
			p.SrcPort, p.DstPort, p.Flags = 0, 0, 0
		}
		if proto == ProtoTCP {
			p.Flags = FlagSYN | FlagACK
		}
		b, err := p.Marshal()
		if err != nil {
			t.Fatalf("%v: Marshal: %v", proto, err)
		}
		if len(b) != int(p.Length) {
			t.Fatalf("%v: wire length %d, want %d", proto, len(b), p.Length)
		}
		q, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("%v: Unmarshal: %v", proto, err)
		}
		if q.SrcIP != p.SrcIP || q.DstIP != p.DstIP || q.Length != p.Length ||
			q.ID != p.ID || q.TTL != p.TTL || q.Protocol != p.Protocol {
			t.Errorf("%v: IP fields differ: %+v vs %+v", proto, q, p)
		}
		if proto != ProtoICMP && (q.SrcPort != p.SrcPort || q.DstPort != p.DstPort) {
			t.Errorf("%v: ports differ: %+v", proto, q)
		}
		if proto == ProtoTCP && q.Flags != p.Flags {
			t.Errorf("TCP flags differ: %x vs %x", q.Flags, p.Flags)
		}
	}
}

func TestMarshalChecksumValid(t *testing.T) {
	p := samplePacket()
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Re-summing the header including the stored checksum must give 0
	// (i.e. ^sum == 0xffff folding to all-ones complement identity).
	if got := checksum(b[:ipv4HeaderLen]); got != 0 {
		t.Errorf("IPv4 header checksum does not verify: residual %#x", got)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 10)); err == nil {
		t.Errorf("short buffer should fail")
	}
	b := make([]byte, 20)
	b[0] = 0x65 // IPv6 version nibble
	if _, err := Unmarshal(b); err == nil {
		t.Errorf("non-v4 should fail")
	}
	p := samplePacket()
	w, _ := p.Marshal()
	w[2], w[3] = 0xff, 0xff // total length beyond capture
	if _, err := Unmarshal(w); err == nil {
		t.Errorf("overlong total length should fail")
	}
}

func TestMarshalMinimumLength(t *testing.T) {
	p := samplePacket()
	p.Length = 4 // below header size: WireLen must grow to fit headers
	if p.WireLen() != ipv4HeaderLen+udpHeaderLen {
		t.Fatalf("WireLen = %d", p.WireLen())
	}
	if _, err := p.Marshal(); err != nil {
		t.Fatalf("Marshal: %v", err)
	}
}

func TestMarshalToShortBuffer(t *testing.T) {
	p := samplePacket()
	if err := p.MarshalTo(make([]byte, 8)); err == nil {
		t.Fatal("MarshalTo with a short buffer should fail")
	}
}

func TestMarshalRejectsNonV4(t *testing.T) {
	p := samplePacket()
	p.SrcIP = netip.MustParseAddr("2001:db8::1")
	if _, err := p.Marshal(); err == nil {
		t.Fatal("IPv6 source should be rejected")
	}
}

func TestFeatureValues(t *testing.T) {
	p := samplePacket()
	cases := map[Feature]uint32{
		FSrcIP:      0x0a000102,
		FDstIP:      0xc0a80304,
		FSrcIPByte0: 10, FSrcIPByte1: 0, FSrcIPByte2: 1, FSrcIPByte3: 2,
		FDstIPByte0: 192, FDstIPByte1: 168, FDstIPByte2: 3, FDstIPByte3: 4,
		FSrcPort: 123, FDstPort: 4444,
		FTTL: 64, FLength: 512, FID: 0xbeef, FFragOffset: 0,
		FProtocol: 17,
	}
	for f, want := range cases {
		if got := p.Value(f); got != want {
			t.Errorf("Value(%v) = %d, want %d", f, got, want)
		}
	}
}

func TestFeatureMetadata(t *testing.T) {
	for f := Feature(0); f < numFeatures; f++ {
		if f.String() == "" {
			t.Errorf("feature %d has no name", f)
		}
		if f.Bits() <= 0 || f.Bits() > 32 {
			t.Errorf("%v: bits = %d", f, f.Bits())
		}
	}
	if !FSrcPort.Nominal() || !FDstPort.Nominal() || !FProtocol.Nominal() {
		t.Errorf("ports and protocol must be nominal")
	}
	if FSrcIP.Nominal() || FTTL.Nominal() || FLength.Nominal() {
		t.Errorf("addresses, TTL, length must be ordinal")
	}
	if FSrcIP.MaxValue() != 0xffffffff || FTTL.MaxValue() != 255 || FFragOffset.MaxValue() != 0x1fff {
		t.Errorf("MaxValue wrong")
	}
}

func TestFeatureSetExtract(t *testing.T) {
	fs := FeatureSet{FTTL, FLength, FSrcPort}
	p := samplePacket()
	got := fs.Extract(p, nil)
	want := []uint32{64, 512, 123}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Extract = %v, want %v", got, want)
	}
	// Reuse path.
	buf := make([]uint32, 3)
	got2 := fs.Extract(p, buf)
	if &got2[0] != &buf[0] {
		t.Errorf("Extract should reuse the provided buffer")
	}
	// A short non-nil dst must grow, not panic on reslice.
	got3 := fs.Extract(p, make([]uint32, 1))
	if !reflect.DeepEqual(got3, want) {
		t.Errorf("Extract with short dst = %v, want %v", got3, want)
	}
	// A zero-length slice of a large backing array is still reusable.
	got4 := fs.Extract(p, buf[:0])
	if &got4[0] != &buf[0] || !reflect.DeepEqual(got4, want) {
		t.Errorf("Extract should reuse capacity of a truncated buffer")
	}
}

func TestDefaultFeatureSets(t *testing.T) {
	if n := len(DefaultSimulationFeatures()); n != 12 {
		t.Errorf("simulation set has %d features, want 12", n)
	}
	if n := len(HardwareFeatures()); n != 4 {
		t.Errorf("hardware set has %d features, want 4", n)
	}
	if n := len(DstIPFeatures()); n != 4 {
		t.Errorf("dst-ip set has %d features, want 4", n)
	}
}

// randomPacket draws a structurally valid random packet.
func randomPacket(r *rand.Rand) *Packet {
	protos := []Proto{ProtoTCP, ProtoUDP, ProtoICMP}
	p := &Packet{
		SrcIP:      V4(byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))),
		DstIP:      V4(byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))),
		ID:         uint16(r.Intn(1 << 16)),
		FragOffset: uint16(r.Intn(1 << 13)),
		TTL:        uint8(r.Intn(256)),
		Protocol:   protos[r.Intn(len(protos))],
	}
	p.Length = uint16(p.headerLen() + r.Intn(1400))
	if p.Protocol != ProtoICMP {
		p.SrcPort = uint16(r.Intn(1 << 16))
		p.DstPort = uint16(r.Intn(1 << 16))
	}
	return p
}

func TestQuickWireRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPacket(r)
		b, err := p.Marshal()
		if err != nil {
			t.Logf("marshal: %v", err)
			return false
		}
		q, err := Unmarshal(b)
		if err != nil {
			t.Logf("unmarshal: %v", err)
			return false
		}
		ok := q.SrcIP == p.SrcIP && q.DstIP == p.DstIP && q.Length == p.Length &&
			q.ID == p.ID && q.FragOffset == p.FragOffset && q.TTL == p.TTL &&
			q.Protocol == p.Protocol && q.SrcPort == p.SrcPort && q.DstPort == p.DstPort
		if !ok {
			t.Logf("mismatch: %+v vs %+v", p, q)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFeatureValueWithinRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPacket(r)
		for ft := Feature(0); ft < numFeatures; ft++ {
			if p.Value(ft) > ft.MaxValue() {
				t.Logf("%v value %d exceeds max %d", ft, p.Value(ft), ft.MaxValue())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickChecksumDetectsCorruption(t *testing.T) {
	f := func(seed int64, flip uint8) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPacket(r)
		b, err := p.Marshal()
		if err != nil {
			return false
		}
		pos := int(flip) % ipv4HeaderLen
		b[pos] ^= 0x01
		// After flipping one bit in the header, the checksum must no
		// longer verify (unless we flipped within the checksum field
		// itself, which still breaks verification).
		return checksum(b[:ipv4HeaderLen]) != 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	p := samplePacket()
	buf := make([]byte, p.WireLen())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.MarshalTo(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFeatureExtract(b *testing.B) {
	p := samplePacket()
	fs := DefaultSimulationFeatures()
	buf := make([]uint32, len(fs))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fs.Extract(p, buf)
	}
}
