package packet

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
)

// fusedTestFrames builds a corpus of wire frames covering the decode
// edge cases: plain TCP/UDP, non-transport protocols, IP options
// (IHL > 5), truncated transport headers, trailing capture bytes past
// the IP total length, and boundary fragment/ID values.
func fusedTestFrames(t testing.TB) [][]byte {
	t.Helper()
	var frames [][]byte
	add := func(p *Packet) {
		wire, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, wire)
	}
	add(&Packet{SrcIP: V4(10, 0, 1, 2), DstIP: V4(192, 168, 3, 4), Length: 64,
		TTL: 64, Protocol: ProtoTCP, SrcPort: 443, DstPort: 51515, Flags: FlagSYN})
	add(&Packet{SrcIP: V4(1, 2, 3, 4), DstIP: V4(5, 6, 7, 8), Length: 1500,
		TTL: 1, Protocol: ProtoUDP, SrcPort: 123, DstPort: 123})
	add(&Packet{SrcIP: V4(255, 255, 255, 255), DstIP: V4(0, 0, 0, 0), Length: 20,
		TTL: 255, Protocol: ProtoICMP, ID: 0xffff, FragOffset: 0x1fff})
	add(&Packet{SrcIP: V4(172, 16, 0, 1), DstIP: V4(172, 16, 0, 2), Length: 28,
		TTL: 17, Protocol: ProtoUDP, SrcPort: 65535, DstPort: 1})

	// IHL = 6 (one option word): hand-built, UDP header after options.
	opt := make([]byte, 36)
	opt[0] = 0x46
	binary.BigEndian.PutUint16(opt[2:4], 36)
	opt[8] = 9
	opt[9] = byte(ProtoUDP)
	copy(opt[12:16], []byte{9, 8, 7, 6})
	copy(opt[16:20], []byte{5, 4, 3, 2})
	binary.BigEndian.PutUint16(opt[28:30], 1111) // sport after 24-byte header
	binary.BigEndian.PutUint16(opt[30:32], 2222)
	frames = append(frames, opt)

	// TCP whose transport header is truncated by the IP total length:
	// total = 20 + 10 < 20 + tcpHeaderLen, so ports must read as zero.
	trunc := make([]byte, 30)
	trunc[0] = 0x45
	binary.BigEndian.PutUint16(trunc[2:4], 30)
	trunc[8] = 3
	trunc[9] = byte(ProtoTCP)
	binary.BigEndian.PutUint16(trunc[20:22], 7777) // bytes exist, header does not fit
	frames = append(frames, trunc)

	// Valid frame with trailing capture bytes beyond the IP total length.
	extra := make([]byte, 80)
	extra[0] = 0x45
	binary.BigEndian.PutUint16(extra[2:4], 48)
	extra[8] = 60
	extra[9] = byte(ProtoUDP)
	binary.BigEndian.PutUint16(extra[20:22], 53)
	binary.BigEndian.PutUint16(extra[22:24], 33333)
	frames = append(frames, extra)
	return frames
}

// featureSetsUnderTest covers every deployed set plus one with every
// feature, so each Feature arm of the fused switch is exercised.
func featureSetsUnderTest() []FeatureSet {
	all := make(FeatureSet, 0, NumFeatures)
	for f := Feature(0); f < numFeatures; f++ {
		all = append(all, f)
	}
	return []FeatureSet{
		DefaultSimulationFeatures(),
		HardwareFeatures(),
		DstIPFeatures(),
		all,
	}
}

// TestDecodeFeaturesMatchesUnmarshalExtract is the bit-equivalence gate
// on the corpus: for every frame and every feature set, the fused path
// must produce exactly Unmarshal+Extract's values.
func TestDecodeFeaturesMatchesUnmarshalExtract(t *testing.T) {
	for fi, frame := range fusedTestFrames(t) {
		p, err := Unmarshal(frame)
		if err != nil {
			t.Fatalf("frame %d: reference rejects corpus frame: %v", fi, err)
		}
		for _, fs := range featureSetsUnderTest() {
			want := fs.Extract(p, nil)
			got, err := DecodeFeatures(frame, fs, nil)
			if err != nil {
				t.Fatalf("frame %d: fused rejects what reference accepts: %v", fi, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("frame %d, feature %v: fused %d, reference %d",
						fi, fs[i], got[i], want[i])
				}
			}
		}
	}
}

// TestParseFrameRejectionParity: the fused validator must reject
// exactly the inputs Unmarshal rejects, with the same sentinel
// category.
func TestParseFrameRejectionParity(t *testing.T) {
	bad := [][]byte{
		nil,
		{},
		{0x45},
		make([]byte, 19),
		func() []byte { b := make([]byte, 20); b[0] = 0x60; return b }(), // IPv6 version
		func() []byte { b := make([]byte, 20); b[0] = 0x42; return b }(), // IHL 8 < 20
		func() []byte { b := make([]byte, 20); b[0] = 0x4f; return b }(), // IHL 60 > len
		func() []byte { // total length beyond capture
			b := make([]byte, 20)
			b[0] = 0x45
			binary.BigEndian.PutUint16(b[2:4], 21)
			return b
		}(),
		func() []byte { // total length below IHL
			b := make([]byte, 24)
			b[0] = 0x45
			binary.BigEndian.PutUint16(b[2:4], 8)
			return b
		}(),
	}
	for i, b := range bad {
		_, refErr := Unmarshal(b)
		_, fusedErr := ParseFrame(b)
		if (refErr == nil) != (fusedErr == nil) {
			t.Fatalf("case %d: reference err %v, fused err %v", i, refErr, fusedErr)
		}
		for _, sentinel := range []error{ErrTooShort, ErrBadVersion, ErrBadLength} {
			if errors.Is(refErr, sentinel) != errors.Is(fusedErr, sentinel) {
				t.Fatalf("case %d: sentinel %v: reference %v, fused %v", i, sentinel, refErr, fusedErr)
			}
		}
	}
}

// TestFlowHashParity: the frame-side and struct-side flow hashes must
// agree, including on frames whose transport header is truncated.
func TestFlowHashParity(t *testing.T) {
	for fi, frame := range fusedTestFrames(t) {
		p, err := Unmarshal(frame)
		if err != nil {
			t.Fatal(err)
		}
		v, err := ParseFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		if v.FlowHash() != FlowHash(p) {
			t.Fatalf("frame %d: view hash %#x, packet hash %#x", fi, v.FlowHash(), FlowHash(p))
		}
	}
}

// TestFrameViewAccessors pins the remaining accessors against the
// unmarshaled packet.
func TestFrameViewAccessors(t *testing.T) {
	for fi, frame := range fusedTestFrames(t) {
		p, _ := Unmarshal(frame)
		v, err := ParseFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		if v.Length() != p.Length || v.Protocol() != p.Protocol ||
			v.SrcPort() != p.SrcPort || v.DstPort() != p.DstPort {
			t.Fatalf("frame %d: view (%d,%v,%d,%d) vs packet (%d,%v,%d,%d)", fi,
				v.Length(), v.Protocol(), v.SrcPort(), v.DstPort(),
				p.Length, p.Protocol, p.SrcPort, p.DstPort)
		}
	}
}

// TestDecodeFeaturesZeroAlloc is the allocation gate on the fused fast
// path, accept and reject alike.
func TestDecodeFeaturesZeroAlloc(t *testing.T) {
	frames := fusedTestFrames(t)
	fs := DefaultSimulationFeatures()
	dst := make([]uint32, len(fs))
	junk := []byte{0x60, 0, 0, 0}
	allocs := testing.AllocsPerRun(200, func() {
		for _, frame := range frames {
			if _, err := DecodeFeatures(frame, fs, dst); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := DecodeFeatures(junk, fs, dst); err == nil {
			t.Fatal("junk accepted")
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeFeatures allocates %v per run, want 0", allocs)
	}
}

// BenchmarkDecodeFeatures measures the fused path against the
// Unmarshal+Extract reference it replaces, on the hardware feature set
// the replay pipeline deploys.
func BenchmarkDecodeFeatures(b *testing.B) {
	frames := benchFrames()
	fs := HardwareFeatures()
	dst := make([]uint32, len(fs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeFeatures(frames[i%len(frames)], fs, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnmarshalExtract is the reference two-pass path the fused
// decoder replaces.
func BenchmarkUnmarshalExtract(b *testing.B) {
	frames := benchFrames()
	fs := HardwareFeatures()
	dst := make([]uint32, len(fs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := Unmarshal(frames[i%len(frames)])
		if err != nil {
			b.Fatal(err)
		}
		fs.Extract(p, dst)
	}
}

func benchFrames() [][]byte {
	r := rand.New(rand.NewSource(1))
	frames := make([][]byte, 256)
	for i := range frames {
		p := &Packet{
			SrcIP:    V4(10, byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))),
			DstIP:    V4(192, 168, byte(r.Intn(256)), byte(r.Intn(256))),
			Protocol: ProtoUDP, SrcPort: uint16(r.Intn(65536)), DstPort: uint16(r.Intn(65536)),
			TTL: uint8(r.Intn(256)), Length: uint16(28 + r.Intn(1400)),
		}
		wire, err := p.Marshal()
		if err != nil {
			panic(err)
		}
		frames[i] = wire
	}
	return frames
}
