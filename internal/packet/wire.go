package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Wire-format support: Marshal renders a Packet into real IPv4+TCP/UDP
// bytes (with correct checksums over the headers) and Unmarshal parses
// them back. The simulator itself works on decoded packets; the wire
// format backs the pcap reader/writer and the trace tooling.

// Header sizes in bytes.
const (
	ipv4HeaderLen = 20
	tcpHeaderLen  = 20
	udpHeaderLen  = 8
)

// Marshal errors.
var (
	ErrTooShort     = errors.New("packet: buffer too short")
	ErrBadVersion   = errors.New("packet: not an IPv4 packet")
	ErrBadLength    = errors.New("packet: inconsistent length fields")
	ErrNotTransport = errors.New("packet: protocol carries no modeled transport header")
)

// WireLen returns the number of bytes Marshal will produce: the packet's
// total IP length, but at least the space needed for its headers.
func (p *Packet) WireLen() int {
	n := int(p.Length)
	if n < p.headerLen() {
		n = p.headerLen()
	}
	return n
}

func (p *Packet) headerLen() int {
	switch p.Protocol {
	case ProtoTCP:
		return ipv4HeaderLen + tcpHeaderLen
	case ProtoUDP:
		return ipv4HeaderLen + udpHeaderLen
	default:
		return ipv4HeaderLen
	}
}

// Marshal renders the packet in IPv4 wire format. Payload bytes beyond
// the headers are zero. The returned slice has length WireLen().
func (p *Packet) Marshal() ([]byte, error) {
	buf := make([]byte, p.WireLen())
	if err := p.MarshalTo(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// MarshalTo renders the packet into buf, which must hold WireLen() bytes.
func (p *Packet) MarshalTo(buf []byte) error {
	n := p.WireLen()
	if len(buf) < n {
		return fmt.Errorf("%w: need %d bytes, have %d", ErrTooShort, n, len(buf))
	}
	if !p.SrcIP.Is4() || !p.DstIP.Is4() {
		return fmt.Errorf("packet: source and destination must be IPv4 addresses")
	}
	b := buf[:n]
	for i := range b {
		b[i] = 0
	}

	// IPv4 header.
	b[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(b[2:4], uint16(n))
	binary.BigEndian.PutUint16(b[4:6], p.ID)
	binary.BigEndian.PutUint16(b[6:8], p.FragOffset&0x1fff)
	b[8] = p.TTL
	b[9] = uint8(p.Protocol)
	src := p.SrcIP.As4()
	dst := p.DstIP.As4()
	copy(b[12:16], src[:])
	copy(b[16:20], dst[:])
	binary.BigEndian.PutUint16(b[10:12], checksum(b[:ipv4HeaderLen]))

	// Transport header.
	switch p.Protocol {
	case ProtoTCP:
		t := b[ipv4HeaderLen:]
		binary.BigEndian.PutUint16(t[0:2], p.SrcPort)
		binary.BigEndian.PutUint16(t[2:4], p.DstPort)
		t[12] = 5 << 4 // data offset: 5 words
		t[13] = p.Flags
		binary.BigEndian.PutUint16(t[14:16], 65535) // window
		binary.BigEndian.PutUint16(t[16:18], transportChecksum(src, dst, uint8(ProtoTCP), b[ipv4HeaderLen:]))
	case ProtoUDP:
		u := b[ipv4HeaderLen:]
		binary.BigEndian.PutUint16(u[0:2], p.SrcPort)
		binary.BigEndian.PutUint16(u[2:4], p.DstPort)
		binary.BigEndian.PutUint16(u[4:6], uint16(n-ipv4HeaderLen))
		binary.BigEndian.PutUint16(u[6:8], transportChecksum(src, dst, uint8(ProtoUDP), b[ipv4HeaderLen:]))
	}
	return nil
}

// Unmarshal parses an IPv4 packet from wire format. Simulation metadata
// (Label, Vector, FlowID) is left at its zero value.
func Unmarshal(b []byte) (*Packet, error) {
	if len(b) < ipv4HeaderLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooShort, len(b))
	}
	if b[0]>>4 != 4 {
		return nil, ErrBadVersion
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < ipv4HeaderLen || len(b) < ihl {
		return nil, fmt.Errorf("%w: IHL %d", ErrBadLength, ihl)
	}
	total := binary.BigEndian.Uint16(b[2:4])
	if int(total) > len(b) || int(total) < ihl {
		return nil, fmt.Errorf("%w: total length %d of %d captured", ErrBadLength, total, len(b))
	}
	p := &Packet{
		Length:     total,
		ID:         binary.BigEndian.Uint16(b[4:6]),
		FragOffset: binary.BigEndian.Uint16(b[6:8]) & 0x1fff,
		TTL:        b[8],
		Protocol:   Proto(b[9]),
		SrcIP:      netip.AddrFrom4([4]byte(b[12:16])),
		DstIP:      netip.AddrFrom4([4]byte(b[16:20])),
	}
	tr := b[ihl:total]
	switch p.Protocol {
	case ProtoTCP:
		if len(tr) >= tcpHeaderLen {
			p.SrcPort = binary.BigEndian.Uint16(tr[0:2])
			p.DstPort = binary.BigEndian.Uint16(tr[2:4])
			p.Flags = tr[13]
		}
	case ProtoUDP:
		if len(tr) >= udpHeaderLen {
			p.SrcPort = binary.BigEndian.Uint16(tr[0:2])
			p.DstPort = binary.BigEndian.Uint16(tr[2:4])
		}
	}
	return p, nil
}

// checksum computes the RFC 1071 Internet checksum of b, assuming the
// checksum field within b is zero.
func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}

// transportChecksum computes the TCP/UDP checksum including the IPv4
// pseudo-header. seg must have its checksum field zeroed.
func transportChecksum(src, dst [4]byte, proto uint8, seg []byte) uint16 {
	pseudo := make([]byte, 12, 12+len(seg)+1)
	copy(pseudo[0:4], src[:])
	copy(pseudo[4:8], dst[:])
	pseudo[9] = proto
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(seg)))
	pseudo = append(pseudo, seg...)
	sum := checksum(pseudo)
	if sum == 0 && proto == uint8(ProtoUDP) {
		sum = 0xffff // UDP: zero checksum means "no checksum"
	}
	return sum
}
