// Package packet models network packets for the ACC-Turbo simulator.
//
// The design borrows from gopacket: packets are decoded into typed layers
// (IPv4, TCP, UDP), expose Flow/Endpoint keys for map lookups, and can be
// serialized to and parsed from real wire format. On top of that, the
// package adds the feature view used by ACC-Turbo's online clustering
// (§4 of the paper): every packet is a vector of ordinal and nominal
// feature values extracted from its headers.
//
// Ground-truth labels (benign vs attack, and the attack vector) ride
// along for evaluation accounting only. Defense code must never branch
// on them; the simulator enforces this by handing defenses a view that
// excludes labels.
package packet

import (
	"fmt"
	"net/netip"
)

// Proto is an IP protocol number.
type Proto uint8

// IP protocol numbers used by the simulator.
const (
	ProtoICMP Proto = 1
	ProtoTCP  Proto = 6
	ProtoUDP  Proto = 17
)

// String returns the conventional name of the protocol.
func (p Proto) String() string {
	switch p {
	case ProtoICMP:
		return "ICMP"
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// Label is the ground-truth class of a packet. It exists for evaluation
// only: purity/recall metrics, ideal schedulers, and per-class
// throughput accounting.
type Label uint8

// Ground-truth labels.
const (
	// Benign marks background traffic.
	Benign Label = iota
	// Malicious marks attack traffic.
	Malicious
)

// String returns "benign" or "malicious".
func (l Label) String() string {
	if l == Malicious {
		return "malicious"
	}
	return "benign"
}

// TCP flag bits, matching the wire format.
const (
	FlagFIN uint8 = 1 << 0
	FlagSYN uint8 = 1 << 1
	FlagRST uint8 = 1 << 2
	FlagPSH uint8 = 1 << 3
	FlagACK uint8 = 1 << 4
	FlagURG uint8 = 1 << 5
)

// Packet is a decoded packet together with simulation metadata.
//
// Header fields follow IPv4/TCP/UDP semantics. Length is the total IP
// length in bytes (header + payload) and is the value used for link
// serialization times and byte counters.
type Packet struct {
	// IPv4 header fields.
	SrcIP      netip.Addr
	DstIP      netip.Addr
	Length     uint16 // total length, bytes
	ID         uint16 // identification
	FragOffset uint16 // fragment offset, 13 bits
	TTL        uint8
	Protocol   Proto

	// Transport header fields (TCP/UDP). Zero for other protocols.
	SrcPort uint16
	DstPort uint16
	Flags   uint8 // TCP flags; zero for UDP

	// Simulation metadata (not part of the wire format).

	// Label is the ground-truth class, for evaluation only.
	Label Label
	// Vector names the attack vector that generated the packet
	// (e.g. "NTP", "SSDP"); empty for benign traffic.
	Vector string
	// FlowID is a generator-assigned identifier of the flow the packet
	// belongs to; used by sinks to account per-flow statistics.
	FlowID uint32
	// Seq is a per-flow arrival sequence number assigned by the
	// simulator at the bottleneck (not part of the wire format); sinks
	// use it to detect reordering introduced by priority changes.
	Seq uint64

	// pooled marks a packet currently resting in a Pool's free list; it
	// exists to turn double releases into panics (see Pool.Put).
	pooled bool
}

// Size returns the packet's wire size in bytes, as used for
// serialization-time and byte-throughput computations.
func (p *Packet) Size() int { return int(p.Length) }

// Endpoint identifies one side of a transport conversation.
type Endpoint struct {
	Addr netip.Addr
	Port uint16
}

// String formats the endpoint as "addr:port".
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.Addr, e.Port) }

// Flow is the canonical 5-tuple key of a packet, usable as a map key.
type Flow struct {
	Src, Dst Endpoint
	Protocol Proto
}

// Flow returns the packet's 5-tuple.
func (p *Packet) Flow() Flow {
	return Flow{
		Src:      Endpoint{Addr: p.SrcIP, Port: p.SrcPort},
		Dst:      Endpoint{Addr: p.DstIP, Port: p.DstPort},
		Protocol: p.Protocol,
	}
}

// String formats the flow as "proto src -> dst".
func (f Flow) String() string {
	return fmt.Sprintf("%s %s -> %s", f.Protocol, f.Src, f.Dst)
}

// Reverse returns the flow with source and destination swapped.
func (f Flow) Reverse() Flow {
	return Flow{Src: f.Dst, Dst: f.Src, Protocol: f.Protocol}
}

// V4 builds a netip.Addr from four IPv4 octets. It is a convenience for
// generators and tests.
func V4(a, b, c, d byte) netip.Addr {
	return netip.AddrFrom4([4]byte{a, b, c, d})
}

// V4Addr is an IPv4 address as four octets, convenient for composite
// literals in traffic specs ({10, 0, 0, 1}).
type V4Addr [4]byte

// Addr converts to netip.Addr.
func (a V4Addr) Addr() netip.Addr { return netip.AddrFrom4(a) }

// Uint32 returns the address as a big-endian integer.
func (a V4Addr) Uint32() uint32 {
	return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
}

// V4AddrFromUint32 is the inverse of Uint32.
func V4AddrFromUint32(v uint32) V4Addr {
	return V4Addr{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// String gives a compact one-line description of the packet.
func (p *Packet) String() string {
	return fmt.Sprintf("%s %s:%d -> %s:%d len=%d ttl=%d (%s)",
		p.Protocol, p.SrcIP, p.SrcPort, p.DstIP, p.DstPort, p.Length, p.TTL, p.Label)
}

// Clone returns a deep copy of the packet. Packet contains no reference
// types besides netip.Addr (which is immutable), so a shallow copy is a
// deep copy; Clone exists to make call sites explicit.
func (p *Packet) Clone() *Packet {
	q := *p
	q.pooled = false // the copy is a free-standing packet, never pool-resident
	return &q
}
