package telemetry

import (
	"testing"

	"accturbo/internal/eventsim"
)

// BenchmarkObserve is the telemetry hot-path budget benchmark: the cost
// one instrumented packet event adds to a pipeline. CI records it into
// BENCH_telemetry.json so future PRs can diff (budget: ≤ a few ns/op,
// 0 allocs/op).
func BenchmarkObserve(b *testing.B) {
	b.Run("counter", func(b *testing.B) {
		var c Counter
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("vec-counter", func(b *testing.B) {
		v := NewVecCounter(10, 8)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v.Add(3, i%10, 1)
		}
	})
	b.Run("rate-meter", func(b *testing.B) {
		m := NewRateMeter(eventsim.Second)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Observe(eventsim.Time(i), 1, 1500)
		}
	})
	b.Run("histogram", func(b *testing.B) {
		h := NewHistogram(LatencyBuckets())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(int64(i % 1_000_000))
		}
	})
	b.Run("queue-sink", func(b *testing.B) {
		q := NewQueueStats(eventsim.Second)
		var s Sink = q
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.RecordEnqueue(eventsim.Time(i), 1500, 10, 15000)
		}
	})
	b.Run("nop-sink", func(b *testing.B) {
		s := Nop()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.RecordEnqueue(eventsim.Time(i), 1500, 10, 15000)
		}
	})
}

// BenchmarkVecCounterParallel measures contention behaviour: every
// goroutine writes its own stripe, so throughput should scale with
// cores instead of collapsing onto one cache line.
func BenchmarkVecCounterParallel(b *testing.B) {
	v := NewVecCounter(10, 64)
	var next Counter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		shard := int(next.v.Add(1)) % 64
		i := 0
		for pb.Next() {
			v.Add(shard, i%10, 1)
			i++
		}
	})
}
