package telemetry

import (
	"sync/atomic"

	"accturbo/internal/eventsim"
)

// RateMeter measures an event/byte rate over fixed windows of its
// timeline. Observe accumulates into the current window; the first
// observation at or past the window boundary publishes the closed
// window as the last completed rate. Driven by virtual timestamps the
// meter is fully deterministic; under wall time concurrent observers
// race only on which of them rolls the window, never on the counts.
type RateMeter struct {
	width int64 // window width, ns

	start atomic.Int64 // current window start
	pkts  atomic.Uint64
	bytes atomic.Uint64

	lastPkts  atomic.Uint64
	lastBytes atomic.Uint64
	lastWidth atomic.Int64 // width actually covered by the last window
}

// RateSnapshot is a copy-on-read view of a RateMeter.
type RateSnapshot struct {
	// WindowStart and WindowWidth frame the last completed window.
	WindowStart eventsim.Time
	WindowWidth eventsim.Time
	// Pkts and Bytes are the totals of the last completed window.
	Pkts, Bytes uint64
	// PktsPerSec and BitsPerSec are the derived rates.
	PktsPerSec, BitsPerSec float64
}

// NewRateMeter builds a meter with the given window width.
func NewRateMeter(window eventsim.Time) *RateMeter {
	if window <= 0 {
		window = eventsim.Second
	}
	return &RateMeter{width: int64(window)}
}

// Observe records pkts packets / bytes bytes at time now.
func (m *RateMeter) Observe(now eventsim.Time, pkts, bytes uint64) {
	start := m.start.Load()
	if int64(now)-start >= m.width {
		// Roll the window: exactly one caller wins the CAS and
		// publishes the closed window's totals.
		newStart := int64(now) - int64(now)%m.width
		if m.start.CompareAndSwap(start, newStart) {
			m.lastPkts.Store(m.pkts.Swap(0))
			m.lastBytes.Store(m.bytes.Swap(0))
			m.lastWidth.Store(newStart - start)
		}
	}
	m.pkts.Add(pkts)
	m.bytes.Add(bytes)
}

// Snapshot returns the last completed window. The in-progress window is
// intentionally excluded: a half-filled window would understate the
// rate.
func (m *RateMeter) Snapshot() RateSnapshot {
	covered := m.lastWidth.Load()
	s := RateSnapshot{
		WindowStart: eventsim.Time(m.start.Load() - covered),
		WindowWidth: eventsim.Time(m.width),
		Pkts:        m.lastPkts.Load(),
		Bytes:       m.lastBytes.Load(),
	}
	// Rates are normalized by the configured width: a late roll (idle
	// gap spanning windows) reports the events over the elapsed span.
	span := covered
	if span <= 0 {
		span = m.width
	}
	sec := float64(span) / float64(eventsim.Second)
	if sec > 0 {
		s.PktsPerSec = float64(s.Pkts) / sec
		s.BitsPerSec = float64(s.Bytes) * 8 / sec
	}
	return s
}
