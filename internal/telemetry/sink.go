package telemetry

import (
	"accturbo/internal/eventsim"
)

// maxDropReasons bounds the per-reason drop counters in QueueStats.
// queue.DropReason values index into it; unknown reasons fold onto the
// last slot.
const maxDropReasons = 8

// Sink receives per-event queue accounting: every enqueue, dequeue and
// drop a discipline performs, with the post-event depth. Reasons are
// queue.DropReason values carried as opaque small integers so the
// telemetry layer stays independent of the queue package.
//
// Implementations must be cheap and must not retain the packet — the
// sink sees sizes and times only, never headers, so it can run at line
// rate on the real-time path as well as inside the simulator.
type Sink interface {
	// RecordEnqueue reports an accepted packet of pktBytes and the
	// discipline's depth after admission.
	RecordEnqueue(now eventsim.Time, pktBytes, depthPkts, depthBytes int)
	// RecordDequeue reports a departing packet and the depth after it.
	RecordDequeue(now eventsim.Time, pktBytes, depthPkts, depthBytes int)
	// RecordDrop reports a rejected (or pushed-out) packet.
	RecordDrop(now eventsim.Time, pktBytes int, reason uint8)
}

// nopSink discards all events.
type nopSink struct{}

func (nopSink) RecordEnqueue(eventsim.Time, int, int, int) {}
func (nopSink) RecordDequeue(eventsim.Time, int, int, int) {}
func (nopSink) RecordDrop(eventsim.Time, int, uint8)       {}

var nop Sink = nopSink{}

// Nop returns the shared no-op sink. Disciplines default to it so the
// hot path never branches on a nil sink.
func Nop() Sink { return nop }

// OrNop returns s, or the no-op sink when s is nil.
func OrNop(s Sink) Sink {
	if s == nil {
		return nop
	}
	return s
}

// QueueStats is the standard Sink: enqueue/dequeue counters in packets
// and bytes, per-reason drop counters, depth gauges, and a drain-rate
// meter. The zero value is not usable; build with NewQueueStats.
type QueueStats struct {
	EnqueuedPkts, EnqueuedBytes Counter
	DequeuedPkts, DequeuedBytes Counter
	DroppedPkts, DroppedBytes   Counter
	dropsByReason               [maxDropReasons]Counter

	DepthPkts, DepthBytes Gauge
	// Drain meters the dequeue (service) rate per window.
	Drain *RateMeter
}

// QueueSnapshot is a copy-on-read view of a QueueStats.
type QueueSnapshot struct {
	EnqueuedPkts, EnqueuedBytes uint64
	DequeuedPkts, DequeuedBytes uint64
	DroppedPkts, DroppedBytes   uint64
	DropsByReason               [maxDropReasons]uint64
	DepthPkts, DepthBytes       int64
	Drain                       RateSnapshot
}

// NewQueueStats builds queue accounting with the given drain-meter
// window (zero selects one second).
func NewQueueStats(window eventsim.Time) *QueueStats {
	return &QueueStats{Drain: NewRateMeter(window)}
}

var _ Sink = (*QueueStats)(nil)

// RecordEnqueue implements Sink.
func (q *QueueStats) RecordEnqueue(now eventsim.Time, pktBytes, depthPkts, depthBytes int) {
	q.EnqueuedPkts.Inc()
	q.EnqueuedBytes.Add(uint64(pktBytes))
	q.DepthPkts.Set(int64(depthPkts))
	q.DepthBytes.Set(int64(depthBytes))
}

// RecordDequeue implements Sink.
func (q *QueueStats) RecordDequeue(now eventsim.Time, pktBytes, depthPkts, depthBytes int) {
	q.DequeuedPkts.Inc()
	q.DequeuedBytes.Add(uint64(pktBytes))
	q.DepthPkts.Set(int64(depthPkts))
	q.DepthBytes.Set(int64(depthBytes))
	q.Drain.Observe(now, 1, uint64(pktBytes))
}

// RecordDrop implements Sink.
func (q *QueueStats) RecordDrop(now eventsim.Time, pktBytes int, reason uint8) {
	q.DroppedPkts.Inc()
	q.DroppedBytes.Add(uint64(pktBytes))
	if reason >= maxDropReasons {
		reason = maxDropReasons - 1
	}
	q.dropsByReason[reason].Inc()
}

// DropsFor returns the drop count recorded for one reason value.
func (q *QueueStats) DropsFor(reason uint8) uint64 {
	if reason >= maxDropReasons {
		reason = maxDropReasons - 1
	}
	return q.dropsByReason[reason].Value()
}

// Snapshot returns a copy of all queue accounting.
func (q *QueueStats) Snapshot() QueueSnapshot {
	s := QueueSnapshot{
		EnqueuedPkts:  q.EnqueuedPkts.Value(),
		EnqueuedBytes: q.EnqueuedBytes.Value(),
		DequeuedPkts:  q.DequeuedPkts.Value(),
		DequeuedBytes: q.DequeuedBytes.Value(),
		DroppedPkts:   q.DroppedPkts.Value(),
		DroppedBytes:  q.DroppedBytes.Value(),
		DepthPkts:     q.DepthPkts.Value(),
		DepthBytes:    q.DepthBytes.Value(),
		Drain:         q.Drain.Snapshot(),
	}
	for i := range q.dropsByReason {
		s.DropsByReason[i] = q.dropsByReason[i].Value()
	}
	return s
}

// TeeSink fans every event out to multiple sinks, for stacking the
// standard accounting with experiment-specific observers.
type TeeSink []Sink

var _ Sink = TeeSink(nil)

// RecordEnqueue implements Sink.
func (t TeeSink) RecordEnqueue(now eventsim.Time, pktBytes, depthPkts, depthBytes int) {
	for _, s := range t {
		s.RecordEnqueue(now, pktBytes, depthPkts, depthBytes)
	}
}

// RecordDequeue implements Sink.
func (t TeeSink) RecordDequeue(now eventsim.Time, pktBytes, depthPkts, depthBytes int) {
	for _, s := range t {
		s.RecordDequeue(now, pktBytes, depthPkts, depthBytes)
	}
}

// RecordDrop implements Sink.
func (t TeeSink) RecordDrop(now eventsim.Time, pktBytes int, reason uint8) {
	for _, s := range t {
		s.RecordDrop(now, pktBytes, reason)
	}
}
