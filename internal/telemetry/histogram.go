package telemetry

import (
	"sync/atomic"

	"accturbo/internal/eventsim"
)

// Histogram counts observations into fixed buckets. Bucket i holds
// observations v <= Bounds[i]; one implicit overflow bucket holds the
// rest, so Observe never allocates and never loses a sample. Suited to
// latencies (nanosecond values) and queue depths alike.
type Histogram struct {
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1, last = overflow
	sum    atomic.Int64
	max    atomic.Int64
}

// HistogramSnapshot is a copy-on-read view of a Histogram.
type HistogramSnapshot struct {
	// Bounds are the inclusive upper bounds; Counts has one extra
	// trailing entry for overflow.
	Bounds []int64
	Counts []uint64
	// Count and Sum aggregate all observations; Max is the largest.
	Count uint64
	Sum   int64
	Max   int64
}

// Mean returns the average observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// NewHistogram builds a histogram over the given ascending inclusive
// upper bounds. The bounds slice is copied.
func NewHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("telemetry: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// LatencyBuckets returns the default deployment-latency bounds:
// 1 µs … ~17 s in powers of four.
func LatencyBuckets() []int64 {
	out := make([]int64, 0, 13)
	for v := int64(eventsim.Microsecond); len(out) < 13; v *= 4 {
		out = append(out, v)
	}
	return out
}

// Observe records one value. The bucket scan is linear: bucket counts
// stay small (≈a dozen), which beats a branchy binary search on the
// short arrays in practice and keeps the path trivially allocation
// free.
func (h *Histogram) Observe(v int64) {
	i := 0
	for ; i < len(h.bounds); i++ {
		if v <= h.bounds[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveSince records now-start on the histogram's scale — the
// poll→deploy measurement shape.
func (h *Histogram) ObserveSince(start, now eventsim.Time) {
	h.Observe(int64(now - start))
}

// Snapshot returns a copy of the current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: make([]int64, len(h.bounds)),
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.Load(),
		Max:    h.max.Load(),
	}
	copy(s.Bounds, h.bounds)
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}
