package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Kind classifies a registered instrument for the text exposition.
type Kind uint8

// Instrument kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// Sample is one exported value at snapshot time.
type Sample struct {
	Name  string
	Kind  Kind
	Value float64
	// Hist is set for KindHistogram samples.
	Hist *HistogramSnapshot
}

// Registry is a named catalogue of instruments for export. Instruments
// register once at construction; Snapshot and WriteText read them
// without blocking writers (all instruments are internally atomic).
// Names sort lexicographically on export so output is stable.
type Registry struct {
	mu      sync.Mutex
	entries map[string]func() Sample
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]func() Sample{}}
}

func (r *Registry) register(name string, read func() Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate instrument %q", name))
	}
	r.entries[name] = read
}

// Counter registers an existing counter under name.
func (r *Registry) Counter(name string, c *Counter) {
	r.register(name, func() Sample {
		return Sample{Name: name, Kind: KindCounter, Value: float64(c.Value())}
	})
}

// Gauge registers an existing gauge under name.
func (r *Registry) Gauge(name string, g *Gauge) {
	r.register(name, func() Sample {
		return Sample{Name: name, Kind: KindGauge, Value: float64(g.Value())}
	})
}

// CounterFunc registers a derived counter read through fn.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	r.register(name, func() Sample {
		return Sample{Name: name, Kind: KindCounter, Value: float64(fn())}
	})
}

// GaugeFunc registers a derived gauge read through fn.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.register(name, func() Sample {
		return Sample{Name: name, Kind: KindGauge, Value: fn()}
	})
}

// Histogram registers an existing histogram under name.
func (r *Registry) Histogram(name string, h *Histogram) {
	r.register(name, func() Sample {
		s := h.Snapshot()
		return Sample{Name: name, Kind: KindHistogram, Value: float64(s.Count), Hist: &s}
	})
}

// Vec registers each element of a vector counter as name_i.
func (r *Registry) Vec(name string, v *VecCounter) {
	for i := 0; i < v.Len(); i++ {
		i := i
		r.register(fmt.Sprintf("%s_%d", name, i), func() Sample {
			return Sample{Name: fmt.Sprintf("%s_%d", name, i), Kind: KindCounter, Value: float64(v.Value(i))}
		})
	}
}

// Snapshot reads every instrument once, sorted by name.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	reads := make([]func() Sample, 0, len(r.entries))
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		reads = append(reads, r.entries[n])
	}
	r.mu.Unlock()

	out := make([]Sample, len(reads))
	for i, read := range reads {
		out[i] = read()
	}
	return out
}

// WriteText writes the expvar/Prometheus-style text exposition of every
// instrument: a `# TYPE` line followed by `name value`, histograms
// expanded into cumulative `_bucket{le="..."}` series plus `_sum` and
// `_count`.
func (r *Registry) WriteText(w io.Writer) error {
	for _, s := range r.Snapshot() {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
			return err
		}
		if s.Kind != KindHistogram {
			if _, err := fmt.Fprintf(w, "%s %v\n", s.Name, s.Value); err != nil {
				return err
			}
			continue
		}
		var cum uint64
		for i, b := range s.Hist.Bounds {
			cum += s.Hist.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", s.Name, b, cum); err != nil {
				return err
			}
		}
		cum += s.Hist.Counts[len(s.Hist.Counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", s.Name, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", s.Name, s.Hist.Sum, s.Name, s.Hist.Count); err != nil {
			return err
		}
	}
	return nil
}
