package telemetry

import (
	"strings"
	"sync"
	"testing"

	"accturbo/internal/eventsim"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestVecCounterStriping(t *testing.T) {
	v := NewVecCounter(10, 4)
	for shard := 0; shard < 4; shard++ {
		for i := 0; i < 10; i++ {
			v.Add(shard, i, uint64(i+1))
		}
	}
	for i := 0; i < 10; i++ {
		if got, want := v.Value(i), uint64(4*(i+1)); got != want {
			t.Fatalf("counter %d = %d, want %d", i, got, want)
		}
	}
	if got, want := v.Total(), uint64(4*55); got != want {
		t.Fatalf("total = %d, want %d", got, want)
	}
	// Out-of-range index clamps to the last counter, out-of-range shard
	// folds to stripe 0 — both still count.
	before := v.Value(9)
	v.Add(99, 99, 1)
	if got := v.Value(9); got != before+1 {
		t.Fatalf("clamped add lost: %d -> %d", before, got)
	}
	vals := v.Values()
	if len(vals) != 10 || vals[9] != before+1 {
		t.Fatalf("Values() = %v", vals)
	}
}

func TestVecCounterConcurrent(t *testing.T) {
	const shards, perShard = 8, 10000
	v := NewVecCounter(4, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perShard; i++ {
				v.Add(s, i%4, 1)
			}
		}(s)
	}
	wg.Wait()
	if got, want := v.Total(), uint64(shards*perShard); got != want {
		t.Fatalf("total = %d, want %d", got, want)
	}
}

func TestRateMeterWindows(t *testing.T) {
	m := NewRateMeter(eventsim.Second)
	// Fill window [0, 1s): 100 packets of 125 bytes = 100 kbit.
	for i := 0; i < 100; i++ {
		m.Observe(eventsim.Time(i)*10*eventsim.Millisecond, 1, 125)
	}
	if s := m.Snapshot(); s.Pkts != 0 {
		t.Fatalf("window not closed yet, snapshot = %+v", s)
	}
	// First observation in the next window publishes the closed one.
	m.Observe(eventsim.Second, 1, 125)
	s := m.Snapshot()
	if s.Pkts != 100 || s.Bytes != 12500 {
		t.Fatalf("closed window = %+v, want 100 pkts / 12500 bytes", s)
	}
	if s.PktsPerSec != 100 || s.BitsPerSec != 100000 {
		t.Fatalf("rates = %v pkts/s %v bit/s, want 100 / 100000", s.PktsPerSec, s.BitsPerSec)
	}
}

func TestRateMeterIdleGap(t *testing.T) {
	m := NewRateMeter(eventsim.Second)
	m.Observe(0, 10, 1000)
	// Next observation five windows later: rate is averaged over the
	// elapsed span, not inflated to a single window.
	m.Observe(5*eventsim.Second, 1, 100)
	s := m.Snapshot()
	if s.Pkts != 10 {
		t.Fatalf("pkts = %d, want 10", s.Pkts)
	}
	if s.PktsPerSec != 2 {
		t.Fatalf("pkts/s = %v, want 2 (10 pkts over 5 s)", s.PktsPerSec)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 500, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if want := []uint64{2, 2, 1, 1}; len(s.Counts) != 4 ||
		s.Counts[0] != want[0] || s.Counts[1] != want[1] || s.Counts[2] != want[2] || s.Counts[3] != want[3] {
		t.Fatalf("counts = %v, want %v", s.Counts, want)
	}
	if s.Count != 6 || s.Sum != 5626 || s.Max != 5000 {
		t.Fatalf("count/sum/max = %d/%d/%d", s.Count, s.Sum, s.Max)
	}
	if got := s.Mean(); got != 5626.0/6 {
		t.Fatalf("mean = %v", got)
	}
	// Snapshot is a copy: mutating it doesn't touch the live histogram.
	s.Counts[0] = 999
	if h.Snapshot().Counts[0] != 2 {
		t.Fatal("snapshot aliases live counts")
	}
	h.ObserveSince(100, 150)
	if h.Snapshot().Counts[1] != 3 {
		t.Fatal("ObserveSince missed bucket 1")
	}
}

func TestLatencyBucketsAscending(t *testing.T) {
	b := LatencyBuckets()
	if len(b) == 0 || b[0] != int64(eventsim.Microsecond) {
		t.Fatalf("buckets = %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %v", i, b)
		}
	}
	NewHistogram(b) // must not panic
}

func TestQueueStatsSink(t *testing.T) {
	q := NewQueueStats(eventsim.Second)
	q.RecordEnqueue(0, 100, 1, 100)
	q.RecordEnqueue(1, 200, 2, 300)
	q.RecordDequeue(2, 100, 1, 200)
	q.RecordDrop(3, 500, 1)
	q.RecordDrop(4, 500, 200) // out-of-range reason folds onto last slot

	s := q.Snapshot()
	if s.EnqueuedPkts != 2 || s.EnqueuedBytes != 300 {
		t.Fatalf("enqueued = %d/%d", s.EnqueuedPkts, s.EnqueuedBytes)
	}
	if s.DequeuedPkts != 1 || s.DequeuedBytes != 100 {
		t.Fatalf("dequeued = %d/%d", s.DequeuedPkts, s.DequeuedBytes)
	}
	if s.DroppedPkts != 2 || s.DroppedBytes != 1000 {
		t.Fatalf("dropped = %d/%d", s.DroppedPkts, s.DroppedBytes)
	}
	if s.DepthPkts != 1 || s.DepthBytes != 200 {
		t.Fatalf("depth = %d/%d", s.DepthPkts, s.DepthBytes)
	}
	if q.DropsFor(1) != 1 || q.DropsFor(maxDropReasons-1) != 1 || q.DropsFor(255) != 1 {
		t.Fatalf("per-reason drops wrong: %v", s.DropsByReason)
	}
}

func TestNopAndTee(t *testing.T) {
	if OrNop(nil) != Nop() {
		t.Fatal("OrNop(nil) != Nop()")
	}
	q := NewQueueStats(0)
	if OrNop(q) != Sink(q) {
		t.Fatal("OrNop(s) != s")
	}
	tee := TeeSink{Nop(), q}
	tee.RecordEnqueue(0, 10, 1, 10)
	tee.RecordDequeue(0, 10, 0, 0)
	tee.RecordDrop(0, 10, 0)
	if q.EnqueuedPkts.Value() != 1 || q.DequeuedPkts.Value() != 1 || q.DroppedPkts.Value() != 1 {
		t.Fatal("tee did not fan out")
	}
}

func TestRegistryText(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(3)
	var g Gauge
	g.Set(-2)
	h := NewHistogram([]int64{10, 20})
	h.Observe(5)
	h.Observe(15)
	h.Observe(25)
	r.Counter("pkts_total", &c)
	r.Gauge("depth", &g)
	r.Histogram("latency_ns", h)
	r.CounterFunc("derived_total", func() uint64 { return 9 })
	r.GaugeFunc("ratio", func() float64 { return 0.5 })
	v := NewVecCounter(2, 1)
	v.Add(0, 1, 4)
	r.Vec("queue_pkts", v)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE depth gauge\ndepth -2\n",
		"# TYPE pkts_total counter\npkts_total 3\n",
		"derived_total 9\n",
		"ratio 0.5\n",
		"queue_pkts_0 0\n",
		"queue_pkts_1 4\n",
		"latency_ns_bucket{le=\"10\"} 1\n",
		"latency_ns_bucket{le=\"20\"} 2\n",
		"latency_ns_bucket{le=\"+Inf\"} 3\n",
		"latency_ns_sum 45\n",
		"latency_ns_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Stable order: samples sort by name.
	if strings.Index(out, "depth") > strings.Index(out, "pkts_total") {
		t.Error("exposition not sorted by name")
	}

	snap := r.Snapshot()
	if len(snap) != 7 {
		t.Fatalf("snapshot has %d samples, want 7", len(snap))
	}

	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("depth", &c)
}
