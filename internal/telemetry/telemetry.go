// Package telemetry is the shared instrumentation substrate of the
// defense: allocation-free counters, gauges, windowed rate meters and
// fixed-bucket histograms with copy-on-read Snapshot semantics.
//
// Every layer of the pipeline reports through these instruments — the
// queueing disciplines (via Sink), the network simulator's per-port
// accounting, the data-plane assignment/routing counters, and the
// control plane's deployment-latency histogram — so the simulator and
// the real-time deployment path export one monitoring signal instead of
// three parallel ad-hoc accounting systems.
//
// Timestamps flow through the Clock interface, a strict subset of
// core.Clock: under a SimClock instruments observe deterministic
// virtual nanoseconds (runs stay bit-identical), under a WallClock they
// observe real time. Instruments never read a clock themselves on the
// hot path; callers pass `now`, so a counter update is one atomic add.
//
// Concurrency: all instruments are safe for concurrent use. Writers on
// the sharded real-time pipeline use VecCounter, whose per-shard slots
// are padded onto distinct cache lines and aggregated lock-free at
// read time, so concurrent shards never contend on a counter line.
package telemetry

import (
	"sync/atomic"

	"accturbo/internal/eventsim"
)

// Clock supplies timestamps for snapshot headers and rate windows. It
// is the read-only subset of core.Clock, so the same instrument runs in
// virtual time (deterministic) and wall time unchanged.
type Clock interface {
	Now() eventsim.Time
}

// cacheLine is the assumed cache-line size in bytes for slot padding.
const cacheLine = 64

// Counter is a monotonically increasing event count. The zero value is
// ready to use. Add is one uncontended atomic; heavily shared hot paths
// that would contend on it should use a VecCounter instead.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, active rules). The zero
// value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the level by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// VecCounter is a vector of n counters, each striped across `shards`
// writer slots. The layout is shard-major with each shard's stripe
// padded to a whole number of cache lines, so writers on different
// shards never share a line: slot(shard, i) = shard*stride + i.
// Reads aggregate the stripes lock-free.
type VecCounter struct {
	n      int
	stride int
	slots  []atomic.Uint64
}

// NewVecCounter builds a vector of n counters striped across shards
// writer slots (minimum 1 each).
func NewVecCounter(n, shards int) *VecCounter {
	if n < 1 {
		n = 1
	}
	if shards < 1 {
		shards = 1
	}
	perLine := cacheLine / 8
	stride := (n + perLine - 1) / perLine * perLine
	return &VecCounter{n: n, stride: stride, slots: make([]atomic.Uint64, stride*shards)}
}

// Len returns the number of counters in the vector.
func (v *VecCounter) Len() int { return v.n }

// Add increments counter i on the given shard's stripe by delta.
// Out-of-range indexes are clamped to the last counter; out-of-range
// shards fold onto stripe 0 (still correct, possibly contended).
func (v *VecCounter) Add(shard, i int, delta uint64) {
	if i < 0 || i >= v.n {
		i = v.n - 1
	}
	if shard < 0 || shard*v.stride >= len(v.slots) {
		shard = 0
	}
	v.slots[shard*v.stride+i].Add(delta)
}

// Value returns counter i aggregated across all stripes.
func (v *VecCounter) Value(i int) uint64 {
	if i < 0 || i >= v.n {
		return 0
	}
	var sum uint64
	for off := i; off < len(v.slots); off += v.stride {
		sum += v.slots[off].Load()
	}
	return sum
}

// Values returns a copy of all counters aggregated across stripes.
func (v *VecCounter) Values() []uint64 {
	out := make([]uint64, v.n)
	for i := range out {
		out[i] = v.Value(i)
	}
	return out
}

// Total returns the sum over the whole vector.
func (v *VecCounter) Total() uint64 {
	var sum uint64
	for i := 0; i < v.n; i++ {
		sum += v.Value(i)
	}
	return sum
}
