package faults

import (
	"accturbo/internal/eventsim"
	"accturbo/internal/telemetry"
)

// FaultySink wraps a telemetry.Sink and silently discards each write
// with the spec's sinkfail probability, modeling a lossy or overloaded
// metrics pipeline. Discards are counted on the injector, so a chaos
// run can report exactly how much accounting it lost — and tests can
// assert the defense's behavior (as opposed to its observability)
// never depended on sink writes succeeding.
type FaultySink struct {
	inner telemetry.Sink
	p     float64
	inj   *Injector
}

var _ telemetry.Sink = (*FaultySink)(nil)

// WrapSink wraps s with the spec's sink-failure fault, or returns s
// unchanged when the spec has none. The RNG stream is the injector's
// sink stream, independent of packet mangling.
func (inj *Injector) WrapSink(s telemetry.Sink) telemetry.Sink {
	if inj.spec.SinkFailP <= 0 {
		return s
	}
	return &FaultySink{inner: telemetry.OrNop(s), p: inj.spec.SinkFailP, inj: inj}
}

func (fs *FaultySink) fail() bool {
	if fs.inj.sinkRNG.Prob(fs.p) {
		fs.inj.SinkWritesFailed.Inc()
		return true
	}
	return false
}

// RecordEnqueue implements telemetry.Sink.
func (fs *FaultySink) RecordEnqueue(now eventsim.Time, pktBytes, depthPkts, depthBytes int) {
	if fs.fail() {
		return
	}
	fs.inner.RecordEnqueue(now, pktBytes, depthPkts, depthBytes)
}

// RecordDequeue implements telemetry.Sink.
func (fs *FaultySink) RecordDequeue(now eventsim.Time, pktBytes, depthPkts, depthBytes int) {
	if fs.fail() {
		return
	}
	fs.inner.RecordDequeue(now, pktBytes, depthPkts, depthBytes)
}

// RecordDrop implements telemetry.Sink.
func (fs *FaultySink) RecordDrop(now eventsim.Time, pktBytes int, reason uint8) {
	if fs.fail() {
		return
	}
	fs.inner.RecordDrop(now, pktBytes, reason)
}
