package faults

import (
	"net/netip"
	"testing"

	"accturbo/internal/core"
	"accturbo/internal/eventsim"
	"accturbo/internal/netsim"
	"accturbo/internal/packet"
	"accturbo/internal/queue"
	"accturbo/internal/telemetry"
)

func TestParseSpecRoundTrip(t *testing.T) {
	in := "flap:first=12s,down=250ms,period=20s,count=4;drop:p=0.01;dup:p=0.005;corrupt:p=0.01;stall:at=15s,for=3s;sinkfail:p=0.1"
	spec, err := ParseSpec(in)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", in, err)
	}
	if len(spec.Flaps) != 1 || len(spec.Stalls) != 1 {
		t.Fatalf("got %d flaps, %d stalls, want 1 each", len(spec.Flaps), len(spec.Stalls))
	}
	f := spec.Flaps[0]
	if f.First != 12*eventsim.Second || f.Down != 250*eventsim.Millisecond ||
		f.Period != 20*eventsim.Second || f.Count != 4 {
		t.Fatalf("flap parsed wrong: %+v", f)
	}
	if spec.DropP != 0.01 || spec.DupP != 0.005 || spec.CorruptP != 0.01 || spec.SinkFailP != 0.1 {
		t.Fatalf("probabilities parsed wrong: %+v", spec)
	}
	if spec.Stalls[0].At != 15*eventsim.Second || spec.Stalls[0].For != 3*eventsim.Second {
		t.Fatalf("stall parsed wrong: %+v", spec.Stalls[0])
	}
	// String() re-renders to a parseable, equivalent spec.
	again, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", spec.String(), err)
	}
	if again.String() != spec.String() {
		t.Fatalf("round trip changed spec: %q -> %q", spec.String(), again.String())
	}
}

func TestParseSpecEmpty(t *testing.T) {
	spec, err := ParseSpec("")
	if err != nil {
		t.Fatalf("ParseSpec(\"\"): %v", err)
	}
	if !spec.Empty() {
		t.Fatalf("empty string parsed to non-empty spec: %+v", spec)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"explode:now",                    // unknown clause
		"drop:p=1.5",                     // probability out of range
		"drop:q=0.5",                     // unknown key
		"flap:down=abc",                  // bad duration
		"flap:down=0s",                   // down must be positive
		"flap:down=2s,period=1s,count=3", // period must exceed down
		"stall:at=1s",                    // for must be positive
		"drop:p",                         // malformed pair
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", bad)
		}
	}
}

func testPacket(n int) *packet.Packet {
	return &packet.Packet{
		SrcIP:   netip.AddrFrom4([4]byte{10, 0, byte(n >> 8), byte(n)}),
		DstIP:   netip.AddrFrom4([4]byte{192, 168, 0, 1}),
		Length:  500,
		TTL:     64,
		SrcPort: uint16(1024 + n%1000),
		DstPort: 80,
	}
}

// TestMangleDeterministic: same seed and spec produce the identical
// per-packet fault sequence; the whole point of seeded chaos.
func TestMangleDeterministic(t *testing.T) {
	spec := Spec{DropP: 0.1, DupP: 0.05, CorruptP: 0.1}
	a, b := New(7, spec), New(7, spec)
	for i := 0; i < 10000; i++ {
		pa, pb := testPacket(i), testPacket(i)
		dropA, dupA := a.Mangle(pa)
		dropB, dupB := b.Mangle(pb)
		if dropA != dropB || dupA != dupB || *pa != *pb {
			t.Fatalf("packet %d diverged: drop %v/%v dup %v/%v", i, dropA, dropB, dupA, dupB)
		}
	}
	if a.PacketsDropped.Value() == 0 || a.PacketsCorrupted.Value() == 0 || a.PacketsDuplicated.Value() == 0 {
		t.Fatalf("expected all fault classes to fire over 10k packets: drop=%d corrupt=%d dup=%d",
			a.PacketsDropped.Value(), a.PacketsCorrupted.Value(), a.PacketsDuplicated.Value())
	}
	if a.PacketsDropped.Value() != b.PacketsDropped.Value() {
		t.Fatalf("drop counters diverged: %d vs %d", a.PacketsDropped.Value(), b.PacketsDropped.Value())
	}
}

// TestFlapLinkDropsAndRecovers: packets arriving while the link is
// down drop with DropLinkDown; the queue drains after recovery.
func TestFlapLinkDropsAndRecovers(t *testing.T) {
	eng := eventsim.New()
	port := netsim.NewPort(eng, queue.NewFIFO(1<<20), 1e9, nil)
	inj := New(1, Spec{})
	inj.FlapLink(eng, port, FlapSpec{First: 1 * eventsim.Second, Down: 1 * eventsim.Second, Count: 1})

	var delivered int
	port.Delivered = func(eventsim.Time, *packet.Packet) { delivered++ }
	// One packet every 100 ms for 3 s: 10 before the flap, 10 during, 10 after.
	for i := 0; i < 30; i++ {
		p := testPacket(i)
		eng.At(eventsim.Time(i)*100*eventsim.Millisecond, func(now eventsim.Time) {
			port.Inject(now, p)
		})
	}
	eng.Run()

	downDrops := port.Telemetry().DropsFor(uint8(queue.DropLinkDown))
	if downDrops != 10 {
		t.Fatalf("link-down drops = %d, want 10", downDrops)
	}
	if delivered != 20 {
		t.Fatalf("delivered = %d, want 20 (before + after the flap)", delivered)
	}
	if inj.LinkTransitions.Value() != 2 {
		t.Fatalf("link transitions = %d, want 2", inj.LinkTransitions.Value())
	}
	if !port.LinkUp() {
		t.Fatal("link should be up after the flap")
	}
}

// TestInterposerDuplicates: a DupP=1 interposer injects exactly one
// extra copy per packet (duplicates are not re-duplicated), and the
// copies are distinct packets.
func TestInterposerDuplicates(t *testing.T) {
	eng := eventsim.New()
	port := netsim.NewPort(eng, queue.NewFIFO(1<<20), 1e9, nil)
	inj := New(3, Spec{DupP: 1})
	inj.AttachInterposer(eng, port)

	seen := make(map[*packet.Packet]int)
	port.Delivered = func(_ eventsim.Time, p *packet.Packet) { seen[p]++ }
	for i := 0; i < 5; i++ {
		p := testPacket(i)
		eng.At(eventsim.Time(i)*eventsim.Millisecond, func(now eventsim.Time) {
			port.Inject(now, p)
		})
	}
	eng.Run()

	if len(seen) != 10 {
		t.Fatalf("delivered %d distinct packets, want 10 (5 originals + 5 copies)", len(seen))
	}
	for p, n := range seen {
		if n != 1 {
			t.Fatalf("packet %p delivered %d times", p, n)
		}
	}
	if inj.PacketsDuplicated.Value() != 5 {
		t.Fatalf("duplicated = %d, want 5", inj.PacketsDuplicated.Value())
	}
}

// TestStallClock: Every ticks inside the window are suppressed, After
// callbacks due inside it are delayed to the window's end, and Now is
// transparent.
func TestStallClock(t *testing.T) {
	eng := eventsim.New()
	inj := New(5, Spec{Stalls: []StallSpec{{At: 3 * eventsim.Second, For: 2 * eventsim.Second}}})
	clk := inj.ClockWrapper()(core.SimClock{Eng: eng})

	var ticks []eventsim.Time
	clk.Every(eventsim.Second, func(now eventsim.Time) { ticks = append(ticks, now) })
	var firedAt eventsim.Time
	eng.At(2500*eventsim.Millisecond, func(now eventsim.Time) {
		// Due at 3.5s — inside the window — so it must slide to 5s.
		clk.After(eventsim.Second, func(at eventsim.Time) { firedAt = at })
	})
	eng.RunUntil(8 * eventsim.Second)

	want := []eventsim.Time{1 * eventsim.Second, 2 * eventsim.Second,
		5 * eventsim.Second, 6 * eventsim.Second, 7 * eventsim.Second, 8 * eventsim.Second}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("tick %d at %v, want %v (all: %v)", i, ticks[i], want[i], ticks)
		}
	}
	if firedAt != 5*eventsim.Second {
		t.Fatalf("delayed After fired at %v, want 5s", firedAt)
	}
	if inj.PollsSuppressed.Value() != 2 {
		t.Fatalf("polls suppressed = %d, want 2 (ticks at 3s and 4s)", inj.PollsSuppressed.Value())
	}
	if inj.CallbacksDelayed.Value() != 1 {
		t.Fatalf("callbacks delayed = %d, want 1", inj.CallbacksDelayed.Value())
	}
}

// TestFaultySink: at p=1 every write is discarded and counted; at p=0
// the sink is returned unwrapped.
func TestFaultySink(t *testing.T) {
	stats := telemetry.NewQueueStats(eventsim.Second)
	inj := New(9, Spec{SinkFailP: 1})
	s := inj.WrapSink(stats)
	if s == telemetry.Sink(stats) {
		t.Fatal("p=1 should wrap the sink")
	}
	s.RecordEnqueue(0, 100, 1, 100)
	s.RecordDequeue(0, 100, 0, 0)
	s.RecordDrop(0, 100, 1)
	if got := stats.Snapshot(); got.EnqueuedPkts != 0 || got.DequeuedPkts != 0 || got.DroppedPkts != 0 {
		t.Fatalf("writes leaked through a p=1 faulty sink: %+v", got)
	}
	if inj.SinkWritesFailed.Value() != 3 {
		t.Fatalf("sink failures = %d, want 3", inj.SinkWritesFailed.Value())
	}

	clean := New(9, Spec{})
	if clean.WrapSink(stats) != telemetry.Sink(stats) {
		t.Fatal("p=0 must return the sink unchanged")
	}
}

// TestClockWrapperNilWithoutStalls: an injector without stall windows
// contributes no clock wrapper, so Config.WrapClock stays nil and the
// control plane runs on the raw clock.
func TestClockWrapperNilWithoutStalls(t *testing.T) {
	if New(1, Spec{DropP: 0.5}).ClockWrapper() != nil {
		t.Fatal("ClockWrapper must be nil when the spec has no stalls")
	}
}
