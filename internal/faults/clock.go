package faults

import (
	"accturbo/internal/core"
	"accturbo/internal/eventsim"
)

// StallClock wraps a core.Clock and simulates a stalled control loop
// during the spec's stall windows: a periodic (Every) callback due
// inside a window is suppressed — the tick the stalled loop never got
// to run — while a one-shot (After) callback scheduled to land inside
// a window is delayed to the window's end, modeling a deployment that
// eventually completes late. Now is passed through untouched.
//
// The control plane installs it via Config.WrapClock, which wraps only
// the loop's clock; the watchdog stays on the raw clock underneath, so
// supervision keeps running while the loop it guards is stalled.
type StallClock struct {
	inner   core.Clock
	windows []StallSpec // sorted by At
	inj     *Injector   // counters; never nil (see NewStallClock)
}

var _ core.Clock = (*StallClock)(nil)

// NewStallClock wraps inner with the given stall windows, counting
// suppressed and delayed callbacks on inj (a fresh injector is used
// when nil, so callers without telemetry still get a working clock).
func NewStallClock(inner core.Clock, windows []StallSpec, inj *Injector) *StallClock {
	if inj == nil {
		inj = &Injector{}
	}
	ws := make([]StallSpec, len(windows))
	copy(ws, windows)
	return &StallClock{inner: inner, windows: ws, inj: inj}
}

// stallEnd returns the end of the stall window containing t, if any.
func (c *StallClock) stallEnd(t eventsim.Time) (eventsim.Time, bool) {
	for _, w := range c.windows {
		if t >= w.At && t < w.At+w.For {
			return w.At + w.For, true
		}
	}
	return 0, false
}

// Now implements core.Clock.
func (c *StallClock) Now() eventsim.Time { return c.inner.Now() }

// After implements core.Clock: callbacks due inside a stall window are
// rescheduled to fire at the window's end.
func (c *StallClock) After(delay eventsim.Time, fn func(now eventsim.Time)) (cancel func()) {
	if end, stalled := c.stallEnd(c.inner.Now() + delay); stalled {
		c.inj.CallbacksDelayed.Inc()
		return c.inner.After(end-c.inner.Now(), fn)
	}
	return c.inner.After(delay, fn)
}

// Every implements core.Clock: ticks that land inside a stall window
// are dropped (and counted); the cadence resumes unchanged after the
// window, exactly as if the loop goroutine had been wedged and the
// missed ticks coalesced away.
func (c *StallClock) Every(interval eventsim.Time, fn func(now eventsim.Time)) (stop func()) {
	return c.inner.Every(interval, func(now eventsim.Time) {
		if _, stalled := c.stallEnd(now); stalled {
			c.inj.PollsSuppressed.Inc()
			return
		}
		fn(now)
	})
}

// ClockWrapper returns a core.Config.WrapClock hook applying the
// spec's stall windows, or nil when the spec has none — so wiring the
// injector unconditionally never perturbs an un-stalled configuration.
func (inj *Injector) ClockWrapper() func(core.Clock) core.Clock {
	if len(inj.spec.Stalls) == 0 {
		return nil
	}
	return func(c core.Clock) core.Clock {
		return NewStallClock(c, inj.spec.Stalls, inj)
	}
}
