package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"accturbo/internal/eventsim"
)

// FlapSpec describes one link-flap schedule: the link fails at First,
// recovers Down later, and the cycle repeats every Period, Count times.
type FlapSpec struct {
	First  eventsim.Time
	Down   eventsim.Time
	Period eventsim.Time
	Count  int
}

// StallSpec describes one control-plane stall window: callbacks on the
// wrapped clock due in [At, At+For) are suppressed (periodic polls) or
// delayed to the window's end (one-shot deployments).
type StallSpec struct {
	At  eventsim.Time
	For eventsim.Time
}

// Spec is a declarative fault plan, parseable from the -fault-spec
// flag syntax (see ParseSpec) and applied by an Injector.
type Spec struct {
	// Flaps are link down/up schedules (clause "flap").
	Flaps []FlapSpec
	// DropP, DupP, CorruptP are per-packet fault probabilities at the
	// ingress interposer (clauses "drop", "dup", "corrupt").
	DropP, DupP, CorruptP float64
	// Stalls are control-plane stall windows (clause "stall").
	Stalls []StallSpec
	// SinkFailP is the probability a telemetry sink write is silently
	// discarded (clause "sinkfail").
	SinkFailP float64
}

// Empty reports whether the spec injects nothing.
func (s Spec) Empty() bool {
	return len(s.Flaps) == 0 && len(s.Stalls) == 0 &&
		s.DropP <= 0 && s.DupP <= 0 && s.CorruptP <= 0 && s.SinkFailP <= 0
}

// String renders the spec back in ParseSpec's clause syntax.
func (s Spec) String() string {
	var parts []string
	for _, f := range s.Flaps {
		parts = append(parts, fmt.Sprintf("flap:first=%s,down=%s,period=%s,count=%d",
			f.First.Duration(), f.Down.Duration(), f.Period.Duration(), f.Count))
	}
	if s.DropP > 0 {
		parts = append(parts, fmt.Sprintf("drop:p=%g", s.DropP))
	}
	if s.DupP > 0 {
		parts = append(parts, fmt.Sprintf("dup:p=%g", s.DupP))
	}
	if s.CorruptP > 0 {
		parts = append(parts, fmt.Sprintf("corrupt:p=%g", s.CorruptP))
	}
	for _, w := range s.Stalls {
		parts = append(parts, fmt.Sprintf("stall:at=%s,for=%s", w.At.Duration(), w.For.Duration()))
	}
	if s.SinkFailP > 0 {
		parts = append(parts, fmt.Sprintf("sinkfail:p=%g", s.SinkFailP))
	}
	return strings.Join(parts, ";")
}

// ParseSpec parses the -fault-spec flag syntax: semicolon-separated
// clauses of the form kind:key=value,key=value. Durations use Go
// syntax ("250ms", "1.5s"); probabilities are floats in [0, 1].
//
//	flap:first=12s,down=250ms,period=20s,count=4
//	drop:p=0.01
//	dup:p=0.005
//	corrupt:p=0.01
//	stall:at=15s,for=3s        (repeatable)
//	sinkfail:p=0.1
//
// An empty string parses to the empty (inject-nothing) spec.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, body, _ := strings.Cut(clause, ":")
		kv, err := parseKV(body)
		if err != nil {
			return Spec{}, fmt.Errorf("faults: clause %q: %w", clause, err)
		}
		switch kind {
		case "flap":
			f := FlapSpec{Count: 1}
			if err := kv.apply(map[string]func(string) error{
				"first":  durInto(&f.First),
				"down":   durInto(&f.Down),
				"period": durInto(&f.Period),
				"count":  intInto(&f.Count),
			}); err != nil {
				return Spec{}, fmt.Errorf("faults: clause %q: %w", clause, err)
			}
			if f.Down <= 0 {
				return Spec{}, fmt.Errorf("faults: clause %q: down must be positive", clause)
			}
			if f.Count > 1 && f.Period <= f.Down {
				return Spec{}, fmt.Errorf("faults: clause %q: period must exceed down time", clause)
			}
			spec.Flaps = append(spec.Flaps, f)
		case "drop":
			if err := kv.apply(map[string]func(string) error{"p": probInto(&spec.DropP)}); err != nil {
				return Spec{}, fmt.Errorf("faults: clause %q: %w", clause, err)
			}
		case "dup":
			if err := kv.apply(map[string]func(string) error{"p": probInto(&spec.DupP)}); err != nil {
				return Spec{}, fmt.Errorf("faults: clause %q: %w", clause, err)
			}
		case "corrupt":
			if err := kv.apply(map[string]func(string) error{"p": probInto(&spec.CorruptP)}); err != nil {
				return Spec{}, fmt.Errorf("faults: clause %q: %w", clause, err)
			}
		case "stall":
			var w StallSpec
			if err := kv.apply(map[string]func(string) error{
				"at":  durInto(&w.At),
				"for": durInto(&w.For),
			}); err != nil {
				return Spec{}, fmt.Errorf("faults: clause %q: %w", clause, err)
			}
			if w.For <= 0 {
				return Spec{}, fmt.Errorf("faults: clause %q: for must be positive", clause)
			}
			spec.Stalls = append(spec.Stalls, w)
		case "sinkfail":
			if err := kv.apply(map[string]func(string) error{"p": probInto(&spec.SinkFailP)}); err != nil {
				return Spec{}, fmt.Errorf("faults: clause %q: %w", clause, err)
			}
		default:
			return Spec{}, fmt.Errorf("faults: unknown clause kind %q", kind)
		}
	}
	sort.Slice(spec.Stalls, func(i, j int) bool { return spec.Stalls[i].At < spec.Stalls[j].At })
	return spec, nil
}

// kvPairs is an ordered key=value list from one clause body.
type kvPairs []struct{ k, v string }

func parseKV(body string) (kvPairs, error) {
	var kv kvPairs
	if strings.TrimSpace(body) == "" {
		return kv, nil
	}
	for _, pair := range strings.Split(body, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("malformed pair %q (want key=value)", pair)
		}
		kv = append(kv, struct{ k, v string }{k, v})
	}
	return kv, nil
}

// apply dispatches each pair to its setter, rejecting unknown keys.
func (kv kvPairs) apply(setters map[string]func(string) error) error {
	for _, pair := range kv {
		set, ok := setters[pair.k]
		if !ok {
			return fmt.Errorf("unknown key %q", pair.k)
		}
		if err := set(pair.v); err != nil {
			return fmt.Errorf("key %q: %w", pair.k, err)
		}
	}
	return nil
}

func durInto(dst *eventsim.Time) func(string) error {
	return func(v string) error {
		d, err := time.ParseDuration(v)
		if err != nil {
			return err
		}
		if d < 0 {
			return fmt.Errorf("duration %s is negative", d)
		}
		*dst = eventsim.Time(d.Nanoseconds())
		return nil
	}
}

func intInto(dst *int) func(string) error {
	return func(v string) error {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		if n < 1 {
			return fmt.Errorf("count %d must be at least 1", n)
		}
		*dst = n
		return nil
	}
}

func probInto(dst *float64) func(string) error {
	return func(v string) error {
		p, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return err
		}
		if p < 0 || p > 1 {
			return fmt.Errorf("probability %g outside [0, 1]", p)
		}
		*dst = p
		return nil
	}
}
