// Package faults is the deterministic fault-injection subsystem: a
// seeded injector that exercises the failure model DESIGN.md describes
// — flapping links, lossy/duplicating/corrupting ingress, stalled
// control-plane clocks, and failing telemetry sinks — so the resilience
// machinery in internal/core (watchdog, panic boundary, fail-open) can
// be tested under reproducible chaos.
//
// Everything is driven from one seed through independent splitmix64
// streams (one per fault class, so enabling sink failures cannot
// perturb the packet-mangling sequence) and scheduled on the existing
// eventsim clock. A chaos run with the same seed and spec is therefore
// byte-identical across executions, which is what lets CI diff two runs
// as a determinism gate, exactly like the golden-hash experiment tests.
//
// The injector is strictly additive: no fault hook is installed unless
// the spec asks for it, so a zero Spec leaves every code path — and
// every golden baseline — untouched.
package faults

import (
	"accturbo/internal/eventsim"
	"accturbo/internal/netsim"
	"accturbo/internal/packet"
	"accturbo/internal/telemetry"
)

// Injector applies a Spec's faults, counting every injection in
// telemetry so experiments and the /metrics endpoint can report exactly
// how much chaos a run experienced. Per-fault-class RNG streams are
// derived from the single seed.
//
// The packet-mangling methods (Mangle, AttachInterposer) follow the
// event engine's single-goroutine discipline; the counters are
// telemetry.Counter atomics, so reading them from another goroutine
// (e.g. a metrics scrape) is safe.
type Injector struct {
	spec      Spec
	mangleRNG Rand
	sinkRNG   Rand

	// pendingDups tracks duplicate copies scheduled for re-injection so
	// the interposer passes them through un-mangled: a duplicate is
	// never dropped, corrupted or re-duplicated, which keeps the fault
	// cascade finite even at DupP=1 (see AttachInterposer).
	pendingDups map[*packet.Packet]struct{}

	// Counters of injected faults, by class.
	PacketsDropped    telemetry.Counter
	PacketsDuplicated telemetry.Counter
	PacketsCorrupted  telemetry.Counter
	LinkTransitions   telemetry.Counter
	PollsSuppressed   telemetry.Counter
	CallbacksDelayed  telemetry.Counter
	SinkWritesFailed  telemetry.Counter
}

// New builds an injector for the given seed and spec. The same
// (seed, spec) pair always produces the same fault sequence.
func New(seed uint64, spec Spec) *Injector {
	return &Injector{
		spec: spec,
		// Distinct stream constants keep the fault classes independent:
		// turning one on or off never shifts another's draws.
		mangleRNG: *NewRand(seed ^ 0x6d616e676c65), // "mangle"
		sinkRNG:   *NewRand(seed ^ 0x73696e6b6661), // "sinkfa"
	}
}

// Spec returns the spec the injector was built with.
func (inj *Injector) Spec() Spec { return inj.spec }

// Describe registers the injection counters on a telemetry registry
// under the given name prefix.
func (inj *Injector) Describe(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"_packets_dropped", &inj.PacketsDropped)
	reg.Counter(prefix+"_packets_duplicated", &inj.PacketsDuplicated)
	reg.Counter(prefix+"_packets_corrupted", &inj.PacketsCorrupted)
	reg.Counter(prefix+"_link_transitions", &inj.LinkTransitions)
	reg.Counter(prefix+"_polls_suppressed", &inj.PollsSuppressed)
	reg.Counter(prefix+"_callbacks_delayed", &inj.CallbacksDelayed)
	reg.Counter(prefix+"_sink_writes_failed", &inj.SinkWritesFailed)
}

// FlapLink schedules one flap clause against a port: the link goes
// down at First, comes back Down later, and repeats every Period,
// Count times in total. Transitions are plain scheduled events — no
// randomness — so flaps land at identical virtual times in every run.
func (inj *Injector) FlapLink(eng *eventsim.Engine, port *netsim.Port, f FlapSpec) {
	count := f.Count
	if count <= 0 {
		count = 1
	}
	for i := 0; i < count; i++ {
		at := f.First + eventsim.Time(i)*f.Period
		eng.At(at, func(t eventsim.Time) {
			inj.LinkTransitions.Inc()
			port.SetLinkState(t, false)
		})
		eng.At(at+f.Down, func(t eventsim.Time) {
			inj.LinkTransitions.Inc()
			port.SetLinkState(t, true)
		})
	}
}

// FlapLinks applies every flap clause of the spec to the port.
func (inj *Injector) FlapLinks(eng *eventsim.Engine, port *netsim.Port) {
	for _, f := range inj.spec.Flaps {
		inj.FlapLink(eng, port, f)
	}
}

// Mangle applies the spec's per-packet faults to one packet, consuming
// the mangle RNG stream: with DropP the packet should be discarded,
// with CorruptP header fields are flipped in place, and with DupP the
// caller should process the packet twice. Drop wins — a dropped packet
// is neither corrupted nor duplicated. The caller owns the duplication
// mechanics (copying, scheduling) because they differ between the
// simulator's pooled packets and the real-time pcap path.
func (inj *Injector) Mangle(p *packet.Packet) (drop, dup bool) {
	if inj.mangleRNG.Prob(inj.spec.DropP) {
		inj.PacketsDropped.Inc()
		return true, false
	}
	if inj.mangleRNG.Prob(inj.spec.CorruptP) {
		inj.corrupt(p)
	}
	if inj.mangleRNG.Prob(inj.spec.DupP) {
		inj.PacketsDuplicated.Inc()
		dup = true
	}
	return false, dup
}

// corrupt flips bits in one header field chosen by the RNG. Fields the
// clusterer keys on (ID, ports, TTL, fragment offset) are fair game;
// Length is left alone so a corrupted packet still serializes at its
// true wire size.
func (inj *Injector) corrupt(p *packet.Packet) {
	inj.PacketsCorrupted.Inc()
	bits := inj.mangleRNG.Next()
	switch bits % 5 {
	case 0:
		p.TTL ^= uint8(bits >> 8)
	case 1:
		p.ID ^= uint16(bits >> 8)
	case 2:
		p.SrcPort ^= uint16(bits >> 8)
	case 3:
		p.DstPort ^= uint16(bits >> 8)
	case 4:
		p.FragOffset ^= uint16(bits>>8) & 0x1fff
	}
}

// AttachInterposer installs the packet-mangling faults as an ingress
// stage on a simulated port, when the spec has any. Injected drops are
// rejected through the normal ingress path (recorded as policer drops
// by the port, and in PacketsDropped here). Duplicates are fresh copies
// injected by a same-time scheduled event, so the duplicate traverses
// the full port pipeline without recursing inside the original
// packet's arrival, and the packet pool sees two independently owned
// packets. The copy itself crosses the interposer un-mangled — it is
// never dropped, corrupted or re-duplicated — so the fault cascade is
// finite even at DupP=1.
func (inj *Injector) AttachInterposer(eng *eventsim.Engine, port *netsim.Port) {
	if inj.spec.DropP <= 0 && inj.spec.DupP <= 0 && inj.spec.CorruptP <= 0 {
		return
	}
	if inj.pendingDups == nil {
		inj.pendingDups = make(map[*packet.Packet]struct{})
	}
	port.AddIngress(func(now eventsim.Time, p *packet.Packet) bool {
		if _, isDup := inj.pendingDups[p]; isDup {
			delete(inj.pendingDups, p)
			return true
		}
		drop, dup := inj.Mangle(p)
		if drop {
			return false
		}
		if dup {
			c := new(packet.Packet)
			*c = *p
			inj.pendingDups[c] = struct{}{}
			eng.At(now, func(t eventsim.Time) { port.Inject(t, c) })
		}
		return true
	})
}
