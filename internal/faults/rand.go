package faults

// Rand is the package's seeded splitmix64 stream, exported so other
// fault-injection surfaces (the fleet chaos proxy, reconnect-backoff
// jitter) draw from the same deterministic generator family. Like the
// injector's internal streams, a Rand is fully determined by its seed:
// two Rands built with the same seed produce identical sequences, which
// is what lets CI diff two chaos runs as a determinism gate.
//
// Not goroutine-safe; give each concurrent consumer its own stream
// (derive per-consumer seeds with DeriveSeed so enabling one consumer
// never perturbs another's draws).
type Rand struct{ state uint64 }

// NewRand returns a splitmix64 stream seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Next returns the next 64-bit draw.
func (r *Rand) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1).
func (r *Rand) Float64() float64 { return float64(r.Next()>>11) / (1 << 53) }

// Prob reports a Bernoulli(p) trial. Degenerate probabilities do not
// consume a draw, so a disabled fault class never advances its stream.
func (r *Rand) Prob(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Intn returns a draw in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("faults: Intn needs a positive bound")
	}
	return int(r.Next() % uint64(n))
}

// DeriveSeed folds a label into a seed, producing an independent stream
// seed the way the injector derives its per-fault-class streams: the
// label is mixed through one splitmix64 round so adjacent labels (0, 1,
// 2, ...) land on uncorrelated streams.
func DeriveSeed(seed, label uint64) uint64 {
	r := Rand{state: seed ^ (label * 0x9e3779b97f4a7c15)}
	return r.Next()
}
