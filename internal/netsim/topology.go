package netsim

import (
	"fmt"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
	"accturbo/internal/traffic"
)

// Multi-hop support: ports chain into paths. The paper's local ACC and
// ACC-Turbo need only the single bottleneck port, but the pushback
// extension (internal/acc/pushback.go) rate-limits aggregates at
// upstream switches, which requires upstream links with their own
// queues.

// Chain forwards every packet delivered by src into dst after a fixed
// propagation delay, modeling a link between two switches.
func Chain(eng *eventsim.Engine, src *Port, dst *Port, propagation eventsim.Time) {
	if propagation < 0 {
		panic(fmt.Sprintf("netsim: negative propagation %v", propagation))
	}
	prev := src.Delivered
	src.Delivered = func(now eventsim.Time, p *packet.Packet) {
		if prev != nil {
			prev(now, p)
		}
		eng.After(propagation, func(t eventsim.Time) {
			dst.Inject(t, p)
		})
	}
}

// FanIn replays a source into one of several ingress ports chosen per
// packet by route, modeling traffic entering the network at different
// edge switches.
func FanIn(eng *eventsim.Engine, src traffic.Source, ports []*Port, route func(p *packet.Packet) int) {
	if len(ports) == 0 {
		panic("netsim: FanIn with no ports")
	}
	var step func(tp traffic.TimedPacket)
	step = func(tp traffic.TimedPacket) {
		at := tp.At
		if at < eng.Now() {
			at = eng.Now()
		}
		eng.At(at, func(now eventsim.Time) {
			i := route(tp.Pkt)
			if i < 0 {
				i = 0
			}
			if i >= len(ports) {
				i = len(ports) - 1
			}
			ports[i].Inject(now, tp.Pkt)
			if next, ok := src.Next(); ok {
				step(next)
			}
		})
	}
	if first, ok := src.Next(); ok {
		step(first)
	}
}
