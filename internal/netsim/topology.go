package netsim

import (
	"fmt"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
	"accturbo/internal/traffic"
)

// Multi-hop support: ports chain into paths. The paper's local ACC and
// ACC-Turbo need only the single bottleneck port, but the pushback
// extension (internal/acc/pushback.go) rate-limits aggregates at
// upstream switches, which requires upstream links with their own
// queues.

// Chain forwards every packet delivered by src into dst after a fixed
// propagation delay, modeling a link between two switches.
func Chain(eng *eventsim.Engine, src *Port, dst *Port, propagation eventsim.Time) {
	if propagation < 0 {
		panic(fmt.Sprintf("netsim: negative propagation %v", propagation))
	}
	prev := src.Delivered
	src.Delivered = func(now eventsim.Time, p *packet.Packet) {
		if prev != nil {
			prev(now, p)
		}
		eng.After(propagation, func(t eventsim.Time) {
			dst.Inject(t, p)
		})
	}
}

// FanIn replays a source into one of several ingress ports chosen per
// packet by route, modeling traffic entering the network at different
// edge switches.
func FanIn(eng *eventsim.Engine, src traffic.Source, ports []*Port, route func(p *packet.Packet) int) {
	if len(ports) == 0 {
		panic("netsim: FanIn with no ports")
	}
	if first, ok := src.Next(); ok {
		f := &fanIn{eng: eng, src: src, ports: ports, route: route}
		f.schedule(first)
	}
}

// fanIn is FanIn's iteration state, the multi-port analogue of
// replayer: one allocation per replay, no per-packet closures.
type fanIn struct {
	eng     *eventsim.Engine
	src     traffic.Source
	ports   []*Port
	route   func(p *packet.Packet) int
	pending traffic.TimedPacket
}

func (f *fanIn) schedule(tp traffic.TimedPacket) {
	at := tp.At
	if at < f.eng.Now() {
		at = f.eng.Now()
	}
	f.pending = tp
	f.eng.ScheduleArg(at, fanInStep, f)
}

func fanInStep(now eventsim.Time, arg any) {
	f := arg.(*fanIn)
	i := f.route(f.pending.Pkt)
	if i < 0 {
		i = 0
	}
	if i >= len(f.ports) {
		i = len(f.ports) - 1
	}
	f.ports[i].Inject(now, f.pending.Pkt)
	if next, ok := f.src.Next(); ok {
		f.schedule(next)
	}
}
