package netsim

import (
	"testing"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
	"accturbo/internal/queue"
	"accturbo/internal/traffic"
)

func aimdConfig(flowID uint32, start, end eventsim.Time) AIMDConfig {
	return AIMDConfig{
		SrcIP: packet.V4Addr{172, 16, 0, byte(flowID)}, DstIP: packet.V4Addr{198, 18, 0, byte(flowID)},
		SrcPort: uint16(10_000 + flowID), DstPort: 443,
		Size: 1000, RTT: 10 * eventsim.Millisecond,
		Start: start, End: end, FlowID: flowID, Seed: int64(flowID),
	}
}

func TestAIMDSaturatesAnIdleLink(t *testing.T) {
	eng := eventsim.New()
	rec := NewRecorder(eventsim.Second)
	port := NewPort(eng, queue.NewFIFO(125_000), 10e6, rec)
	a := NewAIMD(eng, port, aimdConfig(1, 0, 10*eventsim.Second))
	eng.RunUntil(11 * eventsim.Second)

	// A single AIMD flow on an empty 10 Mbps link should reach a good
	// fraction of capacity (window growth + halving oscillation).
	if g := a.Goodput(); g < 5e6 {
		t.Fatalf("goodput %v bps, want > 5 Mbps on an idle 10 Mbps link", g)
	}
	if a.Lost == 0 {
		t.Fatal("a saturating flow must see losses (buffer overflow)")
	}
	if len(a.WindowTrace) == 0 {
		t.Fatal("window trace empty")
	}
	if a.Acked > a.Sent {
		t.Fatalf("acked %d > sent %d", a.Acked, a.Sent)
	}
}

func TestAIMDBacksOffUnderFlood(t *testing.T) {
	run := func(defended bool) float64 {
		eng := eventsim.New()
		rec := NewRecorder(eventsim.Second)
		var port *Port
		if defended {
			pq := queue.NewPriority(2, 62_500, func(_ eventsim.Time, p *packet.Packet) int {
				if p.Label == packet.Malicious {
					return 1
				}
				return 0
			})
			port = NewPort(eng, pq, 10e6, rec)
		} else {
			port = NewPort(eng, queue.NewFIFO(125_000), 10e6, rec)
		}
		a := NewAIMD(eng, port, aimdConfig(1, 0, 20*eventsim.Second))
		// Flood from t=5 s at 5x the link rate.
		flood := traffic.FlowSpec{
			SrcIP: packet.V4Addr{9, 9, 9, 9}, DstIP: packet.V4Addr{10, 0, 5, 1},
			Protocol: packet.ProtoUDP, SrcPort: 123, DstPort: 80, TTL: 54, Size: 1000,
			Label: packet.Malicious, FlowID: 5,
		}
		Replay(eng, traffic.NewCBR(5*eventsim.Second, 20*eventsim.Second, 50e6, flood.Factory(2)), port)
		eng.RunUntil(21 * eventsim.Second)
		return a.Goodput()
	}
	undefended := run(false)
	defended := run(true)
	// The paper's point: with congestion control in the loop, an
	// undefended flood collapses benign goodput; a scheduling defense
	// preserves it.
	if undefended > defended/2 {
		t.Fatalf("flood should collapse undefended AIMD goodput: undefended %v vs defended %v",
			undefended, defended)
	}
	if defended < 4e6 {
		t.Fatalf("defended goodput %v too low", defended)
	}
}

func TestAIMDTwoFlowsShareFairly(t *testing.T) {
	eng := eventsim.New()
	rec := NewRecorder(eventsim.Second)
	port := NewPort(eng, queue.NewFIFO(125_000), 10e6, rec)
	a := NewAIMD(eng, port, aimdConfig(1, 0, 15*eventsim.Second))
	b := NewAIMD(eng, port, aimdConfig(2, 0, 15*eventsim.Second))
	eng.RunUntil(16 * eventsim.Second)
	ga, gb := a.Goodput(), b.Goodput()
	if ga <= 0 || gb <= 0 {
		t.Fatalf("goodputs: %v %v", ga, gb)
	}
	ratio := ga / gb
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("unfair share: %v vs %v (ratio %v)", ga, gb, ratio)
	}
}

func TestAIMDValidation(t *testing.T) {
	eng := eventsim.New()
	port := NewPort(eng, queue.NewFIFO(1000), 1e6, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAIMD(eng, port, AIMDConfig{Start: 5, End: 5})
}
