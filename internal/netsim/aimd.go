package netsim

import (
	"fmt"
	"math/rand"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
)

// AIMD is a closed-loop, congestion-controlled sender — the end-host
// behaviour the paper's trace replay cannot capture ("we are replaying
// traffic traces and do not see the impact of end-host congestion
// control. With the effect of congestion control, performance would
// worsen even further", §7.1).
//
// The model is a standard TCP-like additive-increase /
// multiplicative-decrease window: the sender keeps up to cwnd segments
// in flight; each delivery acks one segment after a fixed RTT and
// grows the window (slow start below ssthresh, congestion avoidance
// above); each loss halves it. Losses are observed exactly via the
// port's drop hook, standing in for duplicate acks — real timeout
// dynamics would only amplify the effect being measured.
type AIMD struct {
	eng  *eventsim.Engine
	port *Port
	cfg  AIMDConfig
	rng  *rand.Rand

	cwnd     float64
	ssthresh float64
	inFlight int
	timerSet bool
	pool     *packet.Pool

	// Sent, Acked, Lost count segments since construction.
	Sent, Acked, Lost uint64
	// WindowTrace samples cwnd once per RTT, for diagnostics.
	WindowTrace []float64
}

// AIMDConfig parameterizes a sender.
type AIMDConfig struct {
	// SrcIP/DstIP/ports form the connection 5-tuple.
	SrcIP, DstIP     packet.V4Addr
	SrcPort, DstPort uint16
	// Size is the segment size in bytes (default 1460).
	Size uint16
	// RTT is the feedback delay between delivery and ack (default
	// 20 ms).
	RTT eventsim.Time
	// Start and End bound the transmission.
	Start, End eventsim.Time
	// InitialWindow and MaxWindow bound cwnd in segments (defaults 2
	// and 256).
	InitialWindow, MaxWindow float64
	// FlowID labels the connection for accounting and MUST be unique
	// among AIMD senders sharing a port: it is how each sender
	// recognizes its own segments in the shared hooks.
	FlowID uint32
	// Seed drives pacing jitter.
	Seed int64
}

// NewAIMD builds and arms a sender injecting into the port.
func NewAIMD(eng *eventsim.Engine, port *Port, cfg AIMDConfig) *AIMD {
	if cfg.Size == 0 {
		cfg.Size = 1460
	}
	if cfg.RTT <= 0 {
		cfg.RTT = 20 * eventsim.Millisecond
	}
	if cfg.InitialWindow <= 0 {
		cfg.InitialWindow = 2
	}
	if cfg.MaxWindow <= 0 {
		cfg.MaxWindow = 256
	}
	if cfg.End <= cfg.Start {
		panic(fmt.Sprintf("netsim: AIMD window empty: %v..%v", cfg.Start, cfg.End))
	}
	a := &AIMD{
		eng:      eng,
		port:     port,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		cwnd:     cfg.InitialWindow,
		ssthresh: cfg.MaxWindow / 2,
	}

	// Chain the port hooks, claiming only this sender's segments.
	prevDelivered := port.Delivered
	port.Delivered = func(now eventsim.Time, p *packet.Packet) {
		if prevDelivered != nil {
			prevDelivered(now, p)
		}
		if p.FlowID == cfg.FlowID && p.Protocol == packet.ProtoTCP {
			eng.AfterArg(cfg.RTT, aimdAck, a)
		}
	}
	prevDropped := port.Dropped
	port.Dropped = func(now eventsim.Time, p *packet.Packet) {
		if prevDropped != nil {
			prevDropped(now, p)
		}
		if p.FlowID == cfg.FlowID && p.Protocol == packet.ProtoTCP {
			a.onLoss(now)
		}
	}

	eng.ScheduleArg(cfg.Start, aimdPump, a)
	eng.Every(cfg.RTT, func(now eventsim.Time) {
		if now >= cfg.Start && now < cfg.End {
			a.WindowTrace = append(a.WindowTrace, a.cwnd)
		}
	})
	return a
}

// aimdAck and aimdPump are the sender's event trampolines; carrying
// the AIMD itself as the argument keeps the per-segment ack timer and
// the pacing timer allocation-free.
func aimdAck(t eventsim.Time, arg any) { arg.(*AIMD).onAck(t) }

func aimdPump(t eventsim.Time, arg any) { arg.(*AIMD).pump(t) }

// SetPool recycles this sender's segments through pool. Use the same
// pool attached to the port so segments released at delivery/drop are
// the ones re-stamped here.
func (a *AIMD) SetPool(pool *packet.Pool) { a.pool = pool }

// mkPacket stamps one segment.
func (a *AIMD) mkPacket() *packet.Packet {
	var p *packet.Packet
	if a.pool != nil {
		p = a.pool.Get()
	} else {
		p = &packet.Packet{}
	}
	*p = packet.Packet{
		SrcIP:    a.cfg.SrcIP.Addr(),
		DstIP:    a.cfg.DstIP.Addr(),
		Protocol: packet.ProtoTCP,
		SrcPort:  a.cfg.SrcPort,
		DstPort:  a.cfg.DstPort,
		TTL:      64,
		Length:   a.cfg.Size,
		Flags:    packet.FlagACK,
		ID:       uint16(a.Sent),
		Label:    packet.Benign,
		FlowID:   a.cfg.FlowID,
	}
	return p
}

// pump sends while the window allows and re-arms a single timer, so
// the connection survives total-loss phases (modeling retransmission
// timeouts) without multiplying timer chains.
func (a *AIMD) pump(now eventsim.Time) {
	a.timerSet = false
	if now >= a.cfg.End {
		return
	}
	a.sendWindow(now)
	a.armTimer()
}

// sendWindow fills the congestion window. Attempts are bounded per
// call: a synchronous drop (full queue) reduces inFlight from inside
// Inject, which would otherwise keep this loop running forever at a
// single instant.
func (a *AIMD) sendWindow(now eventsim.Time) {
	limit := int(a.cfg.MaxWindow) + 1
	for attempts := 0; a.inFlight < int(a.cwnd) && attempts < limit; attempts++ {
		a.inFlight++
		a.Sent++
		a.port.Inject(now, a.mkPacket())
	}
}

// armTimer schedules exactly one pending pump.
func (a *AIMD) armTimer() {
	if a.timerSet {
		return
	}
	a.timerSet = true
	jitter := eventsim.Time(a.rng.Int63n(int64(a.cfg.RTT / 4)))
	a.eng.AfterArg(a.cfg.RTT+jitter, aimdPump, a)
}

// onAck grows the window: slow start below ssthresh, then congestion
// avoidance.
func (a *AIMD) onAck(now eventsim.Time) {
	if a.inFlight > 0 {
		a.inFlight--
	}
	a.Acked++
	if a.cwnd < a.ssthresh {
		a.cwnd++
	} else {
		a.cwnd += 1 / a.cwnd
	}
	if a.cwnd > a.cfg.MaxWindow {
		a.cwnd = a.cfg.MaxWindow
	}
	if now < a.cfg.End {
		// Ack-clocked transmission: send immediately, no extra timer.
		a.sendWindow(now)
	}
}

// onLoss halves the window (multiplicative decrease).
func (a *AIMD) onLoss(eventsim.Time) {
	if a.inFlight > 0 {
		a.inFlight--
	}
	a.Lost++
	a.ssthresh = a.cwnd / 2
	if a.ssthresh < 1 {
		a.ssthresh = 1
	}
	a.cwnd = a.ssthresh
}

// Goodput returns acked bits per second over the send window.
func (a *AIMD) Goodput() float64 {
	dur := (a.cfg.End - a.cfg.Start).Seconds()
	if dur <= 0 {
		return 0
	}
	return float64(a.Acked) * float64(a.cfg.Size) * 8 / dur
}
