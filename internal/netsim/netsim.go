// Package netsim models the network elements of the evaluation: an
// output port (bottleneck link) driven by a queueing discipline, a
// per-second statistics recorder with ground-truth attribution, and a
// trace replayer that feeds traffic sources into the event engine.
//
// The paper's experiments all share one topology — traffic converges on
// a switch whose output link is the bottleneck — so the substrate
// models that port precisely (line-rate serialization, qdisc-governed
// buffering) rather than a general topology.
package netsim

import (
	"fmt"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
	"accturbo/internal/queue"
	"accturbo/internal/traffic"
)

// Ingress processes a packet before it reaches the output queue (rate
// limiters, policers). Returning false drops the packet at the policer.
// Stages that only need to observe-and-classify (ACC-Turbo's clustering)
// belong in the qdisc's classifier instead, where the assignment and the
// queue choice happen in one explicit step.
type Ingress func(now eventsim.Time, p *packet.Packet) bool

// Port is an output port: an ingress pipeline, a queueing discipline,
// and a transmitter draining it at a fixed line rate.
type Port struct {
	eng     *eventsim.Engine
	qdisc   queue.Qdisc
	rate    float64 // bits per nanosecond... stored as bits/sec
	ingress []Ingress
	rec     *Recorder
	busy    bool

	// Delivered is invoked for every packet that finishes
	// serialization (the sink side), after recording.
	Delivered func(now eventsim.Time, p *packet.Packet)
	// Dropped is invoked for every packet rejected anywhere in the
	// port (policer or qdisc), after recording. Closed-loop senders
	// (AIMD) use it as their loss signal.
	Dropped func(now eventsim.Time, p *packet.Packet)
}

// NewPort builds a port transmitting at rateBits over the given qdisc.
// The recorder may be nil when no accounting is needed.
func NewPort(eng *eventsim.Engine, q queue.Qdisc, rateBits float64, rec *Recorder) *Port {
	if rateBits <= 0 {
		panic(fmt.Sprintf("netsim: port rate %v must be positive", rateBits))
	}
	if q == nil {
		panic("netsim: nil qdisc")
	}
	p := &Port{eng: eng, qdisc: q, rate: rateBits, rec: rec}
	// Report every qdisc-level drop (tail, early, push-out) to the
	// recorder and the Dropped hook, whatever the discipline.
	type dropHook interface{ OnDrop(queue.DropFunc) }
	if dh, ok := q.(dropHook); ok {
		dh.OnDrop(func(now eventsim.Time, pkt *packet.Packet, reason queue.DropReason) {
			if p.rec != nil {
				p.rec.Dropped(now, pkt, reason)
			}
			if p.Dropped != nil {
				p.Dropped(now, pkt)
			}
		})
	}
	return p
}

// RateBits returns the configured line rate.
func (p *Port) RateBits() float64 { return p.rate }

// Qdisc returns the attached discipline.
func (p *Port) Qdisc() queue.Qdisc { return p.qdisc }

// AddIngress appends a stage to the ingress pipeline; stages run in
// registration order.
func (p *Port) AddIngress(f Ingress) {
	if f == nil {
		panic("netsim: nil ingress stage")
	}
	p.ingress = append(p.ingress, f)
}

// Inject offers a packet to the port at the current virtual time.
func (p *Port) Inject(now eventsim.Time, pkt *packet.Packet) {
	if p.rec != nil {
		p.rec.Arrival(now, pkt)
	}
	for _, stage := range p.ingress {
		if !stage(now, pkt) {
			if p.rec != nil {
				p.rec.Dropped(now, pkt, queue.DropPolicer)
			}
			if p.Dropped != nil {
				p.Dropped(now, pkt)
			}
			return
		}
	}
	if p.qdisc.Enqueue(now, pkt) != queue.DropNone {
		// Drop already recorded via the qdisc hook (or ignored when no
		// recorder is attached).
		return
	}
	p.pump(now)
}

// pump starts transmitting if the line is idle.
func (p *Port) pump(now eventsim.Time) {
	if p.busy {
		return
	}
	pkt := p.qdisc.Dequeue(now)
	if pkt == nil {
		return
	}
	p.busy = true
	txTime := eventsim.Time(float64(pkt.Size()*8) / p.rate * float64(eventsim.Second))
	if txTime < 1 {
		txTime = 1
	}
	p.eng.After(txTime, func(t eventsim.Time) {
		p.busy = false
		if p.rec != nil {
			p.rec.Delivered(t, pkt)
		}
		if p.Delivered != nil {
			p.Delivered(t, pkt)
		}
		p.pump(t)
	})
}

// Replay schedules every packet of src as an arrival at the port,
// chaining events so only one pending arrival exists at a time.
func Replay(eng *eventsim.Engine, src traffic.Source, port *Port) {
	var step func(tp traffic.TimedPacket)
	step = func(tp traffic.TimedPacket) {
		at := tp.At
		if at < eng.Now() {
			at = eng.Now()
		}
		eng.At(at, func(now eventsim.Time) {
			port.Inject(now, tp.Pkt)
			if next, ok := src.Next(); ok {
				step(next)
			}
		})
	}
	if first, ok := src.Next(); ok {
		step(first)
	}
}
