// Package netsim models the network elements of the evaluation: an
// output port (bottleneck link) driven by a queueing discipline, a
// per-second statistics recorder with ground-truth attribution, and a
// trace replayer that feeds traffic sources into the event engine.
//
// The paper's experiments all share one topology — traffic converges on
// a switch whose output link is the bottleneck — so the substrate
// models that port precisely (line-rate serialization, qdisc-governed
// buffering) rather than a general topology.
//
// Accounting is layered on the shared telemetry substrate
// (internal/telemetry): every port wires a telemetry.QueueStats into
// its qdisc and meters offered/delivered rates, and the Recorder —
// which adds the ground-truth attribution (benign vs malicious) the
// experiment series need — is an Accounting implementation whose
// totals are telemetry counters. Ports never branch on nil accounting:
// a port without a recorder runs the package no-op.
package netsim

import (
	"fmt"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
	"accturbo/internal/queue"
	"accturbo/internal/telemetry"
	"accturbo/internal/traffic"
)

// Ingress processes a packet before it reaches the output queue (rate
// limiters, policers). Returning false drops the packet at the policer.
// Stages that only need to observe-and-classify (ACC-Turbo's clustering)
// belong in the qdisc's classifier instead, where the assignment and the
// queue choice happen in one explicit step.
type Ingress func(now eventsim.Time, p *packet.Packet) bool

// Accounting observes every port-level packet event with access to the
// packet itself (for label/flow attribution). The Recorder is the
// standard implementation; ports without one run a no-op, so the hot
// path never tests for nil.
type Accounting interface {
	// Arrival observes a packet offered to the port, before ingress.
	Arrival(now eventsim.Time, p *packet.Packet)
	// Delivered observes a packet that finished serialization.
	Delivered(now eventsim.Time, p *packet.Packet)
	// Dropped observes a packet rejected anywhere in the port.
	Dropped(now eventsim.Time, p *packet.Packet, reason queue.DropReason)
}

// nopAccounting ignores all events.
type nopAccounting struct{}

func (nopAccounting) Arrival(eventsim.Time, *packet.Packet)                   {}
func (nopAccounting) Delivered(eventsim.Time, *packet.Packet)                 {}
func (nopAccounting) Dropped(eventsim.Time, *packet.Packet, queue.DropReason) {}

// noAccounting is the package-level no-op every unrecorded port shares.
var noAccounting Accounting = nopAccounting{}

// Port is an output port: an ingress pipeline, a queueing discipline,
// and a transmitter draining it at a fixed line rate.
type Port struct {
	eng     *eventsim.Engine
	qdisc   queue.Qdisc
	rate    float64 // bits per nanosecond... stored as bits/sec
	ingress []Ingress
	acct    Accounting // never nil; see Accounting
	busy    bool
	// down marks the link failed (administratively or by fault
	// injection). While down, arrivals drop with queue.DropLinkDown and
	// the transmitter stays idle; already-queued packets survive and
	// drain when the link recovers.
	down bool
	// inflight is the packet currently serializing; the transmit-done
	// event carries the Port itself, so per-packet transmission needs
	// no closure.
	inflight *packet.Packet
	// pool, when set, receives every packet the port terminates
	// (delivered or dropped); see SetPool.
	pool *packet.Pool

	// stats is the label-agnostic queue accounting wired into the
	// qdisc's telemetry sink; offered/delivered meter the port's load
	// and goodput per second of the port's timeline.
	stats     *telemetry.QueueStats
	offered   *telemetry.RateMeter
	delivered *telemetry.RateMeter

	// Delivered is invoked for every packet that finishes
	// serialization (the sink side), after recording.
	Delivered func(now eventsim.Time, p *packet.Packet)
	// Dropped is invoked for every packet rejected anywhere in the
	// port (policer or qdisc), after recording. Closed-loop senders
	// (AIMD) use it as their loss signal.
	Dropped func(now eventsim.Time, p *packet.Packet)
}

// NewPort builds a port transmitting at rateBits over the given qdisc.
// The recorder may be nil when no attribution is needed; telemetry
// accounting (Telemetry, OfferedRate, DeliveredRate) runs either way.
func NewPort(eng *eventsim.Engine, q queue.Qdisc, rateBits float64, rec *Recorder) *Port {
	if rateBits <= 0 {
		panic(fmt.Sprintf("netsim: port rate %v must be positive", rateBits))
	}
	if q == nil {
		panic("netsim: nil qdisc")
	}
	p := &Port{
		eng:       eng,
		qdisc:     q,
		rate:      rateBits,
		acct:      noAccounting,
		stats:     telemetry.NewQueueStats(eventsim.Second),
		offered:   telemetry.NewRateMeter(eventsim.Second),
		delivered: telemetry.NewRateMeter(eventsim.Second),
	}
	if rec != nil {
		p.acct = rec
	}
	// Wire the shared queue accounting into the discipline. Every qdisc
	// in internal/queue is Instrumented (compile-time checked there);
	// the assertion keeps foreign test disciplines usable.
	if iq, ok := q.(queue.Instrumented); ok {
		iq.SetSink(p.stats)
	}
	// Report every qdisc-level drop (tail, early, push-out) to the
	// accounting and the Dropped hook, whatever the discipline. All
	// package disciplines implement queue.DropNotifier; a custom qdisc
	// that does not will simply not feed drop attribution.
	if dh, ok := q.(queue.DropNotifier); ok {
		dh.OnDrop(func(now eventsim.Time, pkt *packet.Packet, reason queue.DropReason) {
			p.acct.Dropped(now, pkt, reason)
			if p.Dropped != nil {
				p.Dropped(now, pkt)
			}
			p.release(pkt)
		})
	}
	return p
}

// SetPool makes the port the release point of the packet lifecycle:
// every packet it terminates — delivered after serialization, or
// dropped at the policer or inside the qdisc — is returned to the pool
// after all accounting and hooks have seen it. Only attach a pool to a
// terminal (sink) port: a port whose Delivered hook re-injects packets
// downstream (Chain) must not recycle them.
func (p *Port) SetPool(pool *packet.Pool) { p.pool = pool }

func (p *Port) release(pkt *packet.Packet) {
	if p.pool != nil {
		p.pool.Put(pkt)
	}
}

// RateBits returns the configured line rate.
func (p *Port) RateBits() float64 { return p.rate }

// LinkUp reports whether the link is up. Ports start up.
func (p *Port) LinkUp() bool { return !p.down }

// SetLinkState fails or restores the link at virtual time now. While
// down, every arriving packet is dropped with queue.DropLinkDown —
// recorded through the same accounting path as qdisc drops, but under
// its own reason so fault-induced loss stays distinguishable from
// congestion loss — and the transmitter idles. Restoring the link
// resumes draining whatever the qdisc still holds. A packet already
// serializing when the link fails completes (the loss of a single
// in-flight frame is below the model's resolution).
func (p *Port) SetLinkState(now eventsim.Time, up bool) {
	if p.down == !up {
		return // no transition
	}
	p.down = !up
	if up {
		p.pump(now)
	}
}

// Qdisc returns the attached discipline.
func (p *Port) Qdisc() queue.Qdisc { return p.qdisc }

// Telemetry returns the port's queue accounting: enqueue/dequeue/drop
// counters, depth gauges and the drain-rate meter fed by the qdisc,
// plus policer drops recorded by the port itself.
func (p *Port) Telemetry() *telemetry.QueueStats { return p.stats }

// OfferedRate returns the last completed one-second window of offered
// load (packets injected, pre-policer).
func (p *Port) OfferedRate() telemetry.RateSnapshot { return p.offered.Snapshot() }

// DeliveredRate returns the last completed one-second window of
// delivered throughput.
func (p *Port) DeliveredRate() telemetry.RateSnapshot { return p.delivered.Snapshot() }

// AddIngress appends a stage to the ingress pipeline; stages run in
// registration order.
func (p *Port) AddIngress(f Ingress) {
	if f == nil {
		panic("netsim: nil ingress stage")
	}
	p.ingress = append(p.ingress, f)
}

// Inject offers a packet to the port at the current virtual time.
func (p *Port) Inject(now eventsim.Time, pkt *packet.Packet) {
	p.acct.Arrival(now, pkt)
	p.offered.Observe(now, 1, uint64(pkt.Size()))
	if p.down {
		p.stats.RecordDrop(now, pkt.Size(), uint8(queue.DropLinkDown))
		p.acct.Dropped(now, pkt, queue.DropLinkDown)
		if p.Dropped != nil {
			p.Dropped(now, pkt)
		}
		p.release(pkt)
		return
	}
	for _, stage := range p.ingress {
		if !stage(now, pkt) {
			p.stats.RecordDrop(now, pkt.Size(), uint8(queue.DropPolicer))
			p.acct.Dropped(now, pkt, queue.DropPolicer)
			if p.Dropped != nil {
				p.Dropped(now, pkt)
			}
			p.release(pkt)
			return
		}
	}
	if p.qdisc.Enqueue(now, pkt) != queue.DropNone {
		// Drop already recorded via the qdisc's sink and drop hook.
		return
	}
	p.pump(now)
}

// pump starts transmitting if the line is idle.
func (p *Port) pump(now eventsim.Time) {
	if p.busy || p.down {
		return
	}
	pkt := p.qdisc.Dequeue(now)
	if pkt == nil {
		return
	}
	p.busy = true
	p.inflight = pkt
	txTime := eventsim.Time(float64(pkt.Size()*8) / p.rate * float64(eventsim.Second))
	if txTime < 1 {
		txTime = 1
	}
	p.eng.AfterArg(txTime, portTxDone, p)
}

// portTxDone completes one serialization: the event argument is the
// Port, the packet rides in Port.inflight, so the per-packet transmit
// event is allocation-free.
func portTxDone(t eventsim.Time, arg any) {
	p := arg.(*Port)
	pkt := p.inflight
	p.inflight = nil
	p.busy = false
	p.delivered.Observe(t, 1, uint64(pkt.Size()))
	p.acct.Delivered(t, pkt)
	if p.Delivered != nil {
		p.Delivered(t, pkt)
	}
	p.release(pkt)
	p.pump(t)
}

// replayer carries Replay's iteration state so each arrival reschedules
// through ScheduleArg without a fresh closure.
type replayer struct {
	eng     *eventsim.Engine
	src     traffic.Source
	port    *Port
	pending traffic.TimedPacket
}

func (r *replayer) schedule(tp traffic.TimedPacket) {
	at := tp.At
	if at < r.eng.Now() {
		at = r.eng.Now()
	}
	r.pending = tp
	r.eng.ScheduleArg(at, replayStep, r)
}

func replayStep(now eventsim.Time, arg any) {
	r := arg.(*replayer)
	r.port.Inject(now, r.pending.Pkt)
	if next, ok := r.src.Next(); ok {
		r.schedule(next)
	}
}

// Replay schedules every packet of src as an arrival at the port,
// chaining events so only one pending arrival exists at a time. The
// whole replay allocates once, regardless of trace length.
func Replay(eng *eventsim.Engine, src traffic.Source, port *Port) {
	if first, ok := src.Next(); ok {
		r := &replayer{eng: eng, src: src, port: port}
		r.schedule(first)
	}
}
