package netsim

import (
	"fmt"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
	"accturbo/internal/queue"
	"accturbo/internal/telemetry"
)

// Recorder accumulates time-binned traffic statistics with ground-truth
// attribution. Every experiment series in the paper (bandwidth shares,
// drop rates, benign-drop percentages, reaction times) is derived from
// a Recorder.
//
// The Recorder is the attribution adapter over the shared telemetry
// layer: its since-construction totals are telemetry.Counters (readable
// concurrently, exportable through a telemetry.Registry via Describe),
// while the per-bin series and per-flow/per-packet maps — which need
// the packet headers the label-agnostic telemetry sinks never see —
// stay local. It implements the port's Accounting interface.
type Recorder struct {
	binWidth eventsim.Time
	bins     []binStats
	perFlow  map[uint32][]uint64 // FlowID -> delivered bytes per bin

	seqNext map[uint32]uint64 // FlowID -> next arrival sequence
	seqMax  map[uint32]uint64 // FlowID -> highest delivered sequence

	arrivedAt map[*packet.Packet]eventsim.Time
	delaySum  [2]eventsim.Time // per label
	delayMax  [2]eventsim.Time

	// Totals since construction (packets), indexed by label.
	arrived   [2]telemetry.Counter
	dropped   [2]telemetry.Counter
	delivered [2]telemetry.Counter
	reordered telemetry.Counter
}

var _ Accounting = (*Recorder)(nil)

type binStats struct {
	arrivedBytes   [2]uint64 // indexed by label
	deliveredBytes [2]uint64
	droppedBytes   [2]uint64
	arrivedPkts    [2]uint64
	deliveredPkts  [2]uint64
	droppedPkts    [2]uint64
}

// NewRecorder creates a recorder with the given bin width (typically
// one second, matching the paper's plots).
func NewRecorder(binWidth eventsim.Time) *Recorder {
	if binWidth <= 0 {
		panic(fmt.Sprintf("netsim: bin width %v must be positive", binWidth))
	}
	return &Recorder{
		binWidth:  binWidth,
		perFlow:   map[uint32][]uint64{},
		seqNext:   map[uint32]uint64{},
		seqMax:    map[uint32]uint64{},
		arrivedAt: map[*packet.Packet]eventsim.Time{},
	}
}

// BinWidth returns the configured bin width.
func (r *Recorder) BinWidth() eventsim.Time { return r.binWidth }

// ArrivedBenign returns the total benign packets offered.
func (r *Recorder) ArrivedBenign() uint64 { return r.arrived[0].Value() }

// ArrivedMalicious returns the total malicious packets offered.
func (r *Recorder) ArrivedMalicious() uint64 { return r.arrived[1].Value() }

// DroppedBenign returns the total benign packets dropped.
func (r *Recorder) DroppedBenign() uint64 { return r.dropped[0].Value() }

// DroppedMalicious returns the total malicious packets dropped.
func (r *Recorder) DroppedMalicious() uint64 { return r.dropped[1].Value() }

// DeliveredBenignPkts returns the total benign packets delivered.
func (r *Recorder) DeliveredBenignPkts() uint64 { return r.delivered[0].Value() }

// DeliveredMaliciousPkts returns the total malicious packets delivered.
func (r *Recorder) DeliveredMaliciousPkts() uint64 { return r.delivered[1].Value() }

// Reordered returns delivered packets that left after a same-flow
// packet that arrived later (§10's reordering discussion).
func (r *Recorder) Reordered() uint64 { return r.reordered.Value() }

// Describe registers the recorder's totals on a telemetry registry
// under the given name prefix, so simulator runs export through the
// same text exposition as the real-time pipeline.
func (r *Recorder) Describe(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"_arrived_benign_pkts", &r.arrived[0])
	reg.Counter(prefix+"_arrived_malicious_pkts", &r.arrived[1])
	reg.Counter(prefix+"_dropped_benign_pkts", &r.dropped[0])
	reg.Counter(prefix+"_dropped_malicious_pkts", &r.dropped[1])
	reg.Counter(prefix+"_delivered_benign_pkts", &r.delivered[0])
	reg.Counter(prefix+"_delivered_malicious_pkts", &r.delivered[1])
	reg.Counter(prefix+"_reordered_pkts", &r.reordered)
}

// Bins returns the number of bins touched so far.
func (r *Recorder) Bins() int { return len(r.bins) }

func (r *Recorder) bin(now eventsim.Time) *binStats {
	i := int(now / r.binWidth)
	for len(r.bins) <= i {
		r.bins = append(r.bins, binStats{})
	}
	return &r.bins[i]
}

// Arrival records a packet offered to the port and stamps its per-flow
// arrival sequence number (used for reordering detection).
func (r *Recorder) Arrival(now eventsim.Time, p *packet.Packet) {
	r.seqNext[p.FlowID]++
	p.Seq = r.seqNext[p.FlowID]
	r.arrivedAt[p] = now
	b := r.bin(now)
	l := labelIndex(p)
	b.arrivedBytes[l] += uint64(p.Size())
	b.arrivedPkts[l]++
	r.arrived[l].Inc()
}

// Delivered records a packet that completed transmission.
func (r *Recorder) Delivered(now eventsim.Time, p *packet.Packet) {
	if p.Seq > 0 {
		if p.Seq < r.seqMax[p.FlowID] {
			r.reordered.Inc()
		} else {
			r.seqMax[p.FlowID] = p.Seq
		}
	}
	if at, ok := r.arrivedAt[p]; ok {
		d := now - at
		li := labelIndex(p)
		r.delaySum[li] += d
		if d > r.delayMax[li] {
			r.delayMax[li] = d
		}
		delete(r.arrivedAt, p)
	}
	b := r.bin(now)
	l := labelIndex(p)
	b.deliveredBytes[l] += uint64(p.Size())
	b.deliveredPkts[l]++
	r.delivered[l].Inc()
	i := int(now / r.binWidth)
	s := r.perFlow[p.FlowID]
	for len(s) <= i {
		s = append(s, 0)
	}
	s[i] += uint64(p.Size())
	r.perFlow[p.FlowID] = s
}

// Dropped records a packet rejected anywhere in the port (policer,
// early drop, tail drop, push-out).
func (r *Recorder) Dropped(now eventsim.Time, p *packet.Packet, _ queue.DropReason) {
	delete(r.arrivedAt, p)
	b := r.bin(now)
	l := labelIndex(p)
	b.droppedBytes[l] += uint64(p.Size())
	b.droppedPkts[l]++
	r.dropped[l].Inc()
}

func labelIndex(p *packet.Packet) int {
	if p.Label == packet.Malicious {
		return 1
	}
	return 0
}

// DeliveredBits returns per-bin delivered throughput in bits/second for
// the given label class.
func (r *Recorder) DeliveredBits(label packet.Label) []float64 {
	out := make([]float64, len(r.bins))
	scale := 8 / r.binWidth.Seconds()
	for i, b := range r.bins {
		out[i] = float64(b.deliveredBytes[label&1]) * scale
	}
	return out
}

// ArrivedBits returns per-bin offered load in bits/second for the given
// label class.
func (r *Recorder) ArrivedBits(label packet.Label) []float64 {
	out := make([]float64, len(r.bins))
	scale := 8 / r.binWidth.Seconds()
	for i, b := range r.bins {
		out[i] = float64(b.arrivedBytes[label&1]) * scale
	}
	return out
}

// FlowDeliveredBits returns the per-bin delivered throughput of one
// FlowID in bits/second, padded to Bins() length.
func (r *Recorder) FlowDeliveredBits(flowID uint32) []float64 {
	out := make([]float64, len(r.bins))
	scale := 8 / r.binWidth.Seconds()
	for i, v := range r.perFlow[flowID] {
		if i < len(out) {
			out[i] = float64(v) * scale
		}
	}
	return out
}

// DropRate returns the per-bin packet drop rate (dropped / arrived)
// across both classes, the bottom-row series of Fig. 2.
func (r *Recorder) DropRate() []float64 {
	out := make([]float64, len(r.bins))
	for i, b := range r.bins {
		arr := b.arrivedPkts[0] + b.arrivedPkts[1]
		drp := b.droppedPkts[0] + b.droppedPkts[1]
		if arr > 0 {
			out[i] = float64(drp) / float64(arr)
		}
	}
	return out
}

// BenignDropPercent returns 100 * dropped benign packets / arrived
// benign packets over the whole run — the Table 3 / Fig. 8 metric.
func (r *Recorder) BenignDropPercent() float64 {
	arrived := r.ArrivedBenign()
	if arrived == 0 {
		return 0
	}
	return 100 * float64(r.DroppedBenign()) / float64(arrived)
}

// MaliciousDropPercent is the malicious-class analogue.
func (r *Recorder) MaliciousDropPercent() float64 {
	arrived := r.ArrivedMalicious()
	if arrived == 0 {
		return 0
	}
	return 100 * float64(r.DroppedMalicious()) / float64(arrived)
}

// MeanDelay returns the average port transit delay (queueing +
// serialization) of delivered packets in the class, and the maximum.
// Deprioritized traffic shows its penalty here while benign latency
// stays flat (the scheduling story of §5).
func (r *Recorder) MeanDelay(label packet.Label) (mean, max eventsim.Time) {
	li := int(label & 1)
	n := r.delivered[li].Value()
	if n == 0 {
		return 0, 0
	}
	return r.delaySum[li] / eventsim.Time(n), r.delayMax[li]
}

// RecoveryTime scans delivered benign throughput after attackStart and
// returns the first bin time at which it recovers to at least frac of
// its pre-attack average, or -1 if it never does. Used for
// reaction-time readouts (Fig. 6b, Fig. 7).
func (r *Recorder) RecoveryTime(attackStart eventsim.Time, frac float64) eventsim.Time {
	series := r.DeliveredBits(packet.Benign)
	startBin := int(attackStart / r.binWidth)
	if startBin <= 0 || startBin >= len(series) {
		return -1
	}
	var base float64
	for i := 0; i < startBin; i++ {
		base += series[i]
	}
	base /= float64(startBin)
	for i := startBin; i < len(series); i++ {
		if series[i] >= frac*base {
			return eventsim.Time(i) * r.binWidth
		}
	}
	return -1
}
