package netsim

import (
	"fmt"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
	"accturbo/internal/queue"
)

// Recorder accumulates time-binned traffic statistics with ground-truth
// attribution. Every experiment series in the paper (bandwidth shares,
// drop rates, benign-drop percentages, reaction times) is derived from
// a Recorder.
type Recorder struct {
	binWidth eventsim.Time
	bins     []binStats
	perFlow  map[uint32][]uint64 // FlowID -> delivered bytes per bin

	seqNext map[uint32]uint64 // FlowID -> next arrival sequence
	seqMax  map[uint32]uint64 // FlowID -> highest delivered sequence

	arrivedAt map[*packet.Packet]eventsim.Time
	delaySum  [2]eventsim.Time // per label
	delayMax  [2]eventsim.Time

	// Totals since construction (packets).
	ArrivedBenign, ArrivedMalicious uint64
	DroppedBenign, DroppedMalicious uint64
	DeliveredBenignPkts             uint64
	DeliveredMaliciousPkts          uint64
	// Reordered counts delivered packets that left after a same-flow
	// packet that arrived later (§10's reordering discussion).
	Reordered uint64
}

type binStats struct {
	arrivedBytes   [2]uint64 // indexed by label
	deliveredBytes [2]uint64
	droppedBytes   [2]uint64
	arrivedPkts    [2]uint64
	deliveredPkts  [2]uint64
	droppedPkts    [2]uint64
}

// NewRecorder creates a recorder with the given bin width (typically
// one second, matching the paper's plots).
func NewRecorder(binWidth eventsim.Time) *Recorder {
	if binWidth <= 0 {
		panic(fmt.Sprintf("netsim: bin width %v must be positive", binWidth))
	}
	return &Recorder{
		binWidth:  binWidth,
		perFlow:   map[uint32][]uint64{},
		seqNext:   map[uint32]uint64{},
		seqMax:    map[uint32]uint64{},
		arrivedAt: map[*packet.Packet]eventsim.Time{},
	}
}

// BinWidth returns the configured bin width.
func (r *Recorder) BinWidth() eventsim.Time { return r.binWidth }

// Bins returns the number of bins touched so far.
func (r *Recorder) Bins() int { return len(r.bins) }

func (r *Recorder) bin(now eventsim.Time) *binStats {
	i := int(now / r.binWidth)
	for len(r.bins) <= i {
		r.bins = append(r.bins, binStats{})
	}
	return &r.bins[i]
}

// Arrival records a packet offered to the port and stamps its per-flow
// arrival sequence number (used for reordering detection).
func (r *Recorder) Arrival(now eventsim.Time, p *packet.Packet) {
	r.seqNext[p.FlowID]++
	p.Seq = r.seqNext[p.FlowID]
	r.arrivedAt[p] = now
	b := r.bin(now)
	l := labelIndex(p)
	b.arrivedBytes[l] += uint64(p.Size())
	b.arrivedPkts[l]++
	if l == 1 {
		r.ArrivedMalicious++
	} else {
		r.ArrivedBenign++
	}
}

// Delivered records a packet that completed transmission.
func (r *Recorder) Delivered(now eventsim.Time, p *packet.Packet) {
	if p.Seq > 0 {
		if p.Seq < r.seqMax[p.FlowID] {
			r.Reordered++
		} else {
			r.seqMax[p.FlowID] = p.Seq
		}
	}
	if at, ok := r.arrivedAt[p]; ok {
		d := now - at
		li := labelIndex(p)
		r.delaySum[li] += d
		if d > r.delayMax[li] {
			r.delayMax[li] = d
		}
		delete(r.arrivedAt, p)
	}
	b := r.bin(now)
	l := labelIndex(p)
	b.deliveredBytes[l] += uint64(p.Size())
	b.deliveredPkts[l]++
	if l == 1 {
		r.DeliveredMaliciousPkts++
	} else {
		r.DeliveredBenignPkts++
	}
	i := int(now / r.binWidth)
	s := r.perFlow[p.FlowID]
	for len(s) <= i {
		s = append(s, 0)
	}
	s[i] += uint64(p.Size())
	r.perFlow[p.FlowID] = s
}

// Dropped records a packet rejected anywhere in the port (policer,
// early drop, tail drop, push-out).
func (r *Recorder) Dropped(now eventsim.Time, p *packet.Packet, _ queue.DropReason) {
	delete(r.arrivedAt, p)
	b := r.bin(now)
	l := labelIndex(p)
	b.droppedBytes[l] += uint64(p.Size())
	b.droppedPkts[l]++
	if l == 1 {
		r.DroppedMalicious++
	} else {
		r.DroppedBenign++
	}
}

func labelIndex(p *packet.Packet) int {
	if p.Label == packet.Malicious {
		return 1
	}
	return 0
}

// DeliveredBits returns per-bin delivered throughput in bits/second for
// the given label class.
func (r *Recorder) DeliveredBits(label packet.Label) []float64 {
	out := make([]float64, len(r.bins))
	scale := 8 / r.binWidth.Seconds()
	for i, b := range r.bins {
		out[i] = float64(b.deliveredBytes[label&1]) * scale
	}
	return out
}

// ArrivedBits returns per-bin offered load in bits/second for the given
// label class.
func (r *Recorder) ArrivedBits(label packet.Label) []float64 {
	out := make([]float64, len(r.bins))
	scale := 8 / r.binWidth.Seconds()
	for i, b := range r.bins {
		out[i] = float64(b.arrivedBytes[label&1]) * scale
	}
	return out
}

// FlowDeliveredBits returns the per-bin delivered throughput of one
// FlowID in bits/second, padded to Bins() length.
func (r *Recorder) FlowDeliveredBits(flowID uint32) []float64 {
	out := make([]float64, len(r.bins))
	scale := 8 / r.binWidth.Seconds()
	for i, v := range r.perFlow[flowID] {
		if i < len(out) {
			out[i] = float64(v) * scale
		}
	}
	return out
}

// DropRate returns the per-bin packet drop rate (dropped / arrived)
// across both classes, the bottom-row series of Fig. 2.
func (r *Recorder) DropRate() []float64 {
	out := make([]float64, len(r.bins))
	for i, b := range r.bins {
		arr := b.arrivedPkts[0] + b.arrivedPkts[1]
		drp := b.droppedPkts[0] + b.droppedPkts[1]
		if arr > 0 {
			out[i] = float64(drp) / float64(arr)
		}
	}
	return out
}

// BenignDropPercent returns 100 * dropped benign packets / arrived
// benign packets over the whole run — the Table 3 / Fig. 8 metric.
func (r *Recorder) BenignDropPercent() float64 {
	if r.ArrivedBenign == 0 {
		return 0
	}
	return 100 * float64(r.DroppedBenign) / float64(r.ArrivedBenign)
}

// MaliciousDropPercent is the malicious-class analogue.
func (r *Recorder) MaliciousDropPercent() float64 {
	if r.ArrivedMalicious == 0 {
		return 0
	}
	return 100 * float64(r.DroppedMalicious) / float64(r.ArrivedMalicious)
}

// MeanDelay returns the average port transit delay (queueing +
// serialization) of delivered packets in the class, and the maximum.
// Deprioritized traffic shows its penalty here while benign latency
// stays flat (the scheduling story of §5).
func (r *Recorder) MeanDelay(label packet.Label) (mean, max eventsim.Time) {
	li := int(label & 1)
	var n uint64
	if li == 1 {
		n = r.DeliveredMaliciousPkts
	} else {
		n = r.DeliveredBenignPkts
	}
	if n == 0 {
		return 0, 0
	}
	return r.delaySum[li] / eventsim.Time(n), r.delayMax[li]
}

// RecoveryTime scans delivered benign throughput after attackStart and
// returns the first bin time at which it recovers to at least frac of
// its pre-attack average, or -1 if it never does. Used for
// reaction-time readouts (Fig. 6b, Fig. 7).
func (r *Recorder) RecoveryTime(attackStart eventsim.Time, frac float64) eventsim.Time {
	series := r.DeliveredBits(packet.Benign)
	startBin := int(attackStart / r.binWidth)
	if startBin <= 0 || startBin >= len(series) {
		return -1
	}
	var base float64
	for i := 0; i < startBin; i++ {
		base += series[i]
	}
	base /= float64(startBin)
	for i := startBin; i < len(series); i++ {
		if series[i] >= frac*base {
			return eventsim.Time(i) * r.binWidth
		}
	}
	return -1
}
