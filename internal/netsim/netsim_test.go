package netsim

import (
	"math"
	"testing"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
	"accturbo/internal/queue"
	"accturbo/internal/traffic"
)

func cbr(start, end eventsim.Time, rate float64, label packet.Label, flowID uint32) traffic.Source {
	spec := traffic.FlowSpec{
		SrcIP: packet.V4Addr{1, 1, 1, 1}, DstIP: packet.V4Addr{2, 2, 2, 2},
		Protocol: packet.ProtoUDP, SrcPort: 1, DstPort: 2, TTL: 64, Size: 500,
		Label: label, FlowID: flowID,
	}
	return traffic.NewCBR(start, end, rate, spec.Factory(int64(flowID)))
}

func TestPortDeliversAtLineRate(t *testing.T) {
	eng := eventsim.New()
	rec := NewRecorder(eventsim.Second)
	// Offered 20 Mbps into a 10 Mbps port for 5 s.
	port := NewPort(eng, queue.NewFIFO(100_000), 10e6, rec)
	Replay(eng, cbr(0, 5*eventsim.Second, 20e6, packet.Benign, 1), port)
	eng.Run()

	out := rec.DeliveredBits(packet.Benign)
	// Steady-state bins should be ~10 Mbps (the line rate).
	for i := 1; i < 4; i++ {
		if math.Abs(out[i]-10e6)/10e6 > 0.05 {
			t.Fatalf("bin %d delivered %v bps, want ~10e6", i, out[i])
		}
	}
	if rec.DroppedBenign() == 0 {
		t.Fatal("overload must drop packets")
	}
	// Conservation: arrived = delivered + dropped + still queued.
	queued := uint64(port.Qdisc().Len())
	if rec.ArrivedBenign() != rec.DeliveredBenignPkts()+rec.DroppedBenign()+queued {
		t.Fatalf("conservation violated: %d != %d + %d + %d",
			rec.ArrivedBenign(), rec.DeliveredBenignPkts(), rec.DroppedBenign(), queued)
	}
}

func TestPortUnderloadDeliversEverything(t *testing.T) {
	eng := eventsim.New()
	rec := NewRecorder(eventsim.Second)
	port := NewPort(eng, queue.NewFIFO(100_000), 10e6, rec)
	Replay(eng, cbr(0, 2*eventsim.Second, 5e6, packet.Benign, 1), port)
	eng.Run()
	if rec.DroppedBenign() != 0 {
		t.Fatalf("underload dropped %d packets", rec.DroppedBenign())
	}
	if rec.DeliveredBenignPkts() != rec.ArrivedBenign() {
		t.Fatalf("delivered %d of %d", rec.DeliveredBenignPkts(), rec.ArrivedBenign())
	}
}

func TestIngressPolicerDrops(t *testing.T) {
	eng := eventsim.New()
	rec := NewRecorder(eventsim.Second)
	port := NewPort(eng, queue.NewFIFO(100_000), 10e6, rec)
	seen := 0
	port.AddIngress(func(now eventsim.Time, p *packet.Packet) bool {
		seen++
		return seen%2 == 0 // drop every other packet
	})
	Replay(eng, cbr(0, eventsim.Second, 5e6, packet.Benign, 1), port)
	eng.Run()
	if rec.DroppedBenign() == 0 {
		t.Fatal("policer drops not recorded")
	}
	diff := int(rec.DroppedBenign()) - int(rec.DeliveredBenignPkts())
	if diff < -1 || diff > 1 {
		t.Fatalf("drop/deliver split wrong: %d vs %d", rec.DroppedBenign(), rec.DeliveredBenignPkts())
	}
}

func TestIngressOrdering(t *testing.T) {
	eng := eventsim.New()
	port := NewPort(eng, queue.NewFIFO(100_000), 10e6, nil)
	var order []int
	port.AddIngress(func(eventsim.Time, *packet.Packet) bool { order = append(order, 1); return true })
	port.AddIngress(func(eventsim.Time, *packet.Packet) bool { order = append(order, 2); return true })
	p := &packet.Packet{Length: 100, Protocol: packet.ProtoUDP, SrcIP: packet.V4(1, 1, 1, 1), DstIP: packet.V4(2, 2, 2, 2)}
	port.Inject(0, p)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("ingress order: %v", order)
	}
}

func TestDeliveredCallback(t *testing.T) {
	eng := eventsim.New()
	port := NewPort(eng, queue.NewFIFO(100_000), 10e6, nil)
	delivered := 0
	port.Delivered = func(now eventsim.Time, p *packet.Packet) { delivered++ }
	Replay(eng, cbr(0, eventsim.Second/10, 1e6, packet.Benign, 1), port)
	eng.Run()
	if delivered == 0 {
		t.Fatal("delivered callback never fired")
	}
}

func TestRecorderClassAttribution(t *testing.T) {
	eng := eventsim.New()
	rec := NewRecorder(eventsim.Second)
	port := NewPort(eng, queue.NewFIFO(1_000_000), 100e6, rec)
	Replay(eng, traffic.Merge(
		cbr(0, eventsim.Second, 10e6, packet.Benign, 1),
		cbr(0, eventsim.Second, 20e6, packet.Malicious, 5),
	), port)
	eng.Run()
	b := rec.DeliveredBits(packet.Benign)
	m := rec.DeliveredBits(packet.Malicious)
	if math.Abs(b[0]-10e6)/10e6 > 0.1 {
		t.Fatalf("benign bin0 = %v", b[0])
	}
	if math.Abs(m[0]-20e6)/20e6 > 0.1 {
		t.Fatalf("malicious bin0 = %v", m[0])
	}
	f1 := rec.FlowDeliveredBits(1)
	f5 := rec.FlowDeliveredBits(5)
	if f1[0] <= 0 || f5[0] <= 0 || f5[0] < f1[0] {
		t.Fatalf("per-flow series wrong: %v %v", f1[0], f5[0])
	}
	arrived := rec.ArrivedBits(packet.Benign)
	if math.Abs(arrived[0]-10e6)/10e6 > 0.1 {
		t.Fatalf("arrived benign = %v", arrived[0])
	}
}

func TestDropRateSeries(t *testing.T) {
	eng := eventsim.New()
	rec := NewRecorder(eventsim.Second)
	port := NewPort(eng, queue.NewFIFO(50_000), 10e6, rec)
	// 2x overload: about half the packets must drop.
	Replay(eng, cbr(0, 3*eventsim.Second, 20e6, packet.Benign, 1), port)
	eng.Run()
	dr := rec.DropRate()
	if dr[1] < 0.3 || dr[1] > 0.7 {
		t.Fatalf("drop rate %v, want ~0.5", dr[1])
	}
	if got := rec.BenignDropPercent(); got < 30 || got > 70 {
		t.Fatalf("benign drop %% = %v", got)
	}
	if rec.MaliciousDropPercent() != 0 {
		t.Fatal("no malicious traffic offered")
	}
}

func TestRecoveryTime(t *testing.T) {
	eng := eventsim.New()
	rec := NewRecorder(eventsim.Second)
	port := NewPort(eng, queue.NewFIFO(50_000), 10e6, rec)
	// Benign at 8 Mbps throughout; attack squeezes it during [3s, 6s).
	Replay(eng, traffic.Merge(
		cbr(0, 10*eventsim.Second, 8e6, packet.Benign, 1),
		cbr(3*eventsim.Second, 6*eventsim.Second, 80e6, packet.Malicious, 5),
	), port)
	eng.Run()
	rt := rec.RecoveryTime(3*eventsim.Second, 0.9)
	if rt < 0 {
		t.Fatal("benign traffic never recovered")
	}
	// FIFO with a 10x attack: recovery only after the attack ends (6 s).
	if rt < 6*eventsim.Second {
		t.Fatalf("recovery at %v, expected after attack end", rt)
	}
	if rec.RecoveryTime(0, 0.9) != -1 {
		t.Fatal("no pre-attack baseline should yield -1")
	}
}

func TestRecorderValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRecorder(0)
}

func TestPortValidation(t *testing.T) {
	eng := eventsim.New()
	for _, f := range []func(){
		func() { NewPort(eng, nil, 1e6, nil) },
		func() { NewPort(eng, queue.NewFIFO(1000), 0, nil) },
		func() { p := NewPort(eng, queue.NewFIFO(1000), 1e6, nil); p.AddIngress(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestReplayWithPriorityQdiscRecordsDrops(t *testing.T) {
	eng := eventsim.New()
	rec := NewRecorder(eventsim.Second)
	pq := queue.NewPriority(2, 25_000, func(_ eventsim.Time, p *packet.Packet) int {
		if p.Label == packet.Malicious {
			return 1
		}
		return 0
	})
	port := NewPort(eng, pq, 10e6, rec)
	Replay(eng, traffic.Merge(
		cbr(0, 3*eventsim.Second, 8e6, packet.Benign, 1),
		cbr(0, 3*eventsim.Second, 40e6, packet.Malicious, 5),
	), port)
	eng.Run()
	// Strict priority: benign (queue 0) should barely drop, attack
	// (queue 1) should absorb nearly all loss.
	if rec.BenignDropPercent() > 5 {
		t.Fatalf("benign drop %% = %v under priority scheduling", rec.BenignDropPercent())
	}
	if rec.MaliciousDropPercent() < 50 {
		t.Fatalf("malicious drop %% = %v, attack should be squeezed", rec.MaliciousDropPercent())
	}
}

func BenchmarkReplayFIFO(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := eventsim.New()
		rec := NewRecorder(eventsim.Second)
		port := NewPort(eng, queue.NewFIFO(100_000), 10e6, rec)
		Replay(eng, cbr(0, eventsim.Second, 20e6, packet.Benign, 1), port)
		eng.Run()
	}
}

func TestFIFONeverReorders(t *testing.T) {
	eng := eventsim.New()
	rec := NewRecorder(eventsim.Second)
	port := NewPort(eng, queue.NewFIFO(50_000), 10e6, rec)
	Replay(eng, traffic.Merge(
		cbr(0, 3*eventsim.Second, 8e6, packet.Benign, 1),
		cbr(0, 3*eventsim.Second, 12e6, packet.Malicious, 5),
	), port)
	eng.RunUntil(4 * eventsim.Second)
	if rec.Reordered() != 0 {
		t.Fatalf("FIFO reordered %d packets", rec.Reordered())
	}
}

func TestPriorityChangeReordersAcrossUpdate(t *testing.T) {
	// A flow whose queue changes mid-stream can be overtaken: packets
	// buffered in the old (low-priority) queue drain after packets
	// enqueued later into the new (high-priority) queue.
	eng := eventsim.New()
	rec := NewRecorder(eventsim.Second)
	prio := 1
	pq := queue.NewPriority(2, 1_000_000, func(_ eventsim.Time, p *packet.Packet) int {
		return prio
	})
	port := NewPort(eng, pq, 1e6, rec)
	// Burst 100 packets into queue 1, switch the flow to queue 0, burst
	// again: the second burst drains first.
	f := cbr(0, eventsim.Second/10, 4e6, packet.Benign, 1)
	Replay(eng, f, port)
	eng.At(eventsim.Second/10+1, func(eventsim.Time) { prio = 0 })
	Replay(eng, cbr(eventsim.Second/5, eventsim.Second/5+eventsim.Second/10, 4e6, packet.Benign, 1), port)
	eng.RunUntil(5 * eventsim.Second)
	if rec.Reordered() == 0 {
		t.Fatal("expected reordering across the priority update")
	}
}

func TestChainForwardsWithDelay(t *testing.T) {
	eng := eventsim.New()
	recA := NewRecorder(eventsim.Second)
	recB := NewRecorder(eventsim.Second)
	a := NewPort(eng, queue.NewFIFO(100_000), 10e6, recA)
	b := NewPort(eng, queue.NewFIFO(100_000), 10e6, recB)
	Chain(eng, a, b, 5*eventsim.Millisecond)
	Replay(eng, cbr(0, eventsim.Second, 5e6, packet.Benign, 1), a)
	eng.RunUntil(2 * eventsim.Second)
	if recB.ArrivedBenign() != recA.DeliveredBenignPkts() {
		t.Fatalf("chain lost packets: %d arrived at B of %d delivered by A",
			recB.ArrivedBenign(), recA.DeliveredBenignPkts())
	}
	if recB.DeliveredBenignPkts() == 0 {
		t.Fatal("nothing delivered end-to-end")
	}
}

func TestChainPreservesExistingDeliveredHook(t *testing.T) {
	eng := eventsim.New()
	a := NewPort(eng, queue.NewFIFO(100_000), 10e6, nil)
	b := NewPort(eng, queue.NewFIFO(100_000), 10e6, nil)
	hookCalls := 0
	a.Delivered = func(eventsim.Time, *packet.Packet) { hookCalls++ }
	Chain(eng, a, b, 0)
	Replay(eng, cbr(0, eventsim.Second/10, 1e6, packet.Benign, 1), a)
	eng.RunUntil(eventsim.Second)
	if hookCalls == 0 {
		t.Fatal("chaining clobbered the existing Delivered hook")
	}
}

func TestFanInRoutesByPacket(t *testing.T) {
	eng := eventsim.New()
	recs := []*Recorder{NewRecorder(eventsim.Second), NewRecorder(eventsim.Second)}
	ports := []*Port{
		NewPort(eng, queue.NewFIFO(100_000), 10e6, recs[0]),
		NewPort(eng, queue.NewFIFO(100_000), 10e6, recs[1]),
	}
	src := traffic.Merge(
		cbr(0, eventsim.Second, 2e6, packet.Benign, 1),
		cbr(0, eventsim.Second, 2e6, packet.Malicious, 5),
	)
	FanIn(eng, src, ports, func(p *packet.Packet) int {
		if p.Label == packet.Malicious {
			return 1
		}
		return 0
	})
	eng.RunUntil(2 * eventsim.Second)
	if recs[0].ArrivedBenign() == 0 || recs[0].ArrivedMalicious() != 0 {
		t.Fatalf("port 0: %d benign %d malicious", recs[0].ArrivedBenign(), recs[0].ArrivedMalicious())
	}
	if recs[1].ArrivedMalicious() == 0 || recs[1].ArrivedBenign() != 0 {
		t.Fatalf("port 1: %d benign %d malicious", recs[1].ArrivedBenign(), recs[1].ArrivedMalicious())
	}
}

func TestChainValidation(t *testing.T) {
	eng := eventsim.New()
	a := NewPort(eng, queue.NewFIFO(1000), 1e6, nil)
	b := NewPort(eng, queue.NewFIFO(1000), 1e6, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Chain(eng, a, b, -1)
}

func TestMeanDelayTracksDeprioritization(t *testing.T) {
	eng := eventsim.New()
	rec := NewRecorder(eventsim.Second)
	pq := queue.NewPriority(2, 100_000, func(_ eventsim.Time, p *packet.Packet) int {
		if p.Label == packet.Malicious {
			return 1
		}
		return 0
	})
	port := NewPort(eng, pq, 10e6, rec)
	Replay(eng, traffic.Merge(
		cbr(0, 3*eventsim.Second, 5e6, packet.Benign, 1),
		cbr(0, 3*eventsim.Second, 8e6, packet.Malicious, 5),
	), port)
	eng.RunUntil(10 * eventsim.Second)
	bMean, bMax := rec.MeanDelay(packet.Benign)
	mMean, mMax := rec.MeanDelay(packet.Malicious)
	if bMean <= 0 || mMean <= 0 {
		t.Fatalf("delays not tracked: %v %v", bMean, mMean)
	}
	// Deprioritized traffic waits much longer than benign.
	if mMean < 5*bMean {
		t.Fatalf("malicious mean delay %v not >> benign %v", mMean, bMean)
	}
	if bMax < bMean || mMax < mMean {
		t.Fatalf("max delays inconsistent: %v/%v %v/%v", bMean, bMax, mMean, mMax)
	}
	// No delay without deliveries.
	empty := NewRecorder(eventsim.Second)
	if m, x := empty.MeanDelay(packet.Benign); m != 0 || x != 0 {
		t.Fatal("empty recorder reported delay")
	}
}
