package queue

import (
	"container/heap"
	"fmt"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
	"accturbo/internal/telemetry"
)

// RankFunc assigns a scheduling rank to a packet at enqueue time; lower
// ranks dequeue first. The paper's "PIFO Ideal" baseline ranks on
// ground truth (benign before malicious); ACC-Turbo's deployable
// schedulers rank on cluster statistics instead.
type RankFunc func(now eventsim.Time, p *packet.Packet) int64

// PIFO is an idealized push-in first-out queue: packets dequeue in rank
// order, and when the buffer is full the worst-ranked resident packet
// is pushed out to admit a better-ranked arrival. Ties preserve arrival
// order.
type PIFO struct {
	capBytes int
	bytes    int
	rank     RankFunc
	onDrop   []DropFunc
	sink     telemetry.Sink
	seq      uint64
	h        pifoHeap

	// worstIdx caches h.worstIndex() between heap mutations. The
	// sustained-overload tail-drop path (the arrival loses to the
	// current worst) mutates nothing, so back-to-back full-buffer drops
	// reuse the cache and cost O(1) instead of a leaf scan each.
	worstIdx   int
	worstValid bool
}

type pifoItem struct {
	p    *packet.Packet
	rank int64
	seq  uint64
}

// pifoHeap is a min-heap on (rank, seq).
type pifoHeap []pifoItem

func (h pifoHeap) Len() int { return len(h) }
func (h pifoHeap) Less(i, j int) bool {
	if h[i].rank != h[j].rank {
		return h[i].rank < h[j].rank
	}
	return h[i].seq < h[j].seq
}
func (h pifoHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pifoHeap) Push(x any)   { *h = append(*h, x.(pifoItem)) }
func (h *pifoHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h pifoHeap) worstIndex() int {
	// The worst element of a min-heap is one of the leaves.
	worst := len(h) / 2
	for i := worst + 1; i < len(h); i++ {
		if h.Less(worst, i) {
			worst = i
		}
	}
	return worst
}

// NewPIFO builds a PIFO with the given byte capacity and ranking
// function.
func NewPIFO(capacityBytes int, rank RankFunc) *PIFO {
	if capacityBytes <= 0 {
		panic(fmt.Sprintf("queue: PIFO capacity %d must be positive", capacityBytes))
	}
	if rank == nil {
		panic("queue: nil rank function")
	}
	return &PIFO{capBytes: capacityBytes, rank: rank, sink: telemetry.Nop()}
}

// OnDrop registers an additional callback for rejected or pushed-out
// packets.
func (q *PIFO) OnDrop(fn DropFunc) { q.onDrop = append(q.onDrop, fn) }

// SetSink implements Instrumented.
func (q *PIFO) SetSink(s telemetry.Sink) { q.sink = telemetry.OrNop(s) }

// worst returns the index of the worst-ranked resident item, cached
// until the next heap mutation.
func (q *PIFO) worst() int {
	if !q.worstValid {
		q.worstIdx = q.h.worstIndex()
		q.worstValid = true
	}
	return q.worstIdx
}

// Enqueue implements Qdisc. When full, the worst-ranked packets are
// evicted as long as the arrival ranks strictly better; otherwise the
// arrival is dropped.
func (q *PIFO) Enqueue(now eventsim.Time, p *packet.Packet) DropReason {
	r := q.rank(now, p)
	for q.bytes+p.Size() > q.capBytes {
		if len(q.h) == 0 {
			// Packet larger than the whole buffer.
			q.notifyDrop(now, p, DropTail)
			return DropTail
		}
		wi := q.worst()
		if q.h[wi].rank <= r {
			// Arrival does not beat the current worst: tail-drop it.
			q.notifyDrop(now, p, DropTail)
			return DropTail
		}
		victim := q.h[wi]
		heap.Remove(&q.h, wi)
		q.worstValid = false
		q.bytes -= victim.p.Size()
		q.notifyDrop(now, victim.p, DropPushOut)
	}
	heap.Push(&q.h, pifoItem{p: p, rank: r, seq: q.seq})
	q.worstValid = false
	q.seq++
	q.bytes += p.Size()
	q.sink.RecordEnqueue(now, p.Size(), len(q.h), q.bytes)
	return DropNone
}

func (q *PIFO) notifyDrop(now eventsim.Time, p *packet.Packet, r DropReason) {
	q.sink.RecordDrop(now, p.Size(), uint8(r))
	for _, fn := range q.onDrop {
		fn(now, p, r)
	}
}

// Dequeue implements Qdisc: the lowest-ranked packet leaves first.
func (q *PIFO) Dequeue(now eventsim.Time) *packet.Packet {
	if len(q.h) == 0 {
		return nil
	}
	it := heap.Pop(&q.h).(pifoItem)
	q.worstValid = false
	q.bytes -= it.p.Size()
	q.sink.RecordDequeue(now, it.p.Size(), len(q.h), q.bytes)
	return it.p
}

// Len implements Qdisc.
func (q *PIFO) Len() int { return len(q.h) }

// Bytes implements Qdisc.
func (q *PIFO) Bytes() int { return q.bytes }
