package queue

import (
	"fmt"

	"accturbo/internal/eventsim"
)

// TokenBucket is a classic token-bucket policer: it admits traffic up
// to a sustained bit rate with a bounded burst. ACC's rate-limiting
// sessions (internal/acc) police inferred aggregates with one bucket
// each.
type TokenBucket struct {
	rate   float64 // tokens (bytes) per nanosecond
	burst  float64 // bucket depth in bytes
	tokens float64
	last   eventsim.Time
}

// NewTokenBucket builds a policer admitting rateBits bits/second with a
// burst of burstBytes. The bucket starts full.
func NewTokenBucket(rateBits float64, burstBytes int) *TokenBucket {
	if rateBits <= 0 {
		panic(fmt.Sprintf("queue: token bucket rate %v must be positive", rateBits))
	}
	if burstBytes <= 0 {
		panic(fmt.Sprintf("queue: token bucket burst %d must be positive", burstBytes))
	}
	return &TokenBucket{
		rate:   rateBits / 8 / float64(eventsim.Second),
		burst:  float64(burstBytes),
		tokens: float64(burstBytes),
	}
}

// SetRate changes the sustained rate (bits/second), keeping accumulated
// tokens.
func (tb *TokenBucket) SetRate(rateBits float64) {
	if rateBits <= 0 {
		panic(fmt.Sprintf("queue: token bucket rate %v must be positive", rateBits))
	}
	tb.rate = rateBits / 8 / float64(eventsim.Second)
}

// RateBits returns the sustained rate in bits/second.
func (tb *TokenBucket) RateBits() float64 {
	return tb.rate * 8 * float64(eventsim.Second)
}

func (tb *TokenBucket) refill(now eventsim.Time) {
	if now <= tb.last {
		return
	}
	tb.tokens += float64(now-tb.last) * tb.rate
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	tb.last = now
}

// Allow reports whether a packet of sizeBytes conforms at time now, and
// consumes tokens if it does. Non-conforming packets consume nothing.
func (tb *TokenBucket) Allow(now eventsim.Time, sizeBytes int) bool {
	tb.refill(now)
	if float64(sizeBytes) > tb.tokens {
		return false
	}
	tb.tokens -= float64(sizeBytes)
	return true
}

// Tokens returns the tokens (bytes) available at time now.
func (tb *TokenBucket) Tokens(now eventsim.Time) float64 {
	tb.refill(now)
	return tb.tokens
}
