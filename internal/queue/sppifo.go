package queue

import (
	"fmt"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
	"accturbo/internal/telemetry"
)

// SPPIFO approximates a PIFO queue on top of strict-priority queues
// (Alcoz et al., "SP-PIFO: Approximating Push-In First-Out Behaviors
// using Strict-Priority Queues", NSDI 2020) — the mechanism the paper
// cites (§5.1, [24]) as the way to realize rank-based scheduling on
// commodity hardware.
//
// Each queue i carries an adaptive rank bound b_i (b_1 <= ... <= b_n,
// queue 1 = highest priority). An arriving packet with rank r scans
// from the lowest-priority queue upward and enters the first queue
// whose bound is <= r, raising that bound to r ("push-up"). If even
// the top queue's bound exceeds r, the packet enters the top queue and
// all bounds decrease by the overshoot ("push-down"), letting the
// mapping re-adapt to rank drift in either direction.
type SPPIFO struct {
	queues []*FIFO
	bounds []int64
	rank   RankFunc
	onDrop []DropFunc
	sink   telemetry.Sink

	// Inversions counts dequeued packets whose rank was lower than the
	// highest rank dequeued before them — the SP-PIFO quality metric.
	Inversions uint64
	// PushUps and PushDowns count bound adaptations.
	PushUps, PushDowns uint64

	maxDequeued int64
	anyDequeued bool
}

// NewSPPIFO builds an SP-PIFO with n strict-priority queues of
// perQueueBytes each.
func NewSPPIFO(n, perQueueBytes int, rank RankFunc) *SPPIFO {
	if n <= 0 {
		panic(fmt.Sprintf("queue: SP-PIFO queue count %d must be positive", n))
	}
	if rank == nil {
		panic("queue: nil rank function")
	}
	s := &SPPIFO{
		queues: make([]*FIFO, n),
		bounds: make([]int64, n),
		rank:   rank,
		sink:   telemetry.Nop(),
	}
	for i := range s.queues {
		s.queues[i] = NewFIFO(perQueueBytes)
	}
	return s
}

// OnDrop registers an additional drop callback.
func (s *SPPIFO) OnDrop(fn DropFunc) { s.onDrop = append(s.onDrop, fn) }

// SetSink implements Instrumented; accounting is reported at the
// scheduler level, like Priority.
func (s *SPPIFO) SetSink(sk telemetry.Sink) { s.sink = telemetry.OrNop(sk) }

// Bounds returns a copy of the current per-queue rank bounds.
func (s *SPPIFO) Bounds() []int64 {
	out := make([]int64, len(s.bounds))
	copy(out, s.bounds)
	return out
}

// Enqueue implements Qdisc with the SP-PIFO mapping.
func (s *SPPIFO) Enqueue(now eventsim.Time, p *packet.Packet) DropReason {
	r := s.rank(now, p)
	n := len(s.queues)
	// Scan from the lowest-priority queue upward.
	for i := n - 1; i >= 1; i-- {
		if r >= s.bounds[i] {
			if res := s.queues[i].Enqueue(now, p); res != DropNone {
				s.notifyDrop(now, p, res)
				return res
			}
			if r > s.bounds[i] {
				s.bounds[i] = r // push-up
				s.PushUps++
			}
			s.sink.RecordEnqueue(now, p.Size(), s.Len(), s.Bytes())
			return DropNone
		}
	}
	// Top queue: push-down when the packet's rank undershoots.
	if res := s.queues[0].Enqueue(now, p); res != DropNone {
		s.notifyDrop(now, p, res)
		return res
	}
	if r < s.bounds[0] {
		cost := s.bounds[0] - r
		for i := range s.bounds {
			s.bounds[i] -= cost
		}
		s.PushDowns++
	} else if r > s.bounds[0] {
		s.bounds[0] = r
		s.PushUps++
	}
	s.sink.RecordEnqueue(now, p.Size(), s.Len(), s.Bytes())
	return DropNone
}

func (s *SPPIFO) notifyDrop(now eventsim.Time, p *packet.Packet, r DropReason) {
	s.sink.RecordDrop(now, p.Size(), uint8(r))
	for _, fn := range s.onDrop {
		fn(now, p, r)
	}
}

// Dequeue implements Qdisc, tracking rank inversions.
func (s *SPPIFO) Dequeue(now eventsim.Time) *packet.Packet {
	for _, q := range s.queues {
		if p := q.Dequeue(now); p != nil {
			s.sink.RecordDequeue(now, p.Size(), s.Len(), s.Bytes())
			r := s.rank(now, p)
			if s.anyDequeued && r < s.maxDequeued {
				s.Inversions++
			}
			if !s.anyDequeued || r > s.maxDequeued {
				s.maxDequeued = r
				s.anyDequeued = true
			}
			return p
		}
	}
	return nil
}

// Len implements Qdisc.
func (s *SPPIFO) Len() int {
	n := 0
	for _, q := range s.queues {
		n += q.Len()
	}
	return n
}

// Bytes implements Qdisc.
func (s *SPPIFO) Bytes() int {
	n := 0
	for _, q := range s.queues {
		n += q.Bytes()
	}
	return n
}
