package queue

import (
	"fmt"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
	"accturbo/internal/telemetry"
)

// Classifier maps a packet to a priority-queue index. Queue 0 has the
// highest priority; larger indexes drain only when all smaller ones are
// empty (strict priority). ACC-Turbo's data plane supplies a classifier
// that assigns the packet to its cluster and looks the cluster up in the
// controller-installed cluster-to-queue mapping (core.Dataplane.Classify).
//
// Contract: the classifier should return an index in [0, n). The
// scheduler clamps out-of-range returns rather than dropping, but a
// classifier must not rely on that as routing policy — when a lookup has
// no answer (unknown cluster, stale mapping) it should fail closed to
// the lowest-priority queue itself, never default to queue 0.
type Classifier func(now eventsim.Time, p *packet.Packet) int

// Priority is a strict-priority scheduler over n tail-drop FIFO queues,
// modeling the Tofino traffic manager used by ACC-Turbo's prototype.
// Each queue has its own byte capacity, as on hardware.
type Priority struct {
	queues   []*FIFO
	classify Classifier
	onDrop   []DropFunc
	sink     telemetry.Sink

	// EnqueuedTo counts packets accepted per queue, for scheduling
	// diagnostics (e.g. the paper's Fig. 11a "score" metric).
	EnqueuedTo []uint64
}

// NewPriority builds a strict-priority scheduler with n queues of
// perQueueBytes capacity each. classify must return an index in [0, n);
// out-of-range indexes are clamped, matching the defensive behaviour of
// a real traffic manager.
func NewPriority(n, perQueueBytes int, classify Classifier) *Priority {
	if n <= 0 {
		panic(fmt.Sprintf("queue: priority queue count %d must be positive", n))
	}
	if classify == nil {
		panic("queue: nil classifier")
	}
	p := &Priority{
		queues:     make([]*FIFO, n),
		classify:   classify,
		sink:       telemetry.Nop(),
		EnqueuedTo: make([]uint64, n),
	}
	for i := range p.queues {
		p.queues[i] = NewFIFO(perQueueBytes)
	}
	return p
}

// NumQueues returns the number of priority levels.
func (pq *Priority) NumQueues() int { return len(pq.queues) }

// OnDrop registers an additional callback for rejected packets.
func (pq *Priority) OnDrop(fn DropFunc) { pq.onDrop = append(pq.onDrop, fn) }

// SetSink implements Instrumented: accounting is reported at the
// scheduler level (aggregate depth across all priority levels), once
// per packet, not per internal FIFO.
func (pq *Priority) SetSink(s telemetry.Sink) { pq.sink = telemetry.OrNop(s) }

// QueueLen returns the packet count of queue i.
func (pq *Priority) QueueLen(i int) int { return pq.queues[i].Len() }

// Enqueue implements Qdisc: the classifier picks the queue, and the
// packet tail-drops if that queue is full.
func (pq *Priority) Enqueue(now eventsim.Time, p *packet.Packet) DropReason {
	i := pq.classify(now, p)
	if i < 0 {
		i = 0
	}
	if i >= len(pq.queues) {
		i = len(pq.queues) - 1
	}
	if res := pq.queues[i].Enqueue(now, p); res != DropNone {
		pq.sink.RecordDrop(now, p.Size(), uint8(res))
		for _, fn := range pq.onDrop {
			fn(now, p, res)
		}
		return res
	}
	pq.EnqueuedTo[i]++
	pq.sink.RecordEnqueue(now, p.Size(), pq.Len(), pq.Bytes())
	return DropNone
}

// Dequeue implements Qdisc: drain the highest-priority non-empty queue.
func (pq *Priority) Dequeue(now eventsim.Time) *packet.Packet {
	for _, q := range pq.queues {
		if p := q.Dequeue(now); p != nil {
			pq.sink.RecordDequeue(now, p.Size(), pq.Len(), pq.Bytes())
			return p
		}
	}
	return nil
}

// Len implements Qdisc.
func (pq *Priority) Len() int {
	n := 0
	for _, q := range pq.queues {
		n += q.Len()
	}
	return n
}

// Bytes implements Qdisc.
func (pq *Priority) Bytes() int {
	n := 0
	for _, q := range pq.queues {
		n += q.Bytes()
	}
	return n
}
