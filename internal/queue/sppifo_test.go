package queue

import (
	"math/rand"
	"testing"
	"testing/quick"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
)

func rankByPort(_ eventsim.Time, p *packet.Packet) int64 { return int64(p.DstPort) }

func rankedPkt(rank uint16, size int) *packet.Packet {
	p := pkt(size)
	p.DstPort = rank
	return p
}

func TestSPPIFOSeparatesTwoRanks(t *testing.T) {
	s := NewSPPIFO(2, 1<<20, rankByPort)
	// Interleave high (9) and low (1) ranks; after adaptation, lows
	// should dequeue before highs that arrived earlier.
	for i := 0; i < 50; i++ {
		s.Enqueue(0, rankedPkt(9, 100))
		s.Enqueue(0, rankedPkt(1, 100))
	}
	lowsBeforeHighs := 0
	seenHigh := false
	for {
		p := s.Dequeue(0)
		if p == nil {
			break
		}
		if p.DstPort == 9 {
			seenHigh = true
		} else if !seenHigh {
			lowsBeforeHighs++
		}
	}
	// A plain FIFO would yield lowsBeforeHighs ~= 1; SP-PIFO should
	// front-load most of the low-rank packets.
	if lowsBeforeHighs < 25 {
		t.Fatalf("only %d low-rank packets dequeued before any high-rank", lowsBeforeHighs)
	}
	if s.PushUps == 0 {
		t.Fatal("no push-up adaptations recorded")
	}
}

func TestSPPIFOPushDown(t *testing.T) {
	s := NewSPPIFO(2, 1<<20, rankByPort)
	// Drive both bounds up, then send a lower-rank packet: push-down
	// must fire and the bounds must drop.
	s.Enqueue(0, rankedPkt(200, 100)) // bottom queue bound -> 200
	s.Enqueue(0, rankedPkt(100, 100)) // top queue bound -> 100
	before := s.Bounds()
	s.Enqueue(0, rankedPkt(5, 100)) // undershoots the top bound
	if s.PushDowns == 0 {
		t.Fatalf("push-down did not fire (bounds %v -> %v)", before, s.Bounds())
	}
	after := s.Bounds()
	if after[0] >= before[0] {
		t.Fatalf("bounds did not decrease: %v -> %v", before, after)
	}
}

func TestSPPIFOFewerInversionsThanFIFO(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ranks := make([]uint16, 2000)
	for i := range ranks {
		ranks[i] = uint16(r.Intn(100))
	}

	inversions := func(q Qdisc) uint64 {
		// Enqueue in bursts of 20, dequeue 10, to keep queues occupied.
		var out []uint16
		i := 0
		for i < len(ranks) {
			for j := 0; j < 20 && i < len(ranks); j++ {
				q.Enqueue(0, rankedPkt(ranks[i], 100))
				i++
			}
			for j := 0; j < 10; j++ {
				if p := q.Dequeue(0); p != nil {
					out = append(out, p.DstPort)
				}
			}
		}
		for {
			p := q.Dequeue(0)
			if p == nil {
				break
			}
			out = append(out, p.DstPort)
		}
		var inv uint64
		max := out[0]
		for _, v := range out[1:] {
			if v < max {
				inv++
			}
			if v > max {
				max = v
			}
		}
		return inv
	}

	fifoInv := inversions(NewFIFO(1 << 20))
	spInv := inversions(NewSPPIFO(8, 1<<20, rankByPort))
	if spInv >= fifoInv {
		t.Fatalf("SP-PIFO inversions %d !< FIFO inversions %d", spInv, fifoInv)
	}
	// PIFO is the zero-inversion reference under this access pattern.
	pifoInv := inversions(NewPIFO(1<<20, rankByPort))
	if pifoInv > spInv {
		t.Fatalf("PIFO (%d) must not invert more than SP-PIFO (%d)", pifoInv, spInv)
	}
}

func TestSPPIFOValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewSPPIFO(0, 100, rankByPort) },
		func() { NewSPPIFO(2, 100, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAIFOAdmitsLowRanksUnderPressure(t *testing.T) {
	a := NewAIFO(10_000, 64, 0.1, rankByPort)
	// Fill most of the queue with mid-rank packets.
	for i := 0; i < 60; i++ {
		a.Enqueue(0, rankedPkt(50, 150))
	}
	// Now the queue is ~90% full: a high-rank packet must be rejected,
	// a low-rank packet admitted.
	if res := a.Enqueue(0, rankedPkt(99, 150)); res == DropNone {
		t.Fatal("high-rank packet admitted into a nearly full queue")
	}
	if res := a.Enqueue(0, rankedPkt(0, 150)); res != DropNone {
		t.Fatalf("low-rank packet rejected: %v", res)
	}
	if a.AdmissionDrops == 0 {
		t.Fatal("admission drops not counted")
	}
}

func TestAIFOFIFOWhenEmpty(t *testing.T) {
	a := NewAIFO(100_000, 32, 0.1, rankByPort)
	// With an empty queue everything is admitted regardless of rank.
	for i := 0; i < 10; i++ {
		if res := a.Enqueue(0, rankedPkt(uint16(90+i), 100)); res != DropNone {
			t.Fatalf("packet %d rejected on an empty queue: %v", i, res)
		}
	}
	// And drains in FIFO order.
	for i := 0; i < 10; i++ {
		if p := a.Dequeue(0); p.DstPort != uint16(90+i) {
			t.Fatalf("AIFO reordered: got %d at %d", p.DstPort, i)
		}
	}
}

func TestAIFOValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewAIFO(100, 0, 0.1, rankByPort) },
		func() { NewAIFO(100, 8, 1.0, rankByPort) },
		func() { NewAIFO(100, 8, 0.1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: SP-PIFO conserves packets and bytes like any qdisc.
func TestQuickSPPIFOConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSPPIFO(4, 50_000, rankByPort)
		dropped := 0
		s.OnDrop(func(eventsim.Time, *packet.Packet, DropReason) { dropped++ })
		enq, deq, bytes := 0, 0, 0
		for i := 0; i < 500; i++ {
			if r.Intn(2) == 0 {
				size := 40 + r.Intn(1400)
				if s.Enqueue(0, rankedPkt(uint16(r.Intn(100)), size)) == DropNone {
					enq++
					bytes += size
				}
			} else if p := s.Dequeue(0); p != nil {
				deq++
				bytes -= p.Size()
			}
		}
		return s.Len() == enq-deq && s.Bytes() == bytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: AIFO never exceeds capacity and admission never rejects
// when the window says the rank is the best seen.
func TestQuickAIFOBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := NewAIFO(20_000, 32, 0.125, rankByPort)
		for i := 0; i < 400; i++ {
			a.Enqueue(0, rankedPkt(uint16(r.Intn(100)), 40+r.Intn(1400)))
			if a.Bytes() > 20_000 {
				return false
			}
			if r.Intn(3) == 0 {
				a.Dequeue(0)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSPPIFO(b *testing.B) {
	s := NewSPPIFO(8, 1<<20, rankByPort)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Enqueue(0, rankedPkt(uint16(i%100), 500))
		s.Dequeue(0)
	}
}

func BenchmarkAIFO(b *testing.B) {
	a := NewAIFO(1<<20, 64, 0.1, rankByPort)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Enqueue(0, rankedPkt(uint16(i%100), 500))
		a.Dequeue(0)
	}
}
