package queue

import (
	"fmt"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
	"accturbo/internal/telemetry"
)

// AIFO approximates a PIFO with a single FIFO queue plus rank-aware
// admission control (Yu et al., "Programmable Packet Scheduling with a
// Single Queue", SIGCOMM 2021) — the other scheduler realization the
// paper cites (§5.1, [56]).
//
// Arriving packets are admitted iff their rank's quantile within a
// sliding window of recent ranks does not exceed the queue's remaining
// headroom: with the queue c/C full, a packet is admitted when
//
//	quantile(r) <= (1/(1-k)) * (C-c)/C
//
// where k in [0,1) is a burst-tolerance parameter. Low-rank (high
// priority) packets are almost always admitted; high-rank packets are
// admitted only while the queue is empty enough. Admitted packets
// drain in FIFO order, so no PIFO-style reordering machinery is
// needed.
type AIFO struct {
	fifo   *FIFO
	rank   RankFunc
	window []int64
	wpos   int
	wfull  bool
	k      float64
	onDrop []DropFunc
	sink   telemetry.Sink

	// AdmissionDrops counts packets rejected by the quantile check.
	AdmissionDrops uint64
}

// NewAIFO builds an AIFO queue with the given capacity, rank function,
// sliding-window size, and burst parameter k in [0, 1).
func NewAIFO(capacityBytes int, windowSize int, k float64, rank RankFunc) *AIFO {
	if windowSize <= 0 {
		panic(fmt.Sprintf("queue: AIFO window %d must be positive", windowSize))
	}
	if k < 0 || k >= 1 {
		panic(fmt.Sprintf("queue: AIFO k %v out of [0,1)", k))
	}
	if rank == nil {
		panic("queue: nil rank function")
	}
	return &AIFO{
		fifo:   NewFIFO(capacityBytes),
		rank:   rank,
		window: make([]int64, windowSize),
		k:      k,
		sink:   telemetry.Nop(),
	}
}

// OnDrop registers an additional drop callback.
func (a *AIFO) OnDrop(fn DropFunc) { a.onDrop = append(a.onDrop, fn) }

// SetSink implements Instrumented.
func (a *AIFO) SetSink(s telemetry.Sink) { a.sink = telemetry.OrNop(s) }

// quantile returns the fraction of window entries strictly below r.
func (a *AIFO) quantile(r int64) float64 {
	n := len(a.window)
	if !a.wfull {
		n = a.wpos
	}
	if n == 0 {
		return 0
	}
	below := 0
	for i := 0; i < n; i++ {
		if a.window[i] < r {
			below++
		}
	}
	return float64(below) / float64(n)
}

func (a *AIFO) observe(r int64) {
	a.window[a.wpos] = r
	a.wpos++
	if a.wpos == len(a.window) {
		a.wpos = 0
		a.wfull = true
	}
}

// Enqueue implements Qdisc with quantile-based admission.
func (a *AIFO) Enqueue(now eventsim.Time, p *packet.Packet) DropReason {
	r := a.rank(now, p)
	q := a.quantile(r)
	a.observe(r)
	headroom := float64(a.fifo.Capacity()-a.fifo.Bytes()) / float64(a.fifo.Capacity())
	if q > headroom/(1-a.k) {
		a.AdmissionDrops++
		a.sink.RecordDrop(now, p.Size(), uint8(DropEarly))
		for _, fn := range a.onDrop {
			fn(now, p, DropEarly)
		}
		return DropEarly
	}
	if res := a.fifo.Enqueue(now, p); res != DropNone {
		a.sink.RecordDrop(now, p.Size(), uint8(res))
		for _, fn := range a.onDrop {
			fn(now, p, res)
		}
		return res
	}
	a.sink.RecordEnqueue(now, p.Size(), a.fifo.Len(), a.fifo.Bytes())
	return DropNone
}

// Dequeue implements Qdisc.
func (a *AIFO) Dequeue(now eventsim.Time) *packet.Packet {
	p := a.fifo.Dequeue(now)
	if p != nil {
		a.sink.RecordDequeue(now, p.Size(), a.fifo.Len(), a.fifo.Bytes())
	}
	return p
}

// Len implements Qdisc.
func (a *AIFO) Len() int { return a.fifo.Len() }

// Bytes implements Qdisc.
func (a *AIFO) Bytes() int { return a.fifo.Bytes() }
