// Package queue implements the queueing disciplines used by the
// ACC-Turbo simulator: tail-drop FIFO, Random Early Detection (RED),
// strict-priority multi-queue scheduling, an idealized PIFO (push-in
// first-out) queue, and a token-bucket rate limiter.
//
// All disciplines implement Qdisc so the switch model in
// internal/netsim can drive any of them interchangeably.
package queue

import (
	"fmt"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
	"accturbo/internal/telemetry"
)

// DropReason explains why a packet was not enqueued.
type DropReason uint8

// Drop reasons.
const (
	// DropNone means the packet was accepted.
	DropNone DropReason = iota
	// DropTail means the queue was full.
	DropTail
	// DropEarly means RED dropped the packet probabilistically.
	DropEarly
	// DropPushOut means a PIFO evicted the packet to admit a
	// higher-priority one.
	DropPushOut
	// DropPolicer means a rate limiter or filter rejected the packet.
	DropPolicer
	// DropLinkDown means the output port's link was down (failed or
	// fault-injected) when the packet arrived. Kept distinct from
	// DropTail so fault-induced loss never masquerades as congestion
	// loss in telemetry.
	DropLinkDown
)

// String names the drop reason.
func (r DropReason) String() string {
	switch r {
	case DropNone:
		return "none"
	case DropTail:
		return "tail"
	case DropEarly:
		return "early"
	case DropPushOut:
		return "push-out"
	case DropPolicer:
		return "policer"
	case DropLinkDown:
		return "link-down"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// DropFunc observes packets rejected by a queueing discipline. ACC's
// agent, for example, subscribes to RED drops to build its drop
// history.
type DropFunc func(now eventsim.Time, p *packet.Packet, reason DropReason)

// Qdisc is a queueing discipline attached to an output port.
type Qdisc interface {
	// Enqueue offers a packet at virtual time now. It returns DropNone
	// if the packet was accepted, or the reason it was rejected.
	Enqueue(now eventsim.Time, p *packet.Packet) DropReason
	// Dequeue removes and returns the next packet to transmit, or nil
	// if the discipline is empty.
	Dequeue(now eventsim.Time) *packet.Packet
	// Len returns the number of queued packets.
	Len() int
	// Bytes returns the number of queued bytes.
	Bytes() int
}

// DropNotifier is the drop-subscription half of a discipline: OnDrop
// registers a callback invoked for every packet the discipline rejects
// or pushes out, with the reason. Every qdisc in this package
// implements it (enforced by the compile-time assertions below), so a
// port can always attach drop accounting — a discipline that forgot to
// expose OnDrop would fail the build here instead of silently losing
// drops.
type DropNotifier interface {
	OnDrop(DropFunc)
}

// Instrumented is implemented by disciplines that report accounting
// (enqueue/dequeue/drop/depth) through a telemetry.Sink. Disciplines
// default to the shared no-op sink, so the hot path never branches on
// nil accounting; SetSink replaces it wholesale (wrap sinks in a
// telemetry.TeeSink to stack them).
type Instrumented interface {
	SetSink(telemetry.Sink)
}

// Compile-time interface checks: every discipline must satisfy Qdisc,
// DropNotifier and Instrumented.
var (
	_ Qdisc = (*FIFO)(nil)
	_ Qdisc = (*RED)(nil)
	_ Qdisc = (*Priority)(nil)
	_ Qdisc = (*PIFO)(nil)
	_ Qdisc = (*SPPIFO)(nil)
	_ Qdisc = (*AIFO)(nil)

	_ DropNotifier = (*FIFO)(nil)
	_ DropNotifier = (*RED)(nil)
	_ DropNotifier = (*Priority)(nil)
	_ DropNotifier = (*PIFO)(nil)
	_ DropNotifier = (*SPPIFO)(nil)
	_ DropNotifier = (*AIFO)(nil)

	_ Instrumented = (*FIFO)(nil)
	_ Instrumented = (*RED)(nil)
	_ Instrumented = (*Priority)(nil)
	_ Instrumented = (*PIFO)(nil)
	_ Instrumented = (*SPPIFO)(nil)
	_ Instrumented = (*AIFO)(nil)
)

// ring is a growable FIFO ring buffer of packets.
type ring struct {
	buf        []*packet.Packet
	head, size int
}

func (r *ring) len() int { return r.size }

func (r *ring) push(p *packet.Packet) {
	if r.size == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.size)%len(r.buf)] = p
	r.size++
}

func (r *ring) pop() *packet.Packet {
	if r.size == 0 {
		return nil
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.size--
	return p
}

func (r *ring) grow() {
	n := len(r.buf) * 2
	if n == 0 {
		n = 16
	}
	buf := make([]*packet.Packet, n)
	for i := 0; i < r.size; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}

// FIFO is a tail-drop first-in first-out queue bounded in bytes.
type FIFO struct {
	capBytes int
	bytes    int
	q        ring
	onDrop   []DropFunc
	sink     telemetry.Sink
}

// NewFIFO returns a FIFO with the given byte capacity. A non-positive
// capacity panics: an unbounded queue hides every congestion signal the
// simulated experiments depend on.
func NewFIFO(capacityBytes int) *FIFO {
	if capacityBytes <= 0 {
		panic(fmt.Sprintf("queue: FIFO capacity %d must be positive", capacityBytes))
	}
	return &FIFO{capBytes: capacityBytes, sink: telemetry.Nop()}
}

// OnDrop registers an additional callback invoked for every rejected
// packet. Callbacks run in registration order.
func (f *FIFO) OnDrop(fn DropFunc) { f.onDrop = append(f.onDrop, fn) }

// SetSink implements Instrumented.
func (f *FIFO) SetSink(s telemetry.Sink) { f.sink = telemetry.OrNop(s) }

// Capacity returns the configured byte capacity.
func (f *FIFO) Capacity() int { return f.capBytes }

// Enqueue implements Qdisc.
func (f *FIFO) Enqueue(now eventsim.Time, p *packet.Packet) DropReason {
	if f.bytes+p.Size() > f.capBytes {
		f.sink.RecordDrop(now, p.Size(), uint8(DropTail))
		for _, fn := range f.onDrop {
			fn(now, p, DropTail)
		}
		return DropTail
	}
	f.q.push(p)
	f.bytes += p.Size()
	f.sink.RecordEnqueue(now, p.Size(), f.q.len(), f.bytes)
	return DropNone
}

// Dequeue implements Qdisc.
func (f *FIFO) Dequeue(now eventsim.Time) *packet.Packet {
	p := f.q.pop()
	if p != nil {
		f.bytes -= p.Size()
		f.sink.RecordDequeue(now, p.Size(), f.q.len(), f.bytes)
	}
	return p
}

// Len implements Qdisc.
func (f *FIFO) Len() int { return f.q.len() }

// Bytes implements Qdisc.
func (f *FIFO) Bytes() int { return f.bytes }
