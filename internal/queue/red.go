package queue

import (
	"fmt"
	"math"
	"math/rand"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
	"accturbo/internal/telemetry"
)

// REDConfig parameterizes a Random Early Detection queue following
// Floyd and Jacobson (1993). Thresholds are expressed in bytes so the
// discipline composes with the byte-capacity FIFO underneath.
type REDConfig struct {
	// CapacityBytes bounds the physical queue.
	CapacityBytes int
	// MinThreshold and MaxThreshold bound the early-drop region of the
	// EWMA average queue size (bytes).
	MinThreshold int
	MaxThreshold int
	// MaxP is the drop probability when the average reaches
	// MaxThreshold.
	MaxP float64
	// Weight is the EWMA weight w_q applied per arrival.
	Weight float64
	// MeanPacketSize calibrates the idle-time decay of the average
	// (how many "virtual" small packets could have been transmitted
	// while the queue sat empty).
	MeanPacketSize int
	// IdleRate is the drain rate in bytes/second used for idle decay.
	IdleRate float64
	// Seed makes the probabilistic dropper deterministic.
	Seed int64
	// Gentle enables the "gentle RED" variant: between MaxThreshold
	// and 2*MaxThreshold the drop probability ramps from MaxP to 1
	// instead of jumping to 1.
	Gentle bool
}

// DefaultREDConfig returns the configuration used across the paper
// reproduction: thresholds at 25% and 75% of capacity, max_p = 0.1, and
// the classic w_q = 0.002.
func DefaultREDConfig(capacityBytes int, idleRate float64) REDConfig {
	return REDConfig{
		CapacityBytes:  capacityBytes,
		MinThreshold:   capacityBytes / 4,
		MaxThreshold:   capacityBytes * 3 / 4,
		MaxP:           0.1,
		Weight:         0.002,
		MeanPacketSize: 500,
		IdleRate:       idleRate,
		Seed:           1,
	}
}

// RED implements Random Early Detection over an internal FIFO.
//
// Every early or forced drop is reported through OnDrop, which is how
// the classic ACC agent (internal/acc) observes the headers of dropped
// packets to infer aggregates.
type RED struct {
	cfg    REDConfig
	fifo   *FIFO
	rng    *rand.Rand
	onDrop []DropFunc
	sink   telemetry.Sink

	avg       float64 // EWMA of the queue size in bytes
	count     int     // packets since last early drop
	idleSince eventsim.Time
	idle      bool

	// Stats since construction.
	Arrivals   uint64
	EarlyDrops uint64
	TailDrops  uint64
}

// NewRED builds a RED queue from cfg, validating the threshold
// ordering.
func NewRED(cfg REDConfig) *RED {
	if cfg.CapacityBytes <= 0 {
		panic("queue: RED capacity must be positive")
	}
	if cfg.MinThreshold <= 0 || cfg.MaxThreshold <= cfg.MinThreshold {
		panic(fmt.Sprintf("queue: RED thresholds invalid: min=%d max=%d", cfg.MinThreshold, cfg.MaxThreshold))
	}
	if cfg.MaxP <= 0 || cfg.MaxP > 1 {
		panic(fmt.Sprintf("queue: RED MaxP %v out of (0,1]", cfg.MaxP))
	}
	if cfg.Weight <= 0 || cfg.Weight > 1 {
		panic(fmt.Sprintf("queue: RED weight %v out of (0,1]", cfg.Weight))
	}
	if cfg.MeanPacketSize <= 0 {
		cfg.MeanPacketSize = 500
	}
	return &RED{
		cfg:  cfg,
		fifo: NewFIFO(cfg.CapacityBytes),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		sink: telemetry.Nop(),
		idle: true,
	}
}

// OnDrop registers an additional callback invoked for every dropped
// packet. Callbacks run in registration order.
func (r *RED) OnDrop(fn DropFunc) { r.onDrop = append(r.onDrop, fn) }

// SetSink implements Instrumented.
func (r *RED) SetSink(s telemetry.Sink) { r.sink = telemetry.OrNop(s) }

// AvgQueue returns the current EWMA average queue size in bytes.
func (r *RED) AvgQueue() float64 { return r.avg }

func (r *RED) drop(now eventsim.Time, p *packet.Packet, reason DropReason) DropReason {
	r.sink.RecordDrop(now, p.Size(), uint8(reason))
	for _, fn := range r.onDrop {
		fn(now, p, reason)
	}
	return reason
}

// Enqueue implements Qdisc with RED early-drop semantics.
func (r *RED) Enqueue(now eventsim.Time, p *packet.Packet) DropReason {
	r.Arrivals++
	r.updateAverage(now)

	switch {
	case r.avg < float64(r.cfg.MinThreshold):
		r.count = -1
	case r.avg >= float64(r.maxCut()):
		r.count = 0
		r.EarlyDrops++
		return r.drop(now, p, DropEarly)
	default:
		r.count++
		pb := r.dropProbability()
		pa := pb
		if r.count > 0 && r.count*int(math.Ceil(1/pb)) < math.MaxInt32 {
			den := 1 - float64(r.count)*pb
			if den <= 0 {
				pa = 1
			} else {
				pa = pb / den
			}
		}
		if r.rng.Float64() < pa {
			r.count = 0
			r.EarlyDrops++
			return r.drop(now, p, DropEarly)
		}
	}

	if res := r.fifo.Enqueue(now, p); res != DropNone {
		r.TailDrops++
		return r.drop(now, p, res)
	}
	r.sink.RecordEnqueue(now, p.Size(), r.fifo.Len(), r.fifo.Bytes())
	r.idle = false
	return DropNone
}

// maxCut is the average-queue level above which every packet drops.
func (r *RED) maxCut() int {
	if r.cfg.Gentle {
		return 2 * r.cfg.MaxThreshold
	}
	return r.cfg.MaxThreshold
}

// dropProbability returns p_b for the current average.
func (r *RED) dropProbability() float64 {
	min, max := float64(r.cfg.MinThreshold), float64(r.cfg.MaxThreshold)
	if r.avg < max {
		return r.cfg.MaxP * (r.avg - min) / (max - min)
	}
	if !r.cfg.Gentle {
		return 1
	}
	// Gentle region: ramp MaxP -> 1 over [max, 2*max].
	return r.cfg.MaxP + (1-r.cfg.MaxP)*(r.avg-max)/max
}

// updateAverage applies the EWMA update, including idle-time decay.
func (r *RED) updateAverage(now eventsim.Time) {
	q := float64(r.fifo.Bytes())
	if r.idle && r.cfg.IdleRate > 0 {
		// While idle, pretend m small packets drained.
		idleSec := (now - r.idleSince).Seconds()
		m := idleSec * r.cfg.IdleRate / float64(r.cfg.MeanPacketSize)
		r.avg *= math.Pow(1-r.cfg.Weight, m)
		r.idle = false
	}
	r.avg = (1-r.cfg.Weight)*r.avg + r.cfg.Weight*q
}

// Dequeue implements Qdisc.
func (r *RED) Dequeue(now eventsim.Time) *packet.Packet {
	p := r.fifo.Dequeue(now)
	if p != nil {
		r.sink.RecordDequeue(now, p.Size(), r.fifo.Len(), r.fifo.Bytes())
	}
	if r.fifo.Len() == 0 && !r.idle {
		r.idle = true
		r.idleSince = now
	}
	return p
}

// Len implements Qdisc.
func (r *RED) Len() int { return r.fifo.Len() }

// Bytes implements Qdisc.
func (r *RED) Bytes() int { return r.fifo.Bytes() }
