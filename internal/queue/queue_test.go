package queue

import (
	"math/rand"
	"testing"
	"testing/quick"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
)

func pkt(size int) *packet.Packet {
	return &packet.Packet{
		SrcIP:    packet.V4(10, 0, 0, 1),
		DstIP:    packet.V4(10, 0, 0, 2),
		Length:   uint16(size),
		TTL:      64,
		Protocol: packet.ProtoUDP,
	}
}

func TestFIFOOrderAndAccounting(t *testing.T) {
	f := NewFIFO(10000)
	sizes := []int{100, 200, 300}
	for _, s := range sizes {
		if res := f.Enqueue(0, pkt(s)); res != DropNone {
			t.Fatalf("enqueue %d dropped: %v", s, res)
		}
	}
	if f.Len() != 3 || f.Bytes() != 600 {
		t.Fatalf("len=%d bytes=%d", f.Len(), f.Bytes())
	}
	for _, s := range sizes {
		p := f.Dequeue(0)
		if p == nil || p.Size() != s {
			t.Fatalf("dequeue got %v, want size %d", p, s)
		}
	}
	if f.Dequeue(0) != nil {
		t.Fatal("dequeue from empty should be nil")
	}
	if f.Bytes() != 0 || f.Len() != 0 {
		t.Fatalf("non-zero after drain: len=%d bytes=%d", f.Len(), f.Bytes())
	}
}

func TestFIFOTailDrop(t *testing.T) {
	f := NewFIFO(250)
	var dropped []*packet.Packet
	f.OnDrop(func(_ eventsim.Time, p *packet.Packet, r DropReason) {
		if r != DropTail {
			t.Errorf("reason = %v", r)
		}
		dropped = append(dropped, p)
	})
	if f.Enqueue(0, pkt(200)) != DropNone {
		t.Fatal("first packet should fit")
	}
	if f.Enqueue(0, pkt(100)) != DropTail {
		t.Fatal("second packet should tail-drop")
	}
	if len(dropped) != 1 {
		t.Fatalf("drop callback fired %d times", len(dropped))
	}
	// After draining, space frees up.
	f.Dequeue(0)
	if f.Enqueue(0, pkt(100)) != DropNone {
		t.Fatal("packet should fit after drain")
	}
}

func TestFIFOGrowsRing(t *testing.T) {
	f := NewFIFO(1 << 20)
	for i := 0; i < 1000; i++ {
		if f.Enqueue(0, pkt(100)) != DropNone {
			t.Fatalf("packet %d dropped", i)
		}
	}
	if f.Len() != 1000 {
		t.Fatalf("len = %d", f.Len())
	}
	for i := 0; i < 1000; i++ {
		if f.Dequeue(0) == nil {
			t.Fatalf("nil at %d", i)
		}
	}
}

func TestFIFOInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFIFO(0)
}

func TestREDBelowMinThresholdNeverDrops(t *testing.T) {
	cfg := DefaultREDConfig(100_000, 1e9)
	r := NewRED(cfg)
	drops := 0
	r.OnDrop(func(eventsim.Time, *packet.Packet, DropReason) { drops++ })
	// Keep the instantaneous queue tiny: enqueue+dequeue alternately.
	for i := 0; i < 10_000; i++ {
		r.Enqueue(eventsim.Time(i)*eventsim.Microsecond, pkt(500))
		r.Dequeue(eventsim.Time(i) * eventsim.Microsecond)
	}
	if drops != 0 {
		t.Fatalf("RED dropped %d packets below min threshold", drops)
	}
}

func TestREDDropsUnderSustainedOverload(t *testing.T) {
	cfg := DefaultREDConfig(100_000, 1e9)
	r := NewRED(cfg)
	early := 0
	r.OnDrop(func(_ eventsim.Time, _ *packet.Packet, reason DropReason) {
		if reason == DropEarly {
			early++
		}
	})
	// Fill without draining: the average climbs past max threshold.
	for i := 0; i < 5000; i++ {
		r.Enqueue(eventsim.Time(i), pkt(500))
	}
	if early == 0 {
		t.Fatal("RED never early-dropped under overload")
	}
	if r.Bytes() > cfg.CapacityBytes {
		t.Fatalf("queue overflow: %d > %d", r.Bytes(), cfg.CapacityBytes)
	}
	if r.AvgQueue() < float64(cfg.MinThreshold) {
		t.Fatalf("average %v did not climb", r.AvgQueue())
	}
}

func TestREDIdleDecay(t *testing.T) {
	cfg := DefaultREDConfig(100_000, 1e9)
	r := NewRED(cfg)
	for i := 0; i < 2000; i++ {
		r.Enqueue(eventsim.Time(i), pkt(500))
	}
	for r.Dequeue(eventsim.Time(3000)) != nil {
	}
	before := r.AvgQueue()
	// One arrival after a long idle period: the average must collapse.
	r.Enqueue(10*eventsim.Second, pkt(500))
	if r.AvgQueue() >= before/10 {
		t.Fatalf("idle decay too weak: before=%v after=%v", before, r.AvgQueue())
	}
}

func TestREDGentleRegion(t *testing.T) {
	cfg := DefaultREDConfig(100_000, 1e9)
	cfg.Gentle = true
	r := NewRED(cfg)
	// Force the average into (max, 2*max): probability should be in
	// (MaxP, 1), not an immediate certain drop.
	r.avg = float64(cfg.MaxThreshold) * 1.5
	pb := r.dropProbability()
	if pb <= cfg.MaxP || pb >= 1 {
		t.Fatalf("gentle p_b = %v, want within (%v, 1)", pb, cfg.MaxP)
	}
	// Beyond 2*max everything drops.
	r.avg = float64(2*cfg.MaxThreshold) + 1
	if got := r.Enqueue(0, pkt(500)); got != DropEarly {
		t.Fatalf("above gentle cut: got %v", got)
	}
}

func TestREDConfigValidation(t *testing.T) {
	bad := []REDConfig{
		{CapacityBytes: 0, MinThreshold: 1, MaxThreshold: 2, MaxP: 0.1, Weight: 0.002},
		{CapacityBytes: 100, MinThreshold: 50, MaxThreshold: 40, MaxP: 0.1, Weight: 0.002},
		{CapacityBytes: 100, MinThreshold: 10, MaxThreshold: 40, MaxP: 0, Weight: 0.002},
		{CapacityBytes: 100, MinThreshold: 10, MaxThreshold: 40, MaxP: 0.1, Weight: 2},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d should panic", i)
				}
			}()
			NewRED(cfg)
		}()
	}
}

func TestPriorityStrictOrdering(t *testing.T) {
	// Classify by destination port: port == queue index.
	pq := NewPriority(4, 10_000, func(_ eventsim.Time, p *packet.Packet) int {
		return int(p.DstPort)
	})
	mk := func(prio int, size int) *packet.Packet {
		q := pkt(size)
		q.DstPort = uint16(prio)
		return q
	}
	pq.Enqueue(0, mk(3, 100))
	pq.Enqueue(0, mk(1, 200))
	pq.Enqueue(0, mk(1, 300))
	pq.Enqueue(0, mk(0, 400))
	wantSizes := []int{400, 200, 300, 100} // queue 0 first, then FIFO within queue 1
	for i, want := range wantSizes {
		p := pq.Dequeue(0)
		if p == nil || p.Size() != want {
			t.Fatalf("dequeue %d: got %v, want size %d", i, p, want)
		}
	}
}

func TestPriorityClampsClassifier(t *testing.T) {
	pq := NewPriority(2, 10_000, func(_ eventsim.Time, p *packet.Packet) int {
		return int(p.DstPort) // may be out of range
	})
	a := pkt(100)
	a.DstPort = 50 // clamps to queue 1
	b := pkt(200)
	b.DstPort = 0
	if pq.Enqueue(0, a) != DropNone || pq.Enqueue(0, b) != DropNone {
		t.Fatal("enqueue failed")
	}
	if pq.QueueLen(1) != 1 || pq.QueueLen(0) != 1 {
		t.Fatalf("queue lens: %d %d", pq.QueueLen(0), pq.QueueLen(1))
	}
	if got := pq.Dequeue(0); got.Size() != 200 {
		t.Fatalf("priority order violated: got size %d", got.Size())
	}
}

func TestPriorityPerQueueTailDrop(t *testing.T) {
	pq := NewPriority(2, 250, func(_ eventsim.Time, p *packet.Packet) int {
		return int(p.DstPort)
	})
	drops := 0
	pq.OnDrop(func(eventsim.Time, *packet.Packet, DropReason) { drops++ })
	a := pkt(200)
	b := pkt(200) // overflows queue 0
	c := pkt(200)
	c.DstPort = 1 // fits in queue 1
	pq.Enqueue(0, a)
	if pq.Enqueue(0, b) != DropTail {
		t.Fatal("expected tail drop in queue 0")
	}
	if pq.Enqueue(0, c) != DropNone {
		t.Fatal("queue 1 should have space")
	}
	if drops != 1 {
		t.Fatalf("drop callback fired %d times", drops)
	}
	if pq.Len() != 2 || pq.Bytes() != 400 {
		t.Fatalf("len=%d bytes=%d", pq.Len(), pq.Bytes())
	}
	if pq.EnqueuedTo[0] != 1 || pq.EnqueuedTo[1] != 1 {
		t.Fatalf("EnqueuedTo = %v", pq.EnqueuedTo)
	}
}

func TestPIFODequeuesInRankOrder(t *testing.T) {
	q := NewPIFO(1<<20, func(_ eventsim.Time, p *packet.Packet) int64 {
		return int64(p.DstPort)
	})
	ports := []uint16{5, 1, 3, 2, 4}
	for _, prt := range ports {
		p := pkt(100)
		p.DstPort = prt
		q.Enqueue(0, p)
	}
	for want := uint16(1); want <= 5; want++ {
		p := q.Dequeue(0)
		if p.DstPort != want {
			t.Fatalf("got rank %d, want %d", p.DstPort, want)
		}
	}
}

func TestPIFOTieBreakFIFO(t *testing.T) {
	q := NewPIFO(1<<20, func(eventsim.Time, *packet.Packet) int64 { return 7 })
	for i := 0; i < 5; i++ {
		p := pkt(100)
		p.ID = uint16(i)
		q.Enqueue(0, p)
	}
	for i := 0; i < 5; i++ {
		if p := q.Dequeue(0); p.ID != uint16(i) {
			t.Fatalf("tie-break violated at %d: got %d", i, p.ID)
		}
	}
}

func TestPIFOPushOut(t *testing.T) {
	q := NewPIFO(300, func(_ eventsim.Time, p *packet.Packet) int64 {
		return int64(p.DstPort)
	})
	var pushed []*packet.Packet
	q.OnDrop(func(_ eventsim.Time, p *packet.Packet, r DropReason) {
		if r == DropPushOut {
			pushed = append(pushed, p)
		}
	})
	bad := pkt(200)
	bad.DstPort = 9
	good := pkt(200)
	good.DstPort = 1
	q.Enqueue(0, bad)
	if res := q.Enqueue(0, good); res != DropNone {
		t.Fatalf("better packet should push out worse: %v", res)
	}
	if len(pushed) != 1 || pushed[0].DstPort != 9 {
		t.Fatalf("pushed = %v", pushed)
	}
	// A worse-or-equal packet tail-drops instead.
	worse := pkt(200)
	worse.DstPort = 2
	if res := q.Enqueue(0, worse); res != DropTail {
		t.Fatalf("worse packet should tail-drop: %v", res)
	}
}

// TestPIFOWorstCacheConsistency drives a random enqueue/dequeue mix and
// checks the cached worst-leaf index against a fresh scan after every
// operation: the cache must be bitwise-equivalent to the O(n) scan it
// replaces whenever it claims validity.
func TestPIFOWorstCacheConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	q := NewPIFO(20*100, func(_ eventsim.Time, p *packet.Packet) int64 {
		return int64(p.DstPort)
	})
	for op := 0; op < 5000; op++ {
		if r.Intn(3) < 2 {
			p := pkt(100)
			p.DstPort = uint16(r.Intn(50))
			q.Enqueue(0, p)
		} else {
			q.Dequeue(0)
		}
		if q.worstValid && len(q.h) > 0 && q.worstIdx != q.h.worstIndex() {
			t.Fatalf("op %d: cached worst %d, scan says %d", op, q.worstIdx, q.h.worstIndex())
		}
	}
}

// BenchmarkPIFOEnqueueFull measures enqueue at capacity — the
// sustained-overload regime where every arrival confronts the worst
// resident packet. The tail-drop case (arrival loses) is the hot path
// the worst-leaf cache turns from a per-enqueue leaf scan into O(1).
func BenchmarkPIFOEnqueueFull(b *testing.B) {
	mk := func(n int) *PIFO {
		q := NewPIFO(n*100, func(_ eventsim.Time, p *packet.Packet) int64 {
			return int64(p.DstPort)
		})
		for i := 0; i < n; i++ {
			p := pkt(100)
			p.DstPort = uint16(i % 1000)
			q.Enqueue(0, p)
		}
		return q
	}
	b.Run("taildrop", func(b *testing.B) {
		q := mk(4096)
		loser := pkt(100)
		loser.DstPort = 2000 // ranks worse than every resident packet
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if q.Enqueue(0, loser) != DropTail {
				b.Fatal("expected tail drop")
			}
		}
	})
	b.Run("pushout", func(b *testing.B) {
		// Every push-out strictly improves the resident set, so the
		// queue is periodically rebuilt (off the clock) to keep arrivals
		// winning.
		q := mk(4096)
		winner := pkt(100)
		winner.DstPort = 0 // beats every initial resident packet
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%1024 == 0 {
				b.StopTimer()
				q = mk(4096)
				b.StartTimer()
			}
			if q.Enqueue(0, winner) != DropNone {
				b.Fatal("expected push-out admit")
			}
		}
	})
}

func TestPIFOOversizePacket(t *testing.T) {
	q := NewPIFO(100, func(eventsim.Time, *packet.Packet) int64 { return 0 })
	if res := q.Enqueue(0, pkt(500)); res != DropTail {
		t.Fatalf("oversize packet: %v", res)
	}
}

func TestTokenBucketConformance(t *testing.T) {
	tb := NewTokenBucket(8000, 1000) // 1000 bytes/s, burst 1000 B
	if !tb.Allow(0, 1000) {
		t.Fatal("initial burst should be admitted")
	}
	if tb.Allow(0, 1) {
		t.Fatal("bucket should be empty")
	}
	// After 0.5 s, 500 bytes refilled.
	if !tb.Allow(eventsim.Second/2, 500) {
		t.Fatal("refill missing")
	}
	if tb.Allow(eventsim.Second/2, 1) {
		t.Fatal("over-admission after refill")
	}
	// Bucket caps at burst.
	if got := tb.Tokens(100 * eventsim.Second); got != 1000 {
		t.Fatalf("tokens = %v, want capped at 1000", got)
	}
}

func TestTokenBucketSetRate(t *testing.T) {
	tb := NewTokenBucket(8000, 100)
	tb.Allow(0, 100)
	tb.SetRate(80_000) // 10 KB/s
	if got := tb.RateBits(); got != 80_000 {
		t.Fatalf("RateBits = %v", got)
	}
	if !tb.Allow(eventsim.Second/100, 100) { // 10ms * 10KB/s = 100B
		t.Fatal("new rate not applied")
	}
}

func TestTokenBucketMonotonicTime(t *testing.T) {
	tb := NewTokenBucket(8_000_000, 1000)
	tb.Allow(eventsim.Second, 1000)
	// A stale timestamp must not mint tokens.
	if got := tb.Tokens(eventsim.Second / 2); got != 0 {
		t.Fatalf("stale timestamp minted %v tokens", got)
	}
}

// Property: any interleaving of enqueues and dequeues keeps byte/packet
// accounting consistent and conservation holds: enq = deq + dropped + queued.
func TestQuickFIFOConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := NewFIFO(5000)
		dropped := 0
		q.OnDrop(func(eventsim.Time, *packet.Packet, DropReason) { dropped++ })
		enq, deq := 0, 0
		bytes := 0
		for i := 0; i < 500; i++ {
			if r.Intn(2) == 0 {
				size := 40 + r.Intn(1400)
				if q.Enqueue(0, pkt(size)) == DropNone {
					enq++
					bytes += size
				}
			} else if p := q.Dequeue(0); p != nil {
				deq++
				bytes -= p.Size()
			}
		}
		return q.Len() == enq-deq && q.Bytes() == bytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: PIFO never dequeues a rank lower than one it already
// emitted... (ranks are fixed per packet, so the output must be sorted)
// and byte accounting stays exact.
func TestQuickPIFOSortedOutput(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := NewPIFO(100_000, func(_ eventsim.Time, p *packet.Packet) int64 {
			return int64(p.DstPort)
		})
		n := 1 + r.Intn(200)
		for i := 0; i < n; i++ {
			p := pkt(40 + r.Intn(500))
			p.DstPort = uint16(r.Intn(100))
			q.Enqueue(0, p)
		}
		last := int64(-1)
		for {
			p := q.Dequeue(0)
			if p == nil {
				break
			}
			if int64(p.DstPort) < last {
				return false
			}
			last = int64(p.DstPort)
		}
		return q.Bytes() == 0 && q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a token bucket never admits more than burst + rate*t bytes
// over any horizon.
func TestQuickTokenBucketBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rate := float64(1000+r.Intn(100_000)) * 8 // bits/s
		burst := 500 + r.Intn(5000)
		tb := NewTokenBucket(rate, burst)
		admitted := 0
		var now eventsim.Time
		for i := 0; i < 300; i++ {
			now += eventsim.Time(r.Int63n(int64(10 * eventsim.Millisecond)))
			size := 40 + r.Intn(1500)
			if tb.Allow(now, size) {
				admitted += size
			}
		}
		bound := float64(burst) + rate/8*now.Seconds() + 1 // +1 for float slack
		return float64(admitted) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDropReasonString(t *testing.T) {
	for r, want := range map[DropReason]string{
		DropNone: "none", DropTail: "tail", DropEarly: "early",
		DropPushOut: "push-out", DropPolicer: "policer", DropReason(42): "reason(42)",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
}

func BenchmarkFIFOEnqueueDequeue(b *testing.B) {
	q := NewFIFO(1 << 20)
	p := pkt(500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(0, p)
		q.Dequeue(0)
	}
}

func BenchmarkREDEnqueue(b *testing.B) {
	q := NewRED(DefaultREDConfig(1<<20, 1e9))
	p := pkt(500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(eventsim.Time(i), p)
		if q.Len() > 500 {
			q.Dequeue(eventsim.Time(i))
		}
	}
}

func BenchmarkPIFO(b *testing.B) {
	q := NewPIFO(1<<20, func(_ eventsim.Time, p *packet.Packet) int64 { return int64(p.DstPort) })
	p := pkt(500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.DstPort = uint16(i % 100)
		q.Enqueue(0, p)
		q.Dequeue(0)
	}
}

// Property: strict-priority dequeue never returns a packet while a
// higher-priority queue holds one.
func TestQuickPriorityStrictness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pq := NewPriority(4, 1<<20, func(_ eventsim.Time, p *packet.Packet) int {
			return int(p.DstPort)
		})
		for i := 0; i < 300; i++ {
			if r.Intn(3) != 0 {
				p := pkt(100)
				p.DstPort = uint16(r.Intn(4))
				pq.Enqueue(0, p)
			} else if p := pq.Dequeue(0); p != nil {
				for q := 0; q < int(p.DstPort); q++ {
					if pq.QueueLen(q) > 0 {
						return false // a higher-priority packet waited
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: SP-PIFO bounds stay sorted ascending after any workload
// (the invariant the push-up/push-down adaptation maintains).
func TestQuickSPPIFOBoundsSorted(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSPPIFO(4, 1<<20, func(_ eventsim.Time, p *packet.Packet) int64 {
			return int64(p.DstPort)
		})
		for i := 0; i < 400; i++ {
			p := pkt(100)
			p.DstPort = uint16(r.Intn(1000))
			s.Enqueue(0, p)
			if r.Intn(2) == 0 {
				s.Dequeue(0)
			}
			b := s.Bounds()
			for j := 1; j < len(b); j++ {
				if b[j] < b[j-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
