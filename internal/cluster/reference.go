package cluster

import (
	"fmt"

	"accturbo/internal/packet"
	"accturbo/internal/sketch"
)

// Reference is the retained naive implementation of the online
// clusterer: per-cluster allocated range slices, map-backed nominal
// sets, a per-packet distance-metric switch, and a full O(|C|^2)
// closestPair scan on every exhaustive-search step. It exists as the
// semantic oracle for Online's flattened fast path — equivalence tests
// assert both produce identical assignments and snapshots on the same
// trace — and as the baseline for BenchmarkObserveReference. It is not
// used on any production path.
type Reference struct {
	cfg      Config
	feats    packet.FeatureSet
	nominal  []bool
	scale    []float64
	clusters []*refState
	valbuf   []uint32
	nextUID  uint64
	Observed uint64
}

type refState struct {
	uid      uint64
	min, max []uint32
	sets     []map[uint32]struct{}
	blooms   []*sketch.Bloom
	setCard  []int

	center []float64
	count  uint64

	packets, bytes    uint64
	totalPackets      uint64
	benign, malicious uint64
}

// NewReference builds a naive clusterer with the same semantics as
// NewOnline. It panics on an invalid configuration.
func NewReference(cfg Config) *Reference {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	o := &Reference{
		cfg:     cfg,
		feats:   cfg.Features,
		nominal: make([]bool, len(cfg.Features)),
		valbuf:  make([]uint32, len(cfg.Features)),
	}
	o.scale = make([]float64, len(cfg.Features))
	for i, f := range cfg.Features {
		o.nominal[i] = f.Nominal()
		o.scale[i] = 1
		if cfg.Normalize && !o.nominal[i] {
			o.scale[i] = 1 / (float64(f.MaxValue()) + 1)
		}
	}
	if cfg.SliceInit {
		o.sliceInit()
	}
	return o
}

func (o *Reference) sliceInit() {
	k := o.cfg.MaxClusters
	lead := -1
	for f := range o.feats {
		if !o.nominal[f] {
			lead = f
			break
		}
	}
	for i := 0; i < k; i++ {
		vals := make([]uint32, len(o.feats))
		c := o.newCluster(vals)
		c.count = 0
		for f, feat := range o.feats {
			if o.nominal[f] {
				if o.cfg.UseBloom {
					c.blooms[f].Reset()
				} else {
					delete(c.sets[f], 0)
				}
				c.setCard[f] = 0
				continue
			}
			max := uint64(feat.MaxValue()) + 1
			lo, hi := uint32(0), uint32(max-1)
			if f == lead {
				lo = uint32(max * uint64(i) / uint64(k))
				hi = uint32(max*uint64(i+1)/uint64(k) - 1)
			}
			c.min[f], c.max[f] = lo, hi
			if c.center != nil {
				c.center[f] = (float64(lo) + float64(hi)) / 2
			}
		}
		o.clusters = append(o.clusters, c)
	}
}

// Config returns the clusterer's configuration.
func (o *Reference) Config() Config { return o.cfg }

// NumClusters returns the number of seeded clusters.
func (o *Reference) NumClusters() int { return len(o.clusters) }

func (o *Reference) newCluster(vals []uint32) *refState {
	o.nextUID++
	n := len(o.feats)
	c := &refState{
		uid:     o.nextUID,
		min:     make([]uint32, n),
		max:     make([]uint32, n),
		setCard: make([]int, n),
	}
	if o.cfg.UseBloom {
		c.blooms = make([]*sketch.Bloom, n)
	} else {
		c.sets = make([]map[uint32]struct{}, n)
	}
	if o.cfg.Distance == Euclidean {
		c.center = make([]float64, n)
	}
	for i, v := range vals {
		c.min[i], c.max[i] = v, v
		if o.nominal[i] {
			if o.cfg.UseBloom {
				c.blooms[i] = sketch.NewBloom(o.cfg.BloomBits, o.cfg.BloomHashes)
				c.blooms[i].Insert(uint64(v))
			} else {
				c.sets[i] = map[uint32]struct{}{v: {}}
			}
			c.setCard[i] = 1
		}
		if c.center != nil {
			c.center[i] = float64(v)
		}
	}
	c.count = 1
	return c
}

func (c *refState) contains(o *Reference, i int, v uint32) bool {
	if o.nominal[i] {
		if o.cfg.UseBloom {
			return c.blooms[i].Contains(uint64(v))
		}
		_, ok := c.sets[i][v]
		return ok
	}
	return v >= c.min[i] && v <= c.max[i]
}

func (c *refState) absorb(o *Reference, vals []uint32) {
	for i, v := range vals {
		if o.nominal[i] {
			if !c.contains(o, i, v) {
				if o.cfg.UseBloom {
					c.blooms[i].Insert(uint64(v))
				} else {
					c.sets[i][v] = struct{}{}
				}
				c.setCard[i]++
			}
			continue
		}
		if v < c.min[i] {
			c.min[i] = v
		}
		if v > c.max[i] {
			c.max[i] = v
		}
	}
	if c.center != nil {
		lr := o.cfg.LearningRate
		for i, v := range vals {
			c.center[i] += lr * (float64(v) - c.center[i])
		}
	}
}

func (c *refState) mergeFrom(o *Reference, src *refState) {
	for i := range c.min {
		if o.nominal[i] {
			if o.cfg.UseBloom {
				panic("cluster: exhaustive search with Bloom sets is not supported")
			}
			for v := range src.sets[i] {
				if _, ok := c.sets[i][v]; !ok {
					c.sets[i][v] = struct{}{}
					c.setCard[i]++
				}
			}
			continue
		}
		if src.min[i] < c.min[i] {
			c.min[i] = src.min[i]
		}
		if src.max[i] > c.max[i] {
			c.max[i] = src.max[i]
		}
	}
	if c.center != nil {
		tot := float64(c.count + src.count)
		for i := range c.center {
			if tot == 0 {
				c.center[i] = (c.center[i] + src.center[i]) / 2
			} else {
				c.center[i] = (c.center[i]*float64(c.count) + src.center[i]*float64(src.count)) / tot
			}
		}
	}
	c.count += src.count
	c.packets += src.packets
	c.bytes += src.bytes
	c.totalPackets += src.totalPackets
	c.benign += src.benign
	c.malicious += src.malicious
}

func (c *refState) account(p *packet.Packet) {
	c.count++
	c.packets++
	c.totalPackets++
	c.bytes += uint64(p.Size())
	if p.Label == packet.Malicious {
		c.malicious++
	} else {
		c.benign++
	}
}

// Observe runs one step of Algorithm 1 for packet p, exactly as
// Online.Observe does but via the naive data structures.
func (o *Reference) Observe(p *packet.Packet) Assignment {
	o.Observed++
	vals := o.feats.Extract(p, o.valbuf)

	if len(o.clusters) < o.cfg.MaxClusters {
		if id, d := o.closest(vals); id >= 0 && d == 0 {
			o.clusters[id].account(p)
			return Assignment{Cluster: id, UID: o.clusters[id].uid, Distance: 0}
		}
		c := o.newCluster(vals)
		c.account(p)
		c.count--
		o.clusters = append(o.clusters, c)
		return Assignment{Cluster: len(o.clusters) - 1, UID: c.uid, Created: true}
	}

	id, d := o.closest(vals)

	if o.cfg.Search == Exhaustive && d > 0 {
		mi, mj, md := o.closestPair()
		if mi >= 0 && md < d {
			o.clusters[mi].mergeFrom(o, o.clusters[mj])
			c := o.newCluster(vals)
			c.account(p)
			c.count--
			o.clusters[mj] = c
			return Assignment{Cluster: mj, UID: c.uid, Distance: 0, Created: true}
		}
	}

	c := o.clusters[id]
	if d > 0 || c.center != nil {
		c.absorb(o, vals)
	}
	c.account(p)
	return Assignment{Cluster: id, UID: c.uid, Distance: d}
}

func (o *Reference) closest(vals []uint32) (int, float64) {
	best, bestD := -1, 0.0
	for i, c := range o.clusters {
		d := o.distance(vals, c)
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

func (o *Reference) closestPair() (int, int, float64) {
	bi, bj, bd := -1, -1, 0.0
	for i := 0; i < len(o.clusters); i++ {
		for j := i + 1; j < len(o.clusters); j++ {
			d := o.mergeCost(o.clusters[i], o.clusters[j])
			if bi < 0 || d < bd {
				bi, bj, bd = i, j, d
			}
		}
	}
	return bi, bj, bd
}

// Snapshot returns the interpretable view of all clusters.
func (o *Reference) Snapshot() []Info {
	out := make([]Info, len(o.clusters))
	for i, c := range o.clusters {
		info := Info{
			ID:                 i,
			Active:             true,
			Ranges:             make([]Range, len(o.feats)),
			NominalCardinality: make([]int, len(o.feats)),
			Packets:            c.packets,
			Bytes:              c.bytes,
			TotalPackets:       c.totalPackets,
			Benign:             c.benign,
			Malicious:          c.malicious,
			Size:               o.refClusterCost(c),
		}
		for f := range o.feats {
			if o.nominal[f] {
				info.NominalCardinality[f] = c.setCard[f]
			} else {
				info.Ranges[f] = Range{Min: c.min[f], Max: c.max[f]}
			}
		}
		out[i] = info
	}
	return out
}

// ResetStats zeroes the per-window counters on every cluster.
func (o *Reference) ResetStats() {
	for _, c := range o.clusters {
		c.packets, c.bytes, c.benign, c.malicious = 0, 0, 0, 0
	}
}

// Reseed discards all clusters (restoring the slice tiling when
// SliceInit is configured).
func (o *Reference) Reseed() {
	o.clusters = o.clusters[:0]
	if o.cfg.SliceInit {
		o.sliceInit()
	}
}

// SeedCenters force-seeds Euclidean clusters at the given centers.
func (o *Reference) SeedCenters(centers [][]float64) {
	if o.cfg.Distance != Euclidean {
		panic(fmt.Sprintf("cluster: SeedCenters on %v clusterer", o.cfg.Distance))
	}
	o.clusters = o.clusters[:0]
	for _, ctr := range centers {
		if len(ctr) != len(o.feats) {
			panic(fmt.Sprintf("cluster: center has %d dims, want %d", len(ctr), len(o.feats)))
		}
		vals := make([]uint32, len(ctr))
		for i, v := range ctr {
			if v < 0 {
				v = 0
			}
			vals[i] = uint32(v)
		}
		c := o.newCluster(vals)
		copy(c.center, ctr)
		c.count = 0
		o.clusters = append(o.clusters, c)
	}
}

// --- naive distance computations (per-packet switch dispatch) ---

func (o *Reference) distance(vals []uint32, c *refState) float64 {
	switch o.cfg.Distance {
	case Manhattan:
		return o.refManhattanPoint(vals, c)
	case Anime:
		return o.refAnimePoint(vals, c)
	case Euclidean:
		return o.refEuclideanPoint(vals, c)
	default:
		panic("cluster: unknown distance")
	}
}

func (o *Reference) mergeCost(a, b *refState) float64 {
	switch o.cfg.Distance {
	case Manhattan:
		return o.refManhattanMerge(a, b)
	case Anime:
		return o.refAnimeMerge(a, b)
	case Euclidean:
		return o.refEuclideanMerge(a, b)
	default:
		panic("cluster: unknown distance")
	}
}

func (o *Reference) refClusterCost(c *refState) float64 {
	switch o.cfg.Distance {
	case Anime:
		prod := 1.0
		for i := range o.feats {
			prod *= o.refFeatWidth(c, i)
		}
		return prod
	case Euclidean:
		fallthrough
	case Manhattan:
		sum := 0.0
		for i := range o.feats {
			sum += o.refFeatWidth(c, i) - 1
		}
		return sum
	default:
		panic("cluster: unknown distance")
	}
}

func (o *Reference) refFeatWidth(c *refState, i int) float64 {
	if o.nominal[i] {
		return float64(c.setCard[i])
	}
	return (float64(c.max[i]-c.min[i]) + 1) * o.scale[i]
}

func (o *Reference) refManhattanPoint(vals []uint32, c *refState) float64 {
	var d float64
	for i, v := range vals {
		if o.nominal[i] {
			if !c.contains(o, i, v) {
				d++
			}
			continue
		}
		switch {
		case v < c.min[i]:
			d += float64(c.min[i]-v) * o.scale[i]
		case v > c.max[i]:
			d += float64(v-c.max[i]) * o.scale[i]
		}
	}
	return d
}

func (o *Reference) refManhattanMerge(a, b *refState) float64 {
	var d float64
	for i := range a.min {
		if o.nominal[i] {
			union := a.setCard[i]
			for v := range b.sets[i] {
				if _, ok := a.sets[i][v]; !ok {
					union++
				}
			}
			d += float64(union - a.setCard[i] - b.setCard[i])
			continue
		}
		lo, hi := a.min[i], a.max[i]
		if b.min[i] < lo {
			lo = b.min[i]
		}
		if b.max[i] > hi {
			hi = b.max[i]
		}
		d += (float64(hi-lo) - float64(a.max[i]-a.min[i]) - float64(b.max[i]-b.min[i])) * o.scale[i]
	}
	return d
}

func (o *Reference) refAnimePoint(vals []uint32, c *refState) float64 {
	before := 1.0
	after := 1.0
	for i, v := range vals {
		w := o.refFeatWidth(c, i)
		before *= w
		if o.nominal[i] {
			if !c.contains(o, i, v) {
				w++
			}
			after *= w
			continue
		}
		switch {
		case v < c.min[i]:
			after *= (float64(c.max[i]-v) + 1) * o.scale[i]
		case v > c.max[i]:
			after *= (float64(v-c.min[i]) + 1) * o.scale[i]
		default:
			after *= w
		}
	}
	return after - before
}

func (o *Reference) refAnimeMerge(a, b *refState) float64 {
	costA, costB, union := 1.0, 1.0, 1.0
	for i := range a.min {
		costA *= o.refFeatWidth(a, i)
		costB *= o.refFeatWidth(b, i)
		if o.nominal[i] {
			card := a.setCard[i]
			for v := range b.sets[i] {
				if _, ok := a.sets[i][v]; !ok {
					card++
				}
			}
			union *= float64(card)
			continue
		}
		lo, hi := a.min[i], a.max[i]
		if b.min[i] < lo {
			lo = b.min[i]
		}
		if b.max[i] > hi {
			hi = b.max[i]
		}
		union *= (float64(hi-lo) + 1) * o.scale[i]
	}
	return union - costA - costB
}

func (o *Reference) refEuclideanPoint(vals []uint32, c *refState) float64 {
	var d float64
	for i, v := range vals {
		diff := (float64(v) - c.center[i]) * o.scale[i]
		d += diff * diff
	}
	return d
}

func (o *Reference) refEuclideanMerge(a, b *refState) float64 {
	var d float64
	for i := range a.center {
		diff := (a.center[i] - b.center[i]) * o.scale[i]
		d += diff * diff
	}
	na, nb := float64(a.count), float64(b.count)
	if na+nb == 0 {
		return d
	}
	return d * na * nb / (na + nb)
}
