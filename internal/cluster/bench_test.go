package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"accturbo/internal/packet"
)

// benchCombos enumerates every valid distance x search x set-mode
// configuration (Exhaustive+Bloom is rejected by Config.Validate).
func benchCombos() []Config {
	var out []Config
	for _, d := range []Distance{Manhattan, Anime, Euclidean} {
		for _, s := range []Search{Fast, Exhaustive} {
			for _, bloom := range []bool{false, true} {
				if s == Exhaustive && bloom {
					continue
				}
				cfg := DefaultConfig(10, packet.DefaultSimulationFeatures())
				cfg.Distance = d
				cfg.Search = s
				cfg.UseBloom = bloom
				if d == Euclidean {
					cfg.LearningRate = 0.3
				}
				out = append(out, cfg)
			}
		}
	}
	return out
}

func comboName(cfg Config) string {
	mode := "exact"
	if cfg.UseBloom {
		mode = "bloom"
	}
	return fmt.Sprintf("%v/%v/%s", cfg.Distance, cfg.Search, mode)
}

// benchTrace builds a packet working set with adversarial feature
// diversity (random IPs and ports), matching what a pulse-wave attack
// feeds the clusterer.
func benchTrace(n int, seed int64) []*packet.Packet {
	r := rand.New(rand.NewSource(seed))
	pkts := make([]*packet.Packet, n)
	for i := range pkts {
		p := randPkt(r)
		p.SrcIP = packet.V4(byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)))
		p.DstIP = packet.V4(byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)))
		p.SrcPort = uint16(r.Intn(65536))
		p.DstPort = uint16(r.Intn(65536))
		pkts[i] = p
	}
	return pkts
}

// BenchmarkObserve measures the per-packet fast path for every valid
// configuration. The warmup pass pushes every cluster and nominal set
// into steady state before the timer starts, so allocs/op reflects the
// hot path, not seeding.
func BenchmarkObserve(b *testing.B) {
	pkts := benchTrace(1024, 1)
	for _, cfg := range benchCombos() {
		b.Run(comboName(cfg), func(b *testing.B) {
			o := NewOnline(cfg)
			for _, p := range pkts {
				o.Observe(p)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o.Observe(pkts[i%len(pkts)])
			}
		})
	}
}

// BenchmarkObserveReference is the retained naive implementation on the
// identical workload — the baseline the flattened fast path is measured
// against (see EXPERIMENTS.md "Fast-path microbenchmarks").
func BenchmarkObserveReference(b *testing.B) {
	pkts := benchTrace(1024, 1)
	for _, cfg := range benchCombos() {
		b.Run(comboName(cfg), func(b *testing.B) {
			o := NewReference(cfg)
			for _, p := range pkts {
				o.Observe(p)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o.Observe(pkts[i%len(pkts)])
			}
		})
	}
}

// TestObserveFastPathZeroAlloc enforces the zero-allocation guarantee
// on the steady-state Observe path for linear (Fast) search. Exhaustive
// search legitimately allocates when it re-seeds a cluster after a
// merge, so it is excluded.
func TestObserveFastPathZeroAlloc(t *testing.T) {
	pkts := benchTrace(1024, 1)
	for _, cfg := range benchCombos() {
		if cfg.Search != Fast {
			continue
		}
		cfg := cfg
		t.Run(comboName(cfg), func(t *testing.T) {
			o := NewOnline(cfg)
			for _, p := range pkts {
				o.Observe(p)
			}
			i := 0
			allocs := testing.AllocsPerRun(2048, func() {
				o.Observe(pkts[i%len(pkts)])
				i++
			})
			if allocs != 0 {
				t.Fatalf("steady-state Observe allocates %.2f times per packet, want 0", allocs)
			}
		})
	}
}
