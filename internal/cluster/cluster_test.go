package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"accturbo/internal/packet"
)

// twoFeatures clusters on TTL and length: both ordinal, small spaces,
// easy to reason about.
func twoFeatures() packet.FeatureSet {
	return packet.FeatureSet{packet.FTTL, packet.FLength}
}

func mkPkt(ttl uint8, length uint16, label packet.Label) *packet.Packet {
	return &packet.Packet{
		SrcIP:    packet.V4(10, 0, 0, 1),
		DstIP:    packet.V4(10, 0, 0, 2),
		TTL:      ttl,
		Length:   length,
		Protocol: packet.ProtoUDP,
		Label:    label,
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(4, twoFeatures())
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{MaxClusters: 0, Features: twoFeatures()},
		{MaxClusters: 2},
		{MaxClusters: 2, Features: twoFeatures(), Distance: Distance(9)},
		{MaxClusters: 2, Features: twoFeatures(), Search: Search(9)},
		{MaxClusters: 2, Features: twoFeatures(), LearningRate: 2},
		{MaxClusters: 2, Features: packet.FeatureSet{packet.FSrcPort}, Search: Exhaustive, UseBloom: true},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if Manhattan.String() != "manhattan" || Anime.String() != "anime" || Euclidean.String() != "euclidean" {
		t.Error("distance names wrong")
	}
	if Fast.String() != "fast" || Exhaustive.String() != "exhaustive" {
		t.Error("search names wrong")
	}
	if Distance(7).String() == "" || Search(7).String() == "" {
		t.Error("unknown values need placeholder names")
	}
}

func TestSeedPhaseCreatesClusters(t *testing.T) {
	o := NewOnline(DefaultConfig(3, twoFeatures()))
	a1 := o.Observe(mkPkt(10, 100, packet.Benign))
	a2 := o.Observe(mkPkt(200, 1400, packet.Benign))
	a3 := o.Observe(mkPkt(100, 700, packet.Benign))
	if !a1.Created || !a2.Created || !a3.Created {
		t.Fatalf("first distinct packets must seed clusters: %+v %+v %+v", a1, a2, a3)
	}
	if o.NumClusters() != 3 {
		t.Fatalf("NumClusters = %d", o.NumClusters())
	}
	// A duplicate during seeding joins its cluster instead of seeding.
	o2 := NewOnline(DefaultConfig(3, twoFeatures()))
	o2.Observe(mkPkt(10, 100, packet.Benign))
	dup := o2.Observe(mkPkt(10, 100, packet.Benign))
	if dup.Created || dup.Cluster != 0 || dup.Distance != 0 {
		t.Fatalf("duplicate seeded a new cluster: %+v", dup)
	}
}

func TestFastAssignmentToNearest(t *testing.T) {
	o := NewOnline(DefaultConfig(2, twoFeatures()))
	o.Observe(mkPkt(10, 100, packet.Benign))   // cluster 0: (10, 100)
	o.Observe(mkPkt(200, 1400, packet.Benign)) // cluster 1: (200, 1400)
	a := o.Observe(mkPkt(12, 110, packet.Benign))
	if a.Cluster != 0 {
		t.Fatalf("packet near cluster 0 assigned to %d", a.Cluster)
	}
	if a.Distance != 2+10 {
		t.Fatalf("Manhattan distance = %v, want 12", a.Distance)
	}
	b := o.Observe(mkPkt(190, 1300, packet.Benign))
	if b.Cluster != 1 {
		t.Fatalf("packet near cluster 1 assigned to %d", b.Cluster)
	}
}

func TestRangesAbsorbPackets(t *testing.T) {
	o := NewOnline(DefaultConfig(1, twoFeatures()))
	o.Observe(mkPkt(50, 500, packet.Benign))
	o.Observe(mkPkt(60, 400, packet.Benign))
	o.Observe(mkPkt(40, 600, packet.Benign))
	info := o.Snapshot()[0]
	if info.Ranges[0] != (Range{40, 60}) {
		t.Fatalf("TTL range = %+v", info.Ranges[0])
	}
	if info.Ranges[1] != (Range{400, 600}) {
		t.Fatalf("length range = %+v", info.Ranges[1])
	}
	// Once absorbed, the same values are at distance 0.
	a := o.Observe(mkPkt(45, 450, packet.Benign))
	if a.Distance != 0 {
		t.Fatalf("covered packet had distance %v", a.Distance)
	}
}

func TestNominalFeatureSets(t *testing.T) {
	cfg := DefaultConfig(1, packet.FeatureSet{packet.FDstPort})
	o := NewOnline(cfg)
	p1 := mkPkt(64, 100, packet.Benign)
	p1.DstPort = 53
	p2 := mkPkt(64, 100, packet.Benign)
	p2.DstPort = 123
	o.Observe(p1)
	a := o.Observe(p2)
	if a.Distance != 1 {
		t.Fatalf("unseen nominal value should cost 1, got %v", a.Distance)
	}
	if card := o.Snapshot()[0].NominalCardinality[0]; card != 2 {
		t.Fatalf("cardinality = %d", card)
	}
	// Now both ports are admitted.
	if d := o.Observe(p1.Clone()).Distance; d != 0 {
		t.Fatalf("admitted value cost %v", d)
	}
}

func TestBloomNominalSets(t *testing.T) {
	cfg := DefaultConfig(1, packet.FeatureSet{packet.FDstPort})
	cfg.UseBloom = true
	o := NewOnline(cfg)
	p1 := mkPkt(64, 100, packet.Benign)
	p1.DstPort = 53
	o.Observe(p1)
	p2 := p1.Clone()
	p2.DstPort = 9999
	if d := o.Observe(p2).Distance; d != 1 {
		t.Fatalf("bloom miss should cost 1, got %v", d)
	}
	if d := o.Observe(p2.Clone()).Distance; d != 0 {
		t.Fatalf("bloom hit should cost 0, got %v", d)
	}
}

func TestStatsAndReset(t *testing.T) {
	o := NewOnline(DefaultConfig(1, twoFeatures()))
	o.Observe(mkPkt(10, 100, packet.Benign))
	o.Observe(mkPkt(10, 100, packet.Malicious))
	o.Observe(mkPkt(10, 100, packet.Malicious))
	info := o.Snapshot()[0]
	if info.Packets != 3 || info.Bytes != 300 {
		t.Fatalf("stats: %+v", info)
	}
	if info.Benign != 1 || info.Malicious != 2 {
		t.Fatalf("label counts: %+v", info)
	}
	o.ResetStats()
	info = o.Snapshot()[0]
	if info.Packets != 0 || info.Bytes != 0 || info.Benign != 0 || info.Malicious != 0 {
		t.Fatalf("reset failed: %+v", info)
	}
	if info.TotalPackets != 3 {
		t.Fatalf("TotalPackets should survive reset: %+v", info)
	}
	o.Reseed()
	if o.NumClusters() != 0 {
		t.Fatal("reseed did not clear clusters")
	}
}

func TestClusterSizeTracksSimilarity(t *testing.T) {
	o := NewOnline(DefaultConfig(2, twoFeatures()))
	// Cluster 0: very tight. Cluster 1: very broad.
	o.Observe(mkPkt(10, 100, packet.Benign))
	o.Observe(mkPkt(250, 1500, packet.Benign))
	for i := 0; i < 50; i++ {
		o.Observe(mkPkt(10, 100, packet.Malicious))                      // tight
		o.Observe(mkPkt(uint8(200+i), uint16(1000+10*i), packet.Benign)) // broad
	}
	infos := o.Snapshot()
	if infos[0].Size >= infos[1].Size {
		t.Fatalf("tight cluster size %v !< broad cluster size %v", infos[0].Size, infos[1].Size)
	}
}

func TestExhaustiveMergesClusters(t *testing.T) {
	cfg := DefaultConfig(2, twoFeatures())
	cfg.Search = Exhaustive
	o := NewOnline(cfg)
	// Two adjacent clusters and one far-away packet: exhaustive should
	// merge the neighbors and give the outlier its own cluster.
	o.Observe(mkPkt(10, 100, packet.Benign))
	o.Observe(mkPkt(12, 110, packet.Benign))
	a := o.Observe(mkPkt(250, 1500, packet.Benign))
	if !a.Created {
		t.Fatalf("outlier should trigger merge + new cluster: %+v", a)
	}
	infos := o.Snapshot()
	// One cluster covers [10,12]x[100,110]; the other is the point.
	var broad, point int
	if infos[0].Size >= infos[1].Size {
		broad, point = 0, 1
	} else {
		broad, point = 1, 0
	}
	if !infos[broad].Ranges[0].Contains(10) || !infos[broad].Ranges[0].Contains(12) {
		t.Fatalf("merged cluster ranges wrong: %+v", infos[broad])
	}
	if infos[point].Ranges[0] != (Range{250, 250}) {
		t.Fatalf("outlier cluster wrong: %+v", infos[point])
	}
}

func TestExhaustiveFallsBackToFastWhenMergeCostly(t *testing.T) {
	cfg := DefaultConfig(2, twoFeatures())
	cfg.Search = Exhaustive
	o := NewOnline(cfg)
	o.Observe(mkPkt(10, 100, packet.Benign))
	o.Observe(mkPkt(250, 1500, packet.Benign))
	// Packet adjacent to cluster 0: merging clusters (huge cost) must
	// lose to absorbing the packet (tiny cost).
	a := o.Observe(mkPkt(11, 105, packet.Benign))
	if a.Created || a.Cluster != 0 {
		t.Fatalf("expected plain absorption: %+v", a)
	}
}

func TestEuclideanCentersMove(t *testing.T) {
	cfg := Config{
		MaxClusters:  1,
		Features:     twoFeatures(),
		Distance:     Euclidean,
		LearningRate: 0.5,
	}
	o := NewOnline(cfg)
	o.Observe(mkPkt(10, 100, packet.Benign))
	o.Observe(mkPkt(20, 200, packet.Benign))
	// Center moved halfway: (15, 150).
	a := o.Observe(mkPkt(15, 150, packet.Benign))
	if a.Distance != 0 {
		t.Fatalf("distance to moved center = %v, want 0", a.Distance)
	}
}

func TestEuclideanDistanceIsSquared(t *testing.T) {
	cfg := Config{MaxClusters: 2, Features: twoFeatures(), Distance: Euclidean, LearningRate: 0.3}
	o := NewOnline(cfg)
	o.Observe(mkPkt(0, 0, packet.Benign))
	o.Observe(mkPkt(100, 0, packet.Benign))
	a := o.Observe(mkPkt(10, 0, packet.Benign))
	if a.Cluster != 0 {
		t.Fatalf("assigned to %d", a.Cluster)
	}
}

func TestAnimeDistancePrefersTightClusters(t *testing.T) {
	cfg := DefaultConfig(2, twoFeatures())
	cfg.Distance = Anime
	o := NewOnline(cfg)
	o.Observe(mkPkt(10, 100, packet.Benign))
	o.Observe(mkPkt(20, 1400, packet.Benign))
	// Absorbing (15, 120) into cluster 0 grows its product cost less
	// than absorbing into cluster 1.
	a := o.Observe(mkPkt(15, 120, packet.Benign))
	if a.Cluster != 0 {
		t.Fatalf("anime assigned to %d", a.Cluster)
	}
	if a.Distance <= 0 {
		t.Fatalf("anime distance = %v, want positive", a.Distance)
	}
}

func TestSeedCentersRequiresEuclidean(t *testing.T) {
	o := NewOnline(DefaultConfig(2, twoFeatures()))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	o.SeedCenters([][]float64{{1, 2}})
}

func TestKMeansSeparatesObviousClusters(t *testing.T) {
	km := NewKMeans(2, twoFeatures(), 1)
	var pkts []*packet.Packet
	for i := 0; i < 50; i++ {
		pkts = append(pkts, mkPkt(uint8(10+i%3), uint16(100+i%5), packet.Benign))
		pkts = append(pkts, mkPkt(uint8(200+i%3), uint16(1300+i%5), packet.Malicious))
	}
	_, assign := km.Fit(pkts)
	// All even indexes (low group) must share a cluster, odd likewise.
	for i := 2; i < len(pkts); i += 2 {
		if assign[i] != assign[0] {
			t.Fatalf("low group split: assign[%d]=%d assign[0]=%d", i, assign[i], assign[0])
		}
	}
	for i := 3; i < len(pkts); i += 2 {
		if assign[i] != assign[1] {
			t.Fatalf("high group split")
		}
	}
	if assign[0] == assign[1] {
		t.Fatal("groups merged")
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	km := NewKMeans(3, twoFeatures(), 1)
	if c, a := km.Fit(nil); c != nil || a != nil {
		t.Fatal("empty batch should return nil")
	}
	// Fewer points than k.
	centers, assign := km.Fit([]*packet.Packet{mkPkt(1, 2, packet.Benign)})
	if len(centers) != 1 || assign[0] != 0 {
		t.Fatalf("k>n: centers=%d assign=%v", len(centers), assign)
	}
	// All-identical points must not loop or panic.
	same := []*packet.Packet{mkPkt(5, 5, packet.Benign), mkPkt(5, 5, packet.Benign), mkPkt(5, 5, packet.Benign)}
	km2 := NewKMeans(2, twoFeatures(), 1)
	centers, _ = km2.Fit(same)
	if len(centers) != 2 {
		t.Fatalf("identical points: %d centers", len(centers))
	}
}

func TestHybridRefits(t *testing.T) {
	h := NewHybrid(2, twoFeatures(), 10, 1)
	for i := 0; i < 25; i++ {
		h.Observe(mkPkt(uint8(10+i%2), 100, packet.Benign))
		h.Observe(mkPkt(uint8(200+i%2), 1400, packet.Malicious))
	}
	infos := h.Snapshot()
	if len(infos) != 2 {
		t.Fatalf("%d clusters after refit", len(infos))
	}
	// After refits, the two centers should separate the two groups:
	// assigning group representatives must land in different clusters.
	a := h.Observe(mkPkt(10, 100, packet.Benign))
	b := h.Observe(mkPkt(200, 1400, packet.Malicious))
	if a.Cluster == b.Cluster {
		t.Fatal("hybrid clusters did not separate groups")
	}
	h.ResetStats()
}

func TestEvalMetrics(t *testing.T) {
	e := NewEval()
	// Cluster 0: 8 benign, 2 malicious. Cluster 1: 1 benign, 9 malicious.
	for i := 0; i < 8; i++ {
		e.Observe(0, packet.Benign)
	}
	for i := 0; i < 2; i++ {
		e.Observe(0, packet.Malicious)
	}
	e.Observe(1, packet.Benign)
	for i := 0; i < 9; i++ {
		e.Observe(1, packet.Malicious)
	}
	if !e.Mixed() {
		t.Fatal("window should be mixed")
	}
	if got, want := e.Purity(), (8.0+9.0)/20.0; got != want {
		t.Fatalf("purity = %v, want %v", got, want)
	}
	if got, want := e.RecallBenign(), 8.0/9.0; got != want {
		t.Fatalf("recall benign = %v, want %v", got, want)
	}
	if got, want := e.RecallMalicious(), 9.0/11.0; got != want {
		t.Fatalf("recall malicious = %v, want %v", got, want)
	}
	e.Reset()
	if e.Total() != 0 || e.Mixed() {
		t.Fatal("reset failed")
	}
	if e.Purity() != 0 {
		t.Fatal("empty purity should be 0")
	}
	if e.RecallBenign() != 1 || e.RecallMalicious() != 1 {
		t.Fatal("empty recalls should be 1")
	}
}

func TestWindowedEvalSkipsPureWindows(t *testing.T) {
	w := NewWindowedEval()
	// Window 1: only benign -> skipped.
	w.Observe(0, packet.Benign)
	w.Roll()
	// Window 2: mixed, perfectly separated -> purity 1.
	w.Observe(0, packet.Benign)
	w.Observe(1, packet.Malicious)
	w.Roll()
	if w.Windows() != 1 {
		t.Fatalf("windows = %d, want 1", w.Windows())
	}
	if w.Purity() != 1 || w.RecallBenign() != 1 || w.RecallMalicious() != 1 {
		t.Fatalf("metrics: %v %v %v", w.Purity(), w.RecallBenign(), w.RecallMalicious())
	}
}

func TestWindowedEvalEmpty(t *testing.T) {
	w := NewWindowedEval()
	if w.Purity() != 0 || w.RecallBenign() != 0 || w.RecallMalicious() != 0 {
		t.Fatal("empty windowed metrics should be 0")
	}
}

// --- property-based tests ---

func randPkt(r *rand.Rand) *packet.Packet {
	return mkPkt(uint8(r.Intn(256)), uint16(r.Intn(1500)), packet.Label(r.Intn(2)))
}

// Invariant: after Observe, the assigned cluster covers the packet
// (range representation), so re-observing the same packet immediately
// has distance 0 to that cluster.
func TestQuickRangesCoverAssignedPackets(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for _, dist := range []Distance{Manhattan, Anime} {
			cfg := DefaultConfig(1+r.Intn(6), twoFeatures())
			cfg.Distance = dist
			o := NewOnline(cfg)
			for i := 0; i < 200; i++ {
				p := randPkt(r)
				a := o.Observe(p)
				info := o.Snapshot()[a.Cluster]
				if !info.Ranges[0].Contains(uint32(p.TTL)) || !info.Ranges[1].Contains(uint32(p.Length)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Invariant: cluster count never exceeds MaxClusters, distances are
// never negative (Manhattan/Euclidean), and per-window packet counters
// sum to the number of observations.
func TestQuickBoundedClustersAndCounters(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		k := int(kRaw)%8 + 1
		for _, s := range []Search{Fast, Exhaustive} {
			cfg := DefaultConfig(k, twoFeatures())
			cfg.Search = s
			o := NewOnline(cfg)
			const n = 300
			for i := 0; i < n; i++ {
				a := o.Observe(randPkt(r))
				if a.Distance < 0 {
					return false
				}
				if o.NumClusters() > k {
					return false
				}
			}
			var total uint64
			for _, info := range o.Snapshot() {
				total += info.Packets
			}
			if total != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Invariant: purity and recalls always land in [0, 1].
func TestQuickMetricBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEval()
		for i := 0; i < 200; i++ {
			e.Observe(r.Intn(10), packet.Label(r.Intn(2)))
		}
		p, rb, rm := e.Purity(), e.RecallBenign(), e.RecallMalicious()
		return p >= 0 && p <= 1 && rb >= 0 && rb <= 1 && rm >= 0 && rm <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Invariant: purity never decreases when each packet gets its own
// cluster (the degenerate perfect clustering).
func TestQuickPerfectClusteringHasPurityOne(t *testing.T) {
	f := func(labels []bool) bool {
		if len(labels) == 0 {
			return true
		}
		e := NewEval()
		for i, m := range labels {
			lbl := packet.Benign
			if m {
				lbl = packet.Malicious
			}
			e.Observe(i, lbl)
		}
		return e.Purity() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeBalancesFeatureScales(t *testing.T) {
	// Two clusters: one near in the 16-bit dimension but far in the
	// 8-bit one, the other vice versa. Raw distances weigh the 16-bit
	// gap 256x; normalized distances weigh them equally.
	feats := packet.FeatureSet{packet.FTTL, packet.FLength} // 8-bit, 16-bit
	mk := func(norm bool) int {
		cfg := DefaultConfig(2, feats)
		cfg.Normalize = norm
		o := NewOnline(cfg)
		o.Observe(mkPkt(0, 0, packet.Benign))       // cluster 0 at (0, 0)
		o.Observe(mkPkt(255, 65000, packet.Benign)) // cluster 1 at (255, 65000)
		// Probe at (0, 32500): raw -> closer to cluster 0 in len only?
		// len distance to c0 = 32500, to c1 = 32500; ttl distance to
		// c0 = 0, c1 = 255. Both metrics agree here, so probe at
		// (255, 2000): raw len dominates (2000 < 63000 -> c0);
		// normalized: c0 = 1.0(ttl) + 0.03 = 1.03, c1 = 0 + 0.96 -> c1.
		return o.Observe(mkPkt(255, 2000, packet.Benign)).Cluster
	}
	if got := mk(false); got != 0 {
		t.Fatalf("raw distances: assigned to %d, want 0 (length dominates)", got)
	}
	if got := mk(true); got != 1 {
		t.Fatalf("normalized distances: assigned to %d, want 1 (TTL counts equally)", got)
	}
}

func TestSliceInitTilesLeadingFeature(t *testing.T) {
	cfg := DefaultConfig(4, packet.FeatureSet{packet.FTTL, packet.FLength})
	cfg.SliceInit = true
	o := NewOnline(cfg)
	if o.NumClusters() != 4 {
		t.Fatalf("slice init created %d clusters", o.NumClusters())
	}
	infos := o.Snapshot()
	// The leading ordinal feature (TTL, 8-bit) is tiled into four
	// 64-wide slices; the second feature starts at full range.
	for i, info := range infos {
		want := Range{Min: uint32(64 * i), Max: uint32(64*i + 63)}
		if info.Ranges[0] != want {
			t.Fatalf("slice %d covers %+v, want %+v", i, info.Ranges[0], want)
		}
		if info.Ranges[1] != (Range{Min: 0, Max: 65535}) {
			t.Fatalf("slice %d second feature %+v, want full range", i, info.Ranges[1])
		}
		if info.Packets != 0 || info.TotalPackets != 0 {
			t.Fatalf("slice %d has traffic before any packet", i)
		}
	}
	// A packet lands in its TTL slice deterministically.
	a := o.Observe(mkPkt(70, 100, packet.Benign))
	if a.Cluster != 1 || a.Created {
		t.Fatalf("ttl=70 assigned to %+v, want slice 1", a)
	}
	b := o.Observe(mkPkt(250, 1400, packet.Benign))
	if b.Cluster != 3 {
		t.Fatalf("ttl=250 assigned to %d, want slice 3", b.Cluster)
	}
}

func TestSliceInitNominalSetsStartEmpty(t *testing.T) {
	cfg := DefaultConfig(2, packet.FeatureSet{packet.FTTL, packet.FDstPort})
	cfg.SliceInit = true
	o := NewOnline(cfg)
	for _, info := range o.Snapshot() {
		if info.NominalCardinality[1] != 0 {
			t.Fatalf("nominal set not empty: %+v", info)
		}
	}
	p := mkPkt(10, 100, packet.Benign)
	p.DstPort = 443
	a := o.Observe(p)
	if a.Distance != 1 {
		t.Fatalf("first nominal value should cost exactly 1, got %v", a.Distance)
	}
	if o.Snapshot()[a.Cluster].NominalCardinality[1] != 1 {
		t.Fatal("nominal value not admitted")
	}
}

func TestSliceInitReseedRestoresTiling(t *testing.T) {
	cfg := DefaultConfig(4, packet.FeatureSet{packet.FTTL})
	cfg.SliceInit = true
	o := NewOnline(cfg)
	// Distort the slices.
	o.Observe(mkPkt(0, 100, packet.Malicious))
	o.Observe(mkPkt(255, 100, packet.Malicious))
	o.Reseed()
	infos := o.Snapshot()
	if len(infos) != 4 {
		t.Fatalf("%d clusters after reseed", len(infos))
	}
	for i, info := range infos {
		if info.Ranges[0] != (Range{Min: uint32(64 * i), Max: uint32(64*i + 63)}) {
			t.Fatalf("reseed did not restore slice %d: %+v", i, info.Ranges[0])
		}
		if info.Malicious != 0 {
			t.Fatal("stats survived reseed")
		}
	}
}

func TestSliceInitBloomMode(t *testing.T) {
	cfg := DefaultConfig(2, packet.FeatureSet{packet.FTTL, packet.FDstPort})
	cfg.SliceInit = true
	cfg.UseBloom = true
	o := NewOnline(cfg)
	p := mkPkt(10, 100, packet.Benign)
	p.DstPort = 443
	if a := o.Observe(p); a.Distance != 1 {
		t.Fatalf("bloom slice should start empty: distance %v", a.Distance)
	}
	if d := o.Observe(p.Clone()).Distance; d != 0 {
		t.Fatalf("admitted bloom value cost %v", d)
	}
}

func TestSliceInitAllNominalFeatures(t *testing.T) {
	// No ordinal feature to slice: clusters still pre-create without
	// panicking and behave as empty-set clusters.
	cfg := DefaultConfig(3, packet.FeatureSet{packet.FSrcPort, packet.FDstPort})
	cfg.SliceInit = true
	o := NewOnline(cfg)
	if o.NumClusters() != 3 {
		t.Fatalf("%d clusters", o.NumClusters())
	}
	p := mkPkt(10, 100, packet.Benign)
	p.SrcPort, p.DstPort = 1, 2
	a := o.Observe(p)
	if a.Cluster < 0 || a.Cluster >= 3 {
		t.Fatalf("assignment out of range: %+v", a)
	}
}

func TestRangeWidth(t *testing.T) {
	if (Range{Min: 3, Max: 10}).Width() != 7 {
		t.Fatal("width wrong")
	}
}

func TestOnlineConfigAccessor(t *testing.T) {
	cfg := DefaultConfig(3, twoFeatures())
	o := NewOnline(cfg)
	if got := o.Config(); got.MaxClusters != 3 || len(got.Features) != 2 {
		t.Fatalf("Config() = %+v", got)
	}
}

func TestAnimeExhaustiveMergesProductCost(t *testing.T) {
	cfg := DefaultConfig(2, twoFeatures())
	cfg.Distance = Anime
	cfg.Search = Exhaustive
	o := NewOnline(cfg)
	// Two near-identical clusters plus a far outlier: the product cost
	// of merging the neighbors is tiny, so the outlier gets its slot.
	o.Observe(mkPkt(10, 100, packet.Benign))
	o.Observe(mkPkt(11, 101, packet.Benign))
	a := o.Observe(mkPkt(250, 1500, packet.Benign))
	if !a.Created {
		t.Fatalf("anime exhaustive should merge neighbors for the outlier: %+v", a)
	}
	// And observe more packets: distances must stay finite/sane.
	for i := 0; i < 50; i++ {
		got := o.Observe(mkPkt(uint8(i*5), uint16(i*30), packet.Benign))
		if got.Cluster < 0 || got.Cluster > 1 {
			t.Fatalf("assignment out of range: %+v", got)
		}
	}
}

func TestEuclideanExhaustiveWardMerge(t *testing.T) {
	cfg := DefaultConfig(2, twoFeatures())
	cfg.Distance = Euclidean
	cfg.Search = Exhaustive
	cfg.LearningRate = 0.5
	o := NewOnline(cfg)
	// Two coincident centers merge cheaply (Ward cost ~ 0) when an
	// outlier arrives.
	o.Observe(mkPkt(10, 100, packet.Benign))
	o.Observe(mkPkt(12, 102, packet.Benign))
	a := o.Observe(mkPkt(250, 1500, packet.Benign))
	if !a.Created {
		t.Fatalf("euclidean exhaustive should free a slot: %+v", a)
	}
}

func TestExhaustiveMergeWithNominalSets(t *testing.T) {
	feats := packet.FeatureSet{packet.FTTL, packet.FDstPort}
	cfg := DefaultConfig(2, feats)
	cfg.Search = Exhaustive
	o := NewOnline(cfg)
	p1 := mkPkt(10, 100, packet.Benign)
	p1.DstPort = 80
	p2 := mkPkt(11, 100, packet.Benign)
	p2.DstPort = 443
	o.Observe(p1)
	o.Observe(p2)
	// Outlier forces the two port sets to union.
	p3 := mkPkt(250, 100, packet.Benign)
	p3.DstPort = 9999
	a := o.Observe(p3)
	if !a.Created {
		t.Fatalf("merge not triggered: %+v", a)
	}
	// One cluster now admits both 80 and 443.
	found := false
	for _, info := range o.Snapshot() {
		if info.NominalCardinality[1] == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("nominal sets did not union on merge")
	}
}

func TestKMeansValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewKMeans(0, twoFeatures(), 1) },
		func() { NewKMeans(2, nil, 1) },
		func() { NewHybrid(2, twoFeatures(), 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
