package cluster

import "math/bits"

// nominalSet is the admitted-value set of one nominal feature in one
// cluster, tuned for the per-packet fast path. Real aggregates admit a
// handful of values (a few ports, one protocol), so the set starts as a
// small sorted slice probed by branch-free binary search — contiguous,
// cache-resident, and allocation-free to query. Adversarial traffic
// (randomized ports) can grow the set without bound; past
// smallSetMax values the set spills into an exact bitmap over the
// feature's value space, keeping worst-case membership O(1). Nominal
// value spaces are at most 16 bits wide (ports), so the bitmap tops out
// at 8 KiB.
//
// The zero value is an empty set; space must be set (via init) before
// the first insert so a spill can size the bitmap.
type nominalSet struct {
	small []uint32 // sorted admitted values; nil once spilled
	bits  []uint64 // exact bitmap, non-nil once spilled
	n     int      // cardinality
	space uint32   // value-space size (Feature.MaxValue()+1)

	// One-entry membership memo: real traffic repeats the same handful
	// of nominal values back to back (one protocol, a few ports), so
	// most contains calls short-circuit here instead of re-running the
	// search. memoV is only trusted while memoOK; insert refreshes it.
	memoV  uint32
	memoIn bool
	memoOK bool
}

// smallSetMax is the cardinality at which a set spills from the sorted
// slice to the bitmap. 64 values keep the slice in four cache lines and
// the binary search at six steps.
const smallSetMax = 64

// init prepares an empty set over a value space of the given size.
func (s *nominalSet) init(space uint32) {
	s.small, s.bits, s.n, s.space = s.small[:0], nil, 0, space
	s.memoOK = false
}

// contains reports whether v is admitted.
func (s *nominalSet) contains(v uint32) bool {
	if s.memoOK && v == s.memoV {
		return s.memoIn
	}
	in := s.lookup(v)
	s.memoV, s.memoIn, s.memoOK = v, in, true
	return in
}

// lookup is the memo-less membership probe.
func (s *nominalSet) lookup(v uint32) bool {
	if s.bits != nil {
		return s.bits[v>>6]&(1<<(v&63)) != 0
	}
	lo, hi := 0, len(s.small)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.small[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s.small) && s.small[lo] == v
}

// insert admits v, reporting whether it was newly added. Either way v
// is a member afterwards, so the memo is refreshed rather than
// invalidated.
func (s *nominalSet) insert(v uint32) bool {
	s.memoV, s.memoIn, s.memoOK = v, true, true
	if s.bits != nil {
		w, m := v>>6, uint64(1)<<(v&63)
		if s.bits[w]&m != 0 {
			return false
		}
		s.bits[w] |= m
		s.n++
		return true
	}
	lo, hi := 0, len(s.small)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.small[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.small) && s.small[lo] == v {
		return false
	}
	if len(s.small) >= smallSetMax {
		s.spill()
		s.bits[v>>6] |= 1 << (v & 63)
		s.n++
		return true
	}
	s.small = append(s.small, 0)
	copy(s.small[lo+1:], s.small[lo:])
	s.small[lo] = v
	s.n++
	return true
}

// spill converts the sorted slice into the bitmap representation.
func (s *nominalSet) spill() {
	words := (uint64(s.space) + 63) / 64
	if words == 0 {
		// space unset (defensive): size for a full 16-bit feature.
		words = 1 << 10
	}
	s.bits = make([]uint64, words)
	for _, v := range s.small {
		s.bits[v>>6] |= 1 << (v & 63)
	}
	s.small = nil
}

// card returns the number of admitted values.
func (s *nominalSet) card() int { return s.n }

// each visits every admitted value in ascending order.
func (s *nominalSet) each(fn func(uint32)) {
	if s.bits == nil {
		for _, v := range s.small {
			fn(v)
		}
		return
	}
	for wi, w := range s.bits {
		for ; w != 0; w &= w - 1 {
			fn(uint32(wi)<<6 | uint32(bits.TrailingZeros64(w)))
		}
	}
}

// unionExtra counts the values in s that t does not admit — the growth
// of t's cardinality if s were merged into it.
func (s *nominalSet) unionExtra(t *nominalSet) int {
	extra := 0
	s.each(func(v uint32) {
		if !t.contains(v) {
			extra++
		}
	})
	return extra
}
