package cluster

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// Marshal serializes the clusterer's complete learned state — flattened
// geometry, nominal value sets (exact or Bloom), per-cluster counters,
// UID allocator and packet count — into a deterministic little-endian
// byte stream. The stream opens with a configuration fingerprint so
// Unmarshal can refuse a snapshot taken under different cluster
// geometry. Two clusterers with equal observable state produce
// identical bytes (the exhaustive-search merge-cost cache and the
// nominal-set membership memos are derived state and excluded), which
// is what makes save → restore → save byte-identical.
//
// Checksums and format versioning live one layer up, in the core
// snapshot container: a cluster blob never travels alone.
func (o *Online) Marshal() []byte {
	var e enc
	o.encodeFingerprint(&e)
	e.u64(o.nextUID)
	e.u64(o.Observed)
	e.u32(uint32(len(o.clusters)))
	for ci, c := range o.clusters {
		e.u64(c.uid)
		base := ci * o.nf
		for f := 0; f < o.nf; f++ {
			e.u32(o.min[base+f])
			e.u32(o.max[base+f])
		}
		if o.center != nil {
			for f := 0; f < o.nf; f++ {
				e.f64(o.center[base+f])
			}
		}
		e.u64(c.count)
		e.u64(c.packets)
		e.u64(c.bytes)
		e.u64(c.totalPackets)
		e.u64(c.benign)
		e.u64(c.malicious)
		for f := 0; f < o.nf; f++ {
			if !o.nominal[f] {
				continue
			}
			e.u32(uint32(c.setCard[f]))
			if o.cfg.UseBloom {
				b := c.blooms[f]
				e.u64(b.Inserted)
				words := b.Words()
				e.u32(uint32(len(words)))
				for _, w := range words {
					e.u64(w)
				}
			} else {
				s := &c.sets[f]
				e.u32(uint32(s.card()))
				s.each(func(v uint32) { e.u32(v) })
			}
		}
	}
	return e.b
}

// Unmarshal replaces the clusterer's state with a Marshal snapshot. The
// receiver must have been constructed with the same configuration the
// snapshot was taken under (checked via the embedded fingerprint);
// restoring re-inserts nominal values in ascending order, which
// reproduces the exact set representation including the small→bitmap
// spill point, so subsequent observations are bit-identical to the
// original clusterer's. The merge-cost cache is marked fully dirty and
// recomputes lazily from the restored geometry.
func (o *Online) Unmarshal(data []byte) error {
	d := dec{b: data}
	var fp enc
	o.encodeFingerprint(&fp)
	if len(d.b) < len(fp.b) || !bytes.Equal(d.b[:len(fp.b)], fp.b) {
		return fmt.Errorf("cluster: snapshot fingerprint does not match this clusterer's configuration")
	}
	d.off = len(fp.b)

	nextUID := d.u64()
	observed := d.u64()
	k := int(d.u32())
	if d.err != nil {
		return d.err
	}
	if k > o.cfg.MaxClusters {
		return fmt.Errorf("cluster: snapshot has %d clusters, config allows %d", k, o.cfg.MaxClusters)
	}

	// Geometry decodes into scratch first: a truncated or corrupt
	// stream must leave the receiver untouched.
	min := make([]uint32, k*o.nf)
	max := make([]uint32, k*o.nf)
	var center []float64
	if o.center != nil {
		center = make([]float64, k*o.nf)
	}
	clusters := make([]*clusterState, 0, k)
	for ci := 0; ci < k; ci++ {
		c := o.blankState()
		c.uid = d.u64()
		base := ci * o.nf
		for f := 0; f < o.nf; f++ {
			min[base+f] = d.u32()
			max[base+f] = d.u32()
		}
		if center != nil {
			for f := 0; f < o.nf; f++ {
				center[base+f] = d.f64()
			}
		}
		c.count = d.u64()
		c.packets = d.u64()
		c.bytes = d.u64()
		c.totalPackets = d.u64()
		c.benign = d.u64()
		c.malicious = d.u64()
		for f := 0; f < o.nf; f++ {
			if !o.nominal[f] {
				continue
			}
			c.setCard[f] = int(d.u32())
			if o.cfg.UseBloom {
				inserted := d.u64()
				words := make([]uint64, d.u32())
				for i := range words {
					words[i] = d.u64()
				}
				if d.err != nil {
					return d.err
				}
				if err := c.blooms[f].SetWords(words, inserted); err != nil {
					return err
				}
			} else {
				n := int(d.u32())
				for i := 0; i < n; i++ {
					c.sets[f].insert(d.u32())
				}
			}
		}
		if d.err != nil {
			return d.err
		}
		clusters = append(clusters, c)
	}
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("cluster: %d trailing bytes after snapshot", len(d.b)-d.off)
	}

	// Commit only after the whole stream decoded cleanly.
	o.grow(k)
	copy(o.min, min)
	copy(o.max, max)
	if o.center != nil {
		copy(o.center, center)
	}
	o.clusters = clusters
	o.nextUID = nextUID
	o.Observed = observed
	if o.rowDirty != nil {
		for i := range o.rowDirty {
			o.rowDirty[i] = true
		}
	}
	return nil
}

// encodeFingerprint appends the configuration facts the snapshot layout
// depends on. Any mismatch means the byte stream cannot be interpreted
// against the receiver (different feature count, value spaces, set
// representation) or would silently change behavior (distance, search,
// learning rate).
func (o *Online) encodeFingerprint(e *enc) {
	e.u32(uint32(o.cfg.MaxClusters))
	e.u8(uint8(len(o.feats)))
	for _, f := range o.feats {
		e.u8(uint8(f))
	}
	e.u8(uint8(o.cfg.Distance))
	e.u8(uint8(o.cfg.Search))
	e.f64(o.cfg.LearningRate)
	e.bool(o.cfg.UseBloom)
	e.u64(o.cfg.BloomBits)
	e.u32(uint32(o.cfg.BloomHashes))
	e.bool(o.cfg.Normalize)
	e.bool(o.cfg.SliceInit)
}

// enc is a minimal append-only little-endian encoder.
type enc struct{ b []byte }

func (e *enc) u8(v uint8) { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) {
	e.b = binary.LittleEndian.AppendUint32(e.b, v)
}
func (e *enc) u64(v uint64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, v)
}
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

// dec is the matching decoder; the first short read latches err and
// every later read returns zero, so call sites check err at section
// boundaries instead of per field.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("cluster: snapshot truncated at byte %d", d.off)
	}
}

func (d *dec) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }
