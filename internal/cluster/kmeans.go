package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"accturbo/internal/packet"
)

// Offline k-means is the paper's unlimited-resources baseline
// ("Off. KMeans" in Fig. 10): Lloyd's algorithm with k-means++
// seeding over a buffered batch of packets. The hybrid strategy
// ("Eucl. Fast In.") periodically re-seeds an online Euclidean
// clusterer from an offline solve.

// KMeans clusters batches of feature vectors.
type KMeans struct {
	K        int
	Features packet.FeatureSet
	MaxIter  int
	rng      *rand.Rand
}

// NewKMeans builds an offline k-means solver with deterministic
// seeding.
func NewKMeans(k int, features packet.FeatureSet, seed int64) *KMeans {
	if k < 1 {
		panic(fmt.Sprintf("cluster: k-means k=%d", k))
	}
	if len(features) == 0 {
		panic("cluster: k-means with no features")
	}
	return &KMeans{K: k, Features: features, MaxIter: 25, rng: rand.New(rand.NewSource(seed))}
}

// Fit runs k-means++ and Lloyd's iterations on the batch, returning the
// final centers and the assignment of each input packet.
func (km *KMeans) Fit(pkts []*packet.Packet) (centers [][]float64, assign []int) {
	points := make([][]float64, len(pkts))
	for i, p := range pkts {
		vals := km.Features.Extract(p, nil)
		v := make([]float64, len(vals))
		for j, x := range vals {
			v[j] = float64(x)
		}
		points[i] = v
	}
	return km.FitPoints(points)
}

// FitPoints is Fit over raw feature vectors.
func (km *KMeans) FitPoints(points [][]float64) (centers [][]float64, assign []int) {
	if len(points) == 0 {
		return nil, nil
	}
	k := km.K
	if k > len(points) {
		k = len(points)
	}
	centers = km.seedPlusPlus(points, k)
	assign = make([]int, len(points))
	for iter := 0; iter < km.MaxIter; iter++ {
		changed := false
		for i, pt := range points {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				d := sqDist(pt, ctr)
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, len(points[0]))
		}
		for i, pt := range points {
			c := assign[i]
			counts[c]++
			for j, v := range pt {
				sums[c][j] += v
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the farthest point.
				centers[c] = append([]float64(nil), points[km.farthestPoint(points, centers)]...)
				continue
			}
			for j := range centers[c] {
				centers[c][j] = sums[c][j] / float64(counts[c])
			}
		}
	}
	return centers, assign
}

// seedPlusPlus performs k-means++ initialization.
func (km *KMeans) seedPlusPlus(points [][]float64, k int) [][]float64 {
	centers := make([][]float64, 0, k)
	first := points[km.rng.Intn(len(points))]
	centers = append(centers, append([]float64(nil), first...))
	d2 := make([]float64, len(points))
	for len(centers) < k {
		var total float64
		for i, pt := range points {
			best := math.Inf(1)
			for _, ctr := range centers {
				if d := sqDist(pt, ctr); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All points coincide with centers; duplicate one.
			centers = append(centers, append([]float64(nil), points[0]...))
			continue
		}
		target := km.rng.Float64() * total
		idx := 0
		for i, d := range d2 {
			target -= d
			if target <= 0 {
				idx = i
				break
			}
		}
		centers = append(centers, append([]float64(nil), points[idx]...))
	}
	return centers
}

func (km *KMeans) farthestPoint(points [][]float64, centers [][]float64) int {
	best, bestD := 0, -1.0
	for i, pt := range points {
		d := math.Inf(1)
		for _, ctr := range centers {
			if dd := sqDist(pt, ctr); dd < d {
				d = dd
			}
		}
		if d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

func sqDist(a, b []float64) float64 {
	var d float64
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return d
}

// Hybrid is the "Eucl. Fast In." strategy: an online Euclidean
// clusterer whose centers are periodically recomputed offline from a
// buffer of recent packets.
type Hybrid struct {
	online *Online
	km     *KMeans
	buf    []*packet.Packet
	// RefitEvery triggers an offline solve after this many packets.
	RefitEvery int
}

// NewHybrid builds a hybrid clusterer with the given cluster budget,
// features, and refit period.
func NewHybrid(maxClusters int, features packet.FeatureSet, refitEvery int, seed int64) *Hybrid {
	if refitEvery < 1 {
		panic(fmt.Sprintf("cluster: hybrid refit period %d", refitEvery))
	}
	cfg := Config{
		MaxClusters: maxClusters,
		Features:    features,
		Distance:    Euclidean,
		Search:      Fast,
	}
	return &Hybrid{
		online:     NewOnline(cfg),
		km:         NewKMeans(maxClusters, features, seed),
		RefitEvery: refitEvery,
	}
}

// Observe assigns the packet online and may trigger an offline refit.
func (h *Hybrid) Observe(p *packet.Packet) Assignment {
	a := h.online.Observe(p)
	h.buf = append(h.buf, p.Clone())
	if len(h.buf) >= h.RefitEvery {
		centers, _ := h.km.Fit(h.buf)
		h.online.SeedCenters(centers)
		h.buf = h.buf[:0]
	}
	return a
}

// Snapshot exposes the online clusterer's state.
func (h *Hybrid) Snapshot() []Info { return h.online.Snapshot() }

// ResetStats forwards to the online clusterer.
func (h *Hybrid) ResetStats() { h.online.ResetStats() }
