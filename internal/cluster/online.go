package cluster

import (
	"fmt"
	"math"

	"accturbo/internal/packet"
	"accturbo/internal/sketch"
)

// Online is the online clusterer of Appendix B: it maintains at most
// |C| clusters and assigns every packet to exactly one of them,
// extending that cluster's ranges/sets when the packet falls outside.
//
// The per-packet path is built for line rate, mirroring the constraints
// that drove the paper's hardware design (§4):
//
//   - Cluster ranges live in two contiguous structure-of-arrays slices
//     (min/max, indexed cluster*numFeats+feature) instead of
//     per-cluster allocations, so a closest-cluster scan walks flat
//     memory. Euclidean centers are flattened the same way.
//   - The distance function is selected once at construction (a kernel
//     function value), not switched on per packet.
//   - Nominal value sets are sorted small slices with an exact-bitmap
//     spill (see nominalSet), not Go maps.
//   - Exhaustive search keeps a pairwise merge-cost matrix that is
//     invalidated only for clusters whose geometry changed, instead of
//     recomputing all |C|^2 pairs on every packet.
//
// The steady-state Observe path performs no allocations. Reference in
// reference.go retains the naive implementation; equivalence tests
// assert both produce identical assignments.
//
// Online is not safe for concurrent use; the simulator is
// single-threaded by design.
type Online struct {
	cfg     Config
	feats   packet.FeatureSet
	nf      int       // len(feats)
	nominal []bool    // per feature position
	scale   []float64 // per-feature distance scaling (1 when !Normalize)

	// Flattened cluster geometry: cluster c covers feature f in
	// [min[c*nf+f], max[c*nf+f]]. center is the Euclidean
	// representation, laid out the same way (nil otherwise). Slots are
	// preallocated for `stride` clusters so steady state never grows.
	min, max []uint32
	center   []float64
	stride   int // cluster slot capacity (>= cfg.MaxClusters)

	clusters []*clusterState

	dist  pointKernel
	merge mergeKernel
	// rawManhattan marks the deployable fast configuration (Manhattan,
	// unnormalized): closest then runs a fused scan with the kernel
	// inlined instead of an indirect call per cluster.
	rawManhattan bool

	// Exhaustive-search cache: pairCost[i*stride+j] is the merge cost
	// of clusters i and j; rowDirty[i] marks clusters whose geometry
	// (or, for Euclidean, weight) changed since row i was computed.
	// Both are nil under fast search.
	pairCost []float64
	rowDirty []bool

	valbuf  []uint32 // scratch: feature values of the current packet
	nextUID uint64
	// Observed counts packets seen since construction.
	Observed uint64
}

// clusterState holds the per-cluster state that is not part of the
// flattened geometry: nominal value sets and traffic statistics.
type clusterState struct {
	uid     uint64
	sets    []nominalSet    // nominal positions (exact mode)
	blooms  []*sketch.Bloom // nominal positions (bloom mode)
	setCard []int           // admitted-value count per nominal position

	count uint64 // packets since seed (for center merging)

	packets, bytes    uint64 // since last ResetStats
	totalPackets      uint64
	benign, malicious uint64
}

// NewOnline builds an online clusterer. It panics on an invalid
// configuration (configs are produced by code, not user input).
func NewOnline(cfg Config) *Online {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	nf := len(cfg.Features)
	o := &Online{
		cfg:     cfg,
		feats:   cfg.Features,
		nf:      nf,
		nominal: make([]bool, nf),
		valbuf:  make([]uint32, nf),
	}
	o.scale = make([]float64, nf)
	for i, f := range cfg.Features {
		o.nominal[i] = f.Nominal()
		o.scale[i] = 1
		if cfg.Normalize && !o.nominal[i] {
			o.scale[i] = 1 / (float64(f.MaxValue()) + 1)
		}
	}
	o.grow(cfg.MaxClusters)
	o.selectKernels()
	if cfg.SliceInit {
		o.sliceInit()
	}
	return o
}

// grow (re)allocates the flattened geometry for at least `slots`
// cluster slots. Existing geometry is preserved row by row.
func (o *Online) grow(slots int) {
	if slots <= o.stride {
		return
	}
	min := make([]uint32, slots*o.nf)
	max := make([]uint32, slots*o.nf)
	copy(min, o.min)
	copy(max, o.max)
	o.min, o.max = min, max
	if o.cfg.Distance == Euclidean {
		center := make([]float64, slots*o.nf)
		copy(center, o.center)
		o.center = center
	}
	if o.cfg.Search == Exhaustive {
		cost := make([]float64, slots*slots)
		for i := 0; i < o.stride; i++ {
			copy(cost[i*slots:i*slots+o.stride], o.pairCost[i*o.stride:(i+1)*o.stride])
		}
		o.pairCost = cost
		dirty := make([]bool, slots)
		copy(dirty, o.rowDirty)
		o.rowDirty = dirty
	}
	o.stride = slots
}

// markDirty flags cluster ci's merge-cost row for recomputation.
func (o *Online) markDirty(ci int) {
	if o.rowDirty != nil {
		o.rowDirty[ci] = true
	}
}

// sliceInit pre-creates MaxClusters clusters that partition the value
// space of the *first ordinal feature* into even slices, with every
// other ordinal feature starting at its full range. This mirrors the
// hardware prototype's controller, which tiles the destination-address
// space so the initial assignment is order-independent. Nominal sets
// start empty.
func (o *Online) sliceInit() {
	k := o.cfg.MaxClusters
	lead := -1
	for f := range o.feats {
		if !o.nominal[f] {
			lead = f
			break
		}
	}
	for i := 0; i < k; i++ {
		o.nextUID++
		c := o.blankState()
		c.uid = o.nextUID
		base := i * o.nf
		for f, feat := range o.feats {
			if o.nominal[f] {
				// Slices carry no nominal admissions until traffic
				// arrives.
				o.min[base+f], o.max[base+f] = 0, 0
				if o.center != nil {
					o.center[base+f] = 0
				}
				continue
			}
			max := uint64(feat.MaxValue()) + 1
			lo, hi := uint32(0), uint32(max-1)
			if f == lead {
				lo = uint32(max * uint64(i) / uint64(k))
				hi = uint32(max*uint64(i+1)/uint64(k) - 1)
			}
			o.min[base+f], o.max[base+f] = lo, hi
			if o.center != nil {
				o.center[base+f] = (float64(lo) + float64(hi)) / 2
			}
		}
		c.count = 0
		o.clusters = append(o.clusters, c)
		o.markDirty(i)
	}
}

// blankState allocates a clusterState with empty nominal sets.
func (o *Online) blankState() *clusterState {
	c := &clusterState{setCard: make([]int, o.nf)}
	if o.cfg.UseBloom {
		c.blooms = make([]*sketch.Bloom, o.nf)
	} else {
		c.sets = make([]nominalSet, o.nf)
	}
	for i, f := range o.feats {
		if !o.nominal[i] {
			continue
		}
		if o.cfg.UseBloom {
			c.blooms[i] = sketch.NewBloom(o.cfg.BloomBits, o.cfg.BloomHashes)
		} else {
			c.sets[i].init(f.MaxValue() + 1)
		}
	}
	return c
}

// Config returns the clusterer's configuration.
func (o *Online) Config() Config { return o.cfg }

// NumClusters returns the number of seeded clusters.
func (o *Online) NumClusters() int { return len(o.clusters) }

// newClusterAt seeds a cluster at slot with the given feature values,
// writing its geometry into the flattened arrays.
func (o *Online) newClusterAt(slot int, vals []uint32) *clusterState {
	o.nextUID++
	c := o.blankState()
	c.uid = o.nextUID
	base := slot * o.nf
	for i, v := range vals {
		o.min[base+i], o.max[base+i] = v, v
		if o.nominal[i] {
			if o.cfg.UseBloom {
				c.blooms[i].Insert(uint64(v))
			} else {
				c.sets[i].insert(v)
			}
			c.setCard[i] = 1
		}
		if o.center != nil {
			o.center[base+i] = float64(v)
		}
	}
	c.count = 1
	o.markDirty(slot)
	return c
}

// admits reports whether cluster ci admits value v at feature f.
func (o *Online) admits(c *clusterState, ci, f int, v uint32) bool {
	if o.nominal[f] {
		return nomContains(c, f, v)
	}
	base := ci * o.nf
	return v >= o.min[base+f] && v <= o.max[base+f]
}

// nomContains reports whether the cluster's nominal set at feature f
// admits v.
func nomContains(c *clusterState, f int, v uint32) bool {
	if c.blooms != nil {
		return c.blooms[f].Contains(uint64(v))
	}
	return c.sets[f].contains(v)
}

// absorb extends cluster ci to cover vals.
func (o *Online) absorb(ci int, vals []uint32) {
	c := o.clusters[ci]
	base := ci * o.nf
	for i, v := range vals {
		if o.nominal[i] {
			if o.cfg.UseBloom {
				if !c.blooms[i].Contains(uint64(v)) {
					c.blooms[i].Insert(uint64(v))
					c.setCard[i]++
				}
			} else if c.sets[i].insert(v) {
				c.setCard[i]++
			}
			continue
		}
		if v < o.min[base+i] {
			o.min[base+i] = v
		}
		if v > o.max[base+i] {
			o.max[base+i] = v
		}
	}
	if o.center != nil {
		lr := o.cfg.LearningRate
		ctr := o.center[base : base+o.nf]
		for i, v := range vals {
			ctr[i] += lr * (float64(v) - ctr[i])
		}
	}
	o.markDirty(ci)
}

// mergeClusters absorbs the whole of cluster si into cluster di
// (exhaustive search).
func (o *Online) mergeClusters(di, si int) {
	d, s := o.clusters[di], o.clusters[si]
	db, sb := di*o.nf, si*o.nf
	for i := 0; i < o.nf; i++ {
		if o.nominal[i] {
			if o.cfg.UseBloom {
				// Bloom filters cannot be unioned value-exactly here;
				// exact mode is the simulation default, and
				// exhaustive+bloom is rejected by Config.Validate.
				panic("cluster: exhaustive search with Bloom sets is not supported")
			}
			added := 0
			s.sets[i].each(func(v uint32) {
				if d.sets[i].insert(v) {
					added++
				}
			})
			d.setCard[i] += added
			continue
		}
		if o.min[sb+i] < o.min[db+i] {
			o.min[db+i] = o.min[sb+i]
		}
		if o.max[sb+i] > o.max[db+i] {
			o.max[db+i] = o.max[sb+i]
		}
	}
	if o.center != nil {
		// Weighted centroid of the two clusters. Two empty clusters
		// (count 0, e.g. untouched slice-init tiles) take the plain
		// midpoint — the weighted form would divide by zero.
		tot := float64(d.count + s.count)
		for i := 0; i < o.nf; i++ {
			if tot == 0 {
				o.center[db+i] = (o.center[db+i] + o.center[sb+i]) / 2
			} else {
				o.center[db+i] = (o.center[db+i]*float64(d.count) + o.center[sb+i]*float64(s.count)) / tot
			}
		}
	}
	d.count += s.count
	d.packets += s.packets
	d.bytes += s.bytes
	d.totalPackets += s.totalPackets
	d.benign += s.benign
	d.malicious += s.malicious
	o.markDirty(di)
}

// account records one packet's traffic statistics against the cluster.
func (c *clusterState) account(size uint64, malicious bool) {
	c.count++
	c.packets++
	c.totalPackets++
	c.bytes += size
	if malicious {
		c.malicious++
	} else {
		c.benign++
	}
}

// Observe runs one step of Algorithm 1 for packet p: find the closest
// cluster (seeding or merging per the search strategy) and extend it to
// cover p.
func (o *Online) Observe(p *packet.Packet) Assignment {
	vals := o.feats.Extract(p, o.valbuf)
	return o.observe(vals, uint64(p.Size()), p.Label == packet.Malicious)
}

// ObserveFeatures is Observe for a packet already reduced to its
// feature values — the wire-speed ingest entry point, fed by the fused
// frame decoder (packet.DecodeFeatures) so no Packet is ever
// materialized. vals must hold exactly the configured feature set's
// values in set order; size is the wire length in bytes. Both paths
// share one implementation, so assignments are bit-identical to
// Observe on the equivalent packet. vals is only read.
func (o *Online) ObserveFeatures(vals []uint32, size uint64, malicious bool) Assignment {
	if len(vals) != o.nf {
		panic("cluster: ObserveFeatures values do not match the configured feature set")
	}
	return o.observe(vals, size, malicious)
}

// observe is the shared step behind Observe and ObserveFeatures.
func (o *Online) observe(vals []uint32, size uint64, malicious bool) Assignment {
	o.Observed++

	// Seed phase: the first |C| distinct arrivals each start a cluster
	// (unless an existing cluster already covers the packet exactly).
	if len(o.clusters) < o.cfg.MaxClusters {
		if id, d := o.closest(vals); id >= 0 && d == 0 {
			o.clusters[id].account(size, malicious)
			// Euclidean merge costs depend on cluster weights, which
			// account just changed.
			o.markDirty(id)
			return Assignment{Cluster: id, UID: o.clusters[id].uid, Distance: 0}
		}
		slot := len(o.clusters)
		c := o.newClusterAt(slot, vals)
		c.account(size, malicious)
		c.count-- // account() bumped it; seed already counted once
		o.clusters = append(o.clusters, c)
		return Assignment{Cluster: slot, UID: c.uid, Created: true}
	}

	id, d := o.closest(vals)

	if o.cfg.Search == Exhaustive && d > 0 {
		// Consider merging the two closest clusters and starting a new
		// cluster at p. Worth it iff the cost increase of the
		// cluster-cluster merge is below the cost increase of
		// absorbing p into its nearest cluster.
		mi, mj, md := o.closestPair()
		if mi >= 0 && md < d {
			o.mergeClusters(mi, mj)
			c := o.newClusterAt(mj, vals)
			c.account(size, malicious)
			c.count--
			o.clusters[mj] = c
			return Assignment{Cluster: mj, UID: c.uid, Distance: 0, Created: true}
		}
	}

	c := o.clusters[id]
	if d > 0 || o.center != nil {
		// Center representations update even for covered packets.
		o.absorb(id, vals)
	}
	c.account(size, malicious)
	return Assignment{Cluster: id, UID: c.uid, Distance: d}
}

// closest returns the index and distance of the cluster nearest to
// vals, or (-1, +inf) when no clusters exist. Ties break toward the
// lowest index, matching the hardware's deterministic comparison tree.
// The running best distance is passed to the kernel as a bound so
// monotone metrics can bail out of losing clusters early.
func (o *Online) closest(vals []uint32) (int, float64) {
	if o.rawManhattan {
		return o.closestManhattanRaw(vals)
	}
	best, bestD := -1, math.Inf(1)
	for i := range o.clusters {
		d := o.dist(o, vals, i, bestD)
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// closestManhattanRaw is closest with manhattanPointRaw fused into the
// scan: no indirect kernel call per cluster, no per-call slice
// re-derivation. Accumulation order and comparisons are identical to
// the generic path, so it returns bit-identical results (asserted by
// the fast-path equivalence tests).
func (o *Online) closestManhattanRaw(vals []uint32) (int, float64) {
	best, bestD := -1, math.Inf(1)
	nf := o.nf
	for ci := range o.clusters {
		base := ci * nf
		c := o.clusters[ci]
		var d float64
		for i, v := range vals {
			if o.nominal[i] {
				if !nomContains(c, i, v) {
					d++
				}
			} else if mn := o.min[base+i]; v < mn {
				d += float64(mn - v)
			} else if mx := o.max[base+i]; v > mx {
				d += float64(v - mx)
			}
			if d >= bestD {
				break
			}
		}
		if d < bestD {
			best, bestD = ci, d
		}
	}
	return best, bestD
}

// closestPair returns the pair of clusters with the lowest merge cost,
// refreshing only the cached rows whose clusters changed since the last
// call.
func (o *Online) closestPair() (int, int, float64) {
	k := len(o.clusters)
	for i := 0; i < k; i++ {
		if !o.rowDirty[i] {
			continue
		}
		row := o.pairCost[i*o.stride:]
		for j := 0; j < k; j++ {
			if j == i {
				continue
			}
			// Always evaluate with the lower index first: merge kernels
			// are semantically symmetric but not bit-symmetric (float
			// subtraction order), and the matrix must stay canonical.
			var c float64
			if i < j {
				c = o.merge(o, i, j)
			} else {
				c = o.merge(o, j, i)
			}
			row[j] = c
			o.pairCost[j*o.stride+i] = c
		}
		o.rowDirty[i] = false
	}
	bi, bj, bd := -1, -1, 0.0
	for i := 0; i < k; i++ {
		row := o.pairCost[i*o.stride:]
		for j := i + 1; j < k; j++ {
			if d := row[j]; bi < 0 || d < bd {
				bi, bj, bd = i, j, d
			}
		}
	}
	return bi, bj, bd
}

// Snapshot returns the interpretable view of all clusters. The returned
// slices are copies; mutating them does not affect the clusterer.
func (o *Online) Snapshot() []Info {
	out := make([]Info, len(o.clusters))
	for i, c := range o.clusters {
		info := Info{
			ID:                 i,
			Active:             true,
			Ranges:             make([]Range, o.nf),
			NominalCardinality: make([]int, o.nf),
			Packets:            c.packets,
			Bytes:              c.bytes,
			TotalPackets:       c.totalPackets,
			Benign:             c.benign,
			Malicious:          c.malicious,
			Size:               o.clusterCost(i),
		}
		base := i * o.nf
		for f := range o.feats {
			if o.nominal[f] {
				info.NominalCardinality[f] = c.setCard[f]
			} else {
				info.Ranges[f] = Range{Min: o.min[base+f], Max: o.max[base+f]}
			}
		}
		out[i] = info
	}
	return out
}

// ResetStats zeroes the per-window counters (packets, bytes, labels) on
// every cluster. The ACC-Turbo controller calls this after each poll.
func (o *Online) ResetStats() {
	for _, c := range o.clusters {
		c.packets, c.bytes, c.benign, c.malicious = 0, 0, 0, 0
	}
}

// Reseed discards all clusters (restoring the slice tiling when
// SliceInit is configured). The controller uses this to let the
// clustering re-form when aggregates go stale (e.g. between attack
// pulses).
func (o *Online) Reseed() {
	o.clusters = o.clusters[:0]
	if o.rowDirty != nil {
		for i := range o.rowDirty {
			o.rowDirty[i] = true
		}
	}
	if o.cfg.SliceInit {
		o.sliceInit()
	}
}

// SeedCenters force-seeds Euclidean clusters at the given centers,
// used by the hybrid offline/online strategy. It panics unless the
// clusterer is center-based.
func (o *Online) SeedCenters(centers [][]float64) {
	if o.cfg.Distance != Euclidean {
		panic(fmt.Sprintf("cluster: SeedCenters on %v clusterer", o.cfg.Distance))
	}
	o.grow(len(centers))
	o.clusters = o.clusters[:0]
	for ci, ctr := range centers {
		if len(ctr) != o.nf {
			panic(fmt.Sprintf("cluster: center has %d dims, want %d", len(ctr), o.nf))
		}
		for i, v := range ctr {
			if v < 0 {
				v = 0
			}
			o.valbuf[i] = uint32(v)
		}
		c := o.newClusterAt(ci, o.valbuf)
		copy(o.center[ci*o.nf:(ci+1)*o.nf], ctr)
		c.count = 0
		o.clusters = append(o.clusters, c)
	}
}
