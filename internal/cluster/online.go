package cluster

import (
	"fmt"

	"accturbo/internal/packet"
	"accturbo/internal/sketch"
)

// Online is the online clusterer of Appendix B: it maintains at most
// |C| clusters and assigns every packet to exactly one of them,
// extending that cluster's ranges/sets when the packet falls outside.
//
// Online is not safe for concurrent use; the simulator is
// single-threaded by design.
type Online struct {
	cfg      Config
	feats    packet.FeatureSet
	nominal  []bool    // per feature position
	scale    []float64 // per-feature distance scaling (1 when !Normalize)
	clusters []*clusterState
	valbuf   []uint32 // scratch: feature values of the current packet
	nextUID  uint64
	// Observed counts packets seen since construction.
	Observed uint64
}

type clusterState struct {
	uid      uint64
	min, max []uint32              // ordinal positions
	sets     []map[uint32]struct{} // nominal positions (exact mode)
	blooms   []*sketch.Bloom       // nominal positions (bloom mode)
	setCard  []int                 // admitted-value count per nominal position

	center []float64 // Euclidean representation
	count  uint64    // packets since seed (for center merging)

	packets, bytes    uint64 // since last ResetStats
	totalPackets      uint64
	benign, malicious uint64
}

// NewOnline builds an online clusterer. It panics on an invalid
// configuration (configs are produced by code, not user input).
func NewOnline(cfg Config) *Online {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	o := &Online{
		cfg:     cfg,
		feats:   cfg.Features,
		nominal: make([]bool, len(cfg.Features)),
		valbuf:  make([]uint32, len(cfg.Features)),
	}
	o.scale = make([]float64, len(cfg.Features))
	for i, f := range cfg.Features {
		o.nominal[i] = f.Nominal()
		o.scale[i] = 1
		if cfg.Normalize && !o.nominal[i] {
			o.scale[i] = 1 / (float64(f.MaxValue()) + 1)
		}
	}
	if cfg.SliceInit {
		o.sliceInit()
	}
	return o
}

// sliceInit pre-creates MaxClusters clusters that partition the value
// space of the *first ordinal feature* into even slices, with every
// other ordinal feature starting at its full range. This mirrors the
// hardware prototype's controller, which tiles the destination-address
// space so the initial assignment is order-independent. Nominal sets
// start empty.
func (o *Online) sliceInit() {
	k := o.cfg.MaxClusters
	lead := -1
	for f := range o.feats {
		if !o.nominal[f] {
			lead = f
			break
		}
	}
	for i := 0; i < k; i++ {
		vals := make([]uint32, len(o.feats))
		c := o.newCluster(vals)
		c.count = 0
		for f, feat := range o.feats {
			if o.nominal[f] {
				// Drop the seeded zero value: slices carry no nominal
				// admissions until traffic arrives.
				if o.cfg.UseBloom {
					c.blooms[f].Reset()
				} else {
					delete(c.sets[f], 0)
				}
				c.setCard[f] = 0
				continue
			}
			max := uint64(feat.MaxValue()) + 1
			lo, hi := uint32(0), uint32(max-1)
			if f == lead {
				lo = uint32(max * uint64(i) / uint64(k))
				hi = uint32(max*uint64(i+1)/uint64(k) - 1)
			}
			c.min[f], c.max[f] = lo, hi
			if c.center != nil {
				c.center[f] = (float64(lo) + float64(hi)) / 2
			}
		}
		o.clusters = append(o.clusters, c)
	}
}

// Config returns the clusterer's configuration.
func (o *Online) Config() Config { return o.cfg }

// NumClusters returns the number of seeded clusters.
func (o *Online) NumClusters() int { return len(o.clusters) }

func (o *Online) newCluster(vals []uint32) *clusterState {
	o.nextUID++
	n := len(o.feats)
	c := &clusterState{
		uid:     o.nextUID,
		min:     make([]uint32, n),
		max:     make([]uint32, n),
		setCard: make([]int, n),
	}
	if o.cfg.UseBloom {
		c.blooms = make([]*sketch.Bloom, n)
	} else {
		c.sets = make([]map[uint32]struct{}, n)
	}
	if o.cfg.Distance == Euclidean {
		c.center = make([]float64, n)
	}
	for i, v := range vals {
		c.min[i], c.max[i] = v, v
		if o.nominal[i] {
			if o.cfg.UseBloom {
				c.blooms[i] = sketch.NewBloom(o.cfg.BloomBits, o.cfg.BloomHashes)
				c.blooms[i].Insert(uint64(v))
			} else {
				c.sets[i] = map[uint32]struct{}{v: {}}
			}
			c.setCard[i] = 1
		}
		if c.center != nil {
			c.center[i] = float64(v)
		}
	}
	c.count = 1
	return c
}

// contains reports whether the cluster admits value v at position i.
func (c *clusterState) contains(o *Online, i int, v uint32) bool {
	if o.nominal[i] {
		if o.cfg.UseBloom {
			return c.blooms[i].Contains(uint64(v))
		}
		_, ok := c.sets[i][v]
		return ok
	}
	return v >= c.min[i] && v <= c.max[i]
}

// absorb extends the cluster to cover vals.
func (c *clusterState) absorb(o *Online, vals []uint32) {
	for i, v := range vals {
		if o.nominal[i] {
			if !c.contains(o, i, v) {
				if o.cfg.UseBloom {
					c.blooms[i].Insert(uint64(v))
				} else {
					c.sets[i][v] = struct{}{}
				}
				c.setCard[i]++
			}
			continue
		}
		if v < c.min[i] {
			c.min[i] = v
		}
		if v > c.max[i] {
			c.max[i] = v
		}
	}
	if c.center != nil {
		lr := o.cfg.LearningRate
		for i, v := range vals {
			c.center[i] += lr * (float64(v) - c.center[i])
		}
	}
}

// mergeFrom absorbs the whole of src into c (exhaustive search).
func (c *clusterState) mergeFrom(o *Online, src *clusterState) {
	for i := range c.min {
		if o.nominal[i] {
			if o.cfg.UseBloom {
				// Bloom filters cannot be unioned bit-exactly here
				// because geometries match: OR the words via reinsert
				// is impossible, so approximate by inserting nothing
				// and keeping the larger filter. Exact mode is the
				// simulation default; exhaustive+bloom is rejected at
				// construction time by Observe instead.
				panic("cluster: exhaustive search with Bloom sets is not supported")
			}
			for v := range src.sets[i] {
				if _, ok := c.sets[i][v]; !ok {
					c.sets[i][v] = struct{}{}
					c.setCard[i]++
				}
			}
			continue
		}
		if src.min[i] < c.min[i] {
			c.min[i] = src.min[i]
		}
		if src.max[i] > c.max[i] {
			c.max[i] = src.max[i]
		}
	}
	if c.center != nil {
		// Weighted centroid of the two clusters.
		tot := float64(c.count + src.count)
		for i := range c.center {
			c.center[i] = (c.center[i]*float64(c.count) + src.center[i]*float64(src.count)) / tot
		}
	}
	c.count += src.count
	c.packets += src.packets
	c.bytes += src.bytes
	c.totalPackets += src.totalPackets
	c.benign += src.benign
	c.malicious += src.malicious
}

// account records a packet's traffic statistics against the cluster.
func (c *clusterState) account(p *packet.Packet) {
	c.count++
	c.packets++
	c.totalPackets++
	c.bytes += uint64(p.Size())
	if p.Label == packet.Malicious {
		c.malicious++
	} else {
		c.benign++
	}
}

// Observe runs one step of Algorithm 1 for packet p: find the closest
// cluster (seeding or merging per the search strategy) and extend it to
// cover p.
func (o *Online) Observe(p *packet.Packet) Assignment {
	o.Observed++
	vals := o.feats.Extract(p, o.valbuf)

	// Seed phase: the first |C| distinct arrivals each start a cluster
	// (unless an existing cluster already covers the packet exactly).
	if len(o.clusters) < o.cfg.MaxClusters {
		if id, d := o.closest(vals); id >= 0 && d == 0 {
			o.clusters[id].account(p)
			return Assignment{Cluster: id, UID: o.clusters[id].uid, Distance: 0}
		}
		c := o.newCluster(vals)
		c.account(p)
		c.count-- // account() bumped it; seed already counted once
		o.clusters = append(o.clusters, c)
		return Assignment{Cluster: len(o.clusters) - 1, UID: c.uid, Created: true}
	}

	id, d := o.closest(vals)

	if o.cfg.Search == Exhaustive && d > 0 {
		// Consider merging the two closest clusters and starting a new
		// cluster at p. Worth it iff the cost increase of the
		// cluster-cluster merge is below the cost increase of
		// absorbing p into its nearest cluster.
		mi, mj, md := o.closestPair()
		if mi >= 0 && md < d {
			o.clusters[mi].mergeFrom(o, o.clusters[mj])
			c := o.newCluster(vals)
			c.account(p)
			c.count--
			o.clusters[mj] = c
			return Assignment{Cluster: mj, UID: c.uid, Distance: 0, Created: true}
		}
	}

	c := o.clusters[id]
	if d > 0 || c.center != nil {
		// Center representations update even for covered packets.
		c.absorb(o, vals)
	}
	c.account(p)
	return Assignment{Cluster: id, UID: c.uid, Distance: d}
}

// closest returns the index and distance of the cluster nearest to
// vals, or (-1, +inf) when no clusters exist. Ties break toward the
// lowest index, matching the hardware's deterministic comparison tree.
func (o *Online) closest(vals []uint32) (int, float64) {
	best, bestD := -1, 0.0
	for i, c := range o.clusters {
		d := o.distance(vals, c)
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// closestPair returns the pair of clusters with the lowest merge cost.
func (o *Online) closestPair() (int, int, float64) {
	bi, bj, bd := -1, -1, 0.0
	for i := 0; i < len(o.clusters); i++ {
		for j := i + 1; j < len(o.clusters); j++ {
			d := o.mergeCost(o.clusters[i], o.clusters[j])
			if bi < 0 || d < bd {
				bi, bj, bd = i, j, d
			}
		}
	}
	return bi, bj, bd
}

// Snapshot returns the interpretable view of all clusters. The returned
// slices are copies; mutating them does not affect the clusterer.
func (o *Online) Snapshot() []Info {
	out := make([]Info, len(o.clusters))
	for i, c := range o.clusters {
		info := Info{
			ID:                 i,
			Active:             true,
			Ranges:             make([]Range, len(o.feats)),
			NominalCardinality: make([]int, len(o.feats)),
			Packets:            c.packets,
			Bytes:              c.bytes,
			TotalPackets:       c.totalPackets,
			Benign:             c.benign,
			Malicious:          c.malicious,
			Size:               o.clusterCost(c),
		}
		for f := range o.feats {
			if o.nominal[f] {
				info.NominalCardinality[f] = c.setCard[f]
			} else {
				info.Ranges[f] = Range{Min: c.min[f], Max: c.max[f]}
			}
		}
		out[i] = info
	}
	return out
}

// ResetStats zeroes the per-window counters (packets, bytes, labels) on
// every cluster. The ACC-Turbo controller calls this after each poll.
func (o *Online) ResetStats() {
	for _, c := range o.clusters {
		c.packets, c.bytes, c.benign, c.malicious = 0, 0, 0, 0
	}
}

// Reseed discards all clusters (restoring the slice tiling when
// SliceInit is configured). The controller uses this to let the
// clustering re-form when aggregates go stale (e.g. between attack
// pulses).
func (o *Online) Reseed() {
	o.clusters = o.clusters[:0]
	if o.cfg.SliceInit {
		o.sliceInit()
	}
}

// SeedCenters force-seeds Euclidean clusters at the given centers,
// used by the hybrid offline/online strategy. It panics unless the
// clusterer is center-based.
func (o *Online) SeedCenters(centers [][]float64) {
	if o.cfg.Distance != Euclidean {
		panic(fmt.Sprintf("cluster: SeedCenters on %v clusterer", o.cfg.Distance))
	}
	o.clusters = o.clusters[:0]
	for _, ctr := range centers {
		if len(ctr) != len(o.feats) {
			panic(fmt.Sprintf("cluster: center has %d dims, want %d", len(ctr), len(o.feats)))
		}
		vals := make([]uint32, len(ctr))
		for i, v := range ctr {
			if v < 0 {
				v = 0
			}
			vals[i] = uint32(v)
		}
		c := o.newCluster(vals)
		copy(c.center, ctr)
		c.count = 0
		o.clusters = append(o.clusters, c)
	}
}
