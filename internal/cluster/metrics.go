package cluster

import "accturbo/internal/packet"

// Eval accumulates clustering-quality metrics over a window of
// assignments, following §8.1 of the paper:
//
//   - Purity: label each cluster with its majority class, count the
//     packets matching their cluster's label, divide by total packets.
//   - Recall (benign): fraction of benign packets mapped into
//     majority-benign clusters. Symmetrically for malicious.
//
// Metrics are computed from (cluster, ground-truth label) pairs
// supplied by the evaluation harness; the clusterer itself never sees
// this accounting.
type Eval struct {
	benign    map[int]uint64
	malicious map[int]uint64
	totB      uint64
	totM      uint64
}

// NewEval returns an empty accumulator.
func NewEval() *Eval {
	return &Eval{benign: map[int]uint64{}, malicious: map[int]uint64{}}
}

// Observe records that a packet with the given ground-truth label was
// assigned to cluster id.
func (e *Eval) Observe(id int, label packet.Label) {
	if label == packet.Malicious {
		e.malicious[id]++
		e.totM++
	} else {
		e.benign[id]++
		e.totB++
	}
}

// Total returns the number of observed packets.
func (e *Eval) Total() uint64 { return e.totB + e.totM }

// Mixed reports whether the window saw both benign and malicious
// packets; the paper only scores such windows.
func (e *Eval) Mixed() bool { return e.totB > 0 && e.totM > 0 }

// Purity returns the clustering purity in [0, 1], or 0 for an empty
// window.
func (e *Eval) Purity() float64 {
	total := e.Total()
	if total == 0 {
		return 0
	}
	var match uint64
	for id := range e.clusters() {
		b, m := e.benign[id], e.malicious[id]
		if b >= m {
			match += b
		} else {
			match += m
		}
	}
	return float64(match) / float64(total)
}

// RecallBenign returns the fraction of benign packets that landed in
// majority-benign clusters (1 if no benign packets were observed).
func (e *Eval) RecallBenign() float64 {
	if e.totB == 0 {
		return 1
	}
	var hit uint64
	for id := range e.clusters() {
		b, m := e.benign[id], e.malicious[id]
		if b >= m {
			hit += b
		}
	}
	return float64(hit) / float64(e.totB)
}

// RecallMalicious returns the fraction of malicious packets that landed
// in majority-malicious clusters (1 if none were observed).
func (e *Eval) RecallMalicious() float64 {
	if e.totM == 0 {
		return 1
	}
	var hit uint64
	for id := range e.clusters() {
		b, m := e.benign[id], e.malicious[id]
		if m > b {
			hit += m
		}
	}
	return float64(hit) / float64(e.totM)
}

// clusters yields the union of cluster ids seen in the window.
func (e *Eval) clusters() map[int]struct{} {
	ids := make(map[int]struct{}, len(e.benign)+len(e.malicious))
	for id := range e.benign {
		ids[id] = struct{}{}
	}
	for id := range e.malicious {
		ids[id] = struct{}{}
	}
	return ids
}

// Reset clears the window.
func (e *Eval) Reset() {
	clear(e.benign)
	clear(e.malicious)
	e.totB, e.totM = 0, 0
}

// WindowedEval averages metrics across fixed windows, counting only
// windows that contained both traffic classes (the paper computes
// metrics every minute and averages).
type WindowedEval struct {
	cur     *Eval
	windows int
	sumP    float64
	sumRB   float64
	sumRM   float64
}

// NewWindowedEval returns an empty windowed accumulator.
func NewWindowedEval() *WindowedEval {
	return &WindowedEval{cur: NewEval()}
}

// Observe records an assignment into the current window.
func (w *WindowedEval) Observe(id int, label packet.Label) {
	w.cur.Observe(id, label)
}

// Roll closes the current window, folding it into the averages when it
// was mixed.
func (w *WindowedEval) Roll() {
	if w.cur.Mixed() {
		w.windows++
		w.sumP += w.cur.Purity()
		w.sumRB += w.cur.RecallBenign()
		w.sumRM += w.cur.RecallMalicious()
	}
	w.cur.Reset()
}

// Windows returns the number of mixed windows folded so far.
func (w *WindowedEval) Windows() int { return w.windows }

// Purity returns the average purity over mixed windows (0 if none).
func (w *WindowedEval) Purity() float64 {
	if w.windows == 0 {
		return 0
	}
	return w.sumP / float64(w.windows)
}

// RecallBenign returns the average benign recall over mixed windows.
func (w *WindowedEval) RecallBenign() float64 {
	if w.windows == 0 {
		return 0
	}
	return w.sumRB / float64(w.windows)
}

// RecallMalicious returns the average malicious recall over mixed
// windows.
func (w *WindowedEval) RecallMalicious() float64 {
	if w.windows == 0 {
		return 0
	}
	return w.sumRM / float64(w.windows)
}
