package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"accturbo/internal/packet"
)

// equivTrace mixes recurring aggregates (so packets hit existing
// clusters at distance 0) with fully random packets (so clusters grow,
// merge, and spill nominal sets) — the cases where the fast path and
// the naive reference could diverge.
func equivTrace(n int, seed int64) []*packet.Packet {
	r := rand.New(rand.NewSource(seed))
	recurring := benchTrace(64, seed+1)
	pkts := make([]*packet.Packet, n)
	for i := range pkts {
		if r.Intn(2) == 0 {
			pkts[i] = recurring[r.Intn(len(recurring))]
			continue
		}
		p := randPkt(r)
		p.SrcIP = packet.V4(byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)))
		p.DstIP = packet.V4(byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)))
		p.SrcPort = uint16(r.Intn(65536))
		p.DstPort = uint16(r.Intn(65536))
		pkts[i] = p
	}
	return pkts
}

// TestFastPathMatchesReference drives the flattened fast path and the
// retained naive implementation through an identical trace — including
// mid-trace ResetStats, Reseed, and (for Euclidean) SeedCenters — and
// requires bit-identical assignments and snapshots for every valid
// configuration. The distance kernels deliberately preserve the
// reference's float accumulation order, so exact equality is the
// expected outcome, not a flaky approximation.
func TestFastPathMatchesReference(t *testing.T) {
	variants := []struct {
		name   string
		mutate func(*Config)
	}{
		{"default", func(*Config) {}},
		{"normalize", func(c *Config) { c.Normalize = true }},
		{"sliceinit", func(c *Config) { c.SliceInit = true }},
	}
	pkts := equivTrace(3000, 7)
	centers := make([][]float64, 4)
	nf := len(packet.DefaultSimulationFeatures())
	for j := range centers {
		centers[j] = make([]float64, nf)
		for f := range centers[j] {
			centers[j][f] = float64((j*37 + f*11) % 256)
		}
	}
	for _, base := range benchCombos() {
		for _, v := range variants {
			cfg := base
			v.mutate(&cfg)
			t.Run(comboName(cfg)+"/"+v.name, func(t *testing.T) {
				fast := NewOnline(cfg)
				ref := NewReference(cfg)
				for i, p := range pkts {
					fa, ra := fast.Observe(p), ref.Observe(p)
					if fa != ra {
						t.Fatalf("packet %d: fast=%+v ref=%+v", i, fa, ra)
					}
					switch i {
					case 1000:
						fast.ResetStats()
						ref.ResetStats()
					case 2000:
						fast.Reseed()
						ref.Reseed()
					case 2500:
						if cfg.Distance == Euclidean {
							fast.SeedCenters(centers)
							ref.SeedCenters(centers)
						}
					}
				}
				if fast.NumClusters() != ref.NumClusters() {
					t.Fatalf("cluster counts diverge: fast=%d ref=%d", fast.NumClusters(), ref.NumClusters())
				}
				fs, rs := fast.Snapshot(), ref.Snapshot()
				if !reflect.DeepEqual(fs, rs) {
					for i := range fs {
						if !reflect.DeepEqual(fs[i], rs[i]) {
							t.Errorf("cluster %d: fast=%+v ref=%+v", i, fs[i], rs[i])
						}
					}
					t.Fatal("snapshots diverge")
				}
			})
		}
	}
}
