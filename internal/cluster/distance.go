package cluster

// Distance and cost computations for the three metrics of §4.2.3,
// compiled down to kernels selected once at construction: the
// per-packet path never switches on the metric. For ranges, widths use
// float64 to keep the Anime product within range (the paper notes the
// exact product can need 157 bits; the simulator only compares
// magnitudes, so float64 precision suffices).
//
// Equivalence discipline: every kernel accumulates in the same feature
// order and with the same expression shapes as the retained Reference
// implementation, so both produce bit-identical float64 results and
// therefore identical assignments (asserted by TestFastPathMatchesReference).

// pointKernel returns d(p, c): the cost increase of absorbing the
// packet (given by its extracted feature values) into cluster ci.
// bound is the best distance found so far in the current scan; kernels
// whose partial sums are monotone may return early with any value
// >= bound once the cluster cannot win. Pass +inf for an exact result.
type pointKernel func(o *Online, vals []uint32, ci int, bound float64) float64

// mergeKernel returns d(ci, cj): the cost increase of merging the two
// clusters (exhaustive search only). Kernels are symmetric in (i, j).
type mergeKernel func(o *Online, i, j int) float64

// selectKernels binds the configured distance to concrete kernels.
func (o *Online) selectKernels() {
	switch o.cfg.Distance {
	case Manhattan:
		o.merge = manhattanMerge
		if o.cfg.Normalize {
			o.dist = manhattanPointScaled
		} else {
			o.dist = manhattanPointRaw
			o.rawManhattan = true
		}
	case Anime:
		o.dist, o.merge = animePoint, animeMerge
	case Euclidean:
		o.dist, o.merge = euclideanPoint, euclideanMerge
	default:
		panic("cluster: unknown distance")
	}
}

// clusterCost returns delta(c), the cluster's size under the configured
// cost function.
func (o *Online) clusterCost(ci int) float64 {
	switch o.cfg.Distance {
	case Anime:
		prod := 1.0
		for i := 0; i < o.nf; i++ {
			prod *= o.featWidth(ci, i)
		}
		return prod
	case Euclidean:
		// Centers carry no extent; use the tracked bounding box so
		// "size" remains meaningful for ranking ablations.
		fallthrough
	case Manhattan:
		sum := 0.0
		for i := 0; i < o.nf; i++ {
			sum += o.featWidth(ci, i) - 1
		}
		return sum
	default:
		panic("cluster: unknown distance")
	}
}

// featWidth is the per-feature cost of a cluster: range width + 1 for
// ordinal features (so a point has width 1), set cardinality for
// nominal ones. With Normalize set, ordinal widths are scaled into
// (0, 1] so wide value spaces do not dominate.
func (o *Online) featWidth(ci, i int) float64 {
	if o.nominal[i] {
		return float64(o.clusters[ci].setCard[i])
	}
	base := ci * o.nf
	return (float64(o.max[base+i]-o.min[base+i]) + 1) * o.scale[i]
}

// --- Manhattan (Eq. 5) ---

// manhattanPointRaw is the deployable fast path: unnormalized Manhattan
// distance over the flattened ranges. All contributions are exact small
// integers, so accumulation order cannot change the result and the
// bound check is a pure early exit.
func manhattanPointRaw(o *Online, vals []uint32, ci int, bound float64) float64 {
	base := ci * o.nf
	mn := o.min[base : base+len(vals)]
	mx := o.max[base : base+len(vals)]
	c := o.clusters[ci]
	var d float64
	for i, v := range vals {
		if o.nominal[i] {
			if !nomContains(c, i, v) {
				d++
			}
		} else if v < mn[i] {
			d += float64(mn[i] - v)
		} else if v > mx[i] {
			d += float64(v - mx[i])
		}
		if d >= bound {
			return d
		}
	}
	return d
}

// manhattanPointScaled is the Normalize variant; it keeps the exact
// feature-order float accumulation of the reference implementation.
func manhattanPointScaled(o *Online, vals []uint32, ci int, bound float64) float64 {
	base := ci * o.nf
	mn := o.min[base : base+len(vals)]
	mx := o.max[base : base+len(vals)]
	c := o.clusters[ci]
	var d float64
	for i, v := range vals {
		if o.nominal[i] {
			if !nomContains(c, i, v) {
				d++
			}
		} else if v < mn[i] {
			d += float64(mn[i]-v) * o.scale[i]
		} else if v > mx[i] {
			d += float64(v-mx[i]) * o.scale[i]
		}
		if d >= bound {
			return d
		}
	}
	return d
}

func manhattanMerge(o *Online, ai, bi int) float64 {
	// Cost increase = width(union) - width(a) - width(b) per ordinal
	// feature (negative when the ranges overlap); for nominal
	// features, |union| - |a| - |b| (always <= 0), computable exactly
	// in set mode.
	a, b := o.clusters[ai], o.clusters[bi]
	ab, bb := ai*o.nf, bi*o.nf
	var d float64
	for i := 0; i < o.nf; i++ {
		if o.nominal[i] {
			union := a.setCard[i] + b.sets[i].unionExtra(&a.sets[i])
			d += float64(union - a.setCard[i] - b.setCard[i])
			continue
		}
		lo, hi := o.min[ab+i], o.max[ab+i]
		if o.min[bb+i] < lo {
			lo = o.min[bb+i]
		}
		if o.max[bb+i] > hi {
			hi = o.max[bb+i]
		}
		d += (float64(hi-lo) - float64(o.max[ab+i]-o.min[ab+i]) - float64(o.max[bb+i]-o.min[bb+i])) * o.scale[i]
	}
	return d
}

// --- Anime (Eq. 1 / Def. 4.1) ---

func animePoint(o *Online, vals []uint32, ci int, _ float64) float64 {
	// No early exit: the cost is after-before, which is not monotone in
	// the feature index.
	base := ci * o.nf
	c := o.clusters[ci]
	before := 1.0
	after := 1.0
	for i, v := range vals {
		w := o.featWidth(ci, i)
		before *= w
		if o.nominal[i] {
			if !nomContains(c, i, v) {
				w++
			}
			after *= w
			continue
		}
		switch {
		case v < o.min[base+i]:
			after *= (float64(o.max[base+i]-v) + 1) * o.scale[i]
		case v > o.max[base+i]:
			after *= (float64(v-o.min[base+i]) + 1) * o.scale[i]
		default:
			after *= w
		}
	}
	return after - before
}

func animeMerge(o *Online, ai, bi int) float64 {
	a, b := o.clusters[ai], o.clusters[bi]
	ab, bb := ai*o.nf, bi*o.nf
	costA, costB, union := 1.0, 1.0, 1.0
	for i := 0; i < o.nf; i++ {
		costA *= o.featWidth(ai, i)
		costB *= o.featWidth(bi, i)
		if o.nominal[i] {
			card := a.setCard[i] + b.sets[i].unionExtra(&a.sets[i])
			union *= float64(card)
			continue
		}
		lo, hi := o.min[ab+i], o.max[ab+i]
		if o.min[bb+i] < lo {
			lo = o.min[bb+i]
		}
		if o.max[bb+i] > hi {
			hi = o.max[bb+i]
		}
		union *= (float64(hi-lo) + 1) * o.scale[i]
	}
	return union - costA - costB
}

// --- Euclidean (Eq. 2) ---

func euclideanPoint(o *Online, vals []uint32, ci int, bound float64) float64 {
	base := ci * o.nf
	ctr := o.center[base : base+len(vals)]
	var d float64
	for i, v := range vals {
		diff := (float64(v) - ctr[i]) * o.scale[i]
		d += diff * diff
		if d >= bound {
			return d
		}
	}
	return d
}

func euclideanMerge(o *Online, ai, bi int) float64 {
	// Ward-style linkage: the increase in within-cluster squared error
	// caused by merging two centroids.
	a, b := o.clusters[ai], o.clusters[bi]
	ab, bb := ai*o.nf, bi*o.nf
	var d float64
	for i := 0; i < o.nf; i++ {
		diff := (o.center[ab+i] - o.center[bb+i]) * o.scale[i]
		d += diff * diff
	}
	na, nb := float64(a.count), float64(b.count)
	if na+nb == 0 {
		return d
	}
	return d * na * nb / (na + nb)
}
