package cluster

// Distance and cost computations for the three metrics of §4.2.3.
//
// All three are expressed as "cost increase caused by a merge", so the
// same online algorithm minimizes each. For ranges, widths use float64
// to keep the Anime product within range (the paper notes the exact
// product can need 157 bits; the simulator only compares magnitudes, so
// float64 precision suffices).

// distance returns d(p, c): the cost increase of absorbing the packet
// (given by its extracted feature values) into cluster c.
func (o *Online) distance(vals []uint32, c *clusterState) float64 {
	switch o.cfg.Distance {
	case Manhattan:
		return o.manhattanPoint(vals, c)
	case Anime:
		return o.animePoint(vals, c)
	case Euclidean:
		return o.euclideanPoint(vals, c)
	default:
		panic("cluster: unknown distance")
	}
}

// mergeCost returns d(ci, cj): the cost increase of merging the two
// clusters (exhaustive search only).
func (o *Online) mergeCost(a, b *clusterState) float64 {
	switch o.cfg.Distance {
	case Manhattan:
		return o.manhattanMerge(a, b)
	case Anime:
		return o.animeMerge(a, b)
	case Euclidean:
		return o.euclideanMerge(a, b)
	default:
		panic("cluster: unknown distance")
	}
}

// clusterCost returns delta(c), the cluster's size under the configured
// cost function.
func (o *Online) clusterCost(c *clusterState) float64 {
	switch o.cfg.Distance {
	case Anime:
		prod := 1.0
		for i := range o.feats {
			prod *= o.featWidth(c, i)
		}
		return prod
	case Euclidean:
		// Centers carry no extent; use the tracked bounding box so
		// "size" remains meaningful for ranking ablations.
		fallthrough
	case Manhattan:
		sum := 0.0
		for i := range o.feats {
			sum += o.featWidth(c, i) - 1
		}
		return sum
	default:
		panic("cluster: unknown distance")
	}
}

// featWidth is the per-feature cost of a cluster: range width + 1 for
// ordinal features (so a point has width 1), set cardinality for
// nominal ones. With Normalize set, ordinal widths are scaled into
// (0, 1] so wide value spaces do not dominate.
func (o *Online) featWidth(c *clusterState, i int) float64 {
	if o.nominal[i] {
		return float64(c.setCard[i])
	}
	return (float64(c.max[i]-c.min[i]) + 1) * o.scale[i]
}

// --- Manhattan (Eq. 5) ---

func (o *Online) manhattanPoint(vals []uint32, c *clusterState) float64 {
	var d float64
	for i, v := range vals {
		if o.nominal[i] {
			if !c.contains(o, i, v) {
				d++
			}
			continue
		}
		switch {
		case v < c.min[i]:
			d += float64(c.min[i]-v) * o.scale[i]
		case v > c.max[i]:
			d += float64(v-c.max[i]) * o.scale[i]
		}
	}
	return d
}

func (o *Online) manhattanMerge(a, b *clusterState) float64 {
	// Cost increase = width(union) - width(a) - width(b) per ordinal
	// feature (negative when the ranges overlap); for nominal
	// features, |union| - |a| - |b| (always <= 0), computable exactly
	// in set mode.
	var d float64
	for i := range a.min {
		if o.nominal[i] {
			union := a.setCard[i]
			for v := range b.sets[i] {
				if _, ok := a.sets[i][v]; !ok {
					union++
				}
			}
			d += float64(union - a.setCard[i] - b.setCard[i])
			continue
		}
		lo, hi := a.min[i], a.max[i]
		if b.min[i] < lo {
			lo = b.min[i]
		}
		if b.max[i] > hi {
			hi = b.max[i]
		}
		d += (float64(hi-lo) - float64(a.max[i]-a.min[i]) - float64(b.max[i]-b.min[i])) * o.scale[i]
	}
	return d
}

// --- Anime (Eq. 1 / Def. 4.1) ---

func (o *Online) animePoint(vals []uint32, c *clusterState) float64 {
	before := 1.0
	after := 1.0
	for i, v := range vals {
		w := o.featWidth(c, i)
		before *= w
		if o.nominal[i] {
			if !c.contains(o, i, v) {
				w++
			}
			after *= w
			continue
		}
		switch {
		case v < c.min[i]:
			after *= (float64(c.max[i]-v) + 1) * o.scale[i]
		case v > c.max[i]:
			after *= (float64(v-c.min[i]) + 1) * o.scale[i]
		default:
			after *= w
		}
	}
	return after - before
}

func (o *Online) animeMerge(a, b *clusterState) float64 {
	costA, costB, union := 1.0, 1.0, 1.0
	for i := range a.min {
		costA *= o.featWidth(a, i)
		costB *= o.featWidth(b, i)
		if o.nominal[i] {
			card := a.setCard[i]
			for v := range b.sets[i] {
				if _, ok := a.sets[i][v]; !ok {
					card++
				}
			}
			union *= float64(card)
			continue
		}
		lo, hi := a.min[i], a.max[i]
		if b.min[i] < lo {
			lo = b.min[i]
		}
		if b.max[i] > hi {
			hi = b.max[i]
		}
		union *= (float64(hi-lo) + 1) * o.scale[i]
	}
	return union - costA - costB
}

// --- Euclidean (Eq. 2) ---

func (o *Online) euclideanPoint(vals []uint32, c *clusterState) float64 {
	var d float64
	for i, v := range vals {
		diff := (float64(v) - c.center[i]) * o.scale[i]
		d += diff * diff
	}
	return d
}

func (o *Online) euclideanMerge(a, b *clusterState) float64 {
	// Ward-style linkage: the increase in within-cluster squared error
	// caused by merging two centroids.
	var d float64
	for i := range a.center {
		diff := (a.center[i] - b.center[i]) * o.scale[i]
		d += diff * diff
	}
	na, nb := float64(a.count), float64(b.count)
	if na+nb == 0 {
		return d
	}
	return d * na * nb / (na + nb)
}
