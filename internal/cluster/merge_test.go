package cluster

import (
	"reflect"
	"testing"
)

func activeInfo(id int, lo, hi uint32, pkts, bytes uint64) Info {
	return Info{
		ID: id, Active: true,
		Ranges:             []Range{{Min: lo, Max: hi}},
		NominalCardinality: []int{0},
		Packets:            pkts, Bytes: bytes, TotalPackets: pkts,
		Size: float64(hi - lo),
	}
}

// TestMergeSnapshotsEmptyInputs: no snapshots at all, and snapshots
// with no active slots, both merge to an empty (non-nil) result — the
// fleet coordinator hits both before its first node reports traffic.
func TestMergeSnapshotsEmptyInputs(t *testing.T) {
	if got := MergeSnapshots(Manhattan); got == nil || len(got) != 0 {
		t.Fatalf("no snapshots: got %v, want empty non-nil", got)
	}
	if got := MergeSnapshots(Manhattan, nil, nil); len(got) != 0 {
		t.Fatalf("nil snapshots: got %v, want empty", got)
	}
	allIdle := [][]Info{
		{{ID: 0}, {ID: 1}},
		{{ID: 0}, {ID: 1}},
	}
	if got := MergeSnapshots(Manhattan, allIdle...); len(got) != 0 {
		t.Fatalf("all-inactive slots: got %v, want empty", got)
	}
}

// TestMergeSnapshotsSingleInput: merging one snapshot is a deep copy of
// its active slots with Size recomputed from the (unchanged) geometry.
func TestMergeSnapshotsSingleInput(t *testing.T) {
	in := []Info{activeInfo(0, 10, 20, 5, 500), {ID: 1}, activeInfo(2, 0, 7, 1, 100)}
	got := MergeSnapshots(Manhattan, in)
	want := []Info{activeInfo(0, 10, 20, 5, 500), activeInfo(2, 0, 7, 1, 100)}
	// MergeSnapshots keys by slot position, so the second active entry
	// reports its position as ID.
	want[1].ID = 2
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("single-input merge:\n got %+v\nwant %+v", got, want)
	}
	// Deep copy: mutating the result must not touch the input.
	got[0].Ranges[0].Min = 99
	if in[0].Ranges[0].Min != 10 {
		t.Fatal("merge result shares Range memory with input")
	}
}

// TestMergeSnapshotsMismatchedSlotCounts pins the documented decision:
// best-effort, not error. Slots beyond a short snapshot's length merge
// as if that snapshot's slot were inactive, and the result has the
// maximum slot count.
func TestMergeSnapshotsMismatchedSlotCounts(t *testing.T) {
	long := []Info{activeInfo(0, 0, 3, 1, 10), activeInfo(1, 8, 15, 2, 20), activeInfo(2, 100, 200, 4, 40)}
	short := []Info{activeInfo(0, 2, 5, 10, 100)}
	got := MergeSnapshots(Manhattan, long, short)
	if len(got) != 3 {
		t.Fatalf("merged %d slots, want 3 (max over inputs)", len(got))
	}
	// Slot 0 merges both: enclosing range, summed counters.
	if got[0].Ranges[0] != (Range{Min: 0, Max: 5}) {
		t.Fatalf("slot 0 range %+v, want union {0 5}", got[0].Ranges[0])
	}
	if got[0].Packets != 11 || got[0].Bytes != 110 {
		t.Fatalf("slot 0 counters %d/%d, want 11/110", got[0].Packets, got[0].Bytes)
	}
	// Slots 1 and 2 come from the long snapshot alone.
	if got[1].Packets != 2 || got[2].Packets != 4 {
		t.Fatalf("tail slots %d/%d, want 2/4", got[1].Packets, got[2].Packets)
	}
	// Argument order must not matter.
	if !reflect.DeepEqual(got, MergeSnapshots(Manhattan, short, long)) {
		t.Fatal("mismatched-length merge is order-sensitive")
	}
}

// TestMergeSnapshotsUnionSemantics: ranges enclose, cardinalities take
// the max (a lower bound on the union), counters sum, and Size is
// recomputed from the merged geometry per distance.
func TestMergeSnapshotsUnionSemantics(t *testing.T) {
	a := []Info{{
		ID: 0, Active: true,
		Ranges:             []Range{{Min: 10, Max: 20}, {}},
		NominalCardinality: []int{0, 3},
		Packets:            7, Bytes: 700, TotalPackets: 70, Benign: 5, Malicious: 2,
	}}
	b := []Info{{
		ID: 0, Active: true,
		Ranges:             []Range{{Min: 15, Max: 40}, {}},
		NominalCardinality: []int{0, 9},
		Packets:            3, Bytes: 300, TotalPackets: 30, Benign: 1, Malicious: 2,
	}}
	got := MergeSnapshots(Manhattan, a, b)
	if len(got) != 1 {
		t.Fatalf("merged %d slots, want 1", len(got))
	}
	m := got[0]
	if m.Ranges[0] != (Range{Min: 10, Max: 40}) {
		t.Fatalf("range %+v, want enclosing {10 40}", m.Ranges[0])
	}
	if m.NominalCardinality[1] != 9 {
		t.Fatalf("cardinality %d, want max 9", m.NominalCardinality[1])
	}
	if m.Packets != 10 || m.Bytes != 1000 || m.TotalPackets != 100 || m.Benign != 6 || m.Malicious != 4 {
		t.Fatalf("counter sums wrong: %+v", m)
	}
	// Manhattan size: (width-1) over the ordinal feature + (card-1)
	// over the nominal one = 30 + 8.
	if m.Size != 38 {
		t.Fatalf("Manhattan size %v, want 38", m.Size)
	}
	// Anime size: product of widths = 31 * 9.
	if s := MergeSnapshots(Anime, a, b)[0].Size; s != 279 {
		t.Fatalf("Anime size %v, want 279", s)
	}
}
