package cluster

import "fmt"

// MarshalInfos serializes a cluster snapshot — the []Info returned by
// Online.Snapshot, Dataplane.Snapshot or MergeSnapshots — into a
// deterministic little-endian byte stream. This is the per-Info wire
// form the fleet protocol ships between nodes and the coordinator:
// unlike Online.Marshal (which captures the clusterer's full learned
// state for restore), an Info snapshot is the *observable* view —
// geometry, cardinalities and window counters — which is all slot-wise
// merging needs, and it carries no configuration fingerprint so nodes
// with identical slot tiling but independent clusterers interoperate.
//
// Inactive slots are encoded too (one bool), so slot positions survive
// the trip and MergeSnapshots on the far side sees the same tiling the
// sender saw. Framing, versioning and checksums live one layer up in
// internal/fleet: an Info blob never travels alone.
func MarshalInfos(infos []Info) []byte {
	var e enc
	e.u32(uint32(len(infos)))
	for i := range infos {
		in := &infos[i]
		e.u32(uint32(in.ID))
		e.bool(in.Active)
		e.u32(uint32(len(in.Ranges)))
		for _, r := range in.Ranges {
			e.u32(r.Min)
			e.u32(r.Max)
		}
		e.u32(uint32(len(in.NominalCardinality)))
		for _, c := range in.NominalCardinality {
			e.u32(uint32(c))
		}
		e.u64(in.Packets)
		e.u64(in.Bytes)
		e.u64(in.TotalPackets)
		e.u64(in.Benign)
		e.u64(in.Malicious)
		e.f64(in.Size)
	}
	return e.b
}

// UnmarshalInfos decodes a MarshalInfos stream. The result is freshly
// allocated and shares no memory with data; a truncated stream or
// trailing bytes fail with an error and no partial result.
func UnmarshalInfos(data []byte) ([]Info, error) {
	d := dec{b: data}
	n := int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	// Each Info is at least 61 bytes (two empty slices); a hostile count
	// cannot force an allocation larger than the input it arrived in.
	if n > len(data)/61+1 {
		return nil, fmt.Errorf("cluster: info snapshot claims %d slots in %d bytes", n, len(data))
	}
	out := make([]Info, 0, n)
	for i := 0; i < n; i++ {
		var in Info
		in.ID = int(d.u32())
		in.Active = d.u8() != 0
		nr := int(d.u32())
		if d.err != nil {
			return nil, d.err
		}
		if nr > 0 {
			in.Ranges = make([]Range, nr)
			for f := range in.Ranges {
				in.Ranges[f].Min = d.u32()
				in.Ranges[f].Max = d.u32()
			}
		}
		nc := int(d.u32())
		if d.err != nil {
			return nil, d.err
		}
		if nc > 0 {
			in.NominalCardinality = make([]int, nc)
			for f := range in.NominalCardinality {
				in.NominalCardinality[f] = int(d.u32())
			}
		}
		in.Packets = d.u64()
		in.Bytes = d.u64()
		in.TotalPackets = d.u64()
		in.Benign = d.u64()
		in.Malicious = d.u64()
		in.Size = d.f64()
		if d.err != nil {
			return nil, d.err
		}
		out = append(out, in)
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("cluster: %d trailing bytes after info snapshot", len(d.b)-d.off)
	}
	return out, nil
}
