package cluster

import (
	"math/rand"
	"testing"

	"accturbo/internal/packet"
)

// TestObserveFeaturesMatchesObserve drives two identically configured
// clusterers with the same packet stream — one through Observe, one
// through ObserveFeatures on pre-extracted values — and requires
// bit-identical assignments, snapshots, and counters. The two entry
// points share one implementation, so this is a regression gate on
// that sharing, across every distance/search combination.
func TestObserveFeaturesMatchesObserve(t *testing.T) {
	fs := packet.DefaultSimulationFeatures()
	combos := []struct {
		dist   Distance
		search Search
	}{
		{Manhattan, Fast},
		{Manhattan, Exhaustive},
		{Anime, Fast},
		{Euclidean, Fast},
		{Euclidean, Exhaustive},
	}
	r := rand.New(rand.NewSource(7))
	pkts := make([]*packet.Packet, 2000)
	for i := range pkts {
		pkts[i] = &packet.Packet{
			SrcIP:    packet.V4(10, byte(r.Intn(4)), byte(r.Intn(8)), byte(r.Intn(256))),
			DstIP:    packet.V4(198, 18, byte(r.Intn(4)), byte(r.Intn(16))),
			Protocol: packet.ProtoUDP,
			SrcPort:  uint16(r.Intn(2048)), DstPort: uint16(53 + r.Intn(4)),
			TTL: uint8(32 + r.Intn(64)), Length: uint16(60 + r.Intn(1200)),
			Label: packet.Label(r.Intn(2)),
		}
	}
	for _, combo := range combos {
		cfg := DefaultConfig(8, fs)
		cfg.Distance = combo.dist
		cfg.Search = combo.search
		byPacket := NewOnline(cfg)
		byValues := NewOnline(cfg)
		vals := make([]uint32, len(fs))
		for i, p := range pkts {
			want := byPacket.Observe(p)
			fs.Extract(p, vals)
			got := byValues.ObserveFeatures(vals, uint64(p.Size()), p.Label == packet.Malicious)
			if got != want {
				t.Fatalf("%v/%v: packet %d assignment %+v via features, %+v via packet",
					combo.dist, combo.search, i, got, want)
			}
		}
		if byPacket.Observed != byValues.Observed {
			t.Fatalf("%v/%v: observed %d vs %d", combo.dist, combo.search, byValues.Observed, byPacket.Observed)
		}
		a, b := byPacket.Snapshot(), byValues.Snapshot()
		for i := range a {
			ia, ib := a[i], b[i]
			if ia.Packets != ib.Packets || ia.Bytes != ib.Bytes ||
				ia.Benign != ib.Benign || ia.Malicious != ib.Malicious ||
				ia.TotalPackets != ib.TotalPackets || ia.Size != ib.Size {
				t.Fatalf("%v/%v: cluster %d snapshot diverged: %+v vs %+v",
					combo.dist, combo.search, i, ib, ia)
			}
			for f := range ia.Ranges {
				if ia.Ranges[f] != ib.Ranges[f] {
					t.Fatalf("%v/%v: cluster %d range %d diverged", combo.dist, combo.search, i, f)
				}
			}
		}
	}
}

// TestObserveFeaturesWrongArity: a values slice that does not match the
// configured feature set is a caller bug and must fail loudly.
func TestObserveFeaturesWrongArity(t *testing.T) {
	o := NewOnline(DefaultConfig(4, twoFeatures()))
	defer func() {
		if recover() == nil {
			t.Fatal("short values slice did not panic")
		}
	}()
	o.ObserveFeatures([]uint32{1}, 100, false)
}

// TestObserveFeaturesZeroAlloc gates the fused entry point like the
// packet one: steady state allocates nothing.
func TestObserveFeaturesZeroAlloc(t *testing.T) {
	fs := packet.DefaultSimulationFeatures()
	o := NewOnline(DefaultConfig(8, fs))
	vals := make([]uint32, len(fs))
	p := mkPkt(64, 500, packet.Benign)
	fs.Extract(p, vals)
	o.ObserveFeatures(vals, 500, false)
	allocs := testing.AllocsPerRun(200, func() {
		vals[0] = (vals[0] + 1) % 200
		o.ObserveFeatures(vals, 500, false)
	})
	if allocs != 0 {
		t.Fatalf("ObserveFeatures allocates %v per op, want 0", allocs)
	}
}
