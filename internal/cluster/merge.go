package cluster

// MergeSnapshots folds per-pipeline cluster snapshots into one global
// view, slot by slot: the controller of a multi-pipe deployment (each
// pipe clustering its share of the traffic independently) ranks this
// merged view and deploys a single cluster→queue mapping back to every
// pipe.
//
// Slot i of the result covers the union of slot i across all snapshots
// that have seeded it: per-feature ranges take the enclosing interval,
// traffic counters sum, and the nominal cardinality takes the per-shard
// maximum (a lower bound on the true union — snapshots carry
// cardinalities, not value sets, exactly like the hardware's per-pipe
// registers). Size is recomputed from the merged widths under the given
// distance: sum of (width−1) contributions for the range-based metrics
// (Manhattan, and Euclidean's bounding-box size), product of widths for
// Anime. Distance normalization is not reapplied; sharded control loops
// rank raw sizes.
//
// Mismatched slot counts merge best-effort by design, not error: the
// result has max-over-snapshots slots, and a snapshot that is shorter
// than a slot index simply contributes nothing there (same as an
// inactive slot). The alternative — rejecting the merge — would let one
// mis-sized participant (a fleet node mid-rolling-reconfigure, a
// truncated snapshot) veto the global ranking for everyone; slot-wise
// union degrades gracefully instead, and the tail slots still rank
// correctly from the participants that have them. Callers that require
// strict alignment (the fleet coordinator does, since slot identity is
// the slice tiling) must validate lengths before merging.
//
// An empty call (no snapshots, or all slots inactive) returns an empty
// non-nil slice.
//
// The result is freshly allocated and shares no memory with the input
// snapshots.
func MergeSnapshots(d Distance, snaps ...[]Info) []Info {
	slots := 0
	for _, s := range snaps {
		if len(s) > slots {
			slots = len(s)
		}
	}
	out := make([]Info, 0, slots)
	for id := 0; id < slots; id++ {
		var m Info
		m.ID = id
		first := true
		for _, s := range snaps {
			if id >= len(s) || !s[id].Active {
				continue
			}
			in := s[id]
			if first {
				first = false
				m.Active = true
				m.Ranges = append([]Range(nil), in.Ranges...)
				m.NominalCardinality = append([]int(nil), in.NominalCardinality...)
			} else {
				for f, r := range in.Ranges {
					// Nominal positions hold zero Ranges on both sides,
					// so the union is a no-op there.
					if r.Min < m.Ranges[f].Min {
						m.Ranges[f].Min = r.Min
					}
					if r.Max > m.Ranges[f].Max {
						m.Ranges[f].Max = r.Max
					}
				}
				for f, card := range in.NominalCardinality {
					if card > m.NominalCardinality[f] {
						m.NominalCardinality[f] = card
					}
				}
			}
			m.Packets += in.Packets
			m.Bytes += in.Bytes
			m.TotalPackets += in.TotalPackets
			m.Benign += in.Benign
			m.Malicious += in.Malicious
		}
		if !m.Active {
			continue
		}
		m.Size = mergedSize(d, &m)
		out = append(out, m)
	}
	return out
}

// mergedSize recomputes Info.Size from merged ranges and cardinalities,
// mirroring Online.clusterCost over the union geometry.
func mergedSize(d Distance, m *Info) float64 {
	width := func(f int) float64 {
		if m.NominalCardinality[f] > 0 {
			return float64(m.NominalCardinality[f])
		}
		return float64(m.Ranges[f].Width()) + 1
	}
	if d == Anime {
		prod := 1.0
		for f := range m.Ranges {
			prod *= width(f)
		}
		return prod
	}
	sum := 0.0
	for f := range m.Ranges {
		sum += width(f) - 1
	}
	return sum
}
