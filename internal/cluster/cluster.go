// Package cluster implements ACC-Turbo's traffic-aggregate inference
// (§4 of the paper): online clustering of packets into a bounded number
// of aggregates.
//
// The deployable configuration — range-based cluster representation,
// Manhattan distance, fast (linear) search — matches what fits a Tofino
// pipeline and is the default. The package also implements every
// alternative the paper evaluates as a baseline (Fig. 10): exhaustive
// search, the Anime (product) distance, Euclidean center-based
// clustering, offline k-means, and the hybrid offline/online scheme.
//
// Clusters carry ground-truth label counters (benign/malicious packets)
// strictly for evaluation: purity and recall metrics read them, but no
// clustering or scheduling decision ever does.
package cluster

import (
	"fmt"

	"accturbo/internal/packet"
)

// Distance selects the distance/cost function (§4.2.3).
type Distance uint8

// Distance functions.
const (
	// Manhattan is the paper's deployable choice: the per-feature
	// distances from the packet to the cluster's range, summed.
	Manhattan Distance = iota
	// Anime is the product-form cost from Def. 4.1: the increase in
	// the product of per-feature range widths caused by absorbing the
	// packet. Exact but with an output space too wide for hardware.
	Anime
	// Euclidean is the squared distance to the cluster center; it
	// requires a center-based representation.
	Euclidean
)

// String names the distance function.
func (d Distance) String() string {
	switch d {
	case Manhattan:
		return "manhattan"
	case Anime:
		return "anime"
	case Euclidean:
		return "euclidean"
	default:
		return fmt.Sprintf("distance(%d)", uint8(d))
	}
}

// Search selects the clustering search strategy (§4.2.1).
type Search uint8

// Search strategies.
const (
	// Fast performs a linear scan: the packet joins its closest
	// cluster. Implementable at line rate.
	Fast Search = iota
	// Exhaustive additionally considers merging the two closest
	// clusters to free a slot for the packet. Quadratic; not
	// implementable on today's pipelines, kept as a quality baseline.
	Exhaustive
)

// String names the search strategy.
func (s Search) String() string {
	switch s {
	case Fast:
		return "fast"
	case Exhaustive:
		return "exhaustive"
	default:
		return fmt.Sprintf("search(%d)", uint8(s))
	}
}

// Config parameterizes an online clusterer.
type Config struct {
	// MaxClusters is |C|, the bound on simultaneously tracked
	// aggregates (hardware: 4; simulation default: 10).
	MaxClusters int
	// Features lists the clustering dimensions in order.
	Features packet.FeatureSet
	// Distance picks the distance function. Euclidean implies a
	// center-based representation; Manhattan and Anime are
	// range-based.
	Distance Distance
	// Search picks fast (linear) or exhaustive (quadratic) search.
	Search Search
	// LearningRate is the center-update step for Euclidean clustering
	// (ignored otherwise). Zero defaults to 0.3.
	LearningRate float64
	// UseBloom stores nominal-feature value sets in Bloom filters (as
	// the hardware does) instead of exact sets. Exact sets are the
	// simulation default.
	UseBloom bool
	// BloomBits and BloomHashes size the per-feature filters when
	// UseBloom is set. Zero defaults to 4096 bits and 3 hashes.
	BloomBits   uint64
	BloomHashes int
	// Normalize scales every per-feature distance by the feature's
	// value-space size, so a 16-bit port dimension cannot dominate
	// 8-bit byte dimensions. The paper's hardware cannot afford the
	// extra arithmetic (raw distances are the deployable default);
	// this knob exists for the ablation study.
	Normalize bool
	// SliceInit pre-creates all MaxClusters clusters as even slices of
	// each ordinal feature's value space (the initialization the
	// hardware prototype deploys), instead of seeding clusters from
	// the first arriving packets. Slice initialization is
	// order-independent, which matters when an attack dominates the
	// packet mix at startup. Reseed() restores the slices.
	SliceInit bool
}

// Validate checks the configuration, returning a descriptive error.
func (c *Config) Validate() error {
	if c.MaxClusters < 1 {
		return fmt.Errorf("cluster: MaxClusters %d < 1", c.MaxClusters)
	}
	if len(c.Features) == 0 {
		return fmt.Errorf("cluster: no features configured")
	}
	if c.Distance > Euclidean {
		return fmt.Errorf("cluster: unknown distance %d", c.Distance)
	}
	if c.Search > Exhaustive {
		return fmt.Errorf("cluster: unknown search %d", c.Search)
	}
	if c.LearningRate < 0 || c.LearningRate > 1 {
		return fmt.Errorf("cluster: learning rate %v out of [0,1]", c.LearningRate)
	}
	if c.Search == Exhaustive && c.UseBloom {
		return fmt.Errorf("cluster: exhaustive search requires exact nominal sets, not Bloom filters")
	}
	return nil
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.LearningRate == 0 {
		out.LearningRate = 0.3
	}
	if out.BloomBits == 0 {
		out.BloomBits = 4096
	}
	if out.BloomHashes == 0 {
		out.BloomHashes = 3
	}
	return out
}

// DefaultConfig is the paper's deployable configuration over the given
// features: Manhattan distance, fast search, range representation.
func DefaultConfig(maxClusters int, features packet.FeatureSet) Config {
	return Config{
		MaxClusters: maxClusters,
		Features:    features,
		Distance:    Manhattan,
		Search:      Fast,
	}
}

// Assignment is the result of observing one packet.
type Assignment struct {
	// Cluster is the index (slot) of the cluster the packet joined,
	// which is what the scheduler's queue mapping keys on.
	Cluster int
	// UID identifies the cluster *generation*: it changes when a slot
	// is recycled (exhaustive-search merges, reseeding), so evaluation
	// code can score assignments without mixing epochs.
	UID uint64
	// Distance is the packet's distance to that cluster before the
	// ranges were extended to absorb it (0 when already covered).
	Distance float64
	// Created reports that the packet seeded a brand-new cluster.
	Created bool
}

// Range is a closed interval of ordinal feature values.
type Range struct {
	Min, Max uint32
}

// Width returns max-min, the range's cost contribution.
func (r Range) Width() uint32 { return r.Max - r.Min }

// Contains reports whether v lies in the range.
func (r Range) Contains(v uint32) bool { return v >= r.Min && v <= r.Max }

// Info is an interpretable snapshot of one cluster: its per-feature
// ranges or value sets plus traffic statistics. This is the operator
// view the paper highlights in §10 ("an operator can access the
// complete information of every action performed in real-time").
type Info struct {
	// ID is the cluster index.
	ID int
	// Active reports whether the cluster has been seeded.
	Active bool
	// Ranges holds, for each ordinal feature (by position in
	// Config.Features), the covered interval. Nominal positions hold a
	// zero Range.
	Ranges []Range
	// NominalCardinality holds, for each nominal feature position,
	// the number of distinct values admitted (0 for ordinal
	// positions; approximate when Bloom filters are in use).
	NominalCardinality []int
	// Packets and Bytes count traffic mapped to this cluster since
	// the last ResetStats (the controller's polling window).
	Packets, Bytes uint64
	// TotalPackets counts packets since the cluster was seeded.
	TotalPackets uint64
	// Benign and Malicious are ground-truth label counts over the
	// polling window — evaluation only.
	Benign, Malicious uint64
	// Size is the cluster's cost delta(c): the sum (Manhattan/
	// Euclidean) or product (Anime) of per-feature widths. Smaller
	// size means higher packet similarity.
	Size float64
}
