package cluster

import (
	"reflect"
	"testing"
)

func sampleInfos() []Info {
	return []Info{
		{
			ID: 0, Active: true,
			Ranges:             []Range{{Min: 0, Max: 63}, {Min: 0, Max: 65535}, {Min: 0, Max: 0}},
			NominalCardinality: []int{0, 0, 7},
			Packets:            123, Bytes: 45678, TotalPackets: 999,
			Benign: 100, Malicious: 23, Size: 65599,
		},
		{ID: 1, Active: false, Ranges: []Range{{}, {}, {}}, NominalCardinality: []int{0, 0, 0}},
		{
			ID: 3, Active: true,
			Ranges:             []Range{{Min: 192, Max: 255}, {Min: 7000, Max: 7003}, {Min: 0, Max: 0}},
			NominalCardinality: []int{0, 0, 1},
			Packets:            1 << 40, Bytes: 1 << 50, TotalPackets: 1 << 41,
			Benign: 0, Malicious: 1 << 40, Size: 66.5,
		},
	}
}

// TestInfoWireRoundTrip pins the fleet wire form: marshal → unmarshal
// must reproduce the snapshot exactly (including inactive slots and
// non-contiguous IDs), and marshal must be deterministic.
func TestInfoWireRoundTrip(t *testing.T) {
	infos := sampleInfos()
	blob := MarshalInfos(infos)
	if string(blob) != string(MarshalInfos(infos)) {
		t.Fatal("MarshalInfos is not deterministic")
	}
	got, err := UnmarshalInfos(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, infos) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, infos)
	}
}

// TestInfoWireRoundTripEmpty: an empty snapshot (a node with no traffic
// yet) is a legal 4-byte message.
func TestInfoWireRoundTripEmpty(t *testing.T) {
	blob := MarshalInfos(nil)
	got, err := UnmarshalInfos(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d infos from empty snapshot", len(got))
	}
}

// TestInfoWireRejectsCorruption: truncation at every byte boundary,
// trailing bytes, and hostile slot counts all fail without a partial
// result.
func TestInfoWireRejectsCorruption(t *testing.T) {
	blob := MarshalInfos(sampleInfos())
	for cut := 0; cut < len(blob); cut++ {
		if _, err := UnmarshalInfos(blob[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		}
	}
	if _, err := UnmarshalInfos(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("trailing byte not rejected")
	}
	// A count far beyond what the payload can hold must fail fast, not
	// allocate.
	hostile := []byte{0xff, 0xff, 0xff, 0x7f}
	if _, err := UnmarshalInfos(hostile); err == nil {
		t.Fatal("hostile count not rejected")
	}
}

// TestInfoWireMergesLikeOriginal: the decoded snapshot must be
// indistinguishable from the original to MergeSnapshots — the exact
// path the fleet coordinator runs.
func TestInfoWireMergesLikeOriginal(t *testing.T) {
	a := sampleInfos()
	b := []Info{{
		ID: 3, Active: true,
		Ranges:             []Range{{Min: 200, Max: 210}, {Min: 7000, Max: 7000}, {Min: 0, Max: 0}},
		NominalCardinality: []int{0, 0, 2},
		Packets:            5, Bytes: 5000, TotalPackets: 5, Malicious: 5, Size: 11,
	}}
	direct := MergeSnapshots(Manhattan, a, b)
	da, err := UnmarshalInfos(MarshalInfos(a))
	if err != nil {
		t.Fatal(err)
	}
	db, err := UnmarshalInfos(MarshalInfos(b))
	if err != nil {
		t.Fatal(err)
	}
	wired := MergeSnapshots(Manhattan, da, db)
	if !reflect.DeepEqual(direct, wired) {
		t.Fatalf("merge over the wire diverged:\n got %+v\nwant %+v", wired, direct)
	}
}
