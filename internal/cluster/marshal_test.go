package cluster

import (
	"bytes"
	"reflect"
	"testing"

	"accturbo/internal/packet"
)

// TestMarshalRoundTrip drives a clusterer through a trace that grows,
// merges and spills clusters, snapshots it, restores into a fresh
// instance, and requires (a) re-marshaling reproduces the exact bytes,
// (b) the interpretable snapshots match, and (c) both instances stay
// bit-identical on every subsequent observation — the restored process
// must behave as if it had seen the whole original trace.
func TestMarshalRoundTrip(t *testing.T) {
	variants := []struct {
		name   string
		mutate func(*Config)
	}{
		{"default", func(*Config) {}},
		{"normalize", func(c *Config) { c.Normalize = true }},
		{"sliceinit", func(c *Config) { c.SliceInit = true }},
		{"bloom", func(c *Config) { c.UseBloom = true }},
	}
	warm := equivTrace(3000, 11)
	tail := equivTrace(1000, 13)
	for _, base := range benchCombos() {
		for _, v := range variants {
			cfg := base
			v.mutate(&cfg)
			if cfg.Validate() != nil {
				continue // e.g. exhaustive + bloom
			}
			t.Run(comboName(cfg)+"/"+v.name, func(t *testing.T) {
				orig := NewOnline(cfg)
				for _, p := range warm {
					orig.Observe(p)
				}
				blob := orig.Marshal()

				restored := NewOnline(cfg)
				if err := restored.Unmarshal(blob); err != nil {
					t.Fatalf("Unmarshal: %v", err)
				}
				if got := restored.Marshal(); !bytes.Equal(got, blob) {
					t.Fatalf("re-marshal differs: %d vs %d bytes", len(got), len(blob))
				}
				if !reflect.DeepEqual(restored.Snapshot(), orig.Snapshot()) {
					t.Fatal("snapshots diverge after restore")
				}
				if restored.Observed != orig.Observed {
					t.Fatalf("Observed = %d, want %d", restored.Observed, orig.Observed)
				}

				for i, p := range tail {
					oa, ra := orig.Observe(p), restored.Observe(p)
					if oa != ra {
						t.Fatalf("post-restore packet %d: orig=%+v restored=%+v", i, oa, ra)
					}
				}
				if !bytes.Equal(orig.Marshal(), restored.Marshal()) {
					t.Fatal("states diverge after identical post-restore traffic")
				}
			})
		}
	}
}

// TestMarshalSpilledSets forces a nominal set past the small→bitmap
// spill threshold and checks the spill survives the round trip: the
// restored set must admit exactly the same values and re-marshal to the
// same bytes.
func TestMarshalSpilledSets(t *testing.T) {
	cfg := DefaultConfig(2, packet.DefaultSimulationFeatures())
	o := NewOnline(cfg)
	for i := 0; i < 3*smallSetMax; i++ {
		p := mkPkt(64, 500, packet.Benign)
		p.SrcPort = uint16(1000 + i*7)
		o.Observe(p)
	}
	blob := o.Marshal()
	r := NewOnline(cfg)
	if err := r.Unmarshal(blob); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !bytes.Equal(r.Marshal(), blob) {
		t.Fatal("spilled-set re-marshal differs")
	}
	if !reflect.DeepEqual(r.Snapshot(), o.Snapshot()) {
		t.Fatal("spilled-set snapshots diverge")
	}
}

// TestUnmarshalRejects covers the refusal paths: configuration
// fingerprint mismatch, truncation, and trailing garbage, none of which
// may disturb the receiver's existing state.
func TestUnmarshalRejects(t *testing.T) {
	cfg := DefaultConfig(4, packet.DefaultSimulationFeatures())
	o := NewOnline(cfg)
	for _, p := range equivTrace(200, 17) {
		o.Observe(p)
	}
	blob := o.Marshal()

	fresh := func() *Online { return NewOnline(cfg) }

	t.Run("fingerprint", func(t *testing.T) {
		other := NewOnline(DefaultConfig(8, packet.DefaultSimulationFeatures()))
		if err := other.Unmarshal(blob); err == nil {
			t.Fatal("accepted a snapshot from a different configuration")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		r := fresh()
		before := r.Marshal()
		if err := r.Unmarshal(blob[:len(blob)-3]); err == nil {
			t.Fatal("accepted a truncated snapshot")
		}
		if !bytes.Equal(r.Marshal(), before) {
			t.Fatal("failed restore mutated the receiver")
		}
	})
	t.Run("trailing", func(t *testing.T) {
		r := fresh()
		if err := r.Unmarshal(append(append([]byte{}, blob...), 0)); err == nil {
			t.Fatal("accepted trailing bytes")
		}
	})
}
