package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"accturbo/internal/cluster"
	"accturbo/internal/eventsim"
)

// Snapshot container format. The payload is framed by a magic string, a
// format version, an explicit length, and a CRC-32 (IEEE) trailer, so a
// restore can reject truncation, bit rot, and version skew before
// touching any live state:
//
//	"ACCSNAP1" | version u16 | payloadLen u64 | payload | crc32 u32
//
// All integers are little-endian. The payload captures everything a
// fresh process needs to resume defending without a re-convergence
// window: the live runtime config (not its generation — that counts
// Reconfigure calls in one process's lifetime), the deployed queue map,
// every shard's learned clusterer state, the last deployed decision,
// fail-open status, and the lifetime telemetry counters. Save → restore
// → save is byte-identical, which is what the CI determinism gate
// checks.
const (
	snapMagic   = "ACCSNAP1"
	snapVersion = 1
)

// SaveState serializes the full defense state of the dataplane/control
// plane pair into w. It is safe to call on a live concurrent pipeline:
// shard clusterers are locked one at a time while marshaled.
func SaveState(w io.Writer, dp *Dataplane, cp *ControlPlane) error {
	var e enc

	// Structural fingerprint: a snapshot only restores into a pipeline
	// with identical shape. Feature-set and clustering details are
	// checked per shard by cluster.Unmarshal's own fingerprint.
	e.u32(uint32(len(dp.shards)))
	e.u32(uint32(dp.cfg.NumQueues))
	e.u32(uint32(dp.cfg.Clustering.MaxClusters))

	rt := *cp.rt.Load()
	e.u8(uint8(rt.Ranking))
	e.i64(int64(rt.PollInterval))
	e.i64(int64(rt.DeployDelay))
	e.i64(int64(rt.ReseedInterval))
	e.i64(int64(rt.FailOpenAfter))
	e.i64(int64(rt.WatchdogInterval))

	qm := dp.QueueMap()
	e.u32(uint32(len(qm)))
	for _, q := range qm {
		e.u32(uint32(q))
	}

	for _, s := range dp.shards {
		if dp.concurrent {
			s.mu.Lock()
		}
		blob := s.clusterer.Marshal()
		if dp.concurrent {
			s.mu.Unlock()
		}
		e.u32(uint32(len(blob)))
		e.b = append(e.b, blob...)
	}

	encodeDecision(&e, cp.lastDec.Load())

	e.bool(cp.failOpen.Load())
	e.u32(cp.consecStale.Load())

	e.u64(cp.deployments.Value())
	e.u64(cp.panicsRecovered.Value())
	e.u64(cp.watchdogTrips.Value())
	e.u64(cp.failOpens.Value())

	for _, vec := range [][]uint64{dp.assigned.Values(), dp.routed.Values()} {
		e.u32(uint32(len(vec)))
		for _, v := range vec {
			e.u64(v)
		}
	}

	var hdr [18]byte
	copy(hdr[:8], snapMagic)
	binary.LittleEndian.PutUint16(hdr[8:10], snapVersion)
	binary.LittleEndian.PutUint64(hdr[10:18], uint64(len(e.b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(e.b); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(e.b))
	_, err := w.Write(crc[:])
	return err
}

// RestoreState loads a SaveState snapshot into a freshly constructed
// pipeline: the dataplane must not have observed any packet and the
// control plane must not have deployed anything, so a restore can never
// silently merge two histories. The runtime config travels through the
// normal Reconfigure path (validated, tickers rescheduled under a new
// generation); the restored decision becomes LastDecision and its queue
// map is live immediately, so the first control-loop tick ranks
// already-learned clusters instead of re-converging.
func RestoreState(r io.Reader, dp *Dataplane, cp *ControlPlane) error {
	if dp.Observed() != 0 || cp.deployments.Value() != 0 {
		return fmt.Errorf("core: RestoreState needs a fresh pipeline (observed=%d deployments=%d)",
			dp.Observed(), cp.deployments.Value())
	}

	var hdr [18]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("core: snapshot header: %w", err)
	}
	if string(hdr[:8]) != snapMagic {
		return fmt.Errorf("core: not a snapshot (bad magic %q)", hdr[:8])
	}
	if v := binary.LittleEndian.Uint16(hdr[8:10]); v != snapVersion {
		return fmt.Errorf("core: snapshot version %d, this build reads %d", v, snapVersion)
	}
	plen := binary.LittleEndian.Uint64(hdr[10:18])
	if plen > 1<<31 {
		return fmt.Errorf("core: implausible snapshot payload length %d", plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return fmt.Errorf("core: snapshot payload: %w", err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return fmt.Errorf("core: snapshot checksum: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(crc[:]); got != want {
		return fmt.Errorf("core: snapshot checksum mismatch (corrupt): %08x != %08x", got, want)
	}

	d := dec{b: payload}
	if got, want := int(d.u32()), len(dp.shards); got != want {
		return fmt.Errorf("core: snapshot has %d shards, pipeline has %d", got, want)
	}
	if got, want := int(d.u32()), dp.cfg.NumQueues; got != want {
		return fmt.Errorf("core: snapshot has %d queues, pipeline has %d", got, want)
	}
	if got, want := int(d.u32()), dp.cfg.Clustering.MaxClusters; got != want {
		return fmt.Errorf("core: snapshot has %d cluster slots, pipeline has %d", got, want)
	}

	rt := RuntimeConfig{
		Ranking:          Ranking(d.u8()),
		PollInterval:     eventsim.Time(d.i64()),
		DeployDelay:      eventsim.Time(d.i64()),
		ReseedInterval:   eventsim.Time(d.i64()),
		FailOpenAfter:    eventsim.Time(d.i64()),
		WatchdogInterval: eventsim.Time(d.i64()),
	}

	qm := make([]int, d.u32())
	for i := range qm {
		qm[i] = int(d.u32())
	}

	blobs := make([][]byte, len(dp.shards))
	for i := range blobs {
		blobs[i] = d.bytes(int(d.u32()))
	}

	dec_, err := decodeDecision(&d)
	if err != nil {
		return err
	}

	failOpen := d.bool()
	consecStale := d.u32()

	deployments := d.u64()
	panics := d.u64()
	trips := d.u64()
	engagements := d.u64()

	assigned := make([]uint64, d.u32())
	for i := range assigned {
		assigned[i] = d.u64()
	}
	routed := make([]uint64, d.u32())
	for i := range routed {
		routed[i] = d.u64()
	}
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("core: %d trailing bytes after snapshot payload", len(d.b)-d.off)
	}
	if len(assigned) != dp.assigned.Len() || len(routed) != dp.routed.Len() {
		return fmt.Errorf("core: snapshot counter widths %d/%d do not match pipeline %d/%d",
			len(assigned), len(routed), dp.assigned.Len(), dp.routed.Len())
	}

	// Everything decoded and validated — commit. The runtime config goes
	// through Reconfigure so it is validated and the tickers land on the
	// restored cadence under a fresh generation.
	if _, err := cp.Reconfigure(rt.patch()); err != nil {
		return fmt.Errorf("core: snapshot runtime config: %w", err)
	}
	for i, s := range dp.shards {
		if dp.concurrent {
			s.mu.Lock()
		}
		err := s.clusterer.Unmarshal(blobs[i])
		if dp.concurrent {
			s.mu.Unlock()
		}
		if err != nil {
			return fmt.Errorf("core: shard %d: %w", i, err)
		}
	}
	dp.Deploy(qm)
	if dec_ != nil {
		cp.lastDec.Store(dec_)
	}
	cp.failOpen.Store(failOpen)
	cp.consecStale.Store(consecStale)
	// The restored decision counts as fresh from this process's start:
	// staleness is measured against local clock time, which has no
	// relation to the saving process's timeline.
	cp.lastDeployAt.Store(int64(cp.rawClock.Now()))
	cp.deployments.Add(deployments)
	cp.panicsRecovered.Add(panics)
	cp.watchdogTrips.Add(trips)
	cp.failOpens.Add(engagements)
	for i, v := range assigned {
		if v != 0 {
			dp.assigned.Add(0, i, v)
		}
	}
	for i, v := range routed {
		if v != 0 {
			dp.routed.Add(0, i, v)
		}
	}
	return nil
}

// patch converts a full RuntimeConfig into the all-fields patch that
// replays it through Reconfigure.
func (r RuntimeConfig) patch() RuntimePatch {
	return RuntimePatch{
		Ranking:          &r.Ranking,
		PollInterval:     &r.PollInterval,
		DeployDelay:      &r.DeployDelay,
		ReseedInterval:   &r.ReseedInterval,
		FailOpenAfter:    &r.FailOpenAfter,
		WatchdogInterval: &r.WatchdogInterval,
	}
}

// encodeDecision appends the optional last deployed decision.
func encodeDecision(e *enc, dec *Decision) {
	e.bool(dec != nil)
	if dec == nil {
		return
	}
	e.i64(int64(dec.At))
	e.i64(int64(dec.DeployedAt))
	e.u32(uint32(len(dec.Clusters)))
	for _, info := range dec.Clusters {
		e.u32(uint32(info.ID))
		e.bool(info.Active)
		e.u32(uint32(len(info.Ranges)))
		for _, rg := range info.Ranges {
			e.u32(rg.Min)
			e.u32(rg.Max)
		}
		e.u32(uint32(len(info.NominalCardinality)))
		for _, n := range info.NominalCardinality {
			e.u32(uint32(n))
		}
		e.u64(info.Packets)
		e.u64(info.Bytes)
		e.u64(info.TotalPackets)
		e.u64(info.Benign)
		e.u64(info.Malicious)
		e.f64(info.Size)
	}
	e.u32(uint32(len(dec.Rank)))
	for _, r := range dec.Rank {
		e.f64(r)
	}
	e.u32(uint32(len(dec.QueueOf)))
	for _, q := range dec.QueueOf {
		e.u32(uint32(q))
	}
}

// decodeDecision reads what encodeDecision wrote.
func decodeDecision(d *dec) (*Decision, error) {
	if !d.bool() {
		return nil, d.err
	}
	out := &Decision{
		At:         eventsim.Time(d.i64()),
		DeployedAt: eventsim.Time(d.i64()),
	}
	out.Clusters = make([]cluster.Info, d.u32())
	for i := range out.Clusters {
		info := cluster.Info{
			ID:     int(d.u32()),
			Active: d.bool(),
		}
		info.Ranges = make([]cluster.Range, d.u32())
		for j := range info.Ranges {
			info.Ranges[j].Min = d.u32()
			info.Ranges[j].Max = d.u32()
		}
		info.NominalCardinality = make([]int, d.u32())
		for j := range info.NominalCardinality {
			info.NominalCardinality[j] = int(d.u32())
		}
		info.Packets = d.u64()
		info.Bytes = d.u64()
		info.TotalPackets = d.u64()
		info.Benign = d.u64()
		info.Malicious = d.u64()
		info.Size = d.f64()
		if d.err != nil {
			return nil, d.err
		}
		out.Clusters[i] = info
	}
	out.Rank = make([]float64, d.u32())
	for i := range out.Rank {
		out.Rank[i] = d.f64()
	}
	out.QueueOf = make([]int, d.u32())
	for i := range out.QueueOf {
		out.QueueOf[i] = int(d.u32())
	}
	return out, d.err
}

// enc is a minimal append-only little-endian encoder (the snapshot
// counterpart of cluster's private codec).
type enc struct{ b []byte }

func (e *enc) u8(v uint8) { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) {
	e.b = binary.LittleEndian.AppendUint32(e.b, v)
}
func (e *enc) u64(v uint64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, v)
}
func (e *enc) i64(v int64)   { e.u64(uint64(v)) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

// dec is the matching decoder; the first short read latches err.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("core: snapshot truncated at byte %d", d.off)
	}
}

func (d *dec) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) bool() bool { return d.u8() != 0 }

func (d *dec) bytes(n int) []byte {
	if d.err != nil || n < 0 || d.off+n > len(d.b) {
		d.fail()
		return nil
	}
	v := d.b[d.off : d.off+n : d.off+n]
	d.off += n
	return v
}
