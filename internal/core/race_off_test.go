//go:build !race

package core

// raceEnabled reports whether the race detector is active. The
// zero-alloc gates that rely on sync.Pool hits skip under -race
// because the detector deliberately randomizes pool retention.
const raceEnabled = false
