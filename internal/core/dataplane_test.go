package core

import (
	"testing"
	"time"

	"accturbo/internal/cluster"
	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
)

func mkPkt(i int) *packet.Packet {
	return &packet.Packet{
		SrcIP:    packet.V4(byte(i*37), byte(i*11), byte(i*53), byte(i*91)),
		DstIP:    packet.V4(198, 18, byte(i*7), byte(i*13)),
		Protocol: packet.ProtoUDP, SrcPort: uint16(1024 + i*71), DstPort: 443,
		TTL: uint8(40 + i%100), Length: uint16(100 + (i*131)%1400),
	}
}

func TestShardOfStableAndSpread(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 4
	dp := NewDataplane(cfg, false)
	seen := make([]int, 4)
	for i := 0; i < 256; i++ {
		p := mkPkt(i)
		s := dp.ShardOf(p)
		if s < 0 || s >= 4 {
			t.Fatalf("shard %d out of range", s)
		}
		if again := dp.ShardOf(p); again != s {
			t.Fatalf("flow hashed to %d then %d", s, again)
		}
		seen[s]++
	}
	for s, n := range seen {
		if n == 0 {
			t.Fatalf("shard %d received no flows out of 256", s)
		}
	}
	// Same flow, different packet sizes: must still land on one shard.
	a, b := mkPkt(7), mkPkt(7)
	b.Length = 1499
	b.TTL = 1
	if dp.ShardOf(a) != dp.ShardOf(b) {
		t.Fatal("flow affinity broken by non-5-tuple fields")
	}
}

func TestShardedAssignConservation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 4
	dp := NewDataplane(cfg, false)
	const n = 5000
	for i := 0; i < n; i++ {
		a := dp.Assign(mkPkt(i))
		if a.Cluster < 0 || a.Cluster >= cfg.Clustering.MaxClusters {
			t.Fatalf("assignment out of range: %+v", a)
		}
	}
	if got := dp.Observed(); got != n {
		t.Fatalf("observed %d packets, fed %d", got, n)
	}
	var snapTotal uint64
	for _, info := range dp.Snapshot() {
		snapTotal += info.TotalPackets
	}
	if snapTotal != n {
		t.Fatalf("merged snapshot accounts %d packets, fed %d", snapTotal, n)
	}
}

// TestShardedDeterministic runs the same packet sequence twice through
// sharded pipelines and requires identical verdicts: the demux is a
// pure flow hash and each shard is deterministic, so single-threaded
// sharded operation is reproducible.
func TestShardedDeterministic(t *testing.T) {
	run := func() []int {
		cfg := DefaultConfig()
		cfg.Shards = 4
		eng := eventsim.New()
		turbo := New(eng, cfg)
		out := make([]int, 0, 2000)
		for i := 0; i < 2000; i++ {
			eng.RunUntil(eventsim.Time(i) * eventsim.Millisecond / 4)
			a := turbo.Dataplane().Assign(mkPkt(i % 300))
			out = append(out, a.Cluster, turbo.QueueOf(a.Cluster))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestShardedControlLoopMergesAndDeploys drives a sharded pipeline
// under the eventsim clock and checks the control plane ranks the
// merged view and deploys a mapping that deprioritizes the flood.
func TestShardedControlLoopMergesAndDeploys(t *testing.T) {
	cfg := fourClusterConfig()
	cfg.Shards = 2
	eng := eventsim.New()
	turbo := New(eng, cfg)
	flood := &packet.Packet{
		SrcIP: packet.V4(99, 9, 9, 9), DstIP: packet.V4(10, 0, 99, 1),
		Protocol: packet.ProtoUDP, SrcPort: 123, DstPort: 80, Length: 1000,
		Label: packet.Malicious,
	}
	for ms := 0; ms < 1000; ms++ {
		eng.RunUntil(eventsim.Time(ms) * eventsim.Millisecond)
		turbo.Dataplane().Assign(mkPkt(ms % 50))
		for i := 0; i < 9; i++ {
			turbo.Dataplane().Assign(flood)
		}
	}
	eng.RunUntil(eventsim.Time(1100) * eventsim.Millisecond)
	if turbo.Deployments == 0 {
		t.Fatal("sharded control loop never deployed")
	}
	dec := turbo.LastDecision
	if dec == nil {
		t.Fatal("no decision")
	}
	// The merged snapshot must account traffic from both shards.
	var total uint64
	for _, info := range dec.Clusters {
		total += info.TotalPackets
	}
	if total == 0 {
		t.Fatal("merged snapshot empty")
	}
	floodA := turbo.Dataplane().Assign(flood)
	benignA := turbo.Dataplane().Assign(mkPkt(3))
	if turbo.QueueOf(floodA.Cluster) <= turbo.QueueOf(benignA.Cluster) {
		t.Fatalf("flood queue %d not below benign queue %d",
			turbo.QueueOf(floodA.Cluster), turbo.QueueOf(benignA.Cluster))
	}
}

func TestWallClock(t *testing.T) {
	c := NewWallClock()
	if now := c.Now(); now < 0 {
		t.Fatalf("negative wall time %v", now)
	}
	fired := make(chan eventsim.Time, 1)
	c.After(eventsim.Millisecond, func(now eventsim.Time) { fired <- now })
	select {
	case now := <-fired:
		if now <= 0 {
			t.Fatalf("After fired at %v", now)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("After never fired")
	}

	ticks := make(chan struct{}, 16)
	stop := c.Every(eventsim.Millisecond, func(eventsim.Time) {
		select {
		case ticks <- struct{}{}:
		default:
		}
	})
	select {
	case <-ticks:
	case <-time.After(2 * time.Second):
		t.Fatal("Every never ticked")
	}
	stop()
	stop() // idempotent

	// A cancelled one-shot must not fire.
	cancel := c.After(50*eventsim.Millisecond, func(eventsim.Time) {
		t.Error("cancelled callback fired")
	})
	cancel()
	c.Close()
	time.Sleep(80 * time.Millisecond)
}

func TestControlPlaneOnWallClock(t *testing.T) {
	// The same poll→rank→map→deploy loop must run on the real-time
	// driver: feed a flood and a trickle, step via the wall clock, and
	// expect a deployment that separates them.
	cfg := fourClusterConfig()
	cfg.PollInterval = 5 * eventsim.Millisecond
	cfg.DeployDelay = eventsim.Millisecond
	cfg = cfg.withDefaults()
	dp := NewDataplane(cfg, true)
	clock := NewWallClock()
	defer clock.Close()
	cp := NewControlPlane(dp, clock, cfg)
	cp.Start()
	defer cp.Stop()

	flood := &packet.Packet{
		SrcIP: packet.V4(99, 9, 9, 9), DstIP: packet.V4(10, 0, 99, 1),
		Protocol: packet.ProtoUDP, SrcPort: 123, DstPort: 80, Length: 1000,
	}
	// Feed until a deployment lands that demotes the flood out of the
	// top queue (the very first deployment may predate the benign
	// cluster and legitimately map the lone flood cluster to queue 0).
	deadline := time.Now().Add(5 * time.Second)
	demoted := false
	for time.Now().Before(deadline) {
		var fa cluster.Assignment
		for i := 0; i < 9; i++ {
			fa = dp.Assign(flood)
		}
		dp.Assign(mkPkt(1))
		if cp.Deployments() > 0 && dp.QueueFor(fa.Cluster) > 0 {
			demoted = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if cp.Deployments() == 0 {
		t.Fatal("control plane never deployed on the wall clock")
	}
	if cp.LastDecision() == nil {
		t.Fatal("no decision recorded")
	}
	if !demoted {
		t.Fatal("flood never demoted out of the highest-priority queue")
	}
}

func TestMergeSnapshots(t *testing.T) {
	mk := func(seed byte) []cluster.Info {
		cfg := cluster.DefaultConfig(4, packet.FeatureSet{
			packet.FDstIPByte2, packet.FDstIPByte3, packet.FSrcPort, packet.FDstPort,
		})
		o := cluster.NewOnline(cfg)
		for i := 0; i < 100; i++ {
			p := mkPkt(i)
			p.DstIP = packet.V4(10, 0, seed, byte(i))
			o.Observe(p)
		}
		return o.Snapshot()
	}
	a, b := mk(1), mk(200)
	merged := cluster.MergeSnapshots(cluster.Manhattan, a, b)
	if len(merged) == 0 {
		t.Fatal("empty merge")
	}
	var wantPkts, gotPkts uint64
	for _, s := range [][]cluster.Info{a, b} {
		for _, info := range s {
			wantPkts += info.TotalPackets
		}
	}
	for _, info := range merged {
		gotPkts += info.TotalPackets
		src := a[info.ID]
		other := b[info.ID]
		for f, r := range info.Ranges {
			if r.Min > src.Ranges[f].Min || r.Min > other.Ranges[f].Min ||
				r.Max < src.Ranges[f].Max || r.Max < other.Ranges[f].Max {
				t.Fatalf("slot %d feature %d: merged range %+v does not enclose inputs", info.ID, f, r)
			}
		}
	}
	if gotPkts != wantPkts {
		t.Fatalf("merged packets %d, want %d", gotPkts, wantPkts)
	}
	// Single snapshot merges to itself (counters and ranges).
	self := cluster.MergeSnapshots(cluster.Manhattan, a)
	if len(self) != len(a) {
		t.Fatalf("self-merge length %d != %d", len(self), len(a))
	}
	for i := range self {
		if self[i].TotalPackets != a[i].TotalPackets {
			t.Fatalf("self-merge counters differ at %d", i)
		}
	}
}
