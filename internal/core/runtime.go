package core

import (
	"fmt"
	"strings"

	"accturbo/internal/eventsim"
)

// RuntimeConfig is the hot-reloadable half of Config: everything the
// control loop re-reads on every tick and an operator may change on a
// running defense without dropping a packet. The structural half —
// feature set, cluster count, queue count, shards — is fixed at
// construction because changing it would invalidate live data-plane
// state (cluster geometry, queue buffers, shard demux).
//
// The control plane holds the current RuntimeConfig in a Hot pointer:
// Reconfigure validates a patched copy, publishes it atomically (which
// bumps the config generation), and reschedules its tickers under
// generation stamps so a cancelled ticker that still fires sees a
// stale generation and does nothing.
type RuntimeConfig struct {
	// Ranking selects the cluster-maliciousness estimate (§5.1).
	Ranking Ranking
	// PollInterval is the control-plane polling period.
	PollInterval eventsim.Time
	// DeployDelay is the poll→deploy latency of every decision.
	DeployDelay eventsim.Time
	// ReseedInterval, when positive, discards all clusters periodically.
	ReseedInterval eventsim.Time
	// FailOpenAfter, when positive, arms the staleness watchdog (see
	// Config.FailOpenAfter).
	FailOpenAfter eventsim.Time
	// WatchdogInterval is the staleness-check period. Zero means "track
	// PollInterval": a poll-interval change moves the watchdog cadence
	// with it.
	WatchdogInterval eventsim.Time
}

// Runtime extracts the hot-reloadable fields from a Config.
func (c Config) Runtime() RuntimeConfig {
	return RuntimeConfig{
		Ranking:          c.Ranking,
		PollInterval:     c.PollInterval,
		DeployDelay:      c.DeployDelay,
		ReseedInterval:   c.ReseedInterval,
		FailOpenAfter:    c.FailOpenAfter,
		WatchdogInterval: c.WatchdogInterval,
	}
}

// Validate checks the runtime configuration. The checks mirror
// Config.Validate's runtime-field subset, so a Config validates iff its
// structural half and its Runtime() both validate.
func (r *RuntimeConfig) Validate() error {
	if r.PollInterval <= 0 {
		return fmt.Errorf("core: PollInterval %v must be positive", r.PollInterval)
	}
	if r.DeployDelay <= 0 {
		return fmt.Errorf("core: DeployDelay %v must be positive", r.DeployDelay)
	}
	if r.Ranking > ByPacketRateOverSize {
		return fmt.Errorf("core: unknown ranking %d", r.Ranking)
	}
	if r.ReseedInterval < 0 {
		return fmt.Errorf("core: ReseedInterval %v < 0", r.ReseedInterval)
	}
	if r.FailOpenAfter < 0 {
		return fmt.Errorf("core: FailOpenAfter %v < 0", r.FailOpenAfter)
	}
	if r.WatchdogInterval < 0 {
		return fmt.Errorf("core: WatchdogInterval %v < 0", r.WatchdogInterval)
	}
	return nil
}

// watchdogEvery is the effective staleness-check period: the explicit
// interval, or the poll interval when tracking.
func (r *RuntimeConfig) watchdogEvery() eventsim.Time {
	if r.WatchdogInterval > 0 {
		return r.WatchdogInterval
	}
	return r.PollInterval
}

// RuntimePatch is a partial RuntimeConfig: nil fields keep their
// current value. It is the payload of Defense.Reconfigure and the
// PUT /config admin endpoint (field names are the JSON contract).
type RuntimePatch struct {
	Ranking          *Ranking       `json:"ranking,omitempty"`
	PollInterval     *eventsim.Time `json:"poll_interval_ns,omitempty"`
	DeployDelay      *eventsim.Time `json:"deploy_delay_ns,omitempty"`
	ReseedInterval   *eventsim.Time `json:"reseed_interval_ns,omitempty"`
	FailOpenAfter    *eventsim.Time `json:"fail_open_after_ns,omitempty"`
	WatchdogInterval *eventsim.Time `json:"watchdog_interval_ns,omitempty"`
}

// Apply returns base with the patch's non-nil fields replaced.
func (p RuntimePatch) Apply(base RuntimeConfig) RuntimeConfig {
	if p.Ranking != nil {
		base.Ranking = *p.Ranking
	}
	if p.PollInterval != nil {
		base.PollInterval = *p.PollInterval
	}
	if p.DeployDelay != nil {
		base.DeployDelay = *p.DeployDelay
	}
	if p.ReseedInterval != nil {
		base.ReseedInterval = *p.ReseedInterval
	}
	if p.FailOpenAfter != nil {
		base.FailOpenAfter = *p.FailOpenAfter
	}
	if p.WatchdogInterval != nil {
		base.WatchdogInterval = *p.WatchdogInterval
	}
	return base
}

// ParseRanking maps an operator-facing name to a Ranking: the paper's
// Fig. 11a labels ("Th.", "N.P.", "Th./Size", "N.P./Size") or the
// spelled-out aliases, case-insensitively.
func ParseRanking(s string) (Ranking, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "th.", "th", "throughput":
		return ByThroughput, nil
	case "n.p.", "np", "packetrate", "packet-rate":
		return ByPacketRate, nil
	case "th./size", "th/size", "throughput/size":
		return ByThroughputOverSize, nil
	case "n.p./size", "np/size", "packetrate/size", "packet-rate/size":
		return ByPacketRateOverSize, nil
	}
	return 0, fmt.Errorf("core: unknown ranking %q (have Th., N.P., Th./Size, N.P./Size)", s)
}
