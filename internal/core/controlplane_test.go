package core

import (
	"testing"

	"accturbo/internal/eventsim"
)

// fakeClock is a deterministic Clock test double for the wall-clock
// code path: time only moves when the test calls advance, and due
// callbacks run synchronously inside advance, in timestamp order (ties
// by scheduling order). No real timers, no goroutines, no sleeps.
type fakeClock struct {
	now  eventsim.Time
	seq  int
	jobs []*fakeJob
}

type fakeJob struct {
	at       eventsim.Time
	seq      int
	fn       func(now eventsim.Time)
	interval eventsim.Time // 0 for one-shots
	dead     bool
}

func (c *fakeClock) Now() eventsim.Time { return c.now }

func (c *fakeClock) After(delay eventsim.Time, fn func(now eventsim.Time)) (cancel func()) {
	j := &fakeJob{at: c.now + delay, seq: c.seq, fn: fn}
	c.seq++
	c.jobs = append(c.jobs, j)
	return func() { j.dead = true }
}

func (c *fakeClock) Every(interval eventsim.Time, fn func(now eventsim.Time)) (stop func()) {
	j := &fakeJob{at: c.now + interval, seq: c.seq, fn: fn, interval: interval}
	c.seq++
	c.jobs = append(c.jobs, j)
	return func() { j.dead = true }
}

// advance moves the clock forward by d, firing every due callback at
// its own timestamp.
func (c *fakeClock) advance(d eventsim.Time) {
	target := c.now + d
	for {
		var next *fakeJob
		for _, j := range c.jobs {
			if j.dead || j.at > target {
				continue
			}
			if next == nil || j.at < next.at || (j.at == next.at && j.seq < next.seq) {
				next = j
			}
		}
		if next == nil {
			break
		}
		c.now = next.at
		if next.interval > 0 {
			next.at += next.interval
		} else {
			next.dead = true
		}
		next.fn(c.now)
	}
	c.now = target
}

// TestControlPlaneOnFakeWallClock drives the poll→rank→map→deploy loop
// on a manually advanced clock and checks the full control-loop
// contract without any real timers: deployments happen DeployDelay
// after each poll, the mapping demotes the heavy cluster, and the
// latency histogram records every deployment.
func TestControlPlaneOnFakeWallClock(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PollInterval = 100 * eventsim.Millisecond
	cfg.DeployDelay = 10 * eventsim.Millisecond
	dp := NewDataplane(cfg, true)
	clk := &fakeClock{}
	cp := NewControlPlane(dp, clk, cfg)

	var deployed []*Decision
	cp.OnDeploy = func(dec *Decision) { deployed = append(deployed, dec) }
	cp.Start()
	defer cp.Stop()

	// One dominant aggregate (a tight flood) plus background noise. The
	// flood's slot is read after all traffic, once cluster merges have
	// settled.
	for i := 1; i < 20; i++ {
		dp.Assign(mkPkt(i))
	}
	for i := 0; i < 200; i++ {
		flood := mkPkt(0)
		flood.Length = 1400
		dp.Assign(flood)
	}
	heavy := dp.Assign(mkPkt(0)).Cluster

	// Nothing may deploy before the first poll tick completes its delay.
	clk.advance(cfg.PollInterval + cfg.DeployDelay - 1)
	if got := cp.Deployments(); got != 0 {
		t.Fatalf("deployed %d times before poll+delay elapsed", got)
	}
	clk.advance(1)
	if got := cp.Deployments(); got != 1 {
		t.Fatalf("deployments = %d after poll+delay, want 1", got)
	}
	if len(deployed) != 1 {
		t.Fatalf("OnDeploy observed %d decisions, want 1", len(deployed))
	}
	dec := deployed[0]
	if dec.At != cfg.PollInterval || dec.DeployedAt != cfg.PollInterval+cfg.DeployDelay {
		t.Fatalf("decision times At=%v DeployedAt=%v", dec.At, dec.DeployedAt)
	}
	if lowest := dp.Config().NumQueues - 1; dp.QueueFor(heavy) != lowest {
		t.Fatalf("heavy cluster in queue %d, want lowest priority %d", dp.QueueFor(heavy), lowest)
	}

	// Nine more idle polls: the loop keeps deploying (empty snapshots
	// are impossible here — clusters persist until reseed).
	clk.advance(9 * cfg.PollInterval)
	if got := cp.Deployments(); got != 10 {
		t.Fatalf("deployments = %d after 10 polls, want 10", got)
	}

	// The latency histogram saw every deployment at exactly DeployDelay.
	h := cp.DeployLatency()
	if h.Count != 10 {
		t.Fatalf("latency histogram count = %d, want 10", h.Count)
	}
	if h.Sum != 10*int64(cfg.DeployDelay) {
		t.Fatalf("latency sum = %d, want %d", h.Sum, 10*int64(cfg.DeployDelay))
	}
	if h.Max != int64(cfg.DeployDelay) {
		t.Fatalf("latency max = %d, want %d", h.Max, int64(cfg.DeployDelay))
	}

	// The ring keeps newest-first history, consistent with LastDecision.
	recent := cp.Recent(3)
	if len(recent) != 3 {
		t.Fatalf("Recent(3) returned %d decisions", len(recent))
	}
	if recent[0] != cp.LastDecision() {
		t.Fatal("Recent(0) is not the last decision")
	}
	if !(recent[0].At > recent[1].At && recent[1].At > recent[2].At) {
		t.Fatalf("Recent not newest-first: %v %v %v", recent[0].At, recent[1].At, recent[2].At)
	}

	// Stop cancels the loop: no more polls fire.
	cp.Stop()
	clk.advance(5 * cfg.PollInterval)
	if got := cp.Deployments(); got != 10 {
		t.Fatalf("deployments = %d after Stop, want 10", got)
	}
}

// TestControlPlaneRecentRingWraps fills the deployment ring past its
// capacity and checks it keeps only the newest deployHistory decisions.
func TestControlPlaneRecentRingWraps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PollInterval = 10 * eventsim.Millisecond
	cfg.DeployDelay = eventsim.Millisecond
	dp := NewDataplane(cfg, false)
	clk := &fakeClock{}
	cp := NewControlPlane(dp, clk, cfg)
	dp.Assign(mkPkt(1))
	cp.Start()
	defer cp.Stop()

	const polls = deployHistory + 17
	clk.advance(eventsim.Time(polls)*cfg.PollInterval + cfg.DeployDelay)
	if got := cp.Deployments(); got != polls {
		t.Fatalf("deployments = %d, want %d", got, polls)
	}
	all := cp.Recent(2 * deployHistory)
	if len(all) != deployHistory {
		t.Fatalf("Recent returned %d, want ring capacity %d", len(all), deployHistory)
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].At <= all[i].At {
			t.Fatalf("ring order broken at %d: %v <= %v", i, all[i-1].At, all[i].At)
		}
	}
	if all[0] != cp.LastDecision() {
		t.Fatal("ring head is not the last decision")
	}
}
