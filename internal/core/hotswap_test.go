package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestHotSwapStress hammers one Hot with concurrent writers and readers
// under -race. Every published slice is self-consistent (all elements
// carry the same stamp), so a reader observing a mixed slice would mean
// a torn swap; generations must be monotonic from any single reader's
// point of view.
func TestHotSwapStress(t *testing.T) {
	const (
		writers = 4
		readers = 4
		stores  = 2000
	)
	var h Hot[[]uint64]
	seed := make([]uint64, 8)
	h.Store(&seed)

	var wg sync.WaitGroup
	var stop atomic.Bool
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < stores; i++ {
				stamp := uint64(w)<<32 | uint64(i)
				v := make([]uint64, 8)
				for j := range v {
					v[j] = stamp
				}
				h.Store(&v)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastGen := uint64(0)
			for !stop.Load() {
				v := *h.Load()
				for j := 1; j < len(v); j++ {
					if v[j] != v[0] {
						t.Errorf("torn read: %v", v)
						return
					}
				}
				g := h.Generation()
				if g < lastGen {
					t.Errorf("generation went backwards: %d -> %d", lastGen, g)
					return
				}
				lastGen = g
				runtime.Gosched()
			}
		}()
	}
	// Wait for the writers by polling the generation; once all stores
	// have landed, stop the readers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for h.Generation() < uint64(writers*stores)+1 {
		runtime.Gosched()
	}
	stop.Store(true)
	<-done

	if got, want := h.Generation(), uint64(writers*stores)+1; got != want {
		t.Fatalf("generation = %d, want %d (one per Store)", got, want)
	}
}

// TestHotZeroAndNil pins the edge semantics: a zero Hot loads nil at
// generation 0, and Store(nil) panics instead of publishing a value
// readers would crash on.
func TestHotZeroAndNil(t *testing.T) {
	var h Hot[int]
	if h.Load() != nil {
		t.Fatal("zero Hot should load nil")
	}
	if h.Generation() != 0 {
		t.Fatalf("zero Hot generation = %d", h.Generation())
	}
	v := 7
	if gen := h.Store(&v); gen != 1 {
		t.Fatalf("first Store returned generation %d, want 1", gen)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Store(nil) did not panic")
		}
	}()
	h.Store(nil)
}

// BenchmarkHotLoad measures the hot-path read: one atomic pointer load,
// the cost every packet pays to see the live queue mapping and every
// control-loop tick pays to see the live runtime config.
func BenchmarkHotLoad(b *testing.B) {
	var h Hot[[]int]
	v := make([]int, 16)
	h.Store(&v)
	var sink int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink += (*h.Load())[i&15]
	}
	_ = sink
}
