package core

import (
	"testing"

	"accturbo/internal/eventsim"
)

// feedSteady pushes one dominant aggregate plus background noise so
// every poll window has clusters to rank.
func feedSteady(dp *Dataplane) {
	for i := 1; i < 10; i++ {
		dp.Assign(mkPkt(i))
	}
	for i := 0; i < 100; i++ {
		flood := mkPkt(0)
		flood.Length = 1400
		dp.Assign(flood)
	}
}

// TestReconfigurePollIntervalMidFlight changes the poll interval while
// the loop is running and checks the ticker lifecycle end to end: the
// old ticker is cancelled, the new cadence takes over from the moment
// of the reconfigure, and the deployment count matches exactly one
// ticker's schedule — any double-fire would overshoot it.
func TestReconfigurePollIntervalMidFlight(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PollInterval = 100 * eventsim.Millisecond
	cfg.DeployDelay = 10 * eventsim.Millisecond
	dp := NewDataplane(cfg, false)
	clk := &fakeClock{}
	cp := NewControlPlane(dp, clk, cfg)
	cp.Start()
	defer cp.Stop()
	feedSteady(dp)

	if got := cp.ConfigGeneration(); got != 1 {
		t.Fatalf("initial generation = %d, want 1", got)
	}

	// First poll at 100ms deploys at 110ms; stop just past it.
	clk.advance(150 * eventsim.Millisecond)
	if got := cp.Deployments(); got != 1 {
		t.Fatalf("deployments before reconfigure = %d, want 1", got)
	}

	quick := 40 * eventsim.Millisecond
	gen, err := cp.Reconfigure(RuntimePatch{PollInterval: &quick})
	if err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	if gen != 2 || cp.ConfigGeneration() != 2 {
		t.Fatalf("generation after reconfigure = %d/%d, want 2", gen, cp.ConfigGeneration())
	}
	if got := cp.Runtime().PollInterval; got != quick {
		t.Fatalf("live PollInterval = %v, want %v", got, quick)
	}

	// New cadence from t=150ms: polls at 190..390 (6 of them), deploys
	// 10ms later — the last lands at 400ms. The old ticker would have
	// added polls at 200/300/400ms; its cancellation plus the
	// generation stamp keep the count exact.
	clk.advance(250 * eventsim.Millisecond)
	if got := cp.Deployments(); got != 7 {
		t.Fatalf("deployments after reconfigure = %d, want 7 (1 old + 6 at new cadence)", got)
	}
}

// TestReconfigureStaleTickerNoDoubleFire models the cancel/fire race
// the generation stamp exists for: a ticker from the previous
// generation that still fires (here: forcibly resurrected after its
// cancellation) must be a no-op, because its stamp no longer matches
// the live generation.
func TestReconfigureStaleTickerNoDoubleFire(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PollInterval = 100 * eventsim.Millisecond
	cfg.DeployDelay = 10 * eventsim.Millisecond
	dp := NewDataplane(cfg, false)
	clk := &fakeClock{}
	cp := NewControlPlane(dp, clk, cfg)
	cp.Start()
	defer cp.Stop()
	feedSteady(dp)

	stale := make([]*fakeJob, len(clk.jobs))
	copy(stale, clk.jobs)

	quick := 50 * eventsim.Millisecond
	if _, err := cp.Reconfigure(RuntimePatch{PollInterval: &quick}); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	for _, j := range stale {
		if !j.dead {
			t.Fatal("reconfigure left a previous-generation ticker armed")
		}
		j.dead = false // resurrect: simulate the callback racing its cancel
	}

	// 200ms: new-cadence polls at 50/100/150/200 deploy at 60/110/160/
	// 210 → 3 complete by t=200. The resurrected 100ms ticker fires at
	// 100/200 but must no-op on the stale generation.
	clk.advance(200 * eventsim.Millisecond)
	if got := cp.Deployments(); got != 3 {
		t.Fatalf("deployments = %d, want 3 (stale ticker fired through)", got)
	}
}

// TestReconfigureWatchdogTracksPollInterval runs a loop that never
// produces a decision (no traffic), so the watchdog is the only actor:
// WatchdogInterval=0 must track the poll interval across a reconfigure,
// and a live FailOpenAfter change must move the staleness bound.
func TestReconfigureWatchdogTracksPollInterval(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PollInterval = 100 * eventsim.Millisecond
	cfg.DeployDelay = 10 * eventsim.Millisecond
	cfg.FailOpenAfter = 250 * eventsim.Millisecond
	dp := NewDataplane(cfg, false)
	clk := &fakeClock{}
	cp := NewControlPlane(dp, clk, cfg)
	cp.Start()
	defer cp.Stop()

	// No traffic: Step returns nil every poll, staleness grows from
	// start. Checks at 100/200/.../500ms; stale once age > 250ms →
	// trips at 300, 400, 500.
	clk.advance(500 * eventsim.Millisecond)
	if got := cp.Health().ConsecutiveStale; got != 3 {
		t.Fatalf("consecutive stale at 100ms cadence = %d, want 3", got)
	}
	if !cp.Health().FailOpen {
		t.Fatal("watchdog did not fail open")
	}

	// Halve the poll interval: the tracking watchdog must now check
	// every 50ms — 10 more trips in the next 500ms instead of 5.
	quick := 50 * eventsim.Millisecond
	if _, err := cp.Reconfigure(RuntimePatch{PollInterval: &quick}); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	before := cp.Health().ConsecutiveStale
	clk.advance(500 * eventsim.Millisecond)
	if got := cp.Health().ConsecutiveStale - before; got != 10 {
		t.Fatalf("watchdog checks after halving poll interval = %d in 500ms, want 10", got)
	}

	// Relax the staleness bound beyond the horizon: the very next check
	// finds the decision age inside the bound and resets the counter.
	relaxed := 100 * eventsim.Second
	if _, err := cp.Reconfigure(RuntimePatch{FailOpenAfter: &relaxed}); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	clk.advance(50 * eventsim.Millisecond)
	if got := cp.Health().ConsecutiveStale; got != 0 {
		t.Fatalf("consecutive stale after relaxing FailOpenAfter = %d, want 0", got)
	}
}

// TestReconfigureRankingNextTick flips the ranking strategy and checks
// the very next poll ranks under it: a byte-heavy aggregate and a
// packet-heavy aggregate swap places in the queue order.
func TestReconfigureRankingNextTick(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PollInterval = 100 * eventsim.Millisecond
	cfg.DeployDelay = 10 * eventsim.Millisecond
	dp := NewDataplane(cfg, false)
	clk := &fakeClock{}
	cp := NewControlPlane(dp, clk, cfg)
	cp.Start()
	defer cp.Stop()

	feed := func() (bytesHeavy, pktHeavy int) {
		// Few large packets vs. many small ones.
		for i := 0; i < 10; i++ {
			p := mkPkt(0)
			p.Length = 1400
			bytesHeavy = dp.Assign(p).Cluster
		}
		for i := 0; i < 100; i++ {
			p := mkPkt(5)
			p.Length = 64
			pktHeavy = dp.Assign(p).Cluster
		}
		return
	}

	bytesHeavy, pktHeavy := feed()
	if bytesHeavy == pktHeavy {
		t.Fatal("test traffic collapsed into one cluster")
	}
	clk.advance(110 * eventsim.Millisecond)
	if qb, qp := dp.QueueFor(bytesHeavy), dp.QueueFor(pktHeavy); qb <= qp {
		t.Fatalf("under ByThroughput: bytes-heavy queue %d should be below pkt-heavy queue %d", qb, qp)
	}

	byRate := ByPacketRate
	if _, err := cp.Reconfigure(RuntimePatch{Ranking: &byRate}); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	feed()
	clk.advance(110 * eventsim.Millisecond)
	if qb, qp := dp.QueueFor(bytesHeavy), dp.QueueFor(pktHeavy); qp <= qb {
		t.Fatalf("under ByPacketRate: pkt-heavy queue %d should be below bytes-heavy queue %d", qp, qb)
	}
}

// TestReconfigureRejectsInvalid checks a bad patch changes nothing:
// config, generation, and ticker schedule all stay as they were.
func TestReconfigureRejectsInvalid(t *testing.T) {
	cfg := DefaultConfig()
	dp := NewDataplane(cfg, false)
	clk := &fakeClock{}
	cp := NewControlPlane(dp, clk, cfg)
	cp.Start()
	defer cp.Stop()

	before := cp.Runtime()
	genBefore := cp.ConfigGeneration()
	bad := eventsim.Time(0)
	for _, patch := range []RuntimePatch{
		{PollInterval: &bad},
		{DeployDelay: &bad},
	} {
		gen, err := cp.Reconfigure(patch)
		if err == nil {
			t.Fatalf("patch %+v accepted", patch)
		}
		if gen != genBefore || cp.ConfigGeneration() != genBefore {
			t.Fatalf("failed reconfigure moved the generation: %d -> %d", genBefore, gen)
		}
	}
	if cp.Runtime() != before {
		t.Fatal("failed reconfigure mutated the runtime config")
	}
	for _, j := range clk.jobs {
		if j.dead {
			t.Fatal("failed reconfigure cancelled a live ticker")
		}
	}
}

// TestReconfigureBeforeStart patches a constructed-but-unstarted
// control plane: the new config must be live when Start later schedules
// the tickers.
func TestReconfigureBeforeStart(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PollInterval = 100 * eventsim.Millisecond
	cfg.DeployDelay = 10 * eventsim.Millisecond
	dp := NewDataplane(cfg, false)
	clk := &fakeClock{}
	cp := NewControlPlane(dp, clk, cfg)

	quick := 20 * eventsim.Millisecond
	if _, err := cp.Reconfigure(RuntimePatch{PollInterval: &quick}); err != nil {
		t.Fatalf("Reconfigure before Start: %v", err)
	}
	feedSteady(dp)
	cp.Start()
	defer cp.Stop()
	clk.advance(100 * eventsim.Millisecond)
	// Polls at 20/40/60/80/100ms, deploys 10ms later → 4 complete.
	if got := cp.Deployments(); got != 4 {
		t.Fatalf("deployments = %d, want 4 (Start did not pick up pre-Start patch)", got)
	}
}
