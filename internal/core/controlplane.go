package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"accturbo/internal/cluster"
	"accturbo/internal/eventsim"
	"accturbo/internal/telemetry"
)

// ControlPlane is the periodic half of ACC-Turbo (§5.2): every
// PollInterval it polls the data plane's cluster statistics, ranks the
// clusters by estimated maliciousness, maps rank positions onto the
// strict-priority queues, and deploys the new mapping after
// DeployDelay. It is driven entirely through the Clock interface, so
// the identical loop runs in virtual time (SimClock) and wall time
// (WallClock).
type ControlPlane struct {
	// cfg holds the structural half of the configuration — feature set,
	// cluster/queue counts, shards — which is fixed at construction. The
	// hot-reloadable half lives in rt and is re-read on every tick.
	cfg Config
	dp  *Dataplane
	// clock drives the loop (poll, reseed, deploy callbacks). It is the
	// caller's clock, possibly wrapped by cfg.WrapClock for fault
	// injection; rawClock is always the unwrapped original, and the
	// watchdog runs on it so supervision survives an injected stall of
	// the loop it guards.
	clock    Clock
	rawClock Clock

	// rt is the live runtime configuration. Reconfigure publishes a
	// validated replacement; its Store generation doubles as the ticker
	// stamp — every scheduled loop carries the generation it was created
	// under and no-ops once a newer one is published, so a cancelled
	// ticker that still fires cannot double-drive the loop.
	rt Hot[RuntimeConfig]

	mu sync.Mutex // serializes Step against itself (manual Poll vs ticker)

	// ranker turns each polled snapshot into the Decision to deploy —
	// the narrow seam between the loop's plumbing and the ranking
	// policy. cfg.Ranker overrides it (fleet mode); the default
	// localRanker reproduces the single-node loop bit for bit.
	ranker Ranker

	// schedMu protects the ticker lifecycle: stops, started, running,
	// and the swap-then-reschedule sequence in Reconfigure.
	schedMu sync.Mutex
	stops   []func()
	started bool
	running bool

	deployments telemetry.Counter
	lastDec     atomic.Pointer[Decision]

	// Watchdog / fail-open state (see health.go). Times are clock
	// nanoseconds, -1 before the first event; all fields are atomics so
	// Health() is safe from any goroutine.
	startAt      atomic.Int64
	lastPollAt   atomic.Int64
	lastDeployAt atomic.Int64
	pollWallLast atomic.Int64 // wall-clock ns spent in the last Step
	pollWallMax  atomic.Int64
	consecStale  atomic.Uint32 // consecutive watchdog checks that found staleness
	failOpen     atomic.Bool
	lastPanic    atomic.Pointer[string]

	panicsRecovered telemetry.Counter
	watchdogTrips   telemetry.Counter
	failOpens       telemetry.Counter

	// deployLatency observes the poll→deploy latency of every deployed
	// decision: the span from Step computing the mapping to the clock
	// callback installing it. Under SimClock this is exactly DeployDelay;
	// under WallClock it adds real scheduler jitter.
	deployLatency *telemetry.Histogram

	// history is a ring of the most recent deployed decisions, kept for
	// post-hoc interpretability (§10): Recent answers "what did the
	// controller see and decide just before the incident".
	histMu  sync.Mutex
	history [deployHistory]*Decision
	histLen int
	histPos int

	// OnDeploy, when set, observes every deployed decision. It runs on
	// the clock's callback context. Set it before Start.
	OnDeploy func(dec *Decision)
}

// deployHistory is the capacity of the deployed-decision ring buffer.
const deployHistory = 64

// NewControlPlane builds a control plane over the given data plane and
// clock. It panics on an invalid configuration; NewControlPlaneE is the
// error-returning variant for runtime paths.
func NewControlPlane(dp *Dataplane, clock Clock, cfg Config) *ControlPlane {
	cp, err := NewControlPlaneE(dp, clock, cfg)
	if err != nil {
		panic(err)
	}
	return cp
}

// NewControlPlaneE builds a control plane over the given data plane and
// clock, returning an error on an invalid configuration instead of
// panicking. cfg.WrapClock, when set, wraps the loop's clock; the
// watchdog stays on the raw clock.
func NewControlPlaneE(dp *Dataplane, clock Clock, cfg Config) (*ControlPlane, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	loopClock := clock
	if cfg.WrapClock != nil {
		loopClock = cfg.WrapClock(clock)
	}
	cp := &ControlPlane{
		cfg:           cfg,
		dp:            dp,
		clock:         loopClock,
		rawClock:      clock,
		ranker:        cfg.Ranker,
		deployLatency: telemetry.NewHistogram(telemetry.LatencyBuckets()),
	}
	if cp.ranker == nil {
		cp.ranker = &localRanker{slots: cfg.Clustering.MaxClusters, numQueues: cfg.NumQueues}
	}
	rt := cfg.Runtime()
	cp.rt.Store(&rt)
	cp.startAt.Store(-1)
	cp.lastPollAt.Store(-1)
	cp.lastDeployAt.Store(-1)
	return cp, nil
}

// guard wraps a clock callback in the control plane's panic-recovery
// boundary: a panic anywhere in the loop (ranking, a user OnDeploy
// hook, a clusterer bug) is counted in telemetry and surfaced through
// Health, never fatal — the data plane keeps classifying under the last
// deployed mapping, and the watchdog eventually fails open if the loop
// stops making progress.
func (cp *ControlPlane) guard(fn func(now eventsim.Time)) func(now eventsim.Time) {
	return func(now eventsim.Time) {
		defer func() {
			if r := recover(); r != nil {
				msg := fmt.Sprintf("%v", r)
				cp.lastPanic.Store(&msg)
				cp.panicsRecovered.Inc()
			}
		}()
		fn(now)
	}
}

// Start schedules the polling loop (and the reseed and watchdog loops
// when configured) on the clock. It must be called at most once.
func (cp *ControlPlane) Start() {
	cp.schedMu.Lock()
	defer cp.schedMu.Unlock()
	if cp.started {
		panic("core: ControlPlane started twice")
	}
	cp.started = true
	cp.running = true
	cp.startAt.Store(int64(cp.rawClock.Now()))
	cp.schedule(cp.rt.Generation())
}

// stamped wraps a periodic callback with the panic-recovery boundary
// and a generation check: once Reconfigure publishes a newer runtime
// config, a stale ticker that races its own cancellation becomes a
// no-op instead of double-firing alongside its replacement. Deploy
// callbacks are deliberately NOT stamped — a decision in flight when
// the config changes still lands, matching Stop's "pending deployments
// still apply" semantics.
func (cp *ControlPlane) stamped(gen uint64, fn func(now eventsim.Time)) func(now eventsim.Time) {
	return cp.guard(func(now eventsim.Time) {
		if cp.rt.Generation() != gen {
			return
		}
		fn(now)
	})
}

// schedule creates the periodic loops for the current runtime config,
// stamping each with gen. Caller holds schedMu.
func (cp *ControlPlane) schedule(gen uint64) {
	rt := *cp.rt.Load()
	cp.stops = append(cp.stops, cp.clock.Every(rt.PollInterval, cp.stamped(gen, func(now eventsim.Time) { cp.Step(now) })))
	if rt.ReseedInterval > 0 {
		cp.stops = append(cp.stops, cp.clock.Every(rt.ReseedInterval, cp.stamped(gen, func(eventsim.Time) { cp.dp.Reseed() })))
	}
	if rt.FailOpenAfter > 0 {
		cp.stops = append(cp.stops, cp.rawClock.Every(rt.watchdogEvery(), cp.stamped(gen, cp.watchdog)))
	}
}

// cancelLocked cancels the scheduled loops. Caller holds schedMu.
func (cp *ControlPlane) cancelLocked() {
	for _, s := range cp.stops {
		s()
	}
	cp.stops = nil
}

// Stop cancels the scheduled loops. Pending deployments still apply.
func (cp *ControlPlane) Stop() {
	cp.schedMu.Lock()
	defer cp.schedMu.Unlock()
	cp.cancelLocked()
	cp.running = false
}

// Reconfigure validates base-plus-patch, publishes it atomically (the
// control loop re-reads the runtime config every tick, so the next poll
// ranks under the new settings), and reschedules the tickers under a
// fresh generation. The data plane is untouched: no packet is dropped
// or reclassified by the swap, and a deployment already in flight still
// applies. It returns the new configuration generation.
func (cp *ControlPlane) Reconfigure(patch RuntimePatch) (uint64, error) {
	cp.schedMu.Lock()
	defer cp.schedMu.Unlock()
	next := patch.Apply(*cp.rt.Load())
	if err := next.Validate(); err != nil {
		return cp.rt.Generation(), err
	}
	gen := cp.rt.Store(&next)
	if cp.running {
		cp.cancelLocked()
		cp.schedule(gen)
	}
	return gen, nil
}

// Runtime returns the live runtime configuration.
func (cp *ControlPlane) Runtime() RuntimeConfig { return *cp.rt.Load() }

// ConfigGeneration returns the runtime-config generation: 1 at
// construction, +1 per successful Reconfigure.
func (cp *ControlPlane) ConfigGeneration() uint64 { return cp.rt.Generation() }

// Deployments returns the number of mappings pushed to the data plane.
func (cp *ControlPlane) Deployments() uint64 { return cp.deployments.Value() }

// DeployLatency returns the poll→deploy latency distribution of all
// deployments so far (nanoseconds).
func (cp *ControlPlane) DeployLatency() telemetry.HistogramSnapshot {
	return cp.deployLatency.Snapshot()
}

// Recent returns up to n of the most recently deployed decisions,
// newest first. The ring keeps the last deployHistory (64) deployments.
func (cp *ControlPlane) Recent(n int) []*Decision {
	cp.histMu.Lock()
	defer cp.histMu.Unlock()
	if n > cp.histLen {
		n = cp.histLen
	}
	out := make([]*Decision, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, cp.history[(cp.histPos-1-i+2*deployHistory)%deployHistory])
	}
	return out
}

// Describe registers the control plane's instruments on a telemetry
// registry under the given name prefix.
func (cp *ControlPlane) Describe(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"_deployments", &cp.deployments)
	reg.Histogram(prefix+"_deploy_latency_ns", cp.deployLatency)
	reg.Counter(prefix+"_panics_recovered", &cp.panicsRecovered)
	reg.Counter(prefix+"_watchdog_trips", &cp.watchdogTrips)
	reg.Counter(prefix+"_failopen_engaged", &cp.failOpens)
}

// LastDecision returns the most recent deployed decision (nil before
// the first deployment). The returned Decision and its Clusters
// snapshot are immutable once published.
func (cp *ControlPlane) LastDecision() *Decision { return cp.lastDec.Load() }

// rankMetric computes the maliciousness estimate for one cluster
// snapshot under the given ranking (§5.1).
func rankMetric(r Ranking, info cluster.Info) float64 {
	var m float64
	switch r {
	case ByThroughput:
		m = float64(info.Bytes)
	case ByPacketRate:
		m = float64(info.Packets)
	case ByThroughputOverSize:
		m = float64(info.Bytes) / (info.Size + 1)
	case ByPacketRateOverSize:
		m = float64(info.Packets) / (info.Size + 1)
	}
	return m
}

// Step runs one control-loop iteration at time now: poll → rank → map,
// then schedule the deployment DeployDelay later. It returns the
// decision that will be deployed, or nil when no clusters exist yet.
// The periodic loop calls Step; tests and operators may call it
// directly between ticks.
func (cp *ControlPlane) Step(now eventsim.Time) *Decision {
	cp.mu.Lock()
	defer cp.mu.Unlock()

	// One coherent runtime config for the whole tick: ranking and deploy
	// delay come from the same snapshot even if Reconfigure lands
	// mid-step.
	rt := *cp.rt.Load()

	// Watchdog bookkeeping: when the poll started and how long it held
	// the loop (wall time — purely observational, never fed back into
	// scheduling, so deterministic simulations stay bit-identical).
	cp.lastPollAt.Store(int64(now))
	wallStart := time.Now()
	defer func() {
		d := time.Since(wallStart).Nanoseconds()
		cp.pollWallLast.Store(d)
		if d > cp.pollWallMax.Load() {
			cp.pollWallMax.Store(d)
		}
	}()

	infos := cp.dp.Snapshot()
	cp.dp.ResetStats()
	if len(infos) == 0 {
		return nil
	}

	dec := cp.ranker.Rank(now, infos, *cp.dp.queueMap.Load(), rt)
	if dec == nil {
		return nil
	}
	newMap := dec.QueueOf
	cp.clock.After(rt.DeployDelay, cp.guard(func(t eventsim.Time) {
		cp.dp.Deploy(newMap)
		cp.deployments.Inc()
		cp.deployLatency.ObserveSince(dec.At, t)
		cp.lastDec.Store(dec)
		// A fresh ranked mapping landed: the loop is alive again. Leave
		// fail-open (if engaged) — this deploy just restored the last
		// ranking behavior — and reset staleness accounting.
		cp.lastDeployAt.Store(int64(t))
		cp.consecStale.Store(0)
		cp.failOpen.Store(false)
		cp.histMu.Lock()
		cp.history[cp.histPos] = dec
		cp.histPos = (cp.histPos + 1) % deployHistory
		if cp.histLen < deployHistory {
			cp.histLen++
		}
		cp.histMu.Unlock()
		if cp.OnDeploy != nil {
			cp.OnDeploy(dec)
		}
	}))
	return dec
}
