package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"accturbo/internal/cluster"
	"accturbo/internal/eventsim"
	"accturbo/internal/telemetry"
)

// ControlPlane is the periodic half of ACC-Turbo (§5.2): every
// PollInterval it polls the data plane's cluster statistics, ranks the
// clusters by estimated maliciousness, maps rank positions onto the
// strict-priority queues, and deploys the new mapping after
// DeployDelay. It is driven entirely through the Clock interface, so
// the identical loop runs in virtual time (SimClock) and wall time
// (WallClock).
type ControlPlane struct {
	cfg   Config
	dp    *Dataplane
	clock Clock

	mu      sync.Mutex // serializes Step against itself (manual Poll vs ticker)
	stops   []func()
	started bool

	deployments telemetry.Counter
	lastDec     atomic.Pointer[Decision]

	// deployLatency observes the poll→deploy latency of every deployed
	// decision: the span from Step computing the mapping to the clock
	// callback installing it. Under SimClock this is exactly DeployDelay;
	// under WallClock it adds real scheduler jitter.
	deployLatency *telemetry.Histogram

	// history is a ring of the most recent deployed decisions, kept for
	// post-hoc interpretability (§10): Recent answers "what did the
	// controller see and decide just before the incident".
	histMu  sync.Mutex
	history [deployHistory]*Decision
	histLen int
	histPos int

	// OnDeploy, when set, observes every deployed decision. It runs on
	// the clock's callback context. Set it before Start.
	OnDeploy func(dec *Decision)
}

// deployHistory is the capacity of the deployed-decision ring buffer.
const deployHistory = 64

// NewControlPlane builds a control plane over the given data plane and
// clock. It panics on an invalid configuration.
func NewControlPlane(dp *Dataplane, clock Clock, cfg Config) *ControlPlane {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	return &ControlPlane{
		cfg:           cfg,
		dp:            dp,
		clock:         clock,
		deployLatency: telemetry.NewHistogram(telemetry.LatencyBuckets()),
	}
}

// Start schedules the polling loop (and the reseed loop when
// configured) on the clock. It must be called at most once.
func (cp *ControlPlane) Start() {
	if cp.started {
		panic("core: ControlPlane started twice")
	}
	cp.started = true
	cp.stops = append(cp.stops, cp.clock.Every(cp.cfg.PollInterval, func(now eventsim.Time) { cp.Step(now) }))
	if cp.cfg.ReseedInterval > 0 {
		cp.stops = append(cp.stops, cp.clock.Every(cp.cfg.ReseedInterval, func(eventsim.Time) { cp.dp.Reseed() }))
	}
}

// Stop cancels the scheduled loops. Pending deployments still apply.
func (cp *ControlPlane) Stop() {
	for _, s := range cp.stops {
		s()
	}
	cp.stops = nil
}

// Deployments returns the number of mappings pushed to the data plane.
func (cp *ControlPlane) Deployments() uint64 { return cp.deployments.Value() }

// DeployLatency returns the poll→deploy latency distribution of all
// deployments so far (nanoseconds).
func (cp *ControlPlane) DeployLatency() telemetry.HistogramSnapshot {
	return cp.deployLatency.Snapshot()
}

// Recent returns up to n of the most recently deployed decisions,
// newest first. The ring keeps the last deployHistory (64) deployments.
func (cp *ControlPlane) Recent(n int) []*Decision {
	cp.histMu.Lock()
	defer cp.histMu.Unlock()
	if n > cp.histLen {
		n = cp.histLen
	}
	out := make([]*Decision, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, cp.history[(cp.histPos-1-i+2*deployHistory)%deployHistory])
	}
	return out
}

// Describe registers the control plane's instruments on a telemetry
// registry under the given name prefix.
func (cp *ControlPlane) Describe(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"_deployments", &cp.deployments)
	reg.Histogram(prefix+"_deploy_latency_ns", cp.deployLatency)
}

// LastDecision returns the most recent deployed decision (nil before
// the first deployment). The returned Decision and its Clusters
// snapshot are immutable once published.
func (cp *ControlPlane) LastDecision() *Decision { return cp.lastDec.Load() }

// rankMetric computes the configured maliciousness estimate for one
// cluster snapshot (§5.1).
func (cp *ControlPlane) rankMetric(info cluster.Info) float64 {
	var m float64
	switch cp.cfg.Ranking {
	case ByThroughput:
		m = float64(info.Bytes)
	case ByPacketRate:
		m = float64(info.Packets)
	case ByThroughputOverSize:
		m = float64(info.Bytes) / (info.Size + 1)
	case ByPacketRateOverSize:
		m = float64(info.Packets) / (info.Size + 1)
	}
	return m
}

// Step runs one control-loop iteration at time now: poll → rank → map,
// then schedule the deployment DeployDelay later. It returns the
// decision that will be deployed, or nil when no clusters exist yet.
// The periodic loop calls Step; tests and operators may call it
// directly between ticks.
func (cp *ControlPlane) Step(now eventsim.Time) *Decision {
	cp.mu.Lock()
	defer cp.mu.Unlock()

	infos := cp.dp.Snapshot()
	cp.dp.ResetStats()
	if len(infos) == 0 {
		return nil
	}

	nslots := cp.cfg.Clustering.MaxClusters
	ranks := make([]float64, nslots)
	order := make([]int, 0, len(infos))
	for _, info := range infos {
		ranks[info.ID] = cp.rankMetric(info)
		order = append(order, info.ID)
	}
	// Least suspicious first; ties keep lower cluster IDs first for
	// determinism.
	sort.SliceStable(order, func(i, j int) bool {
		return ranks[order[i]] < ranks[order[j]]
	})

	newMap := make([]int, nslots)
	copy(newMap, *cp.dp.queueMap.Load())
	n := len(order)
	for pos, id := range order {
		// Spread rank positions across the available queues: position
		// 0 (least suspicious) -> queue 0, last -> queue NumQueues-1.
		q := pos * cp.cfg.NumQueues / n
		if q >= cp.cfg.NumQueues {
			q = cp.cfg.NumQueues - 1
		}
		newMap[id] = q
	}

	dec := &Decision{
		At:         now,
		DeployedAt: now + cp.cfg.DeployDelay,
		Clusters:   infos,
		Rank:       ranks,
		QueueOf:    newMap,
	}
	cp.clock.After(cp.cfg.DeployDelay, func(t eventsim.Time) {
		cp.dp.Deploy(newMap)
		cp.deployments.Inc()
		cp.deployLatency.ObserveSince(dec.At, t)
		cp.lastDec.Store(dec)
		cp.histMu.Lock()
		cp.history[cp.histPos] = dec
		cp.histPos = (cp.histPos + 1) % deployHistory
		if cp.histLen < deployHistory {
			cp.histLen++
		}
		cp.histMu.Unlock()
		if cp.OnDeploy != nil {
			cp.OnDeploy(dec)
		}
	})
	return dec
}
