package core

import (
	"sort"

	"accturbo/internal/cluster"
	"accturbo/internal/eventsim"
)

// Ranker is the seam between the control loop's plumbing (poll the data
// plane, schedule the deployment) and the policy that turns a cluster
// snapshot into a cluster→queue mapping. The default localRanker ranks
// the node's own snapshot; a fleet node (internal/fleet) instead
// publishes the snapshot to a coordinator and deploys the globally
// merged ranking, falling back to local ranking when the coordinator is
// unreachable.
//
// Rank runs inside Step's critical section on the control loop's
// callback context: one call per poll, never concurrently with itself.
// infos is the freshly polled (and reset) per-window snapshot — the
// Decision takes ownership of it. prev is the currently deployed queue
// map; implementations must not mutate it. Returning nil skips the
// tick (no deployment is scheduled).
type Ranker interface {
	Rank(now eventsim.Time, infos []cluster.Info, prev []int, rt RuntimeConfig) *Decision

	// Source names the ranking authority for Health and /health:
	// "local" for the built-in single-node ranker; fleet nodes report
	// "fleet" or "fleet-fallback:local" while partitioned from the
	// coordinator. It must be safe from any goroutine.
	Source() string
}

// degradedRanker is the optional extension Health probes: a ranker that
// can be in a degraded mode (a fleet node running on local fallback)
// reports it here and the roll-up Degraded bit picks it up. Kept out of
// Ranker so the seam stays two methods.
type degradedRanker interface {
	RankingDegraded() bool
}

// RankDecision is the pure rank→map computation shared by the local
// ranker and the fleet coordinator (§5): rank every cluster in the
// snapshot under rk, order least-suspicious first (ties keep lower
// cluster IDs first for determinism), and spread the rank positions
// across numQueues strict-priority queues — position 0 to queue 0
// (highest priority), the most suspicious cluster to the last queue.
// Slots absent from the snapshot keep their mapping from prev; prev is
// copied, never mutated. slots is the queue-map length (MaxClusters).
func RankDecision(rk Ranking, infos []cluster.Info, slots, numQueues int, prev []int, at, deployAt eventsim.Time) *Decision {
	ranks := make([]float64, slots)
	order := make([]int, 0, len(infos))
	for _, info := range infos {
		ranks[info.ID] = rankMetric(rk, info)
		order = append(order, info.ID)
	}
	// Least suspicious first; ties keep lower cluster IDs first for
	// determinism.
	sort.SliceStable(order, func(i, j int) bool {
		return ranks[order[i]] < ranks[order[j]]
	})

	newMap := make([]int, slots)
	copy(newMap, prev)
	n := len(order)
	for pos, id := range order {
		// Spread rank positions across the available queues: position
		// 0 (least suspicious) -> queue 0, last -> queue NumQueues-1.
		q := pos * numQueues / n
		if q >= numQueues {
			q = numQueues - 1
		}
		newMap[id] = q
	}

	return &Decision{
		At:         at,
		DeployedAt: deployAt,
		Clusters:   infos,
		Rank:       ranks,
		QueueOf:    newMap,
	}
}

// localRanker is the single-node policy ACC-Turbo ships with: rank this
// node's own snapshot, nothing else. It is stateless; Step's output is
// bit-identical to the pre-seam control loop.
type localRanker struct {
	slots     int
	numQueues int
}

func (l *localRanker) Rank(now eventsim.Time, infos []cluster.Info, prev []int, rt RuntimeConfig) *Decision {
	return RankDecision(rt.Ranking, infos, l.slots, l.numQueues, prev, now, now+rt.DeployDelay)
}

func (l *localRanker) Source() string { return "local" }
