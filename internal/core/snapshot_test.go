package core

import (
	"bytes"
	"reflect"
	"testing"

	"accturbo/internal/eventsim"
)

// warmPipeline builds a dataplane/control plane pair on a fakeClock,
// runs traffic and a few control-loop cycles, and returns everything a
// snapshot test needs.
func warmPipeline(t *testing.T, cfg Config, concurrent bool) (*Dataplane, *ControlPlane, *fakeClock) {
	t.Helper()
	dp := NewDataplane(cfg, concurrent)
	clk := &fakeClock{}
	cp := NewControlPlane(dp, clk, cfg)
	cp.Start()
	t.Cleanup(cp.Stop)
	for round := 0; round < 3; round++ {
		for i := 0; i < 50; i++ {
			dp.Classify(mkPkt(i % 17))
		}
		clk.advance(cfg.PollInterval + cfg.DeployDelay)
	}
	return dp, cp, clk
}

// TestSnapshotRoundTrip saves a warmed-up pipeline and restores it into
// a fresh one: the re-saved snapshot must be byte-identical, the
// restored process must report the same deployed decision and queue
// map without any re-convergence, and subsequent identical traffic must
// classify identically on both sides.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name       string
		shards     int
		concurrent bool
	}{
		{"single", 0, false},
		{"sharded-concurrent", 4, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.PollInterval = 100 * eventsim.Millisecond
			cfg.DeployDelay = 10 * eventsim.Millisecond
			cfg.Shards = tc.shards
			dp, cp, _ := warmPipeline(t, cfg, tc.concurrent)

			var buf bytes.Buffer
			if err := SaveState(&buf, dp, cp); err != nil {
				t.Fatalf("SaveState: %v", err)
			}
			blob := append([]byte{}, buf.Bytes()...)

			dp2 := NewDataplane(cfg, tc.concurrent)
			clk2 := &fakeClock{}
			cp2 := NewControlPlane(dp2, clk2, cfg)
			cp2.Start()
			defer cp2.Stop()
			if err := RestoreState(bytes.NewReader(blob), dp2, cp2); err != nil {
				t.Fatalf("RestoreState: %v", err)
			}

			var buf2 bytes.Buffer
			if err := SaveState(&buf2, dp2, cp2); err != nil {
				t.Fatalf("re-SaveState: %v", err)
			}
			if !bytes.Equal(blob, buf2.Bytes()) {
				t.Fatalf("save→restore→save not byte-identical: %d vs %d bytes", len(blob), buf2.Len())
			}

			if !reflect.DeepEqual(dp2.QueueMap(), dp.QueueMap()) {
				t.Fatal("restored queue map differs")
			}
			if !reflect.DeepEqual(cp2.LastDecision(), cp.LastDecision()) {
				t.Fatal("restored decision differs")
			}
			if got, want := cp2.Deployments(), cp.Deployments(); got != want {
				t.Fatalf("restored deployments = %d, want %d", got, want)
			}
			if got, want := dp2.Observed(), dp.Observed(); got != want {
				t.Fatalf("restored observed = %d, want %d", got, want)
			}
			if !reflect.DeepEqual(dp2.Snapshot(), dp.Snapshot()) {
				t.Fatal("restored cluster snapshots differ")
			}

			// Identical post-restore traffic classifies identically —
			// the restored clusterers are behaviorally the originals.
			for i := 0; i < 200; i++ {
				p1, p2 := mkPkt(i%23), mkPkt(i%23)
				a1, q1 := dp.Classify(p1)
				a2, q2 := dp2.Classify(p2)
				if a1 != a2 || q1 != q2 {
					t.Fatalf("packet %d diverges: (%+v,%d) vs (%+v,%d)", i, a1, q1, a2, q2)
				}
			}
		})
	}
}

// TestSnapshotRestoresRuntimeConfig reconfigures before saving and
// checks the restored control plane runs under the patched runtime
// config, not the constructor's.
func TestSnapshotRestoresRuntimeConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PollInterval = 100 * eventsim.Millisecond
	cfg.DeployDelay = 10 * eventsim.Millisecond
	dp, cp, _ := warmPipeline(t, cfg, false)

	quick := 25 * eventsim.Millisecond
	byRate := ByPacketRate
	if _, err := cp.Reconfigure(RuntimePatch{PollInterval: &quick, Ranking: &byRate}); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}

	var buf bytes.Buffer
	if err := SaveState(&buf, dp, cp); err != nil {
		t.Fatalf("SaveState: %v", err)
	}

	dp2 := NewDataplane(cfg, false)
	clk2 := &fakeClock{}
	cp2 := NewControlPlane(dp2, clk2, cfg)
	cp2.Start()
	defer cp2.Stop()
	if err := RestoreState(&buf, dp2, cp2); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	rt := cp2.Runtime()
	if rt.PollInterval != quick || rt.Ranking != byRate {
		t.Fatalf("restored runtime = %+v, want poll %v ranking %v", rt, quick, byRate)
	}
	// The restored cadence is actually scheduled, not just reported.
	feedSteady(dp2)
	deploysBefore := cp2.Deployments()
	clk2.advance(100 * eventsim.Millisecond)
	if got := cp2.Deployments() - deploysBefore; got != 3 {
		t.Fatalf("restored loop deployed %d times in 100ms, want 3 at a 25ms cadence", got)
	}
}

// TestSnapshotRejects covers the container's refusal paths: corruption
// (checksum), truncation, bad magic, version skew, structural mismatch,
// and restoring over a pipeline that already has history.
func TestSnapshotRejects(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PollInterval = 100 * eventsim.Millisecond
	cfg.DeployDelay = 10 * eventsim.Millisecond
	dp, cp, _ := warmPipeline(t, cfg, false)
	var buf bytes.Buffer
	if err := SaveState(&buf, dp, cp); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	blob := buf.Bytes()

	fresh := func(c Config) (*Dataplane, *ControlPlane) {
		d := NewDataplane(c, false)
		return d, NewControlPlane(d, &fakeClock{}, c)
	}

	t.Run("checksum", func(t *testing.T) {
		bad := append([]byte{}, blob...)
		bad[len(bad)/2] ^= 0x40
		d, c := fresh(cfg)
		if err := RestoreState(bytes.NewReader(bad), d, c); err == nil {
			t.Fatal("accepted a corrupt snapshot")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		d, c := fresh(cfg)
		if err := RestoreState(bytes.NewReader(blob[:len(blob)-7]), d, c); err == nil {
			t.Fatal("accepted a truncated snapshot")
		}
	})
	t.Run("magic", func(t *testing.T) {
		bad := append([]byte{}, blob...)
		bad[0] = 'X'
		d, c := fresh(cfg)
		if err := RestoreState(bytes.NewReader(bad), d, c); err == nil {
			t.Fatal("accepted bad magic")
		}
	})
	t.Run("version", func(t *testing.T) {
		bad := append([]byte{}, blob...)
		bad[8] = 0xFF
		d, c := fresh(cfg)
		if err := RestoreState(bytes.NewReader(bad), d, c); err == nil {
			t.Fatal("accepted an unknown version")
		}
	})
	t.Run("structural-mismatch", func(t *testing.T) {
		other := cfg
		other.Shards = 2
		d, c := fresh(other)
		if err := RestoreState(bytes.NewReader(blob), d, c); err == nil {
			t.Fatal("accepted a snapshot with a different shard count")
		}
	})
	t.Run("not-fresh", func(t *testing.T) {
		d, c := fresh(cfg)
		d.Assign(mkPkt(1))
		if err := RestoreState(bytes.NewReader(blob), d, c); err == nil {
			t.Fatal("accepted a restore over a pipeline with history")
		}
	})
}
