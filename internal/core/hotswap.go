package core

import "sync/atomic"

// Hot is a hot-swappable pointer with a generation counter: the one
// pattern behind every piece of state the control plane replaces whole
// while the data plane keeps reading it — the cluster→queue mapping
// (PR 2) and now the runtime configuration. Readers pay exactly one
// atomic pointer load; writers publish a fully-built replacement, so a
// reader sees either the old value or the new one, never a mix.
//
// The generation counter increments on every Store. It is advisory:
// callers use it to stamp scheduled work ("this ticker belongs to
// generation 7") so callbacks outlived by a swap can detect they are
// stale and become no-ops. Load and Generation are two independent
// atomics — a reader racing a Store may briefly observe the new value
// with the old generation (or vice versa); stamp-then-check protocols
// must take their stamp from Store's return value, which is exact.
//
// The zero Hot holds nil at generation 0; Store before the first Load.
type Hot[T any] struct {
	p   atomic.Pointer[T]
	gen atomic.Uint64
}

// Load returns the current value. The pointee must be treated as
// immutable: mutating it would race every other reader.
func (h *Hot[T]) Load() *T { return h.p.Load() }

// Store publishes v (which must not be mutated afterwards) and returns
// the new generation.
func (h *Hot[T]) Store(v *T) uint64 {
	if v == nil {
		panic("core: Hot.Store(nil)")
	}
	h.p.Store(v)
	return h.gen.Add(1)
}

// Generation returns the number of Stores completed so far.
func (h *Hot[T]) Generation() uint64 { return h.gen.Load() }
