package core

import (
	"encoding/json"
	"testing"

	"accturbo/internal/eventsim"
)

func TestParseRanking(t *testing.T) {
	for r, names := range map[Ranking][]string{
		ByThroughput:         {"Th.", "th", "THROUGHPUT"},
		ByPacketRate:         {"N.P.", "np", "packet-rate"},
		ByThroughputOverSize: {"Th./Size", "throughput/size"},
		ByPacketRateOverSize: {"N.P./Size", "np/size"},
	} {
		for _, name := range names {
			got, err := ParseRanking(name)
			if err != nil || got != r {
				t.Errorf("ParseRanking(%q) = %v, %v; want %v", name, got, err, r)
			}
		}
		// Every String() output parses back to itself.
		if got, err := ParseRanking(r.String()); err != nil || got != r {
			t.Errorf("ParseRanking(%q) = %v, %v; want round-trip", r.String(), got, err)
		}
	}
	if _, err := ParseRanking("bogus"); err == nil {
		t.Error("ParseRanking accepted an unknown name")
	}
}

func TestRuntimePatchApply(t *testing.T) {
	base := DefaultConfig().Runtime()
	if got := (RuntimePatch{}).Apply(base); got != base {
		t.Fatalf("empty patch changed the config: %+v", got)
	}
	r := ByPacketRateOverSize
	poll := 42 * eventsim.Millisecond
	got := RuntimePatch{Ranking: &r, PollInterval: &poll}.Apply(base)
	if got.Ranking != r || got.PollInterval != poll {
		t.Fatalf("patched fields not applied: %+v", got)
	}
	if got.DeployDelay != base.DeployDelay || got.ReseedInterval != base.ReseedInterval {
		t.Fatalf("unpatched fields changed: %+v", got)
	}
}

// TestRuntimePatchJSON pins the admin-endpoint wire contract: field
// names and partial-patch semantics.
func TestRuntimePatchJSON(t *testing.T) {
	var p RuntimePatch
	if err := json.Unmarshal([]byte(`{"poll_interval_ns": 250000000}`), &p); err != nil {
		t.Fatal(err)
	}
	if p.PollInterval == nil || *p.PollInterval != 250*eventsim.Millisecond {
		t.Fatalf("poll_interval_ns not decoded: %+v", p)
	}
	if p.Ranking != nil || p.DeployDelay != nil {
		t.Fatalf("absent fields decoded non-nil: %+v", p)
	}
}

func TestWatchdogEvery(t *testing.T) {
	rt := DefaultConfig().Runtime()
	if got := rt.watchdogEvery(); got != rt.PollInterval {
		t.Fatalf("zero WatchdogInterval should track PollInterval, got %v", got)
	}
	rt.WatchdogInterval = 7 * eventsim.Millisecond
	if got := rt.watchdogEvery(); got != 7*eventsim.Millisecond {
		t.Fatalf("explicit WatchdogInterval ignored: %v", got)
	}
}
