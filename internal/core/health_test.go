package core

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"accturbo/internal/eventsim"
)

// gateClock simulates a wedged control loop: while the gate is closed,
// periodic callbacks scheduled through it are swallowed. One-shot
// callbacks (pending deployments) pass through, matching the faults
// package's stall semantics. It is the test-local stand-in for
// faults.StallClock, which cannot be imported here (import cycle).
type gateClock struct {
	Clock
	open *atomic.Bool
}

func (g gateClock) Every(interval eventsim.Time, fn func(now eventsim.Time)) (stop func()) {
	return g.Clock.Every(interval, func(now eventsim.Time) {
		if !g.open.Load() {
			return
		}
		fn(now)
	})
}

// TestWatchdogFailOpenAndRecovery drives the full degradation cycle on
// a fake clock: a healthy loop demotes the heavy cluster; a stalled
// loop trips the watchdog, which fails open to the uniform map; the
// loop recovering restores the ranked behavior and clears the flag.
func TestWatchdogFailOpenAndRecovery(t *testing.T) {
	var open atomic.Bool
	open.Store(true)

	cfg := DefaultConfig()
	cfg.PollInterval = 100 * eventsim.Millisecond
	cfg.DeployDelay = 10 * eventsim.Millisecond
	cfg.FailOpenAfter = 500 * eventsim.Millisecond
	cfg.WrapClock = func(c Clock) Clock { return gateClock{Clock: c, open: &open} }
	dp := NewDataplane(cfg, true)
	clk := &fakeClock{}
	cp, err := NewControlPlaneE(dp, clk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp.Start()
	defer cp.Stop()

	// A dominant aggregate plus background noise, as in the basic
	// control-plane test.
	for i := 1; i < 20; i++ {
		dp.Assign(mkPkt(i))
	}
	for i := 0; i < 200; i++ {
		flood := mkPkt(0)
		flood.Length = 1400
		dp.Assign(flood)
	}
	heavy := dp.Assign(mkPkt(0)).Cluster
	lowest := dp.Config().NumQueues - 1

	// Healthy phase: the loop deploys and demotes the heavy cluster.
	// (Check right after the first deployment — later idle polls rank
	// over reset window stats.)
	clk.advance(cfg.PollInterval + cfg.DeployDelay)
	if dp.QueueFor(heavy) != lowest {
		t.Fatalf("healthy: heavy cluster in queue %d, want %d", dp.QueueFor(heavy), lowest)
	}
	h := cp.Health()
	if h.FailOpen || h.Degraded || h.ConsecutiveStale != 0 {
		t.Fatalf("healthy phase reports degraded: %+v", h)
	}
	if h.DecisionAge < 0 || h.PollAge < 0 {
		t.Fatalf("ages unset after deployments: %+v", h)
	}
	deployedBefore := cp.Deployments()

	// Stall the loop. The watchdog runs on the raw clock, so it keeps
	// observing; once staleness exceeds FailOpenAfter it must fail open
	// to the uniform map — every cluster back in queue 0.
	open.Store(false)
	clk.advance(cfg.FailOpenAfter + 2*cfg.PollInterval)
	h = cp.Health()
	if !h.FailOpen || !h.Degraded {
		t.Fatalf("stalled: watchdog did not fail open: %+v", h)
	}
	if h.ConsecutiveStale == 0 {
		t.Fatalf("stalled: consecutive-stale not counting: %+v", h)
	}
	if h.FailOpenEngagements != 1 {
		t.Fatalf("fail-open engagements = %d, want 1", h.FailOpenEngagements)
	}
	if dp.QueueFor(heavy) != 0 {
		t.Fatalf("stalled: heavy cluster in queue %d, want uniform queue 0", dp.QueueFor(heavy))
	}
	if got := cp.Deployments(); got != deployedBefore {
		t.Fatalf("ranked deployments advanced while stalled: %d -> %d", deployedBefore, got)
	}
	// Fail-open is sticky: more stalled time must not re-engage it.
	clk.advance(4 * cfg.PollInterval)
	if h = cp.Health(); h.FailOpenEngagements != 1 {
		t.Fatalf("fail-open re-engaged while already open: %+v", h)
	}

	// Recovery: re-offer the flood (the stalled windows accumulated no
	// ranked traffic), resume the loop, and the next ranked deployment
	// restores the demotion and clears fail-open.
	for i := 0; i < 200; i++ {
		flood := mkPkt(0)
		flood.Length = 1400
		dp.Assign(flood)
	}
	open.Store(true)
	clk.advance(cfg.PollInterval + cfg.DeployDelay)
	h = cp.Health()
	if h.FailOpen || h.Degraded {
		t.Fatalf("recovered: still degraded: %+v", h)
	}
	if h.ConsecutiveStale != 0 {
		t.Fatalf("recovered: consecutive-stale not reset: %+v", h)
	}
	if dp.QueueFor(heavy) != lowest {
		t.Fatalf("recovered: heavy cluster in queue %d, want %d", dp.QueueFor(heavy), lowest)
	}
	if got := cp.Deployments(); got != deployedBefore+1 {
		t.Fatalf("deployments after recovery = %d, want %d", got, deployedBefore+1)
	}
}

// TestGuardRecoversPanics: a panicking OnDeploy hook is absorbed by the
// callback boundary, surfaced in Health, and the loop keeps running.
func TestGuardRecoversPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PollInterval = 100 * eventsim.Millisecond
	cfg.DeployDelay = 10 * eventsim.Millisecond
	dp := NewDataplane(cfg, false)
	clk := &fakeClock{}
	cp := NewControlPlane(dp, clk, cfg)

	fired := 0
	cp.OnDeploy = func(*Decision) {
		fired++
		if fired == 1 {
			panic("synthetic deploy-hook failure")
		}
	}
	dp.Assign(mkPkt(1))
	cp.Start()
	defer cp.Stop()

	clk.advance(3*cfg.PollInterval + cfg.DeployDelay)
	if fired < 2 {
		t.Fatalf("loop died after the panic: OnDeploy fired %d times", fired)
	}
	h := cp.Health()
	if h.PanicsRecovered != 1 {
		t.Fatalf("panics recovered = %d, want 1", h.PanicsRecovered)
	}
	if !strings.Contains(h.LastPanic, "synthetic deploy-hook failure") {
		t.Fatalf("LastPanic = %q", h.LastPanic)
	}
	if cp.Deployments() < 2 {
		t.Fatalf("deployments = %d, want the loop to continue past the panic", cp.Deployments())
	}
}

// TestHealthBeforeStart: ages are -1 sentinels before any activity.
func TestHealthBeforeStart(t *testing.T) {
	cfg := DefaultConfig()
	dp := NewDataplane(cfg, false)
	cp := NewControlPlane(dp, &fakeClock{}, cfg)
	h := cp.Health()
	if h.PollAge != -1 || h.DecisionAge != -1 {
		t.Fatalf("pre-start ages: %+v", h)
	}
	if h.FailOpen || h.Degraded || h.LastPanic != "" {
		t.Fatalf("pre-start health not clean: %+v", h)
	}
}

// TestNewControlPlaneEInvalid: the error constructor rejects a bad
// config instead of panicking.
func TestNewControlPlaneEInvalid(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FailOpenAfter = -1
	if _, err := NewControlPlaneE(NewDataplane(DefaultConfig(), false), &fakeClock{}, cfg); err == nil {
		t.Fatal("negative FailOpenAfter accepted")
	}
}

// TestWallClockWatchdogUnderRace runs the degradation cycle on the real
// WallClock so the race detector sees the watchdog, the poll loop,
// concurrent Health() reads, and the fail-open deployment all at once.
// An artificially wedged poll loop (gated clock) stands in for a stall;
// timing assertions are deadline-polls, not exact, to stay robust on
// loaded CI machines.
func TestWallClockWatchdogUnderRace(t *testing.T) {
	var open atomic.Bool
	open.Store(true)

	cfg := DefaultConfig()
	cfg.PollInterval = 2 * eventsim.Millisecond
	cfg.DeployDelay = eventsim.Millisecond
	cfg.FailOpenAfter = 20 * eventsim.Millisecond
	cfg.WatchdogInterval = 2 * eventsim.Millisecond
	cfg.WrapClock = func(c Clock) Clock { return gateClock{Clock: c, open: &open} }
	dp := NewDataplane(cfg, true)
	clk := NewWallClock()
	defer clk.Close()
	cp, err := NewControlPlaneE(dp, clk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dp.Assign(mkPkt(1))
	cp.Start()
	defer cp.Stop()

	// Hammer Health from a second goroutine the whole time: the race
	// detector checks it never conflicts with the loop or watchdog.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10000; i++ {
			_ = cp.Health()
		}
	}()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; health %+v", what, cp.Health())
			}
			time.Sleep(time.Millisecond)
		}
	}

	waitFor("first deployment", func() bool { return cp.Deployments() > 0 })
	open.Store(false) // wedge the loop
	waitFor("fail-open", func() bool { return cp.Health().FailOpen })
	before := cp.Deployments()
	open.Store(true) // un-wedge
	waitFor("recovery", func() bool {
		h := cp.Health()
		return !h.FailOpen && cp.Deployments() > before
	})
	<-done

	if h := cp.Health(); h.FailOpenEngagements == 0 || h.MaxPollWallNs <= 0 {
		t.Fatalf("final health inconsistent: %+v", h)
	}
}
