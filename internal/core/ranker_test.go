package core

import (
	"testing"

	"accturbo/internal/cluster"
	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
)

// TestRankDecisionMatchesLocalStep pins the seam: a ControlPlane built
// without a Ranker must deploy exactly what the pure RankDecision
// helper computes from the same snapshot — the refactor moved the
// rank→map body, it must not have changed it.
func TestRankDecisionMatchesLocalStep(t *testing.T) {
	eng := eventsim.New()
	cfg := DefaultConfig()
	cfg = cfg.withDefaults()
	dp := NewDataplane(cfg, false)
	cp, err := NewControlPlaneE(dp, SimClock{Eng: eng}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp.Start()

	mk := func(sport uint16, n int) {
		for i := 0; i < n; i++ {
			p := &packet.Packet{
				SrcIP: packet.V4(10, 0, 0, 1), DstIP: packet.V4(10, 0, byte(i), 2),
				Protocol: packet.ProtoUDP, SrcPort: sport, DstPort: 53,
				TTL: 64, Length: 500,
			}
			dp.Classify(p)
		}
	}
	mk(1111, 3)
	mk(2222, 40)

	// Rank the same snapshot by hand before Step consumes the window.
	infos := dp.Snapshot()
	want := RankDecision(cfg.Ranking, infos, cfg.Clustering.MaxClusters, cfg.NumQueues,
		*dp.queueMap.Load(), eng.Now(), eng.Now()+cfg.DeployDelay)

	got := cp.Step(eng.Now())
	if got == nil {
		t.Fatal("Step returned nil with live clusters")
	}
	if len(got.QueueOf) != len(want.QueueOf) {
		t.Fatalf("queue map length %d != %d", len(got.QueueOf), len(want.QueueOf))
	}
	for i := range want.QueueOf {
		if got.QueueOf[i] != want.QueueOf[i] {
			t.Fatalf("slot %d: Step queue %d, RankDecision queue %d", i, got.QueueOf[i], want.QueueOf[i])
		}
	}
	for i := range want.Rank {
		if got.Rank[i] != want.Rank[i] {
			t.Fatalf("slot %d: Step rank %v, RankDecision rank %v", i, got.Rank[i], want.Rank[i])
		}
	}
}

// fixedRanker deploys a constant map and reports a degraded source —
// the shape of a fleet node on fallback.
type fixedRanker struct {
	queueOf  []int
	calls    int
	degraded bool
}

func (f *fixedRanker) Rank(now eventsim.Time, infos []cluster.Info, prev []int, rt RuntimeConfig) *Decision {
	f.calls++
	m := make([]int, len(prev))
	copy(m, f.queueOf)
	return &Decision{At: now, DeployedAt: now + rt.DeployDelay, Clusters: infos, Rank: make([]float64, len(prev)), QueueOf: m}
}
func (f *fixedRanker) Source() string        { return "test-fixed" }
func (f *fixedRanker) RankingDegraded() bool { return f.degraded }

// TestConfigRankerInjection verifies the seam end to end: a custom
// Ranker receives every poll, its map deploys after DeployDelay, and
// Health surfaces its Source and degraded bit plus the new
// ConfigGeneration/Ranking fields.
func TestConfigRankerInjection(t *testing.T) {
	eng := eventsim.New()
	cfg := DefaultConfig()
	fr := &fixedRanker{queueOf: []int{3, 3, 3, 3, 3, 3, 3, 3, 3, 3}}
	cfg.Ranker = fr
	turbo := New(eng, cfg)

	p := &packet.Packet{
		SrcIP: packet.V4(10, 0, 0, 1), DstIP: packet.V4(10, 0, 0, 2),
		Protocol: packet.ProtoUDP, SrcPort: 9, DstPort: 53, TTL: 64, Length: 500,
	}
	turbo.Dataplane().Classify(p)
	eng.RunUntil(eventsim.Second)

	if fr.calls == 0 {
		t.Fatal("injected ranker never invoked")
	}
	if got := turbo.QueueOf(0); got != 3 {
		t.Fatalf("cluster 0 in queue %d, want the injected map's 3", got)
	}
	h := turbo.ControlPlane().Health()
	if h.RankSource != "test-fixed" {
		t.Fatalf("RankSource %q, want test-fixed", h.RankSource)
	}
	if h.Ranking != cfg.Ranking.String() {
		t.Fatalf("Ranking %q, want %q", h.Ranking, cfg.Ranking.String())
	}
	if h.ConfigGeneration != 1 {
		t.Fatalf("ConfigGeneration %d, want 1", h.ConfigGeneration)
	}
	if h.Degraded {
		t.Fatal("not degraded yet")
	}
	fr.degraded = true
	if h := turbo.ControlPlane().Health(); !h.Degraded {
		t.Fatal("degraded ranker must surface in Health.Degraded")
	}
}
