package core

import (
	"testing"

	"accturbo/internal/packet"
)

// TestObserveBatchMatchesClassify: driving the same packet sequence
// through ObserveBatch (in chunks) and through per-packet Classify must
// produce identical queue choices, clusterer state, and aggregate
// counters. Batch grouping preserves each shard's observation order, so
// the two paths are the same computation.
func TestObserveBatchMatchesClassify(t *testing.T) {
	for _, shards := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.Shards = shards
		perPkt := NewDataplane(cfg, false)
		batched := NewDataplane(cfg, false)

		const n = 4096
		pkts := make([]*packet.Packet, n)
		for i := range pkts {
			pkts[i] = mkPkt(i)
		}
		wantQ := make([]int, n)
		for i, p := range pkts {
			_, wantQ[i] = perPkt.Classify(p)
		}
		gotQ := make([]int, n)
		// Uneven chunk sizes exercise the grouping across batch seams.
		for lo := 0; lo < n; {
			hi := lo + 1 + (lo % 97)
			if hi > n {
				hi = n
			}
			batched.ObserveBatch(pkts[lo:hi], gotQ[lo:hi])
			lo = hi
		}

		for i := range wantQ {
			if gotQ[i] != wantQ[i] {
				t.Fatalf("shards=%d: packet %d routed to queue %d via batch, %d via Classify",
					shards, i, gotQ[i], wantQ[i])
			}
		}
		if a, b := perPkt.Observed(), batched.Observed(); a != b {
			t.Fatalf("shards=%d: observed %d vs %d", shards, b, a)
		}
		wantA, gotA := perPkt.AssignedCounts(), batched.AssignedCounts()
		for i := range wantA {
			if gotA[i] != wantA[i] {
				t.Fatalf("shards=%d: assigned[%d] = %d via batch, %d via Classify", shards, i, gotA[i], wantA[i])
			}
		}
		wantR, gotR := perPkt.RoutedCounts(), batched.RoutedCounts()
		for i := range wantR {
			if gotR[i] != wantR[i] {
				t.Fatalf("shards=%d: routed[%d] = %d via batch, %d via Classify", shards, i, gotR[i], wantR[i])
			}
		}
		for s := 0; s < shards; s++ {
			a, b := perPkt.Clusterer(s).Snapshot(), batched.Clusterer(s).Snapshot()
			if len(a) != len(b) {
				t.Fatalf("shards=%d: shard %d cluster count %d vs %d", shards, s, len(b), len(a))
			}
		}
	}
}

// TestObserveBatchNilQueues: passing nil queues only skips the
// per-packet queue report; counters still advance.
func TestObserveBatchNilQueues(t *testing.T) {
	cfg := DefaultConfig()
	dp := NewDataplane(cfg, false)
	pkts := make([]*packet.Packet, 100)
	for i := range pkts {
		pkts[i] = mkPkt(i)
	}
	dp.ObserveBatch(pkts, nil)
	if dp.Observed() != 100 {
		t.Fatalf("observed %d, want 100", dp.Observed())
	}
	var routed uint64
	for _, c := range dp.RoutedCounts() {
		routed += c
	}
	if routed != 100 {
		t.Fatalf("routed total %d, want 100", routed)
	}
}

// TestObserveBatchShortQueuesPanics: a too-short queues slice is a
// caller bug and must fail loudly, not write out of bounds.
func TestObserveBatchShortQueuesPanics(t *testing.T) {
	dp := NewDataplane(DefaultConfig(), false)
	pkts := []*packet.Packet{mkPkt(1), mkPkt(2)}
	defer func() {
		if recover() == nil {
			t.Fatal("short queues slice did not panic")
		}
	}()
	dp.ObserveBatch(pkts, make([]int, 1))
}

// TestObserveBatchZeroAlloc is the unit gate on the batched per-packet
// path: once the clusterers and scratch are warm, classifying a batch
// allocates nothing, single- and multi-shard.
func TestObserveBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool retention; scratch reuse is not guaranteed")
	}
	for _, shards := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.Shards = shards
		dp := NewDataplane(cfg, false)
		pkts := make([]*packet.Packet, 256)
		for i := range pkts {
			pkts[i] = mkPkt(i)
		}
		queues := make([]int, len(pkts))
		dp.ObserveBatch(pkts, queues) // warm clusterers and scratch
		allocs := testing.AllocsPerRun(100, func() {
			dp.ObserveBatch(pkts, queues)
		})
		if allocs != 0 {
			t.Fatalf("shards=%d: ObserveBatch allocates %v per batch, want 0", shards, allocs)
		}
	}
}

func BenchmarkDataplaneObserveBatch(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Shards = 4
	dp := NewDataplane(cfg, false)
	pkts := make([]*packet.Packet, 256)
	for i := range pkts {
		pkts[i] = mkPkt(i)
	}
	queues := make([]int, len(pkts))
	dp.ObserveBatch(pkts, queues)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dp.ObserveBatch(pkts, queues)
	}
}
