package core

import (
	"testing"

	"accturbo/internal/cluster"
	"accturbo/internal/eventsim"
	"accturbo/internal/netsim"
	"accturbo/internal/packet"
	"accturbo/internal/queue"
	"accturbo/internal/traffic"
)

func TestConfigDefaultsAndValidation(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	d := cfg.withDefaults()
	if d.NumQueues != 10 || d.QueueBytes != 64<<10 {
		t.Fatalf("defaults: %+v", d)
	}
	hw := HardwareConfig()
	if err := hw.Validate(); err != nil {
		t.Fatal(err)
	}
	if hw.Clustering.MaxClusters != 4 {
		t.Errorf("hardware prototype supports 4 clusters, got %d", hw.Clustering.MaxClusters)
	}

	bad := []func(*Config){
		func(c *Config) { c.Clustering.MaxClusters = 0 },
		func(c *Config) { c.PollInterval = 0 },
		func(c *Config) { c.PollInterval = -1 },
		func(c *Config) { c.DeployDelay = 0 },
		func(c *Config) { c.DeployDelay = -1 },
		func(c *Config) { c.NumQueues = -1 },
		func(c *Config) { c.Shards = -1 },
		func(c *Config) { c.Ranking = Ranking(99) },
		func(c *Config) { c.ReseedInterval = -1 },
		func(c *Config) { c.FailOpenAfter = -1 },
		func(c *Config) { c.WatchdogInterval = -1 },
	}
	for i, m := range bad {
		cfg := DefaultConfig()
		m(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d should fail", i)
		}
	}
}

func TestRankingStrings(t *testing.T) {
	want := map[Ranking]string{
		ByThroughput: "Th.", ByPacketRate: "N.P.",
		ByThroughputOverSize: "Th./Size", ByPacketRateOverSize: "N.P./Size",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), s)
		}
	}
}

func benign(i byte) traffic.FlowSpec {
	return traffic.FlowSpec{
		SrcIP: packet.V4Addr{1, 2, 3, i}, DstIP: packet.V4Addr{10, 0, i, 1},
		Protocol: packet.ProtoUDP, SrcPort: 5000, DstPort: 443, TTL: 64, Size: 500,
		Label: packet.Benign, FlowID: uint32(i),
	}
}

func attack() traffic.FlowSpec {
	return traffic.FlowSpec{
		SrcIP: packet.V4Addr{99, 9, 9, 9}, DstIP: packet.V4Addr{10, 0, 99, 1},
		Protocol: packet.ProtoUDP, SrcPort: 123, DstPort: 80, TTL: 54, Size: 500,
		Label: packet.Malicious, Vector: "UDP", FlowID: 5,
	}
}

// runTurbo replays src through an ACC-Turbo port.
func runTurbo(cfg Config, src traffic.Source, rate float64, until eventsim.Time) (*netsim.Recorder, *Turbo) {
	eng := eventsim.New()
	rec := netsim.NewRecorder(eventsim.Second)
	port, turbo := Attach(eng, rate, rec, cfg)
	netsim.Replay(eng, src, port)
	eng.RunUntil(until)
	return rec, turbo
}

func fourClusterConfig() Config {
	cfg := DefaultConfig()
	cfg.Clustering = cluster.DefaultConfig(4, packet.FeatureSet{
		packet.FDstIPByte2, packet.FDstIPByte3, packet.FSrcPort, packet.FDstPort,
	})
	return cfg
}

func TestTurboDeprioritizesFlood(t *testing.T) {
	cfg := fourClusterConfig()
	src := traffic.Merge(
		traffic.NewCBR(0, 20*eventsim.Second, 3e6, benign(1).Factory(1)),
		traffic.NewCBR(0, 20*eventsim.Second, 3e6, benign(2).Factory(2)),
		traffic.NewCBR(2*eventsim.Second, 20*eventsim.Second, 40e6, attack().Factory(3)),
	)
	rec, turbo := runTurbo(cfg, src, 10e6, 19*eventsim.Second+eventsim.Second/2)

	if turbo.Deployments == 0 {
		t.Fatal("controller never deployed a mapping")
	}
	// Benign traffic keeps its throughput: overload is absorbed by the
	// attack's low-priority queue.
	if rec.BenignDropPercent() > 5 {
		t.Fatalf("benign drop %% = %v", rec.BenignDropPercent())
	}
	if rec.MaliciousDropPercent() < 50 {
		t.Fatalf("attack drop %% = %v, want most of a 4x flood shed", rec.MaliciousDropPercent())
	}
	// The attack cluster must sit in a strictly lower-priority queue
	// than at least one benign cluster.
	dec := turbo.LastDecision
	if dec == nil {
		t.Fatal("no decision recorded")
	}
	var attackQ, bestBenignQ = -1, 1 << 30
	for _, info := range dec.Clusters {
		q := dec.QueueOf[info.ID]
		if info.Malicious > info.Benign {
			if q > attackQ {
				attackQ = q
			}
		} else if q < bestBenignQ {
			bestBenignQ = q
		}
	}
	if attackQ < 0 {
		t.Fatal("no majority-malicious cluster in final decision")
	}
	if attackQ <= bestBenignQ {
		t.Fatalf("attack queue %d not deprioritized vs benign queue %d", attackQ, bestBenignQ)
	}
}

func TestTurboTransparentWithoutCongestion(t *testing.T) {
	cfg := fourClusterConfig()
	src := traffic.Merge(
		traffic.NewCBR(0, 10*eventsim.Second, 2e6, benign(1).Factory(1)),
		traffic.NewCBR(0, 10*eventsim.Second, 2e6, benign(2).Factory(2)),
	)
	rec, _ := runTurbo(cfg, src, 10e6, 12*eventsim.Second)
	if rec.DroppedBenign() != 0 {
		t.Fatalf("ACC-Turbo dropped %d packets without congestion", rec.DroppedBenign())
	}
	if rec.DeliveredBenignPkts() != rec.ArrivedBenign() {
		t.Fatal("not all packets delivered under no congestion")
	}
}

func TestReactionWithinControllerPeriod(t *testing.T) {
	cfg := fourClusterConfig()
	cfg.PollInterval = 100 * eventsim.Millisecond
	cfg.DeployDelay = 50 * eventsim.Millisecond

	src := traffic.Merge(
		traffic.NewCBR(0, 12*eventsim.Second, 6e6, benign(1).Factory(1)),
		traffic.NewCBR(5*eventsim.Second, 12*eventsim.Second, 60e6, attack().Factory(3)),
	)
	rec, _ := runTurbo(cfg, src, 10e6, 14*eventsim.Second)

	// Benign throughput must stay near its baseline in every full
	// second after the attack starts: sub-second reaction means no
	// visible dent at 1 s granularity.
	series := rec.DeliveredBits(packet.Benign)
	for i := 6; i < 11; i++ {
		if series[i] < 0.8*6e6 {
			t.Fatalf("benign dip at %ds: %v bps (reaction too slow)", i, series[i])
		}
	}
}

func TestDeployDelayDefersMapping(t *testing.T) {
	cfg := fourClusterConfig()
	cfg.PollInterval = eventsim.Second
	cfg.DeployDelay = 10 * eventsim.Second // pathological controller

	src := traffic.Merge(
		traffic.NewCBR(0, 5*eventsim.Second, 6e6, benign(1).Factory(1)),
		traffic.NewCBR(0, 5*eventsim.Second, 40e6, attack().Factory(3)),
	)
	_, turbo := runTurbo(cfg, src, 10e6, 3*eventsim.Second)
	if turbo.Deployments != 0 {
		t.Fatalf("%d deployments before the deploy delay elapsed", turbo.Deployments)
	}
}

func TestRankingsOrderClusters(t *testing.T) {
	// Small vs large packets at equal byte rate: ByPacketRate ranks the
	// small-packet cluster higher, ByThroughput ties them.
	mk := func(r Ranking) []float64 {
		cfg := fourClusterConfig()
		cfg.Ranking = r
		small := benign(1)
		small.Size = 100
		large := benign(2)
		large.Size = 1000
		src := traffic.Merge(
			traffic.NewCBR(0, 2*eventsim.Second, 4e6, small.Factory(1)),
			traffic.NewCBR(0, 2*eventsim.Second, 4e6, large.Factory(2)),
		)
		_, turbo := runTurbo(cfg, src, 100e6, 2*eventsim.Second-eventsim.Second/20)
		if turbo.LastDecision == nil {
			t.Fatal("no decision")
		}
		return turbo.LastDecision.Rank
	}
	pr := mk(ByPacketRate)
	// Cluster 0 is the small-packet flow (seeded first): 10x the
	// packet rate of cluster 1.
	if pr[0] <= pr[1]*5 {
		t.Fatalf("packet-rate ranks: %v", pr)
	}
	th := mk(ByThroughput)
	ratio := th[0] / th[1]
	if ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("throughput ranks should tie: %v", th)
	}
}

func TestSizeNormalizedRankingPrefersTightClusters(t *testing.T) {
	cfg := fourClusterConfig()
	cfg.Ranking = ByThroughputOverSize
	// Attack: fixed header values (tight cluster). Benign: spread
	// destinations (broad cluster), same rate.
	broad := benign(1)
	broad.DstHostBits = 16
	src := traffic.Merge(
		traffic.NewCBR(0, 2*eventsim.Second, 5e6, broad.Factory(1)),
		traffic.NewCBR(0, 2*eventsim.Second, 5e6, attack().Factory(2)),
	)
	_, turbo := runTurbo(cfg, src, 100e6, 2*eventsim.Second-eventsim.Second/20)
	dec := turbo.LastDecision
	if dec == nil {
		t.Fatal("no decision")
	}
	// Find the attack cluster (majority malicious in final stats may
	// be reset; use cumulative assignment via queue mapping instead):
	// tight cluster must have the higher rank.
	var tightRank, broadRank float64 = -1, -1
	for _, info := range dec.Clusters {
		if info.Malicious > 0 {
			tightRank = dec.Rank[info.ID]
		} else if info.TotalPackets > 0 {
			broadRank = dec.Rank[info.ID]
		}
	}
	if tightRank <= broadRank {
		t.Fatalf("tight attack cluster rank %v !> broad benign rank %v", tightRank, broadRank)
	}
}

func TestFewerQueuesThanClusters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Clustering = cluster.DefaultConfig(8, packet.FeatureSet{packet.FDstIPByte2, packet.FDstIPByte3})
	cfg.NumQueues = 2
	var srcs []traffic.Source
	for i := byte(1); i <= 8; i++ {
		srcs = append(srcs, traffic.NewCBR(0, eventsim.Second, 1e6, benign(i).Factory(int64(i))))
	}
	_, turbo := runTurbo(cfg, traffic.Merge(srcs...), 100e6, eventsim.Second-eventsim.Second/20)
	dec := turbo.LastDecision
	if dec == nil {
		t.Fatal("no decision")
	}
	for id, q := range dec.QueueOf {
		if q < 0 || q >= 2 {
			t.Fatalf("cluster %d mapped to queue %d with 2 queues", id, q)
		}
	}
}

func TestReseedClearsClusters(t *testing.T) {
	cfg := fourClusterConfig()
	cfg.ReseedInterval = eventsim.Second
	src := traffic.NewCBR(0, eventsim.Second/2, 2e6, benign(1).Factory(1))
	eng := eventsim.New()
	port, turbo := Attach(eng, 10e6, nil, cfg)
	netsim.Replay(eng, src, port)
	eng.RunUntil(eventsim.Second / 2)
	if turbo.Clusterer().NumClusters() == 0 {
		t.Fatal("no clusters formed")
	}
	eng.RunUntil(2 * eventsim.Second)
	if turbo.Clusterer().NumClusters() != 0 {
		t.Fatal("reseed did not clear clusters")
	}
}

func TestOnAssignHook(t *testing.T) {
	cfg := fourClusterConfig()
	eng := eventsim.New()
	port, turbo := Attach(eng, 10e6, nil, cfg)
	n := 0
	turbo.OnAssign = func(now eventsim.Time, p *packet.Packet, a cluster.Assignment) {
		n++
		if a.Cluster < 0 || a.Cluster >= 4 {
			t.Fatalf("assignment out of range: %+v", a)
		}
	}
	netsim.Replay(eng, traffic.NewCBR(0, eventsim.Second/10, 4e6, benign(1).Factory(1)), port)
	eng.RunUntil(eventsim.Second / 5)
	if n == 0 {
		t.Fatal("hook never fired")
	}
}

func TestClassifyDirectQdiscUse(t *testing.T) {
	// Enqueueing into the qdisc without the ingress stage must still
	// classify correctly (defensive path).
	cfg := fourClusterConfig()
	eng := eventsim.New()
	turbo := New(eng, cfg)
	p := &packet.Packet{
		SrcIP: packet.V4(1, 1, 1, 1), DstIP: packet.V4(2, 2, 2, 2),
		Length: 500, Protocol: packet.ProtoUDP,
	}
	if got := turbo.Qdisc().Enqueue(0, p); got != queue.DropNone {
		t.Fatalf("enqueue failed: %v", got)
	}
	if turbo.Clusterer().NumClusters() != 1 {
		t.Fatal("direct enqueue did not cluster the packet")
	}
	if turbo.QueueOf(0) != 0 {
		t.Fatal("known cluster should start at queue 0")
	}
}

func TestUnknownClusterRoutesToLowestPriority(t *testing.T) {
	// A cluster ID outside the controller's mapping must never land in
	// queue 0 (the highest priority): a misrouted or corrupted ID would
	// otherwise hand an attacker the best service class by default.
	cfg := fourClusterConfig()
	eng := eventsim.New()
	turbo := New(eng, cfg)
	lowest := turbo.Config().NumQueues - 1
	for _, id := range []int{-1, 4, 99} {
		if q := turbo.QueueOf(id); q != lowest {
			t.Fatalf("QueueOf(%d) = %d, want lowest-priority queue %d", id, q, lowest)
		}
	}
	if q := turbo.Dataplane().QueueFor(99); q != lowest {
		t.Fatalf("QueueFor(99) = %d, want %d", q, lowest)
	}
}

func TestDecisionSnapshotImmutable(t *testing.T) {
	// Decision.Clusters must be a deep copy: observing more packets
	// after the decision was formed may not change what the stored
	// snapshot reports.
	cfg := fourClusterConfig()
	src := traffic.Merge(
		traffic.NewCBR(0, 2*eventsim.Second, 3e6, benign(1).Factory(1)),
		traffic.NewCBR(0, 2*eventsim.Second, 30e6, attack().Factory(2)),
	)
	_, turbo := runTurbo(cfg, src, 10e6, eventsim.Second)
	dec := turbo.LastDecision
	if dec == nil {
		t.Fatal("no decision")
	}
	before := make([]cluster.Info, len(dec.Clusters))
	for i, info := range dec.Clusters {
		before[i] = info
		before[i].Ranges = append([]cluster.Range(nil), info.Ranges...)
	}
	// Mutate the live clusterer heavily: new packets widen ranges and
	// bump counters.
	for i := 0; i < 1000; i++ {
		p := &packet.Packet{
			SrcIP: packet.V4(byte(i), byte(i>>8), 3, 4), DstIP: packet.V4(byte(i*7), 5, byte(i), 9),
			Length: 900, Protocol: packet.ProtoUDP, SrcPort: uint16(i), DstPort: uint16(i * 3),
		}
		turbo.Dataplane().Assign(p)
	}
	for i, info := range dec.Clusters {
		if info.Packets != before[i].Packets || info.Bytes != before[i].Bytes {
			t.Fatalf("cluster %d counters mutated after the fact", info.ID)
		}
		for f, r := range info.Ranges {
			if r != before[i].Ranges[f] {
				t.Fatalf("cluster %d range %d mutated: %+v -> %+v", info.ID, f, before[i].Ranges[f], r)
			}
		}
	}
}

func BenchmarkTurboPipeline(b *testing.B) {
	cfg := DefaultConfig()
	eng := eventsim.New()
	port, _ := Attach(eng, 1e12, nil, cfg)
	f := attack().Factory(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := &packet.Packet{}
		f(uint64(i), 0, p)
		port.Inject(eventsim.Time(i), p)
		if i%64 == 0 {
			eng.RunUntil(eventsim.Time(i))
		}
	}
}
