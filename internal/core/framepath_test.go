package core

import (
	"testing"

	"accturbo/internal/packet"
)

// mkFrames marshals n mkPkt packets to wire frames and parses them into
// views, returning both representations of the same stream.
func mkFrames(t testing.TB, n int) ([]*packet.Packet, []packet.FrameView) {
	t.Helper()
	pkts := make([]*packet.Packet, n)
	views := make([]packet.FrameView, n)
	for i := range pkts {
		wire, err := mkPkt(i).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		// Re-unmarshal so the packet side carries exactly what the wire
		// carries (labels and sim-only fields do not survive a frame).
		p, err := packet.Unmarshal(wire)
		if err != nil {
			t.Fatal(err)
		}
		v, err := packet.ParseFrame(wire)
		if err != nil {
			t.Fatal(err)
		}
		pkts[i], views[i] = p, v
	}
	return pkts, views
}

// toFeatures reduces parsed views to the FrameFeatures records the
// ingest producer hands the shard consumers.
func toFeatures(cfg Config, views []packet.FrameView) []FrameFeatures {
	fs := cfg.Clustering.Features
	out := make([]FrameFeatures, len(views))
	for i := range views {
		v := &views[i]
		out[i].Size = uint32(v.Length())
		v.Features(fs, out[i].Vals[:len(fs)])
	}
	return out
}

// TestShardOfFrameMatchesShardOf: a frame and the packet unmarshaled
// from it must demux to the same shard — the invariant that keeps flows
// shard-affine across the struct and frame ingest paths.
func TestShardOfFrameMatchesShardOf(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 4
	dp := NewDataplane(cfg, false)
	pkts, views := mkFrames(t, 512)
	for i := range pkts {
		if a, b := dp.ShardOf(pkts[i]), dp.ShardOfFrame(&views[i]); a != b {
			t.Fatalf("packet %d: shard %d via struct, %d via frame", i, a, b)
		}
	}
}

// TestObserveShardFramesMatchesObserveBatch drives the same wire stream
// through ObserveBatch (struct path) and through per-shard
// ObserveShardFrames (fused frame path, demuxed the way the ring
// consumers demux) and requires identical queue decisions, counters,
// and cluster state.
func TestObserveShardFramesMatchesObserveBatch(t *testing.T) {
	for _, shards := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.Shards = shards
		structSide := NewDataplane(cfg, false)
		frameSide := NewDataplane(cfg, false)

		const n = 4096
		pkts, views := mkFrames(t, n)
		wantQ := make([]int, n)
		structSide.ObserveBatch(pkts, wantQ)

		// Demux frames to shards preserving stream order, as the ring
		// consumers see them, then feed each shard in uneven chunks.
		ffs := toFeatures(cfg, views)
		bySh := make([][]FrameFeatures, shards)
		origIdx := make([][]int, shards)
		for i := range views {
			si := frameSide.ShardOfFrame(&views[i])
			bySh[si] = append(bySh[si], ffs[i])
			origIdx[si] = append(origIdx[si], i)
		}
		gotQ := make([]int, n)
		for si := range bySh {
			seg, idx := bySh[si], origIdx[si]
			qbuf := make([]int, len(seg))
			for lo := 0; lo < len(seg); {
				hi := lo + 1 + (lo % 61)
				if hi > len(seg) {
					hi = len(seg)
				}
				frameSide.ObserveShardFrames(si, seg[lo:hi], qbuf[lo:hi])
				lo = hi
			}
			for j, q := range qbuf {
				gotQ[idx[j]] = q
			}
		}

		for i := range wantQ {
			if gotQ[i] != wantQ[i] {
				t.Fatalf("shards=%d: packet %d queued %d via frames, %d via structs",
					shards, i, gotQ[i], wantQ[i])
			}
		}
		if a, b := structSide.Observed(), frameSide.Observed(); a != b {
			t.Fatalf("shards=%d: observed %d via frames, %d via structs", shards, b, a)
		}
		wantA, gotA := structSide.AssignedCounts(), frameSide.AssignedCounts()
		for i := range wantA {
			if gotA[i] != wantA[i] {
				t.Fatalf("shards=%d: assigned[%d] = %d via frames, %d via structs", shards, i, gotA[i], wantA[i])
			}
		}
		wantR, gotR := structSide.RoutedCounts(), frameSide.RoutedCounts()
		for i := range wantR {
			if gotR[i] != wantR[i] {
				t.Fatalf("shards=%d: routed[%d] = %d via frames, %d via structs", shards, i, gotR[i], wantR[i])
			}
		}
		for s := 0; s < shards; s++ {
			a, b := structSide.Clusterer(s).Snapshot(), frameSide.Clusterer(s).Snapshot()
			if len(a) != len(b) {
				t.Fatalf("shards=%d: shard %d has %d clusters via frames, %d via structs", shards, s, len(b), len(a))
			}
			for i := range a {
				if a[i].Packets != b[i].Packets || a[i].Bytes != b[i].Bytes || a[i].Size != b[i].Size {
					t.Fatalf("shards=%d: shard %d cluster %d diverged: %+v vs %+v", shards, s, i, b[i], a[i])
				}
				for f := range a[i].Ranges {
					if a[i].Ranges[f] != b[i].Ranges[f] {
						t.Fatalf("shards=%d: shard %d cluster %d range %d diverged", shards, s, i, f)
					}
				}
			}
		}
	}
}

// TestObserveShardPacketsMatchesObserveBatch: the pre-demuxed struct
// entry point must match ObserveBatch the same way.
func TestObserveShardPacketsMatchesObserveBatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 4
	batched := NewDataplane(cfg, false)
	perShard := NewDataplane(cfg, false)

	const n = 2048
	pkts := make([]*packet.Packet, n)
	for i := range pkts {
		pkts[i] = mkPkt(i)
	}
	wantQ := make([]int, n)
	batched.ObserveBatch(pkts, wantQ)

	bySh := make([][]*packet.Packet, cfg.Shards)
	origIdx := make([][]int, cfg.Shards)
	for i, p := range pkts {
		si := perShard.ShardOf(p)
		bySh[si] = append(bySh[si], p)
		origIdx[si] = append(origIdx[si], i)
	}
	gotQ := make([]int, n)
	for si := range bySh {
		qbuf := make([]int, len(bySh[si]))
		perShard.ObserveShardPackets(si, bySh[si], qbuf)
		for j, q := range qbuf {
			gotQ[origIdx[si][j]] = q
		}
	}
	for i := range wantQ {
		if gotQ[i] != wantQ[i] {
			t.Fatalf("packet %d queued %d per-shard, %d batched", i, gotQ[i], wantQ[i])
		}
	}
	if a, b := batched.Observed(), perShard.Observed(); a != b {
		t.Fatalf("observed %d per-shard, %d batched", b, a)
	}
}

// TestObserveShardFramesZeroAlloc gates the frame consumer hot path:
// once the scratch pool is warm, classifying a frame batch allocates
// nothing.
func TestObserveShardFramesZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	cfg := DefaultConfig()
	cfg.Shards = 1
	dp := NewDataplane(cfg, true)
	_, views := mkFrames(t, 256)
	ffs := toFeatures(cfg, views)
	queues := make([]int, len(ffs))
	dp.ObserveShardFrames(0, ffs, queues)
	allocs := testing.AllocsPerRun(100, func() {
		dp.ObserveShardFrames(0, ffs, queues)
	})
	if allocs != 0 {
		t.Fatalf("ObserveShardFrames allocates %v per batch, want 0", allocs)
	}
}
