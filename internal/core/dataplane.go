package core

import (
	"sync"

	"accturbo/internal/cluster"
	"accturbo/internal/packet"
	"accturbo/internal/telemetry"
)

// Dataplane is the per-packet half of ACC-Turbo: feature extraction →
// cluster assignment → queue classification. It owns no timers and has
// no dependency on any clock or engine — state changes only when a
// packet is offered (Assign/Classify) or when the control plane pushes
// a decision in (Deploy, ResetStats, Reseed).
//
// The pipeline is sharded like a multi-pipe Tofino (§7.1 runs one
// clusterer per pipeline): packets are demuxed to one of N independent
// clusterers by an RSS-style flow hash, so packets of the same flow
// always meet the same clusterer. Cluster slot IDs are a shared
// namespace across shards — slot i of every shard feeds the same row of
// the deployed queue mapping, exactly as the per-pipe register copies
// on hardware share one controller-installed mapping.
//
// Concurrency contract: with concurrent=false (the deterministic
// simulator path) the Dataplane must be driven from a single goroutine
// and the hot path takes no locks. With concurrent=true each shard is
// guarded by its own mutex, the queue mapping is swapped atomically,
// and Assign/Classify are safe from any number of goroutines; the
// clusterer hot path itself stays lock-free — callers that demux
// flow-affine traffic one goroutine per shard (RSS) never contend.
type Dataplane struct {
	cfg        Config
	shards     []*shard
	concurrent bool

	// queueMap is the live cluster-slot→queue mapping installed by the
	// control plane. Readers load it atomically; Deploy swaps it whole,
	// so a packet sees either the old or the new mapping, never a mix.
	// The Hot generation counts deployments since construction.
	queueMap Hot[[]int]

	// assigned counts packets per cluster slot, routed counts packets
	// per priority queue. Both are stripe-padded so concurrent writers
	// rarely share a cache line: each shard owns countStripes stripes
	// and a packet picks one by a cheap header hint, which also spreads
	// the multiple ingest goroutines feeding one shard. Reads aggregate
	// across all stripes lock-free.
	assigned *telemetry.VecCounter
	routed   *telemetry.VecCounter

	// scratch recycles ObserveBatch working memory across batches (and,
	// in concurrent mode, across ingest goroutines).
	scratch sync.Pool
}

// batchScratch is ObserveBatch's reusable working memory: the
// counting-sort buffers that group a batch by shard, and the per-batch
// count accumulators flushed to the telemetry stripes once per shard
// run instead of once per packet.
type batchScratch struct {
	idx      []int32  // packet indices, grouped by shard
	shard    []int32  // per-packet shard, computed once
	segStart []int32  // per-shard segment start in idx
	segLen   []int32  // per-shard segment length
	fill     []int32  // per-shard fill cursor during grouping
	assigned []uint64 // per-cluster-slot counts for the current shard run
	routed   []uint64 // per-queue counts for the current shard run
}

// countStripes is the number of counter stripes per shard. Power of
// two; the stripe hint masks against it.
const countStripes = 8

// stripeOf picks the counter stripe for a packet on shard si: the
// shard's stripe block, sub-striped by the source port's low bits so
// concurrent writers to one shard spread across cache lines. Any value
// is correct — stripes only partition the same aggregated total.
func stripeOf(si int, p *packet.Packet) int {
	return stripeOfPort(si, p.SrcPort)
}

// stripeOfPort is stripeOf keyed directly by a source port, for the
// frame path where no Packet exists.
func stripeOfPort(si int, sport uint16) int {
	return si*countStripes + int(sport)&(countStripes-1)
}

// shard is one independent clustering pipeline. The mutex is only taken
// in concurrent mode. The padding keeps neighbouring shards' write-hot
// state (mutex, clusterer pointer targets) on distinct cache lines.
type shard struct {
	mu        sync.Mutex
	clusterer *cluster.Online
	_         [40]byte // pad to a cache line past the mutex
}

// NewDataplane builds the per-packet pipeline with cfg.Shards clusterer
// shards (minimum 1). concurrent selects the locking mode documented on
// Dataplane. It panics on an invalid configuration, like the other
// constructors in this package.
func NewDataplane(cfg Config, concurrent bool) *Dataplane {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	d := &Dataplane{
		cfg:        cfg,
		concurrent: concurrent,
		assigned:   telemetry.NewVecCounter(cfg.Clustering.MaxClusters, n*countStripes),
		routed:     telemetry.NewVecCounter(cfg.NumQueues, n*countStripes),
	}
	for i := 0; i < n; i++ {
		d.shards = append(d.shards, &shard{clusterer: cluster.NewOnline(cfg.Clustering)})
	}
	d.scratch.New = func() any {
		return &batchScratch{
			segStart: make([]int32, n),
			segLen:   make([]int32, n),
			fill:     make([]int32, n),
			assigned: make([]uint64, cfg.Clustering.MaxClusters),
			routed:   make([]uint64, cfg.NumQueues),
		}
	}
	qm := make([]int, cfg.Clustering.MaxClusters)
	d.queueMap.Store(&qm)
	return d
}

// Config returns the (defaulted) configuration.
func (d *Dataplane) Config() Config { return d.cfg }

// NumShards returns the number of clustering pipelines.
func (d *Dataplane) NumShards() int { return len(d.shards) }

// Clusterer exposes shard s's online clusterer for read-only
// inspection. In concurrent mode the caller must not touch it while
// packets are in flight.
func (d *Dataplane) Clusterer(s int) *cluster.Online { return d.shards[s].clusterer }

// ShardOf returns the shard index packet p demuxes to: an FNV-1a hash
// over the flow 5-tuple, so all packets of a flow — and therefore all
// packets of a tight aggregate — meet the same clusterer.
func (d *Dataplane) ShardOf(p *packet.Packet) int {
	if len(d.shards) == 1 {
		return 0
	}
	return int(flowHash(p) % uint32(len(d.shards)))
}

// flowHash is FNV-1a over (src IP, dst IP, proto, sport, dport). It is
// the struct-side twin of packet.FrameView.FlowHash, so a frame and the
// packet unmarshaled from it always demux to the same shard.
func flowHash(p *packet.Packet) uint32 {
	return packet.FlowHash(p)
}

// ShardOfFrame is ShardOf for a raw frame view: the same flow hash over
// the same 5-tuple, read straight from the frame bytes.
func (d *Dataplane) ShardOfFrame(v *packet.FrameView) int {
	if len(d.shards) == 1 {
		return 0
	}
	return int(v.FlowHash() % uint32(len(d.shards)))
}

// Assign runs the clustering stage for one packet on its shard and
// returns the explicit assignment — the value the caller threads to
// QueueFor (or Classify does both). There is no implicit carry-over
// between calls.
func (d *Dataplane) Assign(p *packet.Packet) cluster.Assignment {
	return d.assignOn(d.ShardOf(p), p)
}

// assignOn runs the clustering stage on a known shard, counting the
// assignment on one of the shard's telemetry stripes.
func (d *Dataplane) assignOn(si int, p *packet.Packet) cluster.Assignment {
	s := d.shards[si]
	var a cluster.Assignment
	if !d.concurrent {
		a = s.clusterer.Observe(p)
	} else {
		s.mu.Lock()
		a = s.clusterer.Observe(p)
		s.mu.Unlock()
	}
	d.assigned.Add(stripeOf(si, p), a.Cluster, 1)
	return a
}

// QueueFor maps an assigned cluster slot to its live priority queue.
// Unknown or out-of-range slots (a packet observed against a clusterer
// generation the controller has not seen yet, or a corrupted ID) route
// to the lowest-priority queue — never to queue 0, which would hand an
// attacker the highest priority by default.
func (d *Dataplane) QueueFor(clusterID int) int {
	return d.queueIn(*d.queueMap.Load(), clusterID)
}

// queueIn is QueueFor against an already-loaded mapping, so batch
// processing loads the atomic pointer once per batch instead of once
// per packet.
func (d *Dataplane) queueIn(qm []int, clusterID int) int {
	if clusterID < 0 || clusterID >= len(qm) {
		return d.cfg.NumQueues - 1
	}
	return qm[clusterID]
}

// Classify is the full per-packet data-plane step: assign, then look up
// the queue under the live mapping. The queue choice is counted on the
// shard's routing stripe (RoutedCounts).
func (d *Dataplane) Classify(p *packet.Packet) (cluster.Assignment, int) {
	si := d.ShardOf(p)
	a := d.assignOn(si, p)
	q := d.QueueFor(a.Cluster)
	d.routed.Add(stripeOf(si, p), q, 1)
	return a, q
}

// ObserveBatch runs the full per-packet step (assign → queue lookup →
// count) over a batch, amortizing what Classify pays per packet: the
// queue mapping is loaded once, each shard's lock (concurrent mode) is
// taken once per batch, and the telemetry stripes receive one flush
// per shard run instead of two atomic adds per packet. Packets are
// grouped by flow-hash shard first, so each shard's clusterer sees its
// packets in batch order — the same order the per-packet path would
// deliver.
//
// When queues is non-nil it must be at least len(pkts) long; entry i
// receives packet i's priority queue. The aggregate counters
// (AssignedCounts, RoutedCounts, Observed) advance exactly as if every
// packet had gone through Classify.
func (d *Dataplane) ObserveBatch(pkts []*packet.Packet, queues []int) {
	n := len(pkts)
	if n == 0 {
		return
	}
	if queues != nil && len(queues) < n {
		panic("core: ObserveBatch queues shorter than pkts")
	}
	qm := *d.queueMap.Load()
	sc := d.scratch.Get().(*batchScratch)

	if len(d.shards) == 1 {
		// Single pipeline: no grouping pass needed.
		d.runShard(0, pkts, nil, queues, qm, sc)
		d.scratch.Put(sc)
		return
	}

	// Group packet indices by shard with a counting sort; the flow hash
	// is computed once per packet.
	if cap(sc.idx) < n {
		sc.idx = make([]int32, n)
		sc.shard = make([]int32, n)
	}
	sc.idx = sc.idx[:n]
	sc.shard = sc.shard[:n]
	ns := uint32(len(d.shards))
	for i := range sc.segLen {
		sc.segLen[i] = 0
	}
	for i, p := range pkts {
		si := int32(flowHash(p) % ns)
		sc.shard[i] = si
		sc.segLen[si]++
	}
	off := int32(0)
	for si := range sc.segStart {
		sc.segStart[si] = off
		sc.fill[si] = off
		off += sc.segLen[si]
	}
	for i := range pkts {
		si := sc.shard[i]
		sc.idx[sc.fill[si]] = int32(i)
		sc.fill[si]++
	}
	for si := range d.shards {
		if sc.segLen[si] == 0 {
			continue
		}
		seg := sc.idx[sc.segStart[si] : sc.segStart[si]+sc.segLen[si]]
		d.runShard(si, pkts, seg, queues, qm, sc)
	}
	d.scratch.Put(sc)
}

// runShard observes one shard's slice of a batch and flushes the
// accumulated counts to one of the shard's telemetry stripes. seg is
// the packet-index segment for this shard, or nil for "all of pkts"
// (the single-shard fast path). The stripe is picked from the run's
// first packet — stripes only partition the same aggregated total, so
// any choice is correct.
func (d *Dataplane) runShard(si int, pkts []*packet.Packet, seg []int32, queues []int, qm []int, sc *batchScratch) {
	s := d.shards[si]
	if d.concurrent {
		s.mu.Lock()
	}
	if seg == nil {
		for i, p := range pkts {
			a := s.clusterer.Observe(p)
			sc.assigned[a.Cluster]++
			q := d.queueIn(qm, a.Cluster)
			sc.routed[q]++
			if queues != nil {
				queues[i] = q
			}
		}
	} else {
		for _, i := range seg {
			p := pkts[i]
			a := s.clusterer.Observe(p)
			sc.assigned[a.Cluster]++
			q := d.queueIn(qm, a.Cluster)
			sc.routed[q]++
			if queues != nil {
				queues[i] = q
			}
		}
	}
	if d.concurrent {
		s.mu.Unlock()
	}
	var first *packet.Packet
	if seg == nil {
		first = pkts[0]
	} else {
		first = pkts[seg[0]]
	}
	d.flushCounts(stripeOf(si, first), sc)
}

// flushCounts drains a scratch's per-run count accumulators onto one
// telemetry stripe, zeroing them for the next run.
func (d *Dataplane) flushCounts(stripe int, sc *batchScratch) {
	for c, cnt := range sc.assigned {
		if cnt != 0 {
			d.assigned.Add(stripe, c, cnt)
			sc.assigned[c] = 0
		}
	}
	for q, cnt := range sc.routed {
		if cnt != 0 {
			d.routed.Add(stripe, q, cnt)
			sc.routed[q] = 0
		}
	}
}

// ObserveShardPackets runs the full per-packet step over a batch whose
// packets are already known to demux to shard si — the per-shard ring
// consumer path, which skips ObserveBatch's grouping pass entirely. The
// caller is responsible for the demux invariant (ShardOf(p) == si for
// every packet); breaking it silently degrades clustering quality but
// nothing else. queues follows the ObserveBatch contract.
func (d *Dataplane) ObserveShardPackets(si int, pkts []*packet.Packet, queues []int) {
	n := len(pkts)
	if n == 0 {
		return
	}
	if queues != nil && len(queues) < n {
		panic("core: ObserveShardPackets queues shorter than pkts")
	}
	qm := *d.queueMap.Load()
	sc := d.scratch.Get().(*batchScratch)
	d.runShard(si, pkts, nil, queues, qm, sc)
	d.scratch.Put(sc)
}

// FrameFeatures is one wire frame reduced to exactly what the
// clustering stage consumes: its feature values (the first NF entries,
// where NF is the configured feature-set length) and its IP total
// length. The ingest producer fills one per frame with
// packet.FrameView.Features while the header bytes are still hot in
// cache, so the classifying consumer never touches frame memory at all.
type FrameFeatures struct {
	Vals [packet.NumFeatures]uint32
	Size uint32
}

// ObserveShardFrames is ObserveShardPackets for frames already reduced
// to their feature values: each entry feeds the shard's clusterer
// through the fused ObserveFeatures path, so no Packet struct is ever
// materialized. Frames carry no ground-truth label, so all traffic
// counts as benign in the label telemetry — exactly what a hardware
// deployment sees. The demux invariant is that every entry's frame
// hashed to shard si; queues follows the ObserveBatch contract.
func (d *Dataplane) ObserveShardFrames(si int, frames []FrameFeatures, queues []int) {
	n := len(frames)
	if n == 0 {
		return
	}
	if queues != nil && len(queues) < n {
		panic("core: ObserveShardFrames queues shorter than frames")
	}
	qm := *d.queueMap.Load()
	sc := d.scratch.Get().(*batchScratch)
	nf := len(d.cfg.Clustering.Features)
	s := d.shards[si]
	if d.concurrent {
		s.mu.Lock()
	}
	for i := range frames {
		f := &frames[i]
		a := s.clusterer.ObserveFeatures(f.Vals[:nf], uint64(f.Size), false)
		sc.assigned[a.Cluster]++
		q := d.queueIn(qm, a.Cluster)
		sc.routed[q]++
		if queues != nil {
			queues[i] = q
		}
	}
	if d.concurrent {
		s.mu.Unlock()
	}
	// One consumer owns a shard, so its stripe block's first stripe is
	// as good as any and stays on one cache line.
	d.flushCounts(si*countStripes, sc)
	d.scratch.Put(sc)
}

// AssignedCounts returns the per-cluster-slot assignment totals since
// construction, aggregated across shards. Safe to call concurrently
// with packet processing (values may trail in-flight packets).
func (d *Dataplane) AssignedCounts() []uint64 { return d.assigned.Values() }

// RoutedCounts returns the per-priority-queue routing totals counted by
// Classify, aggregated across shards.
func (d *Dataplane) RoutedCounts() []uint64 { return d.routed.Values() }

// Describe registers the data plane's per-slot and per-queue counters
// on a telemetry registry under the given name prefix.
func (d *Dataplane) Describe(reg *telemetry.Registry, prefix string) {
	reg.Vec(prefix+"_assigned_pkts", d.assigned)
	reg.Vec(prefix+"_routed_pkts", d.routed)
}

// Observed returns the total number of packets observed across all
// shards. In concurrent mode it takes each shard's lock, so the value
// is exact once ingest has quiesced.
func (d *Dataplane) Observed() uint64 {
	var total uint64
	for _, s := range d.shards {
		if d.concurrent {
			s.mu.Lock()
		}
		total += s.clusterer.Observed
		if d.concurrent {
			s.mu.Unlock()
		}
	}
	return total
}

// Snapshot returns the interpretable cluster view the control plane
// ranks: shard 0's snapshot verbatim for a single pipeline, or the
// slot-wise merge across shards (see cluster.MergeSnapshots). The
// returned Infos are deep copies owned by the caller; the data plane
// never mutates them afterwards.
func (d *Dataplane) Snapshot() []cluster.Info {
	if len(d.shards) == 1 {
		s := d.shards[0]
		if !d.concurrent {
			return s.clusterer.Snapshot()
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.clusterer.Snapshot()
	}
	snaps := make([][]cluster.Info, len(d.shards))
	for i, s := range d.shards {
		if d.concurrent {
			s.mu.Lock()
		}
		snaps[i] = s.clusterer.Snapshot()
		if d.concurrent {
			s.mu.Unlock()
		}
	}
	return cluster.MergeSnapshots(d.cfg.Clustering.Distance, snaps...)
}

// ResetStats zeroes the per-window counters on every shard (the
// controller calls this after each poll).
func (d *Dataplane) ResetStats() {
	for _, s := range d.shards {
		if d.concurrent {
			s.mu.Lock()
		}
		s.clusterer.ResetStats()
		if d.concurrent {
			s.mu.Unlock()
		}
	}
}

// Reseed discards all clusters on every shard.
func (d *Dataplane) Reseed() {
	for _, s := range d.shards {
		if d.concurrent {
			s.mu.Lock()
		}
		s.clusterer.Reseed()
		if d.concurrent {
			s.mu.Unlock()
		}
	}
}

// Deploy installs a new cluster→queue mapping. The slice is copied, so
// the caller may reuse it; readers switch atomically.
func (d *Dataplane) Deploy(queueOf []int) {
	qm := make([]int, len(queueOf))
	copy(qm, queueOf)
	d.queueMap.Store(&qm)
}

// QueueMap returns a copy of the live cluster→queue mapping.
func (d *Dataplane) QueueMap() []int {
	qm := *d.queueMap.Load()
	out := make([]int, len(qm))
	copy(out, qm)
	return out
}

// QueueOf returns the live queue of cluster slot id (the lowest
// priority for out-of-range ids, mirroring QueueFor).
func (d *Dataplane) QueueOf(id int) int { return d.QueueFor(id) }
