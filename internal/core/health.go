package core

import "accturbo/internal/eventsim"

// Health is a point-in-time snapshot of the control plane's liveness
// and degradation state, safe to take from any goroutine (all inputs
// are atomics). It is the payload behind Defense.Health() and the
// /health endpoint of cmd/accturbo-defend. Times and ages are in the
// control plane's clock nanoseconds; ages are -1 before the first
// corresponding event.
type Health struct {
	// Now is the raw clock reading the snapshot was taken at.
	Now eventsim.Time `json:"now_ns"`
	// LastPollAt is when Step last started (-1 before the first poll);
	// PollAge is Now minus that.
	LastPollAt eventsim.Time `json:"last_poll_at_ns"`
	PollAge    eventsim.Time `json:"poll_age_ns"`
	// LastDeployAt is when the last ranked mapping was installed (-1
	// before the first deployment); DecisionAge is Now minus
	// max(LastDeployAt, start) — the staleness measure the watchdog
	// compares against FailOpenAfter.
	LastDeployAt eventsim.Time `json:"last_deploy_at_ns"`
	DecisionAge  eventsim.Time `json:"decision_age_ns"`
	// LastPollWallNs and MaxPollWallNs report how long Step held the
	// loop in real (wall-clock) nanoseconds — observational only.
	LastPollWallNs int64 `json:"last_poll_wall_ns"`
	MaxPollWallNs  int64 `json:"max_poll_wall_ns"`
	// ConsecutiveStale counts watchdog checks in a row that found the
	// decision stale; it resets to zero on every fresh deployment.
	ConsecutiveStale uint32 `json:"consecutive_stale"`
	// FailOpen reports whether the uniform-priority fallback map is
	// currently deployed. Degraded is the operator-facing roll-up:
	// true when fail-open is engaged or the watchdog has tripped
	// without recovery yet.
	FailOpen bool `json:"fail_open"`
	Degraded bool `json:"degraded"`
	// PanicsRecovered counts clock callbacks that panicked and were
	// absorbed by the recovery boundary; LastPanic is the most recent
	// panic value ("" when none).
	PanicsRecovered uint64 `json:"panics_recovered"`
	LastPanic       string `json:"last_panic,omitempty"`
	// Deployments, WatchdogTrips and FailOpenEngagements are lifetime
	// counters.
	Deployments         uint64 `json:"deployments"`
	WatchdogTrips       uint64 `json:"watchdog_trips"`
	FailOpenEngagements uint64 `json:"failopen_engagements"`
	// ConfigGeneration is the runtime-config version the loop is
	// running: 1 at construction, +1 per successful Reconfigure — the
	// operator's check that a pushed config actually took.
	ConfigGeneration uint64 `json:"config_generation"`
	// Ranking names the active ranking algorithm (§5.1 spelling:
	// "Th.", "N.P.", ...); RankSource names the authority computing it
	// — "local" for a standalone node, "fleet" when deploying the
	// coordinator's merged ranking, "fleet-fallback:local" while
	// partitioned from the coordinator (sticky until the next fleet
	// deploy applies).
	Ranking    string `json:"ranking"`
	RankSource string `json:"rank_source"`
}

// Health returns the current liveness snapshot. It never blocks on the
// control loop: everything it reads is atomic, so it stays responsive
// even while a poll is stalled — that is the point.
func (cp *ControlPlane) Health() Health {
	now := cp.rawClock.Now()
	h := Health{
		Now:                 now,
		LastPollAt:          eventsim.Time(cp.lastPollAt.Load()),
		LastDeployAt:        eventsim.Time(cp.lastDeployAt.Load()),
		PollAge:             -1,
		DecisionAge:         -1,
		LastPollWallNs:      cp.pollWallLast.Load(),
		MaxPollWallNs:       cp.pollWallMax.Load(),
		ConsecutiveStale:    cp.consecStale.Load(),
		FailOpen:            cp.failOpen.Load(),
		PanicsRecovered:     cp.panicsRecovered.Value(),
		Deployments:         cp.deployments.Value(),
		WatchdogTrips:       cp.watchdogTrips.Value(),
		FailOpenEngagements: cp.failOpens.Value(),
		ConfigGeneration:    cp.rt.Generation(),
		Ranking:             cp.rt.Load().Ranking.String(),
		RankSource:          cp.ranker.Source(),
	}
	if h.LastPollAt >= 0 {
		h.PollAge = now - h.LastPollAt
	}
	if ref := cp.staleRef(); ref >= 0 {
		h.DecisionAge = now - ref
	}
	if p := cp.lastPanic.Load(); p != nil {
		h.LastPanic = *p
	}
	h.Degraded = h.FailOpen || h.ConsecutiveStale > 0
	// A fleet node running on local fallback is degraded from the
	// operator's view — the node is defending, but not on the global
	// ranking — so the /health 503 tells the coordinator's monitoring
	// which nodes the partition actually cut off.
	if dr, ok := cp.ranker.(degradedRanker); ok && dr.RankingDegraded() {
		h.Degraded = true
	}
	return h
}

// staleRef is the reference instant staleness is measured from: the
// last ranked deployment, or Start when nothing has deployed yet (so a
// loop that never produces a decision still eventually fails open).
// Returns -1 before Start.
func (cp *ControlPlane) staleRef() eventsim.Time {
	ref := cp.lastDeployAt.Load()
	if s := cp.startAt.Load(); s > ref {
		ref = s
	}
	return eventsim.Time(ref)
}

// watchdog is the staleness check Start schedules on the raw
// (unwrapped) clock every WatchdogInterval when FailOpenAfter > 0. If
// the last ranked deployment is older than FailOpenAfter it trips:
// on the first trip it deploys the uniform-priority fallback map —
// every cluster in queue 0, degenerating strict priority to a plain
// FIFO, the fail-open posture no worse than running without the
// defense. Fail-open is sticky until the loop produces a fresh
// deployment (see the deploy callback in Step), which restores the
// ranked behavior and clears the flag.
func (cp *ControlPlane) watchdog(now eventsim.Time) {
	// Read the staleness bound live: a reconfigure that tightens or
	// relaxes FailOpenAfter takes effect at the next check.
	failOpenAfter := cp.rt.Load().FailOpenAfter
	ref := cp.staleRef()
	if ref < 0 || now-ref <= failOpenAfter {
		cp.consecStale.Store(0)
		return
	}
	cp.consecStale.Add(1)
	cp.watchdogTrips.Inc()
	if cp.failOpen.CompareAndSwap(false, true) {
		cp.failOpens.Inc()
		// The fallback map is deployed directly, bypassing the Decision
		// history: it is not a ranking outcome, and LastDecision/Recent
		// keep describing what the controller last computed.
		cp.dp.Deploy(make([]int, cp.cfg.Clustering.MaxClusters))
	}
}
