// Package core implements ACC-Turbo, the paper's contribution: online
// clustering in the data plane (§4) combined with programmable
// scheduling driven by a periodic control loop (§5).
//
// The package is layered like the deployment it models:
//
//   - Dataplane (dataplane.go) is the per-packet pipeline: feature
//     extraction → cluster assignment → queue classification. It owns
//     no timers and never touches a clock; it can be sharded into N
//     independent clusterers fed by an RSS-style flow hash, mirroring
//     the per-pipe clustering of the multi-pipe Tofino prototype.
//   - ControlPlane (controlplane.go) is the periodic scheduler: poll
//     per-cluster statistics (merged across shards), rank clusters by
//     estimated maliciousness, map them to priority queues — most
//     suspicious last — and deploy the mapping after DeployDelay,
//     modeling the controller latency measured in §7.
//   - Clock (clock.go) is the narrow scheduler interface between them,
//     with a bit-identical eventsim adapter (SimClock) for simulations
//     and a wall-clock driver (WallClock) for real-time use.
//
// Turbo in this file composes the three for the discrete-event
// simulator: one Dataplane classifying into a strict-priority qdisc,
// one ControlPlane on a SimClock.
package core

import (
	"fmt"
	"io"

	"accturbo/internal/cluster"
	"accturbo/internal/eventsim"
	"accturbo/internal/netsim"
	"accturbo/internal/packet"
	"accturbo/internal/queue"
)

// Ranking selects the maliciousness estimate used to order clusters
// (§5.1). Higher rank means more suspicious, hence lower scheduling
// priority.
type Ranking uint8

// Ranking algorithms of §5.1 / Fig. 11a.
const (
	// ByThroughput ranks clusters by bytes per polling window ("Th.").
	ByThroughput Ranking = iota
	// ByPacketRate ranks by packets per window ("N.P.").
	ByPacketRate
	// ByThroughputOverSize divides throughput by the cluster's size
	// ("Th./Size"): small (high-similarity) clusters at high rate are
	// the most suspicious.
	ByThroughputOverSize
	// ByPacketRateOverSize is the packet-rate analogue ("N.P./Size").
	ByPacketRateOverSize
)

// String names the ranking as in Fig. 11a.
func (r Ranking) String() string {
	switch r {
	case ByThroughput:
		return "Th."
	case ByPacketRate:
		return "N.P."
	case ByThroughputOverSize:
		return "Th./Size"
	case ByPacketRateOverSize:
		return "N.P./Size"
	default:
		return fmt.Sprintf("ranking(%d)", uint8(r))
	}
}

// Config parameterizes an ACC-Turbo instance.
type Config struct {
	// Clustering configures the online clusterer (§4). The hardware
	// prototype uses 4 clusters; simulations default to 10.
	Clustering cluster.Config
	// Ranking selects the cluster-maliciousness estimate.
	Ranking Ranking
	// NumQueues is the number of strict-priority queues. Zero defaults
	// to Clustering.MaxClusters (one queue per cluster, as on Tofino).
	NumQueues int
	// QueueBytes is the per-queue buffer capacity. Zero defaults to
	// 64 KiB.
	QueueBytes int
	// PollInterval is the control-plane polling period.
	PollInterval eventsim.Time
	// DeployDelay is the latency between computing a new mapping and
	// it taking effect in the data plane.
	DeployDelay eventsim.Time
	// ReseedInterval, when positive, discards all clusters
	// periodically so aggregates can re-form after traffic shifts
	// (the controller-driven re-initialization of the prototype).
	ReseedInterval eventsim.Time
	// Shards is the number of independent data-plane clustering
	// pipelines (multi-pipe operation). Zero or one selects the single
	// deterministic pipeline; N > 1 demuxes packets by flow hash across
	// N clusterers whose snapshots the control plane merges before
	// ranking.
	Shards int
	// FailOpenAfter, when positive, arms the control-plane watchdog: if
	// no fresh decision deploys within FailOpenAfter of the previous
	// one, the queue map reverts to uniform priority (every cluster in
	// queue 0 — strict priority degenerates to a plain FIFO, the
	// fail-open posture of the ACC lineage) until the loop recovers.
	// Zero disables the watchdog; experiments and golden baselines run
	// with it disabled. Sensible bounds start around
	// 3*(PollInterval+DeployDelay).
	FailOpenAfter eventsim.Time
	// WatchdogInterval is the staleness-check period. Zero defaults to
	// PollInterval. Only meaningful with FailOpenAfter > 0.
	WatchdogInterval eventsim.Time
	// WrapClock, when set, wraps the clock that drives the poll, reseed
	// and deploy callbacks before the loop is scheduled — the hook the
	// fault injector (internal/faults) uses to stall or delay polls.
	// The watchdog deliberately stays on the unwrapped clock: it is the
	// supervision layer that must keep observing while the loop it
	// guards is being stalled.
	WrapClock func(Clock) Clock
	// Ranker, when set, replaces the ranking policy behind the control
	// loop: every poll hands the freshly polled snapshot to
	// Ranker.Rank instead of the built-in local ranking. This is the
	// fleet-mode hook (internal/fleet.Node publishes the snapshot to a
	// coordinator and deploys the merged global ranking). Nil selects
	// the local ranker, whose decisions are bit-identical to the
	// pre-seam control loop. Structural: fixed at construction.
	Ranker Ranker
}

// DefaultConfig mirrors the paper's simulation setup: 10 clusters over
// the default feature set, throughput ranking, 100 ms polling with
// 10 ms deployment.
func DefaultConfig() Config {
	return Config{
		Clustering:   cluster.DefaultConfig(10, packet.DefaultSimulationFeatures()),
		Ranking:      ByThroughput,
		PollInterval: 100 * eventsim.Millisecond,
		DeployDelay:  10 * eventsim.Millisecond,
	}
}

// HardwareConfig mirrors the §7.1 Tofino deployment: 4 clusters over
// {dst-IP low bytes, sport, dport}, throughput ranking, and a
// controller that polls "at maximum speed" but deploys with ≈1 s of
// latency.
func HardwareConfig() Config {
	return Config{
		Clustering:   cluster.DefaultConfig(4, packet.HardwareFeatures()),
		Ranking:      ByThroughput,
		PollInterval: 500 * eventsim.Millisecond,
		DeployDelay:  500 * eventsim.Millisecond,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if err := c.Clustering.Validate(); err != nil {
		return err
	}
	if c.NumQueues < 0 {
		return fmt.Errorf("core: NumQueues %d < 0", c.NumQueues)
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: Shards %d < 0", c.Shards)
	}
	// The hot-reloadable fields share one validator with Reconfigure,
	// so construction and live patches enforce identical bounds. A zero
	// DeployDelay is rejected: the deploy callback must be a scheduled
	// event, or a reconfigure could interleave with an in-flight
	// deployment of the same tick.
	rt := c.Runtime()
	return rt.Validate()
}

func (c Config) withDefaults() Config {
	if c.NumQueues == 0 {
		c.NumQueues = c.Clustering.MaxClusters
	}
	if c.QueueBytes == 0 {
		c.QueueBytes = 64 << 10
	}
	// WatchdogInterval deliberately keeps its zero value: in
	// RuntimeConfig zero means "track PollInterval", so a live
	// poll-interval change moves the watchdog cadence with it.
	return c
}

// Decision is one control-loop outcome, kept for interpretability
// (§10): the operator can inspect exactly which cluster went to which
// queue and why.
type Decision struct {
	// At is when the mapping was computed; DeployedAt adds the delay.
	At         eventsim.Time
	DeployedAt eventsim.Time
	// Clusters is the snapshot the decision was based on. It is a deep
	// copy owned by the decision: cluster.Online.Snapshot (and the
	// sharded merge) copy all per-cluster state, and nothing mutates
	// the Infos after the decision is formed, so post-hoc inspection
	// always sees the state the controller ranked.
	Clusters []cluster.Info
	// Rank holds the computed rank metric per cluster ID.
	Rank []float64
	// QueueOf maps cluster ID to its assigned priority queue
	// (0 = highest priority).
	QueueOf []int
}

// Turbo is one ACC-Turbo instance wired for the discrete-event
// simulator: a (possibly sharded) Dataplane classifying packets into a
// strict-priority qdisc, and a ControlPlane driven by the engine's
// virtual clock.
type Turbo struct {
	cfg  Config
	dp   *Dataplane
	cp   *ControlPlane
	prio *queue.Priority

	// Deployments counts mappings pushed to the data plane.
	Deployments uint64
	// LastDecision is the most recent control-loop outcome.
	LastDecision *Decision
	// OnAssign, when set, observes every (packet, cluster) assignment;
	// the evaluation harness uses it for purity/recall accounting.
	OnAssign func(now eventsim.Time, p *packet.Packet, a cluster.Assignment)
}

// New builds an ACC-Turbo instance on the given engine and schedules
// its control loop. It panics on an invalid configuration; NewE is the
// error-returning variant for runtime paths.
func New(eng *eventsim.Engine, cfg Config) *Turbo {
	t, err := NewE(eng, cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// NewE is New returning configuration errors instead of panicking.
func NewE(eng *eventsim.Engine, cfg Config) (*Turbo, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	t := &Turbo{
		cfg: cfg,
		dp:  NewDataplane(cfg, false),
	}
	t.prio = queue.NewPriority(cfg.NumQueues, cfg.QueueBytes, t.classify)
	cp, err := NewControlPlaneE(t.dp, SimClock{Eng: eng}, cfg)
	if err != nil {
		return nil, err
	}
	t.cp = cp
	t.cp.OnDeploy = func(dec *Decision) {
		t.Deployments++
		t.LastDecision = dec
	}
	t.cp.Start()
	return t, nil
}

// Attach builds a port whose qdisc is the ACC-Turbo priority scheduler.
// The clustering stage runs inside the qdisc's classifier — the
// explicit assignment→queue flow of Dataplane.Classify — so no ingress
// stage is needed. It panics on an invalid configuration; AttachE is
// the error-returning variant.
func Attach(eng *eventsim.Engine, rateBits float64, rec *netsim.Recorder, cfg Config) (*netsim.Port, *Turbo) {
	t := New(eng, cfg)
	port := netsim.NewPort(eng, t.prio, rateBits, rec)
	return port, t
}

// AttachE is Attach returning configuration errors instead of
// panicking.
func AttachE(eng *eventsim.Engine, rateBits float64, rec *netsim.Recorder, cfg Config) (*netsim.Port, *Turbo, error) {
	t, err := NewE(eng, cfg)
	if err != nil {
		return nil, nil, err
	}
	port := netsim.NewPort(eng, t.prio, rateBits, rec)
	return port, t, nil
}

// Qdisc exposes the strict-priority scheduler for custom wiring.
func (t *Turbo) Qdisc() queue.Qdisc { return t.prio }

// Dataplane exposes the per-packet pipeline.
func (t *Turbo) Dataplane() *Dataplane { return t.dp }

// ControlPlane exposes the periodic scheduler.
func (t *Turbo) ControlPlane() *ControlPlane { return t.cp }

// Clusterer exposes shard 0's online clusterer (read-only use
// intended). With Shards > 1 the other shards are reachable through
// Dataplane().Clusterer(i).
func (t *Turbo) Clusterer() *cluster.Online { return t.dp.Clusterer(0) }

// Config returns the (defaulted) configuration.
func (t *Turbo) Config() Config { return t.cfg }

// classify is the data-plane step the strict-priority qdisc runs per
// packet: assign the packet to its cluster, then look the cluster up in
// the live queue mapping. The assignment is threaded explicitly from
// Assign to QueueFor — there is no hidden in-flight packet state, so
// the classifier works identically whether the packet arrived through a
// port or was enqueued directly.
func (t *Turbo) classify(now eventsim.Time, p *packet.Packet) int {
	a, q := t.dp.Classify(p)
	if t.OnAssign != nil {
		t.OnAssign(now, p, a)
	}
	return q
}

// QueueOf returns the live queue assignment for cluster id. Unknown or
// out-of-range ids report the lowest-priority queue, matching the
// classifier's defensive routing.
func (t *Turbo) QueueOf(id int) int { return t.dp.QueueFor(id) }

// Reconfigure applies a runtime-config patch to the control plane (see
// ControlPlane.Reconfigure): validated, atomically published,
// tickers rescheduled — no packet is dropped or reclassified.
func (t *Turbo) Reconfigure(patch RuntimePatch) (uint64, error) {
	return t.cp.Reconfigure(patch)
}

// Runtime returns the live runtime configuration.
func (t *Turbo) Runtime() RuntimeConfig { return t.cp.Runtime() }

// SaveState serializes the full defense state (see SaveState).
func (t *Turbo) SaveState(w io.Writer) error { return SaveState(w, t.dp, t.cp) }

// RestoreState loads a snapshot into this freshly built instance (see
// RestoreState) and syncs the instance-level counters to the restored
// lifetime values.
func (t *Turbo) RestoreState(r io.Reader) error {
	if err := RestoreState(r, t.dp, t.cp); err != nil {
		return err
	}
	t.Deployments = t.cp.Deployments()
	t.LastDecision = t.cp.LastDecision()
	return nil
}
