// Package core implements ACC-Turbo, the paper's contribution: online
// clustering in the data plane (§4) combined with programmable
// scheduling driven by a periodic control loop (§5).
//
// Data plane (per packet, line rate): extract features, assign the
// packet to its closest cluster (extending the cluster to cover it),
// and enqueue it into the strict-priority queue currently mapped to
// that cluster.
//
// Control plane (every PollInterval): poll per-cluster statistics
// (exact byte/packet counts since the last poll, plus cluster sizes),
// rank clusters by estimated maliciousness, map them to priority
// queues — most suspicious last — and deploy the mapping after
// DeployDelay, modeling the controller latency measured in §7
// (≈1 s with the paper's unoptimized Python controller).
package core

import (
	"fmt"
	"sort"

	"accturbo/internal/cluster"
	"accturbo/internal/eventsim"
	"accturbo/internal/netsim"
	"accturbo/internal/packet"
	"accturbo/internal/queue"
)

// Ranking selects the maliciousness estimate used to order clusters
// (§5.1). Higher rank means more suspicious, hence lower scheduling
// priority.
type Ranking uint8

// Ranking algorithms of §5.1 / Fig. 11a.
const (
	// ByThroughput ranks clusters by bytes per polling window ("Th.").
	ByThroughput Ranking = iota
	// ByPacketRate ranks by packets per window ("N.P.").
	ByPacketRate
	// ByThroughputOverSize divides throughput by the cluster's size
	// ("Th./Size"): small (high-similarity) clusters at high rate are
	// the most suspicious.
	ByThroughputOverSize
	// ByPacketRateOverSize is the packet-rate analogue ("N.P./Size").
	ByPacketRateOverSize
)

// String names the ranking as in Fig. 11a.
func (r Ranking) String() string {
	switch r {
	case ByThroughput:
		return "Th."
	case ByPacketRate:
		return "N.P."
	case ByThroughputOverSize:
		return "Th./Size"
	case ByPacketRateOverSize:
		return "N.P./Size"
	default:
		return fmt.Sprintf("ranking(%d)", uint8(r))
	}
}

// Config parameterizes an ACC-Turbo instance.
type Config struct {
	// Clustering configures the online clusterer (§4). The hardware
	// prototype uses 4 clusters; simulations default to 10.
	Clustering cluster.Config
	// Ranking selects the cluster-maliciousness estimate.
	Ranking Ranking
	// NumQueues is the number of strict-priority queues. Zero defaults
	// to Clustering.MaxClusters (one queue per cluster, as on Tofino).
	NumQueues int
	// QueueBytes is the per-queue buffer capacity. Zero defaults to
	// 64 KiB.
	QueueBytes int
	// PollInterval is the control-plane polling period.
	PollInterval eventsim.Time
	// DeployDelay is the latency between computing a new mapping and
	// it taking effect in the data plane.
	DeployDelay eventsim.Time
	// ReseedInterval, when positive, discards all clusters
	// periodically so aggregates can re-form after traffic shifts
	// (the controller-driven re-initialization of the prototype).
	ReseedInterval eventsim.Time
}

// DefaultConfig mirrors the paper's simulation setup: 10 clusters over
// the default feature set, throughput ranking, 100 ms polling with
// 10 ms deployment.
func DefaultConfig() Config {
	return Config{
		Clustering:   cluster.DefaultConfig(10, packet.DefaultSimulationFeatures()),
		Ranking:      ByThroughput,
		PollInterval: 100 * eventsim.Millisecond,
		DeployDelay:  10 * eventsim.Millisecond,
	}
}

// HardwareConfig mirrors the §7.1 Tofino deployment: 4 clusters over
// {dst-IP low bytes, sport, dport}, throughput ranking, and a
// controller that polls "at maximum speed" but deploys with ≈1 s of
// latency.
func HardwareConfig() Config {
	return Config{
		Clustering:   cluster.DefaultConfig(4, packet.HardwareFeatures()),
		Ranking:      ByThroughput,
		PollInterval: 500 * eventsim.Millisecond,
		DeployDelay:  500 * eventsim.Millisecond,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if err := c.Clustering.Validate(); err != nil {
		return err
	}
	if c.NumQueues < 0 {
		return fmt.Errorf("core: NumQueues %d < 0", c.NumQueues)
	}
	if c.PollInterval <= 0 {
		return fmt.Errorf("core: PollInterval %v must be positive", c.PollInterval)
	}
	if c.DeployDelay < 0 {
		return fmt.Errorf("core: DeployDelay %v must be non-negative", c.DeployDelay)
	}
	if c.Ranking > ByPacketRateOverSize {
		return fmt.Errorf("core: unknown ranking %d", c.Ranking)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.NumQueues == 0 {
		c.NumQueues = c.Clustering.MaxClusters
	}
	if c.QueueBytes == 0 {
		c.QueueBytes = 64 << 10
	}
	return c
}

// Decision is one control-loop outcome, kept for interpretability
// (§10): the operator can inspect exactly which cluster went to which
// queue and why.
type Decision struct {
	// At is when the mapping was computed; DeployedAt adds the delay.
	At         eventsim.Time
	DeployedAt eventsim.Time
	// Clusters is the snapshot the decision was based on.
	Clusters []cluster.Info
	// Rank holds the computed rank metric per cluster ID.
	Rank []float64
	// QueueOf maps cluster ID to its assigned priority queue
	// (0 = highest priority).
	QueueOf []int
}

// Turbo is one ACC-Turbo instance.
type Turbo struct {
	cfg       Config
	eng       *eventsim.Engine
	clusterer *cluster.Online
	prio      *queue.Priority

	// queueOf is the live cluster->queue mapping (data plane state).
	queueOf []int

	// cur tracks the in-flight packet between the ingress stage and
	// the classifier (the simulator is single-threaded, so the pair of
	// calls is adjacent).
	curPkt     *packet.Packet
	curCluster int

	// Deployments counts mappings pushed to the data plane.
	Deployments uint64
	// LastDecision is the most recent control-loop outcome.
	LastDecision *Decision
	// OnAssign, when set, observes every (packet, cluster) assignment;
	// the evaluation harness uses it for purity/recall accounting.
	OnAssign func(now eventsim.Time, p *packet.Packet, a cluster.Assignment)
}

// New builds an ACC-Turbo instance on the given engine and schedules
// its control loop.
func New(eng *eventsim.Engine, cfg Config) *Turbo {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	t := &Turbo{
		cfg:       cfg,
		eng:       eng,
		clusterer: cluster.NewOnline(cfg.Clustering),
		queueOf:   make([]int, cfg.Clustering.MaxClusters),
		curPkt:    nil,
	}
	t.prio = queue.NewPriority(cfg.NumQueues, cfg.QueueBytes, t.classify)
	eng.Every(cfg.PollInterval, func(now eventsim.Time) { t.controlLoop(now) })
	if cfg.ReseedInterval > 0 {
		eng.Every(cfg.ReseedInterval, func(now eventsim.Time) { t.clusterer.Reseed() })
	}
	return t
}

// Attach builds a port whose qdisc is the ACC-Turbo priority scheduler
// and whose ingress runs the clustering stage.
func Attach(eng *eventsim.Engine, rateBits float64, rec *netsim.Recorder, cfg Config) (*netsim.Port, *Turbo) {
	t := New(eng, cfg)
	port := netsim.NewPort(eng, t.prio, rateBits, rec)
	port.AddIngress(t.Ingress())
	return port, t
}

// Qdisc exposes the strict-priority scheduler for custom wiring.
func (t *Turbo) Qdisc() queue.Qdisc { return t.prio }

// Clusterer exposes the online clusterer (read-only use intended).
func (t *Turbo) Clusterer() *cluster.Online { return t.clusterer }

// Config returns the (defaulted) configuration.
func (t *Turbo) Config() Config { return t.cfg }

// Ingress returns the data-plane clustering stage.
func (t *Turbo) Ingress() netsim.Ingress {
	return func(now eventsim.Time, p *packet.Packet) bool {
		a := t.clusterer.Observe(p)
		t.curPkt, t.curCluster = p, a.Cluster
		if t.OnAssign != nil {
			t.OnAssign(now, p, a)
		}
		return true // ACC-Turbo never drops at ingress
	}
}

// classify maps the packet to the priority queue of its cluster.
func (t *Turbo) classify(now eventsim.Time, p *packet.Packet) int {
	if p != t.curPkt {
		// A packet that bypassed the ingress stage (direct qdisc use):
		// classify it on the spot without mutating clusters' stats
		// would diverge from hardware behaviour, so run the full
		// observation.
		a := t.clusterer.Observe(p)
		t.curPkt, t.curCluster = p, a.Cluster
	}
	c := t.curCluster
	if c < len(t.queueOf) {
		return t.queueOf[c]
	}
	return 0
}

// QueueOf returns the live queue assignment for cluster id.
func (t *Turbo) QueueOf(id int) int {
	if id < 0 || id >= len(t.queueOf) {
		return 0
	}
	return t.queueOf[id]
}

// rankMetric computes the configured maliciousness estimate.
func (t *Turbo) rankMetric(info cluster.Info) float64 {
	var m float64
	switch t.cfg.Ranking {
	case ByThroughput:
		m = float64(info.Bytes)
	case ByPacketRate:
		m = float64(info.Packets)
	case ByThroughputOverSize:
		m = float64(info.Bytes) / (info.Size + 1)
	case ByPacketRateOverSize:
		m = float64(info.Packets) / (info.Size + 1)
	}
	return m
}

// controlLoop is the §5.2 scheduler: poll, rank, map, deploy.
func (t *Turbo) controlLoop(now eventsim.Time) {
	infos := t.clusterer.Snapshot()
	t.clusterer.ResetStats()
	if len(infos) == 0 {
		return
	}

	ranks := make([]float64, len(t.queueOf))
	order := make([]int, 0, len(infos))
	for _, info := range infos {
		ranks[info.ID] = t.rankMetric(info)
		order = append(order, info.ID)
	}
	// Least suspicious first; ties keep lower cluster IDs first for
	// determinism.
	sort.SliceStable(order, func(i, j int) bool {
		return ranks[order[i]] < ranks[order[j]]
	})

	newMap := make([]int, len(t.queueOf))
	copy(newMap, t.queueOf)
	n := len(order)
	for pos, id := range order {
		// Spread rank positions across the available queues: position
		// 0 (least suspicious) -> queue 0, last -> queue NumQueues-1.
		q := pos * t.cfg.NumQueues / n
		if q >= t.cfg.NumQueues {
			q = t.cfg.NumQueues - 1
		}
		newMap[id] = q
	}

	dec := &Decision{
		At:         now,
		DeployedAt: now + t.cfg.DeployDelay,
		Clusters:   infos,
		Rank:       ranks,
		QueueOf:    newMap,
	}
	t.eng.After(t.cfg.DeployDelay, func(eventsim.Time) {
		t.queueOf = newMap
		t.Deployments++
		t.LastDecision = dec
	})
}
