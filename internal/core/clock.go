package core

import (
	"sync"
	"time"

	"accturbo/internal/eventsim"
)

// Clock is the narrow scheduler interface the control plane runs on.
// It decouples the defense core from the discrete-event simulator: the
// same poll→rank→map→deploy loop drives both virtual-time experiments
// (SimClock) and real deployments (WallClock).
//
// Implementations must guarantee that callbacks scheduled by the same
// Clock never run concurrently with each other; they may run
// concurrently with packet ingest (the data plane synchronizes its own
// state).
type Clock interface {
	// Now returns the current time on this clock's timeline.
	Now() eventsim.Time
	// After schedules fn once, delay from now. The returned function
	// cancels the callback if it has not fired yet.
	After(delay eventsim.Time, fn func(now eventsim.Time)) (cancel func())
	// Every schedules fn at now+interval, now+2*interval, ... until the
	// returned stop function is called.
	Every(interval eventsim.Time, fn func(now eventsim.Time)) (stop func())
}

// SimClock adapts an eventsim.Engine to the Clock interface. Scheduling
// forwards verbatim to the engine, so a control plane driven through a
// SimClock produces exactly the event sequence (including tie-break
// order) of one wired to the engine directly — simulations stay
// bit-identical.
type SimClock struct {
	Eng *eventsim.Engine
}

// Now implements Clock.
func (c SimClock) Now() eventsim.Time { return c.Eng.Now() }

// After implements Clock.
func (c SimClock) After(delay eventsim.Time, fn func(now eventsim.Time)) (cancel func()) {
	h := c.Eng.After(delay, fn)
	return func() { c.Eng.Cancel(h) }
}

// Every implements Clock.
func (c SimClock) Every(interval eventsim.Time, fn func(now eventsim.Time)) (stop func()) {
	return c.Eng.Every(interval, fn)
}

// WallClock is the real-time driver: time flows at wall speed from the
// clock's construction, and callbacks fire on OS timers. All callbacks
// run on a single dispatch goroutine, preserving the Clock contract
// that control-plane steps never overlap.
type WallClock struct {
	epoch time.Time

	mu     sync.Mutex
	runMu  sync.Mutex // serializes all callback execution
	closed bool
	stops  []func()
}

// NewWallClock returns a wall clock whose timeline starts at zero now.
func NewWallClock() *WallClock {
	return &WallClock{epoch: time.Now()}
}

// Now implements Clock: nanoseconds of wall time since construction.
func (c *WallClock) Now() eventsim.Time {
	return eventsim.Time(time.Since(c.epoch).Nanoseconds())
}

// After implements Clock.
func (c *WallClock) After(delay eventsim.Time, fn func(now eventsim.Time)) (cancel func()) {
	t := time.AfterFunc(delay.Duration(), func() {
		c.runMu.Lock()
		defer c.runMu.Unlock()
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if !closed {
			fn(c.Now())
		}
	})
	return func() { t.Stop() }
}

// Every implements Clock.
func (c *WallClock) Every(interval eventsim.Time, fn func(now eventsim.Time)) (stop func()) {
	ticker := time.NewTicker(interval.Duration())
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				ticker.Stop()
				return
			case <-ticker.C:
				c.runMu.Lock()
				fn(c.Now())
				c.runMu.Unlock()
			}
		}
	}()
	var once sync.Once
	stopFn := func() { once.Do(func() { close(done) }) }
	c.mu.Lock()
	c.stops = append(c.stops, stopFn)
	c.mu.Unlock()
	return stopFn
}

// Close stops every periodic callback and suppresses pending one-shots.
// Safe to call more than once.
func (c *WallClock) Close() {
	c.mu.Lock()
	c.closed = true
	stops := c.stops
	c.stops = nil
	c.mu.Unlock()
	for _, s := range stops {
		s()
	}
}
