package acc

import (
	"fmt"

	"accturbo/internal/eventsim"
	"accturbo/internal/netsim"
	"accturbo/internal/packet"
	"accturbo/internal/queue"
)

// Pushback is the part of the original ACC design (Mahajan et al.
// 2002) the ACC-Turbo paper scopes out: when the congested router
// identifies an aggregate, it asks *upstream* routers to rate-limit
// that aggregate near its sources, so the attack stops congesting the
// upstream links too and the shared queues drain for everyone else.
//
// The implementation mirrors the original's local decision structure:
//
//   - the congested (downstream) agent identifies aggregates and
//     computes their limits exactly as in acc.go;
//   - with pushback enabled, instead of policing only locally it
//     propagates each session to every registered upstream limiter,
//     splitting the limit in proportion to the aggregate traffic each
//     upstream actually carries (contributing links get max-min-style
//     shares, refreshed every cycle);
//   - upstream limiters police at their switch's ingress and report
//     per-prefix arrival bytes back on each cycle;
//   - when the downstream agent releases a session, the upstream
//     limiters release theirs.

// Upstream is a remote rate limiter installed at one upstream switch.
type Upstream struct {
	// Name labels the upstream in diagnostics.
	Name string

	rules map[Prefix]*upstreamRule
}

type upstreamRule struct {
	bucket *queue.TokenBucket
	// arrivedBytes counts matching traffic since the last Report.
	arrivedBytes uint64
}

// NewUpstream builds a limiter and installs its policing stage on the
// upstream port's ingress pipeline.
func NewUpstream(name string, port *netsim.Port) *Upstream {
	u := &Upstream{Name: name, rules: map[Prefix]*upstreamRule{}}
	port.AddIngress(func(now eventsim.Time, p *packet.Packet) bool {
		return u.admit(now, p)
	})
	return u
}

func (u *Upstream) admit(now eventsim.Time, p *packet.Packet) bool {
	dst := p.Value(packet.FDstIP)
	for prefix, rule := range u.rules {
		if !prefix.Contains(dst) {
			continue
		}
		rule.arrivedBytes += uint64(p.Size())
		return rule.bucket.Allow(now, p.Size())
	}
	return true
}

// Install creates or updates a rate limit for the prefix.
func (u *Upstream) Install(prefix Prefix, limitBits float64) {
	if limitBits < 1000 {
		limitBits = 1000
	}
	if rule, ok := u.rules[prefix]; ok {
		rule.bucket.SetRate(limitBits)
		return
	}
	u.rules[prefix] = &upstreamRule{bucket: queue.NewTokenBucket(limitBits, 6000)}
}

// Release removes the prefix's rate limit.
func (u *Upstream) Release(prefix Prefix) {
	delete(u.rules, prefix)
}

// Report returns and resets the bytes of matching traffic that arrived
// since the last call, or false if no rule is installed.
func (u *Upstream) Report(prefix Prefix) (uint64, bool) {
	rule, ok := u.rules[prefix]
	if !ok {
		return 0, false
	}
	n := rule.arrivedBytes
	rule.arrivedBytes = 0
	return n, true
}

// Rules returns the number of installed upstream limits.
func (u *Upstream) Rules() int { return len(u.rules) }

// Pushback coordinates a downstream ACC agent with upstream limiters.
type Pushback struct {
	agent     *ACC
	upstreams []*Upstream
	// active maps each pushed prefix to its total limit.
	active   map[Prefix]float64
	interval eventsim.Time
	// Propagations counts limit installs/updates sent upstream.
	Propagations uint64
}

// EnablePushback attaches pushback to a downstream agent: every
// CycleTime the downstream session set is mirrored upstream, with each
// upstream's share proportional to the aggregate traffic it reported
// carrying in the last cycle (equal split on the first).
func EnablePushback(eng *eventsim.Engine, agent *ACC, upstreams []*Upstream) *Pushback {
	if agent == nil || len(upstreams) == 0 {
		panic(fmt.Sprintf("acc: pushback needs an agent and upstreams (got %d)", len(upstreams)))
	}
	pb := &Pushback{
		agent:     agent,
		upstreams: upstreams,
		active:    map[Prefix]float64{},
		interval:  agent.cfg.InitTime,
	}
	eng.Every(agent.cfg.InitTime, func(now eventsim.Time) { pb.refresh(now) })
	return pb
}

// refresh mirrors the downstream sessions to the upstream limiters.
func (pb *Pushback) refresh(eventsim.Time) {
	sessions := pb.agent.Sessions()
	current := map[Prefix]float64{}
	for _, s := range sessions {
		current[s.Prefix] = s.LimitBits
	}

	// Release upstream rules whose downstream session is gone.
	for prefix := range pb.active {
		if _, ok := current[prefix]; !ok {
			for _, u := range pb.upstreams {
				u.Release(prefix)
			}
			delete(pb.active, prefix)
		}
	}

	// Install/update the rest, splitting by reported contribution.
	for prefix, limit := range current {
		shares := make([]float64, len(pb.upstreams))
		var total float64
		for i, u := range pb.upstreams {
			if bytes, ok := u.Report(prefix); ok {
				shares[i] = float64(bytes)
				total += shares[i]
			}
		}
		// Upstream-reported arrival rate: while it exceeds the limit,
		// the aggregate is still misbehaving even though the local
		// (post-policing) counters look tame — keep the session alive,
		// as the original pushback's status reports do.
		if pb.interval > 0 {
			reportedBits := total * 8 / pb.interval.Seconds()
			if reportedBits > 1.2*limit {
				pb.agent.MarkMisbehaving(prefix)
			}
		}
		for i, u := range pb.upstreams {
			share := limit / float64(len(pb.upstreams))
			if total > 0 {
				// Contribution-proportional with a 5% floor so an
				// aggregate shifting paths is still caught.
				share = limit * (0.05 + 0.95*shares[i]/total)
			}
			u.Install(prefix, share)
			pb.Propagations++
		}
		pb.active[prefix] = limit
	}
}

// ActivePrefixes returns the prefixes currently pushed upstream.
func (pb *Pushback) ActivePrefixes() []Prefix {
	out := make([]Prefix, 0, len(pb.active))
	for p := range pb.active {
		out = append(out, p)
	}
	return out
}
