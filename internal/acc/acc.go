// Package acc implements the original Aggregate-based Congestion
// Control of Mahajan et al. (2002), the baseline ACC-Turbo is measured
// against (§2 of the paper).
//
// ACC is a feedback loop around a RED queue:
//
//  1. Activation: every monitoring window K, the agent compares the
//     window's drop rate against p_high; sustained congestion activates
//     inference (threshold-based activation).
//  2. Inference: the headers of RED-dropped packets are clustered into
//     destination /24 prefixes; prefixes with at least twice the mean
//     per-address drop count become aggregates, and the agent walks
//     down each prefix subtree while most drops remain inside.
//  3. Control: the agent estimates each aggregate's arrival rate,
//     computes the excess rate R_excess that must be shed to bring the
//     drop rate to p_target, and rate-limits the minimum number of
//     top aggregates to a common limit L such that sum(rate_i - L) =
//     R_excess. Limits are enforced by per-session token buckets in
//     front of the RED queue.
//
// Session lifecycle (release/free/cycle timers) follows Appendix A
// Table 4 of the ACC-Turbo paper.
package acc

import (
	"fmt"
	"sort"

	"accturbo/internal/eventsim"
	"accturbo/internal/netsim"
	"accturbo/internal/packet"
	"accturbo/internal/queue"
)

// Config mirrors Appendix A Table 4 plus the drop-history bound.
type Config struct {
	// K is the sustained-congestion monitoring period.
	K eventsim.Time
	// PHigh is the sustained-congestion drop rate activating the agent.
	PHigh float64
	// PTarget is the post-mitigation target drop rate.
	PTarget float64
	// RateEWMAInterval is the exponential-moving-average interval for
	// rate estimation ("k" in Table 4).
	RateEWMAInterval eventsim.Time
	// MaxSessions bounds simultaneous rate-limiting sessions.
	MaxSessions int
	// ReleaseTime is the minimum session lifetime.
	ReleaseTime eventsim.Time
	// FreeTime is how long an aggregate must behave (arrive under its
	// limit) before release.
	FreeTime eventsim.Time
	// CycleTime is the period at which installed sessions are
	// revisited.
	CycleTime eventsim.Time
	// InitTime is the faster revisit period right after installation.
	InitTime eventsim.Time
	// HistoryLimit bounds the drop-history buffer (packets).
	HistoryLimit int
	// NarrowFraction is the drop share a child subtree must hold for
	// the prefix walk-down to descend (0 defaults to 0.9).
	NarrowFraction float64
}

// DefaultConfig returns the Table 4 values.
func DefaultConfig() Config {
	return Config{
		K:                2 * eventsim.Second,
		PHigh:            0.1,
		PTarget:          0.05,
		RateEWMAInterval: 100 * eventsim.Millisecond,
		MaxSessions:      5,
		ReleaseTime:      10 * eventsim.Second,
		FreeTime:         20 * eventsim.Second,
		CycleTime:        5 * eventsim.Second,
		InitTime:         500 * eventsim.Millisecond,
		HistoryLimit:     200_000,
		NarrowFraction:   0.9,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.K <= 0 {
		return fmt.Errorf("acc: K %v must be positive", c.K)
	}
	if c.PHigh <= 0 || c.PHigh > 1 {
		return fmt.Errorf("acc: PHigh %v out of (0,1]", c.PHigh)
	}
	if c.PTarget < 0 || c.PTarget >= c.PHigh {
		return fmt.Errorf("acc: PTarget %v must be in [0, PHigh)", c.PTarget)
	}
	if c.MaxSessions < 1 {
		return fmt.Errorf("acc: MaxSessions %d < 1", c.MaxSessions)
	}
	if c.HistoryLimit < 1 {
		return fmt.Errorf("acc: HistoryLimit %d < 1", c.HistoryLimit)
	}
	return nil
}

// Prefix is an IPv4 prefix aggregate.
type Prefix struct {
	Addr uint32 // network-order address with host bits zero
	Bits int
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip uint32) bool {
	if p.Bits == 0 {
		return true
	}
	mask := ^uint32(0) << (32 - p.Bits)
	return ip&mask == p.Addr
}

// String formats the prefix in CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%d.%d.%d.%d/%d",
		byte(p.Addr>>24), byte(p.Addr>>16), byte(p.Addr>>8), byte(p.Addr), p.Bits)
}

// Session is one installed rate-limiting session.
type Session struct {
	Prefix Prefix
	// LimitBits is the current rate limit in bits/second.
	LimitBits float64
	// InstalledAt is when the session was created.
	InstalledAt eventsim.Time

	bucket      *queue.TokenBucket
	behavedFor  eventsim.Time
	lastRevisit eventsim.Time
	// window byte counters for the revisit logic
	arrivedBytes uint64
	// rate is the EWMA arrival-rate estimate in bits/second.
	rate    float64
	rateAt  eventsim.Time
	rateAcc uint64
}

// dropRecord is one entry of the RED drop history.
type dropRecord struct {
	dst  uint32
	size int
}

// ACC is an agent instance attached to one port.
type ACC struct {
	cfg Config
	eng *eventsim.Engine

	history  []dropRecord
	sessions []*Session

	// Window counters at the RED queue (reset every K).
	winArrivals uint64
	winDrops    uint64
	winBytes    uint64

	// Activations counts how many windows triggered inference.
	Activations uint64
	// FirstActivation is when the agent first activated (-1 before).
	FirstActivation eventsim.Time
}

// Attach wires an ACC agent onto a port whose qdisc must be a RED
// queue: it registers the drop-history hook, inserts the rate-limiter
// ingress stage, and schedules the monitoring loop. It panics on an
// invalid configuration; AttachE is the error-returning variant for
// runtime paths.
func Attach(eng *eventsim.Engine, port *netsim.Port, red *queue.RED, cfg Config) *ACC {
	a, err := AttachE(eng, port, red, cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// AttachE is Attach returning configuration errors instead of
// panicking. Nothing is wired to the port or engine when it errors.
func AttachE(eng *eventsim.Engine, port *netsim.Port, red *queue.RED, cfg Config) (*ACC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.NarrowFraction == 0 {
		cfg.NarrowFraction = 0.9
	}
	a := &ACC{cfg: cfg, eng: eng, FirstActivation: -1}

	red.OnDrop(func(now eventsim.Time, p *packet.Packet, reason queue.DropReason) {
		a.winDrops++
		if len(a.history) < cfg.HistoryLimit {
			a.history = append(a.history, dropRecord{dst: p.Value(packet.FDstIP), size: p.Size()})
		}
	})

	port.AddIngress(func(now eventsim.Time, p *packet.Packet) bool {
		return a.admit(now, p)
	})

	eng.Every(cfg.K, func(now eventsim.Time) { a.monitor(now) })
	eng.Every(cfg.CycleTime, func(now eventsim.Time) { a.revisit(now) })
	return a, nil
}

// admit polices a packet against installed sessions and feeds the
// window counters.
func (a *ACC) admit(now eventsim.Time, p *packet.Packet) bool {
	a.winArrivals++
	a.winBytes += uint64(p.Size())
	dst := p.Value(packet.FDstIP)
	for _, s := range a.sessions {
		if !s.Prefix.Contains(dst) {
			continue
		}
		s.arrivedBytes += uint64(p.Size())
		s.updateRate(now, a.cfg.RateEWMAInterval, p.Size())
		return s.bucket.Allow(now, p.Size())
	}
	return true
}

// updateRate maintains the EWMA arrival-rate estimate of the session.
func (s *Session) updateRate(now eventsim.Time, interval eventsim.Time, size int) {
	s.rateAcc += uint64(size)
	if s.rateAt == 0 {
		s.rateAt = now
		return
	}
	if now-s.rateAt < interval {
		return
	}
	inst := float64(s.rateAcc*8) / (now - s.rateAt).Seconds()
	if s.rate == 0 {
		s.rate = inst
	} else {
		s.rate = 0.7*s.rate + 0.3*inst
	}
	s.rateAcc = 0
	s.rateAt = now
}

// MarkMisbehaving resets the behaved timer of the session covering the
// prefix. Pushback calls this when upstream reports show the aggregate
// still arriving above its limit: local arrival counters only see the
// post-policing rate, which would otherwise release the session while
// the attack persists upstream.
func (a *ACC) MarkMisbehaving(p Prefix) {
	for _, s := range a.sessions {
		if s.Prefix == p {
			s.behavedFor = 0
			return
		}
	}
}

// Sessions returns a snapshot of the installed sessions.
func (a *ACC) Sessions() []Session {
	out := make([]Session, len(a.sessions))
	for i, s := range a.sessions {
		out[i] = *s
		out[i].bucket = nil
	}
	return out
}

// monitor is the every-K activation check.
func (a *ACC) monitor(now eventsim.Time) {
	arrivals, drops := a.winArrivals, a.winDrops
	bytes := a.winBytes
	history := a.history
	a.winArrivals, a.winDrops, a.winBytes = 0, 0, 0
	a.history = a.history[:0]

	if arrivals == 0 {
		return
	}
	dropRate := float64(drops) / float64(arrivals)
	if dropRate <= a.cfg.PHigh {
		return
	}
	a.Activations++
	if a.FirstActivation < 0 {
		a.FirstActivation = now
	}

	aggs := identifyAggregates(history, a.cfg.NarrowFraction)
	if len(aggs) == 0 {
		return
	}

	// Rate estimation: the aggregate's arrival rate over the window is
	// approximated from its share of drops, scaled by the overall drop
	// probability (drops ~= arrivals * p).
	arrivalBits := float64(bytes*8) / a.cfg.K.Seconds()
	var totalDropBytes uint64
	for _, ag := range aggs {
		totalDropBytes += ag.dropBytes
	}
	var dropBytesAll uint64
	for _, h := range history {
		dropBytesAll += uint64(h.size)
	}
	if dropBytesAll == 0 {
		return
	}
	type rated struct {
		prefix Prefix
		rate   float64 // bits/s estimate
		drops  uint64
	}
	var list []rated
	for _, ag := range aggs {
		// aggregate arrival bytes ~ aggregate drop bytes / p.
		est := float64(ag.dropBytes) / dropRate * 8 / a.cfg.K.Seconds()
		list = append(list, rated{prefix: ag.prefix, rate: est, drops: ag.drops})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].drops > list[j].drops })
	if len(list) > a.cfg.MaxSessions {
		list = list[:a.cfg.MaxSessions]
	}

	// Excess rate: reduce total arrivals to delivered/(1 - p_target).
	deliveredBits := arrivalBits * (1 - dropRate)
	excess := arrivalBits - deliveredBits/(1-a.cfg.PTarget)
	if excess <= 0 {
		return
	}

	// Water-filling: limit the minimum number of aggregates to a
	// common L with sum(rate_i - L) = excess.
	rates := make([]float64, len(list))
	for i, r := range list {
		rates[i] = r.rate
	}
	limit, count := waterfill(rates, excess)

	for i := 0; i < count; i++ {
		a.install(now, list[i].prefix, limit, list[i].rate)
	}
}

// waterfill returns the common limit L and the number of aggregates to
// police so that sum over the top |A| of (rate_i - L) = excess. rates
// must be sorted descending.
func waterfill(rates []float64, excess float64) (limit float64, count int) {
	if len(rates) == 0 {
		return 0, 0
	}
	var sum float64
	for i := 0; i < len(rates); i++ {
		sum += rates[i]
		l := (sum - excess) / float64(i+1)
		if l < 0 {
			l = 0
		}
		if i+1 == len(rates) || l >= rates[i+1] {
			return l, i + 1
		}
	}
	return 0, len(rates)
}

// install creates or updates a session for the prefix.
func (a *ACC) install(now eventsim.Time, p Prefix, limitBits, rateEst float64) {
	if limitBits < 1000 {
		limitBits = 1000 // keep the bucket functional
	}
	for _, s := range a.sessions {
		if s.Prefix == p {
			s.LimitBits = limitBits
			s.bucket.SetRate(limitBits)
			s.behavedFor = 0
			return
		}
	}
	if len(a.sessions) >= a.cfg.MaxSessions {
		return
	}
	s := &Session{
		Prefix:      p,
		LimitBits:   limitBits,
		InstalledAt: now,
		bucket:      queue.NewTokenBucket(limitBits, 6000),
		lastRevisit: now,
		rate:        rateEst,
	}
	a.sessions = append(a.sessions, s)
}

// revisit implements the session lifecycle: an aggregate that has
// behaved (arrived below its limit) for FreeTime — and has lived at
// least ReleaseTime — is released.
func (a *ACC) revisit(now eventsim.Time) {
	kept := a.sessions[:0]
	for _, s := range a.sessions {
		window := now - s.lastRevisit
		if window <= 0 {
			kept = append(kept, s)
			continue
		}
		arrBits := float64(s.arrivedBytes*8) / window.Seconds()
		s.arrivedBytes = 0
		s.lastRevisit = now
		if arrBits <= s.LimitBits {
			s.behavedFor += window
		} else {
			s.behavedFor = 0
		}
		if now-s.InstalledAt >= a.cfg.ReleaseTime && s.behavedFor >= a.cfg.FreeTime {
			continue // released
		}
		kept = append(kept, s)
	}
	a.sessions = kept
}

// aggregate is an identified high-drop prefix.
type aggregate struct {
	prefix    Prefix
	drops     uint64
	dropBytes uint64
}

// identifyAggregates implements ACC's inference: per-address drop
// counts, the 2x-mean filter, /24 grouping, and the subtree walk-down.
func identifyAggregates(history []dropRecord, narrowFraction float64) []aggregate {
	if len(history) == 0 {
		return nil
	}
	perAddr := map[uint32]uint64{}
	for _, h := range history {
		perAddr[h.dst]++
	}
	mean := float64(len(history)) / float64(len(perAddr))
	hot := map[uint32]bool{}
	for addr, n := range perAddr {
		if float64(n) >= 2*mean {
			hot[addr] = true
		}
	}
	if len(hot) == 0 {
		// Uniformly spread drops: fall back to treating every address
		// as hot so dominant /24s can still emerge.
		for addr := range perAddr {
			hot[addr] = true
		}
	}

	// Group hot addresses into /24s and collect their drop mass.
	type bucket struct {
		drops uint64
		bytes uint64
		addrs []uint32
	}
	per24 := map[uint32]*bucket{}
	for _, h := range history {
		if !hot[h.dst] {
			continue
		}
		key := h.dst &^ 0xff
		b := per24[key]
		if b == nil {
			b = &bucket{}
			per24[key] = b
		}
		b.drops++
		b.bytes += uint64(h.size)
	}
	// Keep /24s above twice the mean /24 drop mass: aggregates must
	// stand out against the background.
	var total uint64
	for _, b := range per24 {
		total += b.drops
	}
	meanB := float64(total) / float64(len(per24))

	var out []aggregate
	for key, b := range per24 {
		if float64(b.drops) < 2*meanB && len(per24) > 1 {
			continue
		}
		p := Prefix{Addr: key, Bits: 24}
		p = narrow(p, history, b.drops, narrowFraction)
		out = append(out, aggregate{prefix: p, drops: b.drops, dropBytes: b.bytes})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].drops > out[j].drops })
	return out
}

// narrow walks down the prefix subtree while one child holds at least
// narrowFraction of the parent's drops.
func narrow(p Prefix, history []dropRecord, parentDrops uint64, frac float64) Prefix {
	for p.Bits < 32 {
		childBits := p.Bits + 1
		mask := ^uint32(0) << (32 - childBits)
		counts := map[uint32]uint64{}
		for _, h := range history {
			if p.Contains(h.dst) {
				counts[h.dst&mask]++
			}
		}
		var bestAddr uint32
		var bestCount uint64
		for addr, n := range counts {
			if n > bestCount {
				bestAddr, bestCount = addr, n
			}
		}
		if float64(bestCount) < frac*float64(parentDrops) {
			return p
		}
		p = Prefix{Addr: bestAddr, Bits: childBits}
		parentDrops = bestCount
	}
	return p
}
