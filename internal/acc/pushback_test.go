package acc

import (
	"testing"

	"accturbo/internal/eventsim"
	"accturbo/internal/netsim"
	"accturbo/internal/packet"
	"accturbo/internal/queue"
	"accturbo/internal/traffic"
)

// pushbackTopology builds the two-upstream scenario: U1 and U2 each
// feed the core C over 20 Mbps links; C's output is the 10 Mbps
// bottleneck. Benign traffic enters through both upstreams; the attack
// enters only through U1. Returns the end-to-end benign drop
// percentage (edge arrivals vs core deliveries).
func pushbackTopology(t *testing.T, withPushback bool) float64 {
	t.Helper()
	const (
		coreRate = 10e6
		upRate   = 20e6
	)
	eng := eventsim.New()
	rec := netsim.NewRecorder(eventsim.Second)
	rec1 := netsim.NewRecorder(eventsim.Second)
	rec2 := netsim.NewRecorder(eventsim.Second)

	red := queue.NewRED(queue.DefaultREDConfig(int(coreRate/8/10), coreRate/8))
	core := netsim.NewPort(eng, red, coreRate, rec)
	agent := Attach(eng, core, red, DefaultConfig())

	u1 := netsim.NewPort(eng, queue.NewFIFO(int(upRate/8/10)), upRate, rec1)
	u2 := netsim.NewPort(eng, queue.NewFIFO(int(upRate/8/10)), upRate, rec2)
	netsim.Chain(eng, u1, core, eventsim.Millisecond)
	netsim.Chain(eng, u2, core, eventsim.Millisecond)

	if withPushback {
		ups := []*Upstream{NewUpstream("u1", u1), NewUpstream("u2", u2)}
		EnablePushback(eng, agent, ups)
	}

	// Benign: 4 Mbps of CAIDA-like background entering each upstream.
	// Random (Poisson) arrivals matter here: perfectly periodic CBR
	// phase-locks with the deterministic FIFO drain and never drops.
	mkBenign := func(i int64) traffic.Source {
		return traffic.NewBackground(traffic.BackgroundConfig{
			Rate: 4e6, Start: 0, End: 40 * eventsim.Second, Seed: i,
		})
	}
	// Attack: 60 Mbps into U1 (3x its link), distinct /24.
	attackSpec := traffic.FlowSpec{
		SrcIP: packet.V4Addr{9, 9, 9, 9}, DstIP: packet.V4Addr{10, 250, 9, 0},
		Protocol: packet.ProtoUDP, SrcPort: 123, DstPort: 80,
		TTL: 54, Size: 500, Label: packet.Malicious, Vector: "flood",
		FlowID: 5, DstHostBits: 4,
	}
	attack := traffic.NewCBR(5*eventsim.Second, 40*eventsim.Second, 60e6, attackSpec.Factory(77))

	netsim.Replay(eng, traffic.Merge(mkBenign(1), attack), u1)
	netsim.Replay(eng, mkBenign(2), u2)
	eng.RunUntil(40 * eventsim.Second)

	offered := rec1.ArrivedBenign() + rec2.ArrivedBenign()
	if offered == 0 {
		t.Fatal("no benign traffic offered")
	}
	delivered := rec.DeliveredBenignPkts()
	return 100 * (1 - float64(delivered)/float64(offered))
}

func TestPushbackProtectsSharedUpstreamLink(t *testing.T) {
	local := pushbackTopology(t, false)
	pushed := pushbackTopology(t, true)

	// Without pushback the attack saturates U1's 20 Mbps link, so the
	// benign flow sharing U1 is crushed before the core's ACC can act.
	// With pushback the limit moves to U1's ingress and that benign
	// flow survives.
	localBenign := local
	pushedBenign := pushed
	if pushedBenign >= localBenign {
		t.Fatalf("pushback did not help: local %.1f%% vs pushback %.1f%%", localBenign, pushedBenign)
	}
	if localBenign-pushedBenign < 10 {
		t.Fatalf("pushback benefit too small: local %.1f%% vs pushback %.1f%%", localBenign, pushedBenign)
	}
}

func TestUpstreamLimiterMechanics(t *testing.T) {
	eng := eventsim.New()
	port := netsim.NewPort(eng, queue.NewFIFO(100_000), 10e6, nil)
	u := NewUpstream("u", port)

	prefix := Prefix{Addr: 0x0a000500, Bits: 24}
	u.Install(prefix, 8e6)
	if u.Rules() != 1 {
		t.Fatalf("rules = %d", u.Rules())
	}
	// Matching packet consumes tokens and is counted.
	p := &packet.Packet{SrcIP: packet.V4(1, 1, 1, 1), DstIP: packet.V4(10, 0, 5, 7),
		Length: 500, Protocol: packet.ProtoUDP}
	if !u.admit(0, p) {
		t.Fatal("first packet should conform")
	}
	if n, ok := u.Report(prefix); !ok || n != 500 {
		t.Fatalf("report = %d, %v", n, ok)
	}
	// Report resets the counter.
	if n, _ := u.Report(prefix); n != 0 {
		t.Fatalf("report not reset: %d", n)
	}
	// Non-matching packets pass untouched.
	q := p.Clone()
	q.DstIP = packet.V4(99, 0, 0, 1)
	if !u.admit(0, q) {
		t.Fatal("non-matching packet policed")
	}
	// Update keeps the rule; release removes it.
	u.Install(prefix, 1e6)
	if u.Rules() != 1 {
		t.Fatal("install duplicated rule")
	}
	u.Release(prefix)
	if u.Rules() != 0 {
		t.Fatal("release failed")
	}
	if _, ok := u.Report(prefix); ok {
		t.Fatal("report on released rule")
	}
}

func TestPushbackReleasesWithDownstream(t *testing.T) {
	eng := eventsim.New()
	const link = 10e6
	red := queue.NewRED(queue.DefaultREDConfig(int(link/8/10), link/8))
	core := netsim.NewPort(eng, red, link, netsim.NewRecorder(eventsim.Second))
	cfg := DefaultConfig()
	cfg.ReleaseTime = 2 * eventsim.Second
	cfg.FreeTime = 3 * eventsim.Second
	cfg.CycleTime = eventsim.Second
	agent := Attach(eng, core, red, cfg)

	up := netsim.NewPort(eng, queue.NewFIFO(100_000), 20e6, nil)
	netsim.Chain(eng, up, core, eventsim.Millisecond)
	u := NewUpstream("u", up)
	pb := EnablePushback(eng, agent, []*Upstream{u})

	spec := traffic.FlowSpec{
		SrcIP: packet.V4Addr{9, 9, 9, 9}, DstIP: packet.V4Addr{10, 0, 5, 1},
		Protocol: packet.ProtoUDP, SrcPort: 1, DstPort: 2, TTL: 64, Size: 500,
		Label: packet.Malicious, FlowID: 5,
	}
	netsim.Replay(eng, traffic.NewCBR(0, 8*eventsim.Second, 40e6, spec.Factory(1)), up)
	eng.RunUntil(10 * eventsim.Second)
	if u.Rules() == 0 {
		t.Fatal("no upstream rule installed during the attack")
	}
	if pb.Propagations == 0 {
		t.Fatal("no propagations recorded")
	}
	// Quiet period: downstream releases, upstream must follow.
	eng.RunUntil(40 * eventsim.Second)
	if u.Rules() != 0 {
		t.Fatalf("upstream rules not released: %d", u.Rules())
	}
	if len(pb.ActivePrefixes()) != 0 {
		t.Fatalf("active prefixes remain: %v", pb.ActivePrefixes())
	}
}

func TestEnablePushbackValidation(t *testing.T) {
	eng := eventsim.New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EnablePushback(eng, nil, nil)
}
