package acc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"accturbo/internal/eventsim"
	"accturbo/internal/netsim"
	"accturbo/internal/packet"
	"accturbo/internal/queue"
	"accturbo/internal/traffic"
)

func TestDefaultConfigMatchesTable4(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.K != 2*eventsim.Second {
		t.Errorf("K = %v, want 2s", cfg.K)
	}
	if cfg.PHigh != 0.1 {
		t.Errorf("PHigh = %v, want 0.1", cfg.PHigh)
	}
	if cfg.PTarget != 0.05 {
		t.Errorf("PTarget = %v, want 0.05", cfg.PTarget)
	}
	if cfg.RateEWMAInterval != 100*eventsim.Millisecond {
		t.Errorf("rate EWMA interval = %v, want 0.1s", cfg.RateEWMAInterval)
	}
	if cfg.MaxSessions != 5 {
		t.Errorf("MaxSessions = %d, want 5", cfg.MaxSessions)
	}
	if cfg.ReleaseTime != 10*eventsim.Second {
		t.Errorf("ReleaseTime = %v, want 10s", cfg.ReleaseTime)
	}
	if cfg.FreeTime != 20*eventsim.Second {
		t.Errorf("FreeTime = %v, want 20s", cfg.FreeTime)
	}
	if cfg.CycleTime != 5*eventsim.Second {
		t.Errorf("CycleTime = %v, want 5s", cfg.CycleTime)
	}
	if cfg.InitTime != 500*eventsim.Millisecond {
		t.Errorf("InitTime = %v, want 0.5s", cfg.InitTime)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(c *Config){
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.PHigh = 0 },
		func(c *Config) { c.PHigh = 1.5 },
		func(c *Config) { c.PTarget = 0.5 },
		func(c *Config) { c.MaxSessions = 0 },
		func(c *Config) { c.HistoryLimit = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate config", i)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := Prefix{Addr: 0x0a000500, Bits: 24} // 10.0.5.0/24
	if !p.Contains(0x0a000501) || !p.Contains(0x0a0005ff) {
		t.Error("prefix should contain its hosts")
	}
	if p.Contains(0x0a000601) {
		t.Error("prefix should exclude neighbors")
	}
	if p.String() != "10.0.5.0/24" {
		t.Errorf("String = %q", p.String())
	}
	all := Prefix{Bits: 0}
	if !all.Contains(0xffffffff) {
		t.Error("/0 contains everything")
	}
}

func TestWaterfill(t *testing.T) {
	// rates 10, 6, 2; excess 4 -> limiting only the top: L = 10-4 = 6,
	// which is >= rates[1] = 6, so one aggregate suffices.
	l, n := waterfill([]float64{10, 6, 2}, 4)
	if n != 1 || l != 6 {
		t.Fatalf("got L=%v n=%d, want 6, 1", l, n)
	}
	// excess 8: top two to L = (16-8)/2 = 4 >= rates[2]=2. n=2.
	l, n = waterfill([]float64{10, 6, 2}, 8)
	if n != 2 || l != 4 {
		t.Fatalf("got L=%v n=%d, want 4, 2", l, n)
	}
	// excess exceeding everything: L clamps at 0, all aggregates.
	l, n = waterfill([]float64{10, 6, 2}, 100)
	if n != 3 || l != 0 {
		t.Fatalf("got L=%v n=%d, want 0, 3", l, n)
	}
	if _, n := waterfill(nil, 5); n != 0 {
		t.Fatal("empty rates")
	}
}

// Invariant: the water-filling identity sum(min(rate_i, L)... ) —
// specifically sum over chosen aggregates of (rate_i - L) >= excess
// (equality unless L clamped at 0), and L never exceeds the smallest
// chosen rate's ceiling rule.
func TestQuickWaterfill(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = r.Float64() * 100
		}
		// sort descending
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rates[j] > rates[i] {
					rates[i], rates[j] = rates[j], rates[i]
				}
			}
		}
		var total float64
		for _, x := range rates {
			total += x
		}
		excess := r.Float64() * total * 1.2
		l, cnt := waterfill(rates, excess)
		if cnt < 1 || cnt > n || l < 0 {
			return false
		}
		var shed float64
		for i := 0; i < cnt; i++ {
			shed += rates[i] - l
		}
		if l > 0 {
			// Exact shed within float tolerance.
			return shed >= excess-1e-6 && shed <= excess+1e-6
		}
		return true // clamped: shed everything possible
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func mkHistory(entries map[uint32]int) []dropRecord {
	var h []dropRecord
	for addr, n := range entries {
		for i := 0; i < n; i++ {
			h = append(h, dropRecord{dst: addr, size: 500})
		}
	}
	return h
}

func TestIdentifyAggregatesFindsHotPrefix(t *testing.T) {
	// 100 drops on 10.0.5.x, background noise of 1 drop each on
	// scattered addresses.
	entries := map[uint32]int{}
	for i := 0; i < 10; i++ {
		entries[0x0a000500|uint32(i)] = 10
	}
	for i := 0; i < 20; i++ {
		entries[0xc0a80000|uint32(i)<<8|uint32(i)] = 1
	}
	aggs := identifyAggregates(mkHistory(entries), 0.9)
	if len(aggs) == 0 {
		t.Fatal("no aggregates identified")
	}
	top := aggs[0]
	if !top.prefix.Contains(0x0a000505) {
		t.Fatalf("top aggregate %v does not cover the hot prefix", top.prefix)
	}
	if top.drops != 100 {
		t.Fatalf("top drops = %d, want 100", top.drops)
	}
}

func TestIdentifyAggregatesNarrowsToHost(t *testing.T) {
	// All drops on a single address: the subtree walk must narrow to /32.
	entries := map[uint32]int{0x0a000507: 50}
	aggs := identifyAggregates(mkHistory(entries), 0.9)
	if len(aggs) != 1 {
		t.Fatalf("%d aggregates", len(aggs))
	}
	if aggs[0].prefix.Bits != 32 || aggs[0].prefix.Addr != 0x0a000507 {
		t.Fatalf("prefix = %v, want 10.0.5.7/32", aggs[0].prefix)
	}
}

func TestIdentifyAggregatesEmptyHistory(t *testing.T) {
	if aggs := identifyAggregates(nil, 0.9); aggs != nil {
		t.Fatalf("empty history gave %v", aggs)
	}
}

// buildScenario wires a port with RED + ACC and replays the Fig. 2
// workload at a small scale.
func runACCOriginal(t *testing.T, cfg Config, linkRate float64) (*netsim.Recorder, *ACC) {
	t.Helper()
	eng := eventsim.New()
	rec := netsim.NewRecorder(eventsim.Second)
	red := queue.NewRED(queue.DefaultREDConfig(int(linkRate/8/10), linkRate/8))
	port := netsim.NewPort(eng, red, linkRate, rec)
	agent := Attach(eng, port, red, cfg)
	netsim.Replay(eng, traffic.ACCOriginal(linkRate), port)
	eng.RunUntil(50 * eventsim.Second)
	return rec, agent
}

func TestACCMitigatesOriginalExperiment(t *testing.T) {
	const link = 10e6
	rec, agent := runACCOriginal(t, DefaultConfig(), link)

	if agent.Activations == 0 {
		t.Fatal("agent never activated despite a 3x attack")
	}
	if agent.FirstActivation < 13*eventsim.Second {
		t.Fatalf("activated at %v, before the attack began", agent.FirstActivation)
	}
	// The paper reports ~4 s reaction with K=2 s: activation within
	// [13s, 21s].
	if agent.FirstActivation > 21*eventsim.Second {
		t.Fatalf("activation too slow: %v", agent.FirstActivation)
	}
	// After mitigation, benign aggregates should recover: in the last
	// 10 s of the attack plateau, benign delivered >> no-defense case.
	benign := rec.DeliveredBits(packet.Benign)
	var avg float64
	for i := 20; i < 25; i++ {
		avg += benign[i]
	}
	avg /= 5
	if avg < 0.5*link {
		t.Fatalf("benign throughput %v during mitigated attack, want > 50%% of link", avg)
	}
}

func TestFIFOBaselineFailsWhereACCSucceeds(t *testing.T) {
	const link = 10e6
	// FIFO only.
	eng := eventsim.New()
	rec := netsim.NewRecorder(eventsim.Second)
	port := netsim.NewPort(eng, queue.NewFIFO(int(link/8/10)), link, rec)
	netsim.Replay(eng, traffic.ACCOriginal(link), port)
	eng.RunUntil(50 * eventsim.Second)
	benign := rec.DeliveredBits(packet.Benign)
	var fifoAvg float64
	for i := 20; i < 25; i++ {
		fifoAvg += benign[i]
	}
	fifoAvg /= 5

	recACC, _ := runACCOriginal(t, DefaultConfig(), link)
	benignACC := recACC.DeliveredBits(packet.Benign)
	var accAvg float64
	for i := 20; i < 25; i++ {
		accAvg += benignACC[i]
	}
	accAvg /= 5
	if accAvg <= fifoAvg*1.2 {
		t.Fatalf("ACC (%v bps) should beat FIFO (%v bps) under attack", accAvg, fifoAvg)
	}
}

func TestSessionsInstallAndRelease(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReleaseTime = 2 * eventsim.Second
	cfg.FreeTime = 3 * eventsim.Second
	cfg.CycleTime = eventsim.Second

	const link = 10e6
	eng := eventsim.New()
	red := queue.NewRED(queue.DefaultREDConfig(int(link/8/10), link/8))
	port := netsim.NewPort(eng, red, link, netsim.NewRecorder(eventsim.Second))
	agent := Attach(eng, port, red, cfg)

	// Attack for 10 s, then silence until 40 s.
	spec := traffic.FlowSpec{
		SrcIP: packet.V4Addr{9, 9, 9, 9}, DstIP: packet.V4Addr{10, 0, 5, 1},
		Protocol: packet.ProtoUDP, SrcPort: 1, DstPort: 2, TTL: 64, Size: 500,
		Label: packet.Malicious, FlowID: 5,
	}
	netsim.Replay(eng, traffic.NewCBR(0, 10*eventsim.Second, 40e6, spec.Factory(1)), port)
	// Keep the clock running to 40 s so revisits happen.
	eng.Every(eventsim.Second, func(now eventsim.Time) {})
	eng.RunUntil(40 * eventsim.Second)

	if agent.Activations == 0 {
		t.Fatal("no activation")
	}
	if len(agent.Sessions()) != 0 {
		t.Fatalf("sessions not released after quiet period: %v", agent.Sessions())
	}
}

func TestSessionLimitRespected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSessions = 2
	const link = 10e6
	eng := eventsim.New()
	red := queue.NewRED(queue.DefaultREDConfig(int(link/8/10), link/8))
	port := netsim.NewPort(eng, red, link, netsim.NewRecorder(eventsim.Second))
	agent := Attach(eng, port, red, cfg)

	// Four simultaneous attack prefixes.
	var srcs []traffic.Source
	for i := 0; i < 4; i++ {
		spec := traffic.FlowSpec{
			SrcIP: packet.V4Addr{9, 9, 9, byte(i)}, DstIP: packet.V4Addr{10, 0, byte(10 + i), 1},
			Protocol: packet.ProtoUDP, SrcPort: 1, DstPort: 2, TTL: 64, Size: 500,
			Label: packet.Malicious, FlowID: uint32(10 + i),
		}
		srcs = append(srcs, traffic.NewCBR(0, 10*eventsim.Second, 15e6, spec.Factory(int64(i))))
	}
	netsim.Replay(eng, traffic.Merge(srcs...), port)
	eng.RunUntil(12 * eventsim.Second)
	if got := len(agent.Sessions()); got > 2 {
		t.Fatalf("%d sessions, limit 2", got)
	}
	if agent.Activations == 0 {
		t.Fatal("no activation")
	}
}

func TestNoActivationWithoutCongestion(t *testing.T) {
	const link = 10e6
	eng := eventsim.New()
	red := queue.NewRED(queue.DefaultREDConfig(int(link/8/10), link/8))
	port := netsim.NewPort(eng, red, link, netsim.NewRecorder(eventsim.Second))
	agent := Attach(eng, port, red, DefaultConfig())
	spec := traffic.FlowSpec{
		SrcIP: packet.V4Addr{1, 1, 1, 1}, DstIP: packet.V4Addr{10, 0, 1, 1},
		Protocol: packet.ProtoUDP, SrcPort: 1, DstPort: 2, TTL: 64, Size: 500,
	}
	netsim.Replay(eng, traffic.NewCBR(0, 10*eventsim.Second, 5e6, spec.Factory(1)), port)
	eng.RunUntil(12 * eventsim.Second)
	if agent.Activations != 0 {
		t.Fatalf("%d activations under 50%% load", agent.Activations)
	}
	if len(agent.Sessions()) != 0 {
		t.Fatal("sessions installed without congestion")
	}
}

func BenchmarkAdmitWithSessions(b *testing.B) {
	eng := eventsim.New()
	red := queue.NewRED(queue.DefaultREDConfig(100_000, 1e9))
	port := netsim.NewPort(eng, red, 10e6, nil)
	agent := Attach(eng, port, red, DefaultConfig())
	for i := 0; i < 5; i++ {
		agent.install(0, Prefix{Addr: uint32(i) << 8, Bits: 24}, 1e6, 2e6)
	}
	p := &packet.Packet{
		SrcIP: packet.V4(1, 1, 1, 1), DstIP: packet.V4(0, 0, 3, 7),
		Length: 500, Protocol: packet.ProtoUDP,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		agent.admit(eventsim.Time(i), p)
	}
}
