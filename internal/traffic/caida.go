package traffic

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
)

// BackgroundConfig parameterizes the CAIDA-like synthetic background
// trace. The paper replays CAIDA Equinix-NYC traces; we reproduce the
// statistics the evaluation depends on — many concurrent flows, a
// heavy-tailed flow-size distribution, a realistic protocol/port mix,
// and feature values spread across the header space — with a streaming
// generator.
type BackgroundConfig struct {
	// Rate is the long-run aggregate rate in bits/second.
	Rate float64
	// Start and End bound the trace.
	Start, End eventsim.Time
	// Seed makes the trace deterministic.
	Seed int64
	// MeanFlowPackets is the mean of the (geometric) packets-per-flow
	// distribution before Pareto tailing. Zero defaults to 12.
	MeanFlowPackets float64
	// ParetoAlpha shapes the heavy tail of flow sizes. Zero defaults
	// to 1.3 (a realistic elephant/mice mix).
	ParetoAlpha float64
}

// popular destination ports weighted roughly like a backbone mix.
var popularDstPorts = []struct {
	port   uint16
	weight int
}{
	{443, 40}, {80, 25}, {53, 8}, {22, 3}, {25, 2}, {123, 2}, {3389, 2},
	{8080, 3}, {993, 2}, {5222, 1}, {1935, 1}, {8443, 2},
}

// packet size mix: ACK-sized, mid, MTU-sized (tri-modal like real
// backbone traces).
var sizeMix = []struct {
	size   uint16
	weight int
}{
	{40, 30}, {52, 10}, {576, 15}, {1200, 10}, {1500, 35},
}

func pickPort(rng *rand.Rand, items []struct {
	port   uint16
	weight int
}) uint16 {
	total := 0
	for _, it := range items {
		total += it.weight
	}
	n := rng.Intn(total)
	for _, it := range items {
		n -= it.weight
		if n < 0 {
			return it.port
		}
	}
	return items[0].port
}

func pickSize(rng *rand.Rand) uint16 {
	total := 0
	for _, it := range sizeMix {
		total += it.weight
	}
	n := rng.Intn(total)
	for _, it := range sizeMix {
		n -= it.weight
		if n < 0 {
			return it.size
		}
	}
	return sizeMix[0].size
}

// bgFlow is one active background flow.
type bgFlow struct {
	spec     *packet.Packet // template
	next     eventsim.Time
	interval eventsim.Time
	left     int
	seq      uint64
}

type bgHeap []*bgFlow

func (h bgHeap) Len() int { return len(h) }
func (h bgHeap) Less(i, j int) bool {
	if h[i].next != h[j].next {
		return h[i].next < h[j].next
	}
	return h[i].seq < h[j].seq
}
func (h bgHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *bgHeap) Push(x any)   { *h = append(*h, x.(*bgFlow)) }
func (h *bgHeap) Pop() any {
	old := *h
	n := len(old)
	f := old[n-1]
	*h = old[:n-1]
	return f
}

// Background is the CAIDA-like streaming source.
type Background struct {
	cfg         BackgroundConfig
	rng         *rand.Rand
	flows       bgHeap
	nextArrival eventsim.Time
	arrivalRate float64 // flows per second
	flowSeq     uint64
	id          uint16
	pool        *packet.Pool
}

// SetPool implements Pooled. Flow templates (bgFlow.spec) are retained
// by the generator and never pooled; only the stamped per-packet copies
// cycle through the pool.
func (b *Background) SetPool(pool *packet.Pool) { b.pool = pool }

func (b *Background) alloc() *packet.Packet {
	if b.pool != nil {
		return b.pool.Get()
	}
	return &packet.Packet{}
}

// NewBackground builds the generator. Flow arrivals are Poisson with a
// rate calibrated so the expected aggregate throughput matches
// cfg.Rate.
func NewBackground(cfg BackgroundConfig) *Background {
	if cfg.Rate <= 0 {
		panic(fmt.Sprintf("traffic: background rate %v must be positive", cfg.Rate))
	}
	if cfg.End <= cfg.Start {
		panic("traffic: background window empty")
	}
	if cfg.MeanFlowPackets == 0 {
		cfg.MeanFlowPackets = 12
	}
	if cfg.ParetoAlpha == 0 {
		cfg.ParetoAlpha = 1.3
	}
	b := &Background{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	// Expected bytes per flow = meanPkts * meanSize; meanSize from mix.
	meanSize := 0.0
	totalW := 0
	for _, it := range sizeMix {
		meanSize += float64(it.size) * float64(it.weight)
		totalW += it.weight
	}
	meanSize /= float64(totalW)
	// Pareto with alpha>1 scaled to mean MeanFlowPackets: mean of the
	// sampled distribution below is xm*alpha/(alpha-1); pick xm so the
	// mean matches.
	bytesPerFlow := cfg.MeanFlowPackets * meanSize
	b.arrivalRate = cfg.Rate / 8 / bytesPerFlow
	b.nextArrival = cfg.Start
	b.scheduleArrival()
	return b
}

func (b *Background) scheduleArrival() {
	gap := b.rng.ExpFloat64() / b.arrivalRate
	b.nextArrival += eventsim.FromSeconds(gap)
}

// flowPackets samples the packets-per-flow distribution: Pareto with
// mean MeanFlowPackets.
func (b *Background) flowPackets() int {
	alpha := b.cfg.ParetoAlpha
	xm := b.cfg.MeanFlowPackets * (alpha - 1) / alpha
	if xm < 1 {
		xm = 1
	}
	n := xm / math.Pow(b.rng.Float64(), 1/alpha)
	if n < 1 {
		n = 1
	}
	if n > 1e5 {
		n = 1e5
	}
	return int(n)
}

// spawnFlow creates a new background flow starting at time t.
func (b *Background) spawnFlow(t eventsim.Time) *bgFlow {
	b.flowSeq++
	proto := packet.ProtoTCP
	r := b.rng.Float64()
	switch {
	case r < 0.12:
		proto = packet.ProtoUDP
	case r < 0.14:
		proto = packet.ProtoICMP
	}
	tmpl := &packet.Packet{
		SrcIP:    packet.V4(byte(b.rng.Intn(224)), byte(b.rng.Intn(256)), byte(b.rng.Intn(256)), byte(b.rng.Intn(256))),
		DstIP:    packet.V4(198, 18, byte(b.rng.Intn(256)), byte(b.rng.Intn(256))),
		Protocol: proto,
		TTL:      uint8(32 + b.rng.Intn(224)),
		Label:    packet.Benign,
		FlowID:   uint32(b.flowSeq),
	}
	if proto != packet.ProtoICMP {
		tmpl.SrcPort = uint16(1024 + b.rng.Intn(64512))
		tmpl.DstPort = pickPort(b.rng, popularDstPorts)
		if proto == packet.ProtoTCP {
			tmpl.Flags = packet.FlagACK
		}
	}
	n := b.flowPackets()
	// Pace the flow so it lasts ~n * (5-50ms): interactive to bulky.
	interval := eventsim.FromSeconds(0.005 + 0.045*b.rng.Float64())
	return &bgFlow{
		spec:     tmpl,
		next:     t,
		interval: interval,
		left:     n,
		seq:      b.flowSeq,
	}
}

// Next implements Source.
func (b *Background) Next() (TimedPacket, bool) {
	for {
		// Admit all flow arrivals due before the earliest queued packet.
		for b.nextArrival < b.cfg.End &&
			(len(b.flows) == 0 || b.nextArrival <= b.flows[0].next) {
			f := b.spawnFlow(b.nextArrival)
			heap.Push(&b.flows, f)
			b.scheduleArrival()
		}
		if len(b.flows) == 0 {
			return TimedPacket{}, false
		}
		f := b.flows[0]
		if f.next >= b.cfg.End {
			heap.Pop(&b.flows)
			continue
		}
		b.id++
		p := b.alloc()
		*p = *f.spec
		p.ID = b.id
		p.Length = pickSize(b.rng)
		tp := TimedPacket{At: f.next, Pkt: p}
		f.left--
		if f.left <= 0 {
			heap.Pop(&b.flows)
		} else {
			f.next += f.interval
			heap.Fix(&b.flows, 0)
		}
		return tp, true
	}
}
