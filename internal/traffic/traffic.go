// Package traffic generates the workloads of the paper's evaluation:
// constant-bit-rate aggregates, the original ACC experiment's ramping
// attack, pulse-wave DDoS attacks, the attack variations of Table 3
// (single-flow, carpet bombing, source spoofing), a CAIDA-like
// synthetic background trace, and a CICDDoS-2019-like labeled attack
// day.
//
// All generators are deterministic given their seeds and stream packets
// through the Source interface, so multi-hour traces never need to be
// materialized in memory.
package traffic

import (
	"container/heap"
	"fmt"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
)

// TimedPacket is a packet with its arrival time at the switch.
type TimedPacket struct {
	At  eventsim.Time
	Pkt *packet.Packet
}

// Source streams packets in non-decreasing time order. Next returns
// ok=false when the source is exhausted.
type Source interface {
	Next() (TimedPacket, bool)
}

// Factory stamps the i-th packet of a source at virtual time t into
// dst, overwriting every field. The stamped packet's Length determines
// pacing (interval = bits/rate). Factories stamp rather than allocate
// so sources can recycle packets through a packet.Pool.
type Factory func(i uint64, t eventsim.Time, dst *packet.Packet)

// Pooled is implemented by sources that can recycle packets through a
// packet.Pool. Wrappers (Merge, Concat, Limit, Label, ...) forward
// SetPool to their children, so AttachPool reaches every generator in
// a composed scenario.
type Pooled interface {
	SetPool(pool *packet.Pool)
}

// AttachPool attaches a pool to a source tree. Sources that do not
// implement Pooled (pre-built slices, pcap replay) are left alone —
// pooling is an optimization, never a requirement.
func AttachPool(s Source, pool *packet.Pool) {
	if p, ok := s.(Pooled); ok {
		p.SetPool(pool)
	}
}

// RateFunc returns the source's target rate in bits/second at time t.
// A non-positive return pauses the source; pacing resumes at the next
// profile point.
type RateFunc func(t eventsim.Time) float64

// rated paces packets from a factory according to a rate function.
type rated struct {
	start, end eventsim.Time
	rate       RateFunc
	factory    Factory
	now        eventsim.Time
	i          uint64
	// pauseStep is how far to skip forward when the rate is zero.
	pauseStep eventsim.Time
	// pool, when set, recycles released packets instead of allocating.
	pool *packet.Pool
}

// SetPool implements Pooled.
func (s *rated) SetPool(pool *packet.Pool) { s.pool = pool }

func (s *rated) alloc() *packet.Packet {
	if s.pool != nil {
		return s.pool.Get()
	}
	return &packet.Packet{}
}

// NewRated builds a source that emits factory packets from start to end
// at the (possibly time-varying) rate. It is the generic building block
// behind CBR and ramping sources.
func NewRated(start, end eventsim.Time, rate RateFunc, factory Factory) Source {
	if end < start {
		panic(fmt.Sprintf("traffic: end %v before start %v", end, start))
	}
	if rate == nil || factory == nil {
		panic("traffic: nil rate or factory")
	}
	return &rated{
		start:     start,
		end:       end,
		rate:      rate,
		factory:   factory,
		now:       start,
		pauseStep: 10 * eventsim.Millisecond,
	}
}

// NewCBR builds a constant-bit-rate source.
func NewCBR(start, end eventsim.Time, rateBits float64, factory Factory) Source {
	if rateBits <= 0 {
		panic(fmt.Sprintf("traffic: CBR rate %v must be positive", rateBits))
	}
	return NewRated(start, end, func(eventsim.Time) float64 { return rateBits }, factory)
}

func (s *rated) Next() (TimedPacket, bool) {
	for s.now < s.end {
		r := s.rate(s.now)
		if r <= 0 {
			s.now += s.pauseStep
			continue
		}
		p := s.alloc()
		s.factory(s.i, s.now, p)
		s.i++
		tp := TimedPacket{At: s.now, Pkt: p}
		s.now += eventsim.Time(float64(p.Size()*8) / r * float64(eventsim.Second))
		return tp, true
	}
	return TimedPacket{}, false
}

// RatePoint anchors a piecewise-linear rate profile.
type RatePoint struct {
	At   eventsim.Time
	Bits float64
}

// Profile builds a RateFunc interpolating linearly between points.
// Before the first point the first rate applies; after the last, the
// last rate applies. Points must be in increasing time order.
func Profile(points ...RatePoint) RateFunc {
	if len(points) == 0 {
		panic("traffic: empty rate profile")
	}
	for i := 1; i < len(points); i++ {
		if points[i].At <= points[i-1].At {
			panic(fmt.Sprintf("traffic: profile points out of order at %d", i))
		}
	}
	return func(t eventsim.Time) float64 {
		if t <= points[0].At {
			return points[0].Bits
		}
		for i := 1; i < len(points); i++ {
			if t <= points[i].At {
				span := float64(points[i].At - points[i-1].At)
				frac := float64(t-points[i-1].At) / span
				return points[i-1].Bits + frac*(points[i].Bits-points[i-1].Bits)
			}
		}
		return points[len(points)-1].Bits
	}
}

// merge combines sources in global time order.
type merge struct {
	h mergeHeap
}

type mergeItem struct {
	tp  TimedPacket
	src Source
	seq int // insertion order breaks ties deterministically
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].tp.At != h[j].tp.At {
		return h[i].tp.At < h[j].tp.At
	}
	return h[i].seq < h[j].seq
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Merge interleaves sources by packet timestamp. Sources that are
// already drained are skipped.
func Merge(sources ...Source) Source {
	m := &merge{}
	for i, s := range sources {
		if tp, ok := s.Next(); ok {
			heap.Push(&m.h, mergeItem{tp: tp, src: s, seq: i})
		}
	}
	return m
}

// SetPool forwards the pool to every still-live child source. Packets
// pre-pulled at Merge construction were born before the pool attached;
// they are ordinary heap packets the pool simply adopts on release.
func (m *merge) SetPool(pool *packet.Pool) {
	for _, it := range m.h {
		AttachPool(it.src, pool)
	}
}

func (m *merge) Next() (TimedPacket, bool) {
	if len(m.h) == 0 {
		return TimedPacket{}, false
	}
	it := m.h[0]
	if tp, ok := it.src.Next(); ok {
		m.h[0] = mergeItem{tp: tp, src: it.src, seq: it.seq}
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
	return it.tp, true
}

// Concat plays sources back to back in argument order. Callers must
// ensure each source's timestamps follow the previous source's.
func Concat(sources ...Source) Source {
	return &concat{rest: sources}
}

type concat struct {
	rest []Source
}

// SetPool implements Pooled by forwarding to every remaining source.
func (c *concat) SetPool(pool *packet.Pool) {
	for _, s := range c.rest {
		AttachPool(s, pool)
	}
}

func (c *concat) Next() (TimedPacket, bool) {
	for len(c.rest) > 0 {
		if tp, ok := c.rest[0].Next(); ok {
			return tp, true
		}
		c.rest = c.rest[1:]
	}
	return TimedPacket{}, false
}

// FromSlice replays a pre-built packet list; used by tests and the pcap
// replay tooling.
func FromSlice(pkts []TimedPacket) Source {
	return &sliceSource{pkts: pkts}
}

type sliceSource struct {
	pkts []TimedPacket
	i    int
}

func (s *sliceSource) Next() (TimedPacket, bool) {
	if s.i >= len(s.pkts) {
		return TimedPacket{}, false
	}
	tp := s.pkts[s.i]
	s.i++
	return tp, true
}

// Collect drains a source into a slice (tests and trace export).
func Collect(s Source) []TimedPacket {
	var out []TimedPacket
	for {
		tp, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, tp)
	}
}

// Limit caps a source at n packets.
func Limit(s Source, n int) Source { return &limited{s: s, left: n} }

type limited struct {
	s    Source
	left int
}

// SetPool implements Pooled by forwarding.
func (l *limited) SetPool(pool *packet.Pool) { AttachPool(l.s, pool) }

func (l *limited) Next() (TimedPacket, bool) {
	if l.left <= 0 {
		return TimedPacket{}, false
	}
	l.left--
	return l.s.Next()
}

// Label rewrites the ground-truth label and vector of every packet from
// the wrapped source.
func Label(s Source, label packet.Label, vector string) Source {
	return &labeled{s: s, label: label, vector: vector}
}

type labeled struct {
	s      Source
	label  packet.Label
	vector string
}

// SetPool implements Pooled by forwarding.
func (l *labeled) SetPool(pool *packet.Pool) { AttachPool(l.s, pool) }

func (l *labeled) Next() (TimedPacket, bool) {
	tp, ok := l.s.Next()
	if !ok {
		return TimedPacket{}, false
	}
	tp.Pkt.Label = l.label
	tp.Pkt.Vector = l.vector
	return tp, true
}
