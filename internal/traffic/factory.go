package traffic

import (
	"math/rand"
	"net/netip"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
)

// FlowSpec describes a fixed template from which factories stamp
// packets. Zero-valued randomization knobs leave the corresponding
// field constant.
type FlowSpec struct {
	SrcIP    packet.V4Addr
	DstIP    packet.V4Addr
	Protocol packet.Proto
	SrcPort  uint16
	DstPort  uint16
	TTL      uint8
	Size     uint16 // total IP length in bytes
	Flags    uint8  // TCP only
	Label    packet.Label
	Vector   string
	FlowID   uint32

	// Randomization knobs (applied per packet with the factory's RNG).

	// RandomizeSrcHost draws the last SrcHostBits of the source
	// address uniformly (source spoofing / reflector pools).
	SrcHostBits int
	// DstHostBits does the same for the destination (carpet bombing
	// uses 8: a /24).
	DstHostBits int
	// RandomSrcPort / RandomDstPort draw the port uniformly from
	// [1024, 65536).
	RandomSrcPort bool
	RandomDstPort bool
	// SrcPortChoices, when non-empty, draws the source port from this
	// set (vectors that reflect off several services).
	SrcPortChoices []uint16
	// SizeJitter adds a uniform value in [0, SizeJitter) to Size.
	SizeJitter int
	// TTLJitter adds a uniform value in [0, TTLJitter) to TTL.
	TTLJitter int
}

// Factory returns a Factory stamping packets from the spec using a
// deterministic RNG derived from seed. The whole-struct assignment
// overwrites every field of dst, so recycled packets carry no state
// from their previous life.
func (s FlowSpec) Factory(seed int64) Factory {
	rng := rand.New(rand.NewSource(seed))
	spec := s
	return func(i uint64, _ eventsim.Time, p *packet.Packet) {
		*p = packet.Packet{
			SrcIP:    spec.SrcIP.Addr(),
			DstIP:    spec.DstIP.Addr(),
			Protocol: spec.Protocol,
			SrcPort:  spec.SrcPort,
			DstPort:  spec.DstPort,
			TTL:      spec.TTL,
			Length:   spec.Size,
			Flags:    spec.Flags,
			ID:       uint16(i),
			Label:    spec.Label,
			Vector:   spec.Vector,
			FlowID:   spec.FlowID,
		}
		if spec.SrcHostBits > 0 {
			p.SrcIP = randomizeHost(rng, spec.SrcIP, spec.SrcHostBits)
		}
		if spec.DstHostBits > 0 {
			p.DstIP = randomizeHost(rng, spec.DstIP, spec.DstHostBits)
		}
		if spec.RandomSrcPort {
			p.SrcPort = ephemeralPort(rng)
		}
		if len(spec.SrcPortChoices) > 0 {
			p.SrcPort = spec.SrcPortChoices[rng.Intn(len(spec.SrcPortChoices))]
		}
		if spec.RandomDstPort {
			p.DstPort = ephemeralPort(rng)
		}
		if spec.SizeJitter > 0 {
			p.Length = spec.Size + uint16(rng.Intn(spec.SizeJitter))
		}
		if spec.TTLJitter > 0 {
			p.TTL = spec.TTL + uint8(rng.Intn(spec.TTLJitter))
		}
	}
}

func ephemeralPort(rng *rand.Rand) uint16 {
	return uint16(1024 + rng.Intn(65536-1024))
}

// randomizeHost replaces the low `bits` host part of base with a
// random value.
func randomizeHost(rng *rand.Rand, base packet.V4Addr, bits int) netip.Addr {
	if bits > 32 {
		bits = 32
	}
	v := base.Uint32()
	mask := uint32(1)<<bits - 1
	v = (v &^ mask) | (rng.Uint32() & mask)
	return packet.V4AddrFromUint32(v).Addr()
}
