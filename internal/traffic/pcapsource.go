package traffic

import (
	"errors"
	"fmt"
	"io"

	"accturbo/internal/pcap"
)

// PcapSource adapts a pcap capture into a Source, so recorded or
// previously exported traces replay through the simulator exactly like
// synthetic workloads. Labels are not stored in pcap; a classifier may
// be supplied to restore ground truth (e.g. by destination prefix), or
// left nil to treat everything as benign.
type PcapSource struct {
	r        *pcap.Reader
	classify func(tp *TimedPacket)
	err      error
}

// NewPcapSource wraps an open pcap reader. classify, when non-nil, is
// applied to every packet (set Label/Vector/FlowID there).
func NewPcapSource(r *pcap.Reader, classify func(tp *TimedPacket)) *PcapSource {
	if r == nil {
		panic("traffic: nil pcap reader")
	}
	return &PcapSource{r: r, classify: classify}
}

// Next implements Source.
func (s *PcapSource) Next() (TimedPacket, bool) {
	if s.err != nil {
		return TimedPacket{}, false
	}
	at, p, err := s.r.Next()
	if err != nil {
		if !errors.Is(err, io.EOF) {
			s.err = fmt.Errorf("traffic: reading pcap: %w", err)
		}
		return TimedPacket{}, false
	}
	tp := TimedPacket{At: at, Pkt: p}
	if s.classify != nil {
		s.classify(&tp)
	}
	return tp, true
}

// Err reports a non-EOF read error encountered during iteration, if
// any.
func (s *PcapSource) Err() error { return s.err }
