package traffic

import (
	"testing"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
)

func TestEvasionLevels(t *testing.T) {
	end := eventsim.Second
	// Level 0: one 5-tuple. Level 6: everything random.
	lvl0, err := Evasion(0, 0, end, 8e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	flows := map[packet.Flow]bool{}
	for _, tp := range Collect(lvl0) {
		flows[tp.Pkt.Flow()] = true
		if tp.Pkt.Label != packet.Malicious {
			t.Fatal("evasion traffic must be malicious")
		}
	}
	if len(flows) != 1 {
		t.Fatalf("level 0 should be one flow, got %d", len(flows))
	}

	lvl6, err := Evasion(6, 0, end, 8e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	srcs := map[uint32]bool{}
	dsts := map[uint32]bool{}
	lens := map[uint16]bool{}
	n := 0
	for _, tp := range Collect(lvl6) {
		srcs[tp.Pkt.Value(packet.FSrcIP)] = true
		dsts[tp.Pkt.Value(packet.FDstIP)] = true
		lens[tp.Pkt.Length] = true
		n++
	}
	if len(srcs) < n/2 || len(dsts) < n/10 || len(lens) < 100 {
		t.Fatalf("level 6 not random enough: %d srcs %d dsts %d lens of %d pkts",
			len(srcs), len(dsts), len(lens), n)
	}

	if _, err := Evasion(-1, 0, end, 8e6, 1); err == nil {
		t.Fatal("negative level accepted")
	}
	if _, err := Evasion(7, 0, end, 8e6, 1); err == nil {
		t.Fatal("level 7 accepted")
	}
}

func TestSpreadAttack(t *testing.T) {
	end := eventsim.Second
	src, err := SpreadAttack(8, 0, end, 8e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	flows := map[packet.Flow]int{}
	bytes := 0
	for _, tp := range Collect(src) {
		flows[tp.Pkt.Flow()]++
		bytes += tp.Pkt.Size()
	}
	if len(flows) != 8 {
		t.Fatalf("%d distinct aggregates, want 8", len(flows))
	}
	// Total rate preserved (within 10%).
	got := float64(bytes) * 8
	if got < 0.9*8e6 || got > 1.1*8e6 {
		t.Fatalf("total spread rate %v, want ~8e6", got)
	}
	if _, err := SpreadAttack(0, 0, end, 8e6, 1); err == nil {
		t.Fatal("zero aggregates accepted")
	}
}

func TestSwappingAttackShapes(t *testing.T) {
	benign, attack := SwappingAttack(0, eventsim.Second, 4e6, 8e6, 1)
	bFlows := map[packet.Flow]bool{}
	for _, tp := range Collect(benign) {
		bFlows[tp.Pkt.Flow()] = true
		if tp.Pkt.Label != packet.Benign {
			t.Fatal("stream must be benign")
		}
	}
	if len(bFlows) != 1 {
		t.Fatalf("benign stream should be one flow, got %d", len(bFlows))
	}
	aFlows := map[packet.Flow]bool{}
	n := 0
	for _, tp := range Collect(attack) {
		aFlows[tp.Pkt.Flow()] = true
		n++
		if tp.Pkt.Label != packet.Malicious {
			t.Fatal("noise must be malicious")
		}
	}
	if len(aFlows) < n/2 {
		t.Fatalf("noise should be near-unique per packet: %d flows of %d", len(aFlows), n)
	}
}

func TestImitationAttackMatchesBackgroundShape(t *testing.T) {
	imit := ImitationAttack(0, eventsim.Second, 5e6, 3)
	real := NewBackground(BackgroundConfig{Rate: 5e6, Start: 0, End: eventsim.Second, Seed: 3})
	ip, rp := Collect(imit), Collect(real)
	if len(ip) != len(rp) {
		t.Fatalf("imitation diverges from background: %d vs %d packets", len(ip), len(rp))
	}
	for i := range ip {
		if ip[i].Pkt.Label != packet.Malicious {
			t.Fatal("imitation must be labeled malicious")
		}
		// Same headers as the background it imitates.
		if ip[i].Pkt.Flow() != rp[i].Pkt.Flow() || ip[i].Pkt.Length != rp[i].Pkt.Length {
			t.Fatalf("packet %d differs from the imitated distribution", i)
		}
	}
}
