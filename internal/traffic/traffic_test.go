package traffic

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
	"accturbo/internal/pcap"
)

func simpleFactory(size uint16) Factory {
	spec := FlowSpec{
		SrcIP: packet.V4Addr{1, 2, 3, 4}, DstIP: packet.V4Addr{5, 6, 7, 8},
		Protocol: packet.ProtoUDP, SrcPort: 1, DstPort: 2, TTL: 64, Size: size,
	}
	return spec.Factory(1)
}

func TestCBRRateAndOrdering(t *testing.T) {
	// 1000 B packets at 8 Mbps -> 1 packet per ms -> 1000 packets/s.
	src := NewCBR(0, eventsim.Second, 8e6, simpleFactory(1000))
	pkts := Collect(src)
	if got := len(pkts); got < 990 || got > 1010 {
		t.Fatalf("got %d packets, want ~1000", got)
	}
	for i := 1; i < len(pkts); i++ {
		if pkts[i].At < pkts[i-1].At {
			t.Fatal("timestamps not monotonic")
		}
	}
	if pkts[0].At != 0 {
		t.Fatalf("first packet at %v", pkts[0].At)
	}
}

func TestCBRWindowRespected(t *testing.T) {
	src := NewCBR(2*eventsim.Second, 3*eventsim.Second, 8e6, simpleFactory(1000))
	pkts := Collect(src)
	for _, tp := range pkts {
		if tp.At < 2*eventsim.Second || tp.At >= 3*eventsim.Second {
			t.Fatalf("packet outside window at %v", tp.At)
		}
	}
}

func TestProfileInterpolation(t *testing.T) {
	f := Profile(
		RatePoint{At: 10 * eventsim.Second, Bits: 0},
		RatePoint{At: 20 * eventsim.Second, Bits: 1000},
	)
	if got := f(5 * eventsim.Second); got != 0 {
		t.Errorf("before first point: %v", got)
	}
	if got := f(15 * eventsim.Second); got != 500 {
		t.Errorf("midpoint: %v, want 500", got)
	}
	if got := f(25 * eventsim.Second); got != 1000 {
		t.Errorf("after last point: %v", got)
	}
}

func TestProfileValidation(t *testing.T) {
	for _, f := range []func(){
		func() { Profile() },
		func() {
			Profile(RatePoint{At: 2, Bits: 1}, RatePoint{At: 1, Bits: 1})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRatedPausesAtZeroRate(t *testing.T) {
	profile := Profile(
		RatePoint{At: 0, Bits: 8e6},
		RatePoint{At: eventsim.Second, Bits: 8e6},
		RatePoint{At: eventsim.Second + 1, Bits: 0},
		RatePoint{At: 2 * eventsim.Second, Bits: 0},
		RatePoint{At: 2*eventsim.Second + 1, Bits: 8e6},
	)
	src := NewRated(0, 3*eventsim.Second, profile, simpleFactory(1000))
	inGap := 0
	for _, tp := range Collect(src) {
		if tp.At > eventsim.Second+50*eventsim.Millisecond && tp.At < 2*eventsim.Second-50*eventsim.Millisecond {
			inGap++
		}
	}
	if inGap > 0 {
		t.Fatalf("%d packets during zero-rate gap", inGap)
	}
}

func TestMergeOrdersGlobally(t *testing.T) {
	a := NewCBR(0, eventsim.Second, 4e6, simpleFactory(1000))
	b := NewCBR(eventsim.Second/2, 2*eventsim.Second, 4e6, simpleFactory(500))
	merged := Collect(Merge(a, b))
	if len(merged) == 0 {
		t.Fatal("no packets")
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].At < merged[i-1].At {
			t.Fatalf("merge out of order at %d", i)
		}
	}
}

func TestConcatAndLimit(t *testing.T) {
	a := NewCBR(0, eventsim.Second/10, 8e6, simpleFactory(1000))
	b := NewCBR(eventsim.Second, eventsim.Second+eventsim.Second/10, 8e6, simpleFactory(1000))
	all := Collect(Concat(a, b))
	if len(all) != 200 {
		t.Fatalf("concat yielded %d packets", len(all))
	}
	c := NewCBR(0, eventsim.Second, 8e6, simpleFactory(1000))
	if got := len(Collect(Limit(c, 5))); got != 5 {
		t.Fatalf("limit yielded %d", got)
	}
}

func TestFromSliceRoundTrip(t *testing.T) {
	orig := Collect(NewCBR(0, eventsim.Second/10, 8e6, simpleFactory(100)))
	got := Collect(FromSlice(orig))
	if len(got) != len(orig) {
		t.Fatalf("%d vs %d", len(got), len(orig))
	}
}

func TestLabelOverride(t *testing.T) {
	src := Label(NewCBR(0, eventsim.Second/100, 8e6, simpleFactory(1000)), packet.Malicious, "test-vector")
	for _, tp := range Collect(src) {
		if tp.Pkt.Label != packet.Malicious || tp.Pkt.Vector != "test-vector" {
			t.Fatalf("label not applied: %+v", tp.Pkt)
		}
	}
}

func TestFlowSpecRandomization(t *testing.T) {
	spec := FlowSpec{
		SrcIP: packet.V4Addr{10, 0, 0, 0}, DstIP: packet.V4Addr{20, 0, 0, 0},
		Protocol: packet.ProtoUDP, SrcPort: 5, DstPort: 6, TTL: 64, Size: 100,
		SrcHostBits: 8, DstHostBits: 4, RandomSrcPort: true, SizeJitter: 50, TTLJitter: 10,
	}
	f := spec.Factory(42)
	srcs := map[uint32]bool{}
	ports := map[uint16]bool{}
	for i := uint64(0); i < 200; i++ {
		p := &packet.Packet{}
		f(i, 0, p)
		srcIP := p.Value(packet.FSrcIP)
		if srcIP>>8 != uint32(10)<<16 {
			t.Fatalf("src prefix corrupted: %v", p.SrcIP)
		}
		srcs[srcIP] = true
		ports[p.SrcPort] = true
		if p.SrcPort < 1024 {
			t.Fatalf("ephemeral port %d below 1024", p.SrcPort)
		}
		if p.Length < 100 || p.Length >= 150 {
			t.Fatalf("size %d outside jitter window", p.Length)
		}
		if p.TTL < 64 || p.TTL >= 74 {
			t.Fatalf("ttl %d outside jitter window", p.TTL)
		}
		if d := p.Value(packet.FDstIPByte3); d >= 16 {
			t.Fatalf("dst host bits exceeded: %d", d)
		}
	}
	if len(srcs) < 50 {
		t.Fatalf("source randomization too weak: %d distinct", len(srcs))
	}
	if len(ports) < 50 {
		t.Fatalf("port randomization too weak: %d distinct", len(ports))
	}
}

func TestFlowSpecDeterministic(t *testing.T) {
	spec := FlowSpec{SrcIP: packet.V4Addr{1, 0, 0, 0}, Protocol: packet.ProtoUDP,
		Size: 100, SrcHostBits: 16, RandomSrcPort: true}
	a, b := spec.Factory(7), spec.Factory(7)
	for i := uint64(0); i < 50; i++ {
		pa, pb := &packet.Packet{}, &packet.Packet{}
		a(i, 0, pa)
		b(i, 0, pb)
		if pa.SrcIP != pb.SrcIP || pa.SrcPort != pb.SrcPort {
			t.Fatal("factories with equal seeds diverged")
		}
	}
}

func TestBackgroundRateCalibration(t *testing.T) {
	const want = 20e6 // 20 Mbps
	bg := NewBackground(BackgroundConfig{
		Rate: want, Start: 0, End: 10 * eventsim.Second, Seed: 3,
	})
	var bytes int
	var last eventsim.Time
	n := 0
	for {
		tp, ok := bg.Next()
		if !ok {
			break
		}
		if tp.At < last {
			t.Fatal("background not time-ordered")
		}
		last = tp.At
		bytes += tp.Pkt.Size()
		n++
		if tp.Pkt.Label != packet.Benign {
			t.Fatal("background must be benign")
		}
	}
	got := float64(bytes) * 8 / 10
	if math.Abs(got-want)/want > 0.35 {
		t.Fatalf("background rate %v, want within 35%% of %v", got, want)
	}
	if n < 1000 {
		t.Fatalf("only %d packets", n)
	}
}

func TestBackgroundDiversity(t *testing.T) {
	bg := NewBackground(BackgroundConfig{Rate: 10e6, Start: 0, End: 5 * eventsim.Second, Seed: 4})
	flows := map[packet.Flow]bool{}
	protos := map[packet.Proto]bool{}
	for {
		tp, ok := bg.Next()
		if !ok {
			break
		}
		flows[tp.Pkt.Flow()] = true
		protos[tp.Pkt.Protocol] = true
	}
	if len(flows) < 100 {
		t.Fatalf("only %d distinct flows", len(flows))
	}
	if !protos[packet.ProtoTCP] || !protos[packet.ProtoUDP] {
		t.Fatalf("protocol mix missing: %v", protos)
	}
}

func TestVectorsCatalog(t *testing.T) {
	vs := Vectors()
	if len(vs) != 9 {
		t.Fatalf("%d vectors, want 9 (Fig. 9a)", len(vs))
	}
	wantNames := []string{"NTP", "DNS", "MSSQL", "NetBIOS", "SNMP", "SSDP", "TFTP", "UDP", "UDPLag"}
	for i, v := range vs {
		if v.Name != wantNames[i] {
			t.Errorf("vector %d = %q, want %q", i, v.Name, wantNames[i])
		}
	}
	refl := 0
	for _, v := range vs {
		if v.Class == Reflection {
			refl++
		}
	}
	if refl != 7 {
		t.Fatalf("%d reflection vectors, want 7", refl)
	}
	if _, err := VectorByName("NTP"); err != nil {
		t.Fatal(err)
	}
	if _, err := VectorByName("bogus"); err == nil {
		t.Fatal("unknown vector should error")
	}
	if Reflection.String() == Exploitation.String() {
		t.Fatal("class names collide")
	}
}

func TestFloodTargetsVictim(t *testing.T) {
	v := VectorsMust("NTP")
	victim := packet.V4Addr{198, 18, 0, 1}
	src := v.Flood(0, eventsim.Second/10, 8e6, victim, 7777, 1)
	n := 0
	for _, tp := range Collect(src) {
		n++
		p := tp.Pkt
		if p.DstIP != victim.Addr() || p.DstPort != 7777 {
			t.Fatalf("flood not aimed at victim: %v", p)
		}
		if p.SrcPort != 123 {
			t.Fatalf("NTP reflection must come from port 123, got %d", p.SrcPort)
		}
		if p.Label != packet.Malicious || p.Vector != "NTP" {
			t.Fatalf("labels wrong: %v %v", p.Label, p.Vector)
		}
	}
	if n == 0 {
		t.Fatal("no flood packets")
	}
}

func TestACCOriginalShape(t *testing.T) {
	src := ACCOriginal(10e6)
	var attackEarly, attackPeak int
	benignIDs := map[uint32]bool{}
	for {
		tp, ok := src.Next()
		if !ok {
			break
		}
		p := tp.Pkt
		if p.FlowID == AggAttack {
			if tp.At < 13*eventsim.Second {
				attackEarly++
			}
			if tp.At >= 19*eventsim.Second && tp.At < 25*eventsim.Second {
				attackPeak++
			}
			if p.Label != packet.Malicious {
				t.Fatal("attack aggregate must be malicious")
			}
		} else {
			benignIDs[p.FlowID] = true
		}
	}
	if attackEarly > 0 {
		t.Fatalf("%d attack packets before 13s", attackEarly)
	}
	// Peak: 3x10 Mbps over 6 s at 500 B -> 45000 packets.
	if attackPeak < 30_000 {
		t.Fatalf("attack peak too small: %d packets", attackPeak)
	}
	if len(benignIDs) != 4 {
		t.Fatalf("benign aggregates = %v", benignIDs)
	}
}

func TestPulseWaveShape(t *testing.T) {
	for _, morph := range []bool{false, true} {
		src := PulseWave(10e6, 30e6, 5*eventsim.Second, morph)
		var inPulse, inGap int
		vectors := map[string]bool{}
		for {
			tp, ok := src.Next()
			if !ok {
				break
			}
			if tp.Pkt.FlowID != AggAttack {
				continue
			}
			vectors[tp.Pkt.Vector] = true
			s := tp.At.Seconds()
			switch {
			case (s >= 5 && s < 10) || (s >= 15 && s < 20) || (s >= 25 && s < 30) || (s >= 35 && s < 40):
				inPulse++
			default:
				inGap++
			}
		}
		if inPulse == 0 {
			t.Fatalf("morph=%v: no pulse traffic", morph)
		}
		if inGap > 0 {
			t.Fatalf("morph=%v: %d attack packets outside pulses", morph, inGap)
		}
		if morph && len(vectors) < 4 {
			t.Fatalf("morphing attack used only %v", vectors)
		}
		if !morph && len(vectors) != 1 {
			t.Fatalf("non-morphing attack used %v", vectors)
		}
	}
}

func TestVariationShapes(t *testing.T) {
	end := 2 * eventsim.Second
	for _, v := range []AttackVariation{NoAttack, SingleFlow, CarpetBombing, SourceSpoofing} {
		src := Variation(v, 5e6, 20e6, eventsim.Second/2, end, 9)
		attackFlows := map[packet.Flow]bool{}
		dsts := map[uint32]bool{}
		srcsSeen := map[uint32]bool{}
		attackPkts := 0
		for {
			tp, ok := src.Next()
			if !ok {
				break
			}
			if tp.Pkt.Label != packet.Malicious {
				continue
			}
			attackPkts++
			attackFlows[tp.Pkt.Flow()] = true
			dsts[tp.Pkt.Value(packet.FDstIP)] = true
			srcsSeen[tp.Pkt.Value(packet.FSrcIP)] = true
		}
		switch v {
		case NoAttack:
			if attackPkts != 0 {
				t.Fatalf("NoAttack produced %d attack packets", attackPkts)
			}
		case SingleFlow:
			if len(attackFlows) != 1 {
				t.Fatalf("SingleFlow has %d flows", len(attackFlows))
			}
		case CarpetBombing:
			if len(dsts) < 100 {
				t.Fatalf("CarpetBombing hit only %d destinations", len(dsts))
			}
		case SourceSpoofing:
			if len(srcsSeen) < 1000 {
				t.Fatalf("SourceSpoofing used only %d sources", len(srcsSeen))
			}
		}
	}
}

func TestCICDDoSDayWindows(t *testing.T) {
	src, windows := CICDDoSDay(2e6, 10e6, eventsim.Second, eventsim.Second/2, 11)
	if len(windows) != 9 {
		t.Fatalf("%d windows", len(windows))
	}
	counts := map[string]int{}
	for {
		tp, ok := src.Next()
		if !ok {
			break
		}
		p := tp.Pkt
		if p.Label != packet.Malicious {
			continue
		}
		counts[p.Vector]++
		// Every malicious packet must fall inside its vector's window.
		found := false
		for _, w := range windows {
			if w.Vector.Name == p.Vector && tp.At >= w.Start && tp.At < w.End {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("attack packet for %q at %v outside its window", p.Vector, tp.At)
		}
	}
	for _, w := range windows {
		if counts[w.Vector.Name] == 0 {
			t.Fatalf("vector %q produced no packets", w.Vector.Name)
		}
	}
}

// Property: merge of any set of CBR sources is globally time-ordered
// and loses no packets.
func TestQuickMergePreservesAll(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw)%5 + 1
		var srcs []Source
		want := 0
		for i := 0; i < n; i++ {
			start := eventsim.Time(r.Int63n(int64(eventsim.Second)))
			dur := eventsim.Time(r.Int63n(int64(eventsim.Second)) + int64(eventsim.Millisecond))
			rate := 1e6 + r.Float64()*1e7
			src := NewCBR(start, start+dur, rate, simpleFactory(uint16(100+r.Intn(1000))))
			pkts := Collect(src)
			want += len(pkts)
			srcs = append(srcs, FromSlice(pkts))
		}
		merged := Collect(Merge(srcs...))
		if len(merged) != want {
			return false
		}
		for i := 1; i < len(merged); i++ {
			if merged[i].At < merged[i-1].At {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: CBR byte throughput matches the configured rate within a
// packet of slack.
func TestQuickCBRRate(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rate := 1e6 + r.Float64()*50e6
		size := uint16(100 + r.Intn(1300))
		dur := eventsim.Second
		pkts := Collect(NewCBR(0, dur, rate, simpleFactory(size)))
		bytes := 0
		for _, tp := range pkts {
			bytes += tp.Pkt.Size()
		}
		got := float64(bytes) * 8
		return math.Abs(got-rate) <= float64(size)*8*2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBackgroundNext(b *testing.B) {
	bg := NewBackground(BackgroundConfig{Rate: 1e9, Start: 0, End: eventsim.MaxTime, Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := bg.Next(); !ok {
			b.Fatal("exhausted")
		}
	}
}

func BenchmarkMergedScenario(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src := PulseWave(10e6, 30e6, 2*eventsim.Second, true)
		n := 0
		for {
			if _, ok := src.Next(); !ok {
				break
			}
			n++
		}
		if n == 0 {
			b.Fatal("no packets")
		}
	}
}

func TestPcapSourceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := Collect(NewCBR(0, eventsim.Second/10, 8e6, simpleFactory(400)))
	for _, tp := range orig {
		if err := w.Write(tp.At, tp.Pkt); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()

	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	labeled := 0
	src := NewPcapSource(r, func(tp *TimedPacket) {
		if tp.Pkt.DstPort == 2 { // the template's destination port
			tp.Pkt.Label = packet.Malicious
			labeled++
		}
	})
	got := Collect(src)
	if len(got) != len(orig) {
		t.Fatalf("replayed %d of %d packets", len(got), len(orig))
	}
	if labeled != len(orig) {
		t.Fatalf("classifier applied to %d of %d", labeled, len(orig))
	}
	for i := range got {
		if got[i].At/eventsim.Microsecond != orig[i].At/eventsim.Microsecond {
			t.Fatalf("timestamp %d: %v vs %v", i, got[i].At, orig[i].At)
		}
		if got[i].Pkt.Label != packet.Malicious {
			t.Fatalf("label not applied at %d", i)
		}
	}
	if src.Err() != nil {
		t.Fatalf("unexpected error: %v", src.Err())
	}
}

func TestPcapSourceSurfacesErrors(t *testing.T) {
	var buf bytes.Buffer
	w, _ := pcap.NewWriter(&buf)
	p := &packet.Packet{}
	simpleFactory(100)(0, 0, p)
	w.Write(0, p)
	w.Flush()
	data := buf.Bytes()
	r, err := pcap.NewReader(bytes.NewReader(data[:len(data)-5])) // truncated body
	if err != nil {
		t.Fatal(err)
	}
	src := NewPcapSource(r, nil)
	if _, ok := src.Next(); ok {
		t.Fatal("truncated record yielded a packet")
	}
	if src.Err() == nil {
		t.Fatal("truncation not surfaced via Err")
	}
}

// Property: the CICDDoS day is globally time-ordered and each packet's
// label agrees with its vector tag.
func TestQuickCICDDoSDayConsistent(t *testing.T) {
	f := func(seed int64) bool {
		src, _ := CICDDoSDay(1e6, 4e6, eventsim.Second, eventsim.Second/2, seed)
		var last eventsim.Time
		for {
			tp, ok := src.Next()
			if !ok {
				return true
			}
			if tp.At < last {
				return false
			}
			last = tp.At
			if (tp.Pkt.Vector != "") != (tp.Pkt.Label == packet.Malicious) {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: evasion widens the attack's 5-tuple diversity — level 0 is
// a single flow, every higher level spreads across many (TTL and size
// randomization at levels 4-5 do not touch the 5-tuple, so strict
// per-level monotonicity is not guaranteed).
func TestQuickEvasionDiversity(t *testing.T) {
	distinct := make([]int, 7)
	for level := 0; level <= 6; level++ {
		src, err := Evasion(EvasionLevel(level), 0, eventsim.Second/4, 8e6, 1)
		if err != nil {
			t.Fatal(err)
		}
		flows := map[packet.Flow]bool{}
		for _, tp := range Collect(src) {
			flows[tp.Pkt.Flow()] = true
		}
		distinct[level] = len(flows)
	}
	if distinct[0] != 1 {
		t.Fatalf("level 0 must be one flow: %v", distinct)
	}
	for level := 1; level < 7; level++ {
		if distinct[level] < 100 {
			t.Fatalf("level %d diversity too low: %v", level, distinct)
		}
	}
	if distinct[6] < distinct[1] {
		t.Fatalf("full randomization less diverse than level 1: %v", distinct)
	}
}
