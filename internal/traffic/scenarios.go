package traffic

import (
	"fmt"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
)

// Scenario builders for the paper's experiments. Each returns a merged
// Source plus enough metadata for the harness to attribute output
// bandwidth to aggregates.

// AggregateID tags the five aggregates of the ACC experiments: FlowID
// 1-4 are the constant-bit-rate benign aggregates, 5 is the attack.
const (
	AggAttack uint32 = 5
)

// benignAggregate builds CBR aggregate i (1-4) of the Fig. 2/3
// experiments: each aggregate owns a distinct destination /24 so both
// ACC's prefix inference and ACC-Turbo's clustering can separate them.
func benignAggregate(i uint32, start, end eventsim.Time, rateBits float64) Source {
	spec := FlowSpec{
		SrcIP:    packet.V4Addr{172, 16, byte(i), 0},
		DstIP:    packet.V4Addr{10, byte(50 * i), byte(i), 0},
		Protocol: packet.ProtoUDP,
		SrcPort:  10_000 + uint16(i),
		DstPort:  20_000 + uint16(i),
		TTL:      64,
		Size:     500,
		Label:    packet.Benign,
		FlowID:   i,
		// A few hosts per aggregate; aggregates are separated by the
		// second destination byte, mirroring the prefix-distinct
		// aggregates of the original experiment.
		DstHostBits: 4,
	}
	return NewCBR(start, end, rateBits, spec.Factory(int64(i)*7919))
}

// attackSpec is aggregate 5: a UDP flood against its own /24.
func attackSpec() FlowSpec {
	return FlowSpec{
		SrcIP:       packet.V4Addr{192, 0, 2, 0},
		DstIP:       packet.V4Addr{10, 250, 5, 0},
		Protocol:    packet.ProtoUDP,
		SrcPort:     123,
		DstPort:     20_005,
		TTL:         54,
		Size:        500,
		Label:       packet.Malicious,
		Vector:      "ACC-attack",
		FlowID:      AggAttack,
		SrcHostBits: 8,
		DstHostBits: 4,
	}
}

// ACCOriginal reproduces the workload of Fig. 2 (the experiment from
// the original ACC paper): four CBR aggregates at fairRate each, plus a
// variable-rate attack that ramps up at 13 s, holds, and ramps down at
// 25 s. linkRate is the bottleneck capacity in bits/second; the run
// lasts 50 s.
func ACCOriginal(linkRate float64) Source {
	end := 50 * eventsim.Second
	fair := linkRate * 0.23 // 4 x 0.23 ~ 92% load before the attack
	srcs := []Source{
		benignAggregate(1, 0, end, fair),
		benignAggregate(2, 0, end, fair),
		benignAggregate(3, 0, end, fair),
		benignAggregate(4, 0, end, fair),
	}
	// Attack profile: silent, then ramp to 3x capacity by 19 s, hold
	// to 25 s, decay to zero by 31 s.
	profile := Profile(
		RatePoint{At: 13 * eventsim.Second, Bits: 0},
		RatePoint{At: 19 * eventsim.Second, Bits: 3 * linkRate},
		RatePoint{At: 25 * eventsim.Second, Bits: 3 * linkRate},
		RatePoint{At: 31 * eventsim.Second, Bits: 0},
	)
	attack := NewRated(13*eventsim.Second, 31*eventsim.Second, profile, attackSpec().Factory(101))
	srcs = append(srcs, attack)
	return Merge(srcs...)
}

// PulseWave reproduces the workload of Fig. 3: four benign CBR
// aggregates transmitting at about the link capacity, plus a pulse-wave
// attack of four pulses starting at 5, 15, 25, and 35 s. Each pulse
// lasts pulseLen and bursts at pulseRate. When morphing is true, each
// pulse uses a different attack vector (destination subnet and
// signature), the §2.2 morphing scenario; otherwise all pulses share
// aggregate 5's signature.
func PulseWave(linkRate float64, pulseRate float64, pulseLen eventsim.Time, morphing bool) Source {
	end := 50 * eventsim.Second
	fair := linkRate * 0.24 // benign ~ link capacity in total
	srcs := []Source{
		benignAggregate(1, 0, end, fair),
		benignAggregate(2, 0, end, fair),
		benignAggregate(3, 0, end, fair),
		benignAggregate(4, 0, end, fair),
	}
	starts := []eventsim.Time{5 * eventsim.Second, 15 * eventsim.Second, 25 * eventsim.Second, 35 * eventsim.Second}
	vectors := []Vector{
		{Name: "NTP-pulse", Class: Reflection, Spec: attackSpec()},
		VectorsMust("DNS"),
		VectorsMust("SSDP"),
		SYNFlood(),
	}
	for i, at := range starts {
		var pulse Source
		if morphing {
			v := vectors[i]
			pulse = v.Flood(at, at+pulseLen, pulseRate, packet.V4Addr{10, 250, byte(5 + i), byte(i)}, 0, int64(211+i))
			pulse = relabelFlow(pulse, AggAttack)
		} else {
			spec := attackSpec()
			pulse = NewCBR(at, at+pulseLen, pulseRate, spec.Factory(int64(211+i)))
		}
		srcs = append(srcs, pulse)
	}
	return Merge(srcs...)
}

// VectorsMust returns the named vector, panicking on typos (scenario
// construction only).
func VectorsMust(name string) Vector {
	v, err := VectorByName(name)
	if err != nil {
		panic(err)
	}
	return v
}

// relabelFlow forces the FlowID of every packet, so the harness can
// attribute morphing pulses to the single "attack" aggregate of Fig. 3.
func relabelFlow(s Source, id uint32) Source {
	return &flowRelabel{s: s, id: id}
}

type flowRelabel struct {
	s  Source
	id uint32
}

// SetPool implements Pooled by forwarding.
func (f *flowRelabel) SetPool(pool *packet.Pool) { AttachPool(f.s, pool) }

func (f *flowRelabel) Next() (TimedPacket, bool) {
	tp, ok := f.s.Next()
	if !ok {
		return TimedPacket{}, false
	}
	tp.Pkt.FlowID = f.id
	return tp, true
}

// AttackVariation selects the Table 3 attack shapes.
type AttackVariation uint8

// Table 3 rows.
const (
	// NoAttack runs background traffic only.
	NoAttack AttackVariation = iota
	// SingleFlow is a UDP flood sharing one 5-tuple.
	SingleFlow
	// CarpetBombing spreads the flood over a /24 destination prefix.
	CarpetBombing
	// SourceSpoofing randomizes the source address (and port).
	SourceSpoofing
)

// String names the variation as in Table 3.
func (v AttackVariation) String() string {
	switch v {
	case NoAttack:
		return "No Attack"
	case SingleFlow:
		return "Single Flow"
	case CarpetBombing:
		return "Carpet Bombing"
	case SourceSpoofing:
		return "Source Spoofing"
	default:
		return fmt.Sprintf("variation(%d)", uint8(v))
	}
}

// Variation builds the §7.2 hardware-comparison workload: CAIDA-like
// background at bgRate for the full window, with a UDP-flood attack of
// the given shape at attackRate between attackStart and end.
func Variation(v AttackVariation, bgRate, attackRate float64, attackStart, end eventsim.Time, seed int64) Source {
	bg := NewBackground(BackgroundConfig{
		Rate:  bgRate,
		Start: 0,
		End:   end,
		Seed:  seed,
	})
	if v == NoAttack {
		return bg
	}
	spec := FlowSpec{
		SrcIP:    packet.V4Addr{10, 9, 8, 7},
		DstIP:    packet.V4Addr{198, 18, 50, 1}, // inside the background's destination space
		Protocol: packet.ProtoUDP,
		SrcPort:  33333,
		DstPort:  44444,
		TTL:      60,
		Size:     1000,
		Label:    packet.Malicious,
		Vector:   "UDP",
		FlowID:   AggAttack,
	}
	switch v {
	case CarpetBombing:
		spec.DstHostBits = 8
		spec.Vector = "UDP-carpet"
	case SourceSpoofing:
		spec.SrcHostBits = 32
		spec.RandomSrcPort = true
		spec.Vector = "UDP-spoofed"
	}
	attack := NewCBR(attackStart, end, attackRate, spec.Factory(seed+1))
	return Merge(bg, attack)
}

// CICDDoSDay builds the §8 simulation workload: continuous CAIDA-like
// background with the nine attack vectors firing one after another,
// each active for vectorLen with a gap of vectorGap. Rates are in
// bits/second. The returned vector list gives each attack's name and
// its [start, end) window for per-vector evaluation.
type AttackWindow struct {
	Vector Vector
	Start  eventsim.Time
	End    eventsim.Time
}

// CICDDoSDay generates the compressed attack day.
func CICDDoSDay(bgRate, attackRate float64, vectorLen, vectorGap eventsim.Time, seed int64) (Source, []AttackWindow) {
	vectors := Vectors()
	total := eventsim.Time(len(vectors))*(vectorLen+vectorGap) + vectorGap
	bg := NewBackground(BackgroundConfig{
		Rate:  bgRate,
		Start: 0,
		End:   total,
		Seed:  seed,
	})
	srcs := []Source{bg}
	windows := make([]AttackWindow, 0, len(vectors))
	at := vectorGap
	victim := packet.V4Addr{198, 18, 99, 1}
	for i, v := range vectors {
		srcs = append(srcs, v.Flood(at, at+vectorLen, attackRate, victim, 0, seed+int64(i)*31))
		windows = append(windows, AttackWindow{Vector: v, Start: at, End: at + vectorLen})
		at += vectorLen + vectorGap
	}
	return Merge(srcs...), windows
}
