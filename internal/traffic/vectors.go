package traffic

import (
	"fmt"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
)

// VectorClass distinguishes reflection/amplification vectors (traffic
// reflected off open servers, hence highly regular) from exploitation
// vectors (directly generated floods with randomized fields). Fig. 9a
// splits clustering performance along this axis.
type VectorClass uint8

// Vector classes.
const (
	Reflection VectorClass = iota
	Exploitation
)

// String names the class.
func (c VectorClass) String() string {
	if c == Exploitation {
		return "exploitation-based"
	}
	return "reflection-based"
}

// Vector is one DDoS attack vector with its header signature. The
// signatures mirror the CICDDoS-2019 taxonomy: reflection vectors fix
// the reflector service port and use amplified payloads; exploitation
// vectors randomize ports and sizes.
type Vector struct {
	Name  string
	Class VectorClass
	// Spec is the packet template; the victim address/port and label
	// are filled in by Flood.
	Spec FlowSpec
}

// Vectors returns the paper's nine CICDDoS attack vectors in Fig. 9a
// order. Victim fields (DstIP/DstPort) are placeholders overridden by
// Flood.
func Vectors() []Vector {
	return []Vector{
		// Reflection: fixed service source port, large responses,
		// moderate reflector pools (randomized low source-host bits).
		{Name: "NTP", Class: Reflection, Spec: FlowSpec{
			Protocol: packet.ProtoUDP, SrcIP: packet.V4Addr{203, 0, 113, 0}, SrcPort: 123,
			Size: 468, TTL: 54, TTLJitter: 8, SrcHostBits: 6, DstPort: 80,
		}},
		{Name: "DNS", Class: Reflection, Spec: FlowSpec{
			Protocol: packet.ProtoUDP, SrcIP: packet.V4Addr{198, 51, 100, 0}, SrcPort: 53,
			Size: 512, SizeJitter: 120, TTL: 57, TTLJitter: 8, SrcHostBits: 7, DstPort: 80,
		}},
		{Name: "MSSQL", Class: Reflection, Spec: FlowSpec{
			// MSSQL reflections arrive from several service ports,
			// which the paper calls out as the reason its purity is
			// lowest among reflection vectors.
			Protocol: packet.ProtoUDP, SrcIP: packet.V4Addr{192, 0, 2, 0},
			SrcPortChoices: []uint16{1434, 1433, 4022, 2433, 14330, 21433, 31433, 41433},
			Size:           629, SizeJitter: 300, TTL: 48, TTLJitter: 16, SrcHostBits: 9, DstPort: 80,
		}},
		{Name: "NetBIOS", Class: Reflection, Spec: FlowSpec{
			Protocol: packet.ProtoUDP, SrcIP: packet.V4Addr{203, 0, 114, 0}, SrcPort: 137,
			Size: 228, TTL: 52, TTLJitter: 8, SrcHostBits: 6, DstPort: 80,
		}},
		{Name: "SNMP", Class: Reflection, Spec: FlowSpec{
			Protocol: packet.ProtoUDP, SrcIP: packet.V4Addr{198, 51, 101, 0}, SrcPort: 161,
			Size: 1432, SizeJitter: 68, TTL: 55, TTLJitter: 8, SrcHostBits: 6, DstPort: 80,
		}},
		{Name: "SSDP", Class: Reflection, Spec: FlowSpec{
			// SSDP devices answer from ephemeral ports: high source-
			// port variance, the other hard reflection vector.
			Protocol: packet.ProtoUDP, SrcIP: packet.V4Addr{192, 0, 3, 0}, RandomSrcPort: true,
			Size: 310, SizeJitter: 60, TTL: 49, TTLJitter: 16, SrcHostBits: 9, DstPort: 80,
		}},
		{Name: "TFTP", Class: Reflection, Spec: FlowSpec{
			Protocol: packet.ProtoUDP, SrcIP: packet.V4Addr{203, 0, 115, 0}, SrcPort: 69,
			Size: 516, TTL: 53, TTLJitter: 8, SrcHostBits: 6, DstPort: 80,
		}},
		// Exploitation: spoofed sources, randomized ports and sizes.
		{Name: "UDP", Class: Exploitation, Spec: FlowSpec{
			Protocol: packet.ProtoUDP, SrcIP: packet.V4Addr{10, 0, 0, 0}, SrcHostBits: 24,
			RandomSrcPort: true, RandomDstPort: true, Size: 100, SizeJitter: 1300, TTL: 32, TTLJitter: 96,
		}},
		{Name: "UDPLag", Class: Exploitation, Spec: FlowSpec{
			Protocol: packet.ProtoUDP, SrcIP: packet.V4Addr{10, 64, 0, 0}, SrcHostBits: 22,
			RandomSrcPort: true, Size: 60, SizeJitter: 20, TTL: 32, TTLJitter: 96,
		}},
	}
}

// VectorByName looks a vector up by its Fig. 9a name.
func VectorByName(name string) (Vector, error) {
	for _, v := range Vectors() {
		if v.Name == name {
			return v, nil
		}
	}
	return Vector{}, fmt.Errorf("traffic: unknown attack vector %q", name)
}

// SYNFlood is the classic TCP exploitation vector used by the morphing
// pulse-wave scenario.
func SYNFlood() Vector {
	return Vector{Name: "SYN", Class: Exploitation, Spec: FlowSpec{
		Protocol: packet.ProtoTCP, SrcIP: packet.V4Addr{10, 128, 0, 0}, SrcHostBits: 24,
		RandomSrcPort: true, DstPort: 80, Size: 40, TTL: 32, TTLJitter: 96,
		Flags: packet.FlagSYN,
	}}
}

// Flood emits the vector at rateBits toward the victim for
// [start, end). The packets carry Malicious labels and the vector's
// name.
func (v Vector) Flood(start, end eventsim.Time, rateBits float64, victim packet.V4Addr, victimPort uint16, seed int64) Source {
	spec := v.Spec
	spec.DstIP = victim
	if victimPort != 0 {
		spec.DstPort = victimPort
		spec.RandomDstPort = false
	}
	spec.Label = packet.Malicious
	spec.Vector = v.Name
	return NewCBR(start, end, rateBits, spec.Factory(seed))
}
