package traffic

import (
	"fmt"

	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
)

// Adversarial workloads from §9 of the paper ("Evading ACC-Turbo" /
// "Weaponizing ACC-Turbo"). The paper analyzes these qualitatively; the
// generators here make the analysis quantitative.

// EvasionLevel selects how many clustering features the attacker
// randomizes to break packet-level similarity (§9.1).
type EvasionLevel int

// Evasion constructs a volumetric UDP flood that randomizes
// progressively more header fields: level 0 is a plain single-tuple
// flood; each level up randomizes one more of {source host bits,
// source port, destination port, packet length, TTL, destination host
// bits}. At the maximum level every clustering feature is noise, the
// worst case the paper concedes defeats similarity-based inference.
func Evasion(level EvasionLevel, start, end eventsim.Time, rateBits float64, seed int64) (Source, error) {
	if level < 0 || level > 6 {
		return nil, fmt.Errorf("traffic: evasion level %d out of [0,6]", level)
	}
	spec := FlowSpec{
		SrcIP:    packet.V4Addr{45, 45, 45, 45},
		DstIP:    packet.V4Addr{198, 18, 77, 1},
		Protocol: packet.ProtoUDP,
		SrcPort:  50_000,
		DstPort:  80,
		TTL:      60,
		Size:     900,
		Label:    packet.Malicious,
		Vector:   fmt.Sprintf("evasion-%d", level),
		FlowID:   AggAttack,
	}
	if level >= 1 {
		spec.SrcHostBits = 32
	}
	if level >= 2 {
		spec.RandomSrcPort = true
	}
	if level >= 3 {
		spec.RandomDstPort = true
	}
	if level >= 4 {
		spec.Size = 60
		spec.SizeJitter = 1380
	}
	if level >= 5 {
		spec.TTL = 16
		spec.TTLJitter = 224
	}
	if level >= 6 {
		spec.DstHostBits = 16 // the whole monitored /16
	}
	return NewCBR(start, end, rateBits, spec.Factory(seed)), nil
}

// SpreadAttack is the aggregate-level evasion of §9.1: n low-rate
// attack aggregates, each a distinct well-formed flow targeting a
// different region of the feature space, so that no single cluster
// captures the whole attack. Total attack rate is rateBits split
// evenly.
func SpreadAttack(n int, start, end eventsim.Time, rateBits float64, seed int64) (Source, error) {
	if n < 1 {
		return nil, fmt.Errorf("traffic: spread attack needs >= 1 aggregates, got %d", n)
	}
	per := rateBits / float64(n)
	srcs := make([]Source, 0, n)
	for i := 0; i < n; i++ {
		// Spread destinations across the space; vary ports and sizes
		// so the aggregates look unrelated.
		spec := FlowSpec{
			SrcIP:    packet.V4Addr{77, byte(13 * i), byte(29 * i), byte(7 + i)},
			DstIP:    packet.V4Addr{198, 18, byte(int(256/n) * i), byte(1 + i)},
			Protocol: packet.ProtoUDP,
			SrcPort:  uint16(2000 + 997*i),
			DstPort:  uint16(100 + 53*i),
			TTL:      uint8(30 + 17*i%200),
			Size:     uint16(200 + 150*(i%8)),
			Label:    packet.Malicious,
			Vector:   fmt.Sprintf("spread-%d", i),
			FlowID:   AggAttack,
		}
		srcs = append(srcs, NewCBR(start, end, per, spec.Factory(seed+int64(i))))
	}
	return Merge(srcs...), nil
}

// SwappingAttack is the §9.2 weaponization: benign traffic is a
// high-rate, highly similar aggregate (e.g. one production video
// stream), while the attacker floods with fully randomized headers.
// The goal is to trick the defense into deprioritizing the benign
// aggregate. Returns benign and attack sources separately so the
// caller can account them.
func SwappingAttack(start, end eventsim.Time, benignBits, attackBits float64, seed int64) (benign, attack Source) {
	stream := FlowSpec{
		SrcIP:    packet.V4Addr{198, 51, 77, 10},
		DstIP:    packet.V4Addr{198, 18, 10, 10},
		Protocol: packet.ProtoUDP,
		SrcPort:  8443,
		DstPort:  43210,
		TTL:      61,
		Size:     1350,
		Label:    packet.Benign,
		FlowID:   1,
	}
	noise := FlowSpec{
		SrcIP:         packet.V4Addr{0, 0, 0, 0},
		DstIP:         packet.V4Addr{198, 18, 0, 0},
		Protocol:      packet.ProtoUDP,
		SrcHostBits:   32,
		DstHostBits:   16,
		RandomSrcPort: true,
		RandomDstPort: true,
		TTL:           1,
		TTLJitter:     254,
		Size:          60,
		SizeJitter:    1380,
		Label:         packet.Malicious,
		Vector:        "swapping",
		FlowID:        AggAttack,
	}
	return NewCBR(start, end, benignBits, stream.Factory(seed)),
		NewCBR(start, end, attackBits, noise.Factory(seed+1))
}

// ImitationAttack is the §9.2 attack that replays the victim's own
// traffic shape: attack packets are drawn from the same generator
// distribution as the background (same ports, sizes, TTLs, address
// pools) but at flood rate. Detection by similarity alone cannot
// separate them; the paper points to rate-change tests as the remedy.
func ImitationAttack(start, end eventsim.Time, rateBits float64, seed int64) Source {
	bg := NewBackground(BackgroundConfig{
		Rate:  rateBits,
		Start: start,
		End:   end,
		Seed:  seed,
	})
	return Label(bg, packet.Malicious, "imitation")
}
