// Package ring provides the single-producer/single-consumer ring
// buffer underneath the wire-speed ingest path. One goroutine pushes,
// one goroutine pops; neither ever takes a lock, so a capture thread
// and a per-shard classifier share nothing but two cache lines of
// atomics.
//
// The layout follows the classic bounded SPSC design used by DPDK-style
// packet rings:
//
//   - Power-of-two capacity, so positions are free-running uint64
//     counters and slot indexing is one mask — full/empty are
//     (tail-head >= size) and (tail == head), with no wraparound
//     ambiguity for any practical stream length.
//   - The producer publishes with one atomic release store of tail; the
//     consumer publishes consumption with one release store of head.
//     Each side keeps a cached copy of the other's counter and reloads
//     it only when the ring looks full (producer) or empty (consumer),
//     so the steady-state hot path is one cache-local check per item.
//   - Head, tail, and each side's local state live on separate padded
//     cache lines: the producer line and consumer line never false-share.
//   - Batched publish: Push appends without publishing; Publish makes
//     every pushed item visible with a single release store. At ingest
//     batch sizes this amortizes the only cross-core store the producer
//     performs. TryPush is the publish-per-item convenience.
//
// Close is a producer-side signal: consumers drain remaining items and
// then observe closure. Pushing after Close is a contract violation the
// ring tolerates (the item is dropped by the closed check), so racing
// offer/close paths can be counted as shed by the caller.
package ring

import "sync/atomic"

// cacheLine is the padding unit separating producer- and consumer-owned
// state. 64 bytes covers x86-64 and most arm64 cores.
const cacheLine = 64

// SPSC is a bounded single-producer/single-consumer ring. The zero
// value is not usable; construct with New. All producer-side methods
// (Push, TryPush, Publish, Pending, Close) must be called from one
// goroutine at a time, and all consumer-side methods (Pop, PopBatch)
// from one goroutine at a time; the two sides need no coordination.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	_    [cacheLine]byte
	head atomic.Uint64 // next unconsumed position, published by the consumer

	_    [cacheLine - 8]byte
	tail atomic.Uint64 // first unpublished position, published by the producer

	_ [cacheLine - 8]byte
	// Producer-owned line: ptail runs ahead of tail between Publish
	// calls; cachedHead avoids re-reading head until the ring looks full.
	ptail      uint64
	cachedHead uint64

	_ [cacheLine - 16]byte
	// Consumer-owned line.
	cachedTail uint64

	_      [cacheLine - 8]byte
	closed atomic.Bool
}

// New builds a ring with at least the given capacity, rounded up to the
// next power of two (minimum 2). It panics on a non-positive capacity.
func New[T any](capacity int) *SPSC[T] {
	if capacity <= 0 {
		panic("ring: capacity must be positive")
	}
	size := 2
	for size < capacity {
		size <<= 1
	}
	return &SPSC[T]{buf: make([]T, size), mask: uint64(size - 1)}
}

// Cap returns the ring's capacity.
func (r *SPSC[T]) Cap() int { return len(r.buf) }

// Len returns the number of published, unconsumed items. It is a
// point-in-time estimate, exact only when one side is quiescent.
func (r *SPSC[T]) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Push appends v without publishing it; the item becomes visible to the
// consumer at the next Publish. It reports false — and buffers nothing —
// when the ring is full (counting unpublished items) or closed.
func (r *SPSC[T]) Push(v T) bool {
	if r.ptail-r.cachedHead >= uint64(len(r.buf)) {
		r.cachedHead = r.head.Load()
		if r.ptail-r.cachedHead >= uint64(len(r.buf)) {
			return false
		}
	}
	if r.closed.Load() {
		return false
	}
	r.buf[r.ptail&r.mask] = v
	r.ptail++
	return true
}

// Publish makes every item pushed so far visible to the consumer with
// one release store.
func (r *SPSC[T]) Publish() {
	if r.ptail != r.tail.Load() {
		r.tail.Store(r.ptail)
	}
}

// TryPush pushes and publishes one item: the convenience path for
// producers that do not batch.
func (r *SPSC[T]) TryPush(v T) bool {
	if !r.Push(v) {
		return false
	}
	r.tail.Store(r.ptail)
	return true
}

// Pending returns the number of pushed-but-unpublished items
// (producer-side only).
func (r *SPSC[T]) Pending() int { return int(r.ptail - r.tail.Load()) }

// Pop removes and returns the next item (consumer-side only). ok is
// false when no published item is available.
func (r *SPSC[T]) Pop() (v T, ok bool) {
	h := r.head.Load()
	if h == r.cachedTail {
		r.cachedTail = r.tail.Load()
		if h == r.cachedTail {
			return v, false
		}
	}
	v = r.buf[h&r.mask]
	r.head.Store(h + 1)
	return v, true
}

// PopBatch moves up to len(dst) published items into dst and returns
// the count (consumer-side only). Consumption is published once per
// batch, so the producer's full-check cost is amortized the same way
// Publish amortizes the consumer's empty-check.
func (r *SPSC[T]) PopBatch(dst []T) int {
	h := r.head.Load()
	avail := r.cachedTail - h
	if avail == 0 {
		r.cachedTail = r.tail.Load()
		avail = r.cachedTail - h
		if avail == 0 {
			return 0
		}
	}
	n := uint64(len(dst))
	if n > avail {
		n = avail
	}
	for i := uint64(0); i < n; i++ {
		dst[i] = r.buf[(h+i)&r.mask]
	}
	r.head.Store(h + n)
	return int(n)
}

// Close marks the ring closed: subsequent pushes fail, and a consumer
// that sees Closed() and then drains to empty has seen every published
// item. Safe to call more than once, and safe to call from a goroutine
// other than the producer provided the producer has stopped (or its
// racing pushes may be rejected, which callers count as shed).
func (r *SPSC[T]) Close() { r.closed.Store(true) }

// Closed reports whether Close has been called.
func (r *SPSC[T]) Closed() bool { return r.closed.Load() }
