package ring

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRoundedCapacity: capacities round up to the next power of two.
func TestRoundedCapacity(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}, {1024, 1024},
	} {
		if got := New[int](tc.ask).Cap(); got != tc.want {
			t.Fatalf("New(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New[int](0)
}

// TestFIFOOrderAndWraparound pushes far more items than the capacity so
// the position counters lap the buffer many times; every item must come
// out once, in order.
func TestFIFOOrderAndWraparound(t *testing.T) {
	r := New[int](8)
	next := 0
	popped := 0
	for popped < 10_000 {
		for r.TryPush(next) {
			next++
		}
		if r.Len() != r.Cap() {
			t.Fatalf("after filling, Len() = %d, want %d", r.Len(), r.Cap())
		}
		for {
			v, ok := r.Pop()
			if !ok {
				break
			}
			if v != popped {
				t.Fatalf("popped %d, want %d", v, popped)
			}
			popped++
		}
	}
}

// TestBatchedPublish: pushed items stay invisible until Publish, then
// all appear at once; PopBatch drains them in order.
func TestBatchedPublish(t *testing.T) {
	r := New[int](16)
	for i := 0; i < 5; i++ {
		if !r.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.Pending() != 5 {
		t.Fatalf("Pending() = %d, want 5", r.Pending())
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("unpublished item was visible")
	}
	r.Publish()
	if r.Pending() != 0 {
		t.Fatalf("Pending() after Publish = %d, want 0", r.Pending())
	}
	dst := make([]int, 8)
	if n := r.PopBatch(dst); n != 5 {
		t.Fatalf("PopBatch = %d, want 5", n)
	}
	for i := 0; i < 5; i++ {
		if dst[i] != i {
			t.Fatalf("dst[%d] = %d", i, dst[i])
		}
	}
	if n := r.PopBatch(dst); n != 0 {
		t.Fatalf("PopBatch on empty = %d", n)
	}
}

// TestPushFullCountsUnpublished: unpublished items occupy capacity, and
// a full ring rejects pushes without corrupting buffered items.
func TestPushFullCountsUnpublished(t *testing.T) {
	r := New[int](4)
	for i := 0; i < r.Cap(); i++ {
		if !r.Push(i) {
			t.Fatalf("push %d on empty ring failed", i)
		}
	}
	if r.Push(99) {
		t.Fatal("push into full ring succeeded")
	}
	r.Publish()
	for i := 0; i < r.Cap(); i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: got %d, %v", i, v, ok)
		}
	}
}

// TestCloseDrains: items published before Close remain poppable; pushes
// after Close fail; Closed() is sticky.
func TestCloseDrains(t *testing.T) {
	r := New[int](8)
	for i := 0; i < 3; i++ {
		r.TryPush(i)
	}
	r.Close()
	r.Close() // idempotent
	if !r.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if r.TryPush(99) {
		t.Fatal("TryPush succeeded after Close")
	}
	if r.Push(99) {
		t.Fatal("Push succeeded after Close")
	}
	for i := 0; i < 3; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("drain after close: got %d, %v, want %d", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop on drained closed ring succeeded")
	}
}

// TestProducerConsumerStress is the -race gate on the memory ordering:
// one producer streams a counter through a small ring with mixed
// batched and unbatched publishes while a consumer drains with mixed
// Pop and PopBatch. Every value must arrive exactly once, in order.
func TestProducerConsumerStress(t *testing.T) {
	const total = 200_000
	r := New[uint64](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < total; {
			if i%3 == 0 { // batched publish path
				n := 0
				for n < 7 && i < total && r.Push(i) {
					i++
					n++
				}
				r.Publish()
				if n == 0 {
					runtime.Gosched()
				}
			} else if r.TryPush(i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	var next uint64
	buf := make([]uint64, 16)
	for next < total {
		if next%5 == 0 {
			n := r.PopBatch(buf)
			if n == 0 {
				runtime.Gosched()
				continue
			}
			for _, v := range buf[:n] {
				if v != next {
					t.Fatalf("got %d, want %d", v, next)
				}
				next++
			}
		} else {
			v, ok := r.Pop()
			if !ok {
				runtime.Gosched()
				continue
			}
			if v != next {
				t.Fatalf("got %d, want %d", v, next)
			}
			next++
		}
	}
	wg.Wait()
	if r.Len() != 0 {
		t.Fatalf("ring not empty after stream: Len() = %d", r.Len())
	}
}

// TestCloseWhileOffering races Close against an active producer:
// accepted + rejected must equal attempted, and the consumer must see
// exactly the accepted prefix — conservation through shutdown.
func TestCloseWhileOffering(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		r := New[uint64](32)
		var accepted, rejected atomic.Uint64
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(0); i < 50_000; i++ {
				for !r.TryPush(i) {
					if r.Closed() {
						rejected.Add(50_000 - i)
						return
					}
					runtime.Gosched()
				}
				accepted.Add(1)
			}
		}()
		var consumed uint64
		var last uint64
		ordered := true
		for consumed < 500+uint64(iter)*37 {
			if v, ok := r.Pop(); ok {
				if consumed > 0 && v != last+1 {
					ordered = false
				}
				last = v
				consumed++
			}
		}
		r.Close()
		wg.Wait()
		// Drain what was published before the producer observed closure.
		for {
			v, ok := r.Pop()
			if !ok {
				break
			}
			if v != last+1 {
				ordered = false
			}
			last = v
			consumed++
		}
		if !ordered {
			t.Fatalf("iter %d: out-of-order delivery", iter)
		}
		if consumed != accepted.Load() {
			t.Fatalf("iter %d: consumed %d != accepted %d (rejected %d)",
				iter, consumed, accepted.Load(), rejected.Load())
		}
		if accepted.Load()+rejected.Load() != 50_000 {
			t.Fatalf("iter %d: accepted %d + rejected %d != attempted 50000",
				iter, accepted.Load(), rejected.Load())
		}
	}
}

// TestRingZeroAlloc gates the hot path: steady-state push/pop traffic
// allocates nothing on either side.
func TestRingZeroAlloc(t *testing.T) {
	r := New[uint64](256)
	dst := make([]uint64, 32)
	allocs := testing.AllocsPerRun(200, func() {
		for i := uint64(0); i < 128; i++ {
			if !r.Push(i) {
				t.Fatal("push failed")
			}
			if i%32 == 31 {
				r.Publish()
			}
		}
		r.Publish()
		got := 0
		for got < 128 {
			n := r.PopBatch(dst)
			if n == 0 {
				t.Fatal("empty mid-drain")
			}
			got += n
		}
	})
	if allocs != 0 {
		t.Fatalf("ring hot path allocates %v per run, want 0", allocs)
	}
}

// BenchmarkRingBatched measures the batched produce/consume cycle a
// replay lane performs per 64-frame burst.
func BenchmarkRingBatched(b *testing.B) {
	r := New[uint64](1024)
	dst := make([]uint64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := uint64(i) * 64
		for j := uint64(0); j < 64; j++ {
			r.Push(v + j)
		}
		r.Publish()
		got := 0
		for got < 64 {
			got += r.PopBatch(dst)
		}
	}
}

// BenchmarkRingTryPushPop is the unbatched per-item cycle, for the
// trend file's view of the publish-per-item cost.
func BenchmarkRingTryPushPop(b *testing.B) {
	r := New[uint64](1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.TryPush(uint64(i))
		r.Pop()
	}
}
