package fleet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"accturbo/internal/faults"
)

// This file is the socket backend behind the Transport seam: the same
// ACCFLEET frames the in-process backends move whole, written to and
// read from real TCP connections. The split is asymmetric, like the
// deployment: ListenTCP builds the coordinator side (one listener, one
// connection per node) and DialTCP builds a node side (one dialer with
// seeded exponential-backoff reconnect). Both keep the transport
// contract datagram-shaped — a send either reaches the far side's
// handler eventually or is counted and dropped; the node's staleness
// bound, not the socket, remains the fleet's failure detector — which
// is exactly what lets every socket failure mode (reset, stall,
// corruption, partition) degrade toward the existing
// fleet-fallback:local path instead of inventing a new one.
//
// Failure semantics, per fault:
//
//   - connection reset / refused: the node transport reconnects with
//     exponential backoff plus seeded jitter; until the link is back,
//     publishes are counted drops and the node rides its local ranking.
//   - corrupted bytes: every received frame is CRC-verified before
//     dispatch (VerifyFrame); a failure resets the connection, and the
//     reconnect performs a clean hello re-handshake. A corrupt frame
//     never reaches a handler.
//   - stalled peer: both directions heartbeat every HeartbeatEvery and
//     read under a PeerTimeout deadline; a peer that goes silent is
//     shed (coordinator side) or redialed (node side). A slow peer's
//     bounded send queue overflows into counted drops — it never
//     blocks the broadcast path.
//   - close: graceful drain; concurrent senders observe ErrClosed, and
//     Close returns only after every transport goroutine has exited.
type tcpConfigError string

func (e tcpConfigError) Error() string { return string(e) }

// ErrNotNodeSide reports a node-direction call on the coordinator-side
// transport (or vice versa): the TCP backend is split per role, unlike
// the in-process backends that carry both directions in one object.
var ErrNotNodeSide = errors.New("fleet: wrong-role call on a TCP transport half")

// TCPOptions tunes both TCP transport halves. The zero value defaults
// to production-shaped settings; tests shrink the timers.
type TCPOptions struct {
	// HeartbeatEvery is the liveness beacon period, sent by both sides
	// whether or not traffic flows. Default 1s.
	HeartbeatEvery time.Duration
	// PeerTimeout is the read deadline: a connection with no frame (not
	// even a heartbeat) for this long is considered dead — shed by the
	// coordinator, redialed by the node. Default 4x HeartbeatEvery.
	PeerTimeout time.Duration
	// WriteTimeout bounds each frame write; exceeding it marks the peer
	// dead. Default 2s.
	WriteTimeout time.Duration
	// SendQueueDepth bounds the per-peer send queue; overflow is a
	// counted drop, never backpressure into the control loop.
	// Default 64.
	SendQueueDepth int
	// DialTimeout bounds each connection attempt. Default 2s.
	DialTimeout time.Duration
	// BackoffMin/BackoffMax bound the reconnect schedule: the delay
	// doubles from BackoffMin per consecutive failure up to BackoffMax,
	// then jitters uniformly in [d/2, d) from the seeded stream.
	// Defaults 50ms / 5s.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Seed drives the backoff jitter through a faults.Rand splitmix64
	// stream (derived per node id), so reconnect schedules are
	// deterministic in tests. Default 1.
	Seed uint64
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = time.Second
	}
	if o.PeerTimeout <= 0 {
		o.PeerTimeout = 4 * o.HeartbeatEvery
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 2 * time.Second
	}
	if o.SendQueueDepth <= 0 {
		o.SendQueueDepth = 64
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 50 * time.Millisecond
	}
	if o.BackoffMax < o.BackoffMin {
		o.BackoffMax = 5 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// backoff is the reconnect schedule: exponential from min to max with
// jitter in [d/2, d) drawn from a seeded splitmix64 stream, so a test
// (or a postmortem) can replay the exact delays a node slept.
type backoff struct {
	min, max time.Duration
	attempt  int
	rng      *faults.Rand
}

func newBackoff(min, max time.Duration, rng *faults.Rand) *backoff {
	return &backoff{min: min, max: max, rng: rng}
}

// next returns the delay before the attempt'th retry and advances the
// schedule.
func (b *backoff) next() time.Duration {
	d := b.min
	for i := 0; i < b.attempt && d < b.max; i++ {
		d *= 2
	}
	if d > b.max {
		d = b.max
	}
	b.attempt++
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(b.rng.Next()%uint64(half))
}

// reset re-arms the schedule after a successful handshake.
func (b *backoff) reset() { b.attempt = 0 }

// tcpPeer is one live connection: a bounded send queue drained by a
// writer goroutine, and a stop channel + once so either the reader, the
// writer, a replacement connection, or Close can tear it down exactly
// once.
type tcpPeer struct {
	id       uint32
	conn     net.Conn
	sendq    chan []byte
	stop     chan struct{}
	once     sync.Once
	lastSeen atomic.Int64 // wall ns of the last received frame
}

func (p *tcpPeer) shutdown() {
	p.once.Do(func() {
		close(p.stop)
		p.conn.Close()
	})
}

func (p *tcpPeer) touch() { p.lastSeen.Store(time.Now().UnixNano()) }

// enqueue offers one frame to the peer's bounded queue; false means the
// queue was full (the counted-drop path).
func (p *tcpPeer) enqueue(frame []byte) bool {
	select {
	case p.sendq <- frame:
		return true
	default:
		return false
	}
}

func tuneConn(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // frames are small and latency-sensitive
	}
}

// TCPCoordinatorStats is a point-in-time snapshot of the listener-side
// transport counters.
type TCPCoordinatorStats struct {
	// Accepted counts completed hello handshakes; HandshakeFails counts
	// connections dropped before one (bad first frame, timeout).
	Accepted       uint64
	HandshakeFails uint64
	// FramesIn/FramesOut count dispatched snapshots and written frames
	// (deploys and heartbeats).
	FramesIn  uint64
	FramesOut uint64
	// DropsNoPeer counts ToNode sends to a node with no live
	// connection; DropsQueueFull counts bounded-queue overflows.
	DropsNoPeer    uint64
	DropsQueueFull uint64
	// CRCResets counts connections reset after a frame failed
	// verification; PeersShed counts connections dropped for silence
	// (read deadline) or write failure.
	CRCResets uint64
	PeersShed uint64
	// HeartbeatsIn counts node heartbeats received.
	HeartbeatsIn uint64
	// Connected is the number of live node connections right now.
	Connected int
}

// TCPCoordinatorTransport is the coordinator half of the socket
// backend: a listener accepting one connection per node, each
// identified by its MsgHello. It implements Transport; only the
// coordinator-direction methods (HandleCoordinator, ToNode) are live —
// ToCoordinator returns ErrNotNodeSide and HandleNode is a no-op,
// because nodes hold their own TCPTransport on the far side of the
// sockets.
type TCPCoordinatorTransport struct {
	opts TCPOptions
	ln   net.Listener

	mu     sync.Mutex
	coord  func(from uint32, frame []byte)
	peers  map[uint32]*tcpPeer
	closed bool
	wg     sync.WaitGroup

	accepted       atomic.Uint64
	handshakeFails atomic.Uint64
	framesIn       atomic.Uint64
	framesOut      atomic.Uint64
	dropsNoPeer    atomic.Uint64
	dropsFull      atomic.Uint64
	crcResets      atomic.Uint64
	peersShed      atomic.Uint64
	heartbeatsIn   atomic.Uint64
}

// ListenTCP starts the coordinator-side transport on addr (":0" picks a
// free port; read it back with Addr). Register the coordinator before
// nodes dial in, or early snapshots are dropped on the floor — which
// the protocol tolerates, but the first merge then waits a poll.
func ListenTCP(addr string, opts TCPOptions) (*TCPCoordinatorTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fleet: coordinator listen: %w", err)
	}
	t := &TCPCoordinatorTransport{
		opts:  opts.withDefaults(),
		ln:    ln,
		peers: make(map[uint32]*tcpPeer),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the listener's bound address.
func (t *TCPCoordinatorTransport) Addr() string { return t.ln.Addr().String() }

func (t *TCPCoordinatorTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.handshake(conn)
	}
}

// handshake reads the connection's MsgHello under a deadline and
// registers the peer. A second connection for the same node id replaces
// the first (the node redialed; the stale socket may not know it is
// dead yet), which is the clean re-handshake path after a CRC reset.
func (t *TCPCoordinatorTransport) handshake(conn net.Conn) {
	defer t.wg.Done()
	tuneConn(conn)
	conn.SetReadDeadline(time.Now().Add(t.opts.PeerTimeout))
	raw, err := ReadFrame(conn)
	if err != nil {
		t.handshakeFails.Add(1)
		conn.Close()
		return
	}
	node, err := DecodeHello(raw)
	if err != nil || node == 0 {
		t.handshakeFails.Add(1)
		conn.Close()
		return
	}
	p := &tcpPeer{
		id:    node,
		conn:  conn,
		sendq: make(chan []byte, t.opts.SendQueueDepth),
		stop:  make(chan struct{}),
	}
	p.touch()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return
	}
	if old := t.peers[node]; old != nil {
		old.shutdown()
	}
	t.peers[node] = p
	t.mu.Unlock()
	t.accepted.Add(1)
	t.wg.Add(2)
	go t.readLoop(p)
	go t.writeLoop(p)
}

// dropPeer tears the connection down and unregisters it, unless a
// replacement already took the slot.
func (t *TCPCoordinatorTransport) dropPeer(p *tcpPeer) {
	p.shutdown()
	t.mu.Lock()
	if t.peers[p.id] == p {
		delete(t.peers, p.id)
	}
	t.mu.Unlock()
}

func (t *TCPCoordinatorTransport) readLoop(p *tcpPeer) {
	defer t.wg.Done()
	defer t.dropPeer(p)
	for {
		p.conn.SetReadDeadline(time.Now().Add(t.opts.PeerTimeout))
		raw, err := ReadFrame(p.conn)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				t.peersShed.Add(1) // silent peer: liveness expired
			}
			return
		}
		msgType, err := VerifyFrame(raw)
		if err != nil {
			// Corruption on the wire: reset the connection rather than
			// trying to resynchronize a byte stream we no longer trust.
			// The node's reconnect performs a clean re-handshake.
			t.crcResets.Add(1)
			return
		}
		p.touch()
		switch msgType {
		case MsgSnapshot:
			t.framesIn.Add(1)
			t.mu.Lock()
			h := t.coord
			t.mu.Unlock()
			if h != nil {
				h(p.id, raw)
			}
		case MsgHeartbeat:
			t.heartbeatsIn.Add(1)
		default:
			// A node has no business sending deploys or hellos mid-stream:
			// protocol violation, same remedy as corruption.
			t.crcResets.Add(1)
			return
		}
	}
}

func (t *TCPCoordinatorTransport) writeLoop(p *tcpPeer) {
	defer t.wg.Done()
	hb := time.NewTicker(t.opts.HeartbeatEvery)
	defer hb.Stop()
	for {
		select {
		case <-p.stop:
			return
		case frame := <-p.sendq:
			if !t.writeFrame(p, frame) {
				return
			}
		case <-hb.C:
			if !t.writeFrame(p, EncodeHeartbeat(0)) {
				return
			}
		}
	}
}

// writeFrame writes one frame under the write deadline; false sheds the
// peer (a stalled reader on the far side must not wedge the writer).
func (t *TCPCoordinatorTransport) writeFrame(p *tcpPeer, frame []byte) bool {
	p.conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout))
	if err := WriteFrame(p.conn, frame); err != nil {
		t.peersShed.Add(1)
		t.dropPeer(p)
		return false
	}
	t.framesOut.Add(1)
	return true
}

// HandleCoordinator implements Transport.
func (t *TCPCoordinatorTransport) HandleCoordinator(fn func(from uint32, frame []byte)) {
	t.mu.Lock()
	t.coord = fn
	t.mu.Unlock()
}

// HandleNode implements Transport; it is a no-op on the coordinator
// half (nodes register on their own TCPTransport).
func (t *TCPCoordinatorTransport) HandleNode(uint32, func(frame []byte)) {}

// ToCoordinator implements Transport; always ErrNotNodeSide here.
func (t *TCPCoordinatorTransport) ToCoordinator(uint32, []byte) error { return ErrNotNodeSide }

// ToNode implements Transport: enqueue onto node `to`'s bounded send
// queue. No live connection or a full queue is a counted drop, not an
// error — the staleness bound on the node is the delivery contract.
func (t *TCPCoordinatorTransport) ToNode(to uint32, frame []byte) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	p := t.peers[to]
	t.mu.Unlock()
	if p == nil {
		t.dropsNoPeer.Add(1)
		return nil
	}
	if !p.enqueue(frame) {
		t.dropsFull.Add(1)
	}
	return nil
}

// LastSeen reports, per connected node, how long ago its last frame
// (snapshot or heartbeat) arrived — the per-node liveness view /health
// serves.
func (t *TCPCoordinatorTransport) LastSeen() map[uint32]time.Duration {
	now := time.Now().UnixNano()
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[uint32]time.Duration, len(t.peers))
	for id, p := range t.peers {
		out[id] = time.Duration(now - p.lastSeen.Load())
	}
	return out
}

// Stats snapshots the transport counters, from any goroutine.
func (t *TCPCoordinatorTransport) Stats() TCPCoordinatorStats {
	t.mu.Lock()
	connected := len(t.peers)
	t.mu.Unlock()
	return TCPCoordinatorStats{
		Accepted:       t.accepted.Load(),
		HandshakeFails: t.handshakeFails.Load(),
		FramesIn:       t.framesIn.Load(),
		FramesOut:      t.framesOut.Load(),
		DropsNoPeer:    t.dropsNoPeer.Load(),
		DropsQueueFull: t.dropsFull.Load(),
		CRCResets:      t.crcResets.Load(),
		PeersShed:      t.peersShed.Load(),
		HeartbeatsIn:   t.heartbeatsIn.Load(),
		Connected:      connected,
	}
}

// Close stops accepting, tears down every node connection, and waits
// for all transport goroutines to exit. Idempotent; concurrent ToNode
// callers observe ErrClosed.
func (t *TCPCoordinatorTransport) Close() {
	t.mu.Lock()
	already := t.closed
	t.closed = true
	peers := make([]*tcpPeer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	t.mu.Unlock()
	if !already {
		t.ln.Close()
		for _, p := range peers {
			p.shutdown()
		}
	}
	t.wg.Wait()
}

// TCPNodeStats is a point-in-time snapshot of the dialer-side transport
// counters.
type TCPNodeStats struct {
	// Dials counts connection attempts; Connects counts completed
	// handshakes (so Connects > 1 means the link was re-established).
	Dials    uint64
	Connects uint64
	// FramesIn counts deploys dispatched to the handler; FramesOut
	// counts frames written (snapshots, hello, heartbeats).
	FramesIn  uint64
	FramesOut uint64
	// DropsDisconnected counts publishes while the link was down;
	// DropsQueueFull counts bounded-queue overflows.
	DropsDisconnected uint64
	DropsQueueFull    uint64
	// CRCResets counts connections this side reset after a frame failed
	// verification.
	CRCResets uint64
	// HeartbeatsIn counts coordinator heartbeats received.
	HeartbeatsIn uint64
	// Connected reports whether a handshaken connection is live now.
	Connected bool
}

// TCPTransport is the node half of the socket backend: one dialer that
// keeps a single connection to the coordinator alive, reconnecting with
// seeded exponential backoff whenever it drops. It implements
// Transport; only the node-direction methods (HandleNode,
// ToCoordinator) are live — ToNode returns ErrNotNodeSide and
// HandleCoordinator is a no-op.
//
// DialTCP returns before the first connection is up: the fleet node
// rides its local-ranking fallback until the link (and the first fleet
// deploy) lands, the same degraded-start the in-process fleet has when
// it boots partitioned.
type TCPTransport struct {
	id   uint32
	addr string
	opts TCPOptions

	dialCtx    context.Context
	cancelDial context.CancelFunc

	mu      sync.Mutex
	handler func(frame []byte)
	cur     *tcpPeer
	closed  bool
	stop    chan struct{}
	wg      sync.WaitGroup

	connected atomic.Bool

	dials             atomic.Uint64
	connects          atomic.Uint64
	framesIn          atomic.Uint64
	framesOut         atomic.Uint64
	dropsDisconnected atomic.Uint64
	dropsFull         atomic.Uint64
	crcResets         atomic.Uint64
	heartbeatsIn      atomic.Uint64
}

// DialTCP starts the node-side transport for node id against the
// coordinator at addr. id 0 is reserved for the coordinator.
func DialTCP(addr string, id uint32, opts TCPOptions) (*TCPTransport, error) {
	if id == 0 {
		return nil, fmt.Errorf("fleet: node id 0 is reserved for the coordinator")
	}
	if addr == "" {
		return nil, fmt.Errorf("fleet: DialTCP needs a coordinator address")
	}
	ctx, cancel := context.WithCancel(context.Background())
	t := &TCPTransport{
		id:         id,
		addr:       addr,
		opts:       opts.withDefaults(),
		dialCtx:    ctx,
		cancelDial: cancel,
		stop:       make(chan struct{}),
	}
	t.wg.Add(1)
	go t.connectLoop()
	return t, nil
}

// connectLoop is the reconnect state machine: dial → hello → serve the
// connection until it dies → back off (seeded exponential + jitter) →
// redial. Close cancels the in-flight dial and the backoff sleep.
func (t *TCPTransport) connectLoop() {
	defer t.wg.Done()
	bo := newBackoff(t.opts.BackoffMin, t.opts.BackoffMax,
		faults.NewRand(faults.DeriveSeed(t.opts.Seed, uint64(t.id))))
	for {
		select {
		case <-t.stop:
			return
		default:
		}
		t.dials.Add(1)
		d := net.Dialer{Timeout: t.opts.DialTimeout}
		conn, err := d.DialContext(t.dialCtx, "tcp", t.addr)
		if err == nil {
			if t.runConn(conn) {
				bo.reset()
			}
		}
		select {
		case <-t.stop:
			return
		case <-time.After(bo.next()):
		}
	}
}

// runConn performs the hello handshake and serves one connection; it
// returns true when the handshake completed (resetting the backoff),
// regardless of how the connection later died.
func (t *TCPTransport) runConn(conn net.Conn) bool {
	tuneConn(conn)
	conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout))
	if err := WriteFrame(conn, EncodeHello(t.id)); err != nil {
		conn.Close()
		return false
	}
	p := &tcpPeer{
		id:    t.id,
		conn:  conn,
		sendq: make(chan []byte, t.opts.SendQueueDepth),
		stop:  make(chan struct{}),
	}
	p.touch()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return false
	}
	t.cur = p
	t.mu.Unlock()
	t.connects.Add(1)
	t.connected.Store(true)

	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.writeLoop(p)
	}()
	t.readLoop(p)

	p.shutdown()
	t.connected.Store(false)
	t.mu.Lock()
	if t.cur == p {
		t.cur = nil
	}
	t.mu.Unlock()
	return true
}

func (t *TCPTransport) readLoop(p *tcpPeer) {
	for {
		p.conn.SetReadDeadline(time.Now().Add(t.opts.PeerTimeout))
		raw, err := ReadFrame(p.conn)
		if err != nil {
			return // timeout, reset, or close: redial decides what next
		}
		msgType, err := VerifyFrame(raw)
		if err != nil {
			t.crcResets.Add(1)
			return // reset; the reconnect re-handshakes cleanly
		}
		p.touch()
		switch msgType {
		case MsgDeploy:
			t.framesIn.Add(1)
			t.mu.Lock()
			h := t.handler
			t.mu.Unlock()
			if h != nil {
				h(raw)
			}
		case MsgHeartbeat:
			t.heartbeatsIn.Add(1)
		default:
			t.crcResets.Add(1)
			return
		}
	}
}

func (t *TCPTransport) writeLoop(p *tcpPeer) {
	hb := time.NewTicker(t.opts.HeartbeatEvery)
	defer hb.Stop()
	for {
		select {
		case <-p.stop:
			return
		case frame := <-p.sendq:
			if !t.writeFrame(p, frame) {
				return
			}
		case <-hb.C:
			if !t.writeFrame(p, EncodeHeartbeat(t.id)) {
				return
			}
		}
	}
}

func (t *TCPTransport) writeFrame(p *tcpPeer, frame []byte) bool {
	p.conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout))
	if err := WriteFrame(p.conn, frame); err != nil {
		p.shutdown() // wake the reader so the redial starts
		return false
	}
	t.framesOut.Add(1)
	return true
}

// HandleNode implements Transport; handlers for other ids are ignored
// (this transport speaks for exactly one node).
func (t *TCPTransport) HandleNode(id uint32, fn func(frame []byte)) {
	if id != t.id {
		return
	}
	t.mu.Lock()
	t.handler = fn
	t.mu.Unlock()
}

// HandleCoordinator implements Transport; a no-op on the node half.
func (t *TCPTransport) HandleCoordinator(func(from uint32, frame []byte)) {}

// ToNode implements Transport; always ErrNotNodeSide here.
func (t *TCPTransport) ToNode(uint32, []byte) error { return ErrNotNodeSide }

// ToCoordinator implements Transport: enqueue onto the live
// connection's bounded send queue. While disconnected the frame is a
// counted drop (the coordinator only ever wants the newest snapshot,
// so buffering across a reconnect would ship stale state); after Close
// it is ErrClosed.
func (t *TCPTransport) ToCoordinator(from uint32, frame []byte) error {
	t.mu.Lock()
	closed, p := t.closed, t.cur
	t.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if p == nil {
		t.dropsDisconnected.Add(1)
		return nil
	}
	if !p.enqueue(frame) {
		t.dropsFull.Add(1)
	}
	return nil
}

// Connected reports whether a handshaken connection is live.
func (t *TCPTransport) Connected() bool { return t.connected.Load() }

// Stats snapshots the transport counters, from any goroutine.
func (t *TCPTransport) Stats() TCPNodeStats {
	return TCPNodeStats{
		Dials:             t.dials.Load(),
		Connects:          t.connects.Load(),
		FramesIn:          t.framesIn.Load(),
		FramesOut:         t.framesOut.Load(),
		DropsDisconnected: t.dropsDisconnected.Load(),
		DropsQueueFull:    t.dropsFull.Load(),
		CRCResets:         t.crcResets.Load(),
		HeartbeatsIn:      t.heartbeatsIn.Load(),
		Connected:         t.connected.Load(),
	}
}

// Close stops the dialer — cancelling an in-flight dial or backoff
// sleep — tears down the live connection, and waits for every
// transport goroutine to exit. Idempotent; concurrent publishers
// observe ErrClosed.
func (t *TCPTransport) Close() {
	t.mu.Lock()
	already := t.closed
	t.closed = true
	p := t.cur
	t.mu.Unlock()
	if !already {
		close(t.stop)
		t.cancelDial()
		if p != nil {
			p.shutdown()
		}
	}
	t.wg.Wait()
}

// Interface conformance.
var (
	_ Transport = (*TCPCoordinatorTransport)(nil)
	_ Transport = (*TCPTransport)(nil)
)
