package fleet

import (
	"testing"

	"accturbo/internal/cluster"
	"accturbo/internal/eventsim"
)

// benchSnapshot builds a realistic publish payload: a full
// HardwareConfig-shaped snapshot (4 slots x 4 features) with live
// counters — what every node serializes once per poll interval.
func benchSnapshot() *Snapshot {
	infos := make([]cluster.Info, 4)
	for i := range infos {
		lo := uint32(64 * i)
		infos[i] = cluster.Info{
			ID: i, Active: true,
			Ranges: []cluster.Range{
				{Min: lo, Max: lo + 63},
				{Min: 0, Max: 255},
				{Min: 1024, Max: 65535},
				{Min: 53, Max: 443},
			},
			NominalCardinality: []int{0, 0, 0, 0},
			Packets:            12345 + uint64(i),
			Bytes:              15_000_000 + uint64(i)*1000,
			TotalPackets:       98765,
			Benign:             11111,
			Malicious:          222,
			Size:               float64(64*4 - 4),
		}
	}
	return &Snapshot{Node: 3, Seq: 991, At: eventsim.Time(17_250_000_000), Infos: infos}
}

func BenchmarkSnapshotEncode(b *testing.B) {
	s := benchSnapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame := EncodeSnapshot(s)
		if len(frame) == 0 {
			b.Fatal("empty frame")
		}
	}
}

func BenchmarkSnapshotDecode(b *testing.B) {
	frame := EncodeSnapshot(benchSnapshot())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := DecodeSnapshot(frame)
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Infos) != 4 {
			b.Fatal("short decode")
		}
	}
}
