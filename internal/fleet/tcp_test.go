package fleet

import (
	"bytes"
	"encoding/binary"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"accturbo/internal/faults"
)

// testTCPOpts shrinks every transport timer so liveness transitions
// land in milliseconds instead of seconds.
func testTCPOpts() TCPOptions {
	return TCPOptions{
		HeartbeatEvery: 20 * time.Millisecond,
		PeerTimeout:    120 * time.Millisecond,
		WriteTimeout:   500 * time.Millisecond,
		DialTimeout:    500 * time.Millisecond,
		BackoffMin:     5 * time.Millisecond,
		BackoffMax:     50 * time.Millisecond,
		SendQueueDepth: 64,
		Seed:           7,
	}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("%s: not reached within 10s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// checkGoroutines waits for the goroutine count to return to base —
// the transport's no-leak contract after Close.
func checkGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d alive, base %d\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// rawHello opens a bare TCP connection to a coordinator transport and
// performs the hello handshake for node id — a node impersonator for
// protocol-violation tests.
func rawHello(t *testing.T, addr string, id uint32) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	if err := WriteFrame(conn, EncodeHello(id)); err != nil {
		t.Fatalf("raw hello: %v", err)
	}
	return conn
}

// TestReadFrameRejectsOversizedLength: a hostile length prefix is
// refused from the 15 header bytes alone — ReadFrame returns the limit
// error rather than trying to buffer (or block on) gigabytes that will
// never arrive. The reader carries only the header, so any attempt to
// read the claimed payload would surface as an EOF error instead of
// the limit error.
func TestReadFrameRejectsOversizedLength(t *testing.T) {
	head := make([]byte, 0, frameOverhead-4)
	head = append(head, wireMagic...)
	head = binary.LittleEndian.AppendUint16(head, wireVersion)
	head = append(head, MsgSnapshot)
	head = binary.LittleEndian.AppendUint32(head, uint32(maxFramePayload+1))
	_, err := ReadFrame(bytes.NewReader(head))
	if err == nil {
		t.Fatal("oversized length prefix accepted")
	}
	if !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized length prefix rejected with %q, want the payload-limit error", err)
	}

	// The limit itself is allowed: the header passes and the reader
	// fails later only because the payload bytes are absent.
	atLimit := make([]byte, 0, frameOverhead-4)
	atLimit = append(atLimit, wireMagic...)
	atLimit = binary.LittleEndian.AppendUint16(atLimit, wireVersion)
	atLimit = append(atLimit, MsgSnapshot)
	atLimit = binary.LittleEndian.AppendUint32(atLimit, uint32(maxFramePayload))
	if _, err := ReadFrame(bytes.NewReader(atLimit)); err == nil || strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("at-limit header: got %v, want an EOF-class error", err)
	}
}

// TestReadFrameRejectsForeignStream: bad magic and foreign versions are
// refused before any payload is read.
func TestReadFrameRejectsForeignStream(t *testing.T) {
	valid := EncodeHello(1)
	badMagic := append([]byte{}, valid...)
	badMagic[0] ^= 0xff
	if _, err := ReadFrame(bytes.NewReader(badMagic)); err == nil {
		t.Fatal("bad magic accepted")
	}
	badVersion := append([]byte{}, valid...)
	badVersion[len(wireMagic)] = 0xee
	if _, err := ReadFrame(bytes.NewReader(badVersion)); err == nil {
		t.Fatal("foreign version accepted")
	}
}

// TestBackoffSeededDeterministic: the reconnect schedule is a pure
// function of its seed — equal seeds replay identical delays, distinct
// seeds diverge, and every delay respects the configured bounds.
func TestBackoffSeededDeterministic(t *testing.T) {
	const min, max = 10 * time.Millisecond, 500 * time.Millisecond
	mk := func(seed uint64) *backoff {
		return newBackoff(min, max, faults.NewRand(faults.DeriveSeed(seed, 3)))
	}
	a, b := mk(42), mk(42)
	var seqA, seqB []time.Duration
	for i := 0; i < 20; i++ {
		da, db := a.next(), b.next()
		seqA, seqB = append(seqA, da), append(seqB, db)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v != %v", i, da, db)
		}
		if da < min/2 || da >= max {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", i, da, min/2, max)
		}
	}
	// The schedule escalates: late delays jitter near the cap, so the
	// max over the tail must exceed the first (half-of-min-bounded) one.
	if seqA[19] < seqA[0] && seqA[18] < seqA[0] && seqA[17] < seqA[0] {
		t.Fatalf("backoff never escalated: first %v, tail %v", seqA[0], seqA[17:])
	}
	c := mk(43)
	diverged := false
	for i := 0; i < 20; i++ {
		if c.next() != seqA[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical schedules")
	}
	// reset re-arms the escalation.
	a.reset()
	if d := a.next(); d >= max {
		t.Fatalf("post-reset delay %v did not drop below the cap", d)
	}
}

// TestTCPRoundTrip: hello handshake, snapshots up, deploys down, and
// per-node last-seen ages on the coordinator — the basic contract of
// the socket backend, over real loopback TCP.
func TestTCPRoundTrip(t *testing.T) {
	base := runtime.NumGoroutine()
	opts := testTCPOpts()
	co, err := ListenTCP("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var snaps []*Snapshot
	var froms []uint32
	co.HandleCoordinator(func(from uint32, frame []byte) {
		s, err := DecodeSnapshot(frame)
		if err != nil {
			t.Errorf("coordinator received undecodable snapshot: %v", err)
			return
		}
		mu.Lock()
		froms = append(froms, from)
		snaps = append(snaps, s)
		mu.Unlock()
	})

	nt, err := DialTCP(co.Addr(), 7, opts)
	if err != nil {
		t.Fatal(err)
	}
	var deployMu sync.Mutex
	var deploys []*Deploy
	nt.HandleNode(7, func(frame []byte) {
		d, err := DecodeDeploy(frame)
		if err != nil {
			t.Errorf("node received undecodable deploy: %v", err)
			return
		}
		deployMu.Lock()
		deploys = append(deploys, d)
		deployMu.Unlock()
	})

	waitUntil(t, "node connected", nt.Connected)
	if err := nt.ToCoordinator(7, EncodeSnapshot(&Snapshot{Node: 7, Seq: 1, Infos: slotInfos(100, 200)})); err != nil {
		t.Fatalf("publish: %v", err)
	}
	waitUntil(t, "snapshot arrival", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(snaps) > 0
	})
	mu.Lock()
	if froms[0] != 7 || snaps[0].Node != 7 || snaps[0].Seq != 1 {
		t.Fatalf("snapshot arrived as from=%d node=%d seq=%d, want 7/7/1", froms[0], snaps[0].Node, snaps[0].Seq)
	}
	mu.Unlock()

	if err := co.ToNode(7, EncodeDeploy(&Deploy{Epoch: 1, QueueOf: []int{0, 1}, Rank: []float64{2, 1}})); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	waitUntil(t, "deploy arrival", func() bool {
		deployMu.Lock()
		defer deployMu.Unlock()
		return len(deploys) > 0
	})
	deployMu.Lock()
	if deploys[0].Epoch != 1 || len(deploys[0].QueueOf) != 2 {
		t.Fatalf("deploy arrived as %+v", deploys[0])
	}
	deployMu.Unlock()

	// Sends to an absent node are counted drops, not errors.
	if err := co.ToNode(42, EncodeDeploy(&Deploy{Epoch: 2})); err != nil {
		t.Fatalf("ToNode(absent) = %v, want nil", err)
	}
	if st := co.Stats(); st.DropsNoPeer == 0 {
		t.Fatalf("no counted drop for an absent node: %+v", st)
	}

	ages := co.LastSeen()
	if age, ok := ages[7]; !ok || age > opts.PeerTimeout {
		t.Fatalf("LastSeen = %v, want a fresh entry for node 7", ages)
	}

	nt.Close()
	co.Close()
	checkGoroutines(t, base)
}

// TestTCPHeartbeatsKeepIdleLinkAlive: with no traffic at all, the
// heartbeat exchange keeps both sides within the liveness bound for
// many PeerTimeouts — an idle fleet is not a dead fleet.
func TestTCPHeartbeatsKeepIdleLinkAlive(t *testing.T) {
	opts := testTCPOpts()
	co, err := ListenTCP("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	nt, err := DialTCP(co.Addr(), 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer nt.Close()
	waitUntil(t, "node connected", nt.Connected)

	time.Sleep(4 * opts.PeerTimeout)
	if !nt.Connected() {
		t.Fatal("idle node disconnected despite heartbeats")
	}
	if age, ok := co.LastSeen()[2]; !ok || age > opts.PeerTimeout {
		t.Fatalf("idle peer went stale on the coordinator: %v", co.LastSeen())
	}
	if st := nt.Stats(); st.HeartbeatsIn == 0 {
		t.Fatalf("node saw no coordinator heartbeats: %+v", st)
	}
	if st := co.Stats(); st.HeartbeatsIn == 0 {
		t.Fatalf("coordinator saw no node heartbeats: %+v", st)
	}
}

// TestTCPSilentPeerShed: a peer that handshakes and then goes silent
// (no heartbeats — a wedged process, not a closed socket) is shed when
// the read deadline expires, and disappears from the liveness view.
func TestTCPSilentPeerShed(t *testing.T) {
	opts := testTCPOpts()
	co, err := ListenTCP("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	conn := rawHello(t, co.Addr(), 9)
	defer conn.Close()
	waitUntil(t, "handshake", func() bool { return co.Stats().Accepted == 1 })
	waitUntil(t, "silent peer shed", func() bool { return co.Stats().PeersShed >= 1 })
	waitUntil(t, "liveness view cleared", func() bool { return len(co.LastSeen()) == 0 })
}

// TestTCPCRCResetAndRehandshake: a frame that fails verification resets
// the connection — it never reaches the coordinator handler — and the
// same node can come straight back with a clean hello.
func TestTCPCRCResetAndRehandshake(t *testing.T) {
	opts := testTCPOpts()
	co, err := ListenTCP("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	var delivered sync.Map
	co.HandleCoordinator(func(from uint32, frame []byte) {
		if s, err := DecodeSnapshot(frame); err == nil {
			delivered.Store(s.Seq, true)
		}
	})

	conn := rawHello(t, co.Addr(), 9)
	defer conn.Close()
	corrupt := EncodeSnapshot(&Snapshot{Node: 9, Seq: 1, Infos: slotInfos(10, 20)})
	corrupt[len(corrupt)-6] ^= 0x40 // payload byte: framing intact, CRC broken
	if err := WriteFrame(conn, corrupt); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "CRC reset", func() bool { return co.Stats().CRCResets >= 1 })
	if _, ok := delivered.Load(uint64(1)); ok {
		t.Fatal("corrupt frame reached the coordinator handler")
	}
	// The connection is dead: the next read observes it.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	for {
		if _, err := conn.Read(buf); err != nil {
			break
		}
	}

	// Clean re-handshake: a fresh connection for the same id works.
	conn2 := rawHello(t, co.Addr(), 9)
	defer conn2.Close()
	if err := WriteFrame(conn2, EncodeSnapshot(&Snapshot{Node: 9, Seq: 2, Infos: slotInfos(30, 40)})); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "post-reset snapshot delivery", func() bool {
		_, ok := delivered.Load(uint64(2))
		return ok
	})
}

// TestTCPReconnectAfterCoordinatorRestart: killing the coordinator
// flips the node to counted-drop publishing (never an error), and a
// coordinator reborn on the same address gets a fresh handshake and
// the frames flow again — the recovery half of the fallback arc.
func TestTCPReconnectAfterCoordinatorRestart(t *testing.T) {
	opts := testTCPOpts()
	co, err := ListenTCP("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	addr := co.Addr()
	nt, err := DialTCP(addr, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer nt.Close()
	waitUntil(t, "initial connect", nt.Connected)

	co.Close()
	waitUntil(t, "node noticed the outage", func() bool { return !nt.Connected() })
	if err := nt.ToCoordinator(3, EncodeSnapshot(&Snapshot{Node: 3, Seq: 1})); err != nil {
		t.Fatalf("publish while down = %v, want nil (counted drop)", err)
	}
	if st := nt.Stats(); st.DropsDisconnected == 0 {
		t.Fatalf("publish while down was not counted: %+v", st)
	}

	co2, err := ListenTCP(addr, opts)
	if err != nil {
		t.Fatalf("re-listen on %s: %v", addr, err)
	}
	defer co2.Close()
	var got sync.Map
	co2.HandleCoordinator(func(from uint32, frame []byte) {
		if s, err := DecodeSnapshot(frame); err == nil {
			got.Store(s.Seq, from)
		}
	})
	waitUntil(t, "reconnect", func() bool { return nt.Connected() && nt.Stats().Connects >= 2 })
	if err := nt.ToCoordinator(3, EncodeSnapshot(&Snapshot{Node: 3, Seq: 2, Infos: slotInfos(5, 6)})); err != nil {
		t.Fatalf("publish after recovery: %v", err)
	}
	waitUntil(t, "post-recovery delivery", func() bool {
		_, ok := got.Load(uint64(2))
		return ok
	})
}

// TestTCPCloseWhileReconnecting: Close during the dial/backoff cycle —
// nobody listening on the target — returns promptly and leaks nothing.
func TestTCPCloseWhileReconnecting(t *testing.T) {
	base := runtime.NumGoroutine()
	// A port with no listener: bind, read the address, release.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	for iter := 0; iter < 8; iter++ {
		nt, err := DialTCP(addr, 5, testTCPOpts())
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Duration(iter) * 3 * time.Millisecond) // land in dial, backoff, and boundary states
		start := time.Now()
		nt.Close()
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("Close during reconnect took %v", d)
		}
		nt.Close() // idempotent
		if err := nt.ToCoordinator(5, EncodeHeartbeat(5)); err != ErrClosed {
			t.Fatalf("publish after Close = %v, want ErrClosed", err)
		}
	}
	checkGoroutines(t, base)
}

// TestTCPCloseWhilePublishing is the dial/close race gate for the
// socket backend, mirroring TestChanTransportCloseWhilePublish:
// publishers hammer ToCoordinator while Close tears the transport
// down; every interleaving must end in nil (sent or counted drop) or
// ErrClosed — no panic, no deadlock, no leak, which -race verifies.
func TestTCPCloseWhilePublishing(t *testing.T) {
	base := runtime.NumGoroutine()
	for iter := 0; iter < 8; iter++ {
		opts := testTCPOpts()
		co, err := ListenTCP("127.0.0.1:0", opts)
		if err != nil {
			t.Fatal(err)
		}
		nt, err := DialTCP(co.Addr(), 4, opts)
		if err != nil {
			t.Fatal(err)
		}
		if iter%2 == 0 {
			waitUntil(t, "connect", nt.Connected) // also race the connected path
		}
		frame := EncodeSnapshot(&Snapshot{Node: 4, Seq: 1, Infos: slotInfos(1, 2)})
		var wg sync.WaitGroup
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					if err := nt.ToCoordinator(4, frame); err != nil && err != ErrClosed {
						t.Errorf("publish: %v", err)
						return
					}
				}
			}()
		}
		time.Sleep(time.Duration(iter) * 200 * time.Microsecond)
		nt.Close()
		wg.Wait()
		co.Close()
	}
	checkGoroutines(t, base)
}

// TestChaosPlanDeterministic: the schedule render is a pure function of
// the spec — CI's determinism gate in miniature.
func TestChaosPlanDeterministic(t *testing.T) {
	spec := ChaosSpec{Seed: 11, CorruptEvery: 4096, ResetEvery: 16384, DelayEvery: 8192, DelayFor: 5 * time.Millisecond}
	a, b := spec.Plan(3, 1<<16), spec.Plan(3, 1<<16)
	if a != b {
		t.Fatal("identical specs rendered different plans")
	}
	if strings.Count(a, "\n") < 10 {
		t.Fatalf("plan suspiciously empty:\n%s", a)
	}
	for _, want := range []string{"corrupt mask=", "reset", "delay"} {
		if !strings.Contains(a, want) {
			t.Fatalf("plan missing %q events:\n%s", want, a)
		}
	}
	other := spec
	other.Seed = 12
	if other.Plan(3, 1<<16) == a {
		t.Fatal("different seeds rendered identical plans")
	}
}

// TestChaosProxyRelaysAndPartitions: a fault-free proxy is transparent
// to the transport; a partition resets and refuses connections until
// healed, after which the node re-handshakes through the proxy.
func TestChaosProxyRelaysAndPartitions(t *testing.T) {
	opts := testTCPOpts()
	co, err := ListenTCP("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	px, err := NewChaosProxy("127.0.0.1:0", co.Addr(), ChaosSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	var got sync.Map
	co.HandleCoordinator(func(from uint32, frame []byte) {
		if s, err := DecodeSnapshot(frame); err == nil {
			got.Store(s.Seq, from)
		}
	})

	nt, err := DialTCP(px.Addr(), 6, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer nt.Close()
	waitUntil(t, "connect through proxy", nt.Connected)
	if err := nt.ToCoordinator(6, EncodeSnapshot(&Snapshot{Node: 6, Seq: 1, Infos: slotInfos(9, 9)})); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "relayed delivery", func() bool {
		_, ok := got.Load(uint64(1))
		return ok
	})

	px.SetPartition(true)
	waitUntil(t, "partition noticed", func() bool { return !nt.Connected() })
	waitUntil(t, "refused while partitioned", func() bool { return px.Stats().PartitionRefused >= 1 })

	px.SetPartition(false)
	waitUntil(t, "reconnect after heal", func() bool { return nt.Connected() && nt.Stats().Connects >= 2 })
	if err := nt.ToCoordinator(6, EncodeSnapshot(&Snapshot{Node: 6, Seq: 2, Infos: slotInfos(8, 8)})); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "post-heal delivery", func() bool {
		_, ok := got.Load(uint64(2))
		return ok
	})
	if st := px.Stats(); st.Connections < 2 || st.BytesForwarded == 0 {
		t.Fatalf("proxy stats %+v, want >= 2 connections and forwarded bytes", st)
	}
}

// TestChaosProxyCorruptionTriggersCRCResets: with byte corruption on
// the wire, the coordinator's verification catches it, the connection
// resets, the node re-handshakes, and traffic keeps flowing — no
// corrupt frame is ever dispatched.
func TestChaosProxyCorruptionTriggersCRCResets(t *testing.T) {
	opts := testTCPOpts()
	co, err := ListenTCP("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	px, err := NewChaosProxy("127.0.0.1:0", co.Addr(), ChaosSpec{Seed: 3, CorruptEvery: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	var delivered sync.Map
	co.HandleCoordinator(func(from uint32, frame []byte) {
		s, err := DecodeSnapshot(frame)
		if err != nil {
			t.Errorf("corrupt frame dispatched to the coordinator: %v", err)
			return
		}
		delivered.Store(s.Seq, true)
	})

	nt, err := DialTCP(px.Addr(), 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer nt.Close()

	deadline := time.Now().Add(10 * time.Second)
	var seq uint64
	for {
		seq++
		nt.ToCoordinator(8, EncodeSnapshot(&Snapshot{Node: 8, Seq: seq, Infos: slotInfos(seq, seq)}))
		resets := co.Stats().CRCResets + nt.Stats().CRCResets
		var count int
		delivered.Range(func(any, any) bool { count++; return true })
		if resets >= 1 && count >= 5 && nt.Stats().Connects >= 2 {
			break // corrupted, reset, re-handshaken, and still delivering
		}
		if time.Now().After(deadline) {
			t.Fatalf("no CRC reset + recovery within 10s: co=%+v nt=%+v delivered=%d", co.Stats(), nt.Stats(), count)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if px.Stats().BytesCorrupted == 0 {
		t.Fatalf("proxy reports no corruption: %+v", px.Stats())
	}
}
