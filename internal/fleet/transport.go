package fleet

import (
	"errors"
	"sync"
	"sync/atomic"

	"accturbo/internal/eventsim"
)

// Transport moves framed fleet messages between N nodes and one
// coordinator. It is deliberately datagram-shaped over TCP-shaped
// frames: a send either hands the frame to the far side's handler
// (possibly later) or drops it — there is no delivery report beyond
// ErrClosed, because the node's staleness bound, not the transport, is
// the fleet's failure detector. Handlers run on the transport's
// delivery context (the event engine for SimTransport, the dispatcher
// goroutine for ChanTransport) and must not block it.
//
// Both in-process backends move whole frames; the framing itself is
// byte-stream-safe (see WriteFrame/ReadFrame), so a socket backend
// slots in behind this same interface later.
type Transport interface {
	// ToCoordinator sends a frame from node `from` to the coordinator.
	ToCoordinator(from uint32, frame []byte) error
	// ToNode sends a frame from the coordinator to node `to`.
	ToNode(to uint32, frame []byte) error
	// HandleCoordinator registers the coordinator's receive handler.
	HandleCoordinator(fn func(from uint32, frame []byte))
	// HandleNode registers node id's receive handler.
	HandleNode(id uint32, fn func(frame []byte))
}

// ErrClosed reports a send on a closed transport.
var ErrClosed = errors.New("fleet: transport closed")

// SimTransport delivers frames as scheduled events on a shared
// discrete-event engine: every send arrives exactly Latency later, in
// deterministic engine order — the backend the fleet experiment and the
// determinism gates run on. SetUp(false) partitions the fleet (frames
// in either direction are counted and dropped, exactly what a node
// behind a network partition observes); SetUp(true) heals it. Not
// goroutine-safe: everything happens on the engine's thread, like the
// rest of eventsim.
type SimTransport struct {
	eng     *eventsim.Engine
	latency eventsim.Time
	up      bool

	coord func(from uint32, frame []byte)
	nodes map[uint32]func(frame []byte)

	// Dropped counts frames lost to partition, in both directions.
	Dropped uint64
	// Delivered counts frames handed to a handler.
	Delivered uint64
}

// NewSimTransport builds a deterministic in-process transport on eng
// with the given one-way delivery latency. The link starts up.
func NewSimTransport(eng *eventsim.Engine, latency eventsim.Time) *SimTransport {
	return &SimTransport{
		eng:     eng,
		latency: latency,
		up:      true,
		nodes:   make(map[uint32]func(frame []byte)),
	}
}

// SetUp raises (true) or partitions (false) the coordinator link. A
// partition drops frames at send time; frames already in flight still
// deliver, like packets past the failed switch.
func (t *SimTransport) SetUp(up bool) { t.up = up }

// Up reports the link state.
func (t *SimTransport) Up() bool { return t.up }

func (t *SimTransport) HandleCoordinator(fn func(from uint32, frame []byte)) { t.coord = fn }

func (t *SimTransport) HandleNode(id uint32, fn func(frame []byte)) { t.nodes[id] = fn }

func (t *SimTransport) ToCoordinator(from uint32, frame []byte) error {
	if !t.up || t.coord == nil {
		t.Dropped++
		return nil
	}
	t.eng.At(t.eng.Now()+t.latency, func(eventsim.Time) {
		t.Delivered++
		t.coord(from, frame)
	})
	return nil
}

func (t *SimTransport) ToNode(to uint32, frame []byte) error {
	fn, ok := t.nodes[to]
	if !t.up || !ok {
		t.Dropped++
		return nil
	}
	t.eng.At(t.eng.Now()+t.latency, func(eventsim.Time) {
		t.Delivered++
		fn(frame)
	})
	return nil
}

// ChanTransport is the real-time in-process backend: one dispatcher
// goroutine drains a bounded queue and invokes handlers, preserving
// send order. Sends are safe from any goroutine and never block the
// caller's control loop: a full queue drops the frame (counted) the way
// a congested link would, and a closed transport returns ErrClosed —
// which is how close-while-publish resolves safely (see Close).
type ChanTransport struct {
	mu     sync.RWMutex
	coord  func(from uint32, frame []byte)
	nodes  map[uint32]func(frame []byte)
	queue  chan chanDelivery
	done   chan struct{}
	closed atomic.Bool
	up     atomic.Bool

	dropped   atomic.Uint64
	delivered atomic.Uint64
}

type chanDelivery struct {
	toCoord bool
	id      uint32 // from (toCoord) or to (!toCoord)
	frame   []byte
}

// NewChanTransport builds a real-time transport with a queue of the
// given depth (<=0 defaults to 256). Call Close to stop the dispatcher.
func NewChanTransport(depth int) *ChanTransport {
	if depth <= 0 {
		depth = 256
	}
	t := &ChanTransport{
		nodes: make(map[uint32]func(frame []byte)),
		queue: make(chan chanDelivery, depth),
		done:  make(chan struct{}),
	}
	t.up.Store(true)
	go t.dispatch()
	return t
}

func (t *ChanTransport) dispatch() {
	defer close(t.done)
	for d := range t.queue {
		t.mu.RLock()
		coord, node := t.coord, t.nodes[d.id]
		t.mu.RUnlock()
		if d.toCoord {
			if coord != nil {
				t.delivered.Add(1)
				coord(d.id, d.frame)
			}
			continue
		}
		if node != nil {
			t.delivered.Add(1)
			node(d.frame)
		}
	}
}

// SetUp raises (true) or partitions (false) the link, from any
// goroutine.
func (t *ChanTransport) SetUp(up bool) { t.up.Store(up) }

func (t *ChanTransport) HandleCoordinator(fn func(from uint32, frame []byte)) {
	t.mu.Lock()
	t.coord = fn
	t.mu.Unlock()
}

func (t *ChanTransport) HandleNode(id uint32, fn func(frame []byte)) {
	t.mu.Lock()
	t.nodes[id] = fn
	t.mu.Unlock()
}

// send enqueues under the read lock; Close takes the write lock, so a
// send either observes closed (ErrClosed) or completes its enqueue
// before the queue channel closes — never a send on a closed channel.
func (t *ChanTransport) send(d chanDelivery) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed.Load() {
		return ErrClosed
	}
	if !t.up.Load() {
		t.dropped.Add(1)
		return nil
	}
	select {
	case t.queue <- d:
		return nil
	default:
		t.dropped.Add(1)
		return nil
	}
}

func (t *ChanTransport) ToCoordinator(from uint32, frame []byte) error {
	return t.send(chanDelivery{toCoord: true, id: from, frame: frame})
}

func (t *ChanTransport) ToNode(to uint32, frame []byte) error {
	return t.send(chanDelivery{id: to, frame: frame})
}

// Dropped counts frames lost to partition or backpressure.
func (t *ChanTransport) Dropped() uint64 { return t.dropped.Load() }

// Delivered counts frames handed to a handler.
func (t *ChanTransport) Delivered() uint64 { return t.delivered.Load() }

// Close stops accepting sends, drains in-flight deliveries, and waits
// for the dispatcher to exit. Idempotent and safe concurrently with
// sends: publishers racing Close get ErrClosed (or complete first),
// and by return no handler is running or will run again.
func (t *ChanTransport) Close() {
	if !t.closed.CompareAndSwap(false, true) {
		<-t.done
		return
	}
	// The write lock waits out every in-flight send's read lock; after
	// this, no goroutine can be inside send() un-aware of closed.
	t.mu.Lock()
	close(t.queue)
	t.mu.Unlock()
	<-t.done
}
