package fleet

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadFrame is the stream-reader hardening gate: for arbitrary
// bytes, ReadFrame must either error or return a self-consistent frame
// — never panic, and never allocate past the frame-size limit no
// matter what the length prefix claims. Frames that additionally pass
// VerifyFrame must round-trip bit-identically through
// WriteFrame/ReadFrame, which pins the framing as self-delimiting.
func FuzzReadFrame(f *testing.F) {
	f.Add(EncodeHello(1))
	f.Add(EncodeHeartbeat(0))
	f.Add(EncodeSnapshot(&Snapshot{Node: 3, Seq: 9, Infos: slotInfos(100, 200)}))
	f.Add(EncodeDeploy(&Deploy{Epoch: 4, QueueOf: []int{1, 0}, Rank: []float64{2, 8}}))
	damaged := EncodeHello(2)
	damaged[len(damaged)-1] ^= 0x01
	f.Add(damaged)
	truncated := EncodeHeartbeat(5)
	f.Add(truncated[:len(truncated)-3])
	hostile := make([]byte, 0, frameOverhead-4)
	hostile = append(hostile, wireMagic...)
	hostile = binary.LittleEndian.AppendUint16(hostile, wireVersion)
	hostile = append(hostile, MsgSnapshot)
	hostile = binary.LittleEndian.AppendUint32(hostile, 0xffffffff)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		frame, err := ReadFrame(r)
		if err != nil {
			return // rejected: the only other acceptable outcome
		}
		if len(frame) > frameOverhead+maxFramePayload {
			t.Fatalf("ReadFrame returned %d bytes, above the %d frame limit", len(frame), frameOverhead+maxFramePayload)
		}
		if consumed := len(data) - r.Len(); consumed != len(frame) {
			t.Fatalf("ReadFrame consumed %d bytes but returned %d: the framing is not self-delimiting", consumed, len(frame))
		}
		// VerifyFrame on the result must not panic; when the CRC holds,
		// the frame is byte-stable through a write/read cycle.
		if _, err := VerifyFrame(frame); err == nil {
			var buf bytes.Buffer
			if err := WriteFrame(&buf, frame); err != nil {
				t.Fatalf("WriteFrame of a verified frame: %v", err)
			}
			again, err := ReadFrame(&buf)
			if err != nil {
				t.Fatalf("verified frame did not re-read: %v", err)
			}
			if !bytes.Equal(again, frame) {
				t.Fatal("verified frame did not round-trip bit-identically")
			}
		}
	})
}
