package fleet

import (
	"fmt"
	"sync"
	"sync/atomic"

	"accturbo/internal/cluster"
	"accturbo/internal/core"
	"accturbo/internal/eventsim"
)

// NodeConfig parameterizes one fleet vantage point.
type NodeConfig struct {
	// Slots and NumQueues mirror the node's structural config
	// (MaxClusters / strict-priority queue count); the local fallback
	// ranking and deploy validation use them.
	Slots     int
	NumQueues int
	// StaleAfter is the fleet staleness bound: when the newest global
	// deployment is older than this (in the node's clock), the node
	// falls back to ranking its own snapshot locally. Zero defaults to
	// 3 polling intervals — the same shape as the PR 5 watchdog bound,
	// but the degradation target is the node's *local ranking*, never
	// the undefended uniform map: a partitioned node keeps defending
	// with the best view it has.
	StaleAfter eventsim.Time
}

// Node is the fleet-mode core.Ranker: on every poll it publishes the
// node's freshly polled snapshot to the coordinator and deploys the
// newest global ranking — or, past the staleness bound, a locally
// computed one.
//
// The fallback is sticky in what it *reports*: once engaged, Source()
// and RankingDegraded() keep saying fallback until a fresh fleet
// deployment actually applies, so /health shows exactly which nodes a
// partition cut off and for how long. The fallback *behavior* is
// re-derived every poll (fresh local ranking over the current window),
// which generalizes PR 5's fail-open: that machinery degrades to
// uniform priority when the loop itself is dead; this one degrades to
// single-node ACC-Turbo when only the coordinator is gone. The two
// compose — a partitioned node whose loop then stalls still fails open.
//
// Rank runs inside the control plane's Step (one caller at a time); the
// transport handler runs on the delivery context. A mutex covers the
// handoff between them.
type Node struct {
	id  uint32
	tr  Transport
	now func() eventsim.Time
	cfg NodeConfig

	mu        sync.Mutex
	seq       uint64
	deploy    *Deploy       // newest applied-or-applicable global deployment
	deployAt  eventsim.Time // node-clock arrival time of deploy
	everFleet bool          // a fleet deployment has applied at least once
	fallback  atomic.Bool   // sticky degradation flag (see above)
	source    atomic.Pointer[string]

	// Counters, readable from any goroutine.
	published     atomic.Uint64
	publishErrors atomic.Uint64
	fleetDeploys  atomic.Uint64
	localPolls    atomic.Uint64
	fallbacks     atomic.Uint64
	badDeploys    atomic.Uint64
}

// NewNode builds a fleet node ranker and registers its deploy handler
// on tr. now must read the same clock that drives the node's control
// plane (the engine clock in simulation, the wall clock in real time).
func NewNode(id uint32, tr Transport, now func() eventsim.Time, cfg NodeConfig) (*Node, error) {
	if cfg.Slots <= 0 || cfg.NumQueues <= 0 {
		return nil, fmt.Errorf("fleet: node needs positive Slots (%d) and NumQueues (%d)", cfg.Slots, cfg.NumQueues)
	}
	if cfg.StaleAfter <= 0 {
		return nil, fmt.Errorf("fleet: node needs a positive StaleAfter bound")
	}
	n := &Node{id: id, tr: tr, now: now, cfg: cfg}
	src := "fleet-fallback:local" // until the first deployment arrives
	n.source.Store(&src)
	n.fallback.Store(true)
	tr.HandleNode(id, n.onDeploy)
	return n, nil
}

// onDeploy ingests a coordinator broadcast. Mis-sized maps (a
// coordinator configured for different slot geometry) and stale epochs
// are counted and ignored — the node would rather keep a good ranking
// than apply a wrong one.
func (n *Node) onDeploy(frame []byte) {
	dp, err := DecodeDeploy(frame)
	if err != nil || len(dp.QueueOf) != n.cfg.Slots {
		n.badDeploys.Add(1)
		return
	}
	for _, q := range dp.QueueOf {
		if q < 0 || q >= n.cfg.NumQueues {
			n.badDeploys.Add(1)
			return
		}
	}
	n.mu.Lock()
	if n.deploy == nil || dp.Epoch > n.deploy.Epoch {
		n.deploy = dp
		n.deployAt = n.now()
	}
	n.mu.Unlock()
}

// Rank implements core.Ranker: publish the window snapshot, then decide
// under the newest global deployment or the local fallback.
func (n *Node) Rank(now eventsim.Time, infos []cluster.Info, prev []int, rt core.RuntimeConfig) *core.Decision {
	n.seq++
	err := n.tr.ToCoordinator(n.id, EncodeSnapshot(&Snapshot{
		Node:  n.id,
		Seq:   n.seq,
		At:    now,
		Infos: infos,
	}))
	if err != nil {
		n.publishErrors.Add(1)
	} else {
		n.published.Add(1)
	}

	staleAfter := n.cfg.StaleAfter
	if staleAfter <= 0 {
		staleAfter = 3 * rt.PollInterval
	}

	n.mu.Lock()
	dp, at := n.deploy, n.deployAt
	n.mu.Unlock()

	if dp != nil && now-at <= staleAfter {
		// Fleet mode: deploy the coordinator's map. The decision keeps
		// the *local* window snapshot next to the *global* ranks, which
		// is the interpretable view an operator wants: "here is what I
		// saw, here is why the fleet demoted slot 3 anyway".
		if n.fallback.CompareAndSwap(true, false) || !n.everFleet {
			n.everFleet = true
			src := "fleet"
			n.source.Store(&src)
		}
		n.fleetDeploys.Add(1)
		queueOf := make([]int, len(dp.QueueOf))
		copy(queueOf, dp.QueueOf)
		rank := make([]float64, len(dp.Rank))
		copy(rank, dp.Rank)
		return &core.Decision{
			At:         now,
			DeployedAt: now + rt.DeployDelay,
			Clusters:   infos,
			Rank:       rank,
			QueueOf:    queueOf,
		}
	}

	// Fallback: the coordinator is unreachable (or has never spoken) —
	// rank locally, exactly the single-node policy, and latch the
	// degradation flag until a fleet deployment applies again.
	if n.fallback.CompareAndSwap(false, true) {
		n.fallbacks.Add(1)
		src := "fleet-fallback:local"
		n.source.Store(&src)
	}
	n.localPolls.Add(1)
	return core.RankDecision(rt.Ranking, infos, n.cfg.Slots, n.cfg.NumQueues, prev, now, now+rt.DeployDelay)
}

// Source implements core.Ranker: "fleet" while deploying the global
// ranking, "fleet-fallback:local" while degraded.
func (n *Node) Source() string { return *n.source.Load() }

// RankingDegraded implements the Health probe: true while on local
// fallback (sticky until the next fleet deployment applies).
func (n *Node) RankingDegraded() bool { return n.fallback.Load() }

// NodeStats is a point-in-time snapshot of the node's fleet counters.
type NodeStats struct {
	// Published / PublishErrors count snapshot publishes.
	Published     uint64
	PublishErrors uint64
	// FleetPolls counts polls decided by a global deployment;
	// LocalPolls counts polls decided by the local fallback.
	FleetPolls uint64
	LocalPolls uint64
	// FallbackEngagements counts fleet→fallback transitions (a
	// partition engages it once, however long it lasts).
	FallbackEngagements uint64
	// BadDeploys counts coordinator frames rejected (corrupt,
	// mis-sized, out-of-range queues).
	BadDeploys uint64
	// Epoch is the newest global epoch seen (0 before any).
	Epoch uint64
}

// Stats snapshots the node's counters, from any goroutine.
func (n *Node) Stats() NodeStats {
	s := NodeStats{
		Published:           n.published.Load(),
		PublishErrors:       n.publishErrors.Load(),
		FleetPolls:          n.fleetDeploys.Load(),
		LocalPolls:          n.localPolls.Load(),
		FallbackEngagements: n.fallbacks.Load(),
		BadDeploys:          n.badDeploys.Load(),
	}
	n.mu.Lock()
	if n.deploy != nil {
		s.Epoch = n.deploy.Epoch
	}
	n.mu.Unlock()
	return s
}
