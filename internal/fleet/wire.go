// Package fleet runs ACC-Turbo at many vantage points with one global
// ranking (ROADMAP item 1). Each node's control loop — unchanged except
// for the core.Ranker seam — publishes its per-window cluster snapshot
// to a coordinator; the coordinator merges the snapshots slot-wise
// (cluster.MergeSnapshots) and broadcasts one cluster→queue mapping
// back, so an aggregate whose sources are spread across nodes is ranked
// by its *fleet-wide* rate, which is the case single-node clustering
// provably misranks. A node cut off from the coordinator falls back to
// ranking its own snapshot locally (never to undefended FIFO) and
// reports the degradation through Health until fleet deploys resume.
//
// The layers, bottom up:
//
//   - wire.go: the framed message codec. Length-prefixed, CRC-checked,
//     versioned — TCP-shaped, so the in-process transports used for
//     deterministic simulation can be swapped for a socket later
//     without touching the codec.
//   - transport.go: the Transport seam with two backends — SimTransport
//     (eventsim-scheduled, deterministic, partitionable) and
//     ChanTransport (goroutine dispatcher for real-time fleets).
//   - coordinator.go: merges the latest snapshot from every node and
//     broadcasts the global ranking, epoch-stamped.
//   - node.go: the core.Ranker that publishes snapshots, applies fleet
//     deployments, and degrades to local ranking past a staleness
//     bound — PR 5's fail-open machinery generalized to "coordinator
//     unreachable".
package fleet

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"accturbo/internal/cluster"
	"accturbo/internal/eventsim"
)

// Frame layout, little-endian throughout:
//
//	"ACCFLEET" | version u16 | type u8 | payloadLen u32 | payload | crc32 u32
//
// The CRC (IEEE) covers magic through payload, so a flipped type or
// length byte is caught, not just payload corruption. payloadLen makes
// the format self-delimiting on a byte stream: ReadFrame/WriteFrame
// speak it over any io.Reader/Writer, which is what keeps the framing
// TCP-shaped while the current backends move whole frames in process.
const (
	wireMagic   = "ACCFLEET"
	wireVersion = 1

	// frameOverhead is every byte that isn't payload.
	frameOverhead = len(wireMagic) + 2 + 1 + 4 + 4

	// maxFramePayload bounds what ReadFrame will buffer: generous for
	// any real snapshot (a 4096-slot snapshot with 16 features is under
	// 1 MiB) while refusing a corrupt length prefix asking for 4 GiB.
	maxFramePayload = 16 << 20
)

// Message types.
const (
	// MsgSnapshot is a node→coordinator cluster snapshot.
	MsgSnapshot uint8 = 1
	// MsgDeploy is a coordinator→node global ranking deployment.
	MsgDeploy uint8 = 2
	// MsgHello is the first frame on a node→coordinator TCP connection:
	// it names the node id the connection speaks for (the handshake the
	// in-process transports get implicitly from their registration maps).
	MsgHello uint8 = 3
	// MsgHeartbeat is the idle-link liveness frame, sent in both
	// directions by the TCP transport; it carries the sender's node id
	// (0 for the coordinator) and feeds the receiver's last-seen clock.
	MsgHeartbeat uint8 = 4
)

// Snapshot is one node's per-window cluster view, as published to the
// coordinator each poll.
type Snapshot struct {
	// Node identifies the publishing vantage point.
	Node uint32
	// Seq increases by one per publish from this node; the coordinator
	// drops reordered duplicates.
	Seq uint64
	// At is the node-local poll time the snapshot was taken.
	At eventsim.Time
	// Infos is the polled (and reset) window snapshot — slot-aligned
	// across nodes when every node runs the same SliceInit tiling.
	Infos []cluster.Info
}

// Deploy is the coordinator's broadcast: one global cluster→queue
// mapping for every node.
type Deploy struct {
	// Epoch increases by one per broadcast; nodes apply only newer
	// epochs, so a delayed duplicate cannot roll a mapping back.
	Epoch uint64
	// At is the coordinator-local time the ranking was computed.
	At eventsim.Time
	// QueueOf maps cluster slot → priority queue, len = the fleet's
	// slot count.
	QueueOf []int
	// Rank is the merged rank metric per slot that produced QueueOf,
	// carried for node-side interpretability (Decision.Rank).
	Rank []float64
}

// enc is a minimal append-only little-endian encoder (the same idiom as
// the cluster and core codecs; private to each package by design — the
// codec is the format contract, not a shared utility).
type enc struct{ b []byte }

func (e *enc) u8(v uint8)    { e.b = append(e.b, v) }
func (e *enc) u16(v uint16)  { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32)  { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) raw(b []byte)  { e.b = append(e.b, b...) }
func (e *enc) str(s string)  { e.b = append(e.b, s...) }

// dec is the matching decoder; the first short read latches err.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("fleet: frame truncated at byte %d", d.off)
	}
}

func (d *dec) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u16() uint16 {
	if d.err != nil || d.off+2 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

// frame wraps a typed payload in the container: magic, version, type,
// length, payload, CRC over everything before the CRC.
func frame(msgType uint8, payload []byte) []byte {
	var e enc
	e.b = make([]byte, 0, frameOverhead+len(payload))
	e.str(wireMagic)
	e.u16(wireVersion)
	e.u8(msgType)
	e.u32(uint32(len(payload)))
	e.raw(payload)
	e.u32(crc32.ChecksumIEEE(e.b))
	return e.b
}

// unframe validates the container and returns (type, payload). The
// payload aliases data; decode before the buffer is reused.
func unframe(data []byte) (uint8, []byte, error) {
	if len(data) < frameOverhead {
		return 0, nil, fmt.Errorf("fleet: frame of %d bytes is shorter than the %d-byte envelope", len(data), frameOverhead)
	}
	if string(data[:len(wireMagic)]) != wireMagic {
		return 0, nil, fmt.Errorf("fleet: bad magic %q", data[:len(wireMagic)])
	}
	body := data[:len(data)-4]
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return 0, nil, fmt.Errorf("fleet: frame checksum %08x != stored %08x", got, sum)
	}
	d := dec{b: body, off: len(wireMagic)}
	if v := d.u16(); v != wireVersion {
		return 0, nil, fmt.Errorf("fleet: frame version %d, this build speaks %d", v, wireVersion)
	}
	msgType := d.u8()
	plen := int(d.u32())
	if d.err != nil {
		return 0, nil, d.err
	}
	if plen != len(body)-d.off {
		return 0, nil, fmt.Errorf("fleet: payload length %d != %d remaining bytes", plen, len(body)-d.off)
	}
	return msgType, body[d.off:], nil
}

// EncodeSnapshot frames a node snapshot for the wire.
func EncodeSnapshot(s *Snapshot) []byte {
	var e enc
	e.u32(s.Node)
	e.u64(s.Seq)
	e.u64(uint64(s.At))
	e.raw(cluster.MarshalInfos(s.Infos))
	return frame(MsgSnapshot, e.b)
}

// DecodeSnapshot unframes and decodes a MsgSnapshot frame.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	msgType, payload, err := unframe(data)
	if err != nil {
		return nil, err
	}
	if msgType != MsgSnapshot {
		return nil, fmt.Errorf("fleet: message type %d, want snapshot (%d)", msgType, MsgSnapshot)
	}
	d := dec{b: payload}
	s := &Snapshot{
		Node: d.u32(),
		Seq:  d.u64(),
		At:   eventsim.Time(d.u64()),
	}
	if d.err != nil {
		return nil, d.err
	}
	infos, err := cluster.UnmarshalInfos(payload[d.off:])
	if err != nil {
		return nil, err
	}
	s.Infos = infos
	return s, nil
}

// EncodeDeploy frames a global deployment for broadcast.
func EncodeDeploy(dp *Deploy) []byte {
	var e enc
	e.u64(dp.Epoch)
	e.u64(uint64(dp.At))
	e.u32(uint32(len(dp.QueueOf)))
	for _, q := range dp.QueueOf {
		e.u32(uint32(q))
	}
	e.u32(uint32(len(dp.Rank)))
	for _, r := range dp.Rank {
		e.f64(r)
	}
	return frame(MsgDeploy, e.b)
}

// DecodeDeploy unframes and decodes a MsgDeploy frame.
func DecodeDeploy(data []byte) (*Deploy, error) {
	msgType, payload, err := unframe(data)
	if err != nil {
		return nil, err
	}
	if msgType != MsgDeploy {
		return nil, fmt.Errorf("fleet: message type %d, want deploy (%d)", msgType, MsgDeploy)
	}
	d := dec{b: payload}
	dp := &Deploy{
		Epoch: d.u64(),
		At:    eventsim.Time(d.u64()),
	}
	nq := int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	if nq > len(payload)/4 {
		return nil, fmt.Errorf("fleet: deploy claims %d queue slots in %d bytes", nq, len(payload))
	}
	dp.QueueOf = make([]int, nq)
	for i := range dp.QueueOf {
		dp.QueueOf[i] = int(d.u32())
	}
	nr := int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	if nr > len(payload)/8 {
		return nil, fmt.Errorf("fleet: deploy claims %d ranks in %d bytes", nr, len(payload))
	}
	dp.Rank = make([]float64, nr)
	for i := range dp.Rank {
		dp.Rank[i] = d.f64()
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("fleet: %d trailing bytes after deploy", len(payload)-d.off)
	}
	return dp, nil
}

// EncodeHello frames a connection handshake for node id.
func EncodeHello(node uint32) []byte {
	var e enc
	e.u32(node)
	return frame(MsgHello, e.b)
}

// DecodeHello unframes and decodes a MsgHello frame.
func DecodeHello(data []byte) (uint32, error) {
	msgType, payload, err := unframe(data)
	if err != nil {
		return 0, err
	}
	if msgType != MsgHello {
		return 0, fmt.Errorf("fleet: message type %d, want hello (%d)", msgType, MsgHello)
	}
	d := dec{b: payload}
	node := d.u32()
	if d.err != nil {
		return 0, d.err
	}
	if d.off != len(payload) {
		return 0, fmt.Errorf("fleet: %d trailing bytes after hello", len(payload)-d.off)
	}
	return node, nil
}

// EncodeHeartbeat frames a liveness beacon from node id (0 = the
// coordinator).
func EncodeHeartbeat(node uint32) []byte {
	var e enc
	e.u32(node)
	return frame(MsgHeartbeat, e.b)
}

// DecodeHeartbeat unframes and decodes a MsgHeartbeat frame.
func DecodeHeartbeat(data []byte) (uint32, error) {
	msgType, payload, err := unframe(data)
	if err != nil {
		return 0, err
	}
	if msgType != MsgHeartbeat {
		return 0, fmt.Errorf("fleet: message type %d, want heartbeat (%d)", msgType, MsgHeartbeat)
	}
	d := dec{b: payload}
	node := d.u32()
	if d.err != nil {
		return 0, d.err
	}
	return node, nil
}

// VerifyFrame validates a frame's envelope — magic, version, length and
// CRC — and returns its message type without decoding the payload. The
// TCP transport runs it on every received frame before dispatch: a
// corrupt frame resets the connection rather than reaching a handler.
func VerifyFrame(data []byte) (uint8, error) {
	msgType, _, err := unframe(data)
	return msgType, err
}

// WriteFrame writes one already-encoded frame to a byte stream. Frames
// are self-delimiting, so consecutive WriteFrame calls need no other
// separator — this is the socket-backend contract.
func WriteFrame(w io.Writer, frame []byte) error {
	_, err := w.Write(frame)
	return err
}

// readChunk bounds how much ReadFrame allocates ahead of the bytes that
// have actually arrived: a peer claiming a near-maxFramePayload frame
// must deliver each chunk before the next one is allocated, so a
// hostile length prefix alone cannot make the reader commit megabytes.
const readChunk = 64 << 10

// ReadFrame reads exactly one frame from a byte stream: envelope first
// (fixed size up to the length field), then the payload and CRC. The
// returned bytes pass straight to DecodeSnapshot/DecodeDeploy. io.EOF
// at a frame boundary is returned as-is; a partial frame is an
// ErrUnexpectedEOF.
//
// The envelope is validated before any payload allocation: bad magic, a
// foreign version, and a payload length over maxFramePayload are all
// rejected from the 15 header bytes alone, and the payload buffer then
// grows readChunk at a time as bytes arrive — a corrupted or hostile
// length prefix cannot OOM the reader.
func ReadFrame(r io.Reader) ([]byte, error) {
	head := make([]byte, len(wireMagic)+2+1+4)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, err
	}
	if string(head[:len(wireMagic)]) != wireMagic {
		return nil, fmt.Errorf("fleet: bad magic %q on stream", head[:len(wireMagic)])
	}
	if v := binary.LittleEndian.Uint16(head[len(wireMagic):]); v != wireVersion {
		return nil, fmt.Errorf("fleet: stream speaks frame version %d, this build speaks %d", v, wireVersion)
	}
	plen := int(binary.LittleEndian.Uint32(head[len(head)-4:]))
	if plen > maxFramePayload {
		return nil, fmt.Errorf("fleet: frame payload %d exceeds the %d limit", plen, maxFramePayload)
	}
	buf := append(make([]byte, 0, len(head)+min(plen+4, readChunk)), head...)
	for remaining := plen + 4; remaining > 0; {
		n := min(remaining, readChunk)
		off := len(buf)
		buf = append(buf, make([]byte, n)...)
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		remaining -= n
	}
	return buf, nil
}
