package fleet

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"accturbo/internal/faults"
)

// ChaosProxy is the socket-level fault injector for the TCP transport:
// a TCP relay that sits between nodes and the coordinator and mangles
// the byte stream the way a bad middlebox would — injected stalls,
// single-byte corruption, mid-frame RSTs, and hard partitions. It is
// the transport-layer sibling of internal/faults: every fault decision
// is drawn from seeded splitmix64 streams keyed to cumulative BYTE
// OFFSETS within each connection direction, not to read() chunk
// boundaries, so the schedule of faults is a pure function of
// (seed, connection index, direction) even though TCP segmentation is
// not reproducible. ChaosSpec.Plan renders that schedule without
// opening a socket, which is what the CI determinism gate diffs.
//
// Note the one nondeterminism that remains: connection indices are
// assigned in accept order, so when several nodes race to connect, the
// mapping from node to fault schedule can differ between runs. Tests
// that need a fixed mapping connect one node at a time.
type ChaosSpec struct {
	// Seed drives every stream; same seed, same spec → same schedules.
	Seed uint64
	// CorruptEvery, when > 0, XORs one byte with a nonzero mask at
	// offsets spaced ~CorruptEvery bytes apart (uniform in
	// [1, 2*CorruptEvery]).
	CorruptEvery int
	// ResetEvery, when > 0, forwards the stream up to an offset spaced
	// ~ResetEvery bytes apart and then hard-resets the connection
	// (SO_LINGER 0, so the far side sees an RST mid-frame).
	ResetEvery int
	// DelayEvery/DelayFor, when > 0, stall the relay for DelayFor at
	// offsets spaced ~DelayEvery bytes apart, modeling bufferbloat and
	// stalled middleboxes.
	DelayEvery int
	DelayFor   time.Duration
}

// Stream-seed labels: one per (direction, event-class) so each draw
// sequence is independent of chunk interleaving and of the other
// classes.
const (
	chaosDirC2S = 0
	chaosDirS2C = 1

	chaosClassCorrupt = 1
	chaosClassMask    = 2
	chaosClassReset   = 3
	chaosClassDelay   = 4
)

func chaosStreamSeed(seed uint64, conn uint64, dir, class uint64) uint64 {
	return faults.DeriveSeed(faults.DeriveSeed(seed, conn*2+dir), class)
}

// chaosGap draws the next inter-event gap: uniform in [1, 2*mean], so
// the mean spacing is ~mean bytes and a gap is never zero.
func chaosGap(rng *faults.Rand, mean int) uint64 {
	return 1 + rng.Next()%uint64(2*mean)
}

// chaosStream holds the per-direction fault schedule state for one
// relayed connection.
type chaosStream struct {
	spec   ChaosSpec
	offset uint64

	corruptRNG *faults.Rand
	maskRNG    *faults.Rand
	resetRNG   *faults.Rand
	delayRNG   *faults.Rand

	nextCorrupt uint64
	nextReset   uint64
	nextDelay   uint64
}

func newChaosStream(spec ChaosSpec, conn uint64, dir uint64) *chaosStream {
	s := &chaosStream{
		spec:       spec,
		corruptRNG: faults.NewRand(chaosStreamSeed(spec.Seed, conn, dir, chaosClassCorrupt)),
		maskRNG:    faults.NewRand(chaosStreamSeed(spec.Seed, conn, dir, chaosClassMask)),
		resetRNG:   faults.NewRand(chaosStreamSeed(spec.Seed, conn, dir, chaosClassReset)),
		delayRNG:   faults.NewRand(chaosStreamSeed(spec.Seed, conn, dir, chaosClassDelay)),
	}
	if spec.CorruptEvery > 0 {
		s.nextCorrupt = chaosGap(s.corruptRNG, spec.CorruptEvery)
	}
	if spec.ResetEvery > 0 {
		s.nextReset = chaosGap(s.resetRNG, spec.ResetEvery)
	}
	if spec.DelayEvery > 0 {
		s.nextDelay = chaosGap(s.delayRNG, spec.DelayEvery)
	}
	return s
}

// mask draws the XOR mask for one corruption; never zero, so a corrupt
// event always changes the byte (and therefore always breaks the CRC).
func (s *chaosStream) mask() byte {
	m := byte(s.maskRNG.Next())
	if m == 0 {
		m = 0xff
	}
	return m
}

// process applies the schedule to one chunk in place and returns how
// many bytes to forward, whether to reset the connection afterwards,
// and how long to stall first. Events trigger when the stream's
// cumulative offset crosses their scheduled offset, so chunk sizes
// never shift the schedule.
func (s *chaosStream) process(chunk []byte, counters *ChaosStats) (forward int, reset bool, stall time.Duration) {
	end := s.offset + uint64(len(chunk))
	if s.spec.DelayEvery > 0 && s.nextDelay < end {
		stall = s.spec.DelayFor
		s.nextDelay += chaosGap(s.delayRNG, s.spec.DelayEvery)
		atomic.AddUint64(&counters.DelaysInjected, 1)
	}
	if s.spec.CorruptEvery > 0 {
		for s.nextCorrupt < end {
			if s.nextCorrupt >= s.offset {
				chunk[s.nextCorrupt-s.offset] ^= s.mask()
				atomic.AddUint64(&counters.BytesCorrupted, 1)
			}
			s.nextCorrupt += chaosGap(s.corruptRNG, s.spec.CorruptEvery)
		}
	}
	forward = len(chunk)
	if s.spec.ResetEvery > 0 && s.nextReset < end {
		// Forward the prefix so the far side is left mid-frame, then RST.
		if s.nextReset > s.offset {
			forward = int(s.nextReset - s.offset)
		} else {
			forward = 0
		}
		reset = true
		s.nextReset += chaosGap(s.resetRNG, s.spec.ResetEvery)
		atomic.AddUint64(&counters.ResetsInjected, 1)
	}
	s.offset += uint64(forward)
	atomic.AddUint64(&counters.BytesForwarded, uint64(forward))
	return forward, reset, stall
}

// ChaosStats counts injected faults and relayed traffic across all
// connections of one proxy.
type ChaosStats struct {
	Connections    uint64
	BytesForwarded uint64
	BytesCorrupted uint64
	ResetsInjected uint64
	DelaysInjected uint64
	// PartitionRefused counts connections rejected while partitioned.
	PartitionRefused uint64
}

// ChaosProxy relays TCP connections from its listen address to a
// target address, applying a ChaosSpec's faults per direction.
type ChaosProxy struct {
	spec   ChaosSpec
	target string
	ln     net.Listener

	mu          sync.Mutex
	closed      bool
	partitioned bool
	conns       map[*chaosConn]struct{}
	connIndex   uint64
	wg          sync.WaitGroup

	stats ChaosStats
}

type chaosConn struct {
	client, server net.Conn
	once           sync.Once
}

// abort hard-closes both legs with SO_LINGER 0 so the endpoints see an
// RST, not a tidy FIN — the point is to exercise the transport's reset
// path, not its graceful-close path.
func (c *chaosConn) abort() {
	c.once.Do(func() {
		for _, conn := range []net.Conn{c.client, c.server} {
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
			conn.Close()
		}
	})
}

// NewChaosProxy listens on listenAddr (":0" picks a port) and relays
// each accepted connection to target under the spec's faults.
func NewChaosProxy(listenAddr, target string, spec ChaosSpec) (*ChaosProxy, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("fleet: chaos proxy listen: %w", err)
	}
	p := &ChaosProxy{
		spec:   spec,
		target: target,
		ln:     ln,
		conns:  make(map[*chaosConn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — what nodes should dial.
func (p *ChaosProxy) Addr() string { return p.ln.Addr().String() }

func (p *ChaosProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed || p.partitioned {
			refused := p.partitioned && !p.closed
			p.mu.Unlock()
			if refused {
				atomic.AddUint64(&p.stats.PartitionRefused, 1)
			}
			client.Close()
			continue
		}
		idx := p.connIndex
		p.connIndex++
		p.mu.Unlock()

		server, err := net.DialTimeout("tcp", p.target, 2*time.Second)
		if err != nil {
			client.Close()
			continue
		}
		cc := &chaosConn{client: client, server: server}
		p.mu.Lock()
		if p.closed || p.partitioned {
			p.mu.Unlock()
			cc.abort()
			continue
		}
		p.conns[cc] = struct{}{}
		p.mu.Unlock()
		atomic.AddUint64(&p.stats.Connections, 1)

		p.wg.Add(2)
		go p.pump(cc, idx, chaosDirC2S)
		go p.pump(cc, idx, chaosDirS2C)
	}
}

// pump relays one direction of one connection through its fault
// schedule. Either direction injecting a reset aborts the whole
// connection (an RST is connection-scoped).
func (p *ChaosProxy) pump(cc *chaosConn, idx uint64, dir uint64) {
	defer p.wg.Done()
	defer func() {
		cc.abort()
		p.mu.Lock()
		delete(p.conns, cc)
		p.mu.Unlock()
	}()
	src, dst := cc.client, cc.server
	if dir == chaosDirS2C {
		src, dst = cc.server, cc.client
	}
	stream := newChaosStream(p.spec, idx, dir)
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			forward, reset, stall := stream.process(buf[:n], &p.stats)
			if stall > 0 {
				time.Sleep(stall)
			}
			if forward > 0 {
				if _, werr := dst.Write(buf[:forward]); werr != nil {
					return
				}
			}
			if reset {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// SetPartition opens (true) or heals (false) a hard partition: while
// partitioned, live connections are reset and new ones refused, so
// every node behind the proxy sees the coordinator vanish.
func (p *ChaosProxy) SetPartition(on bool) {
	p.mu.Lock()
	p.partitioned = on
	var conns []*chaosConn
	if on {
		for cc := range p.conns {
			conns = append(conns, cc)
		}
	}
	p.mu.Unlock()
	for _, cc := range conns {
		cc.abort()
	}
}

// Stats snapshots the proxy's counters.
func (p *ChaosProxy) Stats() ChaosStats {
	return ChaosStats{
		Connections:      atomic.LoadUint64(&p.stats.Connections),
		BytesForwarded:   atomic.LoadUint64(&p.stats.BytesForwarded),
		BytesCorrupted:   atomic.LoadUint64(&p.stats.BytesCorrupted),
		ResetsInjected:   atomic.LoadUint64(&p.stats.ResetsInjected),
		DelaysInjected:   atomic.LoadUint64(&p.stats.DelaysInjected),
		PartitionRefused: atomic.LoadUint64(&p.stats.PartitionRefused),
	}
}

// Close stops the proxy, resets every relayed connection, and waits for
// all relay goroutines to exit. Idempotent.
func (p *ChaosProxy) Close() {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	var conns []*chaosConn
	for cc := range p.conns {
		conns = append(conns, cc)
	}
	p.mu.Unlock()
	if !already {
		p.ln.Close()
		for _, cc := range conns {
			cc.abort()
		}
	}
	p.wg.Wait()
}

// chaosEvent is one planned fault, for the schedule renderer.
type chaosEvent struct {
	offset uint64
	what   string
}

// Plan renders the fault schedule the spec would apply to the first
// `conns` connections over the first `horizon` bytes of each direction,
// without opening a socket. The output is a pure function of the spec,
// so running it twice and diffing is a determinism gate for the whole
// seeded-chaos machinery (CI does exactly that).
func (spec ChaosSpec) Plan(conns int, horizon uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos plan seed=%d corrupt=%d reset=%d delay=%d/%s horizon=%d conns=%d\n",
		spec.Seed, spec.CorruptEvery, spec.ResetEvery, spec.DelayEvery, spec.DelayFor, horizon, conns)
	dirName := map[uint64]string{chaosDirC2S: "c->s", chaosDirS2C: "s->c"}
	for conn := 0; conn < conns; conn++ {
		for _, dir := range []uint64{chaosDirC2S, chaosDirS2C} {
			s := newChaosStream(spec, uint64(conn), dir)
			var events []chaosEvent
			if spec.CorruptEvery > 0 {
				for off := s.nextCorrupt; off < horizon; {
					events = append(events, chaosEvent{off, fmt.Sprintf("corrupt mask=0x%02x", s.mask())})
					off += chaosGap(s.corruptRNG, spec.CorruptEvery)
				}
			}
			if spec.ResetEvery > 0 {
				for off := s.nextReset; off < horizon; {
					events = append(events, chaosEvent{off, "reset"})
					off += chaosGap(s.resetRNG, spec.ResetEvery)
				}
			}
			if spec.DelayEvery > 0 {
				for off := s.nextDelay; off < horizon; {
					events = append(events, chaosEvent{off, fmt.Sprintf("delay %s", spec.DelayFor)})
					off += chaosGap(s.delayRNG, spec.DelayEvery)
				}
			}
			sort.Slice(events, func(i, j int) bool {
				if events[i].offset != events[j].offset {
					return events[i].offset < events[j].offset
				}
				return events[i].what < events[j].what
			})
			for _, ev := range events {
				fmt.Fprintf(&b, "conn=%d dir=%s @%d %s\n", conn, dirName[dir], ev.offset, ev.what)
			}
		}
	}
	return b.String()
}
