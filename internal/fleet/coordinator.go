package fleet

import (
	"fmt"
	"sort"
	"sync"

	"accturbo/internal/cluster"
	"accturbo/internal/core"
)

// CoordinatorConfig parameterizes the fleet coordinator. Slots and
// NumQueues must match every node's structural config — slot identity
// is the SliceInit tiling, which is what makes slot-wise merging across
// vantage points meaningful (the same invariant the sharded dataplane
// relies on within one process).
type CoordinatorConfig struct {
	// Slots is the fleet-wide cluster slot count (MaxClusters).
	Slots int
	// NumQueues is the strict-priority queue count on every node.
	NumQueues int
	// Ranking is the global ranking algorithm (§5.1) applied to the
	// merged snapshot.
	Ranking core.Ranking
	// Distance recomputes merged cluster sizes (must match the nodes'
	// clustering distance; only the /Size rankings read it).
	Distance cluster.Distance
}

// Coordinator merges the latest snapshot from every node into one
// global cluster view and broadcasts the resulting ranking to the whole
// fleet. It recomputes on every snapshot received: with N nodes polling
// at the same interval that is N broadcasts per interval, each
// superseding the last by epoch — cheap (the merge is O(slots·nodes))
// and it keeps the coordinator stateless beyond "latest snapshot per
// node", so a restarted coordinator is one poll interval away from full
// fidelity.
type Coordinator struct {
	cfg CoordinatorConfig
	tr  Transport

	mu     sync.Mutex
	latest map[uint32]*Snapshot
	epoch  uint64
	// prev is the last broadcast queue map: slots missing from the
	// merged view keep their previous assignment, exactly like the
	// single-node control loop.
	prev []int

	merges   uint64
	rejected uint64
	lastDec  *core.Decision
}

// NewCoordinator builds a coordinator on tr and registers its receive
// handler.
func NewCoordinator(tr Transport, cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Slots <= 0 || cfg.NumQueues <= 0 {
		return nil, fmt.Errorf("fleet: coordinator needs positive Slots (%d) and NumQueues (%d)", cfg.Slots, cfg.NumQueues)
	}
	c := &Coordinator{
		cfg:    cfg,
		tr:     tr,
		latest: make(map[uint32]*Snapshot),
		prev:   make([]int, cfg.Slots),
	}
	tr.HandleCoordinator(c.onFrame)
	return c, nil
}

// onFrame ingests one node snapshot and broadcasts the refreshed global
// ranking. Malformed, mis-sized or stale-sequence snapshots are counted
// and dropped — one bad node must not stall the fleet.
func (c *Coordinator) onFrame(from uint32, frame []byte) {
	snap, err := DecodeSnapshot(frame)
	if err != nil || snap.Node != from || len(snap.Infos) > c.cfg.Slots {
		c.mu.Lock()
		c.rejected++
		c.mu.Unlock()
		return
	}

	c.mu.Lock()
	if prev, ok := c.latest[snap.Node]; ok && snap.Seq <= prev.Seq {
		c.rejected++
		c.mu.Unlock()
		return
	}
	c.latest[snap.Node] = snap

	// Node order is sorted, not map order: the slot-wise merge is
	// commutative, but the broadcast schedule must be identical run to
	// run for the deterministic backend's byte-identical guarantee.
	nodes := make([]uint32, 0, len(c.latest))
	for id := range c.latest {
		nodes = append(nodes, id)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	snaps := make([][]cluster.Info, 0, len(nodes))
	for _, id := range nodes {
		snaps = append(snaps, c.latest[id].Infos)
	}
	merged := cluster.MergeSnapshots(c.cfg.Distance, snaps...)
	dec := core.RankDecision(c.cfg.Ranking, merged, c.cfg.Slots, c.cfg.NumQueues, c.prev, snap.At, snap.At)
	c.prev = dec.QueueOf
	c.epoch++
	c.merges++
	c.lastDec = dec
	out := EncodeDeploy(&Deploy{
		Epoch:   c.epoch,
		At:      snap.At,
		QueueOf: dec.QueueOf,
		Rank:    dec.Rank,
	})
	c.mu.Unlock()

	// Broadcast outside the lock: sends may be dropped (partition,
	// backpressure) and the nodes' staleness bounds handle it.
	for _, id := range nodes {
		_ = c.tr.ToNode(id, out)
	}
}

// Stats is a point-in-time snapshot of the coordinator's counters.
type Stats struct {
	// Nodes is the number of vantage points that have ever reported.
	Nodes int
	// Epoch is the number of global rankings broadcast.
	Epoch uint64
	// Merges counts snapshot ingests that produced a broadcast;
	// Rejected counts frames dropped (corrupt, mis-sized, replayed).
	Merges   uint64
	Rejected uint64
}

// Stats snapshots the coordinator's counters, from any goroutine.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Nodes: len(c.latest), Epoch: c.epoch, Merges: c.merges, Rejected: c.rejected}
}

// LastDecision returns the most recently broadcast global decision (nil
// before the first snapshot arrives). Immutable once published.
func (c *Coordinator) LastDecision() *core.Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastDec
}

// MergedView returns the current slot-wise merged cluster snapshot —
// the coordinator's fleet-wide interpretability view (§10 across
// vantage points).
func (c *Coordinator) MergedView() []cluster.Info {
	c.mu.Lock()
	defer c.mu.Unlock()
	nodes := make([]uint32, 0, len(c.latest))
	for id := range c.latest {
		nodes = append(nodes, id)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	snaps := make([][]cluster.Info, 0, len(nodes))
	for _, id := range nodes {
		snaps = append(snaps, c.latest[id].Infos)
	}
	return cluster.MergeSnapshots(c.cfg.Distance, snaps...)
}
