package fleet

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"sync"
	"testing"
	"time"

	"accturbo/internal/cluster"
	"accturbo/internal/core"
	"accturbo/internal/eventsim"
)

func testInfos() []cluster.Info {
	return []cluster.Info{
		{
			ID: 0, Active: true,
			Ranges:             []cluster.Range{{Min: 0, Max: 63}, {Min: 5, Max: 9}},
			NominalCardinality: []int{0, 0},
			Packets:            12, Bytes: 1200, TotalPackets: 40, Benign: 10, Malicious: 2,
			Size: 67,
		},
		{
			ID: 1, Active: true,
			Ranges:             []cluster.Range{{Min: 64, Max: 127}, {Min: 0, Max: 65535}},
			NominalCardinality: []int{0, 3},
			Packets:            99, Bytes: 99000, TotalPackets: 990,
			Size: 65601,
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	in := &Snapshot{Node: 7, Seq: 42, At: 1_500_000_000, Infos: testInfos()}
	got, err := DecodeSnapshot(EncodeSnapshot(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, in)
	}
	// Empty snapshots (idle node) must survive too.
	empty := &Snapshot{Node: 1, Seq: 1, At: 5}
	got, err = DecodeSnapshot(EncodeSnapshot(empty))
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if got.Node != 1 || got.Seq != 1 || len(got.Infos) != 0 {
		t.Fatalf("empty round trip: %+v", got)
	}
}

func TestDeployRoundTrip(t *testing.T) {
	in := &Deploy{
		Epoch:   9,
		At:      2_250_000_000,
		QueueOf: []int{0, 3, 1, 7},
		Rank:    []float64{0, 1.5, -2.25, 99000},
	}
	got, err := DecodeDeploy(EncodeDeploy(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, in)
	}
}

// TestWireRejectsCorruption flips every byte of both message kinds and
// truncates at every length: the CRC (or a structural check) must catch
// all of it — silent acceptance of a corrupt frame is the one failure a
// distributed defense cannot have.
func TestWireRejectsCorruption(t *testing.T) {
	frames := map[string][]byte{
		"snapshot": EncodeSnapshot(&Snapshot{Node: 3, Seq: 8, At: 77, Infos: testInfos()}),
		"deploy":   EncodeDeploy(&Deploy{Epoch: 2, At: 5, QueueOf: []int{1, 0}, Rank: []float64{3, 4}}),
	}
	decode := func(name string, data []byte) error {
		if name == "snapshot" {
			_, err := DecodeSnapshot(data)
			return err
		}
		_, err := DecodeDeploy(data)
		return err
	}
	for name, frame := range frames {
		if err := decode(name, frame); err != nil {
			t.Fatalf("%s: pristine frame rejected: %v", name, err)
		}
		for i := range frame {
			bad := append([]byte(nil), frame...)
			bad[i] ^= 0x40
			if decode(name, bad) == nil {
				t.Fatalf("%s: byte %d flipped, frame still accepted", name, i)
			}
		}
		for n := 0; n < len(frame); n++ {
			if decode(name, frame[:n]) == nil {
				t.Fatalf("%s: truncation to %d bytes accepted", name, n)
			}
		}
		if decode(name, append(append([]byte(nil), frame...), 0)) == nil {
			t.Fatalf("%s: trailing byte accepted", name)
		}
	}
	// Cross-type confusion: a valid snapshot frame is not a deploy.
	if _, err := DecodeDeploy(frames["snapshot"]); err == nil {
		t.Fatal("snapshot frame accepted as deploy")
	}
	if _, err := DecodeSnapshot(frames["deploy"]); err == nil {
		t.Fatal("deploy frame accepted as snapshot")
	}
}

// TestStreamFraming: frames written back to back on one byte stream
// read back intact — the socket-backend contract.
func TestStreamFraming(t *testing.T) {
	var buf bytes.Buffer
	s := EncodeSnapshot(&Snapshot{Node: 1, Seq: 2, At: 3, Infos: testInfos()})
	d := EncodeDeploy(&Deploy{Epoch: 1, At: 4, QueueOf: []int{0}, Rank: []float64{1}})
	if err := WriteFrame(&buf, s); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, d); err != nil {
		t.Fatal(err)
	}

	got1, err := ReadFrame(&buf)
	if err != nil || !bytes.Equal(got1, s) {
		t.Fatalf("first frame: err=%v equal=%v", err, bytes.Equal(got1, s))
	}
	got2, err := ReadFrame(&buf)
	if err != nil || !bytes.Equal(got2, d) {
		t.Fatalf("second frame: err=%v equal=%v", err, bytes.Equal(got2, d))
	}
	// Clean EOF at a frame boundary.
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("at boundary: err=%v, want io.EOF", err)
	}
	// A partial frame is an unexpected EOF, not a clean one.
	if _, err := ReadFrame(bytes.NewReader(s[:len(s)-3])); err != io.ErrUnexpectedEOF {
		t.Fatalf("partial frame: err=%v, want ErrUnexpectedEOF", err)
	}
}

func simRT() core.RuntimeConfig {
	return core.RuntimeConfig{
		Ranking:      core.ByThroughput,
		PollInterval: 250 * 1000 * 1000,
		DeployDelay:  1000 * 1000,
	}
}

// slotInfos builds a 2-slot snapshot with the given per-slot bytes
// (packets = bytes/100); the slot tiling matches across nodes the way
// SliceInit guarantees in a real fleet.
func slotInfos(bytes0, bytes1 uint64) []cluster.Info {
	mk := func(id int, lo, hi uint32, b uint64) cluster.Info {
		return cluster.Info{
			ID: id, Active: true,
			Ranges:             []cluster.Range{{Min: lo, Max: hi}},
			NominalCardinality: []int{0},
			Packets:            b / 100, Bytes: b, TotalPackets: b / 100,
			Size: float64(hi - lo),
		}
	}
	return []cluster.Info{mk(0, 0, 127, bytes0), mk(1, 128, 255, bytes1)}
}

// TestCoordinatorGlobalRanking is the tentpole property in miniature: a
// distributed aggregate that every node's local view misranks is
// correctly demoted by the merged ranking. Each node sees benign 1000 >
// attack 600 locally; fleet-wide the attack is 1200 > 1100.
func TestCoordinatorGlobalRanking(t *testing.T) {
	eng := eventsim.New()
	tr := NewSimTransport(eng, 1000)
	coord, err := NewCoordinator(tr, CoordinatorConfig{
		Slots: 2, NumQueues: 2, Ranking: core.ByThroughput, Distance: cluster.Manhattan,
	})
	if err != nil {
		t.Fatal(err)
	}
	deploys := make(map[uint32][]*Deploy)
	for _, id := range []uint32{1, 2} {
		id := id
		tr.HandleNode(id, func(frame []byte) {
			dp, err := DecodeDeploy(frame)
			if err != nil {
				t.Errorf("node %d: bad deploy: %v", id, err)
				return
			}
			deploys[id] = append(deploys[id], dp)
		})
	}

	eng.At(10, func(now eventsim.Time) {
		tr.ToCoordinator(1, EncodeSnapshot(&Snapshot{Node: 1, Seq: 1, At: now, Infos: slotInfos(1000, 600)}))
	})
	eng.At(20, func(now eventsim.Time) {
		tr.ToCoordinator(2, EncodeSnapshot(&Snapshot{Node: 2, Seq: 1, At: now, Infos: slotInfos(100, 600)}))
	})
	eng.Run()

	// The coordinator broadcasts to nodes that have reported: node 1
	// sees epoch 1 (alone) then epoch 2 (merged); node 2 joins at epoch
	// 2.
	if got := deploys[1]; len(got) != 2 || got[0].Epoch != 1 || got[1].Epoch != 2 {
		t.Fatalf("node 1 deploys: %+v, want epochs [1 2]", got)
	}
	if got := deploys[2]; len(got) != 1 || got[0].Epoch != 2 {
		t.Fatalf("node 2 deploys: %+v, want epoch [2]", got)
	}
	final := deploys[1][1]
	// Merged bytes: slot 0 = 1100, slot 1 = 1200 — the distributed
	// attack outranks the biggest single benign aggregate, so it lands
	// in the last (lowest-priority) queue.
	if final.Rank[0] != 1100 || final.Rank[1] != 1200 {
		t.Fatalf("merged ranks %v, want [1100 1200]", final.Rank)
	}
	if !reflect.DeepEqual(final.QueueOf, []int{0, 1}) {
		t.Fatalf("global map %v, want attack slot demoted to queue 1", final.QueueOf)
	}
	// Yet each node's LOCAL view would have demoted the benign slot:
	local := core.RankDecision(core.ByThroughput, slotInfos(1000, 600), 2, 2, []int{0, 0}, 0, 0)
	if !reflect.DeepEqual(local.QueueOf, []int{1, 0}) {
		t.Fatalf("local misranking premise broken: %v", local.QueueOf)
	}

	st := coord.Stats()
	if st.Nodes != 2 || st.Epoch != 2 || st.Merges != 2 || st.Rejected != 0 {
		t.Fatalf("coordinator stats %+v", st)
	}
	mv := coord.MergedView()
	if len(mv) != 2 || mv[0].Bytes != 1100 || mv[1].Bytes != 1200 {
		t.Fatalf("merged view %+v", mv)
	}
}

// TestCoordinatorRejects: corrupt frames, spoofed node IDs, oversized
// snapshots and replayed sequence numbers are counted and dropped
// without disturbing the global state.
func TestCoordinatorRejects(t *testing.T) {
	eng := eventsim.New()
	tr := NewSimTransport(eng, 0)
	coord, err := NewCoordinator(tr, CoordinatorConfig{
		Slots: 2, NumQueues: 2, Ranking: core.ByThroughput, Distance: cluster.Manhattan,
	})
	if err != nil {
		t.Fatal(err)
	}
	good := EncodeSnapshot(&Snapshot{Node: 1, Seq: 5, At: 1, Infos: slotInfos(10, 20)})
	corrupt := append([]byte(nil), good...)
	corrupt[len(corrupt)-1] ^= 0xff

	eng.At(1, func(now eventsim.Time) {
		tr.ToCoordinator(1, good)                     // accepted
		tr.ToCoordinator(1, corrupt)                  // CRC failure
		tr.ToCoordinator(9, good)                     // claims node 1, sent by node 9
		tr.ToCoordinator(1, good)                     // replay: seq 5 again
		tr.ToCoordinator(1, EncodeSnapshot(&Snapshot{ // 3 infos > 2 slots
			Node: 1, Seq: 6, At: now,
			Infos: append(slotInfos(1, 2), cluster.Info{ID: 2, Active: true, Ranges: []cluster.Range{{}}, NominalCardinality: []int{0}}),
		}))
	})
	eng.Run()

	st := coord.Stats()
	if st.Merges != 1 || st.Rejected != 4 {
		t.Fatalf("stats %+v, want 1 merge and 4 rejections", st)
	}
}

// TestNodeFallbackAndRecovery drives a fleet node through the full
// partition arc: fleet ranking while connected, sticky local fallback
// while partitioned (never FIFO — the decision still demotes by the
// local view), and recovery to fleet on heal.
func TestNodeFallbackAndRecovery(t *testing.T) {
	eng := eventsim.New()
	tr := NewSimTransport(eng, 1000)
	if _, err := NewCoordinator(tr, CoordinatorConfig{
		Slots: 2, NumQueues: 2, Ranking: core.ByThroughput, Distance: cluster.Manhattan,
	}); err != nil {
		t.Fatal(err)
	}
	rt := simRT()
	node, err := NewNode(1, tr, eng.Now, NodeConfig{Slots: 2, NumQueues: 2, StaleAfter: 3 * rt.PollInterval})
	if err != nil {
		t.Fatal(err)
	}

	if node.Source() != "fleet-fallback:local" || !node.RankingDegraded() {
		t.Fatalf("before first deploy: source=%q degraded=%v", node.Source(), node.RankingDegraded())
	}

	type obs struct {
		source   string
		degraded bool
		queueOf  []int
	}
	var seen []obs
	poll := func(infos []cluster.Info) func(eventsim.Time) {
		return func(now eventsim.Time) {
			dec := node.Rank(now, infos, []int{0, 0}, rt)
			if dec == nil {
				t.Errorf("t=%d: nil decision", now)
				return
			}
			seen = append(seen, obs{node.Source(), node.RankingDegraded(), dec.QueueOf})
		}
	}
	step := rt.PollInterval

	// Poll 0: nothing heard yet -> local fallback. Its snapshot reaches
	// the coordinator, whose deploy arrives 2ms later.
	eng.At(0*step, poll(slotInfos(1000, 600)))
	// Poll 1: fleet deploy fresh -> fleet ranking.
	eng.At(1*step, poll(slotInfos(1000, 600)))
	// Partition just after poll 1's publish is delivered.
	eng.At(1*step+5000, func(eventsim.Time) { tr.SetUp(false) })
	// Polls 2-4: last deploy ages past StaleAfter by poll 5.
	eng.At(2*step, poll(slotInfos(1000, 600)))
	eng.At(3*step, poll(slotInfos(1000, 600)))
	eng.At(4*step, poll(slotInfos(1000, 600)))
	eng.At(5*step, poll(slotInfos(1000, 600)))
	// Heal; poll 6 publishes, poll 7 sees the fresh deploy.
	eng.At(6*step-5000, func(eventsim.Time) { tr.SetUp(true) })
	eng.At(6*step, poll(slotInfos(1000, 600)))
	eng.At(7*step, poll(slotInfos(1000, 600)))
	eng.Run()

	wantSources := []string{
		"fleet-fallback:local", // 0: nothing heard yet
		"fleet",                // 1
		"fleet",                // 2: deploy 1 poll old, within bound
		"fleet",                // 3
		"fleet",                // 4: exactly at the 3-poll bound
		"fleet-fallback:local", // 5: stale -> fallback
		"fleet-fallback:local", // 6: still stale (deploy lands after this poll)
		"fleet",                // 7: recovered
	}
	if len(seen) != len(wantSources) {
		t.Fatalf("saw %d polls, want %d", len(seen), len(wantSources))
	}
	for i, want := range wantSources {
		if seen[i].source != want {
			t.Fatalf("poll %d: source %q, want %q (all: %+v)", i, seen[i].source, want, seen)
		}
		if wantDeg := want != "fleet"; seen[i].degraded != wantDeg {
			t.Fatalf("poll %d: degraded=%v, want %v", i, seen[i].degraded, wantDeg)
		}
		// Never FIFO: even degraded polls demote a slot. With one node
		// the fleet and local rankings agree: benign slot 0 (1000) is
		// the bigger aggregate, so it is the one demoted.
		if !reflect.DeepEqual(seen[i].queueOf, []int{1, 0}) {
			t.Fatalf("poll %d: queue map %v, want [1 0]", i, seen[i].queueOf)
		}
	}

	st := node.Stats()
	if st.FallbackEngagements != 1 {
		t.Fatalf("fallback engagements %d, want 1 (initial state does not count)", st.FallbackEngagements)
	}
	if st.FleetPolls != 5 || st.LocalPolls != 3 {
		t.Fatalf("fleet/local polls %d/%d, want 5/3", st.FleetPolls, st.LocalPolls)
	}
	if st.PublishErrors != 0 {
		t.Fatalf("publish errors %d (SimTransport drops silently)", st.PublishErrors)
	}
	if st.BadDeploys != 0 || st.Epoch == 0 {
		t.Fatalf("bad deploys %d, epoch %d", st.BadDeploys, st.Epoch)
	}
}

// TestNodeRejectsBadDeploys: mis-sized or out-of-range queue maps from
// a misconfigured coordinator never apply.
func TestNodeRejectsBadDeploys(t *testing.T) {
	eng := eventsim.New()
	tr := NewSimTransport(eng, 0)
	node, err := NewNode(1, tr, eng.Now, NodeConfig{Slots: 2, NumQueues: 2, StaleAfter: 1000})
	if err != nil {
		t.Fatal(err)
	}
	eng.At(1, func(now eventsim.Time) {
		tr.ToNode(1, EncodeDeploy(&Deploy{Epoch: 1, At: now, QueueOf: []int{0, 1, 0}, Rank: []float64{0, 0, 0}})) // 3 slots
		tr.ToNode(1, EncodeDeploy(&Deploy{Epoch: 2, At: now, QueueOf: []int{0, 9}, Rank: []float64{0, 0}}))       // queue 9 of 2
		bad := EncodeDeploy(&Deploy{Epoch: 3, At: now, QueueOf: []int{0, 1}, Rank: []float64{0, 0}})
		bad[len(bad)-2] ^= 1 // CRC breakage
		tr.ToNode(1, bad)
	})
	eng.Run()
	st := node.Stats()
	if st.BadDeploys != 3 || st.Epoch != 0 {
		t.Fatalf("stats %+v, want 3 bad deploys and no applied epoch", st)
	}
	if !node.RankingDegraded() {
		t.Fatal("node applied a rejected deploy")
	}
}

// TestChanTransportDelivers exercises the real-time backend end to end:
// snapshots flow to the coordinator, deploys flow back, counters move.
func TestChanTransportDelivers(t *testing.T) {
	tr := NewChanTransport(16)
	defer tr.Close()
	coord, err := NewCoordinator(tr, CoordinatorConfig{
		Slots: 2, NumQueues: 2, Ranking: core.ByThroughput, Distance: cluster.Manhattan,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan *Deploy, 1)
	tr.HandleNode(1, func(frame []byte) {
		if dp, err := DecodeDeploy(frame); err == nil {
			select {
			case got <- dp:
			default:
			}
		}
	})
	if err := tr.ToCoordinator(1, EncodeSnapshot(&Snapshot{Node: 1, Seq: 1, At: 1, Infos: slotInfos(10, 20)})); err != nil {
		t.Fatal(err)
	}
	select {
	case dp := <-got:
		if dp.Epoch != 1 || !reflect.DeepEqual(dp.QueueOf, []int{0, 1}) {
			t.Fatalf("deploy %+v", dp)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no deploy delivered within 5s")
	}
	if st := coord.Stats(); st.Merges != 1 {
		t.Fatalf("coordinator stats %+v", st)
	}
}

// TestChanTransportCloseWhilePublish is the close-while-fleet-publish
// race under -race: publishers hammering the transport while it closes
// must see either success or ErrClosed — never a panic, never a send on
// a closed channel.
func TestChanTransportCloseWhilePublish(t *testing.T) {
	for round := 0; round < 20; round++ {
		tr := NewChanTransport(4)
		tr.HandleCoordinator(func(uint32, []byte) {})
		frame := EncodeSnapshot(&Snapshot{Node: 1, Seq: 1, At: 1, Infos: slotInfos(1, 2)})

		var wg sync.WaitGroup
		start := make(chan struct{})
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 100; i++ {
					if err := tr.ToCoordinator(1, frame); err != nil {
						if !errors.Is(err, ErrClosed) {
							t.Errorf("unexpected send error: %v", err)
						}
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			tr.Close()
		}()
		close(start)
		wg.Wait()
		tr.Close() // idempotent
		if err := tr.ToCoordinator(1, frame); !errors.Is(err, ErrClosed) {
			t.Fatalf("send after close: %v, want ErrClosed", err)
		}
	}
}

// TestSimTransportPartitionCounters: partition drops are counted at
// send time, deliveries at handler time.
func TestSimTransportPartitionCounters(t *testing.T) {
	eng := eventsim.New()
	tr := NewSimTransport(eng, 10)
	var coordGot int
	tr.HandleCoordinator(func(uint32, []byte) { coordGot++ })
	frame := EncodeSnapshot(&Snapshot{Node: 1, Seq: 1, At: 0, Infos: nil})

	eng.At(0, func(eventsim.Time) { tr.ToCoordinator(1, frame) })
	eng.At(1, func(eventsim.Time) { tr.SetUp(false) })
	eng.At(2, func(eventsim.Time) { tr.ToCoordinator(1, frame) })
	eng.At(3, func(eventsim.Time) { tr.SetUp(true) })
	eng.At(4, func(eventsim.Time) { tr.ToCoordinator(1, frame) })
	eng.Run()

	if coordGot != 2 || tr.Delivered != 2 || tr.Dropped != 1 {
		t.Fatalf("got=%d delivered=%d dropped=%d, want 2/2/1", coordGot, tr.Delivered, tr.Dropped)
	}
}
