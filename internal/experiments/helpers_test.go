package experiments

import (
	"testing"

	"accturbo/internal/eventsim"
	"accturbo/internal/netsim"
	"accturbo/internal/packet"
)

func TestThresholdFor(t *testing.T) {
	// 80 Mbps of 1000 B packets = 10k pps; over a 5 s window = 50k.
	if got := thresholdFor(80e6, 1000, 5*eventsim.Second); got != 50_000 {
		t.Fatalf("thresholdFor = %d", got)
	}
}

func TestPulseReduction(t *testing.T) {
	// Decades alternate quiet/pulse: quiet at 10 Mbps, pulses at 2.5.
	series := make([]float64, 40)
	for i := range series {
		if (i/10)%2 == 1 {
			series[i] = 2.5e6
		} else {
			series[i] = 10e6
		}
	}
	got := pulseReduction(series, 40*eventsim.Second)
	if got < 70 || got > 80 {
		t.Fatalf("reduction = %v, want ~75", got)
	}
	// No reduction when pulses equal quiet.
	flat := make([]float64, 40)
	for i := range flat {
		flat[i] = 5e6
	}
	if got := pulseReduction(flat, 40*eventsim.Second); got != 0 {
		t.Fatalf("flat series reduction = %v", got)
	}
}

func TestSeriesHelpers(t *testing.T) {
	rec := netsim.NewRecorder(eventsim.Second)
	p := &packet.Packet{
		SrcIP: packet.V4(1, 1, 1, 1), DstIP: packet.V4(2, 2, 2, 2),
		Length: 1000, Protocol: packet.ProtoUDP, FlowID: 3,
	}
	rec.Arrival(0, p)
	rec.Delivered(eventsim.Second/2, p)

	s := shareSeries(rec, 3, 80e3) // 1000 B in 1 s = 8000 bits -> share 0.1
	if len(s.Y) != 1 || s.Y[0] != 0.1 {
		t.Fatalf("shareSeries = %+v", s)
	}
	tot := totalShareSeries(rec, 80e3)
	if tot.Y[0] != 0.1 {
		t.Fatalf("totalShareSeries = %+v", tot)
	}
	th := throughputSeries(rec, packet.Benign, "x")
	if th.Y[0] != 8000.0/1e6 {
		t.Fatalf("throughputSeries = %+v", th)
	}
	dr := dropRateSeries(rec, "d")
	if dr.Name != "d" || dr.Y[0] != 0 {
		t.Fatalf("dropRateSeries = %+v", dr)
	}
}

func TestTurboRunScore(t *testing.T) {
	tr := &turboRun{}
	// Bin 0: benign avg queue 0, malicious avg queue 3 -> win.
	// Bin 1: both average 1 -> tie (loss). Bin 2: only benign -> skip.
	tr.queueSum[0] = []float64{0, 2, 1}
	tr.pktCount[0] = []float64{4, 2, 1}
	tr.queueSum[1] = []float64{9, 3, 0}
	tr.pktCount[1] = []float64{3, 3, 0}
	if got := tr.score(); got != 50 {
		t.Fatalf("score = %v, want 50", got)
	}
	if (&turboRun{}).score() != 0 {
		t.Fatal("empty score should be 0")
	}
}

func TestBufferFor(t *testing.T) {
	if bufferFor(10e6) != 125_000 {
		t.Fatalf("bufferFor(10e6) = %d", bufferFor(10e6))
	}
	if bufferFor(1) != 10_000 {
		t.Fatal("floor not applied")
	}
}

func TestMinMaxOf(t *testing.T) {
	if minOf([]float64{3, 1, 2}) != 1 || maxOf([]float64{3, 1, 2}) != 3 {
		t.Fatal("min/max wrong")
	}
	if minOf(nil) != 0 || maxOf(nil) != 0 {
		t.Fatal("empty min/max should be 0")
	}
}

func TestRenameSeries(t *testing.T) {
	s := renameSeries(Series{Name: "a", Y: []float64{1}}, "b")
	if s.Name != "b" || s.Y[0] != 1 {
		t.Fatalf("renameSeries = %+v", s)
	}
}
