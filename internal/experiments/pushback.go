package experiments

import (
	"accturbo/internal/acc"
	"accturbo/internal/eventsim"
	"accturbo/internal/netsim"
	"accturbo/internal/packet"
	"accturbo/internal/queue"
	"accturbo/internal/traffic"
)

// PushbackExperiment is an extension reproducing the *original* ACC
// paper's pushback result (the mechanism §2's footnote scopes out):
// when the attack also congests its upstream link, local rate-limiting
// at the bottleneck cannot protect benign traffic sharing that
// upstream — pushing the limit to the upstream ingress can.
//
// Topology: two 20 Mbps upstream links into a 10 Mbps core bottleneck;
// 4 Mbps of background enters through each upstream; a 60 Mbps flood
// enters through upstream 1 only.
func PushbackExperiment(opt Options) *Result {
	r := &Result{
		ID:     "pushback",
		Title:  "extension: original-ACC pushback vs local ACC",
		XLabel: "scheme",
		YLabel: "end-to-end benign drops (%)",
	}
	end := 60 * eventsim.Second
	if opt.Quick {
		end = 25 * eventsim.Second
	}

	run := func(withPushback bool) (float64, float64, uint64) {
		const (
			coreRate = 10e6
			upRate   = 20e6
		)
		eng := eventsim.New()
		rec := netsim.NewRecorder(eventsim.Second)
		rec1 := netsim.NewRecorder(eventsim.Second)
		rec2 := netsim.NewRecorder(eventsim.Second)

		red := queue.NewRED(queue.DefaultREDConfig(int(coreRate/8/10), coreRate/8))
		core := netsim.NewPort(eng, red, coreRate, rec)
		agent := acc.Attach(eng, core, red, acc.DefaultConfig())

		u1 := netsim.NewPort(eng, queue.NewFIFO(int(upRate/8/10)), upRate, rec1)
		u2 := netsim.NewPort(eng, queue.NewFIFO(int(upRate/8/10)), upRate, rec2)
		netsim.Chain(eng, u1, core, eventsim.Millisecond)
		netsim.Chain(eng, u2, core, eventsim.Millisecond)

		var pb *acc.Pushback
		if withPushback {
			ups := []*acc.Upstream{acc.NewUpstream("u1", u1), acc.NewUpstream("u2", u2)}
			pb = acc.EnablePushback(eng, agent, ups)
		}

		mkBenign := func(seed int64) traffic.Source {
			return traffic.NewBackground(traffic.BackgroundConfig{
				Rate: 4e6, Start: 0, End: end, Seed: opt.Seed + seed,
			})
		}
		attackSpec := traffic.FlowSpec{
			SrcIP: packet.V4Addr{9, 9, 9, 9}, DstIP: packet.V4Addr{10, 250, 9, 0},
			Protocol: packet.ProtoUDP, SrcPort: 123, DstPort: 80,
			TTL: 54, Size: 500, Label: packet.Malicious, Vector: "flood",
			FlowID: traffic.AggAttack, DstHostBits: 4,
		}
		attack := traffic.NewCBR(end/8, end, 60e6, attackSpec.Factory(opt.Seed+77))

		netsim.Replay(eng, traffic.Merge(mkBenign(1), attack), u1)
		netsim.Replay(eng, mkBenign(2), u2)
		eng.RunUntil(end)

		offered := rec1.ArrivedBenign() + rec2.ArrivedBenign()
		benignLoss := 100 * (1 - float64(rec.DeliveredBenignPkts())/float64(offered))
		offeredM := rec1.ArrivedMalicious() + rec2.ArrivedMalicious()
		attackLoss := 100 * (1 - float64(rec.DeliveredMaliciousPkts())/float64(offeredM))
		var props uint64
		if pb != nil {
			props = pb.Propagations
		}
		return benignLoss, attackLoss, props
	}

	localB, localA, _ := run(false)
	pushB, pushA, props := run(true)
	r.Add(Series{Name: "Local ACC/benign drops", Y: []float64{localB}})
	r.Add(Series{Name: "Pushback ACC/benign drops", Y: []float64{pushB}})
	r.Add(Series{Name: "Local ACC/attack drops", Y: []float64{localA}})
	r.Add(Series{Name: "Pushback ACC/attack drops", Y: []float64{pushA}})
	r.Note("local ACC: %.1f%% end-to-end benign drops (the attack still saturates its upstream link); "+
		"pushback: %.1f%% (limit enforced at the upstream ingress, %d propagations)",
		localB, pushB, props)
	r.Note("attack drops: local %.1f%% vs pushback %.1f%% — equally suppressed, but earlier in the path", localA, pushA)
	return r
}
