package experiments

import (
	"accturbo/internal/eventsim"
	"accturbo/internal/traffic"
)

// Adversarial is an extension experiment quantifying §9's analysis:
// how ACC-Turbo degrades as an attacker (a) randomizes more packet
// features, (b) spreads the attack across many low-rate aggregates,
// (c) mounts the swapping attack against a high-rate similar benign
// aggregate, and (d) imitates the victim's traffic distribution.
func Adversarial(opt Options) *Result {
	r := &Result{
		ID:     "adversarial",
		Title:  "§9 extension: evading and weaponizing ACC-Turbo",
		XLabel: "randomized features",
		YLabel: "drops (%)",
	}
	const link = 10e6
	end := 40 * eventsim.Second
	if opt.Quick {
		end = 15 * eventsim.Second
	}
	attackStart := end / 8
	cfg := hwTurboConfig()

	// (a) packet-level evasion: randomize 0..6 features.
	var xs, benignY, attackY []float64
	for level := 0; level <= 6; level++ {
		ev, err := traffic.Evasion(traffic.EvasionLevel(level), attackStart, end, 6*link, opt.Seed)
		if err != nil {
			panic(err)
		}
		src := traffic.Merge(
			traffic.NewBackground(traffic.BackgroundConfig{Rate: 6e6, Start: 0, End: end, Seed: opt.Seed}),
			ev,
		)
		tr := runTurbo(src, link, end, cfg)
		xs = append(xs, float64(level))
		benignY = append(benignY, tr.rec.BenignDropPercent())
		attackY = append(attackY, tr.rec.MaliciousDropPercent())
	}
	r.Add(Series{Name: "Evasion/benign drops", X: xs, Y: benignY})
	r.Add(Series{Name: "Evasion/attack drops", X: xs, Y: attackY})
	r.Note("packet-level evasion: benign drops rise from %.1f%% (plain flood) to %.1f%% (all features random) "+
		"— full randomization defeats similarity-based inference, as §9.1 concedes", benignY[0], benignY[len(benignY)-1])

	// (b) aggregate-level spread: n well-formed aggregates sharing the
	// flood rate. The paper argues difficulty grows with the cluster
	// count; we sweep n across it.
	clusters := cfg.Clustering.MaxClusters
	var sx, sBenign []float64
	for _, n := range []int{1, clusters / 2, clusters, 2 * clusters, 4 * clusters} {
		if n < 1 {
			continue
		}
		spread, err := traffic.SpreadAttack(n, attackStart, end, 6*link, opt.Seed)
		if err != nil {
			panic(err)
		}
		src := traffic.Merge(
			traffic.NewBackground(traffic.BackgroundConfig{Rate: 6e6, Start: 0, End: end, Seed: opt.Seed}),
			spread,
		)
		tr := runTurbo(src, link, end, cfg)
		sx = append(sx, float64(n))
		sBenign = append(sBenign, tr.rec.BenignDropPercent())
	}
	r.Add(Series{Name: "Spread/benign drops vs aggregates", X: sx, Y: sBenign})
	r.Note("aggregate-level spread: benign drops %.1f%% with 1 attack aggregate -> %.1f%% with %d "+
		"(attacking every cluster simultaneously erodes the defense, §9.1)",
		sBenign[0], sBenign[len(sBenign)-1], int(sx[len(sx)-1]))

	// (c) swapping attack: similar high-rate benign stream + random
	// noise attack.
	benignSrc, attackSrc := traffic.SwappingAttack(0, end, 5e6, 4*link, opt.Seed)
	tr := runTurbo(traffic.Merge(benignSrc, attackSrc), link, end, cfg)
	r.Add(Series{Name: "Swapping/benign drops", Y: []float64{tr.rec.BenignDropPercent()}})
	r.Add(Series{Name: "Swapping/attack drops", Y: []float64{tr.rec.MaliciousDropPercent()}})
	r.Note("swapping attack: benign (high-rate, high-similarity stream) drops %.1f%%, attack %.1f%% — "+
		"the defense deprioritizes the most aggregate-looking traffic, which here is the victim (§9.2)",
		tr.rec.BenignDropPercent(), tr.rec.MaliciousDropPercent())

	// (d) imitation attack: attack drawn from the background's own
	// distribution.
	src := traffic.Merge(
		traffic.NewBackground(traffic.BackgroundConfig{Rate: 6e6, Start: 0, End: end, Seed: opt.Seed}),
		traffic.ImitationAttack(attackStart, end, 6*link, opt.Seed+99),
	)
	tri := runTurbo(src, link, end, cfg)
	r.Add(Series{Name: "Imitation/benign drops", Y: []float64{tri.rec.BenignDropPercent()}})
	r.Add(Series{Name: "Imitation/attack drops", Y: []float64{tri.rec.MaliciousDropPercent()}})
	r.Note("imitation attack: benign drops %.1f%%, attack %.1f%% — indistinguishable distributions defeat "+
		"similarity inference; the paper points to rate-change tests (SPIFFY) as the remedy",
		tri.rec.BenignDropPercent(), tri.rec.MaliciousDropPercent())
	return r
}
