package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"sync/atomic"
	"testing"
)

// TestRunParallelCoversAllIndices checks the pool visits each index
// exactly once at several worker counts, including the sequential and
// worker-surplus edges.
func TestRunParallelCoversAllIndices(t *testing.T) {
	for _, w := range []int{0, 1, 3, 8, 64} {
		var hits [37]atomic.Int32
		RunParallel(Options{Parallel: w}, len(hits), func(i int) {
			hits[i].Add(1)
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("Parallel=%d: index %d ran %d times, want 1", w, i, got)
			}
		}
	}
}

// TestParallelMatchesSequential is the determinism regression test for
// the tentpole guarantee: for a fixed seed, an experiment's rendered
// output and CSV must be byte-identical whether its sweep points run
// sequentially or on 8 workers.
func TestParallelMatchesSequential(t *testing.T) {
	// golden pins the exact bytes of the quick seed-7 outputs, so any
	// change anywhere in the stack that perturbs experiment results —
	// however plausible-looking — fails here instead of silently
	// shifting the reproduced numbers. The telemetry layer is strictly
	// passive accounting; these hashes were captured before it existed
	// and must survive it. Regenerate only for an intentional
	// behavioral change, with:
	//
	//	e.Run(Options{Quick: true, Seed: 7}) → sha256 of Render()/CSV()
	golden := map[string][2]string{
		"fig8": {
			"8e1f273e492171862b8c43e62eb571c682dd0360b89678e1d8e3ab5669789547",
			"08c03c8e8a224dcf250b8d064f8b36b78b3139f446b2809d67fe7ce5a255328b",
		},
	}
	for _, id := range []string{"fig8", "fig10"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			seq := e.Run(Options{Quick: true, Seed: 7})
			par := e.Run(Options{Quick: true, Seed: 7, Parallel: 8})
			if s, p := seq.Render(), par.Render(); s != p {
				t.Errorf("rendered output diverges\n--- sequential ---\n%s\n--- parallel ---\n%s", s, p)
			}
			if s, p := seq.CSV(), par.CSV(); s != p {
				t.Errorf("CSV output diverges\n--- sequential ---\n%s\n--- parallel ---\n%s", s, p)
			}
			want, ok := golden[id]
			if !ok {
				return
			}
			if got := hashOf(seq.Render()); got != want[0] {
				t.Errorf("%s rendered output drifted from golden: got sha256 %s, want %s", id, got, want[0])
			}
			if got := hashOf(seq.CSV()); got != want[1] {
				t.Errorf("%s CSV output drifted from golden: got sha256 %s, want %s", id, got, want[1])
			}
		})
	}
}

func hashOf(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}
