package experiments

import (
	"sync/atomic"
	"testing"
)

// TestRunParallelCoversAllIndices checks the pool visits each index
// exactly once at several worker counts, including the sequential and
// worker-surplus edges.
func TestRunParallelCoversAllIndices(t *testing.T) {
	for _, w := range []int{0, 1, 3, 8, 64} {
		var hits [37]atomic.Int32
		RunParallel(Options{Parallel: w}, len(hits), func(i int) {
			hits[i].Add(1)
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("Parallel=%d: index %d ran %d times, want 1", w, i, got)
			}
		}
	}
}

// TestParallelMatchesSequential is the determinism regression test for
// the tentpole guarantee: for a fixed seed, an experiment's rendered
// output and CSV must be byte-identical whether its sweep points run
// sequentially or on 8 workers.
func TestParallelMatchesSequential(t *testing.T) {
	for _, id := range []string{"fig8", "fig10"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			seq := e.Run(Options{Quick: true, Seed: 7})
			par := e.Run(Options{Quick: true, Seed: 7, Parallel: 8})
			if s, p := seq.Render(), par.Render(); s != p {
				t.Errorf("rendered output diverges\n--- sequential ---\n%s\n--- parallel ---\n%s", s, p)
			}
			if s, p := seq.CSV(), par.CSV(); s != p {
				t.Errorf("CSV output diverges\n--- sequential ---\n%s\n--- parallel ---\n%s", s, p)
			}
		})
	}
}
