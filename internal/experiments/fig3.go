package experiments

import (
	"accturbo/internal/acc"
	"accturbo/internal/eventsim"
	"accturbo/internal/traffic"
)

// Fig3 reproduces the pulse-wave / morphing-attack experiment of §2.2:
// four benign CBR aggregates at about link capacity plus four attack
// pulses (5/15/25/35 s), under FIFO, ACC, and ACC-Turbo, plus the
// speed-vs-accuracy sweep of Fig. 3b (% benign drops vs ACC's K).
func Fig3(opt Options) *Result {
	r := &Result{
		ID:     "fig3",
		Title:  "pulse-wave (morphing) attack",
		XLabel: "time (s)",
		YLabel: "fraction of link bandwidth",
	}
	const link = fig2Link
	const pulseRate = 3 * link
	pulseLen := 5 * eventsim.Second
	until := 50 * eventsim.Second
	newSrc := func() traffic.Source { return traffic.PulseWave(link, pulseRate, pulseLen, true) }

	// (a) FIFO.
	recFIFO := runFIFO(newSrc(), link, until)
	addAggregateShares(r, "FIFO", recFIFO, link)
	r.Note("FIFO: benign drops %.1f%%", recFIFO.BenignDropPercent())

	// (c) ACC with the §2.1 configuration.
	recACC, agent := runACC(newSrc(), link, until, acc.DefaultConfig())
	addAggregateShares(r, "ACC", recACC, link)
	pulsesDefended := 0
	if agent.FirstActivation >= 0 {
		for _, start := range []eventsim.Time{5, 15, 25, 35} {
			if agent.FirstActivation <= start*eventsim.Second {
				pulsesDefended++
			}
		}
	}
	r.Note("ACC: benign drops %.1f%%, first activation t=%.1f s (defends %d of 4 pulses)",
		recACC.BenignDropPercent(), agent.FirstActivation.Seconds(), pulsesDefended)

	// (d) ACC-Turbo.
	tr := runTurbo(newSrc(), link, until, accTurboFig2Config())
	addAggregateShares(r, "ACC-Turbo", tr.rec, link)
	r.Note("ACC-Turbo: benign drops %.1f%% (paper: mitigates all pulses)", tr.rec.BenignDropPercent())

	// (b) speed vs accuracy: benign drops as a function of K.
	ks := []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 1.5, 2}
	if opt.Quick {
		ks = []float64{0.05, 0.5, 2}
	}
	var x, yACC []float64
	for _, k := range ks {
		cfg := acc.DefaultConfig()
		cfg.K = eventsim.FromSeconds(k)
		recK, _ := runACC(newSrc(), link, until, cfg)
		x = append(x, k)
		yACC = append(yACC, recK.BenignDropPercent())
	}
	r.Add(Series{Name: "Fig3b/ACC benign drops vs K", X: x, Y: yACC})
	flat := func(v float64) []float64 {
		out := make([]float64, len(x))
		for i := range out {
			out[i] = v
		}
		return out
	}
	r.Add(Series{Name: "Fig3b/FIFO", X: x, Y: flat(recFIFO.BenignDropPercent())})
	r.Add(Series{Name: "Fig3b/ACC-Turbo", X: x, Y: flat(tr.rec.BenignDropPercent())})
	best := yACC[0]
	for _, v := range yACC {
		if v < best {
			best = v
		}
	}
	r.Note("Fig3b: best ACC configuration still drops %.1f%% of benign traffic (paper: ~20%%); ACC-Turbo %.1f%%",
		best, tr.rec.BenignDropPercent())
	return r
}
