package experiments

import (
	"accturbo/internal/cluster"
	"accturbo/internal/eventsim"
	"accturbo/internal/packet"
	"accturbo/internal/traffic"
)

// Ablations quantifies the design knobs the paper fixes by hardware
// constraints or convention: the control-loop period, the number of
// priority queues, Bloom-filter vs exact nominal sets, slice vs
// packet-seeded initialization, and the packet reordering introduced
// by priority updates (§10).
func Ablations(opt Options) *Result {
	r := &Result{
		ID:     "ablations",
		Title:  "design-knob ablations (extension)",
		XLabel: "x",
		YLabel: "benign drops (%)",
	}
	const link = 10e6
	end := 40 * eventsim.Second
	if opt.Quick {
		end = 15 * eventsim.Second
	}
	attackStart := end / 8
	newSrc := func() traffic.Source {
		return traffic.Variation(traffic.SingleFlow, 6e6, 6*link, attackStart, end, opt.Seed)
	}

	// (a) control-loop period: the reaction-time lever of §7.
	periods := []float64{0.01, 0.05, 0.1, 0.25, 0.5, 1, 2, 5}
	if opt.Quick {
		periods = []float64{0.05, 0.5, 2}
	}
	var px, py []float64
	for _, p := range periods {
		cfg := hwTurboConfig()
		cfg.PollInterval = eventsim.FromSeconds(p)
		cfg.DeployDelay = cfg.PollInterval / 2
		cfg.ReseedInterval = 4 * cfg.PollInterval
		tr := runTurbo(newSrc(), link, end, cfg)
		px = append(px, p)
		py = append(py, tr.rec.BenignDropPercent())
	}
	r.Add(Series{Name: "Poll period (s) vs benign drops", X: px, Y: py})
	r.Note("controller period: benign drops %.1f%% at %.2fs vs %.1f%% at %.0fs — slow control loops "+
		"reopen the pulse-wave window the paper closes", py[0], px[0], py[len(py)-1], px[len(px)-1])

	// (b) priority-queue count at fixed cluster count (8 clusters into
	// 1..8 queues; 1 queue degenerates to FIFO).
	var qx, qy []float64
	for _, q := range []int{1, 2, 4, 8} {
		cfg := hwTurboConfig()
		cfg.Clustering.MaxClusters = 8
		cfg.NumQueues = q
		tr := runTurbo(newSrc(), link, end, cfg)
		qx = append(qx, float64(q))
		qy = append(qy, tr.rec.BenignDropPercent())
	}
	r.Add(Series{Name: "Queues vs benign drops", X: qx, Y: qy})
	r.Note("priority queues: %.1f%% benign drops with 1 queue (=FIFO) vs %.1f%% with 8 — "+
		"finer-grained deprioritization needs queues, not just clusters", qy[0], qy[len(qy)-1])

	// (c) Bloom vs exact nominal sets (the hardware stores admission
	// lists in Bloom filters; the simulator's default is exact).
	for _, bloom := range []bool{false, true} {
		cfg := hwTurboConfig()
		cfg.Clustering.UseBloom = bloom
		tr := runTurbo(newSrc(), link, end, cfg)
		name := "Exact sets"
		if bloom {
			name = "Bloom sets"
		}
		r.Add(Series{Name: name + "/benign drops", Y: []float64{tr.rec.BenignDropPercent()}})
	}

	// (d) slice-init vs packet seeding, single-flow flood.
	for _, slices := range []bool{false, true} {
		cfg := hwTurboConfig()
		cfg.Clustering.SliceInit = slices
		tr := runTurbo(newSrc(), link, end, cfg)
		name := "Packet-seeded"
		if slices {
			name = "Slice-init"
		}
		r.Add(Series{Name: name + "/benign drops", Y: []float64{tr.rec.BenignDropPercent()}})
	}

	// (e) reordering under priority updates (§10): fraction of
	// delivered packets that overtook a same-flow predecessor.
	cfg := hwTurboConfig()
	tr := runTurbo(newSrc(), link, end, cfg)
	totalDelivered := tr.rec.DeliveredBenignPkts() + tr.rec.DeliveredMaliciousPkts()
	reorderPct := 0.0
	if totalDelivered > 0 {
		reorderPct = 100 * float64(tr.rec.Reordered()) / float64(totalDelivered)
	}
	r.Add(Series{Name: "Reordered delivered packets (%)", Y: []float64{reorderPct}})
	r.Note("reordering: %.3f%% of delivered packets overtook a same-flow predecessor "+
		"(the paper argues priority updates only reorder flows that span an update window)", reorderPct)

	// (f) feature-set width: hardware's 4 features vs the simulation's
	// 12 on the same workload.
	for _, wide := range []bool{false, true} {
		cfg := hwTurboConfig()
		name := "4 features (hardware)"
		if wide {
			cfg.Clustering.Features = packet.DefaultSimulationFeatures()
			name = "12 features (simulation)"
		}
		tr := runTurbo(newSrc(), link, end, cfg)
		r.Add(Series{Name: name + "/benign drops", Y: []float64{tr.rec.BenignDropPercent()}})
	}

	// (g) distance normalization: with raw distances, 16-bit port
	// dimensions dominate 8-bit byte dimensions; normalization weighs
	// every feature equally. Scored as clustering purity on the
	// CICDDoS-like day over the full 12-feature set.
	day := defaultDay(opt)
	feats := packet.DefaultSimulationFeatures()
	for _, norm := range []bool{false, true} {
		spec := strategySpec{
			name: "norm",
			mkOnline: func(k int) observerFunc {
				cfg := cluster.Config{
					MaxClusters: k,
					Features:    feats,
					Distance:    cluster.Manhattan,
					Search:      cluster.Fast,
					Normalize:   norm,
				}
				o := cluster.NewOnline(cfg)
				return func(p *packet.Packet) int { return int(o.Observe(p).UID) }
			},
		}
		metrics := runInferenceDay(day, 10, feats, spec)
		var pSum float64
		for _, m := range metrics {
			pSum += m.purity
		}
		name := "Raw distances"
		if norm {
			name = "Normalized distances"
		}
		r.Add(Series{Name: name + "/purity", Y: []float64{pSum / float64(len(metrics))}})
	}

	return r
}
