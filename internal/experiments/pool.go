package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// RunParallel executes task(0..n-1) on opt.Parallel workers (capped at
// n; GOMAXPROCS when negative; sequential when 0 or 1).
//
// Determinism contract: tasks must be independent — each derives any
// randomness from Options.Seed plus its own index and writes only to
// its own result slot. Under that contract the fill order cannot
// change the results, so parallel and sequential runs of an experiment
// produce byte-identical output. Callers assemble series and notes
// strictly after RunParallel returns, in index order.
func RunParallel(opt Options, n int, task func(i int)) {
	if n <= 0 {
		return
	}
	w := opt.Parallel
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				task(i)
			}
		}()
	}
	wg.Wait()
}

// RunGrid executes task over a rows x cols sweep grid, flattening it
// into one RunParallel call so workers stay busy across the whole
// grid rather than per row.
func RunGrid(opt Options, rows, cols int, task func(r, c int)) {
	RunParallel(opt, rows*cols, func(i int) {
		task(i/cols, i%cols)
	})
}
