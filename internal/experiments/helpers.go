package experiments

import (
	"accturbo/internal/acc"
	"accturbo/internal/cluster"
	"accturbo/internal/core"
	"accturbo/internal/eventsim"
	"accturbo/internal/jaqen"
	"accturbo/internal/netsim"
	"accturbo/internal/packet"
	"accturbo/internal/queue"
	"accturbo/internal/traffic"
)

// bufferFor sizes port buffers like the rest of the repo: ~100 ms of
// line rate.
func bufferFor(linkRate float64) int {
	b := int(linkRate / 8 / 10)
	if b < 10_000 {
		b = 10_000
	}
	return b
}

// recycle closes the packet lifecycle of a single-bottleneck run: the
// source tree stamps pooled packets, the terminal port releases every
// packet it delivers or drops. Multi-hop topologies (Chain/FanIn in the
// pushback experiment) must not use this — their delivered packets are
// re-injected downstream.
func recycle(src traffic.Source, port *netsim.Port) {
	pool := packet.NewPool()
	traffic.AttachPool(src, pool)
	port.SetPool(pool)
}

// runFIFO replays src through a plain FIFO bottleneck.
func runFIFO(src traffic.Source, linkRate float64, until eventsim.Time) *netsim.Recorder {
	eng := eventsim.New()
	rec := netsim.NewRecorder(eventsim.Second)
	port := netsim.NewPort(eng, queue.NewFIFO(bufferFor(linkRate)), linkRate, rec)
	recycle(src, port)
	netsim.Replay(eng, src, port)
	eng.RunUntil(until)
	return rec
}

// runACC replays src through RED + the classic ACC agent.
func runACC(src traffic.Source, linkRate float64, until eventsim.Time, cfg acc.Config) (*netsim.Recorder, *acc.ACC) {
	eng := eventsim.New()
	rec := netsim.NewRecorder(eventsim.Second)
	red := queue.NewRED(queue.DefaultREDConfig(bufferFor(linkRate), linkRate/8))
	port := netsim.NewPort(eng, red, linkRate, rec)
	agent := acc.Attach(eng, port, red, cfg)
	recycle(src, port)
	netsim.Replay(eng, src, port)
	eng.RunUntil(until)
	return rec, agent
}

// turboRun bundles the outputs of an instrumented ACC-Turbo run.
type turboRun struct {
	rec   *netsim.Recorder
	turbo *core.Turbo
	// score accounting (Fig. 11a): per-bin sums of assigned queue
	// index and packet counts, per class.
	queueSum [2][]float64
	pktCount [2][]float64
}

// runTurbo replays src through an ACC-Turbo port, instrumenting the
// per-packet queue assignments for the scheduling score.
func runTurbo(src traffic.Source, linkRate float64, until eventsim.Time, cfg core.Config) *turboRun {
	eng := eventsim.New()
	rec := netsim.NewRecorder(eventsim.Second)
	port, turbo := core.Attach(eng, linkRate, rec, cfg)
	run := &turboRun{rec: rec, turbo: turbo}
	turbo.OnAssign = func(now eventsim.Time, p *packet.Packet, a cluster.Assignment) {
		q := float64(turbo.QueueOf(a.Cluster))
		bin := int(now / eventsim.Second)
		l := 0
		if p.Label == packet.Malicious {
			l = 1
		}
		for len(run.queueSum[l]) <= bin {
			run.queueSum[l] = append(run.queueSum[l], 0)
			run.pktCount[l] = append(run.pktCount[l], 0)
		}
		run.queueSum[l][bin] += q
		run.pktCount[l][bin]++
	}
	recycle(src, port)
	netsim.Replay(eng, src, port)
	eng.RunUntil(until)
	return run
}

// score is the Fig. 11a metric: the percentage of one-second intervals
// (containing both classes) in which benign traffic received a better
// (lower-index) average queue than malicious traffic.
func (tr *turboRun) score() float64 {
	n := len(tr.queueSum[0])
	if len(tr.queueSum[1]) < n {
		n = len(tr.queueSum[1])
	}
	mixed, won := 0, 0
	for i := 0; i < n; i++ {
		if tr.pktCount[0][i] == 0 || tr.pktCount[1][i] == 0 {
			continue
		}
		mixed++
		avgB := tr.queueSum[0][i] / tr.pktCount[0][i]
		avgM := tr.queueSum[1][i] / tr.pktCount[1][i]
		if avgB < avgM {
			won++
		}
	}
	if mixed == 0 {
		return 0
	}
	return 100 * float64(won) / float64(mixed)
}

// runJaqen replays src through a FIFO port protected by Jaqen.
func runJaqen(src traffic.Source, linkRate float64, until eventsim.Time, cfg jaqen.Config) (*netsim.Recorder, *jaqen.Jaqen) {
	eng := eventsim.New()
	rec := netsim.NewRecorder(eventsim.Second)
	port := netsim.NewPort(eng, queue.NewFIFO(bufferFor(linkRate)), linkRate, rec)
	j := jaqen.Attach(eng, port, cfg)
	recycle(src, port)
	netsim.Replay(eng, src, port)
	eng.RunUntil(until)
	return rec, j
}

// runPIFOIdeal replays src through the ground-truth PIFO: benign
// packets rank ahead of malicious ones (the paper's "PIFO Ideal").
func runPIFOIdeal(src traffic.Source, linkRate float64, until eventsim.Time) *netsim.Recorder {
	eng := eventsim.New()
	rec := netsim.NewRecorder(eventsim.Second)
	pifo := queue.NewPIFO(bufferFor(linkRate), func(_ eventsim.Time, p *packet.Packet) int64 {
		if p.Label == packet.Malicious {
			return 1
		}
		return 0
	})
	port := netsim.NewPort(eng, pifo, linkRate, rec)
	recycle(src, port)
	netsim.Replay(eng, src, port)
	eng.RunUntil(until)
	return rec
}

// shareSeries converts a per-flow delivered series into fraction of
// link bandwidth, sampled at whole seconds.
func shareSeries(rec *netsim.Recorder, flowID uint32, linkRate float64) Series {
	bits := rec.FlowDeliveredBits(flowID)
	x := make([]float64, len(bits))
	y := make([]float64, len(bits))
	for i, v := range bits {
		x[i] = float64(i)
		y[i] = v / linkRate
	}
	return Series{X: x, Y: y}
}

// totalShareSeries is the "All" line: total delivered / link rate.
func totalShareSeries(rec *netsim.Recorder, linkRate float64) Series {
	b := rec.DeliveredBits(packet.Benign)
	m := rec.DeliveredBits(packet.Malicious)
	x := make([]float64, len(b))
	y := make([]float64, len(b))
	for i := range b {
		x[i] = float64(i)
		y[i] = (b[i] + m[i]) / linkRate
	}
	return Series{Name: "All", X: x, Y: y}
}

// dropRateSeries wraps Recorder.DropRate with an x-axis.
func dropRateSeries(rec *netsim.Recorder, name string) Series {
	dr := rec.DropRate()
	x := make([]float64, len(dr))
	for i := range dr {
		x[i] = float64(i)
	}
	return Series{Name: name, X: x, Y: dr}
}

// throughputSeries returns delivered bits/s for a class, in Mbps.
func throughputSeries(rec *netsim.Recorder, label packet.Label, name string) Series {
	bits := rec.DeliveredBits(label)
	x := make([]float64, len(bits))
	y := make([]float64, len(bits))
	for i, v := range bits {
		x[i] = float64(i)
		y[i] = v / 1e6
	}
	return Series{Name: name, X: x, Y: y}
}
