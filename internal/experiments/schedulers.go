package experiments

import (
	"accturbo/internal/eventsim"
	"accturbo/internal/netsim"
	"accturbo/internal/packet"
	"accturbo/internal/queue"
	"accturbo/internal/traffic"
)

// Schedulers is an extension experiment covering §5.1's design space:
// with the same ground-truth ranking (benign before malicious), how do
// the realizable rank schedulers — SP-PIFO over strict-priority queues
// [24] and single-queue AIFO [56] — compare against a true PIFO and a
// FIFO, and where does ACC-Turbo's cluster-to-queue controller land
// with no ground truth at all?
func Schedulers(opt Options) *Result {
	r := &Result{
		ID:     "schedulers",
		Title:  "extension: §5.1 scheduler realizations under a pulse wave",
		XLabel: "scheme",
		YLabel: "benign drops (%)",
	}
	const link = fig2Link
	until := 50 * eventsim.Second
	newSrc := func() traffic.Source {
		return traffic.PulseWave(link, 3*link, 5*eventsim.Second, true)
	}
	truth := func(_ eventsim.Time, p *packet.Packet) int64 {
		if p.Label == packet.Malicious {
			return 1
		}
		return 0
	}

	runQdisc := func(q queue.Qdisc) *netsim.Recorder {
		eng := eventsim.New()
		rec := netsim.NewRecorder(eventsim.Second)
		port := netsim.NewPort(eng, q, link, rec)
		netsim.Replay(eng, newSrc(), port)
		eng.RunUntil(until)
		return rec
	}
	buffer := bufferFor(link)

	fifo := runQdisc(queue.NewFIFO(buffer))
	pifo := runQdisc(queue.NewPIFO(buffer, truth))
	sp := queue.NewSPPIFO(8, buffer/8, truth)
	spRec := runQdisc(sp)
	aifo := queue.NewAIFO(buffer, 128, 0.125, truth)
	aifoRec := runQdisc(aifo)
	turbo := runTurbo(newSrc(), link, until, accTurboFig2Config())

	rows := []struct {
		name string
		rec  *netsim.Recorder
	}{
		{"FIFO", fifo},
		{"PIFO (ideal)", pifo},
		{"SP-PIFO (8 queues)", spRec},
		{"AIFO (single queue)", aifoRec},
		{"ACC-Turbo (no ground truth)", turbo.rec},
	}
	for _, row := range rows {
		r.Add(Series{Name: row.name + "/benign drops", Y: []float64{row.rec.BenignDropPercent()}})
		r.Add(Series{Name: row.name + "/attack drops", Y: []float64{row.rec.MaliciousDropPercent()}})
		r.Note("%-28s benign %.2f%%  attack %.2f%%", row.name,
			row.rec.BenignDropPercent(), row.rec.MaliciousDropPercent())
	}
	r.Note("SP-PIFO inversions: %d (push-ups %d, push-downs %d); AIFO admission drops: %d",
		sp.Inversions, sp.PushUps, sp.PushDowns, aifo.AdmissionDrops)
	r.Note("the realizable approximations track the ideal PIFO; ACC-Turbo matches them " +
		"without any ground-truth labels, which is the paper's point")
	return r
}
