package experiments

import (
	"fmt"

	"accturbo/internal/acc"
	"accturbo/internal/cluster"
	"accturbo/internal/core"
	"accturbo/internal/eventsim"
	"accturbo/internal/netsim"
	"accturbo/internal/packet"
	"accturbo/internal/traffic"
)

// fig2Link is the bottleneck rate for the §2 experiments. The original
// ACC experiment is rate-free (everything is reported as a fraction of
// link bandwidth); 10 Mbps keeps runs fast.
const fig2Link = 10e6

// accTurboFig2Config is ACC-Turbo configured like the §2 comparison: 4
// clusters over destination-address bytes (the aggregates differ by
// destination /24), throughput ranking.
func accTurboFig2Config() core.Config {
	cfg := core.DefaultConfig()
	cfg.Clustering = cluster.DefaultConfig(10, packet.FeatureSet{
		packet.FDstIPByte1, packet.FDstIPByte2, packet.FDstIPByte3,
	})
	cfg.Clustering.SliceInit = true
	cfg.PollInterval = 100 * eventsim.Millisecond
	cfg.DeployDelay = 50 * eventsim.Millisecond
	cfg.ReseedInterval = eventsim.Second
	return cfg
}

// addAggregateShares appends the Fig. 2/3-style per-aggregate series.
func addAggregateShares(r *Result, prefix string, rec *netsim.Recorder, linkRate float64) {
	for id := uint32(1); id <= 5; id++ {
		s := shareSeries(rec, id, linkRate)
		s.Name = fmt.Sprintf("%s/Agg%d", prefix, id)
		r.Add(s)
	}
	total := totalShareSeries(rec, linkRate)
	total.Name = prefix + "/All"
	r.Add(total)
	r.Add(dropRateSeries(rec, prefix+"/DropRate"))
}

// Fig2 reproduces the original ACC experiment: five aggregates over a
// bottleneck under (a) FIFO, (b) ACC, (c) an ACC monitoring-window
// sweep, and (d) ACC-Turbo.
func Fig2(opt Options) *Result {
	r := &Result{
		ID:     "fig2",
		Title:  "ACC original experiment",
		XLabel: "time (s)",
		YLabel: "fraction of link bandwidth",
	}
	until := 50 * eventsim.Second

	// (a) FIFO: the ramping attack captures the link.
	recFIFO := runFIFO(traffic.ACCOriginal(fig2Link), fig2Link, until)
	addAggregateShares(r, "FIFO", recFIFO, fig2Link)
	r.Note("FIFO: benign drops %.1f%%, attack peaks at %.2f of link",
		recFIFO.BenignDropPercent(), maxOf(shareSeries(recFIFO, 5, fig2Link).Y))

	// (b) ACC with the Table 4 configuration (K = 2 s).
	recACC, agent := runACC(traffic.ACCOriginal(fig2Link), fig2Link, until, acc.DefaultConfig())
	addAggregateShares(r, "ACC", recACC, fig2Link)
	if agent.FirstActivation >= 0 {
		r.Note("ACC (K=2s): reaction %.1f s after attack start (paper: ~4 s), benign drops %.1f%%",
			(agent.FirstActivation - 13*eventsim.Second).Seconds(), recACC.BenignDropPercent())
	} else {
		r.Note("ACC (K=2s): never activated")
	}

	// (c) Impact of K: drop-rate series and activation delay per K.
	ks := []eventsim.Time{10, 15, 20, 25, 30, 35}
	if opt.Quick {
		ks = []eventsim.Time{10, 20, 35}
	}
	for _, kSec := range ks {
		cfg := acc.DefaultConfig()
		cfg.K = kSec * eventsim.Second
		recK, agentK := runACC(traffic.ACCOriginal(fig2Link), fig2Link, until, cfg)
		r.Add(renameSeries(dropRateSeries(recK, ""), fmt.Sprintf("ACC/K=%ds/DropRate", kSec)))
		if agentK.FirstActivation >= 0 {
			r.Note("ACC K=%ds: activation at t=%.0f s", kSec, agentK.FirstActivation.Seconds())
		} else {
			r.Note("ACC K=%ds: never activated within 50 s", kSec)
		}
	}

	// (d) ACC-Turbo: sub-second mitigation, no threshold.
	tr := runTurbo(traffic.ACCOriginal(fig2Link), fig2Link, until, accTurboFig2Config())
	addAggregateShares(r, "ACC-Turbo", tr.rec, fig2Link)
	r.Note("ACC-Turbo: benign drops %.1f%%, attack drops %.1f%%, %d priority deployments",
		tr.rec.BenignDropPercent(), tr.rec.MaliciousDropPercent(), tr.turbo.Deployments)
	return r
}

func renameSeries(s Series, name string) Series {
	s.Name = name
	return s
}

func maxOf(ys []float64) float64 {
	m := 0.0
	for _, v := range ys {
		if v > m {
			m = v
		}
	}
	return m
}
