package experiments

import (
	"strings"
	"testing"
)

// TestFleetShapes asserts the distributed-defense properties the fleet
// experiment exists to demonstrate: the merged global ranking protects
// benign traffic strictly better than EVERY single-node defense, the
// mid-pulse coordinator partition degrades nodes to the local ranking
// (never to undefended FIFO), and the fleet fully recovers after the
// heal.
func TestFleetShapes(t *testing.T) {
	r := Fleet(quick)

	fifo := findSeries(t, r, "FIFO/Output Benign")
	local := findSeries(t, r, "single-node/Output Benign")
	fl := findSeries(t, r, "fleet/Output Benign")
	part := findSeries(t, r, "fleet+partition/Output Benign")
	if len(fl.Y) == 0 || len(fl.Y) != len(fifo.Y) || len(fl.Y) != len(local.Y) || len(fl.Y) != len(part.Y) {
		t.Fatalf("series lengths: fifo %d, local %d, fleet %d, partition %d",
			len(fifo.Y), len(local.Y), len(fl.Y), len(part.Y))
	}

	// The tentpole acceptance: worst fleet node strictly beats the best
	// single-node defense on benign drops. The experiment computes both
	// figures itself and records the verdict in a note.
	verdict := noteWith(t, r, "fleet beats every single-node defense")
	if !strings.HasSuffix(verdict, "true") {
		t.Fatalf("fleet does not beat every single-node defense: %q", verdict)
	}

	// Aggregate view of the same fact: summed benign delivery under the
	// fleet exceeds both the single-node defenses and FIFO.
	sum := func(ys []float64) float64 {
		var s float64
		for _, y := range ys {
			s += y
		}
		return s
	}
	if fs, ls, fifos := sum(fl.Y), sum(local.Y), sum(fifo.Y); fs <= ls || fs <= fifos {
		t.Errorf("benign delivery: fleet %.1f, single-node %.1f, fifo %.1f", fs, ls, fifos)
	}

	// During the first pulse (10-20 s) both fleet legs are connected and
	// must hold benign throughput above the misranking single node.
	if lm, fm := mean(local.Y, 11, 20), mean(fl.Y, 11, 20); fm <= lm {
		t.Errorf("first-pulse benign throughput: fleet %.2f <= single-node %.2f", fm, lm)
	}

	// Partition narrative: connected before, local fallback (never FIFO)
	// during, fleet again after. The sampled ranking sources pin it.
	during := noteWith(t, r, "t=38s")
	if !strings.Contains(during, "fleet-fallback:local") || strings.Contains(during, "fifo") {
		t.Fatalf("partitioned nodes not on local fallback: %q", during)
	}
	for _, at := range []string{"t=32s", "t=48s"} {
		s := noteWith(t, r, at)
		if strings.Contains(s, "fallback") {
			t.Fatalf("nodes degraded while coordinator reachable: %q", s)
		}
	}
	if rec := noteWith(t, r, "full recovery"); !strings.HasSuffix(rec, "true") {
		t.Fatalf("fleet did not recover after the heal: %q", rec)
	}

	// The partition leg must have actually exercised the fallback: every
	// node engaged it at least once and frames were dropped in transit.
	eng := noteWith(t, r, "fallback engagements")
	if strings.HasPrefix(eng, "partition leg: 0 fallback") {
		t.Fatalf("partition never engaged the fallback: %q", eng)
	}
}

// TestFleetDeterministic pins the CI gate's premise: two runs with the
// same options render byte-identically — ports, control loops, and
// transport deliveries all interleave on one seeded engine.
func TestFleetDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full quick runs")
	}
	a := Fleet(quick).Render()
	b := Fleet(quick).Render()
	if a != b {
		t.Fatal("fleet experiment is not deterministic across runs")
	}
}

// noteWith returns the first note containing substr, failing the test
// if none does.
func noteWith(t *testing.T, r *Result, substr string) string {
	t.Helper()
	for _, n := range r.Notes {
		if strings.Contains(n, substr) {
			return n
		}
	}
	t.Fatalf("no note containing %q in %v", substr, r.Notes)
	return ""
}
