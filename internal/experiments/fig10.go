package experiments

import (
	"accturbo/internal/cluster"
	"accturbo/internal/packet"
)

// Fig10 reproduces the clustering-strategy comparison of §8.1: purity
// and benign recall as the number of clusters grows from 2 to 10, for
// every representation/distance/search combination the paper studies,
// plus offline k-means and the hybrid.
func Fig10(opt Options) *Result {
	r := &Result{
		ID:     "fig10",
		Title:  "clustering strategies vs number of clusters",
		XLabel: "clusters",
		YLabel: "quality (%)",
	}
	day := defaultDay(opt)
	feats := packet.DefaultSimulationFeatures()

	specs := []strategySpec{
		onlineStrategy("Anime Exh.", feats, cluster.Anime, cluster.Exhaustive),
		onlineStrategy("Manh. Exh.", feats, cluster.Manhattan, cluster.Exhaustive),
		onlineStrategy("Eucl. Exh.", feats, cluster.Euclidean, cluster.Exhaustive),
		onlineStrategy("Anime Fast", feats, cluster.Anime, cluster.Fast),
		onlineStrategy("Manh. Fast", feats, cluster.Manhattan, cluster.Fast),
		onlineStrategy("Eucl. Fast", feats, cluster.Euclidean, cluster.Fast),
		hybridStrategy(feats),
		{name: "Off. KMeans", offline: true},
	}
	ks := []int{2, 4, 6, 8, 10}
	if opt.Quick {
		ks = []int{2, 6, 10}
	}

	// The specs x ks grid points are independent (each builds its own
	// source and clusterer from the day seed): run them across the
	// worker pool, each writing only its own grid cell.
	type point struct{ purity, recallB float64 }
	grid := make([][]point, len(specs))
	for i := range grid {
		grid[i] = make([]point, len(ks))
	}
	RunGrid(opt, len(specs), len(ks), func(si, ki int) {
		metrics := runInferenceDay(day, ks[ki], feats, specs[si])
		var pSum, rbSum float64
		for _, m := range metrics {
			pSum += m.purity
			rbSum += m.recallB
		}
		n := float64(len(metrics))
		grid[si][ki] = point{purity: pSum / n, recallB: rbSum / n}
	})
	results := map[string]map[int]point{}
	for si, spec := range specs {
		results[spec.name] = map[int]point{}
		for ki, k := range ks {
			results[spec.name][k] = grid[si][ki]
		}
	}

	xs := make([]float64, len(ks))
	for i, k := range ks {
		xs[i] = float64(k)
	}
	for _, spec := range specs {
		var py, ry []float64
		for _, k := range ks {
			py = append(py, results[spec.name][k].purity)
			ry = append(ry, results[spec.name][k].recallB)
		}
		r.Add(Series{Name: "Purity/" + spec.name, X: xs, Y: py})
		r.Add(Series{Name: "RecallB/" + spec.name, X: xs, Y: ry})
	}

	kMax := ks[len(ks)-1]
	kMin := ks[0]
	manhFast := results["Manh. Fast"]
	r.Note("Manh. Fast: purity %.1f%% at %d clusters -> %.1f%% at %d clusters (paper: more clusters help)",
		manhFast[kMin].purity, kMin, manhFast[kMax].purity, kMax)
	r.Note("Exhaustive vs fast at %d clusters: Anime %.1f%% vs %.1f%% (paper: 98.09%% vs 93.24%%), "+
		"Eucl. %.1f%% vs %.1f%% (paper: center-based suffers least when downgraded)",
		kMax, results["Anime Exh."][kMax].purity, results["Anime Fast"][kMax].purity,
		results["Eucl. Exh."][kMax].purity, results["Eucl. Fast"][kMax].purity)
	r.Note("Manh. Exh. %.1f%% vs Manh. Fast %.1f%%: deviation from the paper — the linear cost lets "+
		"heavily-overlapping mixed clusters merge cheaply on this synthetic day",
		results["Manh. Exh."][kMax].purity, manhFast[kMax].purity)
	r.Note("Offline k-means at %d clusters: %.1f%% vs Eucl. Fast %.1f%% (paper: online close to offline); "+
		"hybrid %.1f%% (paper: improvement not significant)",
		kMax, results["Off. KMeans"][kMax].purity, results["Eucl. Fast"][kMax].purity,
		results["Eucl. Fast In."][kMax].purity)
	return r
}
