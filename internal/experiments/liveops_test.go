package experiments

import (
	"strings"
	"testing"
)

// TestLiveOpsShapes asserts the operational safety properties the
// liveops experiment exists to demonstrate: a mid-pulse hot
// reconfigure and a mid-pulse kill/restore each cost the benign class
// nothing measurable, the snapshot round-trips byte-identically, the
// restored process's first deployed decision is the pre-kill decision,
// and its first recomputed deployment keeps the attack demoted (no
// re-convergence window).
func TestLiveOpsShapes(t *testing.T) {
	r := LiveOps(quick)

	for _, n := range r.Notes {
		if strings.HasPrefix(n, "ERROR:") {
			t.Fatalf("live operation failed: %s", n)
		}
	}
	note := func(prefix string) string {
		t.Helper()
		for _, n := range r.Notes {
			if strings.HasPrefix(n, prefix) {
				return n
			}
		}
		t.Fatalf("missing note %q in %v", prefix, r.Notes)
		return ""
	}

	if n := note("reconfigure: config generation"); !strings.Contains(n, "1 -> 2") {
		t.Errorf("reconfigure did not bump the generation once: %s", n)
	}
	if n := note("restore: snapshot"); !strings.Contains(n, "byte-identical: true") {
		t.Errorf("snapshot round trip not byte-identical: %s", n)
	}
	if n := note("restore: first deployed decision"); !strings.Contains(n, ": true") {
		t.Errorf("restored process did not resume under the pre-kill decision: %s", n)
	}
	if n := note("restore: first recomputed deployment"); !strings.Contains(n, ": true") {
		t.Errorf("restored process re-converged instead of resuming: %s", n)
	}

	clean := findSeries(t, r, "clean/Output Benign")
	reconf := findSeries(t, r, "reconfigured/Output Benign")
	stitched := findSeries(t, r, "kill+restore/Output Benign")
	if len(clean.Y) == 0 || len(reconf.Y) != len(clean.Y) {
		t.Fatalf("series lengths: clean %d, reconfigured %d", len(clean.Y), len(reconf.Y))
	}

	sum := func(ys []float64) float64 {
		var s float64
		for _, v := range ys {
			s += v
		}
		return s
	}
	// Zero op-attributable loss, with a 2% tolerance for scheduling
	// differences after the swap (the patched ranking legitimately makes
	// different — here slightly better — decisions, never stalls).
	if cs, rs := sum(clean.Y), sum(reconf.Y); rs < 0.98*cs {
		t.Errorf("reconfigure cost benign throughput: %.1f vs clean %.1f", rs, cs)
	}
	// The kill forfeits at most the in-flight queue (~100 ms of line
	// rate) and the restored process takes over without re-converging.
	if cs, ss := sum(clean.Y), sum(stitched.Y); ss < 0.98*cs {
		t.Errorf("kill/restore cost benign throughput: %.1f vs clean %.1f", ss, cs)
	}

	// Identical until the operation lands at t=35s: both legs replay the
	// same deterministic traffic through the same defense, so any early
	// divergence means the operation leaked backwards in time.
	for i := 0; i < 35 && i < len(clean.Y); i++ {
		if clean.Y[i] != reconf.Y[i] {
			t.Fatalf("reconfigured run diverges at t=%ds, before the patch", i)
		}
		if i < len(stitched.Y) && clean.Y[i] != stitched.Y[i] {
			t.Fatalf("kill/restore run diverges at t=%ds, before the kill", i)
		}
	}
}

// TestLiveOpsDeterministic pins the CI gate's premise: two runs with
// the same options render byte-identically.
func TestLiveOpsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full quick runs")
	}
	a := LiveOps(quick).Render()
	b := LiveOps(quick).Render()
	if a != b {
		t.Fatal("liveops is not deterministic across runs")
	}
}
