package experiments

import (
	"strings"
	"testing"
)

func TestSketchAccShape(t *testing.T) {
	r := SketchAcc(quick)
	compat := findSeries(t, r, "compatible (FNV)")
	turbo := findSeries(t, r, "turbo")
	cu := findSeries(t, r, "turbo+CU")
	cuEq := findSeries(t, r, "turbo+CU equal-mem")

	// Conservative update never loosens the turbo estimate: pointwise
	// the CU series sits at or below plain turbo.
	for i := range turbo.Y {
		if cu.Y[i] > turbo.Y[i] {
			t.Fatalf("point %d: turbo+CU overestimate %.3f > turbo %.3f",
				i, cu.Y[i], turbo.Y[i])
		}
	}
	// The headline trade: at equal memory turbo+CU is tighter than the
	// seed-compatible sketch at full load.
	last := len(compat.Y) - 1
	if cuEq.Y[last] >= compat.Y[last] {
		t.Fatalf("equal-mem turbo+CU %.3f not tighter than compatible %.3f",
			cuEq.Y[last], compat.Y[last])
	}
	// Error grows with load for every sketch (collisions accumulate).
	for _, s := range []Series{compat, turbo, cu, cuEq} {
		if s.Y[last] < s.Y[0] {
			t.Fatalf("%s overestimate shrank with load: %v", s.Name, s.Y)
		}
	}
	noteWith(t, r, "mean overestimate at full load")
	noteWith(t, r, "false heavies at threshold")
}

func TestSketchAccDeterminism(t *testing.T) {
	if a, b := SketchAcc(quick).Render(), SketchAcc(quick).Render(); a != b {
		t.Fatal("sketchacc experiment is not deterministic across runs")
	}
}

func TestVictimsShape(t *testing.T) {
	r := Victims(quick)
	listed := findSeries(t, r, "victims listed")

	// Pre-attack baseline windows list nobody; every attack window
	// lists at least the pulsed target.
	for w := 0; w < 2; w++ {
		if listed.Y[w] != 0 {
			t.Fatalf("window %d (pre-attack) listed %v victims", w, listed.Y[w])
		}
	}
	for w := 2; w < len(listed.Y); w++ {
		if listed.Y[w] < 1 {
			t.Fatalf("attack window %d listed no victims", w)
		}
	}
	// The rotating targets each carry share in some window.
	for _, name := range []string{"dst A (share)", "dst B (share)", "dst C (share)"} {
		s := findSeries(t, r, name)
		var peak float64
		for _, y := range s.Y {
			if y > peak {
				peak = y
			}
		}
		if peak < 0.2 {
			t.Fatalf("%s never crossed the activation share: peak %.3f", name, peak)
		}
	}
	// Headline numbers: every pulse window detected, zero benign
	// destinations ever listed.
	if n := noteWith(t, r, "pulse windows"); !strings.Contains(n, "(100%)") {
		t.Fatalf("pulse detection below 100%%: %q", n)
	}
	if n := noteWith(t, r, "benign destinations ever listed"); !strings.HasSuffix(n, ": 0") {
		t.Fatalf("benign false positives: %q", n)
	}
}

func TestVictimsDeterminism(t *testing.T) {
	if a, b := Victims(quick).Render(), Victims(quick).Render(); a != b {
		t.Fatal("victims experiment is not deterministic across runs")
	}
}
